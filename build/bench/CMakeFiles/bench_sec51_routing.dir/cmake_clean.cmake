file(REMOVE_RECURSE
  "CMakeFiles/bench_sec51_routing.dir/bench_sec51_routing.cc.o"
  "CMakeFiles/bench_sec51_routing.dir/bench_sec51_routing.cc.o.d"
  "bench_sec51_routing"
  "bench_sec51_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec51_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
