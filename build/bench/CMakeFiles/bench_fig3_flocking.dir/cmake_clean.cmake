file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_flocking.dir/bench_fig3_flocking.cc.o"
  "CMakeFiles/bench_fig3_flocking.dir/bench_fig3_flocking.cc.o.d"
  "bench_fig3_flocking"
  "bench_fig3_flocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_flocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
