# Empty compiler generated dependencies file for bench_sec52_gathering.
# This may be replaced when dependencies are built.
