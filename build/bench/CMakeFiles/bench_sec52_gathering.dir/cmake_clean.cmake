file(REMOVE_RECURSE
  "CMakeFiles/bench_sec52_gathering.dir/bench_sec52_gathering.cc.o"
  "CMakeFiles/bench_sec52_gathering.dir/bench_sec52_gathering.cc.o.d"
  "bench_sec52_gathering"
  "bench_sec52_gathering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec52_gathering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
