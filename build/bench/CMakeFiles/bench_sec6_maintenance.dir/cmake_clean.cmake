file(REMOVE_RECURSE
  "CMakeFiles/bench_sec6_maintenance.dir/bench_sec6_maintenance.cc.o"
  "CMakeFiles/bench_sec6_maintenance.dir/bench_sec6_maintenance.cc.o.d"
  "bench_sec6_maintenance"
  "bench_sec6_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec6_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
