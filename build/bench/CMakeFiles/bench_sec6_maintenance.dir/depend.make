# Empty dependencies file for bench_sec6_maintenance.
# This may be replaced when dependencies are built.
