# Empty dependencies file for bench_fig1_gradient.
# This may be replaced when dependencies are built.
