file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_gradient.dir/bench_fig1_gradient.cc.o"
  "CMakeFiles/bench_fig1_gradient.dir/bench_fig1_gradient.cc.o.d"
  "bench_fig1_gradient"
  "bench_fig1_gradient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_gradient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
