file(REMOVE_RECURSE
  "CMakeFiles/spatial_meeting.dir/spatial_meeting.cpp.o"
  "CMakeFiles/spatial_meeting.dir/spatial_meeting.cpp.o.d"
  "spatial_meeting"
  "spatial_meeting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatial_meeting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
