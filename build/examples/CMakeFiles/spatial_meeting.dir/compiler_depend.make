# Empty compiler generated dependencies file for spatial_meeting.
# This may be replaced when dependencies are built.
