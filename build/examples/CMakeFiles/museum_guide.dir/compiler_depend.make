# Empty compiler generated dependencies file for museum_guide.
# This may be replaced when dependencies are built.
