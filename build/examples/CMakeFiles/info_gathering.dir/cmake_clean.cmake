file(REMOVE_RECURSE
  "CMakeFiles/info_gathering.dir/info_gathering.cpp.o"
  "CMakeFiles/info_gathering.dir/info_gathering.cpp.o.d"
  "info_gathering"
  "info_gathering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/info_gathering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
