# Empty compiler generated dependencies file for info_gathering.
# This may be replaced when dependencies are built.
