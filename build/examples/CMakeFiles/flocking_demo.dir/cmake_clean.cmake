file(REMOVE_RECURSE
  "CMakeFiles/flocking_demo.dir/flocking_demo.cpp.o"
  "CMakeFiles/flocking_demo.dir/flocking_demo.cpp.o.d"
  "flocking_demo"
  "flocking_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flocking_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
