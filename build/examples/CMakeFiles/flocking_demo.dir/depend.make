# Empty dependencies file for flocking_demo.
# This may be replaced when dependencies are built.
