file(REMOVE_RECURSE
  "libtota_tuples.a"
)
