
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tuples/all.cc" "src/tuples/CMakeFiles/tota_tuples.dir/all.cc.o" "gcc" "src/tuples/CMakeFiles/tota_tuples.dir/all.cc.o.d"
  "/root/repo/src/tuples/field_tuple.cc" "src/tuples/CMakeFiles/tota_tuples.dir/field_tuple.cc.o" "gcc" "src/tuples/CMakeFiles/tota_tuples.dir/field_tuple.cc.o.d"
  "/root/repo/src/tuples/message_tuple.cc" "src/tuples/CMakeFiles/tota_tuples.dir/message_tuple.cc.o" "gcc" "src/tuples/CMakeFiles/tota_tuples.dir/message_tuple.cc.o.d"
  "/root/repo/src/tuples/modifier_tuple.cc" "src/tuples/CMakeFiles/tota_tuples.dir/modifier_tuple.cc.o" "gcc" "src/tuples/CMakeFiles/tota_tuples.dir/modifier_tuple.cc.o.d"
  "/root/repo/src/tuples/nav_tuple.cc" "src/tuples/CMakeFiles/tota_tuples.dir/nav_tuple.cc.o" "gcc" "src/tuples/CMakeFiles/tota_tuples.dir/nav_tuple.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tota/CMakeFiles/tota_core.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/tota_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tota_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
