file(REMOVE_RECURSE
  "CMakeFiles/tota_tuples.dir/all.cc.o"
  "CMakeFiles/tota_tuples.dir/all.cc.o.d"
  "CMakeFiles/tota_tuples.dir/field_tuple.cc.o"
  "CMakeFiles/tota_tuples.dir/field_tuple.cc.o.d"
  "CMakeFiles/tota_tuples.dir/message_tuple.cc.o"
  "CMakeFiles/tota_tuples.dir/message_tuple.cc.o.d"
  "CMakeFiles/tota_tuples.dir/modifier_tuple.cc.o"
  "CMakeFiles/tota_tuples.dir/modifier_tuple.cc.o.d"
  "CMakeFiles/tota_tuples.dir/nav_tuple.cc.o"
  "CMakeFiles/tota_tuples.dir/nav_tuple.cc.o.d"
  "libtota_tuples.a"
  "libtota_tuples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tota_tuples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
