# Empty compiler generated dependencies file for tota_tuples.
# This may be replaced when dependencies are built.
