file(REMOVE_RECURSE
  "CMakeFiles/tota_core.dir/access.cc.o"
  "CMakeFiles/tota_core.dir/access.cc.o.d"
  "CMakeFiles/tota_core.dir/engine.cc.o"
  "CMakeFiles/tota_core.dir/engine.cc.o.d"
  "CMakeFiles/tota_core.dir/events.cc.o"
  "CMakeFiles/tota_core.dir/events.cc.o.d"
  "CMakeFiles/tota_core.dir/middleware.cc.o"
  "CMakeFiles/tota_core.dir/middleware.cc.o.d"
  "CMakeFiles/tota_core.dir/pattern.cc.o"
  "CMakeFiles/tota_core.dir/pattern.cc.o.d"
  "CMakeFiles/tota_core.dir/tuple.cc.o"
  "CMakeFiles/tota_core.dir/tuple.cc.o.d"
  "CMakeFiles/tota_core.dir/tuple_space.cc.o"
  "CMakeFiles/tota_core.dir/tuple_space.cc.o.d"
  "libtota_core.a"
  "libtota_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tota_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
