
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tota/access.cc" "src/tota/CMakeFiles/tota_core.dir/access.cc.o" "gcc" "src/tota/CMakeFiles/tota_core.dir/access.cc.o.d"
  "/root/repo/src/tota/engine.cc" "src/tota/CMakeFiles/tota_core.dir/engine.cc.o" "gcc" "src/tota/CMakeFiles/tota_core.dir/engine.cc.o.d"
  "/root/repo/src/tota/events.cc" "src/tota/CMakeFiles/tota_core.dir/events.cc.o" "gcc" "src/tota/CMakeFiles/tota_core.dir/events.cc.o.d"
  "/root/repo/src/tota/middleware.cc" "src/tota/CMakeFiles/tota_core.dir/middleware.cc.o" "gcc" "src/tota/CMakeFiles/tota_core.dir/middleware.cc.o.d"
  "/root/repo/src/tota/pattern.cc" "src/tota/CMakeFiles/tota_core.dir/pattern.cc.o" "gcc" "src/tota/CMakeFiles/tota_core.dir/pattern.cc.o.d"
  "/root/repo/src/tota/tuple.cc" "src/tota/CMakeFiles/tota_core.dir/tuple.cc.o" "gcc" "src/tota/CMakeFiles/tota_core.dir/tuple.cc.o.d"
  "/root/repo/src/tota/tuple_space.cc" "src/tota/CMakeFiles/tota_core.dir/tuple_space.cc.o" "gcc" "src/tota/CMakeFiles/tota_core.dir/tuple_space.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tota_common.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/tota_wire.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
