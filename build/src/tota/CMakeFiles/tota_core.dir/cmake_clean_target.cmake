file(REMOVE_RECURSE
  "libtota_core.a"
)
