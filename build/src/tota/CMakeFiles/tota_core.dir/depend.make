# Empty dependencies file for tota_core.
# This may be replaced when dependencies are built.
