file(REMOVE_RECURSE
  "CMakeFiles/tota_wire.dir/buffer.cc.o"
  "CMakeFiles/tota_wire.dir/buffer.cc.o.d"
  "CMakeFiles/tota_wire.dir/record.cc.o"
  "CMakeFiles/tota_wire.dir/record.cc.o.d"
  "CMakeFiles/tota_wire.dir/value.cc.o"
  "CMakeFiles/tota_wire.dir/value.cc.o.d"
  "libtota_wire.a"
  "libtota_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tota_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
