# Empty dependencies file for tota_wire.
# This may be replaced when dependencies are built.
