file(REMOVE_RECURSE
  "libtota_wire.a"
)
