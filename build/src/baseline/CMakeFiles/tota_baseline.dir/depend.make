# Empty dependencies file for tota_baseline.
# This may be replaced when dependencies are built.
