file(REMOVE_RECURSE
  "CMakeFiles/tota_baseline.dir/flood_routing.cc.o"
  "CMakeFiles/tota_baseline.dir/flood_routing.cc.o.d"
  "CMakeFiles/tota_baseline.dir/local_space.cc.o"
  "CMakeFiles/tota_baseline.dir/local_space.cc.o.d"
  "libtota_baseline.a"
  "libtota_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tota_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
