file(REMOVE_RECURSE
  "libtota_baseline.a"
)
