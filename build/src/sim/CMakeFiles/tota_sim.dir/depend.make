# Empty dependencies file for tota_sim.
# This may be replaced when dependencies are built.
