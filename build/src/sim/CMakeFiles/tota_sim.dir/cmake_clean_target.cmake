file(REMOVE_RECURSE
  "libtota_sim.a"
)
