file(REMOVE_RECURSE
  "CMakeFiles/tota_sim.dir/event_queue.cc.o"
  "CMakeFiles/tota_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/tota_sim.dir/mobility.cc.o"
  "CMakeFiles/tota_sim.dir/mobility.cc.o.d"
  "CMakeFiles/tota_sim.dir/network.cc.o"
  "CMakeFiles/tota_sim.dir/network.cc.o.d"
  "CMakeFiles/tota_sim.dir/radio.cc.o"
  "CMakeFiles/tota_sim.dir/radio.cc.o.d"
  "CMakeFiles/tota_sim.dir/topology.cc.o"
  "CMakeFiles/tota_sim.dir/topology.cc.o.d"
  "CMakeFiles/tota_sim.dir/trace.cc.o"
  "CMakeFiles/tota_sim.dir/trace.cc.o.d"
  "libtota_sim.a"
  "libtota_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tota_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
