# Empty dependencies file for tota_common.
# This may be replaced when dependencies are built.
