file(REMOVE_RECURSE
  "libtota_common.a"
)
