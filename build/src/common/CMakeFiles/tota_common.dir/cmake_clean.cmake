file(REMOVE_RECURSE
  "CMakeFiles/tota_common.dir/geometry.cc.o"
  "CMakeFiles/tota_common.dir/geometry.cc.o.d"
  "CMakeFiles/tota_common.dir/ids.cc.o"
  "CMakeFiles/tota_common.dir/ids.cc.o.d"
  "CMakeFiles/tota_common.dir/logging.cc.o"
  "CMakeFiles/tota_common.dir/logging.cc.o.d"
  "CMakeFiles/tota_common.dir/rng.cc.o"
  "CMakeFiles/tota_common.dir/rng.cc.o.d"
  "CMakeFiles/tota_common.dir/stats.cc.o"
  "CMakeFiles/tota_common.dir/stats.cc.o.d"
  "libtota_common.a"
  "libtota_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tota_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
