# Empty compiler generated dependencies file for tota_apps.
# This may be replaced when dependencies are built.
