
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/content_store.cc" "src/apps/CMakeFiles/tota_apps.dir/content_store.cc.o" "gcc" "src/apps/CMakeFiles/tota_apps.dir/content_store.cc.o.d"
  "/root/repo/src/apps/crowd.cc" "src/apps/CMakeFiles/tota_apps.dir/crowd.cc.o" "gcc" "src/apps/CMakeFiles/tota_apps.dir/crowd.cc.o.d"
  "/root/repo/src/apps/flocking.cc" "src/apps/CMakeFiles/tota_apps.dir/flocking.cc.o" "gcc" "src/apps/CMakeFiles/tota_apps.dir/flocking.cc.o.d"
  "/root/repo/src/apps/gathering.cc" "src/apps/CMakeFiles/tota_apps.dir/gathering.cc.o" "gcc" "src/apps/CMakeFiles/tota_apps.dir/gathering.cc.o.d"
  "/root/repo/src/apps/meeting.cc" "src/apps/CMakeFiles/tota_apps.dir/meeting.cc.o" "gcc" "src/apps/CMakeFiles/tota_apps.dir/meeting.cc.o.d"
  "/root/repo/src/apps/routing.cc" "src/apps/CMakeFiles/tota_apps.dir/routing.cc.o" "gcc" "src/apps/CMakeFiles/tota_apps.dir/routing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tota/CMakeFiles/tota_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tuples/CMakeFiles/tota_tuples.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/tota_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tota_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
