file(REMOVE_RECURSE
  "CMakeFiles/tota_apps.dir/content_store.cc.o"
  "CMakeFiles/tota_apps.dir/content_store.cc.o.d"
  "CMakeFiles/tota_apps.dir/crowd.cc.o"
  "CMakeFiles/tota_apps.dir/crowd.cc.o.d"
  "CMakeFiles/tota_apps.dir/flocking.cc.o"
  "CMakeFiles/tota_apps.dir/flocking.cc.o.d"
  "CMakeFiles/tota_apps.dir/gathering.cc.o"
  "CMakeFiles/tota_apps.dir/gathering.cc.o.d"
  "CMakeFiles/tota_apps.dir/meeting.cc.o"
  "CMakeFiles/tota_apps.dir/meeting.cc.o.d"
  "CMakeFiles/tota_apps.dir/routing.cc.o"
  "CMakeFiles/tota_apps.dir/routing.cc.o.d"
  "libtota_apps.a"
  "libtota_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tota_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
