file(REMOVE_RECURSE
  "libtota_apps.a"
)
