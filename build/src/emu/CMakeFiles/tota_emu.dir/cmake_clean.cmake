file(REMOVE_RECURSE
  "CMakeFiles/tota_emu.dir/render.cc.o"
  "CMakeFiles/tota_emu.dir/render.cc.o.d"
  "CMakeFiles/tota_emu.dir/world.cc.o"
  "CMakeFiles/tota_emu.dir/world.cc.o.d"
  "libtota_emu.a"
  "libtota_emu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tota_emu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
