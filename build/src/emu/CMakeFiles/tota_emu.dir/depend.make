# Empty dependencies file for tota_emu.
# This may be replaced when dependencies are built.
