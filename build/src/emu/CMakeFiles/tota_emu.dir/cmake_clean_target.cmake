file(REMOVE_RECURSE
  "libtota_emu.a"
)
