# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_wire[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_pattern[1]_include.cmake")
include("/root/repo/build/tests/test_tuple_space[1]_include.cmake")
include("/root/repo/build/tests/test_events[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_tuples[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_maintenance[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_middleware[1]_include.cmake")
include("/root/repo/build/tests/test_emu[1]_include.cmake")
include("/root/repo/build/tests/test_access[1]_include.cmake")
include("/root/repo/build/tests/test_content_store[1]_include.cmake")
include("/root/repo/build/tests/test_crowd[1]_include.cmake")
