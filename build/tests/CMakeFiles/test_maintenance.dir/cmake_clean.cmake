file(REMOVE_RECURSE
  "CMakeFiles/test_maintenance.dir/test_maintenance.cc.o"
  "CMakeFiles/test_maintenance.dir/test_maintenance.cc.o.d"
  "test_maintenance"
  "test_maintenance.pdb"
  "test_maintenance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
