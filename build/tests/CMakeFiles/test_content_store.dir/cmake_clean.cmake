file(REMOVE_RECURSE
  "CMakeFiles/test_content_store.dir/test_content_store.cc.o"
  "CMakeFiles/test_content_store.dir/test_content_store.cc.o.d"
  "test_content_store"
  "test_content_store.pdb"
  "test_content_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_content_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
