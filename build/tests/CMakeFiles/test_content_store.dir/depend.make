# Empty dependencies file for test_content_store.
# This may be replaced when dependencies are built.
