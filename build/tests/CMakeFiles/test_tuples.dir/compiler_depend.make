# Empty compiler generated dependencies file for test_tuples.
# This may be replaced when dependencies are built.
