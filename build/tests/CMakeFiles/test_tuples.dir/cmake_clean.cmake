file(REMOVE_RECURSE
  "CMakeFiles/test_tuples.dir/test_tuples.cc.o"
  "CMakeFiles/test_tuples.dir/test_tuples.cc.o.d"
  "test_tuples"
  "test_tuples.pdb"
  "test_tuples[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tuples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
