
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/test_common.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/test_common.dir/test_common.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/emu/CMakeFiles/tota_emu.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/tota_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/tota_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tota_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tuples/CMakeFiles/tota_tuples.dir/DependInfo.cmake"
  "/root/repo/build/src/tota/CMakeFiles/tota_core.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/tota_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tota_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
