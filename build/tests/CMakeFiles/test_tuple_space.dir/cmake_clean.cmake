file(REMOVE_RECURSE
  "CMakeFiles/test_tuple_space.dir/test_tuple_space.cc.o"
  "CMakeFiles/test_tuple_space.dir/test_tuple_space.cc.o.d"
  "test_tuple_space"
  "test_tuple_space.pdb"
  "test_tuple_space[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tuple_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
