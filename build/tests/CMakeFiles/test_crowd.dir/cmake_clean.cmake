file(REMOVE_RECURSE
  "CMakeFiles/test_crowd.dir/test_crowd.cc.o"
  "CMakeFiles/test_crowd.dir/test_crowd.cc.o.d"
  "test_crowd"
  "test_crowd.pdb"
  "test_crowd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crowd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
