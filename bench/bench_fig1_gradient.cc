// FIG1 — the paper's Figure 1 scenario: tuples injected into the network
// "autonomously propagate" and paint a spatial structure over it.
//
// Reproduction: inject a GradientTuple on grid networks of growing size
// and verify/report (a) the painted field equals the BFS hop-distance
// oracle everywhere, (b) propagation cost is exactly one broadcast per
// node (the multicast-socket economy the prototype was built around),
// and (c) how long the expanding ring takes to cover the network.
#include "exp_common.h"

using namespace tota;

int main() {
  exp::section("FIG1: distributed tuple paints a hop-distance field");
  std::printf("%-28s %-10s %-12s %-12s %-12s\n", "grid", "nodes",
              "accuracy", "tx/node", "cover_ms");

  for (const int side : {3, 5, 8, 12, 16}) {
    emu::World world(exp::manet_options(2003));
    const auto nodes = world.spawn_grid(side, side, 80.0);
    world.run_for(SimTime::from_seconds(1));

    const SimTime injected = world.now();
    const auto cost = exp::tx_cost(world, [&] {
      world.mw(nodes.front())
          .inject(std::make_unique<tuples::GradientTuple>("fig1"));
      world.run_for(SimTime::from_seconds(5));
    });

    // Time until the farthest node sensed the tuple = time of the last
    // arrival; re-derive by checking when the far corner saw it (the
    // diameter endpoint).  We re-run with a subscription for precision.
    emu::World timed(exp::manet_options(2003));
    const auto tnodes = timed.spawn_grid(side, side, 80.0);
    timed.run_for(SimTime::from_seconds(1));
    SimTime last_arrival = timed.now();
    for (const NodeId n : tnodes) {
      timed.mw(n).subscribe(
          Pattern::of_type(tuples::GradientTuple::kTag),
          [&last_arrival, &timed](const Event&) {
            last_arrival = timed.now();
          },
          static_cast<int>(EventKind::kTupleArrived));
    }
    const SimTime t0 = timed.now();
    timed.mw(tnodes.front())
        .inject(std::make_unique<tuples::GradientTuple>("fig1"));
    timed.run_for(SimTime::from_seconds(5));

    char label[32];
    std::snprintf(label, sizeof(label), "%dx%d", side, side);
    std::printf("%-28s %-10zu %-12.3f %-12.3f %-12.1f\n", label,
                nodes.size(), exp::gradient_accuracy(world, nodes.front()),
                static_cast<double>(cost) / static_cast<double>(nodes.size()),
                (last_arrival - t0).millis());
    (void)injected;
  }

  std::printf(
      "\nexpected shape: accuracy 1.0 everywhere, ~1 tx/node, cover time\n"
      "growing linearly with network diameter (expanding-ring flood).\n");
  exp::emit_json("fig1_gradient");
  return 0;
}
