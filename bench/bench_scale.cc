// SCALE — churn-heavy macro benchmark of the indexed hot path.
//
// 2070 nodes in a 4-neighbour grid mesh carry four tuple types at once
// (12 gradient fields, 8 adverts, 6 flock beacons, 4 scope-limited
// floods), every node runs typed subscriptions, and a rotating subset of
// nodes teleports out of the mesh and back (link flaps), driving the
// self-maintenance machinery.  Interleaved typed read sweeps measure the
// store's query latency at scale; space.*/bus.* counters quantify how
// much work the type index and subscription buckets avoid.
//
// Writes BENCH_scale.json — the perf trajectory's scale datapoint
// (docs/OBSERVABILITY.md).  The bench.scale.* gauges carry wall-clock
// phase times, so unlike the fixed-seed scenario benches this file is
// NOT expected to be bit-for-bit reproducible; the sim-side counters
// (engine.*, space.*, bus.*, maint.*) still are.
#include <chrono>
#include <cstdio>

#include "exp_common.h"

using namespace tota;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::microseconds>(
                 Clock::now() - start)
                 .count()) /
         1000.0;
}

}  // namespace

int main() {
  tuples::register_standard_tuples();
  auto& hub = obs::default_hub();

  exp::section("SCALE: 2k-node churn, many tuple types, link flaps");
  emu::World world(exp::manet_options(/*seed=*/97, /*range_m=*/100.0));

  // 46 x 45 grid at 80 m spacing: 2070 nodes, degree-4 mesh (diagonals
  // at 113 m fall outside the 100 m range).
  const auto t_spawn = Clock::now();
  const auto nodes = world.spawn_grid(46, 45, 80.0);
  world.run_for(SimTime::from_millis(500));
  const double spawn_ms = ms_since(t_spawn);
  std::printf("nodes=%zu spawn+settle=%.0fms\n", nodes.size(), spawn_ms);

  // Typed subscriptions on every node: gradient arrivals on one half,
  // advert arrivals on the other, so every flood exercises the
  // subscription buckets on 2k buses.
  std::uint64_t reactions = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Pattern p = i % 2 == 0
                          ? Pattern::of_type(tuples::GradientTuple::kTag)
                          : Pattern::of_type(tuples::AdvertTuple::kTag);
    world.mw(nodes[i]).subscribe(
        p, [&reactions](const Event&) { ++reactions; },
        static_cast<int>(EventKind::kTupleArrived));
  }

  // Four tuple types, 30 structures total, sources spread over the grid.
  const auto t_flood = Clock::now();
  for (int i = 0; i < 12; ++i) {
    world.mw(nodes[(i * 151) % nodes.size()])
        .inject(std::make_unique<tuples::GradientTuple>(
            "field" + std::to_string(i)));
  }
  for (int i = 0; i < 8; ++i) {
    world.mw(nodes[(i * 223 + 57) % nodes.size()])
        .inject(std::make_unique<tuples::AdvertTuple>(
            "sensor" + std::to_string(i)));
  }
  for (int i = 0; i < 6; ++i) {
    world.mw(nodes[(i * 311 + 113) % nodes.size()])
        .inject(std::make_unique<tuples::FlockTuple>(/*target_distance=*/3));
  }
  for (int i = 0; i < 4; ++i) {
    world.mw(nodes[(i * 401 + 171) % nodes.size()])
        .inject(std::make_unique<tuples::FloodTuple>(
            "notice" + std::to_string(i), wire::Value{i}));
  }
  world.run_for(SimTime::from_seconds(5));
  const double flood_ms = ms_since(t_flood);

  const double grad_cov =
      exp::coverage(world, Pattern::of_type(tuples::GradientTuple::kTag));
  std::printf("flood=%.0fms gradient_coverage=%.3f reactions=%llu\n",
              flood_ms, grad_cov,
              static_cast<unsigned long long>(reactions));

  // Typed read sweep: every node resolves one specific gradient field —
  // the app-tick query pattern (cf. apps/*.cc peek loops).
  const auto t_read = Clock::now();
  std::size_t hits = 0;
  constexpr int kSweeps = 8;
  for (int sweep = 0; sweep < kSweeps; ++sweep) {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const Pattern p =
          Pattern::of_type(tuples::GradientTuple::kTag)
              .eq("name", "field" + std::to_string((i + sweep) % 12));
      if (world.mw(nodes[i]).read_one(p) != nullptr) ++hits;
    }
  }
  const double read_ms = ms_since(t_read);
  const double read_ns_per_op =
      read_ms * 1e6 / (kSweeps * static_cast<double>(nodes.size()));
  std::printf("read_sweep=%.0fms (%.0f ns/read_one, hit_rate=%.3f)\n",
              read_ms, read_ns_per_op,
              static_cast<double>(hits) /
                  (kSweeps * static_cast<double>(nodes.size())));

  // Link flaps: 10 rounds x 64 nodes teleport 50 km away and back —
  // every hop severs ~4 links, cascading retraction/heal rounds through
  // the 30 structures.
  const auto t_churn = Clock::now();
  constexpr int kRounds = 10;
  constexpr std::size_t kFlappers = 64;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::pair<NodeId, Vec2>> home;
    for (std::size_t i = 0; i < kFlappers; ++i) {
      const NodeId id = nodes[(i * 31 + round * 7 + 1) % nodes.size()];
      home.emplace_back(id, world.net().topology().position(id));
      world.net().move_node(id, Vec2{50000.0 + 200.0 * i, 50000.0});
    }
    world.run_for(SimTime::from_millis(400));
    for (const auto& [id, pos] : home) world.net().move_node(id, pos);
    world.run_for(SimTime::from_millis(400));
  }
  world.run_for(SimTime::from_seconds(2));
  const double churn_ms = ms_since(t_churn);
  const double grad_cov_after =
      exp::coverage(world, Pattern::of_type(tuples::GradientTuple::kTag));
  std::printf("churn=%.0fms (%d rounds x %zu flappers) coverage_after=%.3f\n",
              churn_ms, kRounds, kFlappers, grad_cov_after);

  // Index effectiveness: candidates examined vs what naive full scans
  // would have examined, across every query of the run.
  const auto candidates = hub.metrics.get("space.query.candidates");
  const auto naive = hub.metrics.get("space.query.naive_candidates");
  const double candidate_ratio =
      naive > 0 ? static_cast<double>(candidates) / static_cast<double>(naive)
                : 1.0;
  const auto bus_candidates = hub.metrics.get("bus.dispatch.candidates");
  const auto bus_fired = hub.metrics.get("bus.dispatch.fired");
  std::printf(
      "space candidate_ratio=%.4f (%lld/%lld) bus candidates/fired=%.2f\n",
      candidate_ratio, static_cast<long long>(candidates),
      static_cast<long long>(naive),
      bus_fired > 0 ? static_cast<double>(bus_candidates) /
                          static_cast<double>(bus_fired)
                    : 0.0);

  hub.metrics.gauge("bench.scale.nodes")
      .set(static_cast<double>(nodes.size()));
  hub.metrics.gauge("bench.scale.spawn_ms").set(spawn_ms);
  hub.metrics.gauge("bench.scale.flood_ms").set(flood_ms);
  hub.metrics.gauge("bench.scale.read_one_ns").set(read_ns_per_op);
  hub.metrics.gauge("bench.scale.churn_ms").set(churn_ms);
  hub.metrics.gauge("bench.scale.gradient_coverage").set(grad_cov_after);
  hub.metrics.gauge("bench.scale.space_candidate_ratio").set(candidate_ratio);

  exp::emit_json("scale");
  return 0;
}
