// SCALE — sharded-world macro benchmark: one big churn-heavy world run
// at several shard (= thread) counts.
//
// A ~50k-node degree-4 grid mesh (224×224 at 80 m spacing, diagonals
// fall outside the 100 m range) carries four tuple types at once, every
// node runs a typed subscription, and rotating subsets of nodes teleport
// out of the mesh and back, driving the self-maintenance machinery.  The
// whole scenario repeats once per entry of the thread list, producing
// the scaling curve bench.scale.t<N>.* (docs/SIM.md).
//
// Knobs (environment):
//   TOTA_BENCH_NODES    target population; rounded down to a square grid
//                       (default 50176 = 224²)
//   TOTA_BENCH_THREADS  comma-separated shard counts (default "1,2,4,8")
//
// Writes BENCH_scale.json.  The sim-side counters and the coverage /
// reaction gauges are bit-for-bit reproducible for a fixed knob setting
// (each world is deterministic per (seed, shard_count) — docs/SIM.md);
// only the bench.scale.*_ms/_ns/nodes_per_sec/speedup and
// bench.query.*_ns wall-clock gauges vary run to run, and
// scripts/check_bench_determinism.py --ignore's them in CI.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "emu/sharded_world.h"
#include "exp_common.h"

using namespace tota;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::microseconds>(
                 Clock::now() - start)
                 .count()) /
         1000.0;
}

std::size_t nodes_knob() {
  const char* env = std::getenv("TOTA_BENCH_NODES");
  const long v = env != nullptr ? std::atol(env) : 0;
  return v > 0 ? static_cast<std::size_t>(v) : 50176;
}

std::vector<std::uint32_t> threads_knob() {
  const char* env = std::getenv("TOTA_BENCH_THREADS");
  const std::string spec = env != nullptr && *env != '\0' ? env : "1,2,4,8";
  std::vector<std::uint32_t> out;
  for (std::size_t pos = 0; pos < spec.size();) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    const long v = std::atol(tok.c_str());
    if (v > 0) out.push_back(static_cast<std::uint32_t>(v));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (out.empty()) out.push_back(1);
  return out;
}

struct RunResult {
  double spawn_ms = 0;
  double flood_ms = 0;
  double read_one_ns = 0;
  double churn_ms = 0;
  double nodes_per_sec = 0;  // node-sim-seconds advanced per wall second
  double coverage = 0;
  double reactions = 0;
  // Query-layer section (bench.query.*, docs/QUERY.md): continuous-query
  // delta counts are deterministic per (seed, shards); pred_read_ns is
  // wall clock.
  double cq_queries = 0;
  double cq_added = 0;
  double cq_updated = 0;
  double cq_removed = 0;
  double pred_matches = 0;
  double pred_read_ns = 0;
};

/// One full scenario at a given shard count.  Everything except the wall
/// clocks is deterministic per (seed, shards).
RunResult run_one(std::uint32_t shards, int side,
                  obs::MetricsRegistry& into) {
  RunResult r;
  emu::ShardedWorld::Options opts;
  opts.net.radio.range_m = 100.0;
  opts.net.seed = 97;
  opts.net.shards = shards;
  emu::ShardedWorld world(opts);

  const auto t_spawn = Clock::now();
  const auto nodes = world.spawn_grid(side, side, 80.0);
  world.seal();
  world.run_for(SimTime::from_millis(500));
  r.spawn_ms = ms_since(t_spawn);

  // Typed subscriptions on every node: gradient arrivals on one half,
  // advert arrivals on the other.  Reactions run on worker threads, so
  // the tally is the one atomic in the whole scenario.
  std::atomic<std::uint64_t> reactions{0};
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Pattern p = i % 2 == 0
                          ? Pattern::of_type(tuples::GradientTuple::kTag)
                          : Pattern::of_type(tuples::AdvertTuple::kTag);
    world.mw(nodes[i]).subscribe(
        p,
        [&reactions](const Event&) {
          reactions.fetch_add(1, std::memory_order_relaxed);
        },
        static_cast<int>(EventKind::kTupleArrived));
  }

  // Continuous queries on a sample of nodes: a standing predicate query
  // over nearby gradient replicas, maintained incrementally through the
  // flood and churn phases below (docs/QUERY.md).
  std::atomic<std::uint64_t> cq_added{0};
  std::atomic<std::uint64_t> cq_updated{0};
  std::atomic<std::uint64_t> cq_removed{0};
  std::size_t cq_queries = 0;
  for (std::size_t i = 0; i < nodes.size(); i += 64) {
    Pattern near = Pattern::of_type(tuples::GradientTuple::kTag);
    near.where("hopcount", Pred::le(16));
    world.mw(nodes[i]).subscribe_query(
        std::move(near), [&cq_added, &cq_updated, &cq_removed](
                             const QueryDelta& d) {
          switch (d.kind) {
            case QueryDelta::Kind::kAdded:
              cq_added.fetch_add(1, std::memory_order_relaxed);
              break;
            case QueryDelta::Kind::kUpdated:
              cq_updated.fetch_add(1, std::memory_order_relaxed);
              break;
            case QueryDelta::Kind::kRemoved:
              cq_removed.fetch_add(1, std::memory_order_relaxed);
              break;
          }
        });
    ++cq_queries;
  }

  // Four tuple types, ten network-wide structures, sources spread over
  // the grid (each structure reaches all ~n nodes, so the flood phase
  // moves ~10n replicas).
  const auto t_flood = Clock::now();
  for (int i = 0; i < 4; ++i) {
    world.mw(nodes[(i * 1511) % nodes.size()])
        .inject(std::make_unique<tuples::GradientTuple>(
            "field" + std::to_string(i)));
  }
  for (int i = 0; i < 2; ++i) {
    world.mw(nodes[(i * 2231 + 57) % nodes.size()])
        .inject(std::make_unique<tuples::AdvertTuple>(
            "sensor" + std::to_string(i)));
  }
  for (int i = 0; i < 2; ++i) {
    world.mw(nodes[(i * 3111 + 113) % nodes.size()])
        .inject(std::make_unique<tuples::FlockTuple>(/*target_distance=*/3));
  }
  for (int i = 0; i < 2; ++i) {
    world.mw(nodes[(i * 4011 + 171) % nodes.size()])
        .inject(std::make_unique<tuples::FloodTuple>(
            "notice" + std::to_string(i), wire::Value{i}));
  }
  world.run_for(SimTime::from_seconds(5));
  r.flood_ms = ms_since(t_flood);

  // Typed read sweep: every node resolves one specific gradient field —
  // the app-tick query pattern (cf. apps/*.cc peek loops).
  const auto t_read = Clock::now();
  constexpr int kSweeps = 4;
  for (int sweep = 0; sweep < kSweeps; ++sweep) {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const Pattern p =
          Pattern::of_type(tuples::GradientTuple::kTag)
              .eq("name", "field" + std::to_string((i + sweep) % 4));
      (void)world.mw(nodes[i]).read_one(p);
    }
  }
  const double read_ms = ms_since(t_read);
  r.read_one_ns =
      read_ms * 1e6 / (kSweeps * static_cast<double>(nodes.size()));

  // Predicate read sweep: the same app-tick query with an AST residual,
  // planned through the type bucket (bench.query.pred_read_ns).
  const auto t_pred = Clock::now();
  std::uint64_t pred_matches = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    Pattern p = Pattern::of_type(tuples::GradientTuple::kTag);
    p.eq("name", "field" + std::to_string(i % 4))
        .where("hopcount", Pred::le(24));
    pred_matches += world.mw(nodes[i]).space().peek(p).size();
  }
  const double pred_ms = ms_since(t_pred);
  r.pred_matches = static_cast<double>(pred_matches);
  r.pred_read_ns = pred_ms * 1e6 / static_cast<double>(nodes.size());

  // Link flaps: rotating cohorts teleport 50 km away and back — every
  // hop severs ~4 links, cascading retraction/heal rounds through the
  // structures.  This is the phase the scaling curve is about: healing
  // is local, so it parallelizes across shards.
  const auto t_churn = Clock::now();
  constexpr int kRounds = 6;
  const std::size_t flappers = std::max<std::size_t>(nodes.size() / 256, 8);
  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::pair<NodeId, Vec2>> home;
    for (std::size_t i = 0; i < flappers; ++i) {
      const NodeId id = nodes[(i * 797 + round * 131 + 1) % nodes.size()];
      home.emplace_back(id, world.net().position(id));
      world.move_node(id, Vec2{90000.0 + 200.0 * static_cast<double>(i),
                               90000.0});
    }
    world.run_for(SimTime::from_millis(400));
    for (const auto& [id, pos] : home) world.move_node(id, pos);
    world.run_for(SimTime::from_millis(400));
  }
  world.run_for(SimTime::from_seconds(2));
  r.churn_ms = ms_since(t_churn);

  const double wall_s = (r.flood_ms + read_ms + r.churn_ms) / 1000.0;
  const double sim_s = world.now().seconds() - 0.5;  // minus settle
  r.nodes_per_sec =
      wall_s > 0 ? static_cast<double>(nodes.size()) * sim_s / wall_s : 0;
  r.coverage =
      exp::coverage(world, Pattern::of_type(tuples::GradientTuple::kTag));
  r.reactions = static_cast<double>(reactions.load());
  r.cq_queries = static_cast<double>(cq_queries);
  r.cq_added = static_cast<double>(cq_added.load());
  r.cq_updated = static_cast<double>(cq_updated.load());
  r.cq_removed = static_cast<double>(cq_removed.load());

  world.export_metrics(into);
  return r;
}

}  // namespace

int main() {
  tuples::register_standard_tuples();
  auto& hub = obs::default_hub();

  const std::size_t target = nodes_knob();
  const int side = std::max(2, static_cast<int>(std::sqrt(
                                   static_cast<double>(target))));
  const auto thread_counts = threads_knob();

  exp::section("SCALE: sharded world, " + std::to_string(side * side) +
               " nodes, threads {" + [&] {
                 std::string s;
                 for (const auto t : thread_counts) {
                   if (!s.empty()) s += ",";
                   s += std::to_string(t);
                 }
                 return s;
               }() + "}");

  double base_nps = 0;
  double best_nps = 0;
  for (const std::uint32_t t : thread_counts) {
    const RunResult r = run_one(t, side, hub.metrics);
    std::printf(
        "t=%-2u spawn=%.0fms flood=%.0fms read_one=%.0fns churn=%.0fms "
        "nodes/s=%.3g coverage=%.3f reactions=%.0f cq=%.0f/%.0f/%.0f "
        "pred_read=%.0fns\n",
        t, r.spawn_ms, r.flood_ms, r.read_one_ns, r.churn_ms,
        r.nodes_per_sec, r.coverage, r.reactions, r.cq_added, r.cq_updated,
        r.cq_removed, r.pred_read_ns);

    const std::string pre = "bench.scale.t" + std::to_string(t) + ".";
    hub.metrics.gauge(pre + "spawn_ms").set(r.spawn_ms);
    hub.metrics.gauge(pre + "flood_ms").set(r.flood_ms);
    hub.metrics.gauge(pre + "read_one_ns").set(r.read_one_ns);
    hub.metrics.gauge(pre + "churn_ms").set(r.churn_ms);
    hub.metrics.gauge(pre + "nodes_per_sec").set(r.nodes_per_sec);
    hub.metrics.gauge(pre + "gradient_coverage").set(r.coverage);
    hub.metrics.gauge(pre + "reactions").set(r.reactions);

    const std::string qpre = "bench.query.t" + std::to_string(t) + ".";
    hub.metrics.gauge(qpre + "cq_queries").set(r.cq_queries);
    hub.metrics.gauge(qpre + "cq_added").set(r.cq_added);
    hub.metrics.gauge(qpre + "cq_updated").set(r.cq_updated);
    hub.metrics.gauge(qpre + "cq_removed").set(r.cq_removed);
    hub.metrics.gauge(qpre + "pred_matches").set(r.pred_matches);
    hub.metrics.gauge(qpre + "pred_read_ns").set(r.pred_read_ns);
    if (base_nps == 0) base_nps = r.nodes_per_sec;
    if (r.nodes_per_sec > best_nps) best_nps = r.nodes_per_sec;
  }

  // Index effectiveness across every query of every run — candidates
  // examined vs what naive full scans would have examined.
  const auto candidates = hub.metrics.get("space.query.candidates");
  const auto naive = hub.metrics.get("space.query.naive_candidates");
  const double candidate_ratio =
      naive > 0 ? static_cast<double>(candidates) / static_cast<double>(naive)
                : 1.0;
  std::printf("space candidate_ratio=%.4f (%lld/%lld)\n", candidate_ratio,
              static_cast<long long>(candidates),
              static_cast<long long>(naive));

  hub.metrics.gauge("bench.scale.nodes")
      .set(static_cast<double>(side * side));
  hub.metrics.gauge("bench.scale.nodes_per_sec").set(best_nps);
  hub.metrics.gauge("bench.scale.speedup")
      .set(base_nps > 0 ? best_nps / base_nps : 0.0);
  hub.metrics.gauge("bench.scale.space_candidate_ratio").set(candidate_ratio);

  exp::emit_json("scale");
  return 0;
}
