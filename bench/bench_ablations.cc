// ABL — ablations of the design choices called out in DESIGN.md §6.
//
//  A1  maintenance on/off: what breaks without link-up re-propagation
//      and retraction (stale structures, blind newcomers) and what each
//      mechanism costs.
//  A2  broadcast vs unicast propagation: transmissions needed to flood a
//      field if every neighbour had to be addressed individually
//      (the 802.11b-handshake cost the prototype avoided via multicast).
//  A3  dedup-by-uid: how many duplicate deliveries the uid filter absorbs
//      during one flood (what naive re-flooding would re-process).
#include "exp_common.h"

using namespace tota;

int main() {
  exp::section(
      "A1: maintenance mechanisms on/off (6x6 grid, slit cut + 1 join)");
  std::printf("%-26s %-14s %-14s %-14s\n", "config", "accuracy",
              "join_covered", "maint_tx");
  struct Config {
    const char* name;
    bool link_up;
    bool link_down;
  };
  for (const Config cfg : {Config{"full maintenance", true, true},
                           Config{"no link-up reprop", false, true},
                           Config{"no retraction", true, false},
                           Config{"none (ablated)", false, false}}) {
    emu::World::Options o = exp::manet_options(71);
    o.maintenance.repropagate_on_link_up = cfg.link_up;
    o.maintenance.retract_on_link_down = cfg.link_down;
    emu::World world(o);
    const int side = 6;
    const auto grid = world.spawn_grid(side, side, 80.0);
    world.run_for(SimTime::from_seconds(1));
    // Bottom-left source + a middle-column slit (keeping row 0): nodes
    // past the slit must stretch, so skipping retraction leaves visibly
    // stale (too small) distances.
    const NodeId source = grid[static_cast<std::size_t>((side - 1) * side)];
    world.mw(source).inject(std::make_unique<tuples::GradientTuple>("f"));
    world.run_for(SimTime::from_seconds(3));

    const auto before = world.net().counters().get("radio.tx");
    for (int row = 1; row < side; ++row) {
      world.despawn(grid[static_cast<std::size_t>(row * side + side / 2)]);
    }
    world.run_for(SimTime::from_seconds(5));
    const NodeId joiner = world.spawn({6 * 80.0, 0});  // newcomer appears
    world.run_for(SimTime::from_seconds(3));
    const auto maint_tx = world.net().counters().get("radio.tx") - before;

    const double joiner_covered =
        world.mw(joiner)
                .read(Pattern::of_type(tuples::GradientTuple::kTag))
                .empty()
            ? 0.0
            : 1.0;
    exp::row(cfg.name,
             {{"accuracy", exp::gradient_accuracy(world, source)},
              {"join_covered", joiner_covered},
              {"maint_tx", static_cast<double>(maint_tx)}});
  }
  std::printf(
      "expected shape: full maintenance = accuracy 1.0 and the joiner\n"
      "covered, at some repair traffic; without link-up reprop the joiner\n"
      "stays blind; without retraction stale values survive the kill;\n"
      "with neither, zero maintenance traffic and both defects.\n");

  exp::section("A2: broadcast economy vs per-link unicast (one field flood)");
  std::printf("%-10s %-14s %-18s %-10s\n", "grid", "broadcast_tx",
              "unicast_equiv_tx", "saving");
  for (const int side : {4, 8, 12}) {
    emu::World world(exp::manet_options(72));
    const auto grid = world.spawn_grid(side, side, 80.0);
    world.run_for(SimTime::from_seconds(1));
    const auto cost = exp::tx_cost(world, [&] {
      world.mw(grid[0]).inject(std::make_unique<tuples::GradientTuple>("f"));
      world.run_for(SimTime::from_seconds(5));
    });
    // Unicast equivalent: each broadcast would instead be one frame per
    // neighbour of the sender (plus the 802.11 RTS/CTS/ACK handshake the
    // paper avoids; we count frames only, so this is a lower bound).
    std::int64_t unicast = 0;
    for (const NodeId n : grid) {
      unicast += static_cast<std::int64_t>(
          world.net().topology().neighbors(n).size());
    }
    char label[16];
    std::snprintf(label, sizeof(label), "%dx%d", side, side);
    std::printf("%-10s %-14lld %-18lld %-10.1fx\n", label,
                static_cast<long long>(cost),
                static_cast<long long>(unicast),
                static_cast<double>(unicast) /
                    static_cast<double>(std::max<std::int64_t>(cost, 1)));
  }
  std::printf(
      "expected shape: saving equals the average node degree (~4 on an\n"
      "interior-dominated grid) — the reason the prototype used multicast\n"
      "sockets and why TOTA suits \"really simple devices\".\n");

  exp::section("A3: duplicate absorption by uid dedup (one flood)");
  std::printf("%-10s %-12s %-14s %-16s\n", "grid", "tx", "deliveries",
              "dup_absorbed");
  for (const int side : {4, 8, 12}) {
    emu::World world(exp::manet_options(73));
    const auto grid = world.spawn_grid(side, side, 80.0);
    world.run_for(SimTime::from_seconds(1));
    const auto tx_before = world.net().counters().get("radio.tx");
    const auto rx_before = world.net().counters().get("radio.rx");
    world.mw(grid[0]).inject(std::make_unique<tuples::GradientTuple>("f"));
    world.run_for(SimTime::from_seconds(5));
    const auto tx = world.net().counters().get("radio.tx") - tx_before;
    const auto rx = world.net().counters().get("radio.rx") - rx_before;
    // Every reception beyond one per node is a duplicate the uid filter
    // absorbed without re-processing or re-propagating.
    const auto nodes = static_cast<std::int64_t>(grid.size());
    char label[16];
    std::snprintf(label, sizeof(label), "%dx%d", side, side);
    std::printf("%-10s %-12lld %-14lld %-16lld\n", label,
                static_cast<long long>(tx), static_cast<long long>(rx),
                static_cast<long long>(rx - (nodes - 1)));
  }
  std::printf(
      "expected shape: deliveries ~= nodes x degree while the structure\n"
      "only needs nodes-1 of them; everything else is absorbed by the\n"
      "middleware-level tuple id (content equality could not do this —\n"
      "field contents differ at every hop).\n");

  exp::section("A4: hold-down duration (repair speed vs repair traffic)");
  // The hold-down is this implementation's guard against the
  // distance-vector count-to-infinity (see engine.h).  Short windows
  // repair faster but let more transient zombie values circulate; long
  // windows trade repair latency for quiet.  Scenario: the 8x8 slit cut
  // from SEC6-P(1).
  std::printf("%-16s %-14s %-14s %-16s\n", "hold_down_ms", "repair_ms",
              "repair_tx", "retractions");
  for (const double hold_ms : {40.0, 80.0, 150.0, 300.0, 600.0}) {
    emu::World::Options o = exp::manet_options(74);
    o.maintenance.hold_down = SimTime::from_millis(hold_ms);
    emu::World world(o);
    const int side = 8;
    const auto grid = world.spawn_grid(side, side, 80.0);
    world.run_for(SimTime::from_seconds(1));
    const NodeId source = grid[static_cast<std::size_t>((side - 1) * side)];
    world.mw(source).inject(std::make_unique<tuples::GradientTuple>("f"));
    world.run_for(SimTime::from_seconds(5));

    const auto before = world.net().counters().get("radio.tx");
    for (int row = 1; row < side; ++row) {
      world.despawn(grid[static_cast<std::size_t>(row * side + side / 2)]);
    }
    const SimTime start = world.now();
    double repair_s = -1;
    while ((world.now() - start) < SimTime::from_seconds(30)) {
      world.run_for(SimTime::from_millis(10));
      if (exp::gradient_accuracy(world, source) == 1.0) {
        repair_s = (world.now() - start).seconds();
        break;
      }
    }
    const auto tx = world.net().counters().get("radio.tx") - before;
    std::uint64_t retractions = 0;
    for (const NodeId n : world.nodes()) {
      const auto& stats = world.mw(n).engine().maintenance_stats();
      retractions += stats.retractions_started + stats.retractions_cascaded;
    }
    std::printf("%-16.0f %-14.0f %-14lld %-16llu\n", hold_ms,
                repair_s * 1000.0, static_cast<long long>(tx),
                static_cast<unsigned long long>(retractions));
  }
  std::printf(
      "expected shape: repair time scales linearly with the hold-down\n"
      "(the stretch rebuilds one probe round per ring) while repair\n"
      "traffic stays flat in this quiet scenario — the window buys\n"
      "zombie-suppression under cross-traffic, not cheaper repairs.\n");
  exp::emit_json("ablations");
  return 0;
}
