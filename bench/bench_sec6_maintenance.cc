// SEC6-P — the performance evaluation the paper defers to future work:
// "quantifying the TOTA delays in updating the tuples distributed
// structures in response to dynamic changes."
//
// Three sweeps:
//   (1) repair delay + message overhead after killing one relay, vs.
//       network size;
//   (2) the same vs. network density (average degree);
//   (3) steady-state maintenance traffic vs. churn rate.
//
// "Repair delay" = simulated time from the topology change until every
// node's replica again equals the BFS oracle.
#include "exp_common.h"

using namespace tota;

namespace {

/// Runs until gradient_accuracy == 1 or deadline; returns elapsed time
/// (negative when the deadline was hit).
double repair_delay_s(emu::World& world, NodeId source, double deadline_s) {
  const SimTime start = world.now();
  while (world.now() - start < SimTime::from_seconds(deadline_s)) {
    world.run_for(SimTime::from_millis(20));
    if (exp::gradient_accuracy(world, source) == 1.0) {
      return (world.now() - start).seconds();
    }
  }
  return -1.0;
}

}  // namespace

int main() {
  exp::section(
      "SEC6-P(1): repair after cutting a slit through the grid, vs size");
  // Killing one interior node of a grid changes no BFS distance (paths
  // route around at equal length), so instead a vertical slit of nodes is
  // removed from the middle column, leaving only the top row as a bridge:
  // every node beyond the slit must *stretch* its distance — the hard
  // repair direction (retract + hold-down + rebuild).
  std::printf("%-10s %-12s %-14s %-12s %-12s %-14s %-14s\n", "nodes",
              "stretched", "repair_ms", "rep_p50_ms", "rep_p95_ms",
              "repair_tx", "tx_per_node");
  for (const int side : {4, 6, 8, 10, 12}) {
    // A per-world hub isolates this row's measurements; merged into the
    // process hub below so BENCH_sec6_maintenance.json sees everything.
    obs::Hub hub;
    auto options = exp::manet_options(41);
    options.hub = &hub;
    emu::World world(options);
    const auto grid = world.spawn_grid(side, side, 80.0);
    world.run_for(SimTime::from_seconds(1));
    // Bottom-left corner: the surviving row-0 bridge is then a detour,
    // so nodes across the slit genuinely stretch.
    const NodeId source = grid[static_cast<std::size_t>((side - 1) * side)];
    world.mw(source).inject(std::make_unique<tuples::GradientTuple>("f"));
    world.run_for(SimTime::from_seconds(5));

    const auto before_oracle = world.net().topology().hop_distances(source);
    const int col = side / 2;
    const auto before = world.net().counters().get("radio.tx");
    for (int row = 1; row < side; ++row) {
      world.despawn(grid[static_cast<std::size_t>(row * side + col)]);
    }
    // How many surviving nodes now sit farther from the source?
    int stretched = 0;
    const auto after_oracle = world.net().topology().hop_distances(source);
    for (const auto& [n, d] : after_oracle) {
      const auto it = before_oracle.find(n);
      if (it != before_oracle.end() && d > it->second) ++stretched;
    }
    const double d = repair_delay_s(world, source, 20.0);
    const auto tx = world.net().counters().get("radio.tx") - before;
    const auto nodes_left = world.nodes().size();
    // Per-replica repair latency, from the engine's maint.repair_ms
    // histogram (retraction → reinstallation, per node) rather than the
    // oracle-polling loop above, which measures global convergence.
    const auto& repair = hub.metrics.histogram("maint.repair_ms");
    std::printf("%-10d %-12d %-14.0f %-12.0f %-12.0f %-14lld %-14.2f\n",
                side * side, stretched, d * 1000.0, repair.quantile(0.5),
                repair.quantile(0.95), static_cast<long long>(tx),
                static_cast<double>(tx) / static_cast<double>(nodes_left));
    obs::default_hub().metrics.merge_from(hub.metrics);
  }
  std::printf(
      "expected shape: repair delay ~= hold-down window (150 ms) + a few\n"
      "hop latencies, growing mildly with the stretched region's depth;\n"
      "repair traffic tracks the number of stretched nodes, not N.\n"
      "rep_p50/p95 are per-replica retract->reinstall latencies from the\n"
      "maint.repair_ms histogram: p50 ~= one hold-down round, p95 the\n"
      "deepest ring of the stretched region.\n");

  exp::section(
      "SEC6-P(2): repair after a blast hole, vs density (80 nodes)");
  // A disc of nodes around the arena centre fails at once (the victim
  // set scales with density); survivors reroute around the hole.
  std::printf("%-12s %-12s %-10s %-14s %-14s\n", "range_m", "avg_degree",
              "killed", "repair_ms", "repair_tx");
  for (const double range : {110.0, 140.0, 170.0, 200.0}) {
    Summary delay_ms;
    Summary tx;
    Summary degree;
    Summary killed;
    for (const std::uint64_t seed : {51u, 52u, 53u, 54u}) {
      emu::World world(exp::manet_options(seed, range));
      world.spawn_random(80, Rect{{0, 0}, {600, 600}});
      world.run_for(SimTime::from_seconds(1));
      auto nodes = world.nodes();
      double deg = 0;
      for (const NodeId n : nodes) {
        deg += static_cast<double>(
            world.net().topology().neighbors(n).size());
      }
      // Source: the node nearest the arena corner.
      NodeId source = nodes[0];
      for (const NodeId n : nodes) {
        if (world.net().position(n).norm() <
            world.net().position(source).norm()) {
          source = n;
        }
      }
      world.mw(source).inject(std::make_unique<tuples::GradientTuple>("f"));
      world.run_for(SimTime::from_seconds(5));
      if (exp::gradient_accuracy(world, source) < 1.0) continue;
      degree.add(deg / static_cast<double>(nodes.size()));

      const auto before = world.net().counters().get("radio.tx");
      int blast = 0;
      for (const NodeId n : nodes) {
        if (n != source &&
            distance(world.net().position(n), {300, 300}) < 110.0) {
          world.despawn(n);
          ++blast;
        }
      }
      killed.add(blast);
      const double d = repair_delay_s(world, source, 20.0);
      if (d < 0) continue;
      delay_ms.add(d * 1000.0);
      tx.add(static_cast<double>(world.net().counters().get("radio.tx") -
                                 before));
    }
    std::printf("%-12.0f %-12.1f %-10.1f %-14.0f %-14.0f\n", range,
                degree.mean(), killed.mean(), delay_ms.mean(), tx.mean());
  }
  std::printf(
      "expected shape: repair delay sits near the hold-down constant\n"
      "(~150 ms) regardless of density; maintenance traffic grows with\n"
      "density (more replicas overhear the damage and answer probes).\n");

  exp::section("SEC6-P(3): maintenance traffic vs churn rate (8x8 grid)");
  std::printf("%-16s %-16s %-16s\n", "churn_per_min", "tx_per_s",
              "final_accuracy");
  for (const int churn_per_min : {0, 6, 12, 30, 60}) {
    emu::World world(exp::manet_options(61));
    const auto grid = world.spawn_grid(8, 8, 80.0);
    world.run_for(SimTime::from_seconds(1));
    const NodeId source = grid[0];
    world.mw(source).inject(std::make_unique<tuples::GradientTuple>("f"));
    world.run_for(SimTime::from_seconds(5));

    const double duration_s = 60.0;
    const auto before = world.net().counters().get("radio.tx");
    Rng churn_rng(99);
    // Alternate kill/spawn to hold the population roughly steady.
    int events = static_cast<int>(duration_s / 60.0 * churn_per_min);
    for (int e = 0; e < events; ++e) {
      world.run_for(SimTime::from_seconds(duration_s /
                                          std::max(events, 1)));
      const auto nodes = world.nodes();
      if (e % 2 == 0 && nodes.size() > 40) {
        NodeId victim = nodes[churn_rng.below(nodes.size())];
        if (victim != source) world.despawn(victim);
      } else {
        world.spawn({churn_rng.uniform(0, 560), churn_rng.uniform(0, 560)});
      }
    }
    if (events == 0) world.run_for(SimTime::from_seconds(duration_s));
    world.run_for(SimTime::from_seconds(5));  // settle
    const auto tx = world.net().counters().get("radio.tx") - before;
    std::printf("%-16d %-16.1f %-16.2f\n", churn_per_min,
                static_cast<double>(tx) / (duration_s + 5.0),
                exp::gradient_accuracy(world, source));
  }
  std::printf(
      "expected shape: maintenance traffic grows roughly linearly with\n"
      "churn while accuracy stays ~1.0 — the adaptivity the paper claims,\n"
      "at a quantified price.\n");

  exp::section("SEC6-P summary: per-replica repair latency, whole run");
  const auto& repair =
      obs::default_hub().metrics.histogram("maint.repair_ms");
  std::printf("maint.repair_ms %s\n", repair.str().c_str());

  exp::emit_json("sec6_maintenance");
  return 0;
}
