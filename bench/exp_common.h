// Shared plumbing for the experiment binaries (bench_fig*, bench_sec*).
//
// Each binary reproduces one table/figure from DESIGN.md §2 and prints
// its rows to stdout; EXPERIMENTS.md records a snapshot of this output
// next to what the paper asserts.  In addition to the text tables, every
// binary calls emit_json() once before exiting, writing the
// machine-readable BENCH_<name>.json described in docs/OBSERVABILITY.md
// (manet_options() points every world at obs::default_hub(), so the
// file aggregates the whole run; a sweep that needs isolated numbers
// overrides Options::hub with a local Hub and merges it back).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.h"
#include "emu/world.h"
#include "obs/export.h"
#include "tuples/all.h"

namespace tota::exp {

inline emu::World::Options manet_options(std::uint64_t seed,
                                         double range_m = 100.0) {
  emu::World::Options o;
  o.net.radio.range_m = range_m;
  o.net.seed = seed;
  // Accumulate every world of this binary into the process hub, which
  // is what emit_json() exports.  (Worlds default to a private hub.)
  o.hub = &obs::default_hub();
  return o;
}

/// Prints a horizontal rule + centered header for one experiment section.
inline void section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Writes BENCH_<name>.json (metrics + trace of `hub`, or of the process
/// default hub when omitted) into the working directory and says so on
/// stdout.  Call once, at the end of main.
inline void emit_json(const std::string& name,
                      const obs::Hub* hub = nullptr) {
  const std::string path = obs::write_bench_json(
      name, hub != nullptr ? *hub : obs::default_hub());
  std::printf("\n[obs] wrote %s\n", path.c_str());
}

/// Prints one row of "name value" pairs, aligned.
inline void row(const std::string& label,
                const std::vector<std::pair<std::string, double>>& cells) {
  std::printf("%-28s", label.c_str());
  for (const auto& [name, value] : cells) {
    std::printf(" %s=%-10.4g", name.c_str(), value);
  }
  std::printf("\n");
}

/// Transmissions used by `body()`.
template <typename Fn>
std::int64_t tx_cost(emu::World& world, Fn&& body) {
  const auto before = world.net().counters().get("radio.tx");
  body();
  return world.net().counters().get("radio.tx") - before;
}

/// Fraction of nodes holding a replica matching `p`.  Works on any world
/// with nodes() and a const mw() (emu::World, emu::ShardedWorld).
template <typename WorldT>
double coverage(const WorldT& world, const Pattern& p) {
  const auto nodes = world.nodes();
  if (nodes.empty()) return 0.0;
  int holders = 0;
  for (const NodeId n : nodes) {
    if (!world.mw(n).read(p).empty()) ++holders;
  }
  return static_cast<double>(holders) / static_cast<double>(nodes.size());
}

/// Fraction of nodes whose gradient replica equals the BFS oracle
/// (unreachable nodes count as correct when empty).
template <typename WorldT>
double gradient_accuracy(const WorldT& world, NodeId source) {
  const auto oracle = world.net().topology().hop_distances(source);
  const Pattern p = Pattern::of_type(tuples::GradientTuple::kTag);
  int correct = 0;
  int total = 0;
  for (const NodeId n : world.nodes()) {
    ++total;
    const auto replica = world.mw(n).read_one(p);
    const auto it = oracle.find(n);
    if (it == oracle.end()) {
      correct += replica == nullptr ? 1 : 0;
    } else {
      correct += (replica != nullptr &&
                  replica->content().at("hopcount").as_int() == it->second)
                     ? 1
                     : 0;
    }
  }
  return total == 0 ? 1.0 : static_cast<double>(correct) / total;
}

}  // namespace tota::exp
