// AGGREGATION — in-network folding vs naive gather-at-source on the
// paper's own cost metric: radio transmissions.
//
// Every node holds one integer reading.  The folding strategy runs an
// Aggregator per node (docs/AGGREGATION.md): partial sums travel one
// hop at a time along the gradient tree, so the sink pays O(nodes)
// messages to assemble the first answer and only O(depth) per
// subsequent change.  The naive strategy floods every raw reading to
// the whole network so the sink can add them up locally — O(nodes) per
// *change*, O(nodes²) for the initial gather.
//
// Sections:
//   1. fold vs gather at three grid sizes (setup cost + one-change cost)
//   2. heterogeneous devices: duty-cycled motes + a gateway sink, with
//      refresh_on_tick recovering reports the sleepers missed
//      (net.duty_drop / net.mtu_drop accounting, docs/OBSERVABILITY.md)
//   3. sharded census at each TOTA_BENCH_THREADS shard count (default
//      "1,2,4") — the folded answer is shard-count invariant
//
// Writes BENCH_aggregation.json.  Every exported number is
// deterministic per (seed, shard_count); there are no wall-clock keys.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "emu/sharded_world.h"
#include "exp_common.h"
#include "net/device_profile.h"
#include "tuples/aggregator.h"

using namespace tota;
using tuples::Aggregator;
using tuples::AggregationTuple;
using tuples::AggOp;
using tuples::AggregatorOptions;
using tuples::GradientTuple;

namespace {

/// One node's reading: a scope-0 (local-only) tuple the contribution
/// pattern picks up.  Publishing is free — no frame leaves the node.
void put_reading(Middleware& mw, const char* name, std::int64_t val) {
  Pattern mine = Pattern::of_type(GradientTuple::kTag);
  mine.eq("name", name);
  mw.take(mine);
  auto r = std::make_unique<GradientTuple>(name, 0);
  r->content().set("val", val);
  mw.inject(std::move(r));
}

Pattern reading_pattern(const char* name) {
  Pattern p = Pattern::of_type(GradientTuple::kTag);
  p.eq("name", name).exists("val");
  return p;
}

std::vector<std::uint32_t> threads_knob() {
  const char* env = std::getenv("TOTA_BENCH_THREADS");
  const std::string spec = env != nullptr && *env != '\0' ? env : "1,2,4";
  std::vector<std::uint32_t> out;
  for (std::size_t pos = 0; pos < spec.size();) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    const long v = std::atol(tok.c_str());
    if (v > 0) out.push_back(static_cast<std::uint32_t>(v));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (out.empty()) out.push_back(1);
  return out;
}

}  // namespace

int main() {
  auto& metrics = obs::default_hub().metrics;

  // --- 1: message cost, folding vs gather-at-source ------------------------
  exp::section("AGGREGATION: fold vs gather, tx per answer");
  for (const int side : {4, 6, 8}) {
    const int n = side * side;
    const std::string label = "n=" + std::to_string(n);

    // (a) in-network folding.
    double fold_setup = 0, fold_update = 0, folded = 0;
    {
      emu::World world(exp::manet_options(71 + side));
      const auto ids = world.spawn_grid(side, side, 60.0);
      world.run_for(SimTime::from_seconds(1));
      std::vector<std::unique_ptr<Aggregator>> aggs;
      for (const NodeId id : ids) {
        aggs.push_back(std::make_unique<Aggregator>(world.mw(id)));
      }
      for (std::size_t i = 0; i < ids.size(); ++i) {
        put_reading(world.mw(ids[i]), "r", static_cast<std::int64_t>(i));
      }
      fold_setup = static_cast<double>(exp::tx_cost(world, [&] {
        auto spec = std::make_unique<AggregationTuple>("r", AggOp::kSum);
        spec->over("val").matching(reading_pattern("r"));
        aggs[0]->ask(std::move(spec));
        world.run_for(SimTime::from_seconds(5));
      }));
      // One reading changes in the far corner: re-reports cascade up the
      // tree — O(depth) frames, not O(n).
      fold_update = static_cast<double>(exp::tx_cost(world, [&] {
        put_reading(world.mw(ids.back()), "r", 1000);
        world.run_for(SimTime::from_seconds(3));
      }));
      folded = aggs[0]->result("r").value_or(-1);
    }

    // (b) naive gather-at-source: flood every raw reading everywhere.
    double gather_setup = 0, gather_update = 0, gathered = 0;
    {
      emu::World world(exp::manet_options(71 + side));
      const auto ids = world.spawn_grid(side, side, 60.0);
      world.run_for(SimTime::from_seconds(1));
      gather_setup = static_cast<double>(exp::tx_cost(world, [&] {
        for (std::size_t i = 0; i < ids.size(); ++i) {
          auto r = std::make_unique<GradientTuple>("flood");
          r->content().set("val", static_cast<std::int64_t>(i));
          world.mw(ids[i]).inject(std::move(r));
        }
        world.run_for(SimTime::from_seconds(5));
      }));
      gather_update = static_cast<double>(exp::tx_cost(world, [&] {
        auto r = std::make_unique<GradientTuple>("flood");
        r->content().set("val", static_cast<std::int64_t>(1000));
        world.mw(ids.back()).inject(std::move(r));
        world.run_for(SimTime::from_seconds(3));
      }));
      // The gathering sink dedups raw readings by source, newest
      // injection (highest sequence) wins — superseded floods linger
      // in the space until maintenance reclaims them.
      std::map<NodeId, std::pair<std::uint64_t, double>> newest;
      for (const auto& t :
           world.mw(ids[0]).read(reading_pattern("flood"))) {
        const NodeId src = t->uid().origin();
        const std::uint64_t seq = t->uid().sequence();
        const double val = t->content().at("val").as_number();
        const auto it = newest.find(src);
        if (it == newest.end() || seq > it->second.first) {
          newest[src] = {seq, val};
        }
      }
      for (const auto& [src, sv] : newest) gathered += sv.second;
    }

    exp::row(label, {{"fold_setup_tx", fold_setup},
                     {"fold_update_tx", fold_update},
                     {"gather_setup_tx", gather_setup},
                     {"gather_update_tx", gather_update},
                     {"folded", folded},
                     {"gathered", gathered}});
    const std::string key = "bench.agg.n" + std::to_string(n);
    metrics.gauge(key + ".fold_setup_tx").set(fold_setup);
    metrics.gauge(key + ".fold_update_tx").set(fold_update);
    metrics.gauge(key + ".gather_setup_tx").set(gather_setup);
    metrics.gauge(key + ".gather_update_tx").set(gather_update);
    metrics.gauge(key + ".folded").set(folded);
  }
  std::printf(
      "\nexpected shape: both strategies pay O(n) to assemble the first\n"
      "answer (gather pays ~n floods = n*tx(flood)), but a single changed\n"
      "reading costs the fold O(tree depth) frames vs another full flood\n"
      "for the gather — the gap widens with n.\n");

  // --- 2: heterogeneous devices --------------------------------------------
  exp::section("AGGREGATION: duty-cycled motes + gateway sink (5x5)");
  {
    emu::World world(exp::manet_options(83));
    const auto ids = world.spawn_grid(5, 5, 60.0);
    net::DeviceProfile mote;
    mote.duty_cycle = 0.5;  // radio awake half of every 100 ms window
    net::DeviceProfile gateway;
    gateway.gateway = true;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      world.set_profile(ids[i], i == 0 ? gateway : mote);
    }
    world.run_for(SimTime::from_seconds(1));
    // refresh_on_tick re-sends reports the sleeping receivers missed.
    AggregatorOptions opts;
    opts.refresh_on_tick = true;
    std::vector<std::unique_ptr<Aggregator>> aggs;
    for (const NodeId id : ids) {
      aggs.push_back(std::make_unique<Aggregator>(world.mw(id), opts));
    }
    for (auto& a : aggs) a->set_sensor("census", 1.0);
    aggs[0]->ask(
        std::make_unique<AggregationTuple>("census", AggOp::kCount));
    world.run_for(SimTime::from_seconds(10));
    const double census = aggs[0]->result("census").value_or(-1);
    const auto duty_drops =
        static_cast<double>(world.hub().metrics.counter("net.duty_drop")
                                .value());
    exp::row("duty-cycled census",
             {{"census", census},
              {"nodes", static_cast<double>(ids.size())},
              {"duty_drops", duty_drops}});
    metrics.gauge("bench.agg.hetero.census").set(census);
    metrics.gauge("bench.agg.hetero.duty_drops").set(duty_drops);
    std::printf(
        "\nexpected shape: census reaches the node count despite every\n"
        "mote sleeping half the time (duty_drops > 0 shows frames were\n"
        "really lost; the per-tick refresh recovered them).\n");
  }

  // --- 3: sharded census, shard-count invariant -----------------------------
  exp::section("AGGREGATION: sharded census (6x6), per shard count");
  for (const std::uint32_t shards : threads_knob()) {
    emu::ShardedWorld::Options o;
    o.net.radio.range_m = 100.0;
    o.net.seed = 89;
    o.net.shards = shards;
    emu::ShardedWorld world(o);
    const auto ids = world.spawn_grid(6, 6, 60.0);
    world.seal();
    std::vector<std::unique_ptr<Aggregator>> aggs;
    for (const NodeId id : ids) {
      aggs.push_back(std::make_unique<Aggregator>(world.mw(id)));
    }
    world.run_for(SimTime::from_seconds(1));
    for (auto& a : aggs) a->set_sensor("census", 1.0);
    aggs[0]->ask(
        std::make_unique<AggregationTuple>("census", AggOp::kCount));
    world.run_for(SimTime::from_seconds(5));
    const double census = aggs[0]->result("census").value_or(-1);
    exp::row("shards=" + std::to_string(shards),
             {{"census", census},
              {"nodes", static_cast<double>(ids.size())}});
    metrics.gauge("bench.agg.t" + std::to_string(shards) + ".census")
        .set(census);
  }
  std::printf(
      "\nexpected shape: census = 36 at every shard count — the folded\n"
      "answer is deterministic per (seed, shard_count) and identical\n"
      "across them.\n");

  exp::emit_json("aggregation");
  return 0;
}
