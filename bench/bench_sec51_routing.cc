// SEC5.1 — routing on mobile ad-hoc networks: gradient-overlay routing
// (structure tuple + downhill message) versus the pure-flooding baseline
// the paper's rule degenerates to.
//
// Sweeps network size and mobility; reports delivery ratio, radio
// transmissions per message, and path stretch (hops travelled vs. BFS
// optimum).  Expected shape: both deliver ~100% on static networks;
// gradient routing costs O(path length) transmissions vs. O(N) for
// flooding, with the gap widening as N grows; under mobility the
// structure's self-repair keeps delivery high.
#include "apps/routing.h"
#include "baseline/flood_routing.h"
#include "exp_common.h"

using namespace tota;

namespace {

struct RunResult {
  double delivery = 0;
  double tx_per_msg = 0;
  double stretch = 1;
};

RunResult run_static(int n_nodes, bool gradient, std::uint64_t seed) {
  emu::World world(exp::manet_options(seed, 120.0));
  const double arena_side = std::sqrt(static_cast<double>(n_nodes)) * 95.0;
  world.spawn_random(n_nodes, Rect{{0, 0}, {arena_side, arena_side}});
  world.run_for(SimTime::from_seconds(1));
  const auto nodes = world.nodes();
  const NodeId dest = nodes.back();
  const NodeId src = nodes.front();
  const auto optimal = world.net().topology().hop_distance(src, dest);
  if (!optimal) return {};  // disconnected deployment; skip

  int delivered = 0;
  int hops_sum = 0;
  std::unique_ptr<apps::RoutingService> grad_rx;
  std::unique_ptr<apps::RoutingService> grad_tx;
  std::unique_ptr<baseline::FloodRoutingService> flood_rx;
  std::unique_ptr<baseline::FloodRoutingService> flood_tx;

  // Count hops by reading the delivered tuple's hop metadata.
  world.mw(dest).subscribe(
      Pattern::of_type(tuples::MessageTuple::kTag).eq("receiver", dest),
      [&](const Event& e) {
        ++delivered;
        hops_sum += e.tuple->hop();
      },
      static_cast<int>(EventKind::kTupleArrived));

  if (gradient) {
    grad_rx = std::make_unique<apps::RoutingService>(world.mw(dest), nullptr);
    grad_rx->advertise();
    world.run_for(SimTime::from_seconds(3));
    grad_tx = std::make_unique<apps::RoutingService>(world.mw(src), nullptr);
  } else {
    flood_rx = std::make_unique<baseline::FloodRoutingService>(world.mw(dest),
                                                               nullptr);
    flood_tx = std::make_unique<baseline::FloodRoutingService>(world.mw(src),
                                                               nullptr);
  }

  const int kMessages = 10;
  const auto before = world.net().counters().get("radio.tx");
  for (int i = 0; i < kMessages; ++i) {
    if (gradient) {
      grad_tx->send(dest, "m" + std::to_string(i));
    } else {
      flood_tx->send(dest, "m" + std::to_string(i));
    }
    world.run_for(SimTime::from_millis(400));
  }
  world.run_for(SimTime::from_seconds(1));
  const auto cost = world.net().counters().get("radio.tx") - before;

  RunResult r;
  r.delivery = static_cast<double>(delivered) / kMessages;
  r.tx_per_msg = static_cast<double>(cost) / kMessages;
  r.stretch = delivered > 0 ? (static_cast<double>(hops_sum) / delivered) /
                                  static_cast<double>(*optimal)
                            : 0.0;
  return r;
}

RunResult run_mobile(double speed_mps, std::uint64_t seed) {
  emu::World world(exp::manet_options(seed, 150.0));
  const Rect arena{{0, 0}, {700, 700}};
  // Sender and receiver static at opposite corners; 90 relays wander.
  // The density (avg degree ~12) keeps the deployment connected with
  // high probability even as relays drift — delivery failures then
  // measure routing, not percolation.
  const NodeId src = world.spawn({10, 10});
  const NodeId dest = world.spawn({690, 690});
  world.spawn_random(90, arena, [&](Rng&) {
    return std::make_unique<sim::RandomWaypoint>(arena, speed_mps, speed_mps);
  });
  world.run_for(SimTime::from_seconds(1));

  int delivered = 0;
  apps::RoutingService rx(world.mw(dest),
                          [&](NodeId, const std::string&) { ++delivered; });
  rx.advertise();
  world.run_for(SimTime::from_seconds(3));
  apps::RoutingService tx(world.mw(src), nullptr);

  const int kMessages = 20;
  const auto before = world.net().counters().get("radio.tx");
  for (int i = 0; i < kMessages; ++i) {
    tx.send(dest, "m");
    world.run_for(SimTime::from_seconds(1));
  }
  world.run_for(SimTime::from_seconds(2));
  const auto cost = world.net().counters().get("radio.tx") - before;

  RunResult r;
  r.delivery = static_cast<double>(delivered) / kMessages;
  r.tx_per_msg = static_cast<double>(cost) / kMessages;
  return r;
}

}  // namespace

int main() {
  exp::section("SEC5.1a: gradient routing vs flooding, static networks");
  std::printf("%-8s %-22s %-22s %-10s\n", "nodes", "gradient(tx/msg,dlv)",
              "flooding(tx/msg,dlv)", "ratio");
  for (const int n : {25, 50, 100, 200}) {
    RunResult g;
    RunResult f;
    int runs = 0;
    for (const std::uint64_t seed : {11u, 12u, 13u}) {
      const auto gr = run_static(n, true, seed);
      const auto fr = run_static(n, false, seed);
      if (gr.delivery == 0 && fr.delivery == 0) continue;  // disconnected
      g.delivery += gr.delivery;
      g.tx_per_msg += gr.tx_per_msg;
      g.stretch += gr.stretch;
      f.delivery += fr.delivery;
      f.tx_per_msg += fr.tx_per_msg;
      ++runs;
    }
    if (runs == 0) continue;
    std::printf("%-8d tx=%-7.1f dlv=%-7.2f tx=%-7.1f dlv=%-7.2f %-10.2f\n",
                n, g.tx_per_msg / runs, g.delivery / runs, f.tx_per_msg / runs,
                f.delivery / runs,
                f.tx_per_msg > 0 ? f.tx_per_msg / std::max(g.tx_per_msg, 1.0)
                                 : 0.0);
  }
  std::printf(
      "expected shape: both deliver ~1.0; flooding cost ~= network size,\n"
      "gradient cost ~= path length; the ratio widens with N.\n");

  exp::section("SEC5.1b: delivery under mobility (structure self-repair)");
  std::printf("%-14s %-12s %-12s\n", "speed_m_s", "delivery", "tx/msg");
  for (const double speed : {0.0, 2.0, 5.0, 10.0}) {
    RunResult acc;
    int runs = 0;
    for (const std::uint64_t seed : {21u, 22u, 23u}) {
      const auto r = run_mobile(speed, seed);
      acc.delivery += r.delivery;
      acc.tx_per_msg += r.tx_per_msg;
      ++runs;
    }
    std::printf("%-14.1f %-12.2f %-12.1f\n", speed, acc.delivery / runs,
                acc.tx_per_msg / runs);
  }
  std::printf(
      "expected shape: delivery stays high as speed rises (the middleware\n"
      "re-shapes the overlay), at growing transmission cost (repair +\n"
      "flood fallback when the structure is momentarily stale).\n");
  exp::emit_json("sec51_routing");
  return 0;
}
