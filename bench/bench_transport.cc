// TRANSPORT — the v2 datagram path (net/batch.h, net/reliable.h,
// tota/digest.h) priced against the v1 frame-per-datagram wire.
//
// Three sections, each an acceptance number for the transport rework:
//
//   (1) datagrams per delivered tuple, batching off vs on: a 20-tuple
//       burst through a 6-node line.  Coalescing same-instant frames
//       into MTU-sized BATCH datagrams must cut the datagram bill at
//       least 2x (each relay re-broadcasts one batch, not 20 frames);
//   (2) retraction delivery under drop 0.3: the source of a tuple dies
//       while every link loses 30% of datagrams.  Best-effort RETRACT
//       cascades leak stale replicas (one lost frame per hop is a
//       permanent leak); the reliable-ordered channel retransmits until
//       acked and reaches delivery ratio 1.0 within the soak horizon;
//   (3) anti-entropy heal cost: a silent DATA hole (HELLOs flow, so no
//       link event fires) is repaired by the periodic digest exchange
//       with O(diff) resent frames, not a full-store resync.
//
// The harness is a trimmed copy of the TransportWorld in
// tests/test_transport.cc (which owns the pass/fail assertions): full
// Middleware + NetSession stacks on a line topology over an in-memory
// broadcast channel with per-directed-link fault injection.  Everything
// runs on virtual time from seeded Rngs, so BENCH_transport.json is
// bit-for-bit deterministic.
#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "exp_common.h"
#include "net/datagram.h"
#include "net/fault.h"
#include "net/session.h"
#include "sim/event_queue.h"
#include "tota/middleware.h"
#include "tuples/gradient_tuple.h"
#include "wire/buffer.h"

using namespace tota;

namespace {

NodeId id_of(int i) { return NodeId{static_cast<std::uint64_t>(i) + 1}; }

/// tota::Platform over a shared sim::EventQueue whose broadcast seam
/// routes through the node's NetSession (set right after construction).
class SessionPlatform final : public Platform {
 public:
  SessionPlatform(sim::EventQueue& events, Rng rng)
      : events_(events), rng_(rng) {}

  void broadcast(wire::Bytes payload) override {
    if (session != nullptr) session->broadcast(std::move(payload));
  }
  void broadcast_reliable(wire::Bytes payload) override {
    if (session != nullptr) session->broadcast_reliable(std::move(payload));
  }
  [[nodiscard]] SimTime now() const override { return events_.now(); }
  TimerId schedule(SimTime delay, std::function<void()> action) override {
    return events_.schedule_after(delay, std::move(action));
  }
  void cancel(TimerId id) override { events_.cancel(id); }
  [[nodiscard]] Vec2 position() const override { return {}; }
  [[nodiscard]] Rng& rng() override { return rng_; }

  net::NetSession* session = nullptr;

 private:
  sim::EventQueue& events_;
  Rng rng_;
};

constexpr SimTime kLinkDelay = SimTime::from_millis(2);

struct TransportConfig {
  net::SessionOptions session;
  net::FaultPlan fault;  // applied per directed link while faults are on
};

net::DiscoveryOptions fast_discovery() {
  net::DiscoveryOptions o;
  o.beacon_period = SimTime::from_millis(100);
  o.beacon_jitter = 0.2;
  // Deep enough that drop 0.3 essentially never fakes a death (0.3^12
  // per beacon) — these runs probe the transport under loss, not
  // discovery's churn response.
  o.expiry_missed_beacons = 12;
  return o;
}

/// N full v2 stacks (Middleware + NetSession) on a line topology over an
/// in-memory broadcast channel with per-directed-link fault injection.
class TransportWorld {
 public:
  using DropFilter =
      std::function<bool(int from, int to, const wire::Bytes& datagram)>;

  TransportWorld(std::uint64_t seed, int count, TransportConfig config)
      : count_(count),
        config_(std::move(config)),
        master_(seed),
        channel_platform_(events_, master_.fork()) {
    tuples::register_standard_tuples();
    for (int i = 0; i < count_; ++i) {
      nodes_.push_back(std::make_unique<Node>(*this, i));
    }
    for (int i = 0; i < count_; ++i) {
      for (const int j : neighbors_of(i)) {
        links_.emplace(key(i, j),
                       std::make_unique<net::FaultInjector>(
                           config_.fault, channel_platform_, hub_.metrics));
      }
    }
  }

  void start() {
    for (auto& n : nodes_) n->session.start();
  }

  void at(SimTime when, std::function<void()> action) {
    events_.schedule_at(when, std::move(action));
  }
  void run_until(SimTime deadline) { events_.run_until(deadline); }

  void set_faulty(bool on) { faulty_ = on; }
  void set_drop_filter(DropFilter filter) { drop_filter_ = std::move(filter); }
  void flush_links() {
    for (auto& [k, inj] : links_) inj->flush();
  }

  void inject(int i, const std::string& name) {
    nodes_[i]->mw.inject(std::make_unique<tuples::GradientTuple>(name));
  }
  void kill(int i) {
    nodes_[i]->alive = false;
    nodes_[i]->session.stop();
  }

  [[nodiscard]] bool alive(int i) const { return nodes_[i]->alive; }
  [[nodiscard]] Middleware& mw(int i) { return nodes_[i]->mw; }
  [[nodiscard]] obs::Hub& hub() { return hub_; }
  [[nodiscard]] std::int64_t datagrams_tx() const { return datagrams_tx_; }
  void reset_datagram_count() { datagrams_tx_ = 0; }

  [[nodiscard]] std::vector<int> neighbors_of(int i) const {
    std::vector<int> out;
    if (i > 0) out.push_back(i - 1);
    if (i + 1 < count_) out.push_back(i + 1);
    return out;
  }

 private:
  struct Node {
    Node(TransportWorld& w, int i)
        : platform(w.events_, w.master_.fork()),
          session(
              id_of(i), platform, w.config_.session,
              [&w, i](wire::Bytes d) { w.send(i, std::move(d)); },
              w.hub_.metrics),
          mw(id_of(i), platform, {}, &w.hub_) {
      platform.session = &session;
      session.attach(&mw);
    }

    SessionPlatform platform;
    net::NetSession session;
    Middleware mw;
    bool alive = true;
  };

  [[nodiscard]] int key(int i, int j) const { return i * count_ + j; }

  void send(int i, wire::Bytes bytes) {
    if (!nodes_[i]->alive) return;
    ++datagrams_tx_;  // one transmission, any receiver count (broadcast)
    for (const int j : neighbors_of(i)) {
      if (drop_filter_ && drop_filter_(i, j, bytes)) continue;
      const auto deliver = [this, j](const wire::Bytes& damaged) {
        const auto copy = std::make_shared<const wire::Bytes>(damaged);
        events_.schedule_after(kLinkDelay,
                               [this, j, copy] { receive(j, *copy); });
      };
      if (faulty_) {
        links_.at(key(i, j))->process(bytes, deliver, id_of(i), id_of(j));
      } else {
        deliver(bytes);
      }
    }
  }

  void receive(int j, const wire::Bytes& bytes) {
    if (!nodes_[j]->alive) return;
    nodes_[j]->session.on_raw(bytes);
  }

  int count_;
  TransportConfig config_;
  sim::EventQueue events_;
  Rng master_;
  obs::Hub hub_;
  SessionPlatform channel_platform_;  // clock + rng source for the injectors
  std::vector<std::unique_ptr<Node>> nodes_;
  std::map<int, std::unique_ptr<net::FaultInjector>> links_;
  bool faulty_ = false;
  DropFilter drop_filter_;
  std::int64_t datagrams_tx_ = 0;
};

/// True when the (well-formed) datagram carries any engine frame.
bool carries_data(const wire::Bytes& datagram) {
  const net::Datagram d = net::Datagram::decode(datagram);
  if (d.kind == net::DatagramKind::kData) return true;
  if (d.kind != net::DatagramKind::kBatch) return false;
  return std::any_of(d.chunks.begin(), d.chunks.end(), [](const auto& c) {
    return c.kind == net::ChunkKind::kData;
  });
}

constexpr int kNodes = 6;

obs::Gauge& result(const std::string& name) {
  return obs::default_hub().metrics.gauge("bench.transport." + name);
}

}  // namespace

int main() {
  exp::section(
      "TRANSPORT(1): datagrams per delivered tuple, batching off vs on");
  std::printf("%-10s %-11s %-11s %-13s %-10s %-10s\n", "mode", "datagrams",
              "delivered", "dgrams/tuple", "batch.tx", "chunks");
  constexpr int kTuples = 20;
  const Pattern all = Pattern::of_type(tuples::GradientTuple::kTag);
  double cost[2] = {0.0, 0.0};
  for (const bool batching : {false, true}) {
    TransportConfig config;
    config.session.discovery = fast_discovery();
    // A quiet beacon cadence so the measured window is dominated by
    // data traffic.
    config.session.discovery.beacon_period = SimTime::from_millis(500);
    config.session.batch.enabled = batching;

    TransportWorld world(7, kNodes, config);
    world.start();
    world.run_until(SimTime::from_seconds(1));
    world.reset_datagram_count();
    // One burst in one event instant: a relay reacting to a 20-frame
    // batch re-broadcasts its 20 reactions as one datagram.
    world.at(SimTime::from_millis(1001), [&] {
      for (int t = 0; t < kTuples; ++t) {
        world.inject(0, "t" + std::to_string(t));
      }
    });
    world.run_until(SimTime::from_seconds(3));
    std::int64_t delivered = 0;
    for (int i = 0; i < kNodes; ++i) {
      delivered += static_cast<std::int64_t>(world.mw(i).read(all).size());
    }
    auto& m = world.hub().metrics;
    const double per_tuple =
        static_cast<double>(world.datagrams_tx()) / delivered;
    std::printf("%-10s %-11lld %-11lld %-13.2f %-10lld %-10lld\n",
                batching ? "batch" : "v1",
                static_cast<long long>(world.datagrams_tx()),
                static_cast<long long>(delivered), per_tuple,
                static_cast<long long>(m.get("net.batch.tx")),
                static_cast<long long>(m.get("net.batch.chunks")));
    cost[batching ? 1 : 0] = static_cast<double>(world.datagrams_tx());
    result(batching ? "batch.datagrams" : "v1.datagrams")
        .set(static_cast<double>(world.datagrams_tx()));
    result(batching ? "batch.delivered" : "v1.delivered")
        .set(static_cast<double>(delivered));
    obs::default_hub().metrics.merge_from(m);
  }
  result("batch.speedup").set(cost[0] / cost[1]);
  std::printf(
      "expected shape: >= 2x fewer datagrams with batching on, same\n"
      "tuples delivered (the acceptance ratio pinned by the test suite).\n");

  exp::section(
      "TRANSPORT(2): retraction delivery at drop 0.3, best-effort vs "
      "reliable");
  std::printf("%-6s %-10s %-8s %-10s %-9s %-9s %-9s %-11s\n", "seed", "mode",
              "leaked", "delivery", "rel.tx", "rel.rtx", "rel.acked",
              "datagrams");
  double leaked_total[2] = {0.0, 0.0};
  for (const bool reliable : {false, true}) {
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
      TransportConfig config;
      config.session.discovery = fast_discovery();
      config.session.batch.enabled = reliable;  // the full v2 path
      config.session.reliable = reliable;
      config.fault.drop = 0.3;

      TransportWorld world(seed, kNodes, config);
      world.start();
      world.at(SimTime::from_seconds(1), [&] { world.inject(0, "main"); });
      world.at(SimTime::from_millis(1200),
               [&] { world.inject(kNodes - 1, "doomed"); });
      world.at(SimTime::from_seconds(2), [&] { world.set_faulty(true); });
      // The doomed source dies mid-chaos: its neighbour detects the
      // silence and runs the retraction cascade over the lossy channel.
      world.at(SimTime::from_seconds(3), [&] { world.kill(kNodes - 1); });
      world.at(SimTime::from_seconds(10), [&] {
        world.set_faulty(false);
        world.flush_links();
      });
      world.run_until(SimTime::from_seconds(14));

      const Pattern doomed =
          Pattern::of_type(tuples::GradientTuple::kTag).eq("name", "doomed");
      int leaked = 0;
      int alive = 0;
      for (int i = 0; i < kNodes; ++i) {
        if (!world.alive(i)) continue;
        ++alive;
        if (!world.mw(i).read(doomed).empty()) ++leaked;
      }
      auto& m = world.hub().metrics;
      std::printf("%-6llu %-10s %-8d %-10.3f %-9lld %-9lld %-9lld %-11lld\n",
                  static_cast<unsigned long long>(seed),
                  reliable ? "reliable" : "v1", leaked,
                  static_cast<double>(alive - leaked) / alive,
                  static_cast<long long>(m.get("net.rel.tx")),
                  static_cast<long long>(m.get("net.rel.rtx")),
                  static_cast<long long>(m.get("net.rel.acked")),
                  static_cast<long long>(world.datagrams_tx()));
      leaked_total[reliable ? 1 : 0] += leaked;
      obs::default_hub().metrics.merge_from(m);
    }
  }
  result("v1.leaked").set(leaked_total[0]);
  result("reliable.leaked").set(leaked_total[1]);
  std::printf(
      "expected shape: the best-effort rows strand stale replicas (one\n"
      "lost RETRACT per cascade hop is a permanent leak); the reliable\n"
      "rows reach delivery 1.0 within the horizon, paid for in rel.rtx.\n");

  exp::section("TRANSPORT(3): anti-entropy heal cost after a silent hole");
  {
    constexpr int kNodes4 = 4;
    constexpr int kSeeded = 30;  // the store every node already holds
    constexpr int kHoles = 2;    // injected while one link eats DATA

    TransportConfig config;
    config.session.discovery = fast_discovery();
    config.session.batch.enabled = true;
    config.session.digest_period = SimTime::from_millis(500);
    config.session.digest_buckets = 64;

    TransportWorld world(11, kNodes4, config);
    world.start();
    world.run_until(SimTime::from_millis(500));
    for (int t = 0; t < kSeeded; ++t) world.inject(0, "s" + std::to_string(t));
    world.run_until(SimTime::from_seconds(2));
    // The silent hole: link 1→2 eats every DATA-carrying datagram while
    // two fresh tuples flood; HELLOs keep flowing, so no link event
    // fires and no restart resync runs.
    world.at(SimTime::from_seconds(2), [&] {
      world.set_drop_filter([](int from, int to, const wire::Bytes& d) {
        return from == 1 && to == 2 && carries_data(d);
      });
    });
    world.at(SimTime::from_millis(2100), [&] {
      for (int t = 0; t < kHoles; ++t) {
        world.inject(0, "h" + std::to_string(t));
      }
    });
    world.at(SimTime::from_seconds(3), [&] { world.set_drop_filter(nullptr); });
    world.run_until(SimTime::from_seconds(6));

    int healed = 0;
    for (int i = 0; i < kNodes4; ++i) {
      if (world.mw(i).read(all).size() ==
          static_cast<std::size_t>(kSeeded + kHoles)) {
        ++healed;
      }
    }
    auto& m = world.hub().metrics;
    std::printf("%-8s %-8s %-8s %-12s %-12s %-12s\n", "store", "holes",
                "healed", "sync.resend", "digest_tx", "digest_rx");
    std::printf("%-8d %-8d %-8s %-12lld %-12lld %-12lld\n", kSeeded, kHoles,
                healed == kNodes4 ? "4/4" : "NO",
                static_cast<long long>(m.get("net.sync.resend")),
                static_cast<long long>(m.get("net.sync.digest_tx")),
                static_cast<long long>(m.get("net.sync.digest_rx")));
    result("sync.resend").set(static_cast<double>(m.get("net.sync.resend")));
    obs::default_hub().metrics.merge_from(m);
    std::printf(
        "expected shape: all four stores converge with sync.resend well\n"
        "below the %d-tuple store — the digest diff re-offers the holes\n"
        "(plus the odd same-bucket neighbour), never the whole store.\n",
        kSeeded);
  }

  exp::emit_json("transport");
  return 0;
}
