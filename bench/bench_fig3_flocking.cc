// FIG3 — the paper's Figure 3: "Flocking in the TOTA Emulator. … Black
// cubes are involved in flocking, moving by preserving a specified
// distance from each other."
//
// Reproduction: agents on a relay mesh inject FLOCK fields (val minimal
// at X hops) and descend each other's fields.  We report the formation
// error (mean |nearest-peer hop distance − X|) and the mean nearest-peer
// physical gap over time: the error must fall from its initial huddle
// value and stay low — the "almost regular grid formation".
#include <memory>

#include "apps/flocking.h"
#include "emu/render.h"
#include "exp_common.h"

using namespace tota;

namespace {

double formation_error(const emu::World& world,
                       const std::vector<NodeId>& agents, int target) {
  double err = 0;
  for (const NodeId a : agents) {
    int nearest = 1 << 20;
    for (const NodeId b : agents) {
      if (a == b) continue;
      const auto d = world.net().topology().hop_distance(a, b);
      if (d) nearest = std::min(nearest, *d);
    }
    if (nearest == 1 << 20) nearest = 2 * target;  // isolated: worst case
    err += std::abs(nearest - target);
  }
  return err / static_cast<double>(agents.size());
}

double mean_gap(const emu::World& world, const std::vector<NodeId>& agents) {
  double total = 0;
  for (const NodeId a : agents) {
    double nearest = 1e12;
    for (const NodeId b : agents) {
      if (a == b) continue;
      nearest = std::min(nearest, distance(world.net().position(a),
                                           world.net().position(b)));
    }
    total += nearest;
  }
  return total / static_cast<double>(agents.size());
}

}  // namespace

int main() {
  exp::section("FIG3: flocking via FLOCK fields (val minimal at X hops)");

  const Rect arena{{0, 0}, {500, 500}};
  const int target_hops = 2;
  auto options = exp::manet_options(3, /*range_m=*/60.0);
  emu::World world(options);

  for (double x = 0; x <= 500; x += 50) {
    for (double y = 0; y <= 500; y += 50) {
      world.spawn({x, y});
    }
  }
  std::vector<NodeId> agents;
  for (int i = 0; i < 8; ++i) {
    const double angle = 0.785 * static_cast<double>(i);
    agents.push_back(world.spawn(
        {250 + 20 * std::cos(angle), 250 + 20 * std::sin(angle)},
        std::make_unique<sim::VelocityMobility>(arena, 10.0)));
  }
  world.run_for(SimTime::from_seconds(1));

  apps::FlockingParams params;
  params.target_hops = target_hops;
  params.field_scope = 6;
  std::vector<std::unique_ptr<apps::FlockingController>> controllers;
  for (const NodeId id : agents) {
    controllers.push_back(std::make_unique<apps::FlockingController>(
        world.mw(id), params,
        [&world, id](Vec2 v) { world.net().set_velocity(id, v); }));
    controllers.back()->start();
  }

  std::printf("%-10s %-16s %-16s\n", "t_s", "formation_err", "nearest_gap_m");
  double initial_err = -1;
  double final_err = -1;
  for (int t = 0; t <= 90; t += 10) {
    const double err = formation_error(world, agents, target_hops);
    if (initial_err < 0) initial_err = err;
    final_err = err;
    std::printf("%-10.0f %-16.2f %-16.1f\n", world.now().seconds(), err,
                mean_gap(world, agents));
    if (t < 90) world.run_for(SimTime::from_seconds(10));
  }

  std::printf(
      "\nexpected shape: formation error falls from its huddled start\n"
      "(agents ~1 hop apart, error ~%d) toward 0-1 as agents spread to\n"
      "the preferred %d-hop spacing, and the physical gap grows\n"
      "accordingly.  result: initial=%.2f final=%.2f -> %s\n",
      target_hops - 1, target_hops, initial_err, final_err,
      final_err < initial_err ? "reproduced" : "NOT reproduced");
  exp::emit_json("fig3_flocking");
  return 0;
}
