// SEC5.2 — gathering information in a dynamic network: the paper's two
// solutions, plus the Lime-style local-sharing baseline.
//
//  (a) proactive adverts: one flood per sensor, then every lookup is a
//      free local read anywhere in the network;
//  (b) reactive query/answer: cost per query scales with the interest
//      scope (the [RomJH02] pattern);
//  (c) Lime-style scope-1 sharing: free to publish, but a seeker only
//      finds the datum standing next to its owner.
//
// Reported: transmissions per operation and lookup success ratio by
// seeker-to-sensor distance.
#include "apps/gathering.h"
#include "baseline/local_space.h"
#include "exp_common.h"

using namespace tota;

int main() {
  exp::section("SEC5.2: information gathering, 3 strategies (7x7 grid)");

  // --- (a) proactive adverts -----------------------------------------------
  {
    emu::World world(exp::manet_options(31));
    const auto grid = world.spawn_grid(7, 7, 80.0);
    world.run_for(SimTime::from_seconds(1));
    apps::InfoProvider sensor(world.mw(grid[0]), "temperature");
    const auto publish_cost = exp::tx_cost(world, [&] {
      sensor.advertise();
      world.run_for(SimTime::from_seconds(3));
    });
    // Lookups are local reads: zero transmissions, success anywhere.
    int found = 0;
    const auto lookup_cost = exp::tx_cost(world, [&] {
      for (const NodeId n : world.nodes()) {
        apps::InfoSeeker seeker(world.mw(n));
        if (seeker.find_advert("temperature")) ++found;
      }
    });
    exp::row("proactive advert",
             {{"publish_tx", static_cast<double>(publish_cost)},
              {"lookup_tx", static_cast<double>(lookup_cost)},
              {"success",
               static_cast<double>(found) /
                   static_cast<double>(world.nodes().size())}});
  }

  // --- (b) reactive query/answer, by scope ---------------------------------
  for (const int scope : {2, 4, 8, 12}) {
    emu::World world(exp::manet_options(32));
    const auto grid = world.spawn_grid(7, 7, 80.0);
    world.run_for(SimTime::from_seconds(1));
    apps::InfoProvider sensor(world.mw(grid.back()), "temperature");
    sensor.answer_queries([] { return "21C"; });
    apps::InfoSeeker seeker(world.mw(grid.front()));

    int answers = 0;
    const auto cost = exp::tx_cost(world, [&] {
      seeker.query("temperature",
                   [&](const std::string&) { ++answers; }, scope);
      world.run_for(SimTime::from_seconds(3));
    });
    // Sensor sits 12 hops away (corner to corner of 7x7).
    exp::row("reactive scope=" + std::to_string(scope),
             {{"tx", static_cast<double>(cost)},
              {"answered", static_cast<double>(answers)}});
  }

  // --- (c) Lime-style local sharing ----------------------------------------
  {
    emu::World world(exp::manet_options(33));
    const auto grid = world.spawn_grid(7, 7, 80.0);
    world.run_for(SimTime::from_seconds(1));
    baseline::LocalSpace owner(world.mw(grid[0]));
    const auto publish_cost = exp::tx_cost(world, [&] {
      owner.share("temperature", wire::Value{"21C"});
      world.run_for(SimTime::from_seconds(2));
    });
    int found = 0;
    for (const NodeId n : world.nodes()) {
      baseline::LocalSpace reader(world.mw(n));
      if (reader.lookup("temperature")) ++found;
    }
    exp::row("lime-style scope-1",
             {{"publish_tx", static_cast<double>(publish_cost)},
              {"success",
               static_cast<double>(found) /
                   static_cast<double>(world.nodes().size())}});
  }

  std::printf(
      "\nexpected shape: proactive = one network flood then free universal\n"
      "lookups; reactive cost grows with scope and answers appear once the\n"
      "scope reaches the sensor (12 hops); lime-style sharing is nearly\n"
      "free but found only by the owner and direct neighbours (~3/49).\n");

  // --- (d) mobility: the advert field follows a moving sensor -------------
  exp::section("SEC5.2d: advert coherence while the sensor drifts");
  {
    emu::World world(exp::manet_options(34));
    const auto grid = world.spawn_grid(7, 7, 80.0);
    world.run_for(SimTime::from_seconds(1));
    const NodeId sensor_node = world.spawn({-80, 0});
    apps::InfoProvider sensor(world.mw(sensor_node), "temperature");
    sensor.advertise();
    world.run_for(SimTime::from_seconds(3));

    std::printf("%-12s %-14s %-16s\n", "t_s", "sensor_x_m", "advert_accuracy");
    for (int step = 0; step <= 4; ++step) {
      // Accuracy: fraction of nodes whose advert distance equals the BFS
      // oracle to the sensor.
      const auto oracle =
          world.net().topology().hop_distances(sensor_node);
      int ok = 0;
      for (const NodeId n : grid) {
        apps::InfoSeeker seeker(world.mw(n));
        const auto ad = seeker.find_advert("temperature");
        const auto it = oracle.find(n);
        if (it != oracle.end() && ad && ad->distance_hops == it->second) {
          ++ok;
        }
      }
      std::printf("%-12.0f %-14.0f %-16.2f\n", world.now().seconds(),
                  world.net().position(sensor_node).x,
                  static_cast<double>(ok) / static_cast<double>(grid.size()));
      if (step < 4) {
        world.net().move_node(
            sensor_node,
            world.net().position(sensor_node) + Vec2{160, 0});
        world.run_for(SimTime::from_seconds(4));
      }
    }
    std::printf(
        "expected shape: accuracy returns to ~1.0 a few seconds after each\n"
        "move — the middleware re-shapes the advert field automatically.\n");
  }
  exp::emit_json("sec52_gathering");
  return 0;
}
