// Micro-benchmarks of middleware hot paths: serialization, pattern
// matching, tuple-space operations, and single-node engine processing.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "obs/export.h"
#include "tota/engine.h"
#include "tota/tuple_space.h"
#include "tuples/all.h"
#include "wire/buffer.h"

namespace tota {
namespace {

class NullPlatform final : public Platform {
 public:
  void broadcast(wire::Bytes payload) override {
    bytes_out += payload.size();
  }
  [[nodiscard]] SimTime now() const override { return time; }
  void schedule(SimTime, std::function<void()> action) override {
    pending.push_back(std::move(action));
  }
  [[nodiscard]] Vec2 position() const override { return {}; }
  [[nodiscard]] Rng& rng() override { return rng_; }

  std::size_t bytes_out = 0;
  SimTime time;
  std::vector<std::function<void()>> pending;

 private:
  Rng rng_{1};
};

tuples::GradientTuple sample_tuple() {
  tuples::GradientTuple g("structure");
  g.set_uid(TupleUid{NodeId{7}, 42});
  g.set_hop(5);
  g.content().set("source", NodeId{7}).set("hopcount", 5);
  return g;
}

void BM_TupleEncode(benchmark::State& state) {
  tuples::register_standard_tuples();
  const auto tuple = sample_tuple();
  for (auto _ : state) {
    wire::Writer w;
    tuple.encode(w);
    benchmark::DoNotOptimize(w.bytes().data());
  }
}
BENCHMARK(BM_TupleEncode);

void BM_TupleDecode(benchmark::State& state) {
  tuples::register_standard_tuples();
  wire::Writer w;
  sample_tuple().encode(w);
  const auto bytes = w.take();
  for (auto _ : state) {
    wire::Reader r(bytes);
    auto t = Tuple::decode(r);
    benchmark::DoNotOptimize(t.get());
  }
}
BENCHMARK(BM_TupleDecode);

void BM_PatternMatch(benchmark::State& state) {
  tuples::register_standard_tuples();
  const auto tuple = sample_tuple();
  Pattern p = Pattern::of_type(tuples::GradientTuple::kTag);
  p.eq("name", "structure").eq("source", NodeId{7});
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.matches(tuple));
  }
}
BENCHMARK(BM_PatternMatch);

void BM_TupleSpaceRead(benchmark::State& state) {
  tuples::register_standard_tuples();
  TupleSpace space;
  const auto n = state.range(0);
  for (std::int64_t i = 0; i < n; ++i) {
    auto t = std::make_unique<tuples::GradientTuple>(
        "field" + std::to_string(i % 8));
    t->set_uid(TupleUid{NodeId{static_cast<std::uint64_t>(i + 1)}, 1});
    t->content().set("source", NodeId{static_cast<std::uint64_t>(i + 1)})
        .set("hopcount", static_cast<int>(i % 10));
    space.put(std::move(t), NodeId{}, true, SimTime::zero());
  }
  Pattern p;
  p.eq("name", "field3");
  for (auto _ : state) {
    benchmark::DoNotOptimize(space.peek(p));
  }
}
BENCHMARK(BM_TupleSpaceRead)->Arg(16)->Arg(128)->Arg(1024);

void BM_EngineReceive(benchmark::State& state) {
  tuples::register_standard_tuples();
  NullPlatform platform;
  TupleSpace space;
  EventBus bus;
  Engine engine(NodeId{1}, platform, space, bus);

  wire::Writer w;
  w.u8(1);
  sample_tuple().encode(w);
  const auto frame = w.take();
  std::uint64_t seq = 100;
  for (auto _ : state) {
    // Unique uid per iteration so each frame runs the full store path.
    state.PauseTiming();
    auto t = sample_tuple();
    t.set_uid(TupleUid{NodeId{7}, seq++});
    wire::Writer fw;
    fw.u8(1);
    t.encode(fw);
    const auto f = fw.take();
    state.ResumeTiming();
    engine.on_datagram(NodeId{3}, f);
  }
}
BENCHMARK(BM_EngineReceive);

}  // namespace
}  // namespace tota

// BENCHMARK_MAIN(), plus the BENCH_micro.json export every experiment
// binary owes (docs/OBSERVABILITY.md): the engine benchmarks above
// record into obs::default_hub() like any other engine.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const std::string path =
      tota::obs::write_bench_json("micro", tota::obs::default_hub());
  std::printf("[obs] wrote %s\n", path.c_str());
  return 0;
}
