// Micro-benchmarks of middleware hot paths: serialization, pattern
// matching, tuple-space operations, and single-node engine processing.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "obs/export.h"
#include "tota/engine.h"
#include "tota/tuple_space.h"
#include "tuples/all.h"
#include "wire/buffer.h"
#include "wire/frame.h"

namespace tota {
namespace {

class NullPlatform final : public Platform {
 public:
  void broadcast(wire::Bytes payload) override {
    bytes_out += payload.size();
  }
  [[nodiscard]] SimTime now() const override { return time; }
  TimerId schedule(SimTime, std::function<void()> action) override {
    pending.push_back(std::move(action));
    return next_timer_++;
  }
  void cancel(TimerId) override {}
  [[nodiscard]] Vec2 position() const override { return {}; }
  [[nodiscard]] Rng& rng() override { return rng_; }
  [[nodiscard]] wire::FrameCodec* frame_codec() override { return codec; }

  std::size_t bytes_out = 0;
  SimTime time;
  std::vector<std::function<void()>> pending;
  wire::FrameCodec* codec = nullptr;

 private:
  Rng rng_{1};
  TimerId next_timer_ = 1;
};

tuples::GradientTuple sample_tuple() {
  tuples::GradientTuple g("structure");
  g.set_uid(TupleUid{NodeId{7}, 42});
  g.set_hop(5);
  g.content().set("source", NodeId{7}).set("hopcount", 5);
  return g;
}

void BM_TupleEncode(benchmark::State& state) {
  tuples::register_standard_tuples();
  const auto tuple = sample_tuple();
  for (auto _ : state) {
    wire::Writer w;
    tuple.encode(w);
    benchmark::DoNotOptimize(w.bytes().data());
  }
}
BENCHMARK(BM_TupleEncode);

void BM_TupleDecode(benchmark::State& state) {
  tuples::register_standard_tuples();
  wire::Writer w;
  sample_tuple().encode(w);
  const auto bytes = w.take();
  for (auto _ : state) {
    wire::Reader r(bytes);
    auto t = Tuple::decode(r);
    benchmark::DoNotOptimize(t.get());
  }
}
BENCHMARK(BM_TupleDecode);

void BM_PatternMatch(benchmark::State& state) {
  tuples::register_standard_tuples();
  const auto tuple = sample_tuple();
  Pattern p = Pattern::of_type(tuples::GradientTuple::kTag);
  p.eq("name", "structure").eq("source", NodeId{7});
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.matches(tuple));
  }
}
BENCHMARK(BM_PatternMatch);

void BM_TupleSpaceRead(benchmark::State& state) {
  tuples::register_standard_tuples();
  TupleSpace space;
  const auto n = state.range(0);
  for (std::int64_t i = 0; i < n; ++i) {
    auto t = std::make_unique<tuples::GradientTuple>(
        "field" + std::to_string(i % 8));
    t->set_uid(TupleUid{NodeId{static_cast<std::uint64_t>(i + 1)}, 1});
    t->content().set("source", NodeId{static_cast<std::uint64_t>(i + 1)})
        .set("hopcount", static_cast<int>(i % 10));
    space.put(std::move(t), NodeId{}, true, SimTime::zero());
  }
  Pattern p;
  p.eq("name", "field3");
  for (auto _ : state) {
    benchmark::DoNotOptimize(space.peek(p));
  }
}
BENCHMARK(BM_TupleSpaceRead)->Arg(16)->Arg(128)->Arg(1024);

/// Populates `space` with `n` gradient tuples spread over 8 field names,
/// mirroring BM_TupleSpaceRead's fixture.
void fill_space(TupleSpace& space, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    auto t = std::make_unique<tuples::GradientTuple>(
        "field" + std::to_string(i % 8));
    t->set_uid(TupleUid{NodeId{static_cast<std::uint64_t>(i + 1)}, 1});
    t->content().set("source", NodeId{static_cast<std::uint64_t>(i + 1)})
        .set("hopcount", static_cast<int>(i % 10));
    space.put(std::move(t), NodeId{}, true, SimTime::zero());
  }
}

/// First-match lookup: early-exits at the first (lowest-uid) match
/// instead of materializing the full match set.
void BM_TupleSpaceReadOne(benchmark::State& state) {
  tuples::register_standard_tuples();
  TupleSpace space;
  fill_space(space, state.range(0));
  Pattern p;
  p.eq("name", "field3");
  for (auto _ : state) {
    benchmark::DoNotOptimize(space.read_one(p));
  }
}
BENCHMARK(BM_TupleSpaceReadOne)->Arg(16)->Arg(128)->Arg(1024);

/// Typed query through the type-tag index: only same-tag candidates are
/// examined.  The store mixes gradient tuples with 7× as many message
/// tuples, so the index skips 7/8 of the store.
void BM_TupleSpaceTyped(benchmark::State& state) {
  tuples::register_standard_tuples();
  TupleSpace space;
  const auto n = state.range(0);
  for (std::int64_t i = 0; i < n; ++i) {
    std::unique_ptr<Tuple> t;
    if (i % 8 == 0) {
      t = std::make_unique<tuples::GradientTuple>("structure");
    } else {
      t = std::make_unique<tuples::MessageTuple>();
    }
    t->set_uid(TupleUid{NodeId{static_cast<std::uint64_t>(i + 1)}, 1});
    t->content().set("hopcount", static_cast<int>(i % 10));
    space.put(std::move(t), NodeId{}, true, SimTime::zero());
  }
  const Pattern p = Pattern::of_type(tuples::GradientTuple::kTag);
  for (auto _ : state) {
    benchmark::DoNotOptimize(space.peek(p));
  }
}
BENCHMARK(BM_TupleSpaceTyped)->Arg(16)->Arg(128)->Arg(1024);

/// Populates `space` with a 1:7 mix of gradient and message tuples spread
/// over 8 parents — the fixture for the query-plan benchmarks.
void fill_mixed_space(TupleSpace& space, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    std::unique_ptr<Tuple> t;
    if (i % 8 == 0) {
      auto g = std::make_unique<tuples::GradientTuple>("structure");
      g->content().set("source", NodeId{7});
      t = std::move(g);
    } else {
      t = std::make_unique<tuples::MessageTuple>();
    }
    t->set_uid(TupleUid{NodeId{static_cast<std::uint64_t>(i + 1)}, 1});
    t->content().set("hopcount", static_cast<int>(i % 10));
    space.put(std::move(t), NodeId{static_cast<std::uint64_t>(i % 8)}, true,
              SimTime::zero());
  }
}

/// The pre-refactor shape of a filtered query: a full scan handing every
/// entry to an opaque std::function, exactly what Pattern's old lambda
/// where() clauses cost (no index, one indirect call per entry).
void BM_QueryScanLambda(benchmark::State& state) {
  tuples::register_standard_tuples();
  TupleSpace space;
  fill_mixed_space(space, state.range(0));
  const std::function<bool(const Tuple&)> filter = [](const Tuple& t) {
    return t.type_tag() == tuples::GradientTuple::kTag &&
           t.content().has("hopcount") &&
           t.content().at("hopcount").as_int() <= 4;
  };
  for (auto _ : state) {
    std::vector<const Tuple*> out;
    space.for_each([&](const TupleSpace::Entry& e) {
      if (filter(*e.tuple)) out.push_back(e.tuple.get());
    });
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_QueryScanLambda)->Arg(128)->Arg(1024);

/// The same query as a typed predicate pattern: the planner routes it
/// through the type bucket (1/8 of the store) and evaluates the AST
/// residual only there.
void BM_QueryPlanPredicate(benchmark::State& state) {
  tuples::register_standard_tuples();
  TupleSpace space;
  fill_mixed_space(space, state.range(0));
  Pattern p = Pattern::of_type(tuples::GradientTuple::kTag);
  p.where("hopcount", Pred::le(4));
  for (auto _ : state) {
    benchmark::DoNotOptimize(space.peek(p));
  }
}
BENCHMARK(BM_QueryPlanPredicate)->Arg(128)->Arg(1024);

/// Metadata-indexed plan: candidates come from one parent bucket.
void BM_QueryPlanParent(benchmark::State& state) {
  tuples::register_standard_tuples();
  TupleSpace space;
  fill_mixed_space(space, state.range(0));
  Pattern p;
  p.from_parent(NodeId{3});
  for (auto _ : state) {
    benchmark::DoNotOptimize(space.peek(p));
  }
}
BENCHMARK(BM_QueryPlanParent)->Arg(128)->Arg(1024);

/// Maintaining a standing query incrementally: one put+erase churn cycle
/// against a populated store, deltas flowing through the bus.
void BM_ContinuousQueryDelta(benchmark::State& state) {
  tuples::register_standard_tuples();
  TupleSpace space;
  EventBus bus;
  fill_mixed_space(space, state.range(0));
  space.set_listener([&](TupleSpace::ChangeKind kind,
                         const TupleSpace::Entry& entry) {
    auto change = EventBus::SpaceChange::kStored;
    if (kind == TupleSpace::ChangeKind::kReplaced) {
      change = EventBus::SpaceChange::kReplaced;
    } else if (kind == TupleSpace::ChangeKind::kErased) {
      change = EventBus::SpaceChange::kErased;
    }
    bus.notify_space(change, entry.type_tag, *entry.tuple, entry.parent,
                     entry.propagated, SimTime::zero());
  });
  Pattern p = Pattern::of_type(tuples::GradientTuple::kTag);
  p.where("hopcount", Pred::le(4));
  std::int64_t deltas = 0;
  bus.subscribe_query(p, [&deltas](const QueryDelta&) { ++deltas; });
  const TupleUid churn{NodeId{9999}, 1};
  for (auto _ : state) {
    auto g = std::make_unique<tuples::GradientTuple>("structure");
    g->set_uid(churn);
    g->content().set("source", NodeId{7}).set("hopcount", 2);
    space.put(std::move(g), NodeId{1}, true, SimTime::zero());
    space.erase(churn);
    benchmark::DoNotOptimize(deltas);
  }
}
BENCHMARK(BM_ContinuousQueryDelta)->Arg(128)->Arg(1024);

/// The naive alternative a continuous query replaces: re-running the full
/// query after every mutation.
void BM_ContinuousQueryRescan(benchmark::State& state) {
  tuples::register_standard_tuples();
  TupleSpace space;
  fill_mixed_space(space, state.range(0));
  Pattern p = Pattern::of_type(tuples::GradientTuple::kTag);
  p.where("hopcount", Pred::le(4));
  const TupleUid churn{NodeId{9999}, 1};
  for (auto _ : state) {
    auto g = std::make_unique<tuples::GradientTuple>("structure");
    g->set_uid(churn);
    g->content().set("source", NodeId{7}).set("hopcount", 2);
    space.put(std::move(g), NodeId{1}, true, SimTime::zero());
    benchmark::DoNotOptimize(space.peek(p));
    space.erase(churn);
    benchmark::DoNotOptimize(space.peek(p));
  }
}
BENCHMARK(BM_ContinuousQueryRescan)->Arg(128)->Arg(1024);

/// Publish through the subscription buckets: `subs` subscriptions split
/// across 8 tuple-type patterns, one event matching 1/8 of them.
void BM_EventDispatch(benchmark::State& state) {
  tuples::register_standard_tuples();
  EventBus bus;
  const auto subs = state.range(0);
  std::int64_t fired = 0;
  for (std::int64_t i = 0; i < subs; ++i) {
    Pattern p = i % 8 == 0
                    ? Pattern::of_type(tuples::GradientTuple::kTag)
                    : Pattern::of_type("tota.other" + std::to_string(i % 8));
    bus.subscribe(std::move(p), [&fired](const Event&) { ++fired; });
  }
  const auto tuple = sample_tuple();
  const Event event{EventKind::kTupleArrived, &tuple, SimTime::zero()};
  for (auto _ : state) {
    bus.publish(event);
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_EventDispatch)->Arg(8)->Arg(128);

void BM_EngineReceive(benchmark::State& state) {
  tuples::register_standard_tuples();
  NullPlatform platform;
  TupleSpace space;
  EventBus bus;
  Engine engine(NodeId{1}, platform, space, bus);

  std::uint64_t seq = 100;
  for (auto _ : state) {
    // Unique uid per iteration so each frame runs the full store path.
    state.PauseTiming();
    auto t = sample_tuple();
    t.set_uid(TupleUid{NodeId{7}, seq++});
    const auto f =
        wire::Frame::tuple([&t](wire::Writer& w) { t.encode(w); });
    state.ResumeTiming();
    engine.on_datagram(NodeId{3}, f);
  }
}
BENCHMARK(BM_EngineReceive);

/// One simulated broadcast fanned out to a dense one-hop neighbourhood
/// through the decode-once cache, vs each receiver parsing for itself.
void BM_DecodeOnceFanout(benchmark::State& state) {
  tuples::register_standard_tuples();
  const auto receivers = static_cast<std::size_t>(state.range(0));
  const bool shared_codec = state.range(1) != 0;

  obs::Hub hub;
  wire::FrameCodec codec(hub.metrics);
  std::vector<std::unique_ptr<NullPlatform>> platforms;
  std::vector<std::unique_ptr<TupleSpace>> spaces;
  std::vector<std::unique_ptr<EventBus>> buses;
  std::vector<std::unique_ptr<Engine>> engines;
  for (std::size_t i = 0; i < receivers; ++i) {
    platforms.push_back(std::make_unique<NullPlatform>());
    if (shared_codec) platforms.back()->codec = &codec;
    spaces.push_back(std::make_unique<TupleSpace>());
    buses.push_back(std::make_unique<EventBus>());
    engines.push_back(std::make_unique<Engine>(
        NodeId{i + 1}, *platforms.back(), *spaces.back(), *buses.back(),
        MaintenanceOptions{}, &hub));
  }

  std::uint64_t seq = 1;
  for (auto _ : state) {
    state.PauseTiming();
    auto t = sample_tuple();
    t.set_uid(TupleUid{NodeId{999}, seq++});
    const auto frame = std::make_shared<const wire::Bytes>(
        wire::Frame::tuple([&t](wire::Writer& w) { t.encode(w); }));
    state.ResumeTiming();
    for (auto& engine : engines) engine->on_datagram(NodeId{999}, frame);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(receivers));
}
BENCHMARK(BM_DecodeOnceFanout)
    ->ArgsProduct({{4, 16}, {0, 1}})
    ->ArgNames({"receivers", "shared"});

/// The "codec columns" of BENCH_micro.json (docs/OBSERVABILITY.md):
/// steady-state tuple encode/decode cost and the decode-once hit rate of
/// a dense neighbourhood, as gauges on the default hub so the JSON
/// export picks them up next to the wire.frame.* counters.
void record_codec_columns(obs::Hub& hub) {
  using Clock = std::chrono::steady_clock;
  tuples::register_standard_tuples();
  const auto tuple = sample_tuple();
  constexpr int kReps = 50000;

  auto start = Clock::now();
  for (int i = 0; i < kReps; ++i) {
    wire::Writer w;
    tuple.encode(w);
    benchmark::DoNotOptimize(w.bytes().data());
  }
  const double encode_ns =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               start)
              .count()) /
      kReps;

  wire::Writer w;
  tuple.encode(w);
  const auto bytes = w.take();
  start = Clock::now();
  for (int i = 0; i < kReps; ++i) {
    wire::Reader r(bytes);
    auto t = Tuple::decode(r);
    benchmark::DoNotOptimize(t.get());
  }
  const double decode_ns =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               start)
              .count()) /
      kReps;

  // Dense neighbourhood: 16 receivers per broadcast on one shared codec.
  // Counters land on the default hub, so BENCH_micro.json carries both
  // the raw wire.frame.decode_hit/miss and the derived rate.
  constexpr std::size_t kReceivers = 16;
  constexpr std::uint64_t kFrames = 256;
  wire::FrameCodec codec(hub.metrics);
  std::vector<std::unique_ptr<NullPlatform>> platforms;
  std::vector<std::unique_ptr<TupleSpace>> spaces;
  std::vector<std::unique_ptr<EventBus>> buses;
  std::vector<std::unique_ptr<Engine>> engines;
  for (std::size_t i = 0; i < kReceivers; ++i) {
    platforms.push_back(std::make_unique<NullPlatform>());
    platforms.back()->codec = &codec;
    spaces.push_back(std::make_unique<TupleSpace>());
    buses.push_back(std::make_unique<EventBus>());
    engines.push_back(std::make_unique<Engine>(
        NodeId{i + 1}, *platforms.back(), *spaces.back(), *buses.back(),
        MaintenanceOptions{}, &hub));
  }
  for (std::uint64_t seq = 1; seq <= kFrames; ++seq) {
    auto t = sample_tuple();
    t.set_uid(TupleUid{NodeId{999}, seq});
    const auto frame = std::make_shared<const wire::Bytes>(
        wire::Frame::tuple([&t](wire::Writer& w2) { t.encode(w2); }));
    for (auto& engine : engines) engine->on_datagram(NodeId{999}, frame);
  }
  const auto hits = hub.metrics.get("wire.frame.decode_hit");
  const auto misses = hub.metrics.get("wire.frame.decode_miss");
  const double rate =
      hits + misses == 0
          ? 0.0
          : static_cast<double>(hits) / static_cast<double>(hits + misses);

  hub.metrics.gauge("bench.codec.tuple_encode_ns").set(encode_ns);
  hub.metrics.gauge("bench.codec.tuple_decode_ns").set(decode_ns);
  hub.metrics.gauge("bench.codec.frame_cache_hit_rate").set(rate);
}

}  // namespace
}  // namespace tota

// BENCHMARK_MAIN(), plus the BENCH_micro.json export every experiment
// binary owes (docs/OBSERVABILITY.md): the engine benchmarks above
// record into obs::default_hub() like any other engine.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  tota::record_codec_columns(tota::obs::default_hub());
  const std::string path =
      tota::obs::write_bench_json("micro", tota::obs::default_hub());
  std::printf("[obs] wrote %s\n", path.c_str());
  return 0;
}
