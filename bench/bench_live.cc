// LIVE — the real-socket runtime priced end to end (docs/NET.md
// "EventLoop backends & multi-tenant hosting").
//
// Two sections, each an acceptance number for the multi-tenant loop:
//
//   (1) readiness backend throughput: 512 registered pipe fds, 8 ready
//       per round — the mass-live steady state, where nearly every
//       socket is idle between beacons.  poll(2) pays O(all fds) per
//       wakeup (scan + kernel copy), epoll pays O(ready); at this fd
//       count epoll must dispatch at least as fast as poll;
//   (2) mass convergence: a MassLiveWorld (default 120 nodes, override
//       TOTA_BENCH_LIVE_NODES) on one loop — real UDP sockets on
//       loopback — must converge an injected gradient to BFS-exact hop
//       counts, then retract it leak-free when the source dies.
//
// Wall-clock gauges (*_ms, *_per_sec, *_vs_*) vary run to run and are
// --ignore'd by the CI determinism check; the invariant gauges (fd and
// node counts, converged/bfs_exact/leaks) are load-bearing and must
// reproduce bit-for-bit.  Section 2 degrades gracefully where loopback
// UDP is unavailable: bench.live.mass.sockets records 0 and the mass
// gauges are skipped (compare with --ignore 'bench\.live\.mass' there).
#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "exp_common.h"
#include "net/event_loop.h"
#include "net/mass_live.h"
#include "obs/hub.h"

using namespace tota;

namespace {

obs::Gauge& result(const std::string& name) {
  return obs::default_hub().metrics.gauge("bench.live." + name);
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// --- section 1: poll vs epoll dispatch throughput ------------------------

constexpr int kPipes = 512;
constexpr int kActivePerRound = 8;
constexpr int kRounds = 2000;

/// Events dispatched per second by `backend` with kPipes registered fds
/// and kActivePerRound made ready per round.
double loop_events_per_sec(net::LoopBackend backend) {
  net::EventLoop loop(backend);
  std::vector<int> rd(kPipes), wr(kPipes);
  int dispatched = 0;
  int round_target = 0;
  for (int i = 0; i < kPipes; ++i) {
    int fds[2];
    if (::pipe(fds) != 0) {
      std::perror("pipe");
      std::exit(1);
    }
    ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
    rd[i] = fds[0];
    wr[i] = fds[1];
    loop.add_fd(fds[0], [&loop, &dispatched, &round_target, fd = fds[0]] {
      char byte;
      while (::read(fd, &byte, 1) == 1) {
      }
      if (++dispatched >= round_target) loop.stop();
    });
  }

  const auto start = std::chrono::steady_clock::now();
  for (int round = 0; round < kRounds; ++round) {
    for (int k = 0; k < kActivePerRound; ++k) {
      const int i = (round * kActivePerRound + k) % kPipes;
      const char byte = 1;
      (void)!::write(wr[i], &byte, 1);
    }
    round_target = dispatched + kActivePerRound;
    loop.run();  // callbacks stop() once the round's events dispatched
  }
  const double elapsed = seconds_since(start);

  for (int i = 0; i < kPipes; ++i) {
    loop.remove_fd(rd[i]);
    ::close(rd[i]);
    ::close(wr[i]);
  }
  return static_cast<double>(kRounds) * kActivePerRound / elapsed;
}

void section_loop() {
  exp::section("loop backend dispatch (512 fds, 8 ready/round)");
  const double poll_eps = loop_events_per_sec(net::LoopBackend::kPoll);
  std::printf("%-8s %12.0f events/s\n", "poll", poll_eps);
  result("loop.fds").set(kPipes);
  result("loop.rounds").set(kRounds);
  result("loop.poll_events_per_sec").set(poll_eps);
#if TOTA_HAVE_EPOLL
  const double epoll_eps = loop_events_per_sec(net::LoopBackend::kEpoll);
  std::printf("%-8s %12.0f events/s\n", "epoll", epoll_eps);
  result("loop.epoll_events_per_sec").set(epoll_eps);
  result("loop.epoll_vs_poll").set(epoll_eps / poll_eps);
  std::printf(
      "expected shape: epoll >= poll here — poll re-scans all %d\n"
      "registrations per wakeup, epoll touches only the %d ready.\n",
      kPipes, kActivePerRound);
#endif
}

// --- section 2: mass convergence on real sockets -------------------------

void section_mass() {
  const char* env = std::getenv("TOTA_BENCH_LIVE_NODES");
  const int nodes = env != nullptr ? std::atoi(env) : 120;
  exp::section("mass-live convergence (" + std::to_string(nodes) +
               " real-socket nodes, one loop)");

  net::MassLiveOptions opts;
  opts.count = nodes;
  opts.transport.mode = net::UdpOptions::Mode::kBroadcast;
  opts.transport.group = "127.255.255.255";
  // PID-derived port: parallel bench runs on one host must not share a
  // channel (same convention as scripts/smoke_net.sh).
  opts.transport.port =
      static_cast<std::uint16_t>(53000 + ::getpid() % 10000);
  opts.transport.rcvbuf = 4 << 20;
  opts.discovery.beacon_period = SimTime::from_millis(250);
  opts.discovery.expiry_missed_beacons = 6;
  opts.batch.enabled = true;
  opts.batch.flush_delay = SimTime::from_millis(5);
  opts.digest_period = SimTime::from_millis(500);
  opts.reliable = true;
  opts.maintenance.hold_down = SimTime::from_millis(2000);
  opts.seed = 7;

  net::MassLiveWorld world(opts);
  if (!world.start()) {
    std::printf("loopback UDP unavailable (%s); skipping mass section\n",
                world.error().c_str());
    result("mass.sockets").set(0);
    return;
  }
  result("mass.sockets").set(1);

  const auto start = std::chrono::steady_clock::now();
  world.inject_gradient(0, "bench");
  const bool converged = world.run_until(
      [&] { return world.converged("bench", 0) && world.mesh_complete(); },
      SimTime::from_seconds(60));
  const double converge_s = seconds_since(start);
  const int bfs_exact = world.bfs_exact_holders("bench", 0);

  world.kill(0);
  const auto kill_at = std::chrono::steady_clock::now();
  world.run_until([&] { return world.leaked("bench") == 0; },
                  SimTime::from_seconds(60));
  const double retract_s = seconds_since(kill_at);
  const int leaks = world.leaked("bench");

  std::printf("%-8s %-10s %-10s %-12s %-12s %-10s\n", "nodes", "converged",
              "bfs_exact", "converge_ms", "retract_ms", "leaks");
  std::printf("%-8d %-10d %-10d %-12.0f %-12.0f %-10d\n", nodes,
              converged ? 1 : 0, bfs_exact, converge_s * 1e3,
              retract_s * 1e3, leaks);

  result("mass.nodes").set(nodes);
  result("mass.converged").set(converged ? 1 : 0);
  result("mass.bfs_exact").set(bfs_exact);
  result("mass.leaks").set(leaks);
  result("mass.convergence_ms").set(converge_s * 1e3);
  result("mass.retract_ms").set(retract_s * 1e3);
  result("mass.nodes_per_sec").set(nodes / converge_s);
  std::printf(
      "expected shape: converged=1, bfs_exact=%d, leaks=0 — every layer\n"
      "below main() is the production stack; only the process count is\n"
      "collapsed.\n",
      nodes);
  world.stop();
}

}  // namespace

int main() {
  section_loop();
  section_mass();
  exp::emit_json("live");
  return 0;
}
