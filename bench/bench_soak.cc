// SOAK — the gradient field on an adverse channel (net::FaultInjector
// threaded through sim::Network, docs/NET.md).
//
// The scenario benches (fig1, sec5x) run on a benign medium; this binary
// quantifies what the event-driven protocol keeps — and loses — when the
// channel itself misbehaves:
//
//   (1) flood coverage/accuracy vs drop probability: with no anti-entropy
//       round, every percent of loss during the flood is a permanent hole
//       in the field (the live runtime's discovery-restart resync exists
//       precisely to plug these after an outage);
//   (2) the full chaos mix (drop + duplicate + reorder + truncate +
//       corrupt + a blackout window) at three seeds, with the injector's
//       conservation law checked per run.
//
// Like every experiment binary it writes BENCH_soak.json via emit_json();
// its result fields are additive to the bench artefact set, so the
// determinism checker's named baselines (fig1, sec51) are untouched.
#include "exp_common.h"

using namespace tota;

namespace {

/// The chaos mix the soak test suite (tests/test_soak.cc) converges
/// under; duplicated here so the bench numbers and the test invariants
/// describe the same adversary.
net::FaultPlan chaos_plan() {
  net::FaultPlan plan;
  plan.drop = 0.3;
  plan.duplicate = 0.1;
  plan.reorder = 0.25;
  plan.reorder_window = 5;
  plan.truncate = 0.05;
  plan.corrupt = 0.05;
  // One mid-run blackout: empty group = every path severed.
  plan.partitions.push_back(
      {SimTime::from_seconds(3), SimTime::from_seconds(1), {}});
  return plan;
}

}  // namespace

int main() {
  exp::section("SOAK(1): flood coverage vs drop probability (6x6 grid)");
  std::printf("%-10s %-12s %-12s %-12s %-12s\n", "drop", "coverage",
              "accuracy", "fault_drop", "tx/node");
  for (const double drop : {0.0, 0.1, 0.3, 0.5}) {
    obs::Hub hub;
    auto options = exp::manet_options(7);
    options.hub = &hub;
    options.net.fault.drop = drop;  // drop == 0 stays a benign plan
    emu::World world(options);
    const auto nodes = world.spawn_grid(6, 6, 80.0);
    world.run_for(SimTime::from_seconds(1));
    const auto tx = exp::tx_cost(world, [&] {
      world.mw(nodes.front())
          .inject(std::make_unique<tuples::GradientTuple>("soak"));
      world.run_for(SimTime::from_seconds(5));
    });
    const Pattern p = Pattern::of_type(tuples::GradientTuple::kTag);
    std::printf("%-10.2f %-12.3f %-12.3f %-12lld %-12.2f\n", drop,
                exp::coverage(world, p),
                exp::gradient_accuracy(world, nodes.front()),
                static_cast<long long>(hub.metrics.get("net.fault.drop")),
                static_cast<double>(tx) / static_cast<double>(nodes.size()));
    obs::default_hub().metrics.merge_from(hub.metrics);
  }
  std::printf(
      "expected shape: coverage/accuracy sag as drop grows — a one-shot\n"
      "flood with event-driven maintenance has no anti-entropy round, so\n"
      "a frame lost on a static network is a hole that never heals (the\n"
      "live runtime's discovery-restart resync is the repair path).\n");

  exp::section("SOAK(2): full chaos mix, three seeds (6x6 grid, 10 s)");
  std::printf("%-6s %-10s %-10s %-9s %-9s %-7s %-9s %-7s %-7s %-9s %-10s\n",
              "seed", "coverage", "accuracy", "proc", "deliv", "drop",
              "dup", "reord", "damage", "part", "conserved");
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    obs::Hub hub;
    auto options = exp::manet_options(seed);
    options.hub = &hub;
    options.net.fault = chaos_plan();
    emu::World world(options);
    const auto nodes = world.spawn_grid(6, 6, 80.0);
    world.run_for(SimTime::from_seconds(1));
    world.mw(nodes.front())
        .inject(std::make_unique<tuples::GradientTuple>("soak"));
    // A second injection lands inside the blackout window, so its flood
    // meets the severed channel head-on (partition_drop > 0).
    world.run_for(SimTime::from_millis(2200));
    world.mw(nodes.back())
        .inject(std::make_unique<tuples::GradientTuple>("blackout"));
    world.run_for(SimTime::from_millis(7800));

    auto& m = hub.metrics;
    const auto processed = m.get("net.fault.processed");
    const auto delivered = m.get("net.fault.delivered");
    const auto dropped = m.get("net.fault.drop");
    const auto part = m.get("net.fault.partition_drop");
    // held() must be zero this long after the last transmission (the
    // hold timer drains lulls), so conservation closes exactly.
    const bool conserved = processed == delivered + dropped + part;
    const Pattern p = Pattern::of_type(tuples::GradientTuple::kTag);
    std::printf(
        "%-6llu %-10.3f %-10.3f %-9lld %-9lld %-7lld %-9lld %-7lld "
        "%-7lld %-9lld %-10s\n",
        static_cast<unsigned long long>(seed), exp::coverage(world, p),
        exp::gradient_accuracy(world, nodes.front()),
        static_cast<long long>(processed), static_cast<long long>(delivered),
        static_cast<long long>(dropped), static_cast<long long>(m.get(
            "net.fault.dup")),
        static_cast<long long>(m.get("net.fault.reorder")),
        static_cast<long long>(m.get("net.fault.truncate") +
                               m.get("net.fault.corrupt")),
        static_cast<long long>(part), conserved ? "yes" : "NO");
    obs::default_hub().metrics.merge_from(hub.metrics);
  }
  std::printf(
      "expected shape: every row conserved=yes (processed == delivered +\n"
      "drop + partition_drop once the hold queues drain); coverage well\n"
      "below 1.0 — the same mix the soak test converges under, but there\n"
      "the restart-storm resync repairs the field afterwards.\n");

  exp::emit_json("soak");
  return 0;
}
