// MassLiveWorld — N real-socket TOTA nodes in one process, one loop.
//
// The paper's scaling claim needs a live topology bigger than a handful
// of daemons, and forking 500 processes per experiment is how you melt a
// CI runner.  This harness instead hosts N complete nodes — each its own
// UDP socket, net::NetSession, Middleware/engine, and per-node obs::Hub
// — on one multi-tenant EventLoop and one thread (the Anger
// MassConnectTest pattern: hundreds of real sockets on loopback in one
// process).  Every layer below main() is exactly the single-node
// production stack; nothing is simulated, datagrams cross the kernel.
//
// On a shared broadcast channel every node is one hop from every other,
// so BFS ground truth for an injected gradient is trivial and exact:
// hop 0 at the source, hop 1 everywhere else, absent after the source
// dies and self-maintenance retracts the orphaned replicas.  converged()
// and leaked() assert exactly that, which is what scripts/mass_live.sh
// and bench_live drive at 300–1000 nodes under FaultInjector chaos.
//
// Sockets can be unavailable (sandboxes): start() returns false and the
// caller skips, same contract as LivePlatform::start.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/event_loop.h"
#include "net/fault.h"
#include "net/live_platform.h"
#include "obs/hub.h"
#include "tota/middleware.h"

namespace tota::net {

struct MassLiveOptions {
  /// How many nodes to host; wire ids are base_id .. base_id + count - 1.
  int count = 3;
  std::uint64_t base_id = 1;
  /// Transport template (mode/group/port/mtu/drain budget), shared by
  /// every node — they form one broadcast channel.
  UdpOptions transport;
  DiscoveryOptions discovery;
  /// v2 wire features, shared by every node (see LiveOptions).  Mass
  /// worlds want batching and a digest cadence on: a flood of N
  /// same-instant re-propagations overflows receive buffers no matter
  /// how large, and anti-entropy is the designed repair for the frames
  /// that drown.
  BatchOptions batch;
  bool reliable = false;
  ReliableOptions rel;
  SimTime digest_period = SimTime::zero();
  std::uint32_t digest_buckets = 32;
  /// Receive-path adversity, applied per node (each node's injector
  /// forks its own Rng stream off the node's seeded platform).
  FaultPlan fault;
  /// Readiness backend for the shared loop.
  LoopBackend backend = LoopBackend::kAuto;
  /// Base seed; node i runs with seed + i (0 falls back to id-derived
  /// per-node seeds, see LiveOptions::seed).
  std::uint64_t seed = 1;
  MaintenanceOptions maintenance;
};

class MassLiveWorld {
 public:
  explicit MassLiveWorld(MassLiveOptions options);
  ~MassLiveWorld();

  MassLiveWorld(const MassLiveWorld&) = delete;
  MassLiveWorld& operator=(const MassLiveWorld&) = delete;

  /// Opens every node's socket and starts its session.  False (nothing
  /// started, error() set) when any socket cannot be opened — loopback
  /// UDP is all-or-nothing, so the first failure aborts the world.
  [[nodiscard]] bool start();
  /// Stops every still-live node.
  void stop();

  [[nodiscard]] const std::string& error() const { return error_; }

  // --- driving ------------------------------------------------------------

  [[nodiscard]] EventLoop& loop() { return loop_; }

  /// Runs the loop in `tick`-sized slices until `done()` or `timeout`
  /// (both wall-clock); returns done()'s final value.
  bool run_until(const std::function<bool()>& done, SimTime timeout,
                 SimTime tick = SimTime::from_millis(50));

  // --- the scenario -------------------------------------------------------

  /// Injects a gradient field named `name` from node `i`.
  void inject_gradient(int i, const std::string& name);

  /// Simulates node `i` crashing: its session stops silently and its
  /// socket closes; peers observe missed beacons, expiry, retraction.
  void kill(int i);

  /// Live nodes holding the field at the BFS-exact hop count (0 at the
  /// injecting node, 1 everywhere else on a shared channel).
  [[nodiscard]] int bfs_exact_holders(const std::string& name, int source) const;
  /// Live nodes holding the field at any *wrong* hop count — must stay 0
  /// for the convergence claim to mean anything.
  [[nodiscard]] int wrong_hop_holders(const std::string& name, int source) const;
  /// Every live node holds the BFS-exact value and nobody a wrong one.
  [[nodiscard]] bool converged(const std::string& name, int source) const;
  /// Every live node's discovery knows every other live node: the full
  /// shared-channel mesh has formed.  The kill/retraction scenario gates
  /// on this — a node that never observed the source as a neighbour has
  /// no link-down event to retract on (exactly as in the paper's model,
  /// where self-maintenance reacts to *topology changes*).
  [[nodiscard]] bool mesh_complete() const;
  /// Live nodes still holding any replica of the field — counts the
  /// retraction leaks after the source died and maintenance quiesced.
  [[nodiscard]] int leaked(const std::string& name) const;

  // --- introspection ------------------------------------------------------

  [[nodiscard]] int count() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] bool alive(int i) const { return nodes_[i]->alive; }
  [[nodiscard]] int alive_count() const;
  [[nodiscard]] Middleware& mw(int i) { return nodes_[i]->middleware; }
  [[nodiscard]] const Middleware& mw(int i) const {
    return nodes_[i]->middleware;
  }
  [[nodiscard]] LivePlatform& platform(int i) { return nodes_[i]->platform; }
  [[nodiscard]] obs::Hub& hub(int i) { return nodes_[i]->hub; }
  /// Loop instrumentation (loop.*) for the shared loop.
  [[nodiscard]] obs::Hub& loop_hub() { return loop_hub_; }

  /// Sum of one counter across every node's hub (plus the loop hub) —
  /// the aggregate view a per-process run would have had.
  [[nodiscard]] std::int64_t metric_sum(const std::string& name) const;

 private:
  /// One complete node: its own metric hub, socket+session platform,
  /// and engine.  Declaration order is construction order — the hub
  /// outlives both its users.
  struct Node {
    Node(EventLoop& loop, const LiveOptions& options,
         const MaintenanceOptions& maintenance);
    obs::Hub hub;
    LivePlatform platform;
    Middleware middleware;
    bool alive = false;
  };

  MassLiveOptions options_;
  obs::Hub loop_hub_;
  EventLoop loop_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::string error_;
  bool started_ = false;
};

}  // namespace tota::net
