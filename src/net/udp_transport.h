// UdpTransport — the broadcast medium of a live TOTA node.
//
// One non-blocking IPv4 UDP socket in one of two modes:
//
//   kMulticast  — join a multicast group; send() transmits to the group.
//                 This is the real-network mode (the paper's prototype
//                 used 802.11 multicast the same way).
//   kBroadcast  — SO_BROADCAST datagrams to a subnet broadcast address.
//                 With 127.255.255.255 this works on the loopback
//                 interface, which is how CI runs N nodes on one host.
//
// Either way the socket binds the shared port with SO_REUSEADDR +
// SO_REUSEPORT, so several processes on one machine all receive every
// datagram — a faithful stand-in for a shared radio channel (including
// hearing one's own transmissions; the LivePlatform filters those by
// sender id).
//
// Failure handling is graceful, not fatal: open() returns false with a
// diagnostic in error() (sandboxes without socket access exist — the
// smoke test skips there), and send() errors are counted as
// net.udp.send_err rather than thrown, because a full send buffer on a
// lossy medium is weather, not a bug.
//
// Metrics (docs/NET.md): net.udp.tx, net.udp.tx_bytes, net.udp.rx,
// net.udp.rx_bytes, net.udp.send_err, net.udp.rx_err, net.udp.rx_trunc,
// net.udp.drain_yield.
#pragma once

#include <netinet/in.h>

#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "obs/metrics.h"
#include "wire/buffer.h"

namespace tota::net {

struct UdpOptions {
  enum class Mode { kMulticast, kBroadcast };

  Mode mode = Mode::kMulticast;
  /// Multicast group (kMulticast) or broadcast destination (kBroadcast).
  std::string group = "239.255.77.7";
  std::uint16_t port = 47000;
  /// Interface address for multicast membership/egress; empty = any
  /// ("0.0.0.0").  Use "127.0.0.1" to keep multicast on loopback.
  std::string ifaddr;
  /// Multicast TTL; 1 = link-local, matching the paper's one-hop medium.
  int ttl = 1;
  /// Device MTU in bytes (net/device_profile.h); 0 = unlimited.  An
  /// oversized datagram is dropped before the socket and counted as
  /// net.mtu_drop — the live-path mirror of the simulators' per-link
  /// MTU accounting.
  std::size_t mtu = 0;
  /// Most datagrams one drain() call delivers before yielding back to
  /// the event loop; 0 = unlimited.  On a multi-tenant loop one flooded
  /// socket must not starve every other engine's socket and all due
  /// timers: a drain that hits the budget stops (counted as
  /// net.udp.drain_yield) and is re-armed by the loop's level-triggered
  /// readiness — the remaining datagrams surface on the next wakeup,
  /// after everyone else had a turn.
  std::size_t drain_budget = 1024;
  /// Requested SO_RCVBUF in bytes; 0 keeps the kernel default.  A flood
  /// on the shared channel (e.g. N nodes re-propagating an injection at
  /// once) can overflow the ~208 KiB default and silently drop frames;
  /// mass harnesses ask for several MiB.  Best-effort — the kernel
  /// clamps to net.core.rmem_max, and a clamped request is not an error.
  int rcvbuf = 0;
};

class UdpTransport {
 public:
  /// Registers the net.udp.* instruments in `metrics` (must outlive the
  /// transport).  The socket is not opened yet.
  UdpTransport(UdpOptions options, obs::MetricsRegistry& metrics);
  ~UdpTransport();

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  /// Opens + configures the socket.  False on failure (see error());
  /// never throws for environmental problems.
  [[nodiscard]] bool open();
  void close();

  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  /// The socket fd for EventLoop::add_fd; -1 when closed.
  [[nodiscard]] int fd() const { return fd_; }
  /// Human-readable reason open()/send() last failed.
  [[nodiscard]] const std::string& error() const { return error_; }

  /// Transmits one datagram to the group/broadcast address.  Returns
  /// false (and counts net.udp.send_err) on failure.
  bool send(std::span<const std::uint8_t> datagram);

  /// Reads the queued datagrams off the socket — at most
  /// options().drain_budget of them — invoking `sink` for each; returns
  /// how many were delivered.  Call from the loop's readability
  /// callback.  A cleanly drained queue (EAGAIN/EWOULDBLOCK) ends the
  /// loop silently; a real receive error also ends it but is counted
  /// (net.udp.rx_err) and recorded in error(); an exhausted budget ends
  /// it too (net.udp.drain_yield) and relies on the loop's
  /// level-triggered readiness to resume on the next wakeup.
  std::size_t drain(
      const std::function<void(std::span<const std::uint8_t>)>& sink);

  [[nodiscard]] const UdpOptions& options() const { return options_; }

 private:
  bool fail(const std::string& what);

  UdpOptions options_;
  int fd_ = -1;
  /// Destination resolved once at open(); send() reuses it instead of
  /// re-running inet_pton per datagram.
  sockaddr_in dest_{};
  std::string error_;
  obs::Counter& tx_;
  obs::Counter& tx_bytes_;
  obs::Counter& rx_;
  obs::Counter& rx_bytes_;
  obs::Counter& send_err_;
  obs::Counter& rx_err_;
  obs::Counter& rx_trunc_;
  obs::Counter& mtu_drop_;
  obs::Counter& drain_yield_;
};

}  // namespace tota::net
