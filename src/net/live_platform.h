// LivePlatform — tota::Platform on real sockets and the real clock.
//
// The production-shaped twin of emu::SimPlatform: where that binds a
// Middleware to the discrete-event simulator, this binds one to a
// net::EventLoop (timers + readiness), a net::UdpTransport (the shared
// broadcast channel), and a net::NetSession (the whole v2 datagram
// path: discovery beacons, MTU-aware batching, the reliable control
// channel, anti-entropy digests).  The engine/wire/tuples layers run
// unmodified on either — that is the point of the Platform seam.
//
// Differences from the simulator, all deliberate:
//   * frame_codec() stays nullptr: each process owns its private receive
//     buffer, so there is no cross-receiver decode-once cache to share;
//     the engine takes its span fallback path.
//   * Sender attribution comes from the datagram envelope
//     (net/datagram.h), not from the radio model.
//   * A broadcast medium echoes one's own frames; the session drops
//     them by sender id (counted as net.data.echo).
//   * Neighbour up/down upcalls are synthesized by Discovery instead of
//     injected by the simulator — so a killed process is observed as k
//     missed beacons, and the engine's self-maintenance (retraction,
//     hold-down, probes) runs for real.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>

#include "common/geometry.h"
#include "net/event_loop.h"
#include "net/fault.h"
#include "net/session.h"
#include "net/udp_transport.h"
#include "obs/hub.h"
#include "tota/platform.h"

namespace tota {
class Middleware;
}  // namespace tota

namespace tota::net {

struct LiveOptions {
  /// This node's identity on the wire (must be nonzero and unique per
  /// group; collisions make two processes one schizophrenic node).
  NodeId id;
  UdpOptions transport;
  DiscoveryOptions discovery;
  /// v2 wire features (net/session.h): MTU-aware batching, the reliable
  /// control channel, the anti-entropy digest cadence.  All default off
  /// — the default wire is v1, byte-for-byte.
  BatchOptions batch;
  bool reliable = false;
  ReliableOptions rel;
  SimTime digest_period = SimTime::zero();
  std::uint32_t digest_buckets = 32;
  /// Reported by position(); live nodes without a real location sensor
  /// just stand still wherever they are configured.
  Vec2 position{};
  /// Seed for the node-local Rng; 0 derives one from `id` so distinct
  /// nodes get distinct (but reproducible) jitter streams.
  std::uint64_t seed = 0;
  /// Receive-path adversity (net::FaultInjector), applied between
  /// UdpTransport::drain and datagram decoding.  Benign by default —
  /// the drain path then bypasses the injector entirely.
  FaultPlan fault;
};

class LivePlatform final : public tota::Platform {
 public:
  /// `loop` and `hub` (nullptr = obs::default_hub()) must outlive the
  /// platform.  No sockets are touched until start().
  LivePlatform(EventLoop& loop, LiveOptions options, obs::Hub* hub = nullptr);
  ~LivePlatform() override;

  LivePlatform(const LivePlatform&) = delete;
  LivePlatform& operator=(const LivePlatform&) = delete;

  /// Routes upcalls (datagrams, neighbour up/down, digests) into
  /// `middleware`, which must outlive the platform or be detached by
  /// stop().
  void attach(Middleware& middleware);

  /// Opens the socket, registers it with the loop, and starts beaconing.
  /// False (with error() set) when the socket cannot be opened — callers
  /// can skip gracefully where sockets are unavailable.
  [[nodiscard]] bool start();

  /// Stops the session (silently), deregisters and closes the socket.
  void stop();

  [[nodiscard]] const std::string& error() const {
    return transport_.error();
  }

  // --- tota::Platform -----------------------------------------------------

  void broadcast(wire::Bytes payload) override;
  void broadcast_reliable(wire::Bytes payload) override;
  [[nodiscard]] SimTime now() const override { return loop_.now(); }
  TimerId schedule(SimTime delay, std::function<void()> action) override {
    return loop_.schedule(delay, std::move(action));
  }
  void cancel(TimerId id) override { loop_.cancel(id); }
  [[nodiscard]] Vec2 position() const override { return options_.position; }
  [[nodiscard]] Rng& rng() override { return rng_; }
  // frame_codec(): inherited nullptr — buffers are not shared across
  // processes, so there is nothing to decode once.

  // --- introspection ------------------------------------------------------

  [[nodiscard]] NodeId id() const { return options_.id; }
  [[nodiscard]] EventLoop& loop() { return loop_; }
  [[nodiscard]] NetSession& session() { return session_; }
  [[nodiscard]] Discovery& discovery() { return session_.discovery(); }
  [[nodiscard]] const Discovery& discovery() const {
    return session_.discovery();
  }
  [[nodiscard]] UdpTransport& transport() { return transport_; }
  [[nodiscard]] obs::Hub& hub() { return hub_; }
  /// The receive-path fault injector; nullptr when options.fault is
  /// benign or the platform has not been started.
  [[nodiscard]] FaultInjector* fault() { return fault_.get(); }

 private:
  EventLoop& loop_;
  LiveOptions options_;
  obs::Hub& hub_;
  Rng rng_;
  UdpTransport transport_;
  NetSession session_;
  /// Built at start() when options_.fault.enabled(); wraps the drain →
  /// session receive path.  Destroyed at stop() — held (reordered)
  /// datagrams of a stopping node are simply in-flight loss.
  std::unique_ptr<FaultInjector> fault_;
  bool started_ = false;
};

}  // namespace tota::net
