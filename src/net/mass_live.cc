#include "net/mass_live.h"

#include <utility>

#include "tuples/all.h"
#include "tuples/gradient_tuple.h"

namespace tota::net {

namespace {

Pattern field_pattern(const std::string& name) {
  return Pattern::of_type(tuples::GradientTuple::kTag).eq("name", name);
}

}  // namespace

MassLiveWorld::Node::Node(EventLoop& loop, const LiveOptions& options,
                          const MaintenanceOptions& maintenance)
    : platform(loop, options, &hub),
      middleware(options.id, platform, maintenance, &hub) {
  platform.attach(middleware);
}

MassLiveWorld::MassLiveWorld(MassLiveOptions options)
    : options_(std::move(options)),
      loop_(options_.backend, &loop_hub_.metrics) {
  nodes_.reserve(static_cast<std::size_t>(options_.count));
  for (int i = 0; i < options_.count; ++i) {
    LiveOptions live;
    live.id = NodeId{options_.base_id + static_cast<std::uint64_t>(i)};
    live.transport = options_.transport;
    live.discovery = options_.discovery;
    live.batch = options_.batch;
    live.reliable = options_.reliable;
    live.rel = options_.rel;
    live.digest_period = options_.digest_period;
    live.digest_buckets = options_.digest_buckets;
    live.fault = options_.fault;
    live.seed = options_.seed == 0
                    ? 0
                    : options_.seed + static_cast<std::uint64_t>(i);
    nodes_.push_back(
        std::make_unique<Node>(loop_, live, options_.maintenance));
  }
}

MassLiveWorld::~MassLiveWorld() { stop(); }

bool MassLiveWorld::start() {
  if (started_) return true;
  tuples::register_standard_tuples();
  for (auto& node : nodes_) {
    if (!node->platform.start()) {
      error_ = node->platform.error();
      for (auto& started : nodes_) {
        if (started->alive) {
          started->platform.stop();
          started->alive = false;
        }
      }
      return false;
    }
    node->alive = true;
  }
  started_ = true;
  return true;
}

void MassLiveWorld::stop() {
  if (!started_) return;
  started_ = false;
  for (auto& node : nodes_) {
    if (node->alive) {
      node->platform.stop();
      node->alive = false;
    }
  }
}

bool MassLiveWorld::run_until(const std::function<bool()>& done,
                              SimTime timeout, SimTime tick) {
  const SimTime deadline = loop_.now() + timeout;
  while (!done()) {
    if (loop_.now() >= deadline) return done();
    const SimTime left = deadline - loop_.now();
    loop_.run_for(left < tick ? left : tick);
  }
  return true;
}

void MassLiveWorld::inject_gradient(int i, const std::string& name) {
  mw(i).inject(std::make_unique<tuples::GradientTuple>(name));
}

void MassLiveWorld::kill(int i) {
  if (!nodes_[i]->alive) return;
  nodes_[i]->platform.stop();
  nodes_[i]->alive = false;
}

int MassLiveWorld::bfs_exact_holders(const std::string& name,
                                     int source) const {
  const Pattern p = field_pattern(name);
  int exact = 0;
  for (int i = 0; i < count(); ++i) {
    if (!nodes_[i]->alive) continue;
    const auto replica = mw(i).read_one(p);
    if (replica == nullptr) continue;
    const int want = i == source ? 0 : 1;
    if (replica->content().at("hopcount").as_int() == want) ++exact;
  }
  return exact;
}

int MassLiveWorld::wrong_hop_holders(const std::string& name,
                                     int source) const {
  const Pattern p = field_pattern(name);
  int wrong = 0;
  for (int i = 0; i < count(); ++i) {
    if (!nodes_[i]->alive) continue;
    const auto replica = mw(i).read_one(p);
    if (replica == nullptr) continue;
    const int want = i == source ? 0 : 1;
    if (replica->content().at("hopcount").as_int() != want) ++wrong;
  }
  return wrong;
}

bool MassLiveWorld::converged(const std::string& name, int source) const {
  return bfs_exact_holders(name, source) == alive_count() &&
         wrong_hop_holders(name, source) == 0;
}

bool MassLiveWorld::mesh_complete() const {
  for (int i = 0; i < count(); ++i) {
    if (!nodes_[i]->alive) continue;
    const Discovery& d = nodes_[i]->platform.discovery();
    for (int j = 0; j < count(); ++j) {
      if (i == j || !nodes_[j]->alive) continue;
      if (!d.knows(NodeId{options_.base_id + static_cast<std::uint64_t>(j)})) {
        return false;
      }
    }
  }
  return true;
}

int MassLiveWorld::leaked(const std::string& name) const {
  const Pattern p = field_pattern(name);
  int holders = 0;
  for (int i = 0; i < count(); ++i) {
    if (!nodes_[i]->alive) continue;
    if (mw(i).read_one(p) != nullptr) ++holders;
  }
  return holders;
}

int MassLiveWorld::alive_count() const {
  int n = 0;
  for (const auto& node : nodes_) n += node->alive ? 1 : 0;
  return n;
}

std::int64_t MassLiveWorld::metric_sum(const std::string& name) const {
  std::int64_t sum = loop_hub_.metrics.get(name);
  for (const auto& node : nodes_) sum += node->hub.metrics.get(name);
  return sum;
}

}  // namespace tota::net
