#include "net/discovery.h"

#include <cmath>
#include <utility>

namespace tota::net {

Discovery::Discovery(NodeId self, tota::Platform& platform,
                     DiscoveryOptions options, BeaconFn beacon,
                     obs::MetricsRegistry& metrics)
    : self_(self),
      platform_(platform),
      options_(options),
      beacon_(std::move(beacon)),
      hello_tx_(metrics.counter("net.hello.tx")),
      hello_rx_(metrics.counter("net.hello.rx")),
      hello_stale_(metrics.counter("net.hello.stale")),
      hello_restart_(metrics.counter("net.hello.restart")),
      hello_clamped_(metrics.counter("net.hello.clamped")),
      neighbor_up_(metrics.counter("net.neighbor.up")),
      neighbor_down_(metrics.counter("net.neighbor.down")),
      neighbors_gauge_(metrics.gauge("net.neighbors")) {}

Discovery::~Discovery() { stop(); }

void Discovery::start() {
  if (running_) return;
  running_ = true;
  send_beacon();
}

void Discovery::stop() {
  if (!running_) return;
  running_ = false;
  platform_.cancel(beacon_timer_);
  beacon_timer_ = tota::Platform::kInvalidTimer;
  for (auto& [id, n] : neighbors_) platform_.cancel(n.expiry);
  neighbors_.clear();
  neighbors_gauge_.set(0);
}

SimTime Discovery::expiry_after(SimTime period) const {
  // k beacon intervals, each allowed to be maximally late: lose k-1
  // beacons in a row and survive, lose k and expire.  Rounded (not
  // truncated) so e.g. 100ms * 3.6 is exactly 360ms.
  const double k = static_cast<double>(options_.expiry_missed_beacons);
  return SimTime(std::llround(static_cast<double>(period.micros()) * k *
                              (1.0 + options_.beacon_jitter)));
}

void Discovery::send_beacon() {
  if (!running_) return;
  beacon_(beacon_seq_++, options_.beacon_period);
  hello_tx_.inc();

  // Next beacon at period * (1 ± jitter); the uniform draw comes from
  // the platform's seeded Rng, so the whole schedule is reproducible.
  const double spread =
      1.0 + options_.beacon_jitter * (2.0 * platform_.rng().uniform() - 1.0);
  beacon_timer_ = platform_.schedule(options_.beacon_period * spread,
                                     [this] { send_beacon(); });
}

void Discovery::arm_expiry(NodeId id, Neighbor& n, SimTime period) {
  platform_.cancel(n.expiry);
  n.expiry =
      platform_.schedule(expiry_after(period), [this, id] { expire(id); });
}

void Discovery::on_hello(NodeId from, std::uint64_t seq, SimTime period) {
  if (!running_ || from == self_ || !from.valid()) return;
  hello_rx_.inc();

  // An advertised period is a claim by the peer; honour it only up to
  // max_peer_period, or one hostile/corrupt HELLO advertising a huge
  // period would pin this neighbour entry (and wedge the maintenance
  // that its expiry drives) near-forever.
  if (period > options_.max_peer_period) {
    period = options_.max_peer_period;
    hello_clamped_.inc();
  }

  auto [it, fresh] = neighbors_.try_emplace(from);
  Neighbor& n = it->second;
  bool restarted = false;
  if (!fresh && seq <= n.last_seq) {
    if (n.last_seq - seq <= options_.restart_seq_window) {
      // A duplicated or reordered old beacon (trivially produced by UDP
      // or the fault injector): it carries *stale* information and must
      // not refresh the session or re-arm expiry.
      hello_stale_.inc();
      return;
    }
    // Deep regression: the peer restarted and is beaconing from zero
    // again.  Tear the old session down and re-announce the neighbour so
    // the layers above resync instead of silently continuing it.
    hello_restart_.inc();
    restarted = true;
  }

  n.last_heard = platform_.now();
  n.last_seq = seq;
  arm_expiry(from, n, period);
  if (!fresh && !restarted) return;

  if (restarted) {
    neighbor_down_.inc();
    if (down_) down_(from);
  }
  neighbor_up_.inc();
  neighbors_gauge_.set(static_cast<double>(neighbors_.size()));
  if (up_) up_(from);
}

void Discovery::expire(NodeId id) {
  const auto it = neighbors_.find(id);
  if (it == neighbors_.end()) return;
  neighbors_.erase(it);
  neighbor_down_.inc();
  neighbors_gauge_.set(static_cast<double>(neighbors_.size()));
  if (down_) down_(id);
}

std::vector<NodeId> Discovery::neighbors() const {
  std::vector<NodeId> out;
  out.reserve(neighbors_.size());
  for (const auto& [id, _] : neighbors_) out.push_back(id);
  return out;
}

}  // namespace tota::net
