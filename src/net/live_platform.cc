#include "net/live_platform.h"

#include <stdexcept>
#include <utility>

#include "net/datagram.h"
#include "tota/middleware.h"

namespace tota::net {

LivePlatform::LivePlatform(EventLoop& loop, LiveOptions options,
                           obs::Hub* hub)
    : loop_(loop),
      options_(options),
      hub_(hub != nullptr ? *hub : obs::default_hub()),
      rng_(options.seed != 0 ? options.seed
                             : 0x70A7A000u ^ options.id.value()),
      transport_(options.transport, hub_.metrics),
      discovery_(
          options.id, *this, options.discovery,
          [this](wire::Bytes hello) { transport_.send(hello); },
          hub_.metrics),
      data_tx_(hub_.metrics.counter("net.data.tx")),
      data_rx_(hub_.metrics.counter("net.data.rx")),
      data_echo_(hub_.metrics.counter("net.data.echo")),
      frame_bad_(hub_.metrics.counter("net.frame.bad")) {
  if (!options_.id.valid()) {
    throw std::invalid_argument("LivePlatform requires a nonzero node id");
  }
  discovery_.on_neighbor_up([this](NodeId n) {
    if (middleware_ != nullptr) middleware_->on_neighbor_up(n);
  });
  discovery_.on_neighbor_down([this](NodeId n) {
    if (middleware_ != nullptr) middleware_->on_neighbor_down(n);
  });
}

LivePlatform::~LivePlatform() { stop(); }

void LivePlatform::attach(Middleware& middleware) {
  middleware_ = &middleware;
}

bool LivePlatform::start() {
  if (started_) return true;
  if (!transport_.open()) return false;
  if (options_.fault.enabled()) {
    fault_ = std::make_unique<FaultInjector>(options_.fault, *this,
                                             hub_.metrics);
  }
  loop_.add_fd(transport_.fd(), [this] {
    transport_.drain([this](std::span<const std::uint8_t> bytes) {
      if (fault_ != nullptr) {
        // Adversity between the socket and the decoder.  Endpoints: the
        // sender is unknown before decoding, the receiver is this node —
        // a partition whose group contains us severs our whole rx path.
        fault_->process(
            bytes,
            [this](const wire::Bytes& damaged) { handle_datagram(damaged); },
            NodeId{}, options_.id);
      } else {
        handle_datagram(bytes);
      }
    });
  });
  discovery_.start();
  started_ = true;
  return true;
}

void LivePlatform::stop() {
  if (!started_) return;
  started_ = false;
  discovery_.stop();
  loop_.remove_fd(transport_.fd());
  transport_.close();
  fault_.reset();  // held datagrams die with the node — in-flight loss
}

void LivePlatform::broadcast(wire::Bytes payload) {
  transport_.send(Datagram::data(options_.id, payload));
  data_tx_.inc();
}

void LivePlatform::handle_datagram(std::span<const std::uint8_t> bytes) {
  Datagram d;
  try {
    d = Datagram::decode(bytes);
  } catch (const wire::DecodeError&) {
    frame_bad_.inc();  // foreign or corrupt traffic on our port
    return;
  }

  switch (d.kind) {
    case DatagramKind::kHello:
      discovery_.on_hello(d.sender, d.seq, d.period);
      return;
    case DatagramKind::kData:
      if (d.sender == options_.id) {
        data_echo_.inc();  // our own broadcast, looped back by the medium
        return;
      }
      data_rx_.inc();
      if (middleware_ != nullptr) {
        middleware_->on_datagram(d.sender, d.payload);
      }
      return;
  }
}

}  // namespace tota::net
