#include "net/live_platform.h"

#include <stdexcept>
#include <utility>

#include "tota/middleware.h"

namespace tota::net {

namespace {

SessionOptions session_options(const LiveOptions& options) {
  SessionOptions s;
  s.discovery = options.discovery;
  s.batch = options.batch;
  s.reliable = options.reliable;
  s.rel = options.rel;
  s.digest_period = options.digest_period;
  s.digest_buckets = options.digest_buckets;
  return s;
}

}  // namespace

LivePlatform::LivePlatform(EventLoop& loop, LiveOptions options,
                           obs::Hub* hub)
    : loop_(loop),
      options_(options),
      hub_(hub != nullptr ? *hub : obs::default_hub()),
      rng_(options.seed != 0 ? options.seed
                             : 0x70A7A000u ^ options.id.value()),
      transport_(options.transport, hub_.metrics),
      session_(
          options.id, *this, session_options(options),
          [this](wire::Bytes datagram) { transport_.send(datagram); },
          hub_.metrics) {
  if (!options_.id.valid()) {
    throw std::invalid_argument("LivePlatform requires a nonzero node id");
  }
}

LivePlatform::~LivePlatform() { stop(); }

void LivePlatform::attach(Middleware& middleware) {
  session_.attach(&middleware);
}

bool LivePlatform::start() {
  if (started_) return true;
  if (!transport_.open()) return false;
  if (options_.fault.enabled()) {
    fault_ = std::make_unique<FaultInjector>(options_.fault, *this,
                                             hub_.metrics);
  }
  loop_.add_fd(transport_.fd(), [this] {
    transport_.drain([this](std::span<const std::uint8_t> bytes) {
      if (fault_ != nullptr) {
        // Adversity between the socket and the decoder.  Endpoints: the
        // sender is unknown before decoding, the receiver is this node —
        // a partition whose group contains us severs our whole rx path.
        fault_->process(
            bytes,
            [this](const wire::Bytes& damaged) { session_.on_raw(damaged); },
            NodeId{}, options_.id);
      } else {
        session_.on_raw(bytes);
      }
    });
  });
  session_.start();
  started_ = true;
  return true;
}

void LivePlatform::stop() {
  if (!started_) return;
  started_ = false;
  session_.stop();
  loop_.remove_fd(transport_.fd());
  transport_.close();
  fault_.reset();  // held datagrams die with the node — in-flight loss
}

void LivePlatform::broadcast(wire::Bytes payload) {
  session_.broadcast(std::move(payload));
}

void LivePlatform::broadcast_reliable(wire::Bytes payload) {
  session_.broadcast_reliable(std::move(payload));
}

}  // namespace tota::net
