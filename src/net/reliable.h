// ReliableChannel — a thin reliable-ordered stream for control frames
// over the broadcast medium.
//
// Tuple floods are self-healing (duplicates dedup, better values win),
// but RETRACT/PROBE control frames are not: one lost RETRACT leaves a
// stale replica "justified" by a neighbour that no longer exists, and
// nothing ever corrects it — the leak the soak's drop-0.3 runs exhibit.
// This channel gives those frames at-least-once, in-order delivery to
// the neighbours present at send time, without pulling in a full
// transport: think "the 5% of TCP that a 30-byte RETRACT needs".
//
// Sender side: every frame gets a monotonically increasing seq (one
// stream per node, broadcast to all; receivers track it per sender).
// In-flight frames are retransmitted on a capped exponential backoff
// with seeded jitter until every targeted neighbour has cumulatively
// acked the seq, the neighbour goes away, or max_attempts is exhausted
// (net.rel.expired — reliability is bounded, not infinite).  A bounded
// in-flight window applies backpressure: frames beyond it queue and
// enter the window as acks free slots.
//
// Every REL chunk carries the sender's *floor* — the lowest seq it
// still guarantees to retransmit.  The floor is what makes the stream
// self-synchronizing on a lossy broadcast medium:
//   * a receiver with no state for the sender starts its expectation at
//     the floor, not at the first seq it happens to catch (which may be
//     a retransmission racing ahead of older in-flight frames);
//   * when the sender gives up on a frame (expiry) or retires it
//     because its targets left, the floor advances past the gap and
//     receivers stop waiting for a frame that will never come
//     (net.rel.skipped), delivering what they had buffered beyond it.
//
// Receiver side: frames at the expected seq are delivered immediately
// (plus any buffered successors); ahead-of-expected frames are buffered
// up to rx_buffer (net.rel.ooo); behind-expected frames are duplicates
// from retransmission (net.rel.dup) — dropped, but re-acked so the
// sender retires them.  Acks are cumulative (expected - 1) and ride the
// outgoing batches via the AckFn (net/session.h piggybacks them on the
// next flush and on every beacon).
//
// The channel is transport-free: it emits REL/ACK chunks through
// callbacks and is fed decoded chunks by its owner, taking clock,
// timers, and jitter randomness from the Platform — so the whole state
// machine runs identically under the simulator's clock, the test
// double's, or the live event loop's.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "obs/metrics.h"
#include "tota/platform.h"
#include "wire/buffer.h"

namespace tota::net {

struct ReliableOptions {
  /// Most unacked frames in flight; further sends queue behind them.
  std::size_t window = 32;
  /// First retransmit after rtx_initial * (1 ± rtx_jitter); each retry
  /// doubles (rtx_backoff) up to rtx_cap.
  SimTime rtx_initial = SimTime::from_millis(200);
  double rtx_backoff = 2.0;
  SimTime rtx_cap = SimTime::from_seconds(2);
  double rtx_jitter = 0.25;
  /// Transmissions per frame (first + retries) before giving up and
  /// advancing the floor past it (net.rel.expired).
  int max_attempts = 12;
  /// Ahead-of-expected frames buffered per sender; beyond it, early
  /// frames are dropped and covered by the sender's retransmit.
  std::size_t rx_buffer = 64;
};

class ReliableChannel {
 public:
  /// Transmits one REL chunk (seq, current floor, frame bytes).
  using EmitFn = std::function<void(
      std::uint64_t seq, std::uint64_t floor,
      std::span<const std::uint8_t> frame)>;
  /// Transmits a cumulative ack for `peer`'s stream.
  using AckFn = std::function<void(NodeId peer, std::uint64_t cum)>;
  /// Delivers one in-order frame from `from` to the layer above.
  using DeliverFn =
      std::function<void(NodeId from, std::span<const std::uint8_t> frame)>;

  ReliableChannel(tota::Platform& platform, ReliableOptions options,
                  obs::MetricsRegistry& metrics);
  ~ReliableChannel();

  ReliableChannel(const ReliableChannel&) = delete;
  ReliableChannel& operator=(const ReliableChannel&) = delete;

  /// All three must be set before the first send/on_rel.
  void set_emit(EmitFn fn) { emit_ = std::move(fn); }
  void set_ack(AckFn fn) { ack_ = std::move(fn); }
  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

  /// Re-arms the retransmit timer for anything still in flight after a
  /// stop() (no-op on a fresh or idle channel).
  void start();
  /// Cancels the retransmit timer so a stopped node goes silent.  The
  /// window/queue state stays: start() resumes the retransmits.
  void stop();

  // --- sender ----------------------------------------------------------

  /// Queues `frame` for reliable broadcast to `targets` (the neighbour
  /// set at send time; later joiners are covered by anti-entropy, not
  /// retroactive acks).  An empty target set emits once, best-effort.
  void send(wire::Bytes frame, std::vector<NodeId> targets);

  /// Cumulative ack from `from`: it has delivered our stream through
  /// `cum`.
  void on_ack(NodeId from, std::uint64_t cum);

  // --- receiver --------------------------------------------------------

  /// One decoded REL chunk from `from`.
  void on_rel(NodeId from, std::uint64_t seq, std::uint64_t floor,
              std::span<const std::uint8_t> frame);

  /// The neighbour left (discovery down, incl. the down half of a
  /// restart): stop waiting for its acks, forget its rx stream — a
  /// returning peer re-synchronizes from the floor.
  void on_peer_down(NodeId peer);

  /// Re-emits the current cumulative ack for every known sender (the
  /// session calls this on each beacon so acks keep flowing — and keep
  /// retiring retransmissions — through idle periods).
  void reack_all();

  // --- introspection ---------------------------------------------------

  /// Lowest seq still guaranteed to be retransmitted (== next_seq when
  /// nothing is in flight or queued).
  [[nodiscard]] std::uint64_t floor() const;
  [[nodiscard]] std::size_t in_flight() const { return window_.size(); }
  [[nodiscard]] std::size_t queued() const { return queue_.size(); }
  /// Next expected seq from `from` (0 = no stream state).
  [[nodiscard]] std::uint64_t expected(NodeId from) const;

 private:
  struct InFlight {
    std::uint64_t seq = 0;
    wire::Bytes frame;
    std::vector<NodeId> waiting;  // targets that have not acked yet
    int attempts = 0;             // transmissions so far
    SimTime next_due;
  };
  struct RxStream {
    std::uint64_t expected = 0;  // 0 = uninitialized, set from floor
    std::map<std::uint64_t, wire::Bytes> buffered;
  };

  void transmit(InFlight& f);      // emit + schedule next attempt
  void drain_queue();              // move queued frames into the window
  void rearm_timer();
  void on_timer();
  [[nodiscard]] SimTime jittered(SimTime base);
  void deliver_ready(NodeId from, RxStream& rx);

  tota::Platform& platform_;
  ReliableOptions options_;
  EmitFn emit_;
  AckFn ack_;
  DeliverFn deliver_;

  std::uint64_t next_seq_ = 1;
  std::deque<InFlight> window_;  // ascending seq
  std::deque<std::pair<wire::Bytes, std::vector<NodeId>>> queue_;
  tota::Platform::TimerId rtx_timer_ = tota::Platform::kInvalidTimer;

  std::unordered_map<NodeId, RxStream> rx_;

  obs::Counter& rel_tx_;
  obs::Counter& rel_rtx_;
  obs::Counter& rel_acked_;
  obs::Counter& rel_expired_;
  obs::Counter& rel_rx_;
  obs::Counter& rel_dup_;
  obs::Counter& rel_ooo_;
  obs::Counter& rel_skipped_;
  obs::Counter& rel_rx_overflow_;
  obs::Counter& rel_ack_rx_;
};

}  // namespace tota::net
