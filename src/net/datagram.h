// The UDP datagram envelope — what one live TOTA process puts into a
// socket (grammar: docs/NET.md).
//
// The simulator hands engines pre-attributed frames (`on_datagram(from,
// …)` — the radio knows who transmitted); a real UDP socket does not, so
// every live datagram carries its own sender identity.  Three kinds:
//
//   0x01 HELLO <seq, period_ms>  — discovery beacon (net/discovery.h)
//   0x02 DATA  <engine frame>    — a wire::Frame envelope, verbatim
//   0x03 BATCH <chunk list>      — the v2 coalesced envelope: several
//                                  frames/beacons/control chunks packed
//                                  into one datagram (net/batch.h)
//
// The DATA body is exactly what Platform::broadcast was given, so the
// engine/wire layers never learn whether they run on the simulator or on
// sockets.  Decoding is total: malformed or foreign datagrams (wrong
// magic, unknown version/kind, truncation, trailing garbage) throw
// wire::DecodeError and are counted + dropped by the receiver, never UB
// — a UDP port is open to arbitrary garbage.
//
// BATCH grammar (after the shared magic/version/kind/sender header):
//
//   count   uvarint        number of chunks, >= 1
//   count × chunk:
//     ckind u8             ChunkKind below
//     clen  uvarint        body length in bytes
//     body  clen bytes     chunk-kind specific
//
// Chunks are length-prefixed so a decoder can *skip* a chunk kind it
// does not know (forward compatibility within version 1 of the BATCH
// envelope; skipped chunks are surfaced via Datagram::skipped).  A
// pre-BATCH decoder sees kind byte 0x03, throws "unknown datagram
// kind", and drops the whole datagram as net.frame.bad — old receivers
// skip v2 traffic cleanly instead of misparsing it.
//
// Chunk bodies:
//   HELLO  <seq uvarint, period_ms uvarint>      as the HELLO datagram
//   DATA   <engine frame, verbatim>              as the DATA datagram
//   REL    <seq uvarint, seq-floor uvarint,      reliable-ordered frame
//           engine frame, verbatim>              (net/reliable.h); floor
//                                                is the lowest seq the
//                                                sender still guarantees
//                                                to retransmit
//   ACK    <peer uvarint, cum uvarint>           "this datagram's sender
//                                                has delivered peer's
//                                                reliable stream through
//                                                seq cum"
//   DIGEST <store digest, opaque>                anti-entropy tuple-set
//                                                summary (tota/digest.h
//                                                — the envelope layer
//                                                does not parse it)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "wire/buffer.h"

namespace tota::net {

/// First byte of every TOTA datagram; anything else is foreign traffic.
inline constexpr std::uint8_t kMagic = 0xA7;
/// Bumped on any incompatible envelope change.
inline constexpr std::uint8_t kVersion = 1;

enum class DatagramKind : std::uint8_t { kHello = 1, kData = 2, kBatch = 3 };

enum class ChunkKind : std::uint8_t {
  kHello = 1,
  kData = 2,
  kRel = 3,
  kAck = 4,
  kDigest = 5,
};

/// One decoded chunk of a BATCH datagram.  Span fields view into the
/// buffer decode() was called on and are valid only while it lives.
struct Chunk {
  ChunkKind kind = ChunkKind::kData;
  /// kHello: beacon seq.  kRel: reliable-channel seq.
  std::uint64_t seq = 0;
  /// kHello: advertised beacon period.
  SimTime period;
  /// kRel: lowest seq the sender still retransmits (<= seq).
  std::uint64_t floor = 0;
  /// kAck: whose stream is being acknowledged / cumulative seq.
  NodeId peer;
  std::uint64_t cum = 0;
  /// kData / kRel: the engine frame.  kDigest: the encoded digest.
  std::span<const std::uint8_t> payload;
};

/// An already-encoded chunk, ready for packing (net/batch.h builds
/// these; Datagram::batch frames them).
struct EncodedChunk {
  ChunkKind kind = ChunkKind::kData;
  wire::Bytes body;

  /// On-the-wire size of this chunk: kind byte + length prefix + body.
  [[nodiscard]] std::size_t wire_size() const {
    return 1 + wire::uvarint_size(body.size()) + body.size();
  }
};

/// Most chunks one BATCH datagram may carry.  Capped below 128 so the
/// count varint is always one byte (batch_overhead stays a constant)
/// and a hostile count cannot make a decoder pre-commit unbounded work.
inline constexpr std::size_t kMaxBatchChunks = 127;

/// A decoded datagram envelope.  For kData, `payload` views into the
/// buffer decode() was called on and is valid only while it lives.
struct Datagram {
  DatagramKind kind = DatagramKind::kHello;
  /// Who sent this datagram (the live stand-in for the radio's
  /// transmitter attribution).
  NodeId sender;
  /// kHello: sender's beacon sequence number (monotonic per process
  /// lifetime; a reset signals a restarted node).
  std::uint64_t seq = 0;
  /// kHello: sender's advertised beacon period — receivers size their
  /// expiry deadline from it, so mixed-config networks interoperate.
  SimTime period;
  /// kData: the engine frame (wire::Frame envelope), undecoded.
  std::span<const std::uint8_t> payload;
  /// kBatch: the decoded chunks, in wire order (unknown kinds omitted).
  std::vector<Chunk> chunks;
  /// kBatch: chunks whose kind this decoder did not know and skipped
  /// over (forward compatibility; receivers count these).
  std::size_t skipped = 0;

  /// Parses an envelope; throws wire::DecodeError on anything that is
  /// not a well-formed TOTA datagram.
  static Datagram decode(std::span<const std::uint8_t> bytes);

  static wire::Bytes hello(NodeId sender, std::uint64_t seq, SimTime period);
  static wire::Bytes data(NodeId sender,
                          std::span<const std::uint8_t> frame);

  /// Frames `chunks` (1..kMaxBatchChunks of them) into one BATCH
  /// datagram.
  static wire::Bytes batch(NodeId sender,
                           std::span<const EncodedChunk> chunks);

  /// Fixed per-BATCH-datagram overhead for `sender`: header plus the
  /// (single-byte — see kMaxBatchChunks) chunk count.
  [[nodiscard]] static std::size_t batch_overhead(NodeId sender) {
    return 3 + wire::uvarint_size(sender.value()) + 1;
  }

  // --- chunk body builders (the inverse of the Chunk fields) -----------
  static EncodedChunk chunk_hello(std::uint64_t seq, SimTime period);
  static EncodedChunk chunk_data(std::span<const std::uint8_t> frame);
  static EncodedChunk chunk_rel(std::uint64_t seq, std::uint64_t floor,
                                std::span<const std::uint8_t> frame);
  static EncodedChunk chunk_ack(NodeId peer, std::uint64_t cum);
  static EncodedChunk chunk_digest(wire::Bytes digest_body);
};

}  // namespace tota::net
