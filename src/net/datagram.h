// The UDP datagram envelope — what one live TOTA process puts into a
// socket (grammar: docs/NET.md).
//
// The simulator hands engines pre-attributed frames (`on_datagram(from,
// …)` — the radio knows who transmitted); a real UDP socket does not, so
// every live datagram carries its own sender identity.  Two kinds:
//
//   0x01 HELLO <seq, period_ms>  — discovery beacon (net/discovery.h)
//   0x02 DATA  <engine frame>    — a wire::Frame envelope, verbatim
//
// The DATA body is exactly what Platform::broadcast was given, so the
// engine/wire layers never learn whether they run on the simulator or on
// sockets.  Decoding is total: malformed or foreign datagrams (wrong
// magic, unknown version/kind, truncation) throw wire::DecodeError and
// are counted + dropped by the receiver, never UB — a UDP port is open
// to arbitrary garbage.
#pragma once

#include <cstdint>
#include <span>

#include "common/clock.h"
#include "common/ids.h"
#include "wire/buffer.h"

namespace tota::net {

/// First byte of every TOTA datagram; anything else is foreign traffic.
inline constexpr std::uint8_t kMagic = 0xA7;
/// Bumped on any incompatible envelope change.
inline constexpr std::uint8_t kVersion = 1;

enum class DatagramKind : std::uint8_t { kHello = 1, kData = 2 };

/// A decoded datagram envelope.  For kData, `payload` views into the
/// buffer decode() was called on and is valid only while it lives.
struct Datagram {
  DatagramKind kind = DatagramKind::kHello;
  /// Who sent this datagram (the live stand-in for the radio's
  /// transmitter attribution).
  NodeId sender;
  /// kHello: sender's beacon sequence number (monotonic per process
  /// lifetime; a reset signals a restarted node).
  std::uint64_t seq = 0;
  /// kHello: sender's advertised beacon period — receivers size their
  /// expiry deadline from it, so mixed-config networks interoperate.
  SimTime period;
  /// kData: the engine frame (wire::Frame envelope), undecoded.
  std::span<const std::uint8_t> payload;

  /// Parses an envelope; throws wire::DecodeError on anything that is
  /// not a well-formed TOTA datagram.
  static Datagram decode(std::span<const std::uint8_t> bytes);

  static wire::Bytes hello(NodeId sender, std::uint64_t seq, SimTime period);
  static wire::Bytes data(NodeId sender,
                          std::span<const std::uint8_t> frame);
};

}  // namespace tota::net
