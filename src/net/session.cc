#include "net/session.h"

#include <utility>

#include "net/datagram.h"
#include "tota/digest.h"
#include "tota/middleware.h"

namespace tota::net {

NetSession::NetSession(NodeId self, tota::Platform& platform,
                       SessionOptions options, SendFn send,
                       obs::MetricsRegistry& metrics)
    : self_(self),
      platform_(platform),
      options_(options),
      batcher_(self, platform, options.batch, std::move(send), metrics),
      rel_(std::make_unique<ReliableChannel>(platform, options.rel, metrics)),
      discovery_(
          self, platform, options.discovery,
          [this](std::uint64_t seq, SimTime period) { on_beacon(seq, period); },
          metrics),
      data_tx_(metrics.counter("net.data.tx")),
      data_rx_(metrics.counter("net.data.rx")),
      data_echo_(metrics.counter("net.data.echo")),
      frame_bad_(metrics.counter("net.frame.bad")),
      frame_skip_(metrics.counter("net.frame.skip")),
      sync_digest_tx_(metrics.counter("net.sync.digest_tx")),
      sync_digest_rx_(metrics.counter("net.sync.digest_rx")) {
  rel_->set_emit([this](std::uint64_t seq, std::uint64_t floor,
                        std::span<const std::uint8_t> frame) {
    batcher_.rel(seq, floor, frame);
  });
  rel_->set_ack([this](NodeId peer, std::uint64_t cum) {
    batcher_.ack(peer, cum);
  });
  rel_->set_deliver([this](NodeId from, std::span<const std::uint8_t> frame) {
    if (middleware_ != nullptr) middleware_->on_datagram(from, frame);
  });
  discovery_.on_neighbor_up([this](NodeId n) {
    if (middleware_ != nullptr) middleware_->on_neighbor_up(n);
  });
  discovery_.on_neighbor_down([this](NodeId n) {
    // Order matters: retire the channel's state for the peer first so
    // the middleware's own down-handling (retractions!) does not wait
    // on acks from a node that is gone.
    rel_->on_peer_down(n);
    if (middleware_ != nullptr) middleware_->on_neighbor_down(n);
  });
}

NetSession::~NetSession() { stop(); }

void NetSession::start() {
  next_digest_ = platform_.now() + options_.digest_period;
  rel_->start();  // resume retransmits for anything left from a stop()
  discovery_.start();
}

void NetSession::stop() {
  // Full quiesce: a stopped node must not transmit.  Discovery goes
  // silent, the reliable channel's retransmit timer is cancelled (its
  // window survives for a restart), and whatever the batcher had
  // pending is dropped, flush timer included.
  discovery_.stop();
  rel_->stop();
  batcher_.clear();
}

void NetSession::broadcast(wire::Bytes payload) {
  data_tx_.inc();
  batcher_.data(payload);
}

void NetSession::broadcast_reliable(wire::Bytes payload) {
  if (!options_.reliable) {
    broadcast(std::move(payload));
    return;
  }
  data_tx_.inc();
  rel_->send(std::move(payload), discovery_.neighbors());
}

void NetSession::on_beacon(std::uint64_t seq, SimTime period) {
  batcher_.hello(seq, period);
  // Housekeeping rides the same flush as the beacon: standing cumulative
  // acks keep retiring retransmissions through idle periods, and the
  // digest goes out on its own slower cadence.
  rel_->reack_all();
  maybe_digest();
}

void NetSession::maybe_digest() {
  if (options_.digest_period <= SimTime::zero()) return;
  if (middleware_ == nullptr) return;
  const SimTime now = platform_.now();
  if (now < next_digest_) return;
  next_digest_ = now + options_.digest_period;
  batcher_.digest(middleware_->digest(options_.digest_buckets).encode());
  sync_digest_tx_.inc();
}

void NetSession::route_chunk(NodeId sender, const Chunk& chunk) {
  switch (chunk.kind) {
    case ChunkKind::kHello:
      discovery_.on_hello(sender, chunk.seq, chunk.period);
      return;
    case ChunkKind::kData:
      data_rx_.inc();
      if (middleware_ != nullptr) {
        middleware_->on_datagram(sender, chunk.payload);
      }
      return;
    case ChunkKind::kRel:
      rel_->on_rel(sender, chunk.seq, chunk.floor, chunk.payload);
      return;
    case ChunkKind::kAck:
      // Acks are per-stream: only the one addressed to our stream is
      // ours; the rest are other nodes acking other senders.
      if (chunk.peer == self_) rel_->on_ack(sender, chunk.cum);
      return;
    case ChunkKind::kDigest: {
      StoreDigest digest;
      try {
        digest = StoreDigest::decode(chunk.payload);
      } catch (const wire::DecodeError&) {
        frame_bad_.inc();
        return;
      }
      sync_digest_rx_.inc();
      if (middleware_ != nullptr) middleware_->on_digest(sender, digest);
      return;
    }
  }
}

void NetSession::on_raw(std::span<const std::uint8_t> bytes) {
  Datagram d;
  try {
    d = Datagram::decode(bytes);
  } catch (const wire::DecodeError&) {
    frame_bad_.inc();  // foreign or corrupt traffic on our channel
    return;
  }

  switch (d.kind) {
    case DatagramKind::kHello:
      discovery_.on_hello(d.sender, d.seq, d.period);
      return;
    case DatagramKind::kData:
      if (d.sender == self_) {
        data_echo_.inc();  // our own broadcast, looped back by the medium
        return;
      }
      data_rx_.inc();
      if (middleware_ != nullptr) {
        middleware_->on_datagram(d.sender, d.payload);
      }
      return;
    case DatagramKind::kBatch:
      if (d.sender == self_) {
        data_echo_.inc();  // one echo per datagram, not per chunk
        return;
      }
      if (d.skipped > 0) {
        frame_skip_.inc(static_cast<std::int64_t>(d.skipped));
      }
      for (const Chunk& chunk : d.chunks) route_chunk(d.sender, chunk);
      return;
  }
}

}  // namespace tota::net
