// DeviceProfile — per-node hardware heterogeneity knobs (BeeTS-style
// deployments: duty-cycled sensor motes, low-MTU links, a few mains-
// powered gateways).
//
// The default profile is a full-power device: always awake, unlimited
// MTU, nominal radio timing.  Simulators treat the default as "no
// profile" and take the exact same code path (and Rng stream) as before
// profiles existed, so worlds that never call set_profile() stay
// bit-for-bit identical to the committed bench baselines.
//
// Semantics (applied by sim::Network / sim::ShardedSim per delivery):
//
//  * duty_cycle / duty_period — the receiver sleeps its radio: a frame
//    landing while the node is asleep is dropped (`net.duty_drop`).
//    Awake/asleep is a pure function of the delivery timestamp (the
//    first `duty_cycle` fraction of every `duty_period` window), so the
//    check consumes no randomness and stays deterministic per seed.
//  * mtu — the largest frame this device's link layer passes, in bytes;
//    0 = unlimited.  A link's MTU is the *minimum* of its endpoints'
//    (either side's radio truncates), and an oversized frame is dropped
//    at that link with `net.mtu_drop` accounting.
//  * tx_delay_scale — multiplies the radio model's per-frame latency for
//    frames this node sends (slow radios clock bits out more slowly).
//    Sharded runs require >= 1.0: the conservative lookahead is the
//    radio's base delay, and a faster-than-nominal sender would undercut
//    it (sim/shard.h).
//  * gateway — a mains-powered infrastructure node: never sleeps and
//    imposes no MTU cap regardless of the other fields.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/clock.h"

namespace tota::net {

struct DeviceProfile {
  /// Fraction of each duty_period the receiver is awake; 1.0 = always.
  double duty_cycle = 1.0;
  SimTime duty_period = SimTime::from_millis(100);
  /// Largest frame (bytes) this device sends or receives; 0 = unlimited.
  std::size_t mtu = 0;
  /// Latency multiplier for frames this node transmits (>= 1.0 under
  /// sharded simulation).
  double tx_delay_scale = 1.0;
  /// Full-power infrastructure node: always awake, no MTU cap.
  bool gateway = false;

  [[nodiscard]] bool always_awake() const {
    return gateway || duty_cycle >= 1.0;
  }

  /// Is the radio listening at instant `t`?  Deterministic — awake is
  /// the first duty_cycle fraction of every duty_period window.
  [[nodiscard]] bool awake_at(SimTime t) const {
    if (always_awake()) return true;
    if (duty_cycle <= 0.0) return false;
    const std::int64_t period =
        duty_period.micros() > 0 ? duty_period.micros() : 1;
    const std::int64_t phase = ((t.micros() % period) + period) % period;
    return phase < static_cast<std::int64_t>(duty_cycle *
                                             static_cast<double>(period));
  }

  /// MTU this device imposes on its links; 0 = unlimited.
  [[nodiscard]] std::size_t effective_mtu() const {
    return gateway ? 0 : mtu;
  }

  /// A link truncates at the weaker endpoint: the smallest non-zero
  /// endpoint MTU (0 = neither side caps).
  [[nodiscard]] static std::size_t link_mtu(const DeviceProfile& a,
                                            const DeviceProfile& b) {
    const std::size_t ma = a.effective_mtu();
    const std::size_t mb = b.effective_mtu();
    if (ma == 0) return mb;
    if (mb == 0) return ma;
    return ma < mb ? ma : mb;
  }

  /// True when this profile changes nothing versus a bare radio — the
  /// simulators skip all profile checks (and extra branches) for it.
  [[nodiscard]] bool is_default() const {
    return always_awake() && effective_mtu() == 0 && tx_delay_scale == 1.0;
  }
};

}  // namespace tota::net
