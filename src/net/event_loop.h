// EventLoop — the real-time runtime of one or many live TOTA nodes.
//
// The simulator's EventQueue advances a virtual clock; this loop runs the
// same shape of computation against the machine's monotonic clock and a
// kernel readiness wait, so one thread serves sockets and timers with no
// busy-wait: each iteration sleeps in epoll_wait(2)/poll(2) until either
// a registered fd turns readable or the earliest timer is due.
// Single-threaded by design, like everything above it — callbacks run on
// the loop thread and need no locks.
//
// The loop is multi-tenant: it carries no per-node state, so N
// LivePlatforms (each its own socket + Middleware + engine + metric hub)
// share one loop and one thread — the mass-live runtime
// (net::MassLiveWorld, docs/NET.md "EventLoop backends & multi-tenant
// hosting") hosts hundreds of engines this way.  That is also why the
// readiness backend matters: poll(2) is O(registered fds) per wakeup and
// re-copies the whole fd set into the kernel every time, while epoll
// registers each fd once and pays only O(ready fds) per wakeup.
//
//   Backend      registration              per-wakeup cost
//   kPoll        persistent pollfd cache,  O(all fds) scan + kernel copy
//                rebuilt only on change
//   kEpoll       epoll_ctl once per        O(ready fds)
//                add_fd/remove_fd
//
// kAuto picks epoll where the platform has it (Linux) and poll
// elsewhere; both backends are always compiled on Linux so tests and
// benches can A/B them in one binary.
//
// Time is reported as tota::SimTime (microseconds since loop
// construction), so the engine/middleware layers see the same clock type
// on both platforms and never learn which one they run on.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "obs/metrics.h"

#if defined(__linux__)
#define TOTA_HAVE_EPOLL 1
#else
#define TOTA_HAVE_EPOLL 0
#endif

struct pollfd;  // <poll.h>; kept out of this header

namespace tota::net {

/// Readiness backend selection.  kAuto resolves to kEpoll where
/// available (Linux), kPoll elsewhere; asking for kEpoll on a platform
/// without it throws at construction.
enum class LoopBackend { kAuto, kPoll, kEpoll };

/// Loop metric names (registered when a registry is supplied):
///   loop.wakeups            readiness waits that returned
///   loop.fd_events          fd readiness callbacks dispatched
///   loop.timers_fired       timer actions run
///   loop.timer_compactions  tombstone compactions of the timer heap
///   loop.fds (gauge)        currently registered fds
///   loop.backend (gauge)    0 = poll, 1 = epoll
class EventLoop {
 public:
  using TimerId = std::uint64_t;
  using Action = std::function<void()>;

  /// `metrics` (optional, must outlive the loop) receives the loop.*
  /// instruments above; nullptr skips all loop accounting.
  explicit EventLoop(LoopBackend backend = LoopBackend::kAuto,
                     obs::MetricsRegistry* metrics = nullptr);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// The backend actually in use (kAuto resolved).
  [[nodiscard]] LoopBackend backend() const { return backend_; }

  // --- time & timers ------------------------------------------------------

  /// Monotonic time since loop construction (CLOCK_MONOTONIC, so wall
  /// clock steps cannot disorder timers).
  [[nodiscard]] SimTime now() const;

  /// Runs `action` once, `delay` from now, on the loop thread.  Never
  /// synchronous; ids start at 1 (0 is free for "no timer").
  TimerId schedule(SimTime delay, Action action);

  /// Cancels a pending timer; no-op if it already fired or was cancelled.
  /// Cancellation is lazy (the heap entry becomes a tombstone, skipped
  /// when popped), but tombstones are compacted away whenever they
  /// outnumber live timers — a periodic cancel+reschedule pattern
  /// (discovery expiry re-arms, reliable-channel backoff) keeps the heap
  /// O(live timers) over any process lifetime.
  void cancel(TimerId id);

  // --- fd readiness -------------------------------------------------------

  /// Invokes `on_readable` (from run()) whenever `fd` has data to read.
  /// The fd should be non-blocking; the callback should drain it (honouring
  /// its own fairness budget — see UdpOptions::drain_budget).
  /// Registrations carry a generation stamp: when a callback of the
  /// current dispatch round does remove_fd(a) and a fresh socket reuses
  /// fd number `a` and is re-added, the *old* socket's pending readiness
  /// does not leak into the new registration — its readiness is observed
  /// by the next wait.  Re-adding a currently registered fd replaces its
  /// callback (and its generation).
  void add_fd(int fd, Action on_readable);
  /// Deregisters `fd`.  Call before closing the descriptor: the epoll
  /// backend needs the fd alive to drop its kernel registration.
  void remove_fd(int fd);

  // --- driving ------------------------------------------------------------

  /// Runs timers and fd callbacks until stop() is called.
  void run();

  /// Runs for `duration`, then returns (used by daemons with a fixed
  /// lifetime and by tests).
  void run_for(SimTime duration);

  /// Makes run()/run_for() return after the current iteration.  Safe to
  /// call from a callback — and *sticky*: a stop requested while the
  /// loop is not running (e.g. a start-up failure path) makes the next
  /// run()/run_for() entry return immediately instead of being silently
  /// lost.  Each run entry consumes at most one pending stop.
  void stop() { stop_requested_ = true; }

  [[nodiscard]] std::size_t pending_timers() const { return live_timers_; }
  /// Heap entries including cancelled tombstones (bounded by compaction
  /// at < 2 * pending_timers() + a small slack); exposed for the soak
  /// tests that pin that bound.
  [[nodiscard]] std::size_t timer_entries() const { return timers_.size(); }
  [[nodiscard]] std::size_t registered_fds() const { return fds_.size(); }

 private:
  struct TimerEntry {
    SimTime when;
    std::uint64_t seq;  // FIFO among same-instant timers
    TimerId id;
  };
  struct Later {
    bool operator()(const TimerEntry& a, const TimerEntry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// One wait+dispatch iteration, waiting at most until `deadline`
  /// (negative micros = wait indefinitely for fds/timers).
  void step(SimTime deadline);

  /// True exactly once per pending stop request.
  bool consume_stop() {
    const bool s = stop_requested_;
    stop_requested_ = false;
    return s;
  }

  /// Fires every timer due at or before now(); returns the delay until
  /// the next pending timer, or a negative SimTime when none is pending.
  SimTime fire_due_timers();

  /// Drops every tombstoned entry and re-heapifies; called when
  /// tombstones outnumber live timers.
  void compact_timers();

  /// Dispatches one ready fd if its registration still matches the
  /// generation observed at wait time.
  void dispatch_fd(int fd, std::uint64_t generation_low32);

  void wait_poll(int timeout_ms);
#if TOTA_HAVE_EPOLL
  void wait_epoll(int timeout_ms);
#endif

  std::int64_t epoch_ns_ = 0;  // CLOCK_MONOTONIC at construction
  LoopBackend backend_ = LoopBackend::kPoll;
  bool stop_requested_ = false;

  // Timer heap, managed with std::push_heap/pop_heap so compaction can
  // rebuild it in place (std::priority_queue hides its container).
  std::vector<TimerEntry> timers_;
  std::unordered_map<TimerId, Action> timer_actions_;
  std::size_t live_timers_ = 0;
  TimerId next_timer_ = 1;
  std::uint64_t next_seq_ = 0;

  struct FdEntry {
    Action on_readable;
    /// Registration generation: a kernel fd number is reused the moment
    /// it is closed, so the number alone cannot identify a registration
    /// across a remove_fd + add_fd within one dispatch round.
    std::uint64_t generation;
  };
  /// Ordered map: registration and (poll-backend) dispatch follow
  /// ascending fd order, deterministically.
  std::map<int, FdEntry> fds_;
  std::uint64_t next_fd_generation_ = 1;

  /// Poll backend: persistent registration cache, rebuilt only when the
  /// fd set changes instead of every iteration.
  std::vector<pollfd> pfds_;
  std::vector<std::uint64_t> pfd_generations_;
  bool pfds_dirty_ = true;

#if TOTA_HAVE_EPOLL
  int epoll_fd_ = -1;
#endif

  // Loop accounting; all nullptr when no registry was supplied.
  obs::Counter* wakeups_ = nullptr;
  obs::Counter* fd_events_ = nullptr;
  obs::Counter* timers_fired_ = nullptr;
  obs::Counter* compactions_ = nullptr;
  obs::Gauge* fds_gauge_ = nullptr;
};

}  // namespace tota::net
