// EventLoop — the real-time runtime of a live TOTA node.
//
// The simulator's EventQueue advances a virtual clock; this loop runs the
// same shape of computation against the machine's monotonic clock and a
// poll(2) readiness wait, so one thread serves sockets and timers with no
// busy-wait: each iteration sleeps in poll() until either a registered fd
// turns readable or the earliest timer is due.  Single-threaded by
// design, like everything above it — callbacks run on the loop thread and
// need no locks.
//
// Time is reported as tota::SimTime (microseconds since loop
// construction), so the engine/middleware layers see the same clock type
// on both platforms and never learn which one they run on.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/clock.h"

namespace tota::net {

class EventLoop {
 public:
  using TimerId = std::uint64_t;
  using Action = std::function<void()>;

  EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // --- time & timers ------------------------------------------------------

  /// Monotonic time since loop construction (CLOCK_MONOTONIC, so wall
  /// clock steps cannot disorder timers).
  [[nodiscard]] SimTime now() const;

  /// Runs `action` once, `delay` from now, on the loop thread.  Never
  /// synchronous; ids start at 1 (0 is free for "no timer").
  TimerId schedule(SimTime delay, Action action);

  /// Cancels a pending timer; no-op if it already fired or was cancelled.
  void cancel(TimerId id);

  // --- fd readiness -------------------------------------------------------

  /// Invokes `on_readable` (from run()) whenever `fd` has data to read.
  /// The fd should be non-blocking; the callback must drain it.
  /// Registrations carry a generation stamp: when a callback of the
  /// current poll round does remove_fd(a) and a fresh socket reuses fd
  /// number `a` and is re-added, the *old* socket's pending revents do
  /// not leak into the new registration — its readiness is observed by
  /// the next poll.
  void add_fd(int fd, Action on_readable);
  void remove_fd(int fd);

  // --- driving ------------------------------------------------------------

  /// Runs timers and fd callbacks until stop() is called.
  void run();

  /// Runs for `duration`, then returns (used by daemons with a fixed
  /// lifetime and by tests).
  void run_for(SimTime duration);

  /// Makes run()/run_for() return after the current iteration; safe to
  /// call from a callback.
  void stop() { stopped_ = true; }

  [[nodiscard]] std::size_t pending_timers() const { return live_timers_; }

 private:
  struct TimerEntry {
    SimTime when;
    std::uint64_t seq;  // FIFO among same-instant timers
    TimerId id;
  };
  struct Later {
    bool operator()(const TimerEntry& a, const TimerEntry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// One poll()+dispatch iteration, waiting at most until `deadline`
  /// (negative micros = wait indefinitely for fds/timers).
  void step(SimTime deadline);

  /// Fires every timer due at or before now(); returns the delay until
  /// the next pending timer, or a negative SimTime when none is pending.
  SimTime fire_due_timers();

  std::int64_t epoch_ns_ = 0;  // CLOCK_MONOTONIC at construction
  bool stopped_ = false;

  std::priority_queue<TimerEntry, std::vector<TimerEntry>, Later> timers_;
  std::unordered_map<TimerId, Action> timer_actions_;
  std::size_t live_timers_ = 0;
  TimerId next_timer_ = 1;
  std::uint64_t next_seq_ = 0;

  struct FdEntry {
    Action on_readable;
    /// Registration generation: a kernel fd number is reused the moment
    /// it is closed, so the number alone cannot identify a registration
    /// across a remove_fd + add_fd within one poll round.
    std::uint64_t generation;
  };
  /// Ordered map: poll registration and dispatch follow ascending fd
  /// order, deterministically.
  std::map<int, FdEntry> fds_;
  std::uint64_t next_fd_generation_ = 1;
};

}  // namespace tota::net
