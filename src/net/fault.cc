#include "net/fault.h"

#include <algorithm>
#include <utility>

namespace tota::net {

bool FaultPlan::enabled() const {
  return drop > 0.0 || duplicate > 0.0 ||
         (reorder > 0.0 && reorder_window > 0) || truncate > 0.0 ||
         corrupt > 0.0 || !partitions.empty();
}

bool FaultPlan::severs(SimTime now, NodeId a, NodeId b) const {
  for (const Partition& p : partitions) {
    if (now < p.start || now >= p.start + p.duration) continue;
    if (p.group.empty()) return true;  // the whole path is cut
    const bool a_in =
        std::find(p.group.begin(), p.group.end(), a) != p.group.end();
    const bool b_in =
        std::find(p.group.begin(), p.group.end(), b) != p.group.end();
    if (a_in != b_in) return true;  // endpoints on opposite sides
  }
  return false;
}

FaultInjector::FaultInjector(FaultPlan plan, tota::Platform& platform,
                             obs::MetricsRegistry& metrics)
    : plan_(std::move(plan)),
      platform_(platform),
      rng_(platform.rng().fork()),
      processed_(metrics.counter("net.fault.processed")),
      delivered_(metrics.counter("net.fault.delivered")),
      dropped_(metrics.counter("net.fault.drop")),
      duplicated_(metrics.counter("net.fault.dup")),
      reordered_(metrics.counter("net.fault.reorder")),
      truncated_(metrics.counter("net.fault.truncate")),
      corrupted_(metrics.counter("net.fault.corrupt")),
      partition_dropped_(metrics.counter("net.fault.partition_drop")) {}

FaultInjector::~FaultInjector() { platform_.cancel(hold_timer_); }

void FaultInjector::deliver_now(const wire::Bytes& bytes,
                                const Deliver& deliver, bool duplicate) {
  delivered_.inc();
  deliver(bytes);
  if (duplicate) {
    duplicated_.inc();
    deliver(bytes);
  }
}

template <typename Pred>
void FaultInjector::release_if(Pred pred) {
  // Two phases so a Deliver that re-enters process() sees a consistent
  // hold queue: extract everything due first, then deliver.
  std::vector<Held> due;
  for (std::size_t i = 0; i < held_.size();) {
    if (pred(held_[i])) {
      due.push_back(std::move(held_[i]));
      held_.erase(held_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  for (Held& h : due) deliver_now(h.bytes, h.deliver, h.duplicate);
}

void FaultInjector::arm_hold_timer() {
  if (hold_timer_ != Platform::kInvalidTimer || held_.empty()) return;
  SimTime earliest = held_.front().deadline;
  for (const Held& h : held_) earliest = std::min(earliest, h.deadline);
  const SimTime now = platform_.now();
  const SimTime delay = earliest > now ? earliest - now : SimTime::zero();
  hold_timer_ = platform_.schedule(delay, [this] {
    hold_timer_ = Platform::kInvalidTimer;
    on_hold_timer();
  });
}

void FaultInjector::on_hold_timer() {
  const SimTime now = platform_.now();
  release_if([now](const Held& h) { return h.deadline <= now; });
  arm_hold_timer();  // re-arm for whatever is still held
}

void FaultInjector::flush() {
  platform_.cancel(hold_timer_);
  hold_timer_ = Platform::kInvalidTimer;
  release_if([](const Held&) { return true; });
}

void FaultInjector::process(std::span<const std::uint8_t> bytes,
                            Deliver deliver, NodeId from, NodeId to) {
  processed_.inc();
  if (plan_.severs(platform_.now(), from, to)) {
    partition_dropped_.inc();
    return;
  }
  if (rng_.chance(plan_.drop)) {
    dropped_.inc();
    return;
  }

  wire::Bytes owned(bytes.begin(), bytes.end());
  if (!owned.empty() && rng_.chance(plan_.corrupt)) {
    const std::uint64_t bit = rng_.below(owned.size() * 8);
    owned[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    corrupted_.inc();
  }
  if (!owned.empty() && rng_.chance(plan_.truncate)) {
    owned.resize(rng_.below(owned.size()));  // may become empty
    truncated_.inc();
  }
  const bool duplicate = rng_.chance(plan_.duplicate);

  if (plan_.reorder_window > 0 && rng_.chance(plan_.reorder)) {
    reordered_.inc();
    held_.push_back(Held{
        std::move(owned), std::move(deliver),
        1 + static_cast<int>(
                rng_.below(static_cast<std::uint64_t>(plan_.reorder_window))),
        platform_.now() + plan_.reorder_max_hold, duplicate});
    arm_hold_timer();
    return;
  }

  deliver_now(owned, deliver, duplicate);
  // This datagram overtook everything still held; release entries whose
  // overtake budget it exhausted — they now arrive *after* it, which is
  // the reordering.
  for (Held& h : held_) --h.overtakes_left;
  release_if([](const Held& h) { return h.overtakes_left <= 0; });
}

}  // namespace tota::net
