// Discovery — neighbour presence over a beaconed broadcast medium.
//
// The simulator *knows* the topology and injects neighbour-up/down
// upcalls for free; a real radio does not, so the paper's prototype ran
// "a system to continuously detect neighboring nodes" next to the
// middleware.  This is that system: every node broadcasts a small HELLO
// beacon on a jittered period, and a neighbour is considered present
// from its first HELLO until `expiry_missed_beacons` consecutive beacons
// fail to arrive — beacon loss tolerance is the robustness knob (k-1
// lost beacons in a row are weather; k are a departed node).
//
// Mechanics (full state machine in docs/NET.md):
//   * Beacons are spaced period * (1 ± jitter) with the offset drawn
//     from the platform's seeded Rng — deterministic per seed, and
//     desynchronized between nodes so N co-started processes don't
//     transmit in lockstep bursts.
//   * Each HELLO advertises the sender's own period; the receiver arms
//     that neighbour's expiry at k * advertised_period * (1 + jitter),
//     so nodes with different beacon configs interoperate.
//   * Expiry is one cancellable platform timer per neighbour, re-armed
//     on every HELLO (this is what Platform::schedule's TimerId is for);
//     a node heard again after expiring is simply a fresh neighbour —
//     one down, one up, no flap suppression to tune.
//
// Discovery is deliberately socket-free: it emits HELLO beacons through
// a callback (the owner encodes them — a legacy HELLO datagram, or a
// chunk on the next outgoing batch) and is fed decoded HELLOs by its
// owner (net::NetSession in production, a test harness in
// tests/test_net.cc), and takes its clock,
// timers, and randomness from the Platform interface — so the whole
// state machine runs under the simulator's or the test double's clock.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "obs/metrics.h"
#include "tota/platform.h"
#include "wire/buffer.h"

namespace tota::net {

struct DiscoveryOptions {
  /// Nominal HELLO spacing.
  SimTime beacon_period = SimTime::from_millis(500);
  /// Each interval is period * (1 ± jitter), uniform; also widens the
  /// expiry deadline so a maximally-late beacon still counts.
  double beacon_jitter = 0.2;
  /// Consecutive missed HELLOs before a neighbour is declared gone (k).
  int expiry_missed_beacons = 3;
  /// A HELLO whose seq falls behind the last accepted one by at most
  /// this many is a reordered/duplicated stale beacon and is ignored
  /// (net.hello.stale) — it must not refresh the neighbour with old
  /// information.  A deeper regression means the peer restarted and is
  /// beaconing from zero again: the old session is torn down and the
  /// neighbour re-announced (net.hello.restart).
  std::uint64_t restart_seq_window = 16;
  /// Upper bound honoured for the peer-advertised beacon period: one
  /// malformed or hostile HELLO advertising a huge period must not pin
  /// its neighbour entry near-forever.  Clamped periods count
  /// net.hello.clamped.
  SimTime max_peer_period = SimTime::from_seconds(5);
};

class Discovery {
 public:
  /// Transmits one beacon: the owner encodes it (a legacy HELLO
  /// datagram via net::Datagram::hello, or a HELLO chunk on the next
  /// batch via net::Batcher::hello) — discovery only owns the schedule
  /// and the (seq, period) content.
  using BeaconFn = std::function<void(std::uint64_t seq, SimTime period)>;
  using NeighborFn = std::function<void(NodeId)>;

  /// `platform` provides clock/timers/rng; `beacon` transmits one HELLO
  /// beacon.  Registers net.hello.* / net.neighbor.* in `metrics` (must
  /// outlive the discovery).
  Discovery(NodeId self, tota::Platform& platform, DiscoveryOptions options,
            BeaconFn beacon, obs::MetricsRegistry& metrics);
  ~Discovery();

  Discovery(const Discovery&) = delete;
  Discovery& operator=(const Discovery&) = delete;

  /// Neighbour appearance/disappearance sinks (the engine's
  /// on_neighbor_up/down, via LivePlatform).  Set before start().
  void on_neighbor_up(NeighborFn fn) { up_ = std::move(fn); }
  void on_neighbor_down(NeighborFn fn) { down_ = std::move(fn); }

  /// Sends the first HELLO immediately and starts the beacon schedule.
  void start();

  /// Cancels the beacon and every armed expiry timer.  Known neighbours
  /// are forgotten *silently* — shutdown must not fire down-callbacks
  /// into a stack that is being destroyed.
  void stop();

  /// Feed one received (already decoded) HELLO.  Beacons from `self` are
  /// ignored — a broadcast medium echoes one's own transmissions.  A
  /// known neighbour's HELLO is accepted only when its seq advances:
  /// stale/reordered beacons are dropped without touching the session,
  /// and a deep seq regression is treated as a peer restart (one down
  /// then one up, like a flap — upper layers resync their state).
  void on_hello(NodeId from, std::uint64_t seq, SimTime period);

  /// Currently-present neighbours, unordered.
  [[nodiscard]] std::vector<NodeId> neighbors() const;
  [[nodiscard]] bool knows(NodeId id) const {
    return neighbors_.count(id) > 0;
  }

  [[nodiscard]] const DiscoveryOptions& options() const { return options_; }

 private:
  struct Neighbor {
    SimTime last_heard;
    std::uint64_t last_seq = 0;
    tota::Platform::TimerId expiry = tota::Platform::kInvalidTimer;
  };

  void send_beacon();
  void arm_expiry(NodeId id, Neighbor& n, SimTime period);
  void expire(NodeId id);
  /// How long after a HELLO its sender stays present: k late-as-allowed
  /// beacon intervals.
  [[nodiscard]] SimTime expiry_after(SimTime period) const;

  NodeId self_;
  tota::Platform& platform_;
  DiscoveryOptions options_;
  BeaconFn beacon_;
  NeighborFn up_;
  NeighborFn down_;

  bool running_ = false;
  std::uint64_t beacon_seq_ = 0;
  tota::Platform::TimerId beacon_timer_ = tota::Platform::kInvalidTimer;
  std::unordered_map<NodeId, Neighbor> neighbors_;

  obs::Counter& hello_tx_;
  obs::Counter& hello_rx_;
  obs::Counter& hello_stale_;
  obs::Counter& hello_restart_;
  obs::Counter& hello_clamped_;
  obs::Counter& neighbor_up_;
  obs::Counter& neighbor_down_;
  obs::Gauge& neighbors_gauge_;
};

}  // namespace tota::net
