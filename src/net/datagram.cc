#include "net/datagram.h"

namespace tota::net {

namespace {

wire::Writer envelope(DatagramKind kind, NodeId sender,
                      std::size_t body_hint) {
  wire::Writer w;
  w.reserve(2 + 1 + 9 + body_hint);
  w.u8(kMagic);
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(kind));
  w.uvarint(sender.value());
  return w;
}

}  // namespace

Datagram Datagram::decode(std::span<const std::uint8_t> bytes) {
  wire::Reader r(bytes);
  if (r.u8() != kMagic) throw wire::DecodeError("not a TOTA datagram");
  if (r.u8() != kVersion) throw wire::DecodeError("datagram version mismatch");
  const std::uint8_t kind_byte = r.u8();

  Datagram d;
  d.sender = NodeId{r.uvarint()};
  if (!d.sender.valid()) throw wire::DecodeError("datagram without sender");
  switch (kind_byte) {
    case static_cast<std::uint8_t>(DatagramKind::kHello):
      d.kind = DatagramKind::kHello;
      d.seq = r.uvarint();
      d.period = SimTime::from_millis(static_cast<double>(r.uvarint()));
      if (d.period <= SimTime::zero()) {
        throw wire::DecodeError("HELLO with non-positive period");
      }
      r.expect_done();
      return d;
    case static_cast<std::uint8_t>(DatagramKind::kData):
      d.kind = DatagramKind::kData;
      // The rest of the datagram is the engine frame, verbatim.
      d.payload = bytes.subspan(bytes.size() - r.remaining());
      return d;
    default:
      throw wire::DecodeError("unknown datagram kind");
  }
}

wire::Bytes Datagram::hello(NodeId sender, std::uint64_t seq, SimTime period) {
  wire::Writer w = envelope(DatagramKind::kHello, sender, 10);
  w.uvarint(seq);
  // Whole milliseconds on the wire; sub-millisecond periods round up so
  // the advertised value stays positive (decode rejects 0).
  const double ms = period.millis();
  w.uvarint(ms < 1.0 ? 1 : static_cast<std::uint64_t>(ms));
  return w.take();
}

wire::Bytes Datagram::data(NodeId sender,
                           std::span<const std::uint8_t> frame) {
  wire::Writer w = envelope(DatagramKind::kData, sender, frame.size());
  w.raw(frame);
  return w.take();
}

}  // namespace tota::net
