#include "net/datagram.h"

#include <stdexcept>
#include <utility>

namespace tota::net {

namespace {

wire::Writer envelope(DatagramKind kind, NodeId sender,
                      std::size_t body_hint) {
  wire::Writer w;
  w.reserve(2 + 1 + 9 + body_hint);
  w.u8(kMagic);
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(kind));
  w.uvarint(sender.value());
  return w;
}

/// Whole milliseconds on the wire; sub-millisecond periods round up so
/// the advertised value stays positive (decode rejects 0).
std::uint64_t period_ms(SimTime period) {
  const double ms = period.millis();
  return ms < 1.0 ? 1 : static_cast<std::uint64_t>(ms);
}

SimTime decode_period(wire::Reader& r) {
  const SimTime period =
      SimTime::from_millis(static_cast<double>(r.uvarint()));
  if (period <= SimTime::zero()) {
    throw wire::DecodeError("HELLO with non-positive period");
  }
  return period;
}

/// Parses one chunk body into `c` (kind already set).  `body` is the
/// exact chunk extent; every grammar consumes it to the last byte
/// except DATA/REL/DIGEST payloads, which are the remainder by
/// definition.
void decode_chunk(Chunk& c, std::span<const std::uint8_t> body) {
  wire::Reader r(body);
  switch (c.kind) {
    case ChunkKind::kHello:
      c.seq = r.uvarint();
      c.period = decode_period(r);
      r.expect_done();
      return;
    case ChunkKind::kData:
      if (body.empty()) throw wire::DecodeError("empty DATA chunk");
      c.payload = body;
      return;
    case ChunkKind::kRel: {
      c.seq = r.uvarint();
      const std::uint64_t floor_delta = r.uvarint();
      if (floor_delta > c.seq) {
        throw wire::DecodeError("REL floor above its own seq");
      }
      c.floor = c.seq - floor_delta;
      if (r.remaining() == 0) throw wire::DecodeError("empty REL frame");
      c.payload = body.subspan(body.size() - r.remaining());
      return;
    }
    case ChunkKind::kAck:
      c.peer = NodeId{r.uvarint()};
      if (!c.peer.valid()) throw wire::DecodeError("ACK without peer");
      c.cum = r.uvarint();
      r.expect_done();
      return;
    case ChunkKind::kDigest:
      if (body.empty()) throw wire::DecodeError("empty DIGEST chunk");
      c.payload = body;
      return;
  }
  throw wire::DecodeError("unreachable chunk kind");  // kept for safety
}

}  // namespace

Datagram Datagram::decode(std::span<const std::uint8_t> bytes) {
  wire::Reader r(bytes);
  if (r.u8() != kMagic) throw wire::DecodeError("not a TOTA datagram");
  if (r.u8() != kVersion) throw wire::DecodeError("datagram version mismatch");
  const std::uint8_t kind_byte = r.u8();

  Datagram d;
  d.sender = NodeId{r.uvarint()};
  if (!d.sender.valid()) throw wire::DecodeError("datagram without sender");
  switch (kind_byte) {
    case static_cast<std::uint8_t>(DatagramKind::kHello):
      d.kind = DatagramKind::kHello;
      d.seq = r.uvarint();
      d.period = decode_period(r);
      r.expect_done();
      return d;
    case static_cast<std::uint8_t>(DatagramKind::kData):
      d.kind = DatagramKind::kData;
      // The rest of the datagram is the engine frame, verbatim.
      d.payload = bytes.subspan(bytes.size() - r.remaining());
      return d;
    case static_cast<std::uint8_t>(DatagramKind::kBatch): {
      d.kind = DatagramKind::kBatch;
      const std::uint64_t count = r.uvarint();
      if (count == 0) throw wire::DecodeError("empty BATCH");
      if (count > kMaxBatchChunks) {
        throw wire::DecodeError("BATCH chunk count over the cap");
      }
      d.chunks.reserve(static_cast<std::size_t>(count));
      for (std::uint64_t i = 0; i < count; ++i) {
        const auto ckind = r.u8();
        const std::uint64_t clen = r.uvarint();
        if (clen > r.remaining()) {
          throw wire::DecodeError("truncated BATCH chunk");
        }
        const auto body = r.span(static_cast<std::size_t>(clen));
        if (ckind < 1 ||
            ckind > static_cast<std::uint8_t>(ChunkKind::kDigest)) {
          ++d.skipped;  // a future chunk kind: skippable by design
          continue;
        }
        Chunk c;
        c.kind = static_cast<ChunkKind>(ckind);
        decode_chunk(c, body);
        d.chunks.push_back(c);
      }
      r.expect_done();  // trailing garbage is corruption, not padding
      return d;
    }
    default:
      throw wire::DecodeError("unknown datagram kind");
  }
}

wire::Bytes Datagram::hello(NodeId sender, std::uint64_t seq, SimTime period) {
  wire::Writer w = envelope(DatagramKind::kHello, sender, 10);
  w.uvarint(seq);
  w.uvarint(period_ms(period));
  return w.take();
}

wire::Bytes Datagram::data(NodeId sender,
                           std::span<const std::uint8_t> frame) {
  wire::Writer w = envelope(DatagramKind::kData, sender, frame.size());
  w.raw(frame);
  return w.take();
}

wire::Bytes Datagram::batch(NodeId sender,
                            std::span<const EncodedChunk> chunks) {
  if (chunks.empty() || chunks.size() > kMaxBatchChunks) {
    throw std::invalid_argument("Datagram::batch: bad chunk count");
  }
  std::size_t body = 1;
  for (const auto& c : chunks) body += c.wire_size();
  wire::Writer w = envelope(DatagramKind::kBatch, sender, body);
  w.uvarint(chunks.size());
  for (const auto& c : chunks) {
    w.u8(static_cast<std::uint8_t>(c.kind));
    w.uvarint(c.body.size());
    w.raw(c.body);
  }
  return w.take();
}

EncodedChunk Datagram::chunk_hello(std::uint64_t seq, SimTime period) {
  wire::Writer w;
  w.uvarint(seq);
  w.uvarint(period_ms(period));
  return {ChunkKind::kHello, w.take()};
}

EncodedChunk Datagram::chunk_data(std::span<const std::uint8_t> frame) {
  return {ChunkKind::kData, wire::Bytes(frame.begin(), frame.end())};
}

EncodedChunk Datagram::chunk_rel(std::uint64_t seq, std::uint64_t floor,
                                 std::span<const std::uint8_t> frame) {
  wire::Writer w;
  w.reserve(20 + frame.size());
  w.uvarint(seq);
  w.uvarint(seq - floor);
  w.raw(frame);
  return {ChunkKind::kRel, w.take()};
}

EncodedChunk Datagram::chunk_ack(NodeId peer, std::uint64_t cum) {
  wire::Writer w;
  w.uvarint(peer.value());
  w.uvarint(cum);
  return {ChunkKind::kAck, w.take()};
}

EncodedChunk Datagram::chunk_digest(wire::Bytes digest_body) {
  return {ChunkKind::kDigest, std::move(digest_body)};
}

}  // namespace tota::net
