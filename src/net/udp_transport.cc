#include "net/udp_transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>

namespace tota::net {

namespace {

/// Largest datagram we accept; a TOTA frame is far smaller, but the port
/// is open to the world.
constexpr std::size_t kMaxDatagram = 64 * 1024;

bool parse_addr(const std::string& text, in_addr* out) {
  return ::inet_pton(AF_INET, text.c_str(), out) == 1;
}

}  // namespace

UdpTransport::UdpTransport(UdpOptions options, obs::MetricsRegistry& metrics)
    : options_(std::move(options)),
      tx_(metrics.counter("net.udp.tx")),
      tx_bytes_(metrics.counter("net.udp.tx_bytes")),
      rx_(metrics.counter("net.udp.rx")),
      rx_bytes_(metrics.counter("net.udp.rx_bytes")),
      send_err_(metrics.counter("net.udp.send_err")),
      rx_err_(metrics.counter("net.udp.rx_err")),
      rx_trunc_(metrics.counter("net.udp.rx_trunc")),
      mtu_drop_(metrics.counter("net.mtu_drop")),
      drain_yield_(metrics.counter("net.udp.drain_yield")) {}

UdpTransport::~UdpTransport() { close(); }

bool UdpTransport::fail(const std::string& what) {
  error_ = what + ": " + ::strerror(errno);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  return false;
}

bool UdpTransport::open() {
  if (fd_ >= 0) return true;

  in_addr group{};
  if (!parse_addr(options_.group, &group)) {
    error_ = "bad group address: " + options_.group;
    return false;
  }
  // Resolve the destination once; send() reuses it for every datagram
  // instead of re-running inet_pton per call.
  dest_ = sockaddr_in{};
  dest_.sin_family = AF_INET;
  dest_.sin_port = htons(options_.port);
  dest_.sin_addr = group;

  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  if (fd_ < 0) return fail("socket");

  // Every node on this host shares the port (shared-channel semantics);
  // both options are needed for broadcast/multicast fan-out to all of
  // them.
  const int one = 1;
  if (::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) < 0) {
    return fail("SO_REUSEADDR");
  }
#ifdef SO_REUSEPORT
  if (::setsockopt(fd_, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) < 0) {
    return fail("SO_REUSEPORT");
  }
#endif

  if (options_.rcvbuf > 0) {
    // Best effort: the kernel clamps to net.core.rmem_max.  Whatever it
    // grants beats the default under a propagation storm; failure here
    // is not worth refusing the socket over.
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &options_.rcvbuf,
                 sizeof(options_.rcvbuf));
  }

  sockaddr_in bind_addr{};
  bind_addr.sin_family = AF_INET;
  bind_addr.sin_port = htons(options_.port);
  bind_addr.sin_addr.s_addr = htonl(INADDR_ANY);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&bind_addr),
             sizeof(bind_addr)) < 0) {
    return fail("bind");
  }

  if (options_.mode == UdpOptions::Mode::kBroadcast) {
    if (::setsockopt(fd_, SOL_SOCKET, SO_BROADCAST, &one, sizeof(one)) < 0) {
      return fail("SO_BROADCAST");
    }
  } else {
    in_addr ifaddr{};
    ifaddr.s_addr = htonl(INADDR_ANY);
    if (!options_.ifaddr.empty() && !parse_addr(options_.ifaddr, &ifaddr)) {
      error_ = "bad interface address: " + options_.ifaddr;
      ::close(fd_);
      fd_ = -1;
      return false;
    }

    ip_mreq mreq{};
    mreq.imr_multiaddr = group;
    mreq.imr_interface = ifaddr;
    if (::setsockopt(fd_, IPPROTO_IP, IP_ADD_MEMBERSHIP, &mreq,
                     sizeof(mreq)) < 0) {
      return fail("IP_ADD_MEMBERSHIP");
    }
    // We must hear our own transmissions' group: co-located processes
    // (and CI) rely on loopback delivery.
    const unsigned char loop = 1;
    if (::setsockopt(fd_, IPPROTO_IP, IP_MULTICAST_LOOP, &loop,
                     sizeof(loop)) < 0) {
      return fail("IP_MULTICAST_LOOP");
    }
    const unsigned char ttl =
        static_cast<unsigned char>(options_.ttl < 0 ? 0 : options_.ttl);
    if (::setsockopt(fd_, IPPROTO_IP, IP_MULTICAST_TTL, &ttl, sizeof(ttl)) <
        0) {
      return fail("IP_MULTICAST_TTL");
    }
    if (!options_.ifaddr.empty() &&
        ::setsockopt(fd_, IPPROTO_IP, IP_MULTICAST_IF, &ifaddr,
                     sizeof(ifaddr)) < 0) {
      return fail("IP_MULTICAST_IF");
    }
  }

  error_.clear();
  return true;
}

void UdpTransport::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool UdpTransport::send(std::span<const std::uint8_t> datagram) {
  if (fd_ < 0) {
    send_err_.inc();
    return false;
  }
  if (options_.mtu != 0 && datagram.size() > options_.mtu) {
    // This device's link layer cannot pass the frame; dropped exactly
    // like the simulators' per-link MTU cut (net/device_profile.h).
    mtu_drop_.inc();
    return false;
  }
  const ssize_t n =
      ::sendto(fd_, datagram.data(), datagram.size(), 0,
               reinterpret_cast<sockaddr*>(&dest_), sizeof(dest_));
  if (n != static_cast<ssize_t>(datagram.size())) {
    // EAGAIN (full send buffer) and friends: the datagram is dropped, as
    // on any lossy broadcast medium.  Counted, not thrown.
    error_ = std::string("sendto: ") + ::strerror(errno);
    send_err_.inc();
    return false;
  }
  tx_.inc();
  tx_bytes_.inc(static_cast<std::int64_t>(datagram.size()));
  return true;
}

std::size_t UdpTransport::drain(
    const std::function<void(std::span<const std::uint8_t>)>& sink) {
  if (fd_ < 0) return 0;
  std::array<std::uint8_t, kMaxDatagram> buffer;
  std::size_t delivered = 0;
  for (;;) {
    if (options_.drain_budget != 0 && delivered >= options_.drain_budget) {
      // Budget exhausted with the socket possibly still readable: yield
      // so the loop can serve its other tenants; level-triggered
      // readiness re-arms this drain on the next wakeup.
      drain_yield_.inc();
      break;
    }
    const ssize_t n = ::recv(fd_, buffer.data(), buffer.size(), MSG_TRUNC);
    if (n < 0) {
      if (errno == EINTR) continue;  // interrupted mid-drain: retry
      if (errno != EAGAIN && errno != EWOULDBLOCK) {
        // A real receive error, not a cleanly drained queue: record it
        // instead of masking it as EAGAIN.  The socket stays open —
        // transient errors (e.g. ENOBUFS) heal; persistent ones keep
        // counting and stay visible in error().
        rx_err_.inc();
        error_ = std::string("recv: ") + ::strerror(errno);
      }
      break;
    }
    if (static_cast<std::size_t>(n) > buffer.size()) {
      rx_trunc_.inc();  // kernel truncated an oversized datagram
      continue;
    }
    rx_.inc();
    rx_bytes_.inc(n);
    ++delivered;
    sink(std::span<const std::uint8_t>(buffer.data(),
                                       static_cast<std::size_t>(n)));
  }
  return delivered;
}

}  // namespace tota::net
