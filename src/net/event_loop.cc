#include "net/event_loop.h"

#include <poll.h>
#include <time.h>
#include <unistd.h>

#if TOTA_HAVE_EPOLL
#include <sys/epoll.h>
#endif

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace tota::net {

namespace {

std::int64_t monotonic_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

/// Ready events fetched per epoll_wait.  More ready fds than this simply
/// surface on the next wakeup (level-triggered), so the constant bounds
/// per-iteration work, not throughput.
constexpr int kEpollBatch = 64;

LoopBackend resolve(LoopBackend requested) {
  switch (requested) {
    case LoopBackend::kPoll:
      return LoopBackend::kPoll;
    case LoopBackend::kEpoll:
#if TOTA_HAVE_EPOLL
      return LoopBackend::kEpoll;
#else
      throw std::invalid_argument("epoll backend unavailable on this platform");
#endif
    case LoopBackend::kAuto:
    default:
#if TOTA_HAVE_EPOLL
      return LoopBackend::kEpoll;
#else
      return LoopBackend::kPoll;
#endif
  }
}

}  // namespace

EventLoop::EventLoop(LoopBackend backend, obs::MetricsRegistry* metrics)
    : epoch_ns_(monotonic_ns()), backend_(resolve(backend)) {
#if TOTA_HAVE_EPOLL
  if (backend_ == LoopBackend::kEpoll) {
    epoll_fd_ = ::epoll_create1(0);
    if (epoll_fd_ < 0) {
      // epoll_create can fail under fd exhaustion; degrade instead of
      // dying — the poll backend serves the same contract.
      backend_ = LoopBackend::kPoll;
    }
  }
#endif
  if (metrics != nullptr) {
    wakeups_ = &metrics->counter("loop.wakeups");
    fd_events_ = &metrics->counter("loop.fd_events");
    timers_fired_ = &metrics->counter("loop.timers_fired");
    compactions_ = &metrics->counter("loop.timer_compactions");
    fds_gauge_ = &metrics->gauge("loop.fds");
    metrics->gauge("loop.backend")
        .set(backend_ == LoopBackend::kEpoll ? 1.0 : 0.0);
  }
}

EventLoop::~EventLoop() {
#if TOTA_HAVE_EPOLL
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
#endif
}

SimTime EventLoop::now() const {
  return SimTime((monotonic_ns() - epoch_ns_) / 1000);
}

EventLoop::TimerId EventLoop::schedule(SimTime delay, Action action) {
  if (action == nullptr) throw std::invalid_argument("null timer action");
  const TimerId id = next_timer_++;
  const SimTime when = now() + (delay < SimTime::zero() ? SimTime::zero()
                                                        : delay);
  timers_.push_back(TimerEntry{when, next_seq_++, id});
  std::push_heap(timers_.begin(), timers_.end(), Later{});
  timer_actions_.emplace(id, std::move(action));
  ++live_timers_;
  return id;
}

void EventLoop::cancel(TimerId id) {
  // The heap entry stays and is skipped when popped (same lazy-deletion
  // scheme as sim::EventQueue) — but unlike a finite simulation, a live
  // loop runs forever, so tombstones are compacted away once they
  // outnumber live timers.
  if (timer_actions_.erase(id) == 0) return;
  --live_timers_;
  if (timers_.size() > 2 * live_timers_ + 64) compact_timers();
}

void EventLoop::compact_timers() {
  std::erase_if(timers_, [this](const TimerEntry& e) {
    return timer_actions_.find(e.id) == timer_actions_.end();
  });
  std::make_heap(timers_.begin(), timers_.end(), Later{});
  if (compactions_ != nullptr) compactions_->inc();
}

void EventLoop::add_fd(int fd, Action on_readable) {
  if (fd < 0) throw std::invalid_argument("negative fd");
  if (on_readable == nullptr) throw std::invalid_argument("null fd callback");
  const std::uint64_t generation = next_fd_generation_++;
  const auto [it, inserted] =
      fds_.insert_or_assign(fd, FdEntry{std::move(on_readable), generation});
  (void)it;
#if TOTA_HAVE_EPOLL
  if (backend_ == LoopBackend::kEpoll) {
    // data packs (generation low 32 | fd): epoll events fetched before a
    // remove_fd + reuse + re-add of the same number must not dispatch to
    // the fresh registration.  32 generation bits suffice — a collision
    // would need 2^32 re-registrations of one fd within a single
    // dispatch round.
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = (generation << 32) |
                  static_cast<std::uint32_t>(static_cast<unsigned>(fd));
    if (::epoll_ctl(epoll_fd_, inserted ? EPOLL_CTL_ADD : EPOLL_CTL_MOD, fd,
                    &ev) < 0) {
      fds_.erase(fd);
      throw std::runtime_error("epoll_ctl add failed");
    }
  }
#endif
  pfds_dirty_ = true;
  if (fds_gauge_ != nullptr) fds_gauge_->set(static_cast<double>(fds_.size()));
}

void EventLoop::remove_fd(int fd) {
  if (fds_.erase(fd) == 0) return;
#if TOTA_HAVE_EPOLL
  if (backend_ == LoopBackend::kEpoll) {
    // EBADF/ENOENT are fine: a closed fd was already dropped by the
    // kernel.  (Callers should still deregister before closing — a
    // *reused* number would otherwise inherit the old registration.)
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
#endif
  pfds_dirty_ = true;
  if (fds_gauge_ != nullptr) fds_gauge_->set(static_cast<double>(fds_.size()));
}

SimTime EventLoop::fire_due_timers() {
  const SimTime t = now();
  while (!timers_.empty()) {
    const TimerEntry entry = timers_.front();
    const auto it = timer_actions_.find(entry.id);
    if (it == timer_actions_.end()) {  // cancelled; discard lazily
      std::pop_heap(timers_.begin(), timers_.end(), Later{});
      timers_.pop_back();
      continue;
    }
    if (entry.when > t) return entry.when - t;
    std::pop_heap(timers_.begin(), timers_.end(), Later{});
    timers_.pop_back();
    Action action = std::move(it->second);
    timer_actions_.erase(it);
    --live_timers_;
    if (timers_fired_ != nullptr) timers_fired_->inc();
    action();
  }
  return SimTime(-1);
}

void EventLoop::dispatch_fd(int fd, std::uint64_t generation_low32) {
  // The callback may remove_fd (even its own), and a removed fd number
  // can be reused and re-added within this very round — the generation
  // stamp distinguishes the registration these events belong to from a
  // fresh one that merely shares the number.
  const auto it = fds_.find(fd);
  if (it == fds_.end()) return;
  if ((it->second.generation & 0xFFFFFFFFu) != generation_low32) return;
  if (fd_events_ != nullptr) fd_events_->inc();
  it->second.on_readable();
}

void EventLoop::wait_poll(int timeout_ms) {
  if (pfds_dirty_) {
    pfds_.clear();
    pfd_generations_.clear();
    pfds_.reserve(fds_.size());
    pfd_generations_.reserve(fds_.size());
    for (const auto& [fd, entry] : fds_) {
      pfds_.push_back(pollfd{fd, POLLIN, 0});
      pfd_generations_.push_back(entry.generation);
    }
    pfds_dirty_ = false;
  } else {
    for (pollfd& p : pfds_) p.revents = 0;
  }
  const int n = ::poll(pfds_.data(), pfds_.size(), timeout_ms);
  if (wakeups_ != nullptr) wakeups_->inc();
  if (n <= 0) return;  // timeout or EINTR; timers fire next iteration

  // Dispatch from an index loop over the persistent cache: callbacks may
  // add_fd (invalidating a rebuild for the *next* round via pfds_dirty_)
  // but the cache itself is stable for this round.
  for (std::size_t i = 0; i < pfds_.size(); ++i) {
    const pollfd& p = pfds_[i];
    if ((p.revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
    dispatch_fd(p.fd, pfd_generations_[i] & 0xFFFFFFFFu);
    if (stop_requested_) return;
  }
}

#if TOTA_HAVE_EPOLL
void EventLoop::wait_epoll(int timeout_ms) {
  epoll_event events[kEpollBatch];
  const int n = ::epoll_wait(epoll_fd_, events, kEpollBatch, timeout_ms);
  if (wakeups_ != nullptr) wakeups_->inc();
  if (n <= 0) return;  // timeout or EINTR; timers fire next iteration
  for (int i = 0; i < n; ++i) {
    const std::uint64_t data = events[i].data.u64;
    dispatch_fd(static_cast<int>(data & 0xFFFFFFFFu), data >> 32);
    if (stop_requested_) return;
  }
}
#endif

void EventLoop::step(SimTime deadline) {
  const SimTime until_timer = fire_due_timers();
  if (stop_requested_) return;

  // Sleep until the earliest of: next timer, run_for deadline, fd
  // readiness.  The kernel wait is the no-busy-wait core of the loop.
  std::int64_t wait_ms = -1;  // indefinite
  const auto bound = [&wait_ms](SimTime dt) {
    // Round up so we never wake a millisecond early and spin.
    const std::int64_t ms = (dt.micros() + 999) / 1000;
    if (wait_ms < 0 || ms < wait_ms) wait_ms = ms;
  };
  if (until_timer >= SimTime::zero()) bound(until_timer);
  if (deadline >= SimTime::zero()) {
    const SimTime dt = deadline - now();
    bound(dt < SimTime::zero() ? SimTime::zero() : dt);
  }
  if (wait_ms < 0 && fds_.empty()) {
    // Nothing to wait for at all: stop instead of sleeping forever.
    stop_requested_ = true;
    return;
  }

  const int timeout_ms = static_cast<int>(
      std::min<std::int64_t>(wait_ms < 0 ? 60'000 : wait_ms, 60'000));
#if TOTA_HAVE_EPOLL
  if (backend_ == LoopBackend::kEpoll) {
    wait_epoll(timeout_ms);
    return;
  }
#endif
  wait_poll(timeout_ms);
}

void EventLoop::run() {
  while (!consume_stop()) step(SimTime(-1));
}

void EventLoop::run_for(SimTime duration) {
  const SimTime deadline = now() + duration;
  while (!consume_stop() && now() < deadline) step(deadline);
}

}  // namespace tota::net
