#include "net/event_loop.h"

#include <poll.h>
#include <time.h>

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace tota::net {

namespace {

std::int64_t monotonic_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

}  // namespace

EventLoop::EventLoop() : epoch_ns_(monotonic_ns()) {}

SimTime EventLoop::now() const {
  return SimTime((monotonic_ns() - epoch_ns_) / 1000);
}

EventLoop::TimerId EventLoop::schedule(SimTime delay, Action action) {
  if (action == nullptr) throw std::invalid_argument("null timer action");
  const TimerId id = next_timer_++;
  const SimTime when = now() + (delay < SimTime::zero() ? SimTime::zero()
                                                        : delay);
  timers_.push(TimerEntry{when, next_seq_++, id});
  timer_actions_.emplace(id, std::move(action));
  ++live_timers_;
  return id;
}

void EventLoop::cancel(TimerId id) {
  // The heap entry stays and is skipped when popped (same lazy-deletion
  // scheme as sim::EventQueue).
  if (timer_actions_.erase(id) > 0) --live_timers_;
}

void EventLoop::add_fd(int fd, Action on_readable) {
  if (fd < 0) throw std::invalid_argument("negative fd");
  if (on_readable == nullptr) throw std::invalid_argument("null fd callback");
  fds_[fd] = FdEntry{std::move(on_readable), next_fd_generation_++};
}

void EventLoop::remove_fd(int fd) { fds_.erase(fd); }

SimTime EventLoop::fire_due_timers() {
  const SimTime t = now();
  while (!timers_.empty()) {
    const TimerEntry entry = timers_.top();
    const auto it = timer_actions_.find(entry.id);
    if (it == timer_actions_.end()) {  // cancelled; discard lazily
      timers_.pop();
      continue;
    }
    if (entry.when > t) return entry.when - t;
    timers_.pop();
    Action action = std::move(it->second);
    timer_actions_.erase(it);
    --live_timers_;
    action();
  }
  return SimTime(-1);
}

void EventLoop::step(SimTime deadline) {
  const SimTime until_timer = fire_due_timers();
  if (stopped_) return;

  // Sleep until the earliest of: next timer, run_for deadline, fd
  // readiness.  poll() is the no-busy-wait core of the loop.
  std::int64_t wait_ms = -1;  // indefinite
  const auto bound = [&wait_ms](SimTime dt) {
    // Round up so we never wake a millisecond early and spin.
    const std::int64_t ms = (dt.micros() + 999) / 1000;
    if (wait_ms < 0 || ms < wait_ms) wait_ms = ms;
  };
  if (until_timer >= SimTime::zero()) bound(until_timer);
  if (deadline >= SimTime::zero()) {
    const SimTime dt = deadline - now();
    bound(dt < SimTime::zero() ? SimTime::zero() : dt);
  }
  if (wait_ms < 0 && fds_.empty()) {
    // Nothing to wait for at all: stop instead of sleeping forever.
    stopped_ = true;
    return;
  }

  std::vector<pollfd> pfds;
  std::vector<std::uint64_t> generations;
  pfds.reserve(fds_.size());
  generations.reserve(fds_.size());
  for (const auto& [fd, entry] : fds_) {
    pfds.push_back(pollfd{fd, POLLIN, 0});
    generations.push_back(entry.generation);
  }
  const int n = ::poll(pfds.data(), pfds.size(),
                       static_cast<int>(std::min<std::int64_t>(
                           wait_ms < 0 ? 60'000 : wait_ms, 60'000)));
  if (n <= 0) return;  // timeout or EINTR; timers fire next iteration

  for (std::size_t i = 0; i < pfds.size(); ++i) {
    const pollfd& p = pfds[i];
    if ((p.revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
    // The callback may remove_fd (even its own), and a removed fd number
    // can be reused and re-added within this very round — the generation
    // stamp distinguishes the registration these revents belong to from
    // a fresh one that merely shares the number.
    const auto it = fds_.find(p.fd);
    if (it != fds_.end() && it->second.generation == generations[i]) {
      it->second.on_readable();
    }
    if (stopped_) return;
  }
}

void EventLoop::run() {
  stopped_ = false;
  while (!stopped_) step(SimTime(-1));
}

void EventLoop::run_for(SimTime duration) {
  stopped_ = false;
  const SimTime deadline = now() + duration;
  while (!stopped_ && now() < deadline) step(deadline);
}

}  // namespace tota::net
