#include "net/batch.h"

#include <algorithm>
#include <utility>

namespace tota::net {

std::vector<wire::Bytes> pack_batches(NodeId sender,
                                      std::vector<EncodedChunk> chunks,
                                      const BatchOptions& options,
                                      obs::Counter* oversize) {
  std::vector<wire::Bytes> out;
  if (chunks.empty()) return out;
  const std::size_t overhead = Datagram::batch_overhead(sender);
  const std::size_t max_chunks =
      std::min(options.max_chunks == 0 ? kMaxBatchChunks : options.max_chunks,
               kMaxBatchChunks);

  std::vector<EncodedChunk> current;
  std::size_t size = overhead;
  const auto emit = [&] {
    if (current.empty()) return;
    out.push_back(Datagram::batch(sender, current));
    current.clear();
    size = overhead;
  };
  for (auto& chunk : chunks) {
    const std::size_t csize = chunk.wire_size();
    if (!current.empty() &&
        ((options.mtu != 0 && size + csize > options.mtu) ||
         current.size() >= max_chunks)) {
      emit();
    }
    if (current.empty() && options.mtu != 0 && overhead + csize > options.mtu &&
        oversize != nullptr) {
      oversize->inc();  // sent alone anyway; the link decides its fate
    }
    size += csize;
    current.push_back(std::move(chunk));
  }
  emit();
  return out;
}

Batcher::Batcher(NodeId self, tota::Platform& platform, BatchOptions options,
                 SendFn send, obs::MetricsRegistry& metrics)
    : self_(self),
      platform_(platform),
      options_(options),
      send_(std::move(send)),
      batch_tx_(metrics.counter("net.batch.tx")),
      batch_chunks_(metrics.counter("net.batch.chunks")),
      batch_flush_(metrics.counter("net.batch.flush")),
      batch_oversize_(metrics.counter("net.batch.oversize")) {}

Batcher::~Batcher() { platform_.cancel(flush_timer_); }

void Batcher::hello(std::uint64_t seq, SimTime period) {
  if (!options_.enabled) {
    send_(Datagram::hello(self_, seq, period));
    return;
  }
  enqueue(Datagram::chunk_hello(seq, period));
}

void Batcher::data(std::span<const std::uint8_t> frame) {
  if (!options_.enabled) {
    send_(Datagram::data(self_, frame));
    return;
  }
  enqueue(Datagram::chunk_data(frame));
}

void Batcher::rel(std::uint64_t seq, std::uint64_t floor,
                  std::span<const std::uint8_t> frame) {
  auto chunk = Datagram::chunk_rel(seq, floor, frame);
  if (!options_.enabled) {
    // No v1 encoding exists for reliable frames; ship a single-chunk
    // BATCH immediately (the session only enables the reliable channel
    // together with batching, so this is a test/degraded-mode path).
    send_(Datagram::batch(self_, {&chunk, 1}));
    batch_tx_.inc();
    batch_chunks_.inc();
    return;
  }
  enqueue(std::move(chunk));
}

void Batcher::ack(NodeId peer, std::uint64_t cum) {
  auto chunk = Datagram::chunk_ack(peer, cum);
  if (!options_.enabled) {
    send_(Datagram::batch(self_, {&chunk, 1}));
    batch_tx_.inc();
    batch_chunks_.inc();
    return;
  }
  const auto it = ack_slot_.find(peer);
  if (it != ack_slot_.end()) {
    pending_[it->second] = std::move(chunk);  // newer cum supersedes
    return;
  }
  ack_slot_.emplace(peer, pending_.size());
  enqueue(std::move(chunk));
}

void Batcher::digest(wire::Bytes body) {
  auto chunk = Datagram::chunk_digest(std::move(body));
  if (!options_.enabled) {
    send_(Datagram::batch(self_, {&chunk, 1}));
    batch_tx_.inc();
    batch_chunks_.inc();
    return;
  }
  if (digest_slot_ != kNoSlot) {
    pending_[digest_slot_] = std::move(chunk);  // newer digest supersedes
    return;
  }
  digest_slot_ = pending_.size();
  enqueue(std::move(chunk));
}

void Batcher::enqueue(EncodedChunk chunk) {
  pending_.push_back(std::move(chunk));
  if (flush_timer_ == tota::Platform::kInvalidTimer) {
    flush_timer_ =
        platform_.schedule(options_.flush_delay, [this] { flush(); });
  }
}

void Batcher::clear() {
  platform_.cancel(flush_timer_);
  flush_timer_ = tota::Platform::kInvalidTimer;
  pending_.clear();
  ack_slot_.clear();
  digest_slot_ = kNoSlot;
}

void Batcher::flush() {
  platform_.cancel(flush_timer_);
  flush_timer_ = tota::Platform::kInvalidTimer;
  if (pending_.empty()) return;
  batch_flush_.inc();
  const std::size_t chunks = pending_.size();
  auto datagrams = pack_batches(self_, std::exchange(pending_, {}), options_,
                                &batch_oversize_);
  ack_slot_.clear();
  digest_slot_ = kNoSlot;
  batch_tx_.inc(static_cast<std::int64_t>(datagrams.size()));
  batch_chunks_.inc(static_cast<std::int64_t>(chunks));
  for (auto& d : datagrams) send_(std::move(d));
}

}  // namespace tota::net
