// NetSession — the v2 datagram path of one node, socket-free.
//
// Everything between the middleware and the raw bytes of the broadcast
// channel lives here: beacon-based neighbour presence (net::Discovery),
// MTU-aware frame coalescing (net::Batcher), the reliable-ordered
// control channel (net::ReliableChannel), and the periodic anti-entropy
// digest exchange (tota::StoreDigest).  LivePlatform wires a session to
// a UdpTransport; the transport-free tests and benches wire it to an
// in-memory channel — the session cannot tell the difference, because
// it only ever touches a SendFn and decoded datagrams fed to on_raw().
//
// Receive routing (one datagram in, possibly many effects out):
//   HELLO            → discovery (presence, expiry re-arm)
//   DATA             → middleware (engine frame), own echoes dropped
//   BATCH            → per chunk:
//     HELLO chunk      → discovery, same as a legacy HELLO
//     DATA chunk       → middleware, same as a legacy DATA
//     REL chunk        → reliable channel (dedup, reorder, ack) which
//                        delivers in-order frames to the middleware
//     ACK chunk        → reliable channel, when addressed to this node
//     DIGEST chunk     → middleware's anti-entropy diff
//     unknown chunk    → skipped by the decoder (net.frame.skip)
//
// Send side: engine broadcasts become DATA chunks on the batcher;
// broadcast_reliable upgrades to the reliable channel when enabled
// (targets = the neighbour set at call time).  Each discovery beacon
// also piggybacks housekeeping on the same flush — the reliable
// channel's cumulative acks (reack_all) and, on its own slower cadence,
// the store digest — so the steady-state background traffic is one
// datagram per beacon period, not four.
//
// Feature switches are independent: batching off + reliable off is the
// v1 wire bit-for-bit.  The reliable *receiver* is always on — a node
// with reliability disabled still deduplicates and acks REL traffic
// from neighbours that have it enabled; `reliable` only gates whether
// this node's own control frames use the channel.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>

#include "common/clock.h"
#include "common/ids.h"
#include "net/batch.h"
#include "net/discovery.h"
#include "net/reliable.h"
#include "obs/metrics.h"
#include "tota/platform.h"
#include "wire/buffer.h"

namespace tota {
class Middleware;
}  // namespace tota

namespace tota::net {

struct SessionOptions {
  DiscoveryOptions discovery;
  /// v2 coalescing (off = legacy one-frame-per-datagram wire).
  BatchOptions batch;
  /// Send RETRACT/PROBE control frames over the reliable channel.
  bool reliable = false;
  ReliableOptions rel;
  /// Anti-entropy digest cadence; zero disables the exchange.  Digests
  /// ride the beacon flush, so the effective period is rounded up to
  /// the next beacon.
  SimTime digest_period = SimTime::zero();
  /// Hash buckets per digest (tota/digest.h; clamped to its cap).
  std::uint32_t digest_buckets = 32;
};

class NetSession {
 public:
  /// Transmits one encoded datagram on the shared channel.
  using SendFn = std::function<void(wire::Bytes)>;

  /// Registers net.data.* / net.frame.* / net.sync.* (plus what the
  /// discovery, batcher, and reliable channel register) in `metrics`,
  /// which must outlive the session.
  NetSession(NodeId self, tota::Platform& platform, SessionOptions options,
             SendFn send, obs::MetricsRegistry& metrics);
  ~NetSession();

  NetSession(const NetSession&) = delete;
  NetSession& operator=(const NetSession&) = delete;

  /// Routes upcalls (frames, neighbour up/down, digests) into
  /// `middleware`; pass nullptr to detach.
  void attach(Middleware* middleware) { middleware_ = middleware; }

  /// Starts beaconing (the first beacon flushes immediately) and, after
  /// a stop(), resumes the reliable channel's retransmits.
  void start();
  /// Quiesces every send-side timer: stops discovery silently, cancels
  /// the reliable channel's retransmit timer, and drops anything
  /// pending in the batcher.
  void stop();

  // --- send path ----------------------------------------------------------

  /// Best-effort broadcast of one engine frame (tota::Platform seam).
  void broadcast(wire::Bytes payload);
  /// At-least-once broadcast to the current neighbour set when the
  /// reliable channel is enabled; plain broadcast otherwise.
  void broadcast_reliable(wire::Bytes payload);

  // --- receive path -------------------------------------------------------

  /// One raw datagram off the channel.  Corrupt/foreign bytes count
  /// net.frame.bad and are dropped; everything else is routed per the
  /// table above.
  void on_raw(std::span<const std::uint8_t> bytes);

  // --- introspection ------------------------------------------------------

  [[nodiscard]] NodeId self() const { return self_; }
  [[nodiscard]] Discovery& discovery() { return discovery_; }
  [[nodiscard]] const Discovery& discovery() const { return discovery_; }
  [[nodiscard]] Batcher& batcher() { return batcher_; }
  [[nodiscard]] ReliableChannel& reliable() { return *rel_; }
  [[nodiscard]] const SessionOptions& options() const { return options_; }

 private:
  void on_beacon(std::uint64_t seq, SimTime period);
  void maybe_digest();
  void route_chunk(NodeId sender, const Chunk& chunk);

  NodeId self_;
  tota::Platform& platform_;
  SessionOptions options_;
  Middleware* middleware_ = nullptr;

  Batcher batcher_;
  /// Always constructed: the receiver half (dedup + acks) serves
  /// neighbours with reliability enabled even when ours is off.
  std::unique_ptr<ReliableChannel> rel_;
  Discovery discovery_;

  SimTime next_digest_ = SimTime::zero();

  obs::Counter& data_tx_;
  obs::Counter& data_rx_;
  obs::Counter& data_echo_;
  obs::Counter& frame_bad_;
  obs::Counter& frame_skip_;
  obs::Counter& sync_digest_tx_;
  obs::Counter& sync_digest_rx_;
};

}  // namespace tota::net
