// Batcher — the v2 send path's MTU-aware frame coalescer.
//
// The paper's own cost metric is messages per tuple, and a one-frame-
// per-datagram transport pays the full envelope + syscall + airtime
// price for every 30-byte gradient frame.  The batcher sits between the
// middleware and the raw transport: callers enqueue logical chunks
// (engine frames, HELLO beacons, reliable-channel frames and acks,
// anti-entropy digests) and the batcher packs everything pending into
// as few BATCH datagrams as fit the link MTU.
//
// Flush discipline: the first enqueue after an empty queue schedules a
// flush through Platform::schedule at `flush_delay` (zero by default —
// a *zero-delay* timer still runs strictly after the current event, so
// all traffic generated within one event instant clusters into one
// datagram: a node that receives a 30-frame batch re-broadcasts its 30
// reactions as one datagram, not thirty).  A nonzero delay widens the
// coalescing window at the price of added latency, exactly Nagle's
// trade.
//
// Packing is greedy in enqueue order: a chunk that would overflow the
// current datagram starts the next one; a single chunk larger than the
// MTU is sent alone and counted (net.batch.oversize) — whether the link
// then drops it is the link's business (UdpOptions::mtu, the sim's
// per-link MTU check).
//
// Disabled mode (BatchOptions::enabled == false) is the v1 wire,
// bit-for-bit: hello()/data() emit legacy HELLO/DATA datagrams
// immediately, no timer, no BATCH framing — this is what keeps the
// committed sim baselines byte-identical.  rel()/ack()/digest() have no
// v1 encoding and always use (single-chunk) BATCH datagrams; the
// session layer only enables those features together with batching.
//
// Metrics: net.batch.tx (BATCH datagrams sent), net.batch.chunks
// (chunks carried), net.batch.flush (flush rounds), net.batch.oversize.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "net/datagram.h"
#include "obs/metrics.h"
#include "tota/platform.h"
#include "wire/buffer.h"

namespace tota::net {

struct BatchOptions {
  /// Master switch for the v2 BATCH framing.  Off = legacy v1 datagrams
  /// (the default, so existing worlds and baselines are untouched).
  bool enabled = false;
  /// Pack limit per datagram, bytes (the DeviceProfile / link MTU).
  /// 0 = unlimited: everything pending goes into one datagram.
  std::size_t mtu = 1400;
  /// Most chunks per datagram, clamped to kMaxBatchChunks.
  std::size_t max_chunks = 64;
  /// Coalescing window: how long after the first pending chunk the
  /// flush timer fires.  Zero = same-event-instant clustering only.
  SimTime flush_delay = SimTime::zero();
};

/// Packs `chunks` into as few BATCH datagrams as `options` allows
/// (shared by Batcher and sim::Network's batching path).  Oversize
/// single chunks are emitted alone; `oversize` (optional) counts them.
std::vector<wire::Bytes> pack_batches(NodeId sender,
                                      std::vector<EncodedChunk> chunks,
                                      const BatchOptions& options,
                                      obs::Counter* oversize = nullptr);

class Batcher {
 public:
  /// `send` transmits one encoded datagram (BATCH or legacy v1).
  using SendFn = std::function<void(wire::Bytes)>;

  Batcher(NodeId self, tota::Platform& platform, BatchOptions options,
          SendFn send, obs::MetricsRegistry& metrics);
  ~Batcher();

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  // --- enqueue (all coalesce until the flush timer fires) --------------

  void hello(std::uint64_t seq, SimTime period);
  void data(std::span<const std::uint8_t> frame);
  void rel(std::uint64_t seq, std::uint64_t floor,
           std::span<const std::uint8_t> frame);
  /// Cumulative ack for `peer`'s reliable stream.  Coalesced per peer:
  /// a newer cum for the same peer overwrites the pending chunk (a
  /// cumulative ack makes every older one redundant).
  void ack(NodeId peer, std::uint64_t cum);
  /// Anti-entropy digest (encoded by tota::StoreDigest).  At most one
  /// pending: a newer digest replaces an unsent older one.
  void digest(wire::Bytes body);

  /// Sends everything pending now (also the flush timer's target).
  void flush();

  /// Cancels the pending flush and drops everything queued, including
  /// the coalesced ack/digest slots — the session-stop path: a stopped
  /// node must not transmit.
  void clear();

  [[nodiscard]] std::size_t pending() const { return pending_.size(); }
  [[nodiscard]] const BatchOptions& options() const { return options_; }

 private:
  void enqueue(EncodedChunk chunk);

  NodeId self_;
  tota::Platform& platform_;
  BatchOptions options_;
  SendFn send_;

  std::vector<EncodedChunk> pending_;
  /// Index into pending_ of the pending ACK chunk per peer / the
  /// pending DIGEST chunk, for overwrite-in-place coalescing.
  std::unordered_map<NodeId, std::size_t> ack_slot_;
  std::size_t digest_slot_ = kNoSlot;
  tota::Platform::TimerId flush_timer_ = tota::Platform::kInvalidTimer;

  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  obs::Counter& batch_tx_;
  obs::Counter& batch_chunks_;
  obs::Counter& batch_flush_;
  obs::Counter& batch_oversize_;
};

}  // namespace tota::net
