#include "net/reliable.h"

#include <algorithm>
#include <utility>

namespace tota::net {

ReliableChannel::ReliableChannel(tota::Platform& platform,
                                 ReliableOptions options,
                                 obs::MetricsRegistry& metrics)
    : platform_(platform),
      options_(options),
      rel_tx_(metrics.counter("net.rel.tx")),
      rel_rtx_(metrics.counter("net.rel.rtx")),
      rel_acked_(metrics.counter("net.rel.acked")),
      rel_expired_(metrics.counter("net.rel.expired")),
      rel_rx_(metrics.counter("net.rel.rx")),
      rel_dup_(metrics.counter("net.rel.dup")),
      rel_ooo_(metrics.counter("net.rel.ooo")),
      rel_skipped_(metrics.counter("net.rel.skipped")),
      rel_rx_overflow_(metrics.counter("net.rel.rx_overflow")),
      rel_ack_rx_(metrics.counter("net.rel.ack_rx")) {
  if (options_.window == 0) options_.window = 1;
  if (options_.max_attempts < 1) options_.max_attempts = 1;
}

ReliableChannel::~ReliableChannel() { platform_.cancel(rtx_timer_); }

void ReliableChannel::start() { rearm_timer(); }

void ReliableChannel::stop() {
  platform_.cancel(rtx_timer_);
  rtx_timer_ = tota::Platform::kInvalidTimer;
}

std::uint64_t ReliableChannel::floor() const {
  return window_.empty() ? next_seq_ : window_.front().seq;
}

std::uint64_t ReliableChannel::expected(NodeId from) const {
  const auto it = rx_.find(from);
  return it == rx_.end() ? 0 : it->second.expected;
}

SimTime ReliableChannel::jittered(SimTime base) {
  const double spread =
      1.0 + options_.rtx_jitter * (2.0 * platform_.rng().uniform() - 1.0);
  return base * spread;
}

void ReliableChannel::transmit(InFlight& f) {
  ++f.attempts;
  (f.attempts == 1 ? rel_tx_ : rel_rtx_).inc();
  if (emit_) emit_(f.seq, floor(), f.frame);
  // Backoff for the *next* attempt: initial * backoff^(attempts-1),
  // capped.  Computed by repeated multiply — max_attempts is small.
  SimTime wait = options_.rtx_initial;
  for (int i = 1; i < f.attempts && wait < options_.rtx_cap; ++i) {
    wait = wait * options_.rtx_backoff;
  }
  if (wait > options_.rtx_cap) wait = options_.rtx_cap;
  f.next_due = platform_.now() + jittered(wait);
}

void ReliableChannel::send(wire::Bytes frame, std::vector<NodeId> targets) {
  if (targets.empty()) {
    // Nobody to wait for: one best-effort emission, seq consumed so the
    // stream stays monotonic for receivers that do overhear it.  The
    // floor must be read *before* the seq is consumed: with an empty
    // window floor() tracks next_seq_, and chunk_rel cannot encode a
    // floor above the chunk's own seq (it writes seq - floor).
    const std::uint64_t fl = floor();
    const std::uint64_t seq = next_seq_++;
    rel_tx_.inc();
    if (emit_) emit_(seq, fl, frame);
    return;
  }
  if (window_.size() >= options_.window) {
    queue_.emplace_back(std::move(frame), std::move(targets));
    return;
  }
  InFlight f;
  f.seq = next_seq_++;
  f.frame = std::move(frame);
  f.waiting = std::move(targets);
  window_.push_back(std::move(f));
  transmit(window_.back());
  rearm_timer();
}

void ReliableChannel::drain_queue() {
  bool activated = false;
  while (!queue_.empty() && window_.size() < options_.window) {
    auto [frame, targets] = std::move(queue_.front());
    queue_.pop_front();
    // on_peer_down pruned departed targets from queue_ entries in place,
    // so a queued frame may surface here with nobody left to wait for.
    // Same read-the-floor-before-the-seq order as send()'s empty-target
    // branch.
    if (targets.empty()) {
      const std::uint64_t fl = floor();
      const std::uint64_t seq = next_seq_++;
      rel_tx_.inc();
      if (emit_) emit_(seq, fl, frame);
      continue;
    }
    InFlight f;
    f.seq = next_seq_++;
    f.frame = std::move(frame);
    f.waiting = std::move(targets);
    window_.push_back(std::move(f));
    transmit(window_.back());
    activated = true;
  }
  if (activated) rearm_timer();
}

void ReliableChannel::rearm_timer() {
  platform_.cancel(rtx_timer_);
  rtx_timer_ = tota::Platform::kInvalidTimer;
  if (window_.empty()) return;
  SimTime due = window_.front().next_due;
  for (const auto& f : window_) due = std::min(due, f.next_due);
  const SimTime now = platform_.now();
  const SimTime delay = due > now ? due - now : SimTime::zero();
  rtx_timer_ = platform_.schedule(delay, [this] { on_timer(); });
}

void ReliableChannel::on_timer() {
  rtx_timer_ = tota::Platform::kInvalidTimer;
  const SimTime now = platform_.now();
  for (auto it = window_.begin(); it != window_.end();) {
    if (it->next_due > now) {
      ++it;
      continue;
    }
    if (it->attempts >= options_.max_attempts) {
      // Bounded reliability: give up, advance the floor past the gap
      // (the next emission's floor tells receivers to stop waiting).
      rel_expired_.inc();
      it = window_.erase(it);
      continue;
    }
    transmit(*it);
    ++it;
  }
  drain_queue();
  rearm_timer();
}

void ReliableChannel::on_ack(NodeId from, std::uint64_t cum) {
  rel_ack_rx_.inc();
  bool retired = false;
  for (auto it = window_.begin(); it != window_.end();) {
    if (it->seq > cum) break;  // window is in ascending seq order
    std::erase(it->waiting, from);
    if (it->waiting.empty()) {
      rel_acked_.inc();
      it = window_.erase(it);
      retired = true;
      continue;
    }
    ++it;
  }
  if (retired) {
    drain_queue();
    rearm_timer();
  }
}

void ReliableChannel::on_peer_down(NodeId peer) {
  bool retired = false;
  for (auto it = window_.begin(); it != window_.end();) {
    std::erase(it->waiting, peer);
    if (it->waiting.empty()) {
      rel_acked_.inc();
      it = window_.erase(it);
      retired = true;
      continue;
    }
    ++it;
  }
  for (auto& [frame, targets] : queue_) std::erase(targets, peer);
  rx_.erase(peer);  // a returning peer resyncs from the floor
  if (retired) {
    drain_queue();
    rearm_timer();
  }
}

void ReliableChannel::reack_all() {
  if (!ack_) return;
  for (const auto& [peer, rx] : rx_) {
    if (rx.expected > 0) ack_(peer, rx.expected - 1);
  }
}

void ReliableChannel::deliver_ready(NodeId from, RxStream& rx) {
  for (auto it = rx.buffered.find(rx.expected); it != rx.buffered.end();
       it = rx.buffered.find(rx.expected)) {
    const wire::Bytes frame = std::move(it->second);
    rx.buffered.erase(it);
    ++rx.expected;
    rel_rx_.inc();
    if (deliver_) deliver_(from, frame);
  }
}

void ReliableChannel::on_rel(NodeId from, std::uint64_t seq,
                             std::uint64_t floor,
                             std::span<const std::uint8_t> frame) {
  RxStream& rx = rx_[from];
  if (rx.expected == 0) rx.expected = std::max<std::uint64_t>(floor, 1);
  if (floor > rx.expected) {
    // The sender abandoned everything below `floor` (expiry or retired
    // targets); deliver what we buffered across the gap, skip the rest.
    for (std::uint64_t s = rx.expected; s < floor; ++s) {
      const auto it = rx.buffered.find(s);
      if (it == rx.buffered.end()) {
        rel_skipped_.inc();
        continue;
      }
      const wire::Bytes buffered = std::move(it->second);
      rx.buffered.erase(it);
      rel_rx_.inc();
      if (deliver_) deliver_(from, buffered);
    }
    rx.expected = floor;
    // The new expected may itself already be buffered (it was ahead of
    // the old expectation): drain it now rather than waiting for its
    // retransmission.
    deliver_ready(from, rx);
  }

  if (seq < rx.expected) {
    // A retransmission of something already delivered (or skipped);
    // re-ack so the sender retires it.
    rel_dup_.inc();
  } else if (seq == rx.expected) {
    ++rx.expected;
    rel_rx_.inc();
    if (deliver_) deliver_(from, frame);
    deliver_ready(from, rx);
  } else if (rx.buffered.count(seq) > 0) {
    rel_dup_.inc();  // already buffered ahead
  } else if (rx.buffered.size() >= options_.rx_buffer) {
    rel_rx_overflow_.inc();  // the sender's retransmit covers it
  } else {
    rel_ooo_.inc();
    rx.buffered.emplace(seq, wire::Bytes(frame.begin(), frame.end()));
  }
  if (ack_) ack_(from, rx.expected - 1);
}

}  // namespace tota::net
