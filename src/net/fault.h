// FaultInjector — deterministic adversity for any datagram path.
//
// TOTA's claim (paper §3–§4) is that distributed tuple structures stay
// coherent on an *adverse* dynamic network; a benign loopback run proves
// nothing.  This layer wraps a datagram path — between
// `UdpTransport::drain` and the datagram sink on a live node, or inside
// `sim::Network::broadcast` per delivery — and applies a configurable,
// seeded-Rng-driven mix of the failure modes a connectionless broadcast
// medium actually exhibits (BeeTS makes the same argument for broadcast
// tuple spaces: loss, duplication and reordering are the normal operating
// mode, not the exception):
//
//   drop        the datagram silently disappears
//   duplicate   the datagram is delivered twice
//   reorder     the datagram is held in a bounded queue and released
//               after up to `reorder_window` later datagrams have
//               overtaken it (or after `reorder_max_hold`, drained via a
//               Platform::schedule timer — so a lull in traffic cannot
//               pin a datagram forever)
//   truncate    the datagram is cut short at a random byte
//   corrupt     one random bit is flipped
//   partition   scheduled windows during which the path is severed
//               (bidirectionally, when both directions of a link share
//               the same FaultPlan)
//
// All randomness comes from an Rng forked off the owning platform's
// seeded stream at construction, so a faulted run is exactly as
// reproducible as a benign one: same seed, same faults, same order.  A
// default (all-zero) FaultPlan is `enabled() == false` and its owners
// bypass the injector entirely — zero behavioural change and zero extra
// Rng draws, which is what keeps the committed scenario-bench baselines
// bit-for-bit stable.
//
// Every fault applied is counted (net.fault.*, docs/NET.md), and the
// counters obey a conservation law the soak harness asserts per seed:
//
//   processed == delivered + drop + partition_drop + held()
//
// (duplicates are *extra* deliveries, counted separately as net.fault.dup;
// truncated/corrupted datagrams still count as delivered — they are
// damaged, not lost, and the receiver's decode path accounts for them.)
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "tota/platform.h"
#include "wire/buffer.h"

namespace tota::net {

/// One adversity configuration.  The default-constructed plan is benign
/// (`enabled() == false`); owners must bypass the injector then.
struct FaultPlan {
  /// Probability a datagram is silently dropped.
  double drop = 0.0;
  /// Probability a datagram is delivered twice.
  double duplicate = 0.0;
  /// Probability a datagram is held back for reordering (needs
  /// reorder_window > 0 to take effect).
  double reorder = 0.0;
  /// How many later datagrams may overtake a held one before it is
  /// released; also bounds the hold queue's growth per lull.
  int reorder_window = 0;
  /// Hard time bound on holding a datagram: a traffic lull drains the
  /// hold queue via a scheduled timer instead of pinning it forever.
  SimTime reorder_max_hold = SimTime::from_millis(200);
  /// Probability a datagram is truncated at a random byte boundary.
  double truncate = 0.0;
  /// Probability one random bit of the datagram is flipped.
  double corrupt = 0.0;

  /// A scheduled severance window on this path.  With an empty `group`
  /// the path is cut for everyone; with a non-empty group the path is cut
  /// only between endpoints on opposite sides of the group boundary
  /// (exactly one endpoint inside `group`) — configure both directions of
  /// a link with the same windows for a bidirectional partition.
  struct Partition {
    SimTime start;
    SimTime duration;
    std::vector<NodeId> group;
  };
  std::vector<Partition> partitions;

  /// True when any fault can ever fire; false plans must bypass the
  /// injector (this is what keeps benign runs bit-for-bit unchanged).
  [[nodiscard]] bool enabled() const;

  /// True when a datagram travelling `a` → `b` at `now` falls inside an
  /// active partition window.  Invalid endpoints count as outside every
  /// group, so empty-group (sever-everything) windows still apply to
  /// paths with unknown endpoints.
  [[nodiscard]] bool severs(SimTime now, NodeId a, NodeId b) const;
};

/// Applies one FaultPlan to a stream of datagrams.  Single-threaded,
/// like everything around it; timers and randomness come from the owning
/// Platform, so the injector runs identically under the simulator's
/// virtual clock, a test double, or the live event loop.
class FaultInjector {
 public:
  /// Receives a (possibly damaged) datagram that survived the faults.
  /// Held datagrams keep their Deliver and invoke it at release, so the
  /// callback must stay valid for up to `reorder_max_hold`.
  using Deliver = std::function<void(const wire::Bytes&)>;

  /// Forks the injector's Rng off `platform.rng()` and registers the
  /// net.fault.* counters in `metrics` (both must outlive the injector).
  FaultInjector(FaultPlan plan, tota::Platform& platform,
                obs::MetricsRegistry& metrics);
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Runs one datagram through the plan: delivers it (possibly damaged,
  /// possibly twice), holds it for reordering, or drops it.  `from`/`to`
  /// identify the path's endpoints for group partitions; leave invalid
  /// when unknown (live receive path).
  void process(std::span<const std::uint8_t> bytes, Deliver deliver,
               NodeId from = NodeId{}, NodeId to = NodeId{});

  /// Releases every held datagram immediately (in hold order).  Owners
  /// call this at quiesce/shutdown so nothing stays in flight.
  void flush();

  /// Datagrams currently held for reordering.
  [[nodiscard]] std::size_t held() const { return held_.size(); }

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  struct Held {
    wire::Bytes bytes;
    Deliver deliver;
    int overtakes_left;  // released when this many later datagrams passed
    SimTime deadline;    // …or at this instant, whichever comes first
    bool duplicate;
  };

  void deliver_now(const wire::Bytes& bytes, const Deliver& deliver,
                   bool duplicate);
  /// Moves every held entry matching `pred` out (preserving hold order)
  /// and delivers it; deliveries never count as passing traffic, so a
  /// release cannot cascade releases.
  template <typename Pred>
  void release_if(Pred pred);
  void arm_hold_timer();
  void on_hold_timer();

  FaultPlan plan_;
  tota::Platform& platform_;
  Rng rng_;
  std::deque<Held> held_;
  Platform::TimerId hold_timer_ = Platform::kInvalidTimer;

  obs::Counter& processed_;
  obs::Counter& delivered_;
  obs::Counter& dropped_;
  obs::Counter& duplicated_;
  obs::Counter& reordered_;
  obs::Counter& truncated_;
  obs::Counter& corrupted_;
  obs::Counter& partition_dropped_;
};

}  // namespace tota::net
