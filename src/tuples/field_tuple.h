// FieldTuple — the workhorse propagation pattern of the paper: a tuple
// that spreads breadth-first from its source, hop by hop, maintaining a
// per-node distance ("a tuple incrementing one of its fields as it gets
// propagated identifies a sort of structure of space defining the network
// distances from the source").
//
// Content fields every FieldTuple maintains:
//   name     : string  — application-level label of the structure
//   source   : NodeId  — the injecting node (set automatically at hop 0)
//   hopcount : int     — BFS distance from the source at this node
//
// Subclasses add their own derived fields in update_fields() (e.g. the
// flocking tuple's V-shaped `val`).  Replica resolution is monotone:
// a copy that travelled fewer hops supersedes one that travelled more, so
// each node converges to its true network distance from the source.
//
// An optional scope bounds propagation to `scope` hops from the source
// (the "expanding ring" is cut there).
#pragma once

#include <string>

#include "tota/tuple.h"

namespace tota::tuples {

class FieldTuple : public Tuple {
 public:
  static constexpr int kUnbounded = -1;
  /// Largest representable scope; decode_extra rejects anything outside
  /// [kUnbounded, kMaxScope], and the setter enforces the same bounds so
  /// a locally-legal tuple can never encode a frame remote nodes throw
  /// away.
  static constexpr int kMaxScope = 1 << 24;

  FieldTuple() = default;
  explicit FieldTuple(std::string name, int scope = kUnbounded);

  // --- content accessors ---------------------------------------------------

  [[nodiscard]] std::string name() const {
    return content().at("name").as_string();
  }
  [[nodiscard]] NodeId source() const {
    return content().at("source").as_node();
  }
  [[nodiscard]] int hopcount() const {
    return static_cast<int>(content().at("hopcount").as_int());
  }

  [[nodiscard]] int scope() const { return scope_; }
  /// Throws std::invalid_argument outside [kUnbounded, kMaxScope] — the
  /// exact range decode_extra accepts on the receiving side.
  void set_scope(int scope);

  // --- propagation rule ------------------------------------------------------

  bool decide_enter(const Context& ctx) override;
  void change_content(const Context& ctx) override;
  bool decide_propagate(const Context& ctx) override;
  bool supersedes(const Tuple& stored) const override;

 protected:
  /// Subclass extension point: maintain derived content fields; runs after
  /// source/hopcount are updated for this node.
  virtual void update_fields(const Context& ctx);

  void encode_extra(wire::Writer& w) const override;
  void decode_extra(wire::Reader& r) override;

 private:
  int scope_ = kUnbounded;
};

}  // namespace tota::tuples
