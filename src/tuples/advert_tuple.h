// AdvertTuple — paper §5.2, first solution for information gathering:
//
//   C = (description, location, distance)
//   P = (propagate to all peers hop by hop, increasing the distance field
//        by one at every hop)
//
// An information node (sensor) advertises what it offers; every device can
// read the advert locally and follow it backwards (descending `distance`)
// to physically reach the source "without having to rely on any a priori
// global information about where sensors are located".
#pragma once

#include "tuples/field_tuple.h"

namespace tota::tuples {

class AdvertTuple final : public FieldTuple {
 public:
  static constexpr const char* kTag = "tota.advert";

  AdvertTuple() = default;

  /// `description` is the advertised information ("temperature", "gas
  /// station", …); the source position is stamped automatically from the
  /// location sensor at injection.
  explicit AdvertTuple(std::string description, int scope = kUnbounded)
      : FieldTuple(std::move(description), scope) {}

  [[nodiscard]] std::string description() const { return name(); }
  [[nodiscard]] Vec2 location() const {
    return content().at("location").as_vec2();
  }
  [[nodiscard]] int distance() const {
    return static_cast<int>(content().at("distance").as_int());
  }

  [[nodiscard]] std::string type_tag() const override { return kTag; }
  [[nodiscard]] std::unique_ptr<Tuple> clone() const override {
    return std::make_unique<AdvertTuple>(*this);
  }

 protected:
  void update_fields(const Context& ctx) override {
    if (ctx.hop == 0) content().set("location", ctx.position);
    content().set("distance", ctx.hop);  // the paper's field name
  }
};

}  // namespace tota::tuples
