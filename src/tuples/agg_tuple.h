// In-network aggregation tuples (docs/AGGREGATION.md).
//
// Paper §5 builds *structure* with distributed tuples (hop fields); any
// app wanting a *summary* of that structure — how crowded, how hot, how
// many — still gathered raw tuples back at the source, paying one
// message per node per reading.  Following the in-network aggregation
// literature (Kennedy/Koch/Demers in PAPERS.md), the fold should instead
// happen inside the network, along the dissemination tree the field
// itself defines:
//
//  * AggregationTuple — a predicate QueryTuple subtype that spreads a
//    hop field from the *sink* (the enquirer).  Its replicas' entry
//    parents form a parent→children gradient tree rooted at the sink.
//    Content carries the combiner (count/sum/min/max/avg), the name of
//    the contributing value field, an optional contribution Pattern
//    (what counts, QueryTuple-style), and a per-tuple half-life for
//    value decay.
//
//  * AggReportTuple — a one-hop report a tree node emits toward its
//    designated parent (`via`): the partial aggregate of the node's own
//    contributions plus its children's reports.  Reports are stored at
//    every one-hop neighbour — apply_effects() replaces the reporter's
//    previous report in place (the paper's "deleting/modifying specific
//    tuples in the propagation nodes"), and a neighbour that is *not*
//    the designated parent simply never folds what it stores, which is
//    also what lets an abandoned parent observe a re-parented child.
//
//  * AggSummary — the partial aggregate riding a report: decayed
//    additive mass + contribution count, undecayed extrema, and the
//    stamp the additive parts were last exact at.  Decay is exponential
//    (2^(-age/half_life)), which is memoryless: decaying at a child,
//    shipping, and decaying again at the parent composes to exactly the
//    decay-from-origin factor, so partial folds commute with time.
//
// The folding runtime that ties these together lives in
// tuples/aggregator.h; this header is just the wire types.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "common/clock.h"
#include "tuples/query_tuple.h"

namespace tota::tuples {

enum class AggOp : std::uint8_t { kCount, kSum, kMin, kMax, kAvg };

const char* to_string(AggOp op);
std::optional<AggOp> agg_op_from_string(const std::string& s);

/// 2^(-age/half_life): the decay factor of a contribution aged `age`.
/// half_life <= 0 disables decay (factor 1).  Computed with plain
/// arithmetic (series + ldexp), *not* libm's exp2 — libm results differ
/// by ULPs across platforms, which would break the bit-for-bit bench
/// baselines the CI pins.
[[nodiscard]] double agg_decay_factor(SimTime age, SimTime half_life);

/// A partial aggregate: everything a subtree's contributions reduce to.
/// `sum` and `count` are the decayed additive parts (exact as of
/// `stamp`); `min`/`max` are extrema over the live contributions and do
/// not decay (a maximum does not fade, it expires — the maintenance tick
/// in tuples/aggregator.h prunes contributions past ~10 half-lives).
struct AggSummary {
  double sum = 0.0;
  double count = 0.0;
  double min = 0.0;
  double max = 0.0;
  bool has_extrema = false;
  /// Instant `sum`/`count` were last exact.
  SimTime stamp{};

  /// One fresh contribution of `value` observed at `now`.
  [[nodiscard]] static AggSummary contribution(double value, SimTime now) {
    AggSummary s;
    s.sum = value;
    s.count = 1.0;
    s.min = value;
    s.max = value;
    s.has_extrema = true;
    s.stamp = now;
    return s;
  }

  [[nodiscard]] bool empty() const { return count <= 0.0 && !has_extrema; }

  /// Additive parts decayed from `stamp` to `now` (identity when
  /// half_life <= 0 or now <= stamp).
  [[nodiscard]] AggSummary decayed_to(SimTime now, SimTime half_life) const;

  /// Folds `other` in; both sides are first decayed to `now`.
  void fold(const AggSummary& other, SimTime now, SimTime half_life);

  /// Reduces to the combiner's answer; nullopt when the combiner is
  /// undefined on an empty summary (min/max/avg of nothing).
  [[nodiscard]] std::optional<double> result(AggOp op) const;

  friend bool operator==(const AggSummary&, const AggSummary&) = default;
};

/// The aggregation field: a predicate QueryTuple whose hop gradient is
/// the fold tree.  Inject at the sink ("average temperature within 3
/// hops" = op kAvg, over("temp"), scope 3); every reached node's
/// Aggregator folds upward (tuples/aggregator.h).
class AggregationTuple final : public QueryTuple {
 public:
  static constexpr const char* kTag = "tota.agg";

  AggregationTuple() = default;
  AggregationTuple(std::string name, AggOp op, int scope = kUnbounded);

  /// Which content field of matching tuples contributes the value.
  /// Unset: only kCount works (each match contributes 1).
  AggregationTuple& over(std::string value_field);

  /// What counts as a contribution at each node — same mechanism as
  /// QueryTuple::with_predicate.  Always constrain the type: an
  /// unconstrained pattern would match the aggregation's own report
  /// tuples and double-fold.
  AggregationTuple& matching(const Pattern& contributes);

  /// Contribution values decay as 2^(-age/half_life); zero (default)
  /// disables decay.
  AggregationTuple& with_half_life(SimTime half_life);

  [[nodiscard]] AggOp op() const;
  [[nodiscard]] std::string value_field() const;
  [[nodiscard]] SimTime half_life() const;

  [[nodiscard]] std::string type_tag() const override { return kTag; }
  [[nodiscard]] std::unique_ptr<Tuple> clone() const override {
    return std::make_unique<AggregationTuple>(*this);
  }
};

/// One node's partial aggregate, handed one hop to its neighbourhood.
/// Propagates only from the reporter (hop 0) and is stored at every
/// one-hop receiver; the designated parent (`via`) folds it, everyone
/// else just keeps the latest copy so replacement and re-parenting stay
/// observable.  Not maintained: a report is delivered data, not
/// structure.
class AggReportTuple final : public Tuple {
 public:
  static constexpr const char* kTag = "tota.agg.report";

  AggReportTuple() = default;

  /// `rseq` is the reporter's strictly increasing send counter — it
  /// breaks ordering ties between reports folded within the same clock
  /// microsecond (see decide_enter).
  [[nodiscard]] static std::unique_ptr<AggReportTuple> make(
      const TupleUid& agg, NodeId reporter, NodeId via, int tree_hop,
      const AggSummary& summary, std::uint64_t rseq = 0);

  /// Uid of the AggregationTuple this report folds into.
  [[nodiscard]] TupleUid agg_uid() const;
  [[nodiscard]] NodeId reporter() const {
    return content().at("reporter").as_node();
  }
  /// Designated parent — the only neighbour that folds this report.
  [[nodiscard]] NodeId via() const { return content().at("via").as_node(); }
  /// The reporter's hop in the aggregation tree.
  [[nodiscard]] int tree_hop() const {
    return static_cast<int>(content().at("tree_hop").as_int());
  }
  [[nodiscard]] AggSummary summary() const;

  // --- propagation rule: one hop out, replace in place ------------------
  bool decide_enter(const Context& ctx) override;
  bool decide_store(const Context& ctx) override;
  bool decide_propagate(const Context& ctx) override;
  /// Replaces the reporter's previous report for the same aggregation at
  /// this node (runs before this copy is stored).
  void apply_effects(const Context& ctx) override;
  [[nodiscard]] bool maintained() const override { return false; }

  [[nodiscard]] std::string type_tag() const override { return kTag; }
  [[nodiscard]] std::unique_ptr<Tuple> clone() const override {
    return std::make_unique<AggReportTuple>(*this);
  }
};

}  // namespace tota::tuples
