#include "tuples/field_tuple.h"

#include <stdexcept>
#include <string>

namespace tota::tuples {

FieldTuple::FieldTuple(std::string name, int scope) {
  set_scope(scope);
  content().set("name", std::move(name));
}

void FieldTuple::set_scope(int scope) {
  if (scope < kUnbounded || scope > kMaxScope) {
    throw std::invalid_argument("FieldTuple scope " + std::to_string(scope) +
                                " outside [-1, 2^24]");
  }
  scope_ = scope;
}

bool FieldTuple::decide_enter(const Context& ctx) {
  return scope_ == kUnbounded || ctx.hop <= scope_;
}

void FieldTuple::change_content(const Context& ctx) {
  if (ctx.hop == 0) {
    content().set("source", ctx.self);
    // Source position, re-stamped whenever the (possibly mobile) source
    // re-announces; lets agents turn hop-space fields into directions.
    content().set("origin_pos", ctx.position);
  }
  content().set("hopcount", ctx.hop);
  update_fields(ctx);
}

bool FieldTuple::decide_propagate(const Context& ctx) {
  return scope_ == kUnbounded || ctx.hop < scope_;
}

bool FieldTuple::supersedes(const Tuple& stored) const {
  // Monotone distance update: the copy with the shorter travelled path
  // wins, so hopcount converges to the true BFS distance.
  return hop() < stored.hop();
}

void FieldTuple::update_fields(const Context&) {}

void FieldTuple::encode_extra(wire::Writer& w) const { w.svarint(scope_); }

void FieldTuple::decode_extra(wire::Reader& r) {
  const auto scope = r.svarint();
  if (scope < kUnbounded || scope > kMaxScope) {
    throw wire::DecodeError("bad scope");
  }
  scope_ = static_cast<int>(scope);
}

}  // namespace tota::tuples
