#include "tuples/nav_tuple.h"

namespace tota::tuples {

NavTuple::NavTuple(std::string key, Vec2 target, std::string purpose) {
  content()
      .set("key", std::move(key))
      .set("target", target)
      .set("purpose", std::move(purpose));
}

bool NavTuple::decide_enter(const Context& ctx) {
  if (ctx.hop == 0) return true;
  if (best_ < 0.0) return true;  // first hop out of the requester
  // Strictly greedy: only nodes closer to the target than the last relay
  // carry the navigation forward.
  return distance(ctx.position, target()) < best_;
}

void NavTuple::change_content(const Context& ctx) {
  if (ctx.hop == 0) content().set("source", ctx.self);
  content().set("hopcount", ctx.hop);  // the reply trail's structure
  best_ = distance(ctx.position, target());
}

bool NavTuple::decide_propagate(const Context&) {
  // Always announce; neighbours that are not closer simply refuse entry,
  // and the node where *no* neighbour is closer is the home (detected at
  // the application layer from its coordinate beacons).
  return true;
}

bool NavTuple::supersedes(const Tuple& stored) const {
  // Trail refinement: a copy that reaches this node over fewer hops makes
  // a better reply trail.
  return hop() < stored.hop();
}

void NavTuple::encode_extra(wire::Writer& w) const { w.f64(best_); }

void NavTuple::decode_extra(wire::Reader& r) {
  best_ = r.f64();
  if (!(best_ >= -1.0) || best_ > 1e12) throw wire::DecodeError("bad best");
}

}  // namespace tota::tuples
