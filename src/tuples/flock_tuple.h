// FlockTuple — the motion-coordination field of paper §5.3:
//
//   C = (FLOCK, nodename, val)
//   P = (val is initialized at X, propagate to all the nodes decreasing
//        by one in the first X hops, then increasing val by one for all
//        the further hops)
//
// val(hop) = |X - hop|: a V-shaped field whose minimum sits at distance X
// from the source.  Agents descending their peers' val gradients settle
// at X hops from each other — the bird-flock spacing rule.
#pragma once

#include "tuples/field_tuple.h"

namespace tota::tuples {

class FlockTuple final : public FieldTuple {
 public:
  static constexpr const char* kTag = "tota.flock";

  FlockTuple() = default;

  /// `target_distance` is X, the preferred inter-agent hop distance.
  explicit FlockTuple(int target_distance, int scope = kUnbounded)
      : FieldTuple("FLOCK", scope), target_distance_(target_distance) {}

  [[nodiscard]] int val() const {
    return static_cast<int>(content().at("val").as_int());
  }
  [[nodiscard]] int target_distance() const { return target_distance_; }

  [[nodiscard]] std::string type_tag() const override { return kTag; }
  [[nodiscard]] std::unique_ptr<Tuple> clone() const override {
    return std::make_unique<FlockTuple>(*this);
  }

 protected:
  void update_fields(const Context& ctx) override {
    const int x = target_distance_;
    content().set("val", ctx.hop <= x ? x - ctx.hop : ctx.hop - x);
  }

  void encode_extra(wire::Writer& w) const override {
    FieldTuple::encode_extra(w);
    w.svarint(target_distance_);
  }

  void decode_extra(wire::Reader& r) override {
    FieldTuple::decode_extra(r);
    const auto x = r.svarint();
    if (x < 0 || x > (1 << 20)) throw wire::DecodeError("bad flock distance");
    target_distance_ = static_cast<int>(x);
  }

 private:
  int target_distance_ = 1;
};

}  // namespace tota::tuples
