// NavTuple + DataTuple — the building blocks of content-based routing in
// the TOTA style (paper §5.1: the structure/message mechanism "allows
// TOTA to realize systems providing content-based routing … such as CAN
// and Pastry").
//
// A NavTuple navigates greedily through a coordinate space toward a
// target point: each copy carries the metric distance of its last relay
// (`best`), and a node lets the copy enter only when it sits strictly
// closer to the target.  Along the way it leaves a replica trail whose
// (source, hopcount) fields form a structure that a strict MessageTuple
// can descend back to the requester.  The node where greedy progress
// stops is the key's *home* — the content-addressable rendezvous.
//
// DataTuple is a non-propagating local record the home node keeps for a
// stored key.
#pragma once

#include <string>

#include "tota/tuple.h"

namespace tota::tuples {

class NavTuple : public Tuple {
 public:
  static constexpr const char* kTag = "tota.nav";

  NavTuple() = default;

  /// Navigates toward `target`; `purpose` distinguishes application uses
  /// ("put"/"get"), `key` is the content key.
  NavTuple(std::string key, Vec2 target, std::string purpose);

  [[nodiscard]] std::string key() const {
    return content().at("key").as_string();
  }
  [[nodiscard]] Vec2 target() const {
    return content().at("target").as_vec2();
  }
  [[nodiscard]] std::string purpose() const {
    return content().at("purpose").as_string();
  }
  /// The requesting node (stamped at injection).
  [[nodiscard]] NodeId requester() const {
    return content().at("source").as_node();
  }

  [[nodiscard]] std::string type_tag() const override { return kTag; }
  [[nodiscard]] std::unique_ptr<Tuple> clone() const override {
    return std::make_unique<NavTuple>(*this);
  }

  bool decide_enter(const Context& ctx) override;
  void change_content(const Context& ctx) override;
  /// The trail replica: stored on every node the copy crosses so replies
  /// can descend (source, hopcount); pure data, exempt from structural
  /// maintenance.
  bool decide_store(const Context&) override { return true; }
  bool decide_propagate(const Context& ctx) override;
  bool supersedes(const Tuple& stored) const override;
  [[nodiscard]] bool maintained() const override { return false; }

 protected:
  void encode_extra(wire::Writer& w) const override;
  void decode_extra(wire::Reader& r) override;

 private:
  double best_ = -1.0;  // metric distance at the last relay; <0 at start
};

/// A locally stored key/value record; never propagates.
class DataTuple final : public Tuple {
 public:
  static constexpr const char* kTag = "tota.data";

  DataTuple() = default;
  DataTuple(std::string key, std::string value) {
    content().set("key", std::move(key)).set("value", std::move(value));
  }

  [[nodiscard]] std::string key() const {
    return content().at("key").as_string();
  }
  [[nodiscard]] std::string value() const {
    return content().at("value").as_string();
  }

  [[nodiscard]] std::string type_tag() const override { return kTag; }
  [[nodiscard]] std::unique_ptr<Tuple> clone() const override {
    return std::make_unique<DataTuple>(*this);
  }
  bool decide_propagate(const Context&) override { return false; }
  [[nodiscard]] bool maintained() const override { return false; }
};

}  // namespace tota::tuples
