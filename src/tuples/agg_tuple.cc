#include "tuples/agg_tuple.h"

#include <cmath>
#include <utility>

#include "tota/pattern.h"
#include "tota/tuple_space.h"

namespace tota::tuples {

const char* to_string(AggOp op) {
  switch (op) {
    case AggOp::kCount: return "count";
    case AggOp::kSum: return "sum";
    case AggOp::kMin: return "min";
    case AggOp::kMax: return "max";
    case AggOp::kAvg: return "avg";
  }
  return "?";
}

std::optional<AggOp> agg_op_from_string(const std::string& s) {
  if (s == "count") return AggOp::kCount;
  if (s == "sum") return AggOp::kSum;
  if (s == "min") return AggOp::kMin;
  if (s == "max") return AggOp::kMax;
  if (s == "avg") return AggOp::kAvg;
  return std::nullopt;
}

double agg_decay_factor(SimTime age, SimTime half_life) {
  if (half_life.micros() <= 0 || age.micros() <= 0) return 1.0;
  const double x = static_cast<double>(age.micros()) /
                   static_cast<double>(half_life.micros());
  // Below the smallest subnormal anyway.
  if (x >= 1075.0) return 0.0;
  const double n = std::floor(x);
  const double f = x - n;  // in [0, 1)
  // 2^-f = e^(-f ln 2) by its series: plain +*/ only, so the value is
  // bit-identical everywhere (libm exp2 is not).  |t| <= ln 2, so 18
  // terms put the truncation error below one double ULP.
  const double t = -f * 0.693147180559945309417232121458;
  double term = 1.0;
  double sum = 1.0;
  for (int k = 1; k <= 18; ++k) {
    term *= t / static_cast<double>(k);
    sum += term;
  }
  return std::ldexp(sum, -static_cast<int>(n));
}

AggSummary AggSummary::decayed_to(SimTime now, SimTime half_life) const {
  AggSummary out = *this;
  if (now.micros() > stamp.micros()) {
    const double k =
        agg_decay_factor(SimTime(now.micros() - stamp.micros()), half_life);
    if (k != 1.0) {
      out.sum *= k;
      out.count *= k;
    }
    out.stamp = now;
  }
  return out;
}

void AggSummary::fold(const AggSummary& other, SimTime now,
                      SimTime half_life) {
  const AggSummary a = decayed_to(now, half_life);
  const AggSummary b = other.decayed_to(now, half_life);
  sum = a.sum + b.sum;
  count = a.count + b.count;
  stamp = now;
  has_extrema = a.has_extrema || b.has_extrema;
  if (a.has_extrema && b.has_extrema) {
    min = a.min < b.min ? a.min : b.min;
    max = a.max > b.max ? a.max : b.max;
  } else if (b.has_extrema) {
    min = b.min;
    max = b.max;
  }
}

std::optional<double> AggSummary::result(AggOp op) const {
  switch (op) {
    case AggOp::kCount:
      return count;
    case AggOp::kSum:
      return sum;
    case AggOp::kMin:
      if (!has_extrema) return std::nullopt;
      return min;
    case AggOp::kMax:
      if (!has_extrema) return std::nullopt;
      return max;
    case AggOp::kAvg:
      if (count <= 0.0) return std::nullopt;
      return sum / count;
  }
  return std::nullopt;
}

// --- AggregationTuple -------------------------------------------------------

AggregationTuple::AggregationTuple(std::string name, AggOp op, int scope)
    : QueryTuple(std::move(name), scope) {
  content().set("agg_op", std::string(tuples::to_string(op)));
}

AggregationTuple& AggregationTuple::over(std::string value_field) {
  content().set("agg_field", std::move(value_field));
  return *this;
}

AggregationTuple& AggregationTuple::matching(const Pattern& contributes) {
  with_predicate(contributes);
  return *this;
}

AggregationTuple& AggregationTuple::with_half_life(SimTime half_life) {
  content().set("agg_hl", half_life.micros());
  return *this;
}

AggOp AggregationTuple::op() const {
  const auto v = content().find("agg_op");
  if (!v.has_value()) return AggOp::kCount;
  const auto op = agg_op_from_string(v->as_string());
  return op.value_or(AggOp::kCount);
}

std::string AggregationTuple::value_field() const {
  const auto v = content().find("agg_field");
  return v.has_value() ? v->as_string() : std::string();
}

SimTime AggregationTuple::half_life() const {
  const auto v = content().find("agg_hl");
  return v.has_value() ? SimTime(v->as_int()) : SimTime::zero();
}

// --- AggReportTuple ---------------------------------------------------------

std::unique_ptr<AggReportTuple> AggReportTuple::make(
    const TupleUid& agg, NodeId reporter, NodeId via, int tree_hop,
    const AggSummary& s, std::uint64_t rseq) {
  auto t = std::make_unique<AggReportTuple>();
  auto& c = t->content();
  c.set("agg_origin", agg.origin());
  c.set("agg_seq", static_cast<std::int64_t>(agg.sequence()));
  c.set("reporter", reporter);
  c.set("via", via);
  c.set("tree_hop", tree_hop);
  c.set("sum", s.sum);
  c.set("cnt", s.count);
  if (s.has_extrema) {
    c.set("min", s.min);
    c.set("max", s.max);
  }
  c.set("stamp", s.stamp.micros());
  c.set("rseq", static_cast<std::int64_t>(rseq));
  return t;
}

TupleUid AggReportTuple::agg_uid() const {
  return TupleUid(content().at("agg_origin").as_node(),
                  static_cast<std::uint64_t>(content().at("agg_seq").as_int()));
}

AggSummary AggReportTuple::summary() const {
  AggSummary s;
  s.sum = content().at("sum").as_number();
  s.count = content().at("cnt").as_number();
  const auto mn = content().find("min");
  const auto mx = content().find("max");
  if (mn.has_value() && mx.has_value()) {
    s.min = mn->as_number();
    s.max = mx->as_number();
    s.has_extrema = true;
  }
  s.stamp = SimTime(content().at("stamp").as_int());
  return s;
}

bool AggReportTuple::decide_enter(const Context& ctx) {
  if (ctx.hop > 1) return false;
  if (ctx.hop == 1) {
    // Radio jitter can reorder successive reports from the same
    // reporter, and last-arrival-wins storage would then wedge a parent
    // on a stale summary.  The (fold stamp, send counter) pair is
    // strictly monotone per reporter — two zero-delay flushes can share
    // a clock microsecond, hence the rseq tie-break — so an arrival
    // older than the stored copy is late noise: refuse it at the door.
    Pattern prev = Pattern::of_type(kTag);
    prev.eq("agg_origin", content().at("agg_origin"))
        .eq("agg_seq", content().at("agg_seq"))
        .eq("reporter", content().at("reporter"));
    const std::int64_t my_stamp = content().at("stamp").as_int();
    const auto my_rseq_v = content().find("rseq");
    const std::int64_t my_rseq =
        my_rseq_v.has_value() ? my_rseq_v->as_int() : 0;
    for (const Tuple* stored : ctx.space.peek(prev)) {
      const auto stamp = stored->content().find("stamp");
      if (!stamp.has_value()) continue;
      const auto rseq = stored->content().find("rseq");
      const std::int64_t their_rseq =
          rseq.has_value() ? rseq->as_int() : 0;
      if (std::pair(stamp->as_int(), their_rseq) >
          std::pair(my_stamp, my_rseq)) {
        return false;
      }
    }
  }
  return true;
}

bool AggReportTuple::decide_store(const Context& ctx) { return ctx.hop == 1; }

bool AggReportTuple::decide_propagate(const Context& ctx) {
  return ctx.hop == 0;
}

void AggReportTuple::apply_effects(const Context& ctx) {
  if (ctx.hop != 1 || ctx.ops == nullptr) return;
  // One live report per (aggregation, reporter) at any node: this runs
  // before the new copy is stored, so taking every match removes exactly
  // the predecessor(s).
  Pattern prev = Pattern::of_type(kTag);
  prev.eq("agg_origin", content().at("agg_origin"))
      .eq("agg_seq", content().at("agg_seq"))
      .eq("reporter", content().at("reporter"));
  ctx.ops->take_local(prev);
}

}  // namespace tota::tuples
