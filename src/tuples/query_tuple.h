// QueryTuple — paper §5.2, second solution (request/response gathering):
//
// "user devices can inject tuples describing the information they are
// looking for … query tuples create a structure to be used by answer
// tuples to reach the enquiring device."
//
// A QueryTuple is a distance field whose `name` is the query string and
// whose source is the enquirer ("home").  Information nodes subscribe to
// query arrivals and respond with an AnswerTuple that descends the query
// field back to the enquirer — reproducing the Roman/Julien/Huang
// network-abstractions pattern entirely inside TOTA.
#pragma once

#include <optional>

#include "tota/pattern.h"
#include "tuples/field_tuple.h"
#include "wire/buffer.h"

namespace tota::tuples {

class QueryTuple : public FieldTuple {
 public:
  static constexpr const char* kTag = "tota.query";
  /// Content field carrying an encoded Pattern (tota/pattern.h).
  static constexpr const char* kPatternField = "pattern";

  QueryTuple() = default;

  /// `what` describes the requested information; `scope` bounds the
  /// search ring ("all gas stations within 10 miles" style interest
  /// scopes become hop scopes here).
  explicit QueryTuple(std::string what, int scope = kUnbounded)
      : FieldTuple(std::move(what), scope) {}

  [[nodiscard]] std::string what() const { return name(); }
  /// The enquiring node (the field's source).
  [[nodiscard]] NodeId home() const { return source(); }

  /// Attaches a structured predicate, so the query carries *what to
  /// match* — not just a name — to every node it reaches.  Rides the
  /// tuple's ordinary content, so it round-trips the wire codec like any
  /// other field.
  QueryTuple& with_predicate(const Pattern& pattern) {
    wire::Writer w;
    pattern.encode(w);
    content().set(kPatternField, w.take());
    return *this;
  }

  [[nodiscard]] bool has_predicate() const {
    return content().has(kPatternField);
  }

  /// The attached predicate, if any.  Decoding is bounds-checked; a
  /// malformed blob (hostile remote) throws wire::DecodeError.
  [[nodiscard]] std::optional<Pattern> predicate() const {
    const auto blob = content().find(kPatternField);
    if (!blob) return std::nullopt;
    wire::Reader r(blob->as_blob());
    Pattern p = Pattern::decode(r);
    r.expect_done();
    return p;
  }

  [[nodiscard]] std::string type_tag() const override { return kTag; }
  [[nodiscard]] std::unique_ptr<Tuple> clone() const override {
    return std::make_unique<QueryTuple>(*this);
  }
};

}  // namespace tota::tuples
