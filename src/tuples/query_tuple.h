// QueryTuple — paper §5.2, second solution (request/response gathering):
//
// "user devices can inject tuples describing the information they are
// looking for … query tuples create a structure to be used by answer
// tuples to reach the enquiring device."
//
// A QueryTuple is a distance field whose `name` is the query string and
// whose source is the enquirer ("home").  Information nodes subscribe to
// query arrivals and respond with an AnswerTuple that descends the query
// field back to the enquirer — reproducing the Roman/Julien/Huang
// network-abstractions pattern entirely inside TOTA.
#pragma once

#include "tuples/field_tuple.h"

namespace tota::tuples {

class QueryTuple final : public FieldTuple {
 public:
  static constexpr const char* kTag = "tota.query";

  QueryTuple() = default;

  /// `what` describes the requested information; `scope` bounds the
  /// search ring ("all gas stations within 10 miles" style interest
  /// scopes become hop scopes here).
  explicit QueryTuple(std::string what, int scope = kUnbounded)
      : FieldTuple(std::move(what), scope) {}

  [[nodiscard]] std::string what() const { return name(); }
  /// The enquiring node (the field's source).
  [[nodiscard]] NodeId home() const { return source(); }

  [[nodiscard]] std::string type_tag() const override { return kTag; }
  [[nodiscard]] std::unique_ptr<Tuple> clone() const override {
    return std::make_unique<QueryTuple>(*this);
  }
};

}  // namespace tota::tuples
