// Aggregator — the per-node folding runtime of the in-network
// aggregation subsystem (docs/AGGREGATION.md; wire types in
// tuples/agg_tuple.h).
//
// One Aggregator rides on one Middleware and is entirely reactive: it
// keeps three kinds of continuous queries (docs/QUERY.md) open against
// the node's tuple space —
//
//   1. every AggregationTuple replica (tree membership, re-parenting,
//      retraction),
//   2. per aggregation, the contribution pattern (which local tuples
//      count right now),
//   3. per aggregation, the stored AggReportTuples (children's partial
//      aggregates)
//
// — and re-folds *incrementally* from the change stream: a put/replace/
// retract updates exactly one map entry and marks the tree dirty; the
// space is never re-scanned.  Dirty trees are folded and re-reported on
// a coalescing zero-delay flush timer, so a burst of deltas costs one
// fold, and flush-time effects (injecting reports, taking stale ones)
// never run inside a space-mutation callback — the TupleSpace listener
// contract forbids reentrant mutation, so delta handlers only touch
// Aggregator state and schedule the flush.
//
// The fold itself is degree-bounded: own sensor + local contributions +
// one stored summary per child whose report designates this node
// (`via == self`) and who is still a neighbour.  Reports travel one hop
// toward the sink, so a change |tree| hops deep reaches the sink after
// |tree| radio hops of cascading re-reports — O(depth) messages, not
// O(nodes) (bench/bench_aggregation.cc measures exactly this against
// the naive gather).
//
// Value decay and expiry run on the maintenance tick
// (MaintenanceOptions::agg_decay_tick): fully-decayed contributions are
// pruned, and with `refresh_on_tick` the node re-sends its report each
// tick — the recovery path for duty-cycled receivers that slept through
// a report (net/device_profile.h).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "tota/middleware.h"
#include "tuples/agg_tuple.h"

namespace tota::tuples {

struct AggregatorOptions {
  /// Decay/refresh tick period; zero inherits the middleware's
  /// MaintenanceOptions::agg_decay_tick.
  SimTime tick = SimTime::zero();
  /// Re-send this node's report every tick even when unchanged —
  /// recovers reports lost to sleeping or lossy receivers at a bounded
  /// one-message-per-node-per-tick cost.
  bool refresh_on_tick = false;
  /// A contribution older than this many half-lives is pruned (its
  /// decay factor is below 2^-10 — noise).  Only applies to decaying
  /// aggregations.
  double expiry_half_lives = 10.0;
};

class Aggregator {
 public:
  /// `mw` must outlive the Aggregator.  Registers the agg.* instruments
  /// on the middleware's hub (docs/OBSERVABILITY.md).
  explicit Aggregator(Middleware& mw, AggregatorOptions opts = {});
  ~Aggregator();

  Aggregator(const Aggregator&) = delete;
  Aggregator& operator=(const Aggregator&) = delete;

  /// Injects `spec` from this node — this node becomes the sink the
  /// tree folds toward.  Read the answer with result()/summary().
  TupleUid ask(std::unique_ptr<AggregationTuple> spec);

  /// Sets / clears this node's direct sensor contribution to every
  /// aggregation named `name` — the pattern-less way to feed a tree
  /// (CrowdDensity-style apps use contribution patterns instead).
  void set_sensor(const std::string& name, double value);
  void clear_sensor(const std::string& name);

  /// The folded subtree summary for the aggregation named `name` at
  /// this node, decayed to now.  At the sink the subtree is the whole
  /// in-scope network; nullopt when this node is not in that tree.
  [[nodiscard]] std::optional<AggSummary> summary(
      const std::string& name) const;

  /// summary() reduced by the aggregation's combiner (nullopt when not
  /// in the tree, or min/max/avg over an empty summary).
  [[nodiscard]] std::optional<double> result(const std::string& name) const;

  /// Aggregation trees this node currently participates in.
  [[nodiscard]] std::size_t active() const { return states_.size(); }
  /// This node's hop in the tree of `name` (-1 when not a member).
  [[nodiscard]] int tree_hop(const std::string& name) const;

 private:
  struct Contribution {
    double value = 0.0;
    SimTime stamp{};
  };
  /// The latest stored report of one neighbour (folded only when
  /// via == self and the reporter is still a neighbour).
  struct ChildReport {
    NodeId via{};
    int tree_hop = 0;
    AggSummary summary;
  };
  struct AggState {
    TupleUid uid;
    std::string name;
    AggOp op = AggOp::kCount;
    std::string field;
    std::optional<Pattern> contributes;
    SimTime half_life{};
    int hop = 0;
    NodeId via{};  // designated parent; invalid at the sink
    QueryId report_query = 0;
    QueryId contrib_query = 0;
    std::map<TupleUid, Contribution> local;
    std::map<NodeId, ChildReport> children;
    std::optional<AggSummary> last_reported;
    bool dirty = true;
  };

  // Delta handlers: map updates + dirty marking only (they run inside
  // space mutations — see the header essay).
  void on_agg_delta(const QueryDelta& delta);
  void on_report_delta(const TupleUid& agg, const QueryDelta& delta);
  void on_contrib_delta(const TupleUid& agg, const QueryDelta& delta);
  void on_neighbor_down(NodeId neighbor);
  /// A link appeared: force-re-report so the newcomer's cached copies of
  /// our reports (possibly stale from a blackout) get replaced — the
  /// report-layer analogue of engine link-up re-propagation.
  void on_neighbor_up();

  void schedule_flush();
  /// Reconciles tree membership with the space, applies queued
  /// neighbour-downs, folds dirty trees, and re-reports.
  void flush();
  void sync_membership();
  void adopt(const TupleSpace::Entry& entry);
  void teardown(AggState& state);
  /// True when `state.via` cannot fold our report: gone from the
  /// neighbourhood, or drifted to a depth other than `state.hop - 1`
  /// (judged by its own stored report).
  [[nodiscard]] bool parent_unusable(const AggState& state) const;
  /// Picks a new designated parent from stored parent-ring reports when
  /// the current one became unusable.
  void reparent(AggState& state);
  void fold_and_report(AggState& state, SimTime now, bool force);
  [[nodiscard]] AggSummary fold(const AggState& state, SimTime now) const;
  [[nodiscard]] double contribution_value(const AggState& state,
                                          const Tuple& tuple,
                                          bool* ok) const;
  [[nodiscard]] bool is_neighbor(NodeId id) const;
  [[nodiscard]] const AggState* find_by_name(const std::string& name) const;

  void ensure_tick();
  void tick();

  Middleware& mw_;
  AggregatorOptions opts_;
  SimTime tick_period_;
  QueryId agg_query_ = 0;
  SubscriptionId down_sub_ = 0;
  SubscriptionId up_sub_ = 0;
  std::map<TupleUid, AggState> states_;
  std::map<std::string, Contribution> sensors_;
  /// Aggregations whose replica changed since the last flush
  /// (membership is reconciled against the space there).
  std::vector<TupleUid> touched_;
  std::vector<NodeId> pending_downs_;
  bool flush_pending_ = false;
  /// Set across flush() so effects it causes coalesce into this flush
  /// instead of scheduling another.
  bool in_flush_ = false;
  bool tick_scheduled_ = false;
  bool force_report_ = false;
  /// Strictly increasing send counter stamped into every outgoing
  /// report — breaks same-microsecond ordering ties at receivers.
  std::uint64_t report_seq_ = 0;
  /// Timers check this before touching a possibly-destroyed Aggregator.
  std::shared_ptr<bool> alive_;

  obs::Counter& folds_;
  obs::Counter& reports_tx_;
  obs::Counter& deltas_;
  obs::Counter& flushes_;
  obs::Counter& ticks_;
  obs::Counter& prunes_;
  obs::Counter& reparents_;
};

}  // namespace tota::tuples
