#include "tuples/modifier_tuple.h"

#include "tota/pattern.h"

namespace tota::tuples {

void ModifierTuple::apply_effects(const Context& ctx) {
  if (ctx.ops == nullptr) return;
  Pattern pattern;
  if (!target_type_.empty()) pattern.type(target_type_);
  for (const auto& [name, value] : field_equals_) pattern.eq(name, value);
  ctx.ops->take_local(pattern);
}

void ModifierTuple::encode_extra(wire::Writer& w) const {
  w.string(target_type_);
  w.svarint(scope_);
  w.uvarint(field_equals_.size());
  for (const auto& [name, value] : field_equals_) {
    w.string(name);
    value.encode(w);
  }
}

void ModifierTuple::decode_extra(wire::Reader& r) {
  target_type_ = r.string();
  const auto scope = r.svarint();
  if (scope < -1 || scope > (1 << 24)) throw wire::DecodeError("bad scope");
  scope_ = static_cast<int>(scope);
  const auto n = r.uvarint();
  if (n > 256) throw wire::DecodeError("too many match fields");
  field_equals_.clear();
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name = r.string();
    field_equals_.emplace_back(std::move(name), wire::Value::decode(r));
  }
}

}  // namespace tota::tuples
