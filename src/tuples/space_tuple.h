// SpaceTuple — physically-scoped propagation.
//
// "By relying on data acquired by proper physical localization devices,
// like GPS systems or Wi-Fi triangulation, tuples CAN provide a structure
// of space based on the actual physical location of devices and thus
// enabling a tuple to be propagated, say, at most for 10 meters from its
// source."
//
// The source stamps its position into the content; every node computes
// its metric distance from that origin and the tuple lives only within
// `radius_m`.  Replica resolution prefers the metrically closer reading
// (under mobility the same node's distance changes; the freshest smaller
// value wins, and maintenance retracts replicas that drift out of scope).
#pragma once

#include "tuples/field_tuple.h"

namespace tota::tuples {

class SpaceTuple final : public FieldTuple {
 public:
  static constexpr const char* kTag = "tota.space";

  SpaceTuple() = default;

  SpaceTuple(std::string name, double radius_m)
      : FieldTuple(std::move(name), kUnbounded), radius_m_(radius_m) {}

  [[nodiscard]] Vec2 origin() const {
    return content().at("origin_pos").as_vec2();
  }
  [[nodiscard]] double distance_m() const {
    return content().at("distance_m").as_double();
  }
  [[nodiscard]] double radius_m() const { return radius_m_; }

  [[nodiscard]] std::string type_tag() const override { return kTag; }
  [[nodiscard]] std::unique_ptr<Tuple> clone() const override {
    return std::make_unique<SpaceTuple>(*this);
  }

  bool decide_enter(const Context& ctx) override {
    if (ctx.hop == 0) return true;
    return distance(ctx.position, origin()) <= radius_m_;
  }

  bool decide_propagate(const Context& ctx) override {
    // Nodes at the rim still broadcast; receivers beyond the radius
    // reject on entry.  Cheap (one frame) and keeps the rim complete.
    (void)ctx;
    return true;
  }

 protected:
  void update_fields(const Context& ctx) override {
    if (ctx.hop == 0) content().set("origin_pos", ctx.position);
    content().set("distance_m", distance(ctx.position, origin()));
  }

  void encode_extra(wire::Writer& w) const override {
    FieldTuple::encode_extra(w);
    w.f64(radius_m_);
  }

  void decode_extra(wire::Reader& r) override {
    FieldTuple::decode_extra(r);
    radius_m_ = r.f64();
    if (!(radius_m_ >= 0.0) || radius_m_ > 1e9) {
      throw wire::DecodeError("bad radius");
    }
  }

 private:
  double radius_m_ = 0.0;
};

/// DirectionTuple — propagation confined to an angular sector ("the
/// spatial direction of propagation", Sec. 3).  A node enters the tuple
/// only when it lies within `half_angle` of the source's chosen bearing
/// (the first hop is exempt so the sector has a base to grow from).
class DirectionTuple final : public FieldTuple {
 public:
  static constexpr const char* kTag = "tota.direction";

  DirectionTuple() = default;

  DirectionTuple(std::string name, Vec2 bearing, double half_angle_rad,
                 int scope = kUnbounded)
      : FieldTuple(std::move(name), scope),
        bearing_(bearing.normalized()),
        cos_half_angle_(std::cos(half_angle_rad)) {}

  [[nodiscard]] Vec2 origin() const {
    return content().at("origin_pos").as_vec2();
  }

  [[nodiscard]] std::string type_tag() const override { return kTag; }
  [[nodiscard]] std::unique_ptr<Tuple> clone() const override {
    return std::make_unique<DirectionTuple>(*this);
  }

  bool decide_enter(const Context& ctx) override {
    if (!FieldTuple::decide_enter(ctx)) return false;
    if (ctx.hop <= 1) return true;
    const Vec2 v = (ctx.position - origin()).normalized();
    if (v == Vec2{}) return true;  // standing on the origin
    return dot(v, bearing_) >= cos_half_angle_;
  }

 protected:
  void update_fields(const Context& ctx) override {
    if (ctx.hop == 0) content().set("origin_pos", ctx.position);
  }

  void encode_extra(wire::Writer& w) const override {
    FieldTuple::encode_extra(w);
    w.f64(bearing_.x);
    w.f64(bearing_.y);
    w.f64(cos_half_angle_);
  }

  void decode_extra(wire::Reader& r) override {
    FieldTuple::decode_extra(r);
    bearing_.x = r.f64();
    bearing_.y = r.f64();
    cos_half_angle_ = r.f64();
    if (!(cos_half_angle_ >= -1.0 && cos_half_angle_ <= 1.0)) {
      throw wire::DecodeError("bad sector angle");
    }
  }

 private:
  Vec2 bearing_{1.0, 0.0};
  double cos_half_angle_ = -1.0;
};

}  // namespace tota::tuples
