// One-stop include and registration for the standard tuple library.
#pragma once

#include "tuples/advert_tuple.h"
#include "tuples/agg_tuple.h"
#include "tuples/field_tuple.h"
#include "tuples/flock_tuple.h"
#include "tuples/gradient_tuple.h"
#include "tuples/message_tuple.h"
#include "tuples/modifier_tuple.h"
#include "tuples/nav_tuple.h"
#include "tuples/query_tuple.h"
#include "tuples/space_tuple.h"

namespace tota::tuples {

/// Registers every standard tuple class in the process-wide registry so
/// received frames decode to the right subclasses.  Idempotent; call once
/// at startup (emu::World does this automatically).
void register_standard_tuples();

}  // namespace tota::tuples
