// ModifierTuple — a tuple that edits the nodes it crosses.
//
// The paper (Sec. 4.3) lists "propagating by deleting/modifying specific
// tuples in the propagation nodes (this can be used to supply the lack of
// a delete primitive in the API)" among the patterns the Tuple class can
// express.  A ModifierTuple floods a (possibly hop-scoped) region and
// removes, on every node it enters, the stored tuples matching its match
// spec.  It stores nothing itself and leaves no trace beyond the
// kTupleRemoved events it triggers.
//
// The match spec is the serializable subset of Pattern: an optional type
// tag plus exact field-equality constraints.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "tota/tuple.h"

namespace tota::tuples {

class ModifierTuple final : public Tuple {
 public:
  static constexpr const char* kTag = "tota.modifier";
  static constexpr int kUnbounded = -1;

  ModifierTuple() = default;

  /// Deletes tuples of `target_type` (empty = any type) matching all
  /// `field_equals` constraints, on every node within `scope` hops.
  explicit ModifierTuple(
      std::string target_type,
      std::vector<std::pair<std::string, wire::Value>> field_equals = {},
      int scope = kUnbounded)
      : target_type_(std::move(target_type)),
        field_equals_(std::move(field_equals)),
        scope_(scope) {}

  [[nodiscard]] std::string type_tag() const override { return kTag; }
  [[nodiscard]] std::unique_ptr<Tuple> clone() const override {
    return std::make_unique<ModifierTuple>(*this);
  }

  bool decide_enter(const Context& ctx) override {
    return scope_ == kUnbounded || ctx.hop <= scope_;
  }

  bool decide_store(const Context&) override { return false; }

  bool decide_propagate(const Context& ctx) override {
    return scope_ == kUnbounded || ctx.hop < scope_;
  }

  void apply_effects(const Context& ctx) override;

 protected:
  void encode_extra(wire::Writer& w) const override;
  void decode_extra(wire::Reader& r) override;

 private:
  std::string target_type_;
  std::vector<std::pair<std::string, wire::Value>> field_equals_;
  int scope_ = kUnbounded;
};

}  // namespace tota::tuples
