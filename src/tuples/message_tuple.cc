#include "tuples/message_tuple.h"

#include "tota/pattern.h"
#include "tota/tuple_space.h"
#include "tuples/query_tuple.h"

namespace tota::tuples {

MessageTuple::MessageTuple(NodeId receiver, std::string payload,
                           std::string structure_name, bool strict)
    : structure_name_(std::move(structure_name)), strict_(strict) {
  content()
      .set("receiver", receiver)
      .set("payload", std::move(payload));
}

std::optional<int> MessageTuple::structure_value(const Context& ctx) const {
  Pattern pattern;
  pattern.eq("source", receiver()).exists("hopcount");
  if (!structure_name_.empty()) pattern.eq("name", structure_name_);
  std::optional<int> best;
  for (const Tuple* t : ctx.space.peek(pattern)) {
    const int h = static_cast<int>(t->content().at("hopcount").as_int());
    if (!best || h < *best) best = h;
  }
  return best;
}

bool MessageTuple::decide_enter(const Context& ctx) {
  if (ctx.hop == 0) return true;           // injection
  if (ctx.self == receiver()) return true; // destination reached
  const auto here = structure_value(ctx);
  if (strict_) {
    // Trail-following mode: downhill on the structure or nowhere.
    return here && (best_ < 0 || *here < best_);
  }
  if (best_ < 0) return true;  // sender region had no structure: flooding
  if (!here) return true;      // structure ends here: fall back to flooding
  return *here < best_;        // strictly downhill only
}

void MessageTuple::change_content(const Context& ctx) {
  if (ctx.hop == 0) content().set("sender", ctx.self);
  const auto here = structure_value(ctx);
  if (here) best_ = *here;
}

bool MessageTuple::decide_store(const Context& ctx) {
  // Only the receiver keeps the message; everywhere else it passes through.
  return ctx.self == receiver();
}

bool MessageTuple::decide_propagate(const Context& ctx) {
  return ctx.self != receiver();
}

void MessageTuple::encode_extra(wire::Writer& w) const {
  w.string(structure_name_);
  w.svarint(best_);
  w.boolean(strict_);
}

void MessageTuple::decode_extra(wire::Reader& r) {
  structure_name_ = r.string();
  const auto best = r.svarint();
  if (best < -1 || best > (1 << 24)) throw wire::DecodeError("bad best");
  best_ = static_cast<int>(best);
  strict_ = r.boolean();
}

AnswerTuple::AnswerTuple(NodeId home, std::string query_what,
                         std::string payload)
    : MessageTuple(home, std::move(payload)) {
  content().set("what", std::move(query_what));
}

std::optional<int> AnswerTuple::structure_value(const Context& ctx) const {
  // Descend specifically the enquirer's query field.
  Pattern pattern = Pattern::of_type(QueryTuple::kTag);
  pattern.eq("source", receiver()).exists("hopcount");
  std::optional<int> best;
  for (const Tuple* t : ctx.space.peek(pattern)) {
    const int h = static_cast<int>(t->content().at("hopcount").as_int());
    if (!best || h < *best) best = h;
  }
  return best;
}

}  // namespace tota::tuples
