// MessageTuple — the paper's §5.1 message:
//
//   C = (message, sender, receiver, message)
//   P = (if a structure tuple having my same receiver can be found in the
//        local node, follow downhill its hopcount, otherwise propagate to
//        all the nodes)
//
// "Downhill" over a broadcast medium: each relay stamps the copy with the
// structure value at its own node (`best`); a node receiving the copy
// enters only if its own structure value is strictly smaller — so the
// copy flows down the gradient to the structure's source.  Where no
// structure exists, the rule degenerates to flooding, exactly as the
// paper prescribes.
//
// A message descends *any* distance field whose source is the receiver
// (fields expose `source` and `hopcount`); an explicit structure name can
// narrow the choice.  The message is stored only at the receiver; en
// route it is pass-through (kTupleArrived still fires on relays, letting
// middleboxes observe traffic, but nothing persists).
#pragma once

#include <optional>
#include <string>

#include "tota/tuple.h"

namespace tota::tuples {

class MessageTuple : public Tuple {
 public:
  static constexpr const char* kTag = "tota.message";

  MessageTuple() = default;

  /// A message to `receiver`.  `structure_name` optionally pins which
  /// distance field to descend (empty = any field sourced at `receiver`).
  /// With `strict` set, the message travels only where that structure
  /// exists and descends — no flooding fallback; it dies at structure
  /// gaps instead.  Use strict mode for replies that must follow a trail
  /// (e.g. the content-store answers) without ever flooding.
  MessageTuple(NodeId receiver, std::string payload,
               std::string structure_name = {}, bool strict = false);

  [[nodiscard]] NodeId sender() const {
    return content().at("sender").as_node();
  }
  [[nodiscard]] NodeId receiver() const {
    return content().at("receiver").as_node();
  }
  [[nodiscard]] std::string payload() const {
    return content().at("payload").as_string();
  }

  [[nodiscard]] std::string type_tag() const override { return kTag; }
  [[nodiscard]] std::unique_ptr<Tuple> clone() const override {
    return std::make_unique<MessageTuple>(*this);
  }

  bool decide_enter(const Context& ctx) override;
  void change_content(const Context& ctx) override;
  bool decide_store(const Context& ctx) override;
  bool decide_propagate(const Context& ctx) override;

  /// A delivered message is data, not structure: it survives the loss of
  /// the path it arrived on.
  [[nodiscard]] bool maintained() const override { return false; }

  /// Structure value at the last relay; unset means the message has been
  /// flooding so far.  Exposed for tests.
  [[nodiscard]] std::optional<int> best() const {
    return best_ < 0 ? std::nullopt : std::optional<int>(best_);
  }

 protected:
  /// The distance field this message descends, evaluated on `ctx.space`:
  /// smallest hopcount among matching structure replicas.  Subclasses
  /// (AnswerTuple) override the match.
  [[nodiscard]] virtual std::optional<int> structure_value(
      const Context& ctx) const;

  void encode_extra(wire::Writer& w) const override;
  void decode_extra(wire::Reader& r) override;

  [[nodiscard]] const std::string& structure_name() const {
    return structure_name_;
  }

 private:
  std::string structure_name_;
  int best_ = -1;
  bool strict_ = false;
};

/// AnswerTuple — §5.2's reply: a message that descends QueryTuple fields
/// back to the enquirer, carrying the query correlation id.
class AnswerTuple final : public MessageTuple {
 public:
  static constexpr const char* kTag = "tota.answer";

  AnswerTuple() = default;

  /// Answers `query_what` for enquirer `home` with `payload`.
  AnswerTuple(NodeId home, std::string query_what, std::string payload);

  [[nodiscard]] std::string query_what() const {
    return content().at("what").as_string();
  }

  [[nodiscard]] std::string type_tag() const override { return kTag; }
  [[nodiscard]] std::unique_ptr<Tuple> clone() const override {
    return std::make_unique<AnswerTuple>(*this);
  }

 protected:
  std::optional<int> structure_value(const Context& ctx) const override;
};

}  // namespace tota::tuples
