#include "tuples/all.h"

namespace tota::tuples {

void register_standard_tuples() {
  register_tuple_type<GradientTuple>(GradientTuple::kTag);
  register_tuple_type<FloodTuple>(FloodTuple::kTag);
  register_tuple_type<FlockTuple>(FlockTuple::kTag);
  register_tuple_type<AdvertTuple>(AdvertTuple::kTag);
  register_tuple_type<QueryTuple>(QueryTuple::kTag);
  register_tuple_type<MessageTuple>(MessageTuple::kTag);
  register_tuple_type<AnswerTuple>(AnswerTuple::kTag);
  register_tuple_type<SpaceTuple>(SpaceTuple::kTag);
  register_tuple_type<DirectionTuple>(DirectionTuple::kTag);
  register_tuple_type<ModifierTuple>(ModifierTuple::kTag);
  register_tuple_type<NavTuple>(NavTuple::kTag);
  register_tuple_type<DataTuple>(DataTuple::kTag);
  register_tuple_type<AggregationTuple>(AggregationTuple::kTag);
  register_tuple_type<AggReportTuple>(AggReportTuple::kTag);
}

}  // namespace tota::tuples
