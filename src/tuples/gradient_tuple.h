// GradientTuple — the paper's §5.1 "structure" tuple:
//
//   C = (structure, nodename, hopcount)
//   P = (propagate to all the nodes, increasing hopcount by one at every
//        hop)
//
// Injecting one overlays the network with the hop-distance field of the
// injecting node; MessageTuple copies then descend this field to reach it.
// Also doubles as the generic "information field": applications may add
// arbitrary payload fields to the content before injecting.
#pragma once

#include "tuples/field_tuple.h"

namespace tota::tuples {

class GradientTuple final : public FieldTuple {
 public:
  static constexpr const char* kTag = "tota.gradient";

  GradientTuple() = default;
  explicit GradientTuple(std::string name, int scope = kUnbounded)
      : FieldTuple(std::move(name), scope) {}

  [[nodiscard]] std::string type_tag() const override { return kTag; }
  [[nodiscard]] std::unique_ptr<Tuple> clone() const override {
    return std::make_unique<GradientTuple>(*this);
  }
};

/// FloodTuple — plain network-wide flooding of an application payload;
/// the degenerate FieldTuple whose only job is to reach (and stay on)
/// every node.  Kept as its own type so applications can subscribe to
/// floods without pattern-matching gradients.
class FloodTuple final : public FieldTuple {
 public:
  static constexpr const char* kTag = "tota.flood";

  FloodTuple() = default;
  FloodTuple(std::string name, wire::Value payload)
      : FieldTuple(std::move(name), kUnbounded) {
    content().set("payload", std::move(payload));
  }

  [[nodiscard]] wire::Value payload() const { return content().at("payload"); }
  [[nodiscard]] std::string type_tag() const override { return kTag; }
  [[nodiscard]] std::unique_ptr<Tuple> clone() const override {
    return std::make_unique<FloodTuple>(*this);
  }
};

}  // namespace tota::tuples
