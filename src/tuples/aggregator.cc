#include "tuples/aggregator.h"

#include <algorithm>

namespace tota::tuples {

Aggregator::Aggregator(Middleware& mw, AggregatorOptions opts)
    : mw_(mw),
      opts_(opts),
      tick_period_(opts.tick.micros() > 0
                       ? opts.tick
                       : mw.maintenance_options().agg_decay_tick),
      alive_(std::make_shared<bool>(true)),
      folds_(mw.hub().metrics.counter("agg.fold")),
      reports_tx_(mw.hub().metrics.counter("agg.report_tx")),
      deltas_(mw.hub().metrics.counter("agg.delta")),
      flushes_(mw.hub().metrics.counter("agg.flush")),
      ticks_(mw.hub().metrics.counter("agg.tick")),
      prunes_(mw.hub().metrics.counter("agg.prune")),
      reparents_(mw.hub().metrics.counter("agg.reparent")) {
  agg_query_ = mw_.subscribe_query(
      Pattern::of_type(AggregationTuple::kTag),
      [this](const QueryDelta& delta) { on_agg_delta(delta); });
  down_sub_ = mw_.subscribe(
      Pattern::of_type(PresenceTuple::kTag),
      [this](const Event& ev) {
        on_neighbor_down(
            static_cast<const PresenceTuple&>(*ev.tuple).neighbor());
      },
      static_cast<int>(EventKind::kNeighborDown));
  up_sub_ = mw_.subscribe(
      Pattern::of_type(PresenceTuple::kTag),
      [this](const Event&) { on_neighbor_up(); },
      static_cast<int>(EventKind::kNeighborUp));
}

Aggregator::~Aggregator() {
  *alive_ = false;
  for (auto& [uid, state] : states_) teardown(state);
  mw_.unsubscribe_query(agg_query_);
  mw_.unsubscribe(down_sub_);
  mw_.unsubscribe(up_sub_);
}

TupleUid Aggregator::ask(std::unique_ptr<AggregationTuple> spec) {
  return mw_.inject(std::move(spec));
}

void Aggregator::set_sensor(const std::string& name, double value) {
  sensors_[name] = Contribution{value, mw_.platform().now()};
  for (auto& [uid, state] : states_) {
    if (state.name == name) state.dirty = true;
  }
  schedule_flush();
}

void Aggregator::clear_sensor(const std::string& name) {
  if (sensors_.erase(name) == 0) return;
  for (auto& [uid, state] : states_) {
    if (state.name == name) state.dirty = true;
  }
  schedule_flush();
}

std::optional<AggSummary> Aggregator::summary(const std::string& name) const {
  const AggState* state = find_by_name(name);
  if (state == nullptr) return std::nullopt;
  return fold(*state, mw_.platform().now());
}

std::optional<double> Aggregator::result(const std::string& name) const {
  const AggState* state = find_by_name(name);
  if (state == nullptr) return std::nullopt;
  return fold(*state, mw_.platform().now()).result(state->op);
}

int Aggregator::tree_hop(const std::string& name) const {
  const AggState* state = find_by_name(name);
  return state == nullptr ? -1 : state->hop;
}

const Aggregator::AggState* Aggregator::find_by_name(
    const std::string& name) const {
  for (const auto& [uid, state] : states_) {
    if (state.name == name) return &state;
  }
  return nullptr;
}

// --- delta handlers (inside space mutations: no space access) ---------------

void Aggregator::on_agg_delta(const QueryDelta& delta) {
  deltas_.inc();
  touched_.push_back(delta.tuple->uid());
  schedule_flush();
}

void Aggregator::on_report_delta(const TupleUid& agg,
                                 const QueryDelta& delta) {
  deltas_.inc();
  const auto it = states_.find(agg);
  if (it == states_.end()) return;
  const auto* report = dynamic_cast<const AggReportTuple*>(delta.tuple);
  if (report == nullptr) return;
  auto& state = it->second;
  if (delta.kind == QueryDelta::Kind::kRemoved) {
    state.children.erase(report->reporter());
  } else {
    state.children[report->reporter()] =
        ChildReport{report->via(), report->tree_hop(), report->summary()};
  }
  state.dirty = true;
  schedule_flush();
}

void Aggregator::on_contrib_delta(const TupleUid& agg,
                                  const QueryDelta& delta) {
  deltas_.inc();
  const auto it = states_.find(agg);
  if (it == states_.end()) return;
  auto& state = it->second;
  // Never fold the subsystem's own tuples, however loose the user's
  // contribution pattern is — that would feed the tree back into itself.
  const std::string tag = delta.tuple->type_tag();
  if (tag == AggReportTuple::kTag || tag == AggregationTuple::kTag) return;
  const TupleUid uid = delta.tuple->uid();
  if (delta.kind == QueryDelta::Kind::kRemoved) {
    state.local.erase(uid);
  } else {
    bool ok = false;
    const double value = contribution_value(state, *delta.tuple, &ok);
    if (ok) {
      state.local[uid] = Contribution{value, delta.time};
    } else {
      state.local.erase(uid);
    }
  }
  state.dirty = true;
  schedule_flush();
}

double Aggregator::contribution_value(const AggState& state,
                                      const Tuple& tuple, bool* ok) const {
  if (state.field.empty()) {
    // Pattern-only aggregations can count matches, nothing more.
    *ok = state.op == AggOp::kCount;
    return 1.0;
  }
  const auto v = tuple.content().find(state.field);
  if (!v.has_value() || (v->type() != wire::ValueType::kInt &&
                         v->type() != wire::ValueType::kDouble)) {
    *ok = false;
    return 0.0;
  }
  *ok = true;
  return v->as_number();
}

void Aggregator::on_neighbor_down(NodeId neighbor) {
  pending_downs_.push_back(neighbor);
  schedule_flush();
}

void Aggregator::on_neighbor_up() {
  if (states_.empty()) return;
  force_report_ = true;
  schedule_flush();
}

// --- the flush: reconcile, fold, report -------------------------------------

void Aggregator::schedule_flush() {
  if (flush_pending_ || in_flush_) return;
  flush_pending_ = true;
  auto alive = alive_;
  mw_.platform().schedule(SimTime::zero(), [this, alive] {
    if (!*alive) return;
    flush_pending_ = false;
    flush();
  });
}

void Aggregator::flush() {
  in_flush_ = true;
  flushes_.inc();
  sync_membership();
  if (!pending_downs_.empty()) {
    auto downs = std::move(pending_downs_);
    pending_downs_.clear();
    std::sort(downs.begin(), downs.end());
    downs.erase(std::unique(downs.begin(), downs.end()), downs.end());
    for (const NodeId gone : downs) {
      // Reports are not engine-maintained (delivered data), so the
      // departed reporter's stored reports are dropped here; the take
      // fires kRemoved deltas that clear the children maps.
      Pattern stale = Pattern::of_type(AggReportTuple::kTag);
      stale.eq("reporter", gone);
      mw_.take(stale);
      for (auto& [uid, state] : states_) {
        state.children.erase(gone);  // map-only entries the take missed
        if (state.via == gone) state.dirty = true;
      }
    }
  }
  const SimTime now = mw_.platform().now();
  const bool force = force_report_;
  force_report_ = false;
  for (auto& [uid, state] : states_) {
    if (state.dirty || force) fold_and_report(state, now, force);
  }
  in_flush_ = false;
  ensure_tick();
}

void Aggregator::sync_membership() {
  if (touched_.empty()) return;
  auto touched = std::move(touched_);
  touched_.clear();
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  for (const TupleUid uid : touched) {
    const TupleSpace::Entry* entry = mw_.space().find(uid);
    const auto it = states_.find(uid);
    if (entry == nullptr) {
      if (it != states_.end()) {
        teardown(it->second);
        states_.erase(it);
      }
      continue;
    }
    if (it == states_.end()) {
      adopt(*entry);
      continue;
    }
    auto& state = it->second;
    const auto* agg =
        dynamic_cast<const AggregationTuple*>(entry->tuple.get());
    if (agg == nullptr) continue;
    if (entry->parent != state.via || agg->hopcount() != state.hop) {
      if (entry->parent != state.via) reparents_.inc();
      // The tree position moved: the last report's via/tree_hop are
      // stale, so equality suppression must not swallow the next one —
      // the new parent folds nothing until a report designates it.
      state.last_reported.reset();
    }
    state.hop = agg->hopcount();
    state.via = entry->parent;
    state.half_life = agg->half_life();
    state.dirty = true;
  }
}

void Aggregator::adopt(const TupleSpace::Entry& entry) {
  const auto* agg = dynamic_cast<const AggregationTuple*>(entry.tuple.get());
  if (agg == nullptr) return;
  const TupleUid uid = agg->uid();
  AggState& state = states_[uid];
  state.uid = uid;
  state.name = agg->name();
  state.op = agg->op();
  state.field = agg->value_field();
  state.half_life = agg->half_life();
  state.hop = agg->hopcount();
  state.via = entry.parent;
  state.dirty = true;
  try {
    state.contributes = agg->predicate();
  } catch (const wire::DecodeError&) {
    state.contributes.reset();  // hostile blob: aggregate without it
  }
  // Registered from flush/ctor context (never inside a space mutation);
  // seeding replays already-stored reports and contributions, which is
  // how a node that heard reports before joining the tree catches up.
  Pattern reports = Pattern::of_type(AggReportTuple::kTag);
  reports.eq("agg_origin", uid.origin())
      .eq("agg_seq", static_cast<std::int64_t>(uid.sequence()));
  state.report_query = mw_.subscribe_query(
      reports,
      [this, uid](const QueryDelta& delta) { on_report_delta(uid, delta); });
  if (state.contributes) {
    state.contrib_query = mw_.subscribe_query(
        *state.contributes,
        [this, uid](const QueryDelta& delta) { on_contrib_delta(uid, delta); });
  }
}

void Aggregator::teardown(AggState& state) {
  if (state.report_query != 0) mw_.unsubscribe_query(state.report_query);
  if (state.contrib_query != 0) mw_.unsubscribe_query(state.contrib_query);
  state.report_query = 0;
  state.contrib_query = 0;
}

bool Aggregator::parent_unusable(const AggState& state) const {
  if (!state.via.valid() || !is_neighbor(state.via)) return true;
  // A parent that drifted to a different depth can no longer fold us
  // (its fold accepts only children one hop deeper than itself).  Its
  // own stored report tells us its current depth.
  const auto entry = state.children.find(state.via);
  return entry != state.children.end() &&
         entry->second.tree_hop != state.hop - 1;
}

void Aggregator::reparent(AggState& state) {
  // The stored parent-ring reports double as a parent directory: any
  // current neighbour reporting from hop-1 can adopt this subtree.
  NodeId best{};
  for (const auto& [reporter, child] : state.children) {
    if (child.tree_hop != state.hop - 1) continue;
    if (!is_neighbor(reporter)) continue;
    if (!best.valid() || reporter < best) best = reporter;
  }
  if (best.valid() && best != state.via) {
    state.via = best;
    state.last_reported.reset();  // the adopter needs a via=it report
    reparents_.inc();
  }
}

void Aggregator::fold_and_report(AggState& state, SimTime now, bool force) {
  if (state.hop > 0 && parent_unusable(state)) reparent(state);
  const AggSummary folded = fold(state, now);
  state.dirty = false;
  if (state.hop == 0) {
    // The sink reads its answer on demand and folds nothing upward, but
    // it must still announce itself: its stored report (via = nobody,
    // tree_hop 0) is the parent-ring directory entry hop-1 nodes
    // re-parent onto when their own parent disappears.  Once, plus on
    // link-up force so newcomers hear it too.
    if (force || !state.last_reported.has_value()) {
      mw_.inject(
          AggReportTuple::make(state.uid, mw_.self(), NodeId{}, 0, folded,
                               ++report_seq_));
      reports_tx_.inc();
      state.last_reported = folded;
    }
    return;
  }
  if (!state.via.valid() || !is_neighbor(state.via)) {
    return;  // orphaned: engine maintenance will retract or re-attach us
  }
  if (!force && state.last_reported.has_value() &&
      folded == state.last_reported->decayed_to(now, state.half_life)) {
    return;  // nothing a parent doesn't already know
  }
  mw_.inject(
      AggReportTuple::make(state.uid, mw_.self(), state.via, state.hop,
                           folded, ++report_seq_));
  reports_tx_.inc();
  state.last_reported = folded;
}

AggSummary Aggregator::fold(const AggState& state, SimTime now) const {
  folds_.inc();
  AggSummary total;
  total.stamp = now;
  const auto sensor = sensors_.find(state.name);
  if (sensor != sensors_.end()) {
    total.fold(AggSummary::contribution(sensor->second.value,
                                        sensor->second.stamp),
               now, state.half_life);
  }
  for (const auto& [uid, c] : state.local) {
    total.fold(AggSummary::contribution(c.value, c.stamp), now,
               state.half_life);
  }
  for (const auto& [reporter, child] : state.children) {
    // Fold exactly the true children: they designated us, they are still
    // in radio contact, and they sit one hop deeper.  The strict depth
    // check is what makes mutually-stale parent pointers unable to fold
    // each other's subtrees in a loop.
    if (child.via != mw_.self()) continue;
    if (child.tree_hop != state.hop + 1) continue;
    if (!is_neighbor(reporter)) continue;
    total.fold(child.summary, now, state.half_life);
  }
  return total;
}

bool Aggregator::is_neighbor(NodeId id) const {
  const auto& ns = mw_.neighbors();
  return std::binary_search(ns.begin(), ns.end(), id);
}

// --- the maintenance tick: decay pruning + optional refresh -----------------

void Aggregator::ensure_tick() {
  if (tick_scheduled_ || tick_period_.micros() <= 0 || states_.empty()) {
    return;
  }
  bool needed = opts_.refresh_on_tick;
  for (const auto& [uid, state] : states_) {
    if (state.half_life.micros() > 0) needed = true;
  }
  if (!needed) return;
  tick_scheduled_ = true;
  auto alive = alive_;
  mw_.platform().schedule(tick_period_, [this, alive] {
    if (!*alive) return;
    tick_scheduled_ = false;
    tick();
  });
}

void Aggregator::tick() {
  ticks_.inc();
  const SimTime now = mw_.platform().now();
  for (auto& [uid, state] : states_) {
    if (state.half_life.micros() <= 0) continue;
    const SimTime expiry = state.half_life * opts_.expiry_half_lives;
    for (auto it = state.local.begin(); it != state.local.end();) {
      if (now.micros() - it->second.stamp.micros() > expiry.micros()) {
        it = state.local.erase(it);
        prunes_.inc();
        state.dirty = true;
      } else {
        ++it;
      }
    }
    // Fully-decayed child reports: drop the stored tuples too, so the
    // space does not accumulate dead neighbours' last words.
    std::vector<NodeId> expired;
    for (const auto& [reporter, child] : state.children) {
      if (now.micros() - child.summary.stamp.micros() > expiry.micros()) {
        expired.push_back(reporter);
      }
    }
    for (const NodeId reporter : expired) {
      Pattern stale = Pattern::of_type(AggReportTuple::kTag);
      stale.eq("agg_origin", state.uid.origin())
          .eq("agg_seq", static_cast<std::int64_t>(state.uid.sequence()))
          .eq("reporter", reporter);
      mw_.take(stale);  // kRemoved delta clears the map entry
      state.children.erase(reporter);
      prunes_.inc();
      state.dirty = true;
    }
  }
  if (opts_.refresh_on_tick) force_report_ = true;
  flush();  // fold + (re-)report everything the tick disturbed
}

}  // namespace tota::tuples
