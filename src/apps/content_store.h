// ContentStore — content-addressable storage over TOTA (paper §5.1's
// CAN/Pastry claim, realized in the geographic-hash-table style).
//
// Every participating node runs a ContentStore.  A key hashes to a point
// of the shared coordinate space; PUT navigates a NavTuple greedily to
// the node closest to that point (the key's *home*), which keeps the
// value as a DataTuple.  GET navigates the same way and the home answers
// with a strict MessageTuple descending the navigation trail back to the
// requester.  Node coordinates are advertised with scope-1 beacon fields,
// which the middleware keeps fresh under mobility — so homes migrate as
// the closest node changes, exactly like the "virtual overlay space"
// mapping the paper sketches.
//
// Greedy navigation can stall in a coordinate void (no neighbour closer);
// the stalled node then adopts the key, which is the standard GHT
// "home perimeter" approximation.  get() reports nullopt on timeout.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "tota/middleware.h"
#include "tuples/gradient_tuple.h"
#include "tuples/message_tuple.h"
#include "tuples/nav_tuple.h"

namespace tota::apps {

class ContentStore {
 public:
  using GetCallback = std::function<void(std::optional<std::string>)>;

  /// `keyspace` is the rectangle keys hash into; every participant must
  /// use the same one.
  ContentStore(Middleware& mw, Rect keyspace);
  ~ContentStore();

  ContentStore(const ContentStore&) = delete;
  ContentStore& operator=(const ContentStore&) = delete;

  /// Joins the overlay: beacons this node's coordinate and starts serving
  /// navigation traffic.
  void start();

  /// Stores (key, value) at the key's home node.
  void put(const std::string& key, std::string value);

  /// Looks the key up; `callback` fires once with the value or, after
  /// `timeout`, with nullopt.
  void get(const std::string& key, GetCallback callback,
           SimTime timeout = SimTime::from_seconds(2));

  /// Deterministic key→point mapping (FNV-hashed into the keyspace).
  static Vec2 key_point(const std::string& key, Rect keyspace);

  /// Keys this node is currently home for.
  [[nodiscard]] std::size_t stored_keys() const;

  static constexpr const char* kBeaconName = "content-coord";

 private:
  /// True when no beaconing neighbour is closer to `target` than we are.
  [[nodiscard]] bool is_home(Vec2 target) const;

  void on_nav(const tuples::NavTuple& nav);

  Middleware& mw_;
  Rect keyspace_;
  bool started_ = false;
  SubscriptionId nav_subscription_ = 0;
  SubscriptionId answer_subscription_ = 0;

  struct PendingGet {
    GetCallback callback;
    bool done = false;
  };
  std::unordered_map<std::string, PendingGet> pending_gets_;
  /// Navigations already acted on (trail refinements re-fire events).
  std::unordered_set<TupleUid> handled_navs_;
};

}  // namespace tota::apps
