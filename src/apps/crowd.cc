#include "apps/crowd.h"

namespace tota::apps {

CrowdNavigator::CrowdNavigator(Middleware& mw, CrowdNavParams params,
                               Steer steer)
    : mw_(mw), params_(std::move(params)), steer_(std::move(steer)) {}

CrowdNavigator::~CrowdNavigator() { running_ = false; }

void CrowdNavigator::start() {
  if (started_) return;
  started_ = true;
  running_ = true;
  // Presence: a short field around the visitor; maintenance drags it
  // along as the visitor walks.
  mw_.inject(std::make_unique<tuples::GradientTuple>(
      kPresenceField, params_.avoid_radius_hops));
  schedule_next();
}

void CrowdNavigator::schedule_next() {
  mw_.platform().schedule(params_.control_period, [this] {
    if (!running_) return;
    control_step();
    schedule_next();
  });
}

std::optional<int> CrowdNavigator::destination_hops() const {
  Pattern dest;
  dest.eq("name", params_.destination).exists("hopcount");
  const auto field = mw_.space().peek(dest);
  if (field.empty()) return std::nullopt;
  int best = 1 << 20;
  for (const Tuple* t : field) {
    best = std::min(best,
                    static_cast<int>(t->content().at("hopcount").as_int()));
  }
  return best;
}

int CrowdNavigator::crowd_nearby() const {
  // The whole question is a predicate: other visitors' presence fields
  // reading within the avoidance radius.
  Pattern presence = Pattern::of_type(tuples::GradientTuple::kTag);
  presence.eq("name", kPresenceField)
      .where("source", Pred::ne(mw_.self()))
      .where("hopcount", Pred::le(params_.avoid_radius_hops));
  return static_cast<int>(mw_.space().peek(presence).size());
}

bool CrowdNavigator::arrived() const {
  const auto d = destination_hops();
  return d && *d <= params_.arrive_hops;
}

void CrowdNavigator::control_step() {
  if (arrived()) {
    steer_(Vec2{});
    return;
  }
  const Vec2 here = mw_.platform().position();
  Vec2 force{};

  // Attraction: descend the destination field (toward its origin).
  Pattern dest;
  dest.eq("name", params_.destination).exists("hopcount");
  for (const Tuple* t : mw_.space().peek(dest)) {
    if (!t->content().has("origin_pos")) continue;
    const Vec2 toward =
        (t->content().at("origin_pos").as_vec2() - here).normalized();
    force += toward;
    break;  // one destination field suffices
  }

  // Repulsion: climb out of nearby visitors' presence fields, harder the
  // closer they read.
  Pattern presence = Pattern::of_type(tuples::GradientTuple::kTag);
  presence.eq("name", kPresenceField)
      .where("source", Pred::ne(mw_.self()))
      .where("hopcount", Pred::le(params_.avoid_radius_hops))
      .exists("origin_pos");
  for (const Tuple* t : mw_.space().peek(presence)) {
    const auto& field = static_cast<const tuples::GradientTuple&>(*t);
    const int hops = field.hopcount();
    const Vec2 away =
        (here - field.content().at("origin_pos").as_vec2()).normalized();
    const double weight =
        params_.repulsion *
        static_cast<double>(params_.avoid_radius_hops - hops + 1) /
        static_cast<double>(params_.avoid_radius_hops + 1);
    force += away * weight;
  }

  steer_(force * params_.gain_mps);
}

TupleUid CrowdDensity::measure(int within_hops, SimTime half_life) {
  // Count each visitor exactly once: only the replica at the visitor's
  // own node reads hopcount 0.
  Pattern visitors = Pattern::of_type(tuples::GradientTuple::kTag);
  visitors.eq("name", CrowdNavigator::kPresenceField)
      .where("hopcount", Pred::eq(0));
  auto census = std::make_unique<tuples::AggregationTuple>(
      kDensityField, tuples::AggOp::kCount, within_hops);
  census->matching(visitors);
  if (half_life.micros() > 0) census->with_half_life(half_life);
  return agg_.ask(std::move(census));
}

}  // namespace tota::apps
