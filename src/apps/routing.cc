#include "apps/routing.h"

namespace tota::apps {

RoutingService::RoutingService(Middleware& mw, Handler handler)
    : mw_(mw), handler_(std::move(handler)) {
  // React to message tuples addressed to this node.  The arrival event
  // fires on relays too (pass-through), so the pattern pins the receiver.
  Pattern to_me = Pattern::of_type(tuples::MessageTuple::kTag);
  to_me.eq("receiver", mw_.self());
  subscription_ = mw_.subscribe(
      std::move(to_me),
      [this](const Event& event) {
        const auto& msg = static_cast<const tuples::MessageTuple&>(
            *event.tuple);
        ++delivered_;
        if (handler_) handler_(msg.sender(), msg.payload());
      },
      static_cast<int>(EventKind::kTupleArrived));
}

RoutingService::~RoutingService() { mw_.unsubscribe(subscription_); }

void RoutingService::advertise(int scope) {
  if (advertised_) return;
  advertised_ = true;
  mw_.inject(std::make_unique<tuples::GradientTuple>(kStructureName, scope));
}

void RoutingService::send(NodeId dest, std::string payload) {
  ++sent_;
  mw_.inject(std::make_unique<tuples::MessageTuple>(dest, std::move(payload),
                                                    kStructureName));
}

}  // namespace tota::apps
