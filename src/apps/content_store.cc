#include "apps/content_store.h"

namespace tota::apps {

namespace {

constexpr const char* kAnswerKeyField = "key";
constexpr const char* kAnswerFoundField = "found";

std::uint64_t fnv1a(const std::string& s, std::uint64_t seed) {
  std::uint64_t h = 1469598103934665603ull ^ seed;
  for (const unsigned char c : s) {
    h = (h ^ c) * 1099511628211ull;
  }
  // FNV concentrates short-string differences in the low bits; avalanche
  // them everywhere (SplitMix64 finalizer) before the caller keeps the
  // high bits.
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBull;
  h ^= h >> 31;
  return h;
}

}  // namespace

ContentStore::ContentStore(Middleware& mw, Rect keyspace)
    : mw_(mw), keyspace_(keyspace) {}

ContentStore::~ContentStore() {
  if (nav_subscription_ != 0) mw_.unsubscribe(nav_subscription_);
  if (answer_subscription_ != 0) mw_.unsubscribe(answer_subscription_);
}

Vec2 ContentStore::key_point(const std::string& key, Rect keyspace) {
  const std::uint64_t hx = fnv1a(key, 0x9E3779B97F4A7C15ull);
  const std::uint64_t hy = fnv1a(key, 0xC2B2AE3D27D4EB4Full);
  const double fx = static_cast<double>(hx >> 11) * 0x1.0p-53;
  const double fy = static_cast<double>(hy >> 11) * 0x1.0p-53;
  return {keyspace.min.x + fx * keyspace.width(),
          keyspace.min.y + fy * keyspace.height()};
}

void ContentStore::start() {
  if (started_) return;
  started_ = true;

  // Coordinate beacon: a scope-1 field; maintenance keeps neighbours'
  // copies fresh as the topology changes.
  mw_.inject(std::make_unique<tuples::GradientTuple>(kBeaconName,
                                                     /*scope=*/1));

  // Only the purposes this store serves; other navigation traffic never
  // wakes the reaction.
  Pattern navs = Pattern::of_type(tuples::NavTuple::kTag);
  navs.where("purpose", Pred::any_of({wire::Value{"put"}, wire::Value{"get"}}));
  nav_subscription_ = mw_.subscribe(
      std::move(navs),
      [this](const Event& event) {
        on_nav(static_cast<const tuples::NavTuple&>(*event.tuple));
      },
      static_cast<int>(EventKind::kTupleArrived));

  Pattern answers = Pattern::of_type(tuples::MessageTuple::kTag);
  answers.eq("receiver", mw_.self()).exists(kAnswerKeyField);
  answer_subscription_ = mw_.subscribe(
      std::move(answers),
      [this](const Event& event) {
        const auto& msg =
            static_cast<const tuples::MessageTuple&>(*event.tuple);
        const std::string key =
            msg.content().at(kAnswerKeyField).as_string();
        const auto it = pending_gets_.find(key);
        if (it == pending_gets_.end() || it->second.done) return;
        it->second.done = true;
        const bool found = msg.content().at(kAnswerFoundField).as_bool();
        it->second.callback(found ? std::optional<std::string>(msg.payload())
                                  : std::nullopt);
      },
      static_cast<int>(EventKind::kTupleArrived));
}

bool ContentStore::is_home(Vec2 target) const {
  const double mine = distance(mw_.platform().position(), target);
  Pattern beacons = Pattern::of_type(tuples::GradientTuple::kTag);
  beacons.eq("name", kBeaconName);
  const NodeId self = mw_.self();
  for (const Tuple* t : mw_.space().peek(beacons)) {
    const auto& field = static_cast<const tuples::GradientTuple&>(*t);
    if (field.source() == self) continue;
    if (!field.content().has("origin_pos")) continue;
    if (distance(field.content().at("origin_pos").as_vec2(), target) <
        mine) {
      return false;
    }
  }
  return true;
}

void ContentStore::on_nav(const tuples::NavTuple& nav) {
  if (!is_home(nav.target())) return;
  if (!handled_navs_.insert(nav.uid()).second) return;

  if (nav.purpose() == "put") {
    // Replace any previous value for the key.
    Pattern existing = Pattern::of_type(tuples::DataTuple::kTag);
    existing.eq("key", nav.key());
    mw_.take(existing);
    mw_.inject(std::make_unique<tuples::DataTuple>(
        nav.key(), nav.content().at("value").as_string()));
    return;
  }
  if (nav.purpose() == "get") {
    Pattern lookup = Pattern::of_type(tuples::DataTuple::kTag);
    lookup.eq("key", nav.key());
    const auto record = mw_.read_one(lookup);
    // Answer descends the navigation trail strictly — never floods.
    auto answer = std::make_unique<tuples::MessageTuple>(
        nav.requester(),
        record ? static_cast<const tuples::DataTuple&>(*record).value()
               : std::string{},
        /*structure_name=*/"", /*strict=*/true);
    answer->content()
        .set(kAnswerKeyField, nav.key())
        .set(kAnswerFoundField, record != nullptr);
    mw_.inject(std::move(answer));
  }
}

void ContentStore::put(const std::string& key, std::string value) {
  start();
  auto nav = std::make_unique<tuples::NavTuple>(
      key, key_point(key, keyspace_), "put");
  nav->content().set("value", std::move(value));
  mw_.inject(std::move(nav));
}

void ContentStore::get(const std::string& key, GetCallback callback,
                       SimTime timeout) {
  start();
  pending_gets_[key] = PendingGet{std::move(callback), false};
  mw_.inject(std::make_unique<tuples::NavTuple>(
      key, key_point(key, keyspace_), "get"));
  mw_.platform().schedule(timeout, [this, key] {
    const auto it = pending_gets_.find(key);
    if (it == pending_gets_.end() || it->second.done) return;
    it->second.done = true;
    it->second.callback(std::nullopt);
  });
}

std::size_t ContentStore::stored_keys() const {
  return mw_.space().peek(Pattern::of_type(tuples::DataTuple::kTag)).size();
}

}  // namespace tota::apps
