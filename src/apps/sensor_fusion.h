// Sensor fusion over the air — "what is the average temperature within
// 3 hops of me?" without collecting one reading per sensor at the
// enquirer.
//
// Each sensor node keeps its latest reading as a *local* tuple (a
// scope-0 GradientTuple named kReadingField carrying a `temp` field) —
// readings never propagate on their own.  An enquirer injects a
// predicate AggregationTuple (a QueryTuple subtype, paper §5.2's "query
// tuples create a structure to be used by answer tuples to reach the
// enquiring device"): its hop field is both the interest scope and the
// fold tree, its predicate selects the reading tuples, and the answers
// are O(depth) partial-aggregate reports instead of O(sensors) raw
// readings (tuples/agg_tuple.h, docs/AGGREGATION.md).
//
// Instantiate one SensorFusion per node; sensors call publish_reading(),
// the enquirer calls query_average() and polls average().
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "tota/middleware.h"
#include "tuples/aggregator.h"
#include "tuples/gradient_tuple.h"

namespace tota::apps {

class SensorFusion {
 public:
  /// Name of the local reading tuples sensors keep.
  static constexpr const char* kReadingField = "sensor-reading";
  /// Name of the fusion query field (the AggregationTuple).
  static constexpr const char* kFusionField = "avg-temp";

  explicit SensorFusion(Middleware& mw, tuples::AggregatorOptions opts = {})
      : mw_(mw), agg_(mw, opts) {}

  /// Replaces this node's reading with `temp` — the fusion trees pick the
  /// change up from the tuple-space change stream and re-fold.
  void publish_reading(double temp);

  /// Drops this node's reading (sensor going quiet).
  void clear_reading();

  /// Asks "average temp within `within_hops` of here" from this node
  /// (the sink).  A non-zero `half_life` ages readings out of the answer
  /// as they go stale.
  TupleUid query_average(int within_hops,
                         SimTime half_life = SimTime::zero());

  /// The fused answer at the sink; nullopt while no reading has been
  /// folded (or this node is outside every fusion tree).
  [[nodiscard]] std::optional<double> average() const {
    return agg_.result(kFusionField);
  }

  [[nodiscard]] std::optional<tuples::AggSummary> summary() const {
    return agg_.summary(kFusionField);
  }

  [[nodiscard]] tuples::Aggregator& aggregator() { return agg_; }

 private:
  Middleware& mw_;
  tuples::Aggregator agg_;
};

}  // namespace tota::apps
