// Routing on mobile ad-hoc networks (paper §5.1), as an application over
// the TOTA API.
//
// A node that wants to be reachable advertises a routing structure (a
// GradientTuple); senders inject MessageTuples that descend the structure
// or flood where none exists — "this model captures the basic underl[y]ing
// model of several different MANET routing protocols".
#pragma once

#include <functional>
#include <string>

#include "tota/middleware.h"
#include "tuples/gradient_tuple.h"
#include "tuples/message_tuple.h"

namespace tota::apps {

class RoutingService {
 public:
  /// Called on delivery: (sender, payload).
  using Handler = std::function<void(NodeId, const std::string&)>;

  /// Wires the service to a node's middleware; `handler` fires for every
  /// message addressed to this node.
  RoutingService(Middleware& mw, Handler handler);
  ~RoutingService();

  RoutingService(const RoutingService&) = delete;
  RoutingService& operator=(const RoutingService&) = delete;

  /// Publishes this node's routing structure (the "structure" tuple).
  /// Safe to call once; the middleware keeps the overlay coherent under
  /// mobility afterwards.  `scope` bounds the overlay radius in hops.
  void advertise(int scope = tuples::FieldTuple::kUnbounded);

  /// Sends `payload` to `dest`: downhill along dest's structure where it
  /// exists, flooding elsewhere.
  void send(NodeId dest, std::string payload);

  [[nodiscard]] bool advertised() const { return advertised_; }
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t sent() const { return sent_; }

  /// The structure name this service publishes/descends.
  static constexpr const char* kStructureName = "structure";

 private:
  Middleware& mw_;
  Handler handler_;
  SubscriptionId subscription_ = 0;
  bool advertised_ = false;
  std::uint64_t delivered_ = 0;
  std::uint64_t sent_ = 0;
};

}  // namespace tota::apps
