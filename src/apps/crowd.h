// Crowd-aware navigation — the motivating scenario of the TOTA /
// Co-Fields line of work ([Mam02]: "Coordinating Mobility in a Ubiquitous
// Computing Scenario with Co-Fields" — tourists with PDAs steering
// through a museum): move toward an attraction by descending its field
// while climbing away from crowd fields that other visitors emit.
//
// Two field kinds compose:
//   * a destination field — any FieldTuple whose `name` identifies the
//     attraction (typically injected once by the attraction's own node);
//   * presence fields — short-range FlockTuple-like fields each visitor
//     injects (here: a hop-scoped GradientTuple named kPresenceField).
//
// Every control period the agent evaluates
//     potential = hops(destination) + repulsion * Σ max(0, R - hops(v))
// at itself and steers along the locally sensed downhill direction —
// pure local sensing, global coordination, exactly the TOTA recipe.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "tota/middleware.h"
#include "tuples/aggregator.h"
#include "tuples/gradient_tuple.h"

namespace tota::apps {

struct CrowdNavParams {
  /// The attraction field to descend (its `name` content field).
  std::string destination;
  /// Crowd-avoidance radius in hops: presence fields matter within it.
  int avoid_radius_hops = 2;
  /// Relative weight of one nearby visitor vs. one hop of detour.
  double repulsion = 1.5;
  SimTime control_period = SimTime::from_millis(250);
  double gain_mps = 4.0;
  /// Stop once the destination reads at or below this many hops.
  int arrive_hops = 0;
};

class CrowdNavigator {
 public:
  using Steer = std::function<void(Vec2)>;

  static constexpr const char* kPresenceField = "crowd-presence";

  CrowdNavigator(Middleware& mw, CrowdNavParams params, Steer steer);
  ~CrowdNavigator();

  CrowdNavigator(const CrowdNavigator&) = delete;
  CrowdNavigator& operator=(const CrowdNavigator&) = delete;

  /// Emits this visitor's presence field and starts steering.
  void start();
  void stop() { running_ = false; }

  /// One sensing + steering step (scheduled periodically by start()).
  void control_step();

  /// Destination distance currently sensed here, if its field arrived.
  [[nodiscard]] std::optional<int> destination_hops() const;

  /// Number of *other* visitors whose presence reads within the
  /// avoidance radius.
  [[nodiscard]] int crowd_nearby() const;

  [[nodiscard]] bool arrived() const;

 private:
  void schedule_next();

  Middleware& mw_;
  CrowdNavParams params_;
  Steer steer_;
  bool running_ = false;
  bool started_ = false;
};

/// The museum's side of the crowd scenario: "how many visitors are in the
/// building (or within N hops of this kiosk) right now?"  Counts the
/// CrowdNavigator presence fields in-network — each visitor's presence
/// replica reads hopcount 0 exactly at the visitor's own node, so the
/// contribution pattern `hopcount == 0` counts every visitor once no
/// matter how far its field spreads.  Answers flow along the aggregation
/// tree (docs/AGGREGATION.md) instead of one report per visitor per
/// reading reaching the kiosk.
///
/// Instantiate one per participating node; call measure() at the kiosk.
class CrowdDensity {
 public:
  static constexpr const char* kDensityField = "crowd-density";

  explicit CrowdDensity(Middleware& mw, tuples::AggregatorOptions opts = {})
      : agg_(mw, opts) {}

  /// Starts the census from this node (the sink).  `within_hops` bounds
  /// the counted region; a non-zero `half_life` makes stale presence fade
  /// instead of requiring explicit departure.
  TupleUid measure(int within_hops = tuples::FieldTuple::kUnbounded,
                   SimTime half_life = SimTime::zero());

  /// Visitors currently counted at this node's subtree (the whole region
  /// at the kiosk); nullopt when not (yet) part of the census tree.
  [[nodiscard]] std::optional<double> density() const {
    return agg_.result(kDensityField);
  }

  [[nodiscard]] tuples::Aggregator& aggregator() { return agg_; }

 private:
  tuples::Aggregator agg_;
};

}  // namespace tota::apps
