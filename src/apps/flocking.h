// Motion coordination — flocking (paper §5.3, Fig. 3).
//
// Each agent injects a FlockTuple whose `val` field is minimal at the
// target hop distance X; the middleware keeps these fields coherent as
// agents move.  A FlockingController periodically senses the peers'
// fields at its own node and steers downhill: too far from a peer
// (hopcount > X) pulls toward it, too close pushes away.  With every
// agent doing this, the group settles into "an almost regular grid
// formation ... clustering in each other['s] val fields minima".
//
// Gradient direction: a node only knows field values at itself, so the
// controller uses each field's source position (stamped in the tuple and
// refreshed by the middleware's source re-evaluation) as the direction of
// steepest descent — the same approximation the paper's emulator makes
// with screen coordinates.
#pragma once

#include <functional>
#include <vector>

#include "tota/middleware.h"
#include "tuples/flock_tuple.h"

namespace tota::apps {

struct FlockingParams {
  /// Preferred inter-agent distance X, in hops.
  int target_hops = 1;
  /// Field propagation scope; 0 = unbounded.  2–3× target keeps traffic
  /// bounded while still attracting stragglers.
  int field_scope = 4;
  /// Control period: how often the agent re-reads fields and re-steers.
  SimTime control_period = SimTime::from_millis(250);
  /// Speed per unit of distance error, m/s; output is capped by the
  /// node's mobility model.
  double gain_mps = 4.0;
};

class FlockingController {
 public:
  /// `set_velocity` steers the agent (typically Network::set_velocity).
  using Steer = std::function<void(Vec2)>;

  FlockingController(Middleware& mw, FlockingParams params, Steer steer);
  ~FlockingController();

  FlockingController(const FlockingController&) = delete;
  FlockingController& operator=(const FlockingController&) = delete;

  /// Injects this agent's field and begins the control loop.
  void start();
  void stop() { running_ = false; }

  /// One sensing+steering step; exposed for tests (start() schedules it
  /// periodically).
  void control_step();

  /// Peers whose fields currently reach this agent.
  [[nodiscard]] std::size_t visible_peers() const;

 private:
  Middleware& mw_;
  FlockingParams params_;
  Steer steer_;
  bool running_ = false;
  bool started_ = false;

  void schedule_next();
};

}  // namespace tota::apps
