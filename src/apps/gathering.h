// Information gathering in a dynamic network (paper §5.2).
//
// Two symmetric roles:
//
//  * InfoProvider — an information node (e.g. a sensor).  Proactive mode
//    advertises an AdvertTuple ("propagate a tuple having as content the
//    information to be made available, as well as its location, and a
//    value specifying the distance"); reactive mode subscribes to
//    QueryTuple arrivals it can answer and responds with an AnswerTuple
//    that descends the query's own field back to the enquirer.
//
//  * InfoSeeker — a user device.  It can scan its local tuple space for
//    adverts (zero communication — the field already came to it), or
//    inject a query and collect the answers as they arrive.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "tota/middleware.h"
#include "tuples/advert_tuple.h"
#include "tuples/message_tuple.h"
#include "tuples/query_tuple.h"

namespace tota::apps {

class InfoProvider {
 public:
  /// `description` is what this node offers ("temperature", …).
  InfoProvider(Middleware& mw, std::string description);
  ~InfoProvider();

  InfoProvider(const InfoProvider&) = delete;
  InfoProvider& operator=(const InfoProvider&) = delete;

  /// Proactive: floods the advert field (scope in hops; unbounded covers
  /// the whole network).
  void advertise(int scope = tuples::FieldTuple::kUnbounded);

  /// Reactive: answer queries matching this provider's description with
  /// `value` (e.g. the current reading).  The value callback is consulted
  /// per query.
  void answer_queries(std::function<std::string()> value);

  [[nodiscard]] std::uint64_t queries_answered() const {
    return queries_answered_;
  }

 private:
  Middleware& mw_;
  std::string description_;
  SubscriptionId subscription_ = 0;
  std::function<std::string()> value_;
  std::uint64_t queries_answered_ = 0;
  /// Queries already answered; field updates re-fire arrival events and
  /// must not trigger duplicate answers.
  std::unordered_set<TupleUid> answered_;
};

class InfoSeeker {
 public:
  struct AdvertInfo {
    std::string description;
    Vec2 location;
    int distance_hops;
  };

  /// Called per answer: (provider payload).
  using AnswerHandler = std::function<void(const std::string&)>;

  explicit InfoSeeker(Middleware& mw);
  ~InfoSeeker();

  InfoSeeker(const InfoSeeker&) = delete;
  InfoSeeker& operator=(const InfoSeeker&) = delete;

  /// Proactive harvesting: every advert currently visible at this node.
  [[nodiscard]] std::vector<AdvertInfo> local_adverts() const;

  /// Advert for `description`, if its field reaches this node.
  [[nodiscard]] std::optional<AdvertInfo> find_advert(
      const std::string& description) const;

  /// Reactive: inject a query for `what`; `on_answer` fires per answer.
  /// `scope` bounds the interest ring (the [RomJH02] "within 10 miles").
  void query(const std::string& what, AnswerHandler on_answer,
             int scope = tuples::FieldTuple::kUnbounded);

  [[nodiscard]] std::uint64_t answers_received() const {
    return answers_received_;
  }

 private:
  Middleware& mw_;
  SubscriptionId subscription_ = 0;
  AnswerHandler on_answer_;
  std::uint64_t answers_received_ = 0;
};

}  // namespace tota::apps
