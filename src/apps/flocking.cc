#include "apps/flocking.h"

#include "tuples/field_tuple.h"

namespace tota::apps {

FlockingController::FlockingController(Middleware& mw, FlockingParams params,
                                       Steer steer)
    : mw_(mw), params_(params), steer_(std::move(steer)) {}

FlockingController::~FlockingController() { running_ = false; }

void FlockingController::start() {
  if (started_) return;
  started_ = true;
  running_ = true;
  const int scope = params_.field_scope > 0 ? params_.field_scope
                                            : tuples::FieldTuple::kUnbounded;
  mw_.inject(
      std::make_unique<tuples::FlockTuple>(params_.target_hops, scope));
  schedule_next();
}

void FlockingController::schedule_next() {
  mw_.platform().schedule(params_.control_period, [this] {
    if (!running_) return;
    control_step();
    schedule_next();
  });
}

namespace {
Pattern peer_fields(NodeId self) {
  Pattern p = Pattern::of_type(tuples::FlockTuple::kTag);
  p.where("source", Pred::ne(self));
  return p;
}
}  // namespace

std::size_t FlockingController::visible_peers() const {
  return mw_.space().peek(peer_fields(mw_.self())).size();
}

void FlockingController::control_step() {
  const Vec2 here = mw_.platform().position();
  // The paper's rule acts on the *nearest* birds ("maintaining a
  // specified distance from the nearest birds"): steering against every
  // peer lets far-peer attraction cancel near-peer repulsion and the
  // flock jams short of the target spacing.
  int nearest_hop = 1 << 20;
  for (const Tuple* t : mw_.space().peek(peer_fields(mw_.self()))) {
    const auto& field = static_cast<const tuples::FlockTuple&>(*t);
    nearest_hop = std::min(nearest_hop, field.hopcount());
  }
  Vec2 force{};
  int peers = 0;
  for (const Tuple* t : mw_.space().peek(peer_fields(mw_.self()))) {
    const auto& field = static_cast<const tuples::FlockTuple&>(*t);
    if (field.hopcount() != nearest_hop) continue;
    if (!field.content().has("origin_pos")) continue;
    const Vec2 origin = field.content().at("origin_pos").as_vec2();
    const Vec2 toward = (origin - here).normalized();
    if (toward == Vec2{}) continue;
    // Descend the V-shaped val field: past X hops pull in, inside X push
    // out, with strength proportional to the error.
    const double err =
        static_cast<double>(field.hopcount() - params_.target_hops);
    force += toward * err;
    ++peers;
  }
  if (peers == 0) {
    steer_(Vec2{});
    return;
  }
  force = force * (1.0 / static_cast<double>(peers));
  steer_(force * params_.gain_mps);
}

}  // namespace tota::apps
