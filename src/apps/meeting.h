// Meeting — Co-Fields-style rendezvous (paper §5.3's general motion
// coordination, [Mam02]): a group of agents agrees to gather, each
// injects a gradient field, and each descends the *sum* of the others'
// fields.  The combined field's minimum sits between the participants,
// so they converge toward each other and meet.
#pragma once

#include <functional>
#include <string>

#include "tota/middleware.h"
#include "tuples/gradient_tuple.h"

namespace tota::apps {

struct MeetingParams {
  /// Shared label distinguishing this meeting's fields from other tuples.
  std::string meeting_name = "meeting";
  int field_scope = tuples::FieldTuple::kUnbounded;
  SimTime control_period = SimTime::from_millis(250);
  double gain_mps = 3.0;
  /// Stop moving once every visible peer is within this many hops.
  int arrive_hops = 1;
};

class MeetingAgent {
 public:
  using Steer = std::function<void(Vec2)>;

  MeetingAgent(Middleware& mw, MeetingParams params, Steer steer);
  ~MeetingAgent();

  MeetingAgent(const MeetingAgent&) = delete;
  MeetingAgent& operator=(const MeetingAgent&) = delete;

  void start();
  void stop() { running_ = false; }

  void control_step();

  /// True when every peer field visible here reads <= arrive_hops.
  [[nodiscard]] bool arrived() const;

 private:
  [[nodiscard]] Pattern peer_fields() const;

  Middleware& mw_;
  MeetingParams params_;
  Steer steer_;
  bool running_ = false;
  bool started_ = false;

  void schedule_next();
};

}  // namespace tota::apps
