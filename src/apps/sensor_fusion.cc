#include "apps/sensor_fusion.h"

namespace tota::apps {

void SensorFusion::publish_reading(double temp) {
  clear_reading();
  // Scope 0: the reading lives only on this node; the aggregation tree,
  // not the reading, is what travels.
  auto reading = std::make_unique<tuples::GradientTuple>(kReadingField, 0);
  reading->content().set("temp", temp);
  mw_.inject(std::move(reading));
}

void SensorFusion::clear_reading() {
  Pattern mine = Pattern::of_type(tuples::GradientTuple::kTag);
  mine.eq("name", kReadingField).where("source", Pred::eq(mw_.self()));
  mw_.take(mine);
}

TupleUid SensorFusion::query_average(int within_hops, SimTime half_life) {
  Pattern readings = Pattern::of_type(tuples::GradientTuple::kTag);
  readings.eq("name", kReadingField).exists("temp");
  auto fusion = std::make_unique<tuples::AggregationTuple>(
      kFusionField, tuples::AggOp::kAvg, within_hops);
  fusion->over("temp").matching(readings);
  if (half_life.micros() > 0) fusion->with_half_life(half_life);
  return agg_.ask(std::move(fusion));
}

}  // namespace tota::apps
