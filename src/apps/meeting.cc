#include "apps/meeting.h"

namespace tota::apps {

MeetingAgent::MeetingAgent(Middleware& mw, MeetingParams params, Steer steer)
    : mw_(mw), params_(std::move(params)), steer_(std::move(steer)) {}

MeetingAgent::~MeetingAgent() { running_ = false; }

void MeetingAgent::start() {
  if (started_) return;
  started_ = true;
  running_ = true;
  auto field = std::make_unique<tuples::GradientTuple>(params_.meeting_name,
                                                       params_.field_scope);
  mw_.inject(std::move(field));
  schedule_next();
}

void MeetingAgent::schedule_next() {
  mw_.platform().schedule(params_.control_period, [this] {
    if (!running_) return;
    control_step();
    schedule_next();
  });
}

Pattern MeetingAgent::peer_fields() const {
  Pattern p = Pattern::of_type(tuples::GradientTuple::kTag);
  p.eq("name", params_.meeting_name);
  p.where("source", Pred::ne(mw_.self()));
  return p;
}

bool MeetingAgent::arrived() const {
  const auto peers = mw_.space().peek(peer_fields());
  if (peers.empty()) return false;
  for (const Tuple* t : peers) {
    const auto& field = static_cast<const tuples::GradientTuple&>(*t);
    if (field.hopcount() > params_.arrive_hops) return false;
  }
  return true;
}

void MeetingAgent::control_step() {
  if (arrived()) {
    steer_(Vec2{});
    return;
  }
  const Vec2 here = mw_.platform().position();
  Vec2 force{};
  int peers = 0;
  for (const Tuple* t : mw_.space().peek(peer_fields())) {
    const auto& field = static_cast<const tuples::GradientTuple&>(*t);
    if (!field.content().has("origin_pos")) continue;
    const Vec2 origin = field.content().at("origin_pos").as_vec2();
    const Vec2 toward = (origin - here).normalized();
    if (toward == Vec2{}) continue;
    // Descend the summed fields: weight by how far away the peer reads.
    force += toward * static_cast<double>(field.hopcount());
    ++peers;
  }
  if (peers == 0) {
    steer_(Vec2{});
    return;
  }
  force = force * (1.0 / static_cast<double>(peers));
  steer_(force * params_.gain_mps);
}

}  // namespace tota::apps
