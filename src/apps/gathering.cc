#include "apps/gathering.h"

namespace tota::apps {

InfoProvider::InfoProvider(Middleware& mw, std::string description)
    : mw_(mw), description_(std::move(description)) {}

InfoProvider::~InfoProvider() {
  if (subscription_ != 0) mw_.unsubscribe(subscription_);
}

void InfoProvider::advertise(int scope) {
  mw_.inject(std::make_unique<tuples::AdvertTuple>(description_, scope));
}

void InfoProvider::answer_queries(std::function<std::string()> value) {
  value_ = std::move(value);
  if (subscription_ != 0) return;
  Pattern queries = Pattern::of_type(tuples::QueryTuple::kTag);
  queries.eq("name", description_);
  subscription_ = mw_.subscribe(
      std::move(queries),
      [this](const Event& event) {
        const auto& query =
            static_cast<const tuples::QueryTuple&>(*event.tuple);
        if (query.home() == mw_.self()) return;  // own question
        if (!answered_.insert(query.uid()).second) return;  // field update
        ++queries_answered_;
        mw_.inject(std::make_unique<tuples::AnswerTuple>(
            query.home(), query.what(), value_ ? value_() : std::string{}));
      },
      static_cast<int>(EventKind::kTupleArrived));
}

InfoSeeker::InfoSeeker(Middleware& mw) : mw_(mw) {}

InfoSeeker::~InfoSeeker() {
  if (subscription_ != 0) mw_.unsubscribe(subscription_);
}

namespace {
InfoSeeker::AdvertInfo to_info(const Tuple& tuple) {
  const auto& advert = static_cast<const tuples::AdvertTuple&>(tuple);
  return {advert.description(), advert.location(), advert.distance()};
}
}  // namespace

std::vector<InfoSeeker::AdvertInfo> InfoSeeker::local_adverts() const {
  std::vector<AdvertInfo> out;
  for (const auto& tuple :
       mw_.read(Pattern::of_type(tuples::AdvertTuple::kTag))) {
    out.push_back(to_info(*tuple));
  }
  return out;
}

std::optional<InfoSeeker::AdvertInfo> InfoSeeker::find_advert(
    const std::string& description) const {
  Pattern pattern = Pattern::of_type(tuples::AdvertTuple::kTag);
  pattern.eq("name", description);
  const auto tuple = mw_.read_one(pattern);
  if (!tuple) return std::nullopt;
  return to_info(*tuple);
}

void InfoSeeker::query(const std::string& what, AnswerHandler on_answer,
                       int scope) {
  on_answer_ = std::move(on_answer);
  if (subscription_ == 0) {
    Pattern answers = Pattern::of_type(tuples::AnswerTuple::kTag);
    answers.eq("receiver", mw_.self());
    subscription_ = mw_.subscribe(
        std::move(answers),
        [this](const Event& event) {
          const auto& answer =
              static_cast<const tuples::AnswerTuple&>(*event.tuple);
          ++answers_received_;
          if (on_answer_) on_answer_(answer.payload());
        },
        static_cast<int>(EventKind::kTupleArrived));
  }
  mw_.inject(std::make_unique<tuples::QueryTuple>(what, scope));
}

}  // namespace tota::apps
