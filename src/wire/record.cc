#include "wire/record.h"

#include <stdexcept>

namespace tota::wire {

Record& Record::set(std::string_view name, Value value) {
  for (auto& f : fields_) {
    if (f.name == name) {
      f.value = std::move(value);
      return *this;
    }
  }
  fields_.push_back({std::string(name), std::move(value)});
  return *this;
}

bool Record::has(std::string_view name) const {
  for (const auto& f : fields_) {
    if (f.name == name) return true;
  }
  return false;
}

const Value& Record::at(std::string_view name) const {
  for (const auto& f : fields_) {
    if (f.name == name) return f.value;
  }
  throw std::out_of_range("record has no field '" + std::string(name) + "'");
}

std::optional<Value> Record::find(std::string_view name) const {
  for (const auto& f : fields_) {
    if (f.name == name) return f.value;
  }
  return std::nullopt;
}

void Record::encode(Writer& w) const {
  w.uvarint(fields_.size());
  for (const auto& f : fields_) {
    w.string(f.name);
    f.value.encode(w);
  }
}

Record Record::decode(Reader& r) {
  const auto n = r.uvarint();
  // A record is bounded by its message; refuse absurd counts early rather
  // than allocating unboundedly from hostile length prefixes.
  if (n > 4096) throw DecodeError("record field count too large");
  Record rec;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name = r.string();
    rec.fields_.push_back({std::move(name), Value::decode(r)});
  }
  return rec;
}

std::string Record::str() const {
  std::string out = "(";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name + "=" + fields_[i].value.str();
  }
  out += ")";
  return out;
}

std::size_t Record::hash() const {
  std::size_t h = fields_.size();
  for (const auto& f : fields_) {
    h = h * 1000003 + std::hash<std::string>{}(f.name);
    h = h * 1000003 + f.value.hash();
  }
  return h;
}

}  // namespace tota::wire
