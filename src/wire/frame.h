// The radio frame envelope — the single definition of what a TOTA node
// puts on the air (grammar: docs/WIRE.md).
//
// One envelope per frame, three kinds:
//
//   0x01 TUPLE   <tuple encoding>            — a propagating tuple copy
//   0x02 RETRACT <origin, seq, removed_hop>  — replica removal announcement
//   0x03 PROBE   <origin, seq, [pattern]>    — request re-announcement;
//                                              may carry an encoded
//                                              tota::Pattern as the body
//
// Frame owns all envelope encoding and decoding; nothing outside this
// file writes or interprets a FrameKind byte.  The tuple *body* stays
// opaque here (the wire layer cannot know tota::Tuple): a decoded TUPLE
// frame exposes the body as a span into the source buffer and the
// receiving engine parses it — once per broadcast when it can reach the
// FrameCodec below, once per receiver on the span-only fallback path.
//
// FrameCodec is the decode-once cache of the broadcast medium.  The
// simulator delivers one shared immutable buffer to every receiver of a
// broadcast; the first receiver decodes the tuple body into an immutable
// prototype and remembers it keyed by buffer identity, and every later
// receiver of the same frame gets the prototype back (a cache *hit*) and
// clones it instead of re-parsing.  Hits and misses are counted as
// wire.frame.decode_hit / wire.frame.decode_miss.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>

#include "common/ids.h"
#include "obs/metrics.h"
#include "wire/buffer.h"

namespace tota::wire {

enum class FrameKind : std::uint8_t { kTuple = 1, kRetract = 2, kProbe = 3 };

/// A decoded frame envelope.  For kTuple, `tuple_body` views into the
/// buffer decode() was called on and is valid only while that buffer
/// lives; kRetract/kProbe are fully decoded here.
struct Frame {
  FrameKind kind = FrameKind::kTuple;
  /// kRetract / kProbe: the tuple the control message is about.
  TupleUid uid;
  /// kRetract: the hop value the announcing node removed.
  int removed_hop = 0;
  /// kTuple: the undecoded tuple encoding (envelope stripped).
  std::span<const std::uint8_t> tuple_body;
  /// kProbe: optional encoded query pattern (tota::Pattern::decode) —
  /// empty for uid-only probes.  Like tuple_body, a view into the source
  /// buffer; the wire layer leaves it opaque (it cannot name tota).
  std::span<const std::uint8_t> probe_pattern;

  /// Parses an envelope.  Control frames are validated to the last byte;
  /// a TUPLE frame's body is left for the tuple decoder.  Throws
  /// DecodeError on truncated input or an unknown kind byte.
  static Frame decode(std::span<const std::uint8_t> payload);

  /// Builds a TUPLE frame around a caller-encoded body: writes the
  /// envelope, then hands the (pre-sized by `size_hint`) writer to
  /// `encode_body`.
  static Bytes tuple(const std::function<void(Writer&)>& encode_body,
                     std::size_t size_hint = 128);
  static Bytes retract(const TupleUid& uid, int removed_hop);
  /// Uid-only probe, or one carrying an encoded pattern body (a remote
  /// predicate query).  Old receivers that predate pattern bodies reject
  /// the longer frame; uid-only probes are byte-identical to before.
  static Bytes probe(const TupleUid& uid,
                     std::span<const std::uint8_t> pattern_body = {});
};

/// Decode-once cache over shared broadcast buffers.
///
/// Keyed by buffer *identity* (the pointer), not content: the simulator
/// hands every receiver of one broadcast the same shared_ptr, so pointer
/// equality is exactly "same transmission".  The cache holds a strong
/// reference to each remembered buffer, which pins the address for the
/// entry's lifetime — no ABA hazard.  Entries are evicted FIFO once
/// `capacity` is exceeded; an evicted frame simply decodes again.
///
/// Prototypes are type-erased (shared_ptr<const void>) because the wire
/// layer cannot name tota::Tuple; the engine casts back to the concrete
/// prototype type it stored.  Single-threaded, like the simulator.
class FrameCodec {
 public:
  using Prototype = std::shared_ptr<const void>;

  /// Registers wire.frame.decode_hit / wire.frame.decode_miss in
  /// `metrics` (which must outlive the codec).
  explicit FrameCodec(obs::MetricsRegistry& metrics,
                      std::size_t capacity = 128);

  /// The prototype remembered for `buffer`, or nullptr.  Counts one
  /// decode_hit or decode_miss — call exactly once per delivered frame.
  [[nodiscard]] Prototype lookup(const std::shared_ptr<const Bytes>& buffer);

  /// Remembers `prototype` as the decoded form of `buffer` (after a
  /// lookup() miss and a successful parse; failed parses are not cached).
  void remember(std::shared_ptr<const Bytes> buffer, Prototype prototype);

  [[nodiscard]] std::size_t size() const { return cache_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::shared_ptr<const Bytes> buffer;  // pins the key's address
    Prototype prototype;
  };

  std::unordered_map<const Bytes*, Entry> cache_;
  std::deque<const Bytes*> order_;  // insertion order, for FIFO eviction
  std::size_t capacity_;
  obs::Counter& hit_;
  obs::Counter& miss_;
};

}  // namespace tota::wire
