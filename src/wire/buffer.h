// Byte-level wire encoding.
//
// Everything a TOTA node sends to a neighbour is serialized through a
// Writer into a flat byte vector and parsed back with a bounds-checked
// Reader.  The format is little-endian with LEB128-style varints for
// integers whose typical magnitude is small (lengths, hop counts).
//
// Decoding is total: malformed input yields DecodeError, never UB — a
// middleware must survive garbage from the network.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace tota::wire {

using Bytes = std::vector<std::uint8_t>;

/// Encoded size of `v` as a LEB128 uvarint (1..10 bytes) — lets senders
/// that pack against a byte budget (net::Batcher vs the link MTU) price
/// a field without encoding it.
constexpr std::size_t uvarint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Thrown by Reader on truncated or malformed input.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what)
      : std::runtime_error("wire decode error: " + what) {}
};

/// Appends encoded values to a byte vector.
class Writer {
 public:
  Writer() = default;

  /// Pre-sizes the output for at least `n` more bytes, so a frame built
  /// field-by-field does not reallocate per field (the send hot path
  /// passes the previous frame size of the same tuple as the hint).
  void reserve(std::size_t n) { out_.reserve(out_.size() + n); }

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Unsigned varint (LEB128).
  void uvarint(std::uint64_t v);
  /// Signed varint (zig-zag + LEB128).
  void svarint(std::int64_t v);
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  /// Length-prefixed string.
  void string(std::string_view s);
  /// Length-prefixed blob.
  void blob(std::span<const std::uint8_t> data);
  /// Raw bytes, no length prefix (caller manages framing).
  void raw(std::span<const std::uint8_t> data);

  [[nodiscard]] const Bytes& bytes() const { return out_; }
  [[nodiscard]] Bytes take() { return std::move(out_); }
  [[nodiscard]] std::size_t size() const { return out_.size(); }

 private:
  Bytes out_;
};

/// Bounds-checked sequential reader over a byte span.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}
  explicit Reader(const Bytes& data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::uint64_t uvarint();
  std::int64_t svarint();
  double f64();
  bool boolean();
  std::string string();
  Bytes blob();

  /// Raw view of the next `n` bytes, no copy; the span aliases the
  /// reader's input and is valid only while that buffer lives.  Used
  /// for length-prefixed sub-envelopes (net::Datagram BATCH chunks)
  /// whose bodies are parsed by their own Reader.
  std::span<const std::uint8_t> span(std::size_t n) {
    need(n);
    const auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return pos_ == data_.size(); }
  /// Throws DecodeError unless all input was consumed.
  void expect_done() const;

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace tota::wire
