// Record — the content `C` of a TOTA tuple: an ordered list of named,
// typed fields.
//
// Field names make application code and pattern matching readable
// ("hopcount" rather than "field 2") while the wire format stays compact
// (names are short strings, encoded once per record).
#pragma once

#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "wire/value.h"

namespace tota::wire {

/// Ordered list of (name, value) fields.
class Record {
 public:
  struct Field {
    std::string name;
    Value value;
    friend bool operator==(const Field&, const Field&) = default;
  };

  Record() = default;
  Record(std::initializer_list<Field> fields) : fields_(fields) {}

  /// Appends a field; returns *this for chaining.
  Record& set(std::string_view name, Value value);

  [[nodiscard]] bool has(std::string_view name) const;
  /// Value of the named field; throws std::out_of_range if absent.
  [[nodiscard]] const Value& at(std::string_view name) const;
  /// Value if present.
  [[nodiscard]] std::optional<Value> find(std::string_view name) const;

  /// Positional access.
  [[nodiscard]] std::size_t size() const { return fields_.size(); }
  [[nodiscard]] bool empty() const { return fields_.empty(); }
  [[nodiscard]] const Field& field(std::size_t i) const { return fields_[i]; }

  [[nodiscard]] auto begin() const { return fields_.begin(); }
  [[nodiscard]] auto end() const { return fields_.end(); }

  friend bool operator==(const Record&, const Record&) = default;

  void encode(Writer& w) const;
  static Record decode(Reader& r);

  /// "(name=value, …)" for logs.
  [[nodiscard]] std::string str() const;

  [[nodiscard]] std::size_t hash() const;

 private:
  std::vector<Field> fields_;
};

}  // namespace tota::wire
