#include "wire/buffer.h"

#include <bit>

namespace tota::wire {

void Writer::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v));
  u16(static_cast<std::uint16_t>(v >> 16));
}

void Writer::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void Writer::uvarint(std::uint64_t v) {
  while (v >= 0x80) {
    u8(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  u8(static_cast<std::uint8_t>(v));
}

void Writer::svarint(std::int64_t v) {
  // Zig-zag: maps small negatives to small unsigned values.
  uvarint((static_cast<std::uint64_t>(v) << 1) ^
          static_cast<std::uint64_t>(v >> 63));
}

void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Writer::string(std::string_view s) {
  uvarint(s.size());
  const auto* p = reinterpret_cast<const std::uint8_t*>(s.data());
  out_.insert(out_.end(), p, p + s.size());
}

void Writer::blob(std::span<const std::uint8_t> data) {
  uvarint(data.size());
  out_.insert(out_.end(), data.begin(), data.end());
}

void Writer::raw(std::span<const std::uint8_t> data) {
  out_.insert(out_.end(), data.begin(), data.end());
}

void Reader::need(std::size_t n) const {
  if (remaining() < n) throw DecodeError("truncated input");
}

std::uint8_t Reader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  const auto lo = u8();
  return static_cast<std::uint16_t>(lo | (u8() << 8));
}

std::uint32_t Reader::u32() {
  const std::uint32_t lo = u16();
  return lo | (static_cast<std::uint32_t>(u16()) << 16);
}

std::uint64_t Reader::u64() {
  const std::uint64_t lo = u32();
  return lo | (static_cast<std::uint64_t>(u32()) << 32);
}

std::uint64_t Reader::uvarint() {
  std::uint64_t result = 0;
  int shift = 0;
  for (;;) {
    const std::uint8_t byte = u8();
    if (shift == 63 && (byte & ~std::uint8_t{1}) != 0) {
      throw DecodeError("varint overflow");
    }
    result |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return result;
    shift += 7;
    if (shift > 63) throw DecodeError("varint too long");
  }
}

std::int64_t Reader::svarint() {
  const std::uint64_t z = uvarint();
  return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

double Reader::f64() { return std::bit_cast<double>(u64()); }

bool Reader::boolean() {
  const auto v = u8();
  if (v > 1) throw DecodeError("invalid boolean");
  return v == 1;
}

std::string Reader::string() {
  const auto len = uvarint();
  need(len);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return s;
}

Bytes Reader::blob() {
  const auto len = uvarint();
  need(len);
  Bytes b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
          data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
  pos_ += len;
  return b;
}

void Reader::expect_done() const {
  if (!done()) throw DecodeError("trailing bytes after message");
}

}  // namespace tota::wire
