// Typed tuple field values.
//
// A TOTA tuple's content C is "an ordered set of typed fields"; Value is
// one such field.  The variant covers the types the paper's examples need
// (names, hop counts, node references, positions, payload blobs) plus a
// Null used by templates to mean "any value" (formal/wildcard field).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "common/geometry.h"
#include "common/ids.h"
#include "wire/buffer.h"

namespace tota::wire {

/// Discriminator tags; stable on the wire — never reorder.
enum class ValueType : std::uint8_t {
  kNull = 0,
  kInt = 1,
  kDouble = 2,
  kBool = 3,
  kString = 4,
  kNodeId = 5,
  kVec2 = 6,
  kBlob = 7,
};

const char* to_string(ValueType type);

/// A single typed field value with total ordering, hashing, and wire
/// encode/decode.
class Value {
 public:
  Value() = default;  // Null
  Value(std::int64_t v) : v_(v) {}
  Value(int v) : v_(static_cast<std::int64_t>(v)) {}
  Value(double v) : v_(v) {}
  Value(bool v) : v_(v) {}
  Value(std::string v) : v_(std::move(v)) {}
  Value(const char* v) : v_(std::string(v)) {}
  Value(NodeId v) : v_(v) {}
  Value(Vec2 v) : v_(v) {}
  Value(std::vector<std::uint8_t> v) : v_(std::move(v)) {}

  [[nodiscard]] ValueType type() const;
  [[nodiscard]] bool is_null() const { return type() == ValueType::kNull; }

  // Checked accessors: throw std::bad_variant_access on type mismatch.
  [[nodiscard]] std::int64_t as_int() const {
    return std::get<std::int64_t>(v_);
  }
  [[nodiscard]] double as_double() const { return std::get<double>(v_); }
  [[nodiscard]] bool as_bool() const { return std::get<bool>(v_); }
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(v_);
  }
  [[nodiscard]] NodeId as_node() const { return std::get<NodeId>(v_); }
  [[nodiscard]] Vec2 as_vec2() const { return std::get<Vec2>(v_); }
  [[nodiscard]] const std::vector<std::uint8_t>& as_blob() const {
    return std::get<std::vector<std::uint8_t>>(v_);
  }

  /// Numeric view: int and double both convert; throws otherwise.
  [[nodiscard]] double as_number() const;

  friend bool operator==(const Value& a, const Value& b) = default;

  /// Total order across types (by type tag first), so values can key
  /// ordered containers.
  [[nodiscard]] bool less(const Value& other) const;

  void encode(Writer& w) const;
  static Value decode(Reader& r);

  [[nodiscard]] std::string str() const;

  [[nodiscard]] std::size_t hash() const;

 private:
  struct Null {
    friend bool operator==(Null, Null) { return true; }
  };
  using Storage = std::variant<Null, std::int64_t, double, bool, std::string,
                               NodeId, Vec2, std::vector<std::uint8_t>>;
  Storage v_;
};

inline bool operator<(const Value& a, const Value& b) { return a.less(b); }

/// Domain-ordered comparison for predicate evaluation (tota::Pred):
/// numbers compare numerically (int and double mix), strings compare
/// lexicographically.  Every other pairing — and NaN — is unordered and
/// yields nullopt, which ordered predicates treat as "no match".  This is
/// deliberately narrower than Value::less, whose cross-type total order
/// exists only to key containers and has no query meaning.
[[nodiscard]] std::optional<int> compare_ordered(const Value& a,
                                                 const Value& b);

}  // namespace tota::wire
