#include "wire/value.h"

#include <cstdio>
#include <functional>

namespace tota::wire {

const char* to_string(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kBool:
      return "bool";
    case ValueType::kString:
      return "string";
    case ValueType::kNodeId:
      return "node";
    case ValueType::kVec2:
      return "vec2";
    case ValueType::kBlob:
      return "blob";
  }
  return "?";
}

ValueType Value::type() const {
  // Variant alternative order mirrors the ValueType enum.
  return static_cast<ValueType>(v_.index());
}

double Value::as_number() const {
  if (type() == ValueType::kInt) return static_cast<double>(as_int());
  return as_double();
}

bool Value::less(const Value& other) const {
  if (type() != other.type()) return type() < other.type();
  switch (type()) {
    case ValueType::kNull:
      return false;
    case ValueType::kInt:
      return as_int() < other.as_int();
    case ValueType::kDouble:
      return as_double() < other.as_double();
    case ValueType::kBool:
      return as_bool() < other.as_bool();
    case ValueType::kString:
      return as_string() < other.as_string();
    case ValueType::kNodeId:
      return as_node() < other.as_node();
    case ValueType::kVec2: {
      const Vec2 a = as_vec2();
      const Vec2 b = other.as_vec2();
      return a.x != b.x ? a.x < b.x : a.y < b.y;
    }
    case ValueType::kBlob:
      return as_blob() < other.as_blob();
  }
  return false;
}

void Value::encode(Writer& w) const {
  w.u8(static_cast<std::uint8_t>(type()));
  switch (type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      w.svarint(as_int());
      break;
    case ValueType::kDouble:
      w.f64(as_double());
      break;
    case ValueType::kBool:
      w.boolean(as_bool());
      break;
    case ValueType::kString:
      w.string(as_string());
      break;
    case ValueType::kNodeId:
      w.uvarint(as_node().value());
      break;
    case ValueType::kVec2:
      w.f64(as_vec2().x);
      w.f64(as_vec2().y);
      break;
    case ValueType::kBlob:
      w.blob(as_blob());
      break;
  }
}

Value Value::decode(Reader& r) {
  const auto tag = r.u8();
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return Value{};
    case ValueType::kInt:
      return Value{r.svarint()};
    case ValueType::kDouble:
      return Value{r.f64()};
    case ValueType::kBool:
      return Value{r.boolean()};
    case ValueType::kString:
      return Value{r.string()};
    case ValueType::kNodeId:
      return Value{NodeId{r.uvarint()}};
    case ValueType::kVec2: {
      const double x = r.f64();
      const double y = r.f64();
      return Value{Vec2{x, y}};
    }
    case ValueType::kBlob:
      return Value{r.blob()};
  }
  throw DecodeError("unknown value tag " + std::to_string(tag));
}

std::string Value::str() const {
  switch (type()) {
    case ValueType::kNull:
      return "_";
    case ValueType::kInt:
      return std::to_string(as_int());
    case ValueType::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%g", as_double());
      return buf;
    }
    case ValueType::kBool:
      return as_bool() ? "true" : "false";
    case ValueType::kString:
      return "\"" + as_string() + "\"";
    case ValueType::kNodeId:
      return tota::to_string(as_node());
    case ValueType::kVec2:
      return tota::to_string(as_vec2());
    case ValueType::kBlob:
      return "blob[" + std::to_string(as_blob().size()) + "]";
  }
  return "?";
}

std::optional<int> compare_ordered(const Value& a, const Value& b) {
  const auto numeric = [](const Value& v) {
    return v.type() == ValueType::kInt || v.type() == ValueType::kDouble;
  };
  if (numeric(a) && numeric(b)) {
    if (a.type() == ValueType::kInt && b.type() == ValueType::kInt) {
      const std::int64_t av = a.as_int();
      const std::int64_t bv = b.as_int();
      return av < bv ? -1 : (bv < av ? 1 : 0);
    }
    const double av = a.as_number();
    const double bv = b.as_number();
    if (av < bv) return -1;
    if (bv < av) return 1;
    if (av == bv) return 0;
    return std::nullopt;  // NaN on either side
  }
  if (a.type() == ValueType::kString && b.type() == ValueType::kString) {
    const int c = a.as_string().compare(b.as_string());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  return std::nullopt;
}

std::size_t Value::hash() const {
  const std::size_t seed = static_cast<std::size_t>(type()) * 0x9E3779B9u;
  auto mix = [seed](std::size_t h) {
    return seed ^ (h + 0x9E3779B9u + (seed << 6) + (seed >> 2));
  };
  switch (type()) {
    case ValueType::kNull:
      return seed;
    case ValueType::kInt:
      return mix(std::hash<std::int64_t>{}(as_int()));
    case ValueType::kDouble:
      return mix(std::hash<double>{}(as_double()));
    case ValueType::kBool:
      return mix(std::hash<bool>{}(as_bool()));
    case ValueType::kString:
      return mix(std::hash<std::string>{}(as_string()));
    case ValueType::kNodeId:
      return mix(std::hash<NodeId>{}(as_node()));
    case ValueType::kVec2:
      return mix(std::hash<double>{}(as_vec2().x) * 31 +
                 std::hash<double>{}(as_vec2().y));
    case ValueType::kBlob: {
      std::size_t h = as_blob().size();
      for (auto b : as_blob()) h = h * 131 + b;
      return mix(h);
    }
  }
  return seed;
}

}  // namespace tota::wire
