// Polymorphic type registry.
//
// TOTA propagates *objects* (tuple subclasses with behaviour), so a
// receiving node must reconstruct the right subclass from the wire.  Each
// registered type gets a stable string tag; the registry maps tags to
// factories.  This is the simulator-friendly analogue of the Java
// prototype's class loading.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace tota::wire {

/// Thrown when decoding meets a type tag with no registered factory.
class UnknownTypeError : public std::runtime_error {
 public:
  explicit UnknownTypeError(const std::string& tag)
      : std::runtime_error("unknown wire type tag: " + tag) {}
};

/// Registry of default-constructible subclasses of Base, keyed by a stable
/// string tag.  Typically used as a process-wide singleton per base class.
template <typename Base>
class TypeRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Base>()>;

  /// Registers a factory; replaces any previous registration for the tag
  /// (convenient for tests that re-register mock types).
  void register_type(const std::string& tag, Factory factory) {
    factories_[tag] = std::move(factory);
  }

  template <typename Derived>
  void register_default(const std::string& tag) {
    register_type(tag, [] { return std::make_unique<Derived>(); });
  }

  [[nodiscard]] bool knows(const std::string& tag) const {
    return factories_.count(tag) > 0;
  }

  /// Creates a fresh instance for the tag; throws UnknownTypeError.
  [[nodiscard]] std::unique_ptr<Base> create(const std::string& tag) const {
    const auto it = factories_.find(tag);
    if (it == factories_.end()) throw UnknownTypeError(tag);
    return it->second();
  }

  [[nodiscard]] std::vector<std::string> tags() const {
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto& [tag, _] : factories_) out.push_back(tag);
    return out;
  }

 private:
  std::map<std::string, Factory> factories_;
};

}  // namespace tota::wire
