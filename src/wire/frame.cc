#include "wire/frame.h"

namespace tota::wire {

namespace {

// Worst-case envelope sizes, for Writer::reserve: kind byte plus two
// 64-bit varints (10 bytes each) plus a small svarint.
constexpr std::size_t kControlFrameReserve = 1 + 10 + 10 + 5;

void write_uid(Writer& w, const TupleUid& uid) {
  w.uvarint(uid.origin().value());
  w.uvarint(uid.sequence());
}

TupleUid read_uid(Reader& r) {
  const NodeId origin{r.uvarint()};
  const std::uint64_t seq = r.uvarint();
  return TupleUid{origin, seq};
}

}  // namespace

Frame Frame::decode(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  Frame frame;
  frame.kind = static_cast<FrameKind>(r.u8());
  switch (frame.kind) {
    case FrameKind::kTuple:
      frame.tuple_body = payload.subspan(1);
      return frame;
    case FrameKind::kRetract:
      frame.uid = read_uid(r);
      frame.removed_hop = static_cast<int>(r.svarint());
      r.expect_done();
      return frame;
    case FrameKind::kProbe:
      frame.uid = read_uid(r);
      // Anything after the uid is an encoded pattern body, handed to the
      // engine undecoded (the wire layer cannot name tota::Pattern).
      frame.probe_pattern = payload.subspan(payload.size() - r.remaining());
      return frame;
  }
  throw DecodeError("unknown frame kind");
}

Bytes Frame::tuple(const std::function<void(Writer&)>& encode_body,
                   std::size_t size_hint) {
  Writer w;
  w.reserve(1 + size_hint);
  w.u8(static_cast<std::uint8_t>(FrameKind::kTuple));
  encode_body(w);
  return w.take();
}

Bytes Frame::retract(const TupleUid& uid, int removed_hop) {
  Writer w;
  w.reserve(kControlFrameReserve);
  w.u8(static_cast<std::uint8_t>(FrameKind::kRetract));
  write_uid(w, uid);
  w.svarint(removed_hop);
  return w.take();
}

Bytes Frame::probe(const TupleUid& uid,
                   std::span<const std::uint8_t> pattern_body) {
  Writer w;
  w.reserve(kControlFrameReserve + pattern_body.size());
  w.u8(static_cast<std::uint8_t>(FrameKind::kProbe));
  write_uid(w, uid);
  w.raw(pattern_body);
  return w.take();
}

FrameCodec::FrameCodec(obs::MetricsRegistry& metrics, std::size_t capacity)
    : capacity_(capacity),
      hit_(metrics.counter("wire.frame.decode_hit")),
      miss_(metrics.counter("wire.frame.decode_miss")) {}

FrameCodec::Prototype FrameCodec::lookup(
    const std::shared_ptr<const Bytes>& buffer) {
  const auto it = cache_.find(buffer.get());
  if (it == cache_.end()) {
    miss_.inc();
    return nullptr;
  }
  hit_.inc();
  return it->second.prototype;
}

void FrameCodec::remember(std::shared_ptr<const Bytes> buffer,
                          Prototype prototype) {
  const Bytes* key = buffer.get();
  if (key == nullptr || prototype == nullptr) return;
  auto& slot = cache_[key];
  const bool fresh = slot.buffer == nullptr;
  slot = Entry{std::move(buffer), std::move(prototype)};
  // Queue the key once: a re-remember of a cached buffer must not leave a
  // second order entry whose eviction would count against a live one.
  if (fresh) order_.push_back(key);
  while (cache_.size() > capacity_ && !order_.empty()) {
    cache_.erase(order_.front());
    order_.pop_front();
  }
}

}  // namespace tota::wire
