#include "emu/render.h"

#include <algorithm>
#include <fstream>
#include <vector>

namespace tota::emu {

namespace {

/// Maps a world position to integer cell coordinates, clamped to bounds.
struct Mapper {
  Rect arena;
  int width;
  int height;

  [[nodiscard]] std::pair<int, int> cell(Vec2 p) const {
    const double fx = (p.x - arena.min.x) / std::max(arena.width(), 1e-9);
    const double fy = (p.y - arena.min.y) / std::max(arena.height(), 1e-9);
    const int cx =
        std::clamp(static_cast<int>(fx * width), 0, width - 1);
    const int cy =
        std::clamp(static_cast<int>(fy * height), 0, height - 1);
    return {cx, cy};
  }
};

}  // namespace

std::string ascii_map(const sim::Network& net, Rect arena, int width,
                      int height, const GlyphFn& glyph) {
  std::vector<std::string> rows(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width),
                                            '.'));
  const Mapper map{arena, width, height};
  for (const NodeId id : net.nodes()) {
    const auto [cx, cy] = map.cell(net.position(id));
    char g = glyph ? glyph(id) : '\0';
    if (g == '\0') g = '*';
    // Row 0 is the top of the map (max y).
    rows[static_cast<std::size_t>(height - 1 - cy)]
        [static_cast<std::size_t>(cx)] = g;
  }
  std::string out;
  for (const auto& row : rows) {
    out += row;
    out += '\n';
  }
  return out;
}

bool write_ppm(const std::string& path, const sim::Network& net, Rect arena,
               int width, int height, const ColorFn& color) {
  std::ofstream file(path, std::ios::binary);
  if (!file) return false;
  std::vector<std::array<std::uint8_t, 3>> pixels(
      static_cast<std::size_t>(width) * static_cast<std::size_t>(height),
      {20, 20, 28});
  const Mapper map{arena, width, height};
  for (const NodeId id : net.nodes()) {
    const auto [cx, cy] = map.cell(net.position(id));
    const auto rgb =
        color ? color(id) : std::array<std::uint8_t, 3>{240, 240, 240};
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const int px = cx + dx;
        const int py = height - 1 - cy + dy;
        if (px < 0 || px >= width || py < 0 || py >= height) continue;
        pixels[static_cast<std::size_t>(py) * static_cast<std::size_t>(width) +
               static_cast<std::size_t>(px)] = rgb;
      }
    }
  }
  file << "P6\n" << width << ' ' << height << "\n255\n";
  file.write(reinterpret_cast<const char*>(pixels.data()),
             static_cast<std::streamsize>(pixels.size() * 3));
  return static_cast<bool>(file);
}

}  // namespace tota::emu
