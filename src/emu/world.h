// World — the headless emulator (paper §4.2).
//
// "Since the effective testing of TOTA would require a larger number of
// devices, we have implemented a graphic emulator to analyze TOTA behavior
// in presence of hundreds of nodes."  This is that emulator, headless and
// deterministic: it owns a simulated network and one full TOTA middleware
// per node, plus scenario builders (grids, random deployments, churn) and
// the drag-and-drop equivalent (scripted waypoints / teleports).
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/network.h"
#include "tota/middleware.h"
#include "emu/sim_platform.h"

namespace tota::emu {

/// World construction knobs.  Defined at namespace scope (not nested) so
/// its member initializers are complete where World's constructor uses
/// the struct as a default argument; spell it World::Options.
struct WorldOptions {
  sim::NetworkParams net;
  MaintenanceOptions maintenance;
  /// Observability hub the network and every node record into; nullptr
  /// (the default) gives the world a private hub, so identical worlds
  /// produce identical metrics regardless of what else ran in the
  /// process.  Pass &obs::default_hub() to accumulate process-wide
  /// (what the bench harness does so BENCH_*.json sees every world), or
  /// any local Hub for per-sweep isolation with explicit merging.
  obs::Hub* hub = nullptr;
};

class World {
 public:
  using Options = WorldOptions;

  explicit World(Options options = {});

  // --- population -----------------------------------------------------------

  /// Creates a node + middleware at `position`.
  NodeId spawn(Vec2 position,
               std::unique_ptr<sim::MobilityModel> mobility = nullptr);

  /// rows × cols grid with the given spacing, anchored at `origin`.
  /// Spacing at or below the radio range yields a connected 8/4-neighbour
  /// mesh.
  std::vector<NodeId> spawn_grid(int rows, int cols, double spacing,
                                 Vec2 origin = {});

  /// `n` nodes uniformly random in `arena`; `mobility_factory` (optional)
  /// builds each node's mobility model.
  std::vector<NodeId> spawn_random(
      int n, Rect arena,
      const std::function<std::unique_ptr<sim::MobilityModel>(Rng&)>&
          mobility_factory = nullptr);

  /// Tears the node down (crash/leave — neighbours just see link loss).
  void despawn(NodeId id);

  // --- access ------------------------------------------------------------------

  [[nodiscard]] Middleware& mw(NodeId id);
  [[nodiscard]] const Middleware& mw(NodeId id) const;
  /// Per-node hardware heterogeneity (net/device_profile.h): duty cycle,
  /// MTU, tx latency scale, gateway flag.
  void set_profile(NodeId id, net::DeviceProfile profile) {
    net_.set_profile(id, profile);
  }
  [[nodiscard]] sim::Network& net() { return net_; }
  [[nodiscard]] const sim::Network& net() const { return net_; }
  /// The observability hub this world records into (Options::hub, or
  /// this world's private hub).
  [[nodiscard]] obs::Hub& hub() { return net_.hub(); }
  [[nodiscard]] std::vector<NodeId> nodes() const { return net_.nodes(); }

  // --- time ---------------------------------------------------------------------

  [[nodiscard]] SimTime now() const { return net_.now(); }
  void run_for(SimTime duration) { net_.run_for(duration); }
  void run_until(SimTime deadline) { net_.run_until(deadline); }

 private:
  struct NodeCell {
    std::unique_ptr<SimPlatform> platform;
    std::unique_ptr<Middleware> middleware;
    std::unique_ptr<sim::Host> adapter;
  };

  obs::Hub owned_hub_;  // used when Options::hub is null; before net_
  sim::Network net_;
  Options options_;
  std::unordered_map<NodeId, NodeCell> cells_;
};

}  // namespace tota::emu
