// World — the headless emulator (paper §4.2).
//
// "Since the effective testing of TOTA would require a larger number of
// devices, we have implemented a graphic emulator to analyze TOTA behavior
// in presence of hundreds of nodes."  This is that emulator, headless and
// deterministic: it owns a simulated network and one full TOTA middleware
// per node, plus scenario builders (grids, random deployments, churn) and
// the drag-and-drop equivalent (scripted waypoints / teleports).
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/network.h"
#include "tota/middleware.h"
#include "emu/sim_platform.h"

namespace tota::emu {

class World {
 public:
  struct Options {
    sim::NetworkParams net;
    MaintenanceOptions maintenance;
  };

  explicit World(Options options = {});

  // --- population -----------------------------------------------------------

  /// Creates a node + middleware at `position`.
  NodeId spawn(Vec2 position,
               std::unique_ptr<sim::MobilityModel> mobility = nullptr);

  /// rows × cols grid with the given spacing, anchored at `origin`.
  /// Spacing at or below the radio range yields a connected 8/4-neighbour
  /// mesh.
  std::vector<NodeId> spawn_grid(int rows, int cols, double spacing,
                                 Vec2 origin = {});

  /// `n` nodes uniformly random in `arena`; `mobility_factory` (optional)
  /// builds each node's mobility model.
  std::vector<NodeId> spawn_random(
      int n, Rect arena,
      const std::function<std::unique_ptr<sim::MobilityModel>(Rng&)>&
          mobility_factory = nullptr);

  /// Tears the node down (crash/leave — neighbours just see link loss).
  void despawn(NodeId id);

  // --- access ------------------------------------------------------------------

  [[nodiscard]] Middleware& mw(NodeId id);
  [[nodiscard]] const Middleware& mw(NodeId id) const;
  [[nodiscard]] sim::Network& net() { return net_; }
  [[nodiscard]] const sim::Network& net() const { return net_; }
  [[nodiscard]] std::vector<NodeId> nodes() const { return net_.nodes(); }

  // --- time ---------------------------------------------------------------------

  [[nodiscard]] SimTime now() const { return net_.now(); }
  void run_for(SimTime duration) { net_.run_for(duration); }
  void run_until(SimTime deadline) { net_.run_until(deadline); }

 private:
  struct NodeCell {
    std::unique_ptr<SimPlatform> platform;
    std::unique_ptr<Middleware> middleware;
    std::unique_ptr<sim::Host> adapter;
  };

  sim::Network net_;
  Options options_;
  std::unordered_map<NodeId, NodeCell> cells_;
};

}  // namespace tota::emu
