#include "emu/world.h"

#include <stdexcept>

#include "emu/host_adapter.h"
#include "tuples/all.h"

namespace tota::emu {

World::World(Options options)
    : net_(options.net, options.hub != nullptr ? options.hub : &owned_hub_),
      options_(options) {
  tuples::register_standard_tuples();
}

NodeId World::spawn(Vec2 position,
                    std::unique_ptr<sim::MobilityModel> mobility) {
  const NodeId id = net_.add_node(position, std::move(mobility));
  NodeCell cell;
  cell.platform = std::make_unique<SimPlatform>(net_, id);
  cell.middleware = std::make_unique<Middleware>(
      id, *cell.platform, options_.maintenance, &net_.hub());
  cell.adapter = std::make_unique<HostAdapter>(*cell.middleware);
  net_.attach(id, cell.adapter.get());
  cells_.emplace(id, std::move(cell));
  return id;
}

std::vector<NodeId> World::spawn_grid(int rows, int cols, double spacing,
                                      Vec2 origin) {
  std::vector<NodeId> ids;
  ids.reserve(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols));
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      ids.push_back(spawn(
          {origin.x + spacing * static_cast<double>(c),
           origin.y + spacing * static_cast<double>(r)}));
    }
  }
  return ids;
}

std::vector<NodeId> World::spawn_random(
    int n, Rect arena,
    const std::function<std::unique_ptr<sim::MobilityModel>(Rng&)>&
        mobility_factory) {
  std::vector<NodeId> ids;
  ids.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const Vec2 pos{net_.rng().uniform(arena.min.x, arena.max.x),
                   net_.rng().uniform(arena.min.y, arena.max.y)};
    ids.push_back(
        spawn(pos, mobility_factory ? mobility_factory(net_.rng()) : nullptr));
  }
  return ids;
}

void World::despawn(NodeId id) {
  net_.remove_node(id);
  cells_.erase(id);  // SimPlatform dtor disarms the node's pending timers
}

Middleware& World::mw(NodeId id) {
  const auto it = cells_.find(id);
  if (it == cells_.end()) throw std::invalid_argument("unknown node");
  return *it->second.middleware;
}

const Middleware& World::mw(NodeId id) const {
  const auto it = cells_.find(id);
  if (it == cells_.end()) throw std::invalid_argument("unknown node");
  return *it->second.middleware;
}

}  // namespace tota::emu
