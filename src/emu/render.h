// Headless rendering of emulator snapshots (the content of paper Fig. 3,
// without the GUI): ASCII maps for terminals/tests and PPM images for
// reports.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "common/geometry.h"
#include "sim/network.h"

namespace tota::emu {

/// Glyph chosen per node; return '\0' to use the default '*'.
using GlyphFn = std::function<char(NodeId)>;

/// Renders node positions inside `arena` onto a width×height character
/// grid.  Multiple nodes in one cell show the last one drawn (node-id
/// order).  Rows are returned top-down (max y first), newline-separated.
std::string ascii_map(const sim::Network& net, Rect arena, int width,
                      int height, const GlyphFn& glyph = nullptr);

/// RGB color per node for PPM rendering.
using ColorFn = std::function<std::array<std::uint8_t, 3>(NodeId)>;

/// Writes a binary PPM (P6) image of the node layout; each node paints a
/// 3×3 dot.  Returns false if the file could not be written.
bool write_ppm(const std::string& path, const sim::Network& net, Rect arena,
               int width, int height, const ColorFn& color = nullptr);

}  // namespace tota::emu
