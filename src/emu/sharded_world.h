// ShardedWorld — the headless emulator at 100k-node scale.
//
// Same node stack as emu::World (one full TOTA Middleware per node), but
// scheduled by sim::ShardedSim: the world is split into per-thread shards
// that advance in conservative-lookahead epochs (docs/SIM.md).  The
// trade-offs versus World: population is frozen after seal(), churn is
// expressed as quiescent-point teleports (move_node), and mobility
// models / wired mode / fault injection are not available.  In exchange,
// worlds of 50k–100k nodes run on all cores, bit-for-bit reproducibly
// per (seed, shard_count).
//
// Build phase vs run phase:
//
//   ShardedWorld w(opts);            // opts.net.shards = thread count
//   auto ids = w.spawn_grid(224, 224, 80.0);
//   w.seal();                        // or implied by the first run_for
//   w.mw(ids[0]).inject(...);        // quiescent-point API, as in World
//   w.run_for(SimTime::from_seconds(5));
//
// Middleware access (mw(), read/inject/subscribe) and topology mutation
// (move_node) are quiescent-point operations: legal from the driver
// thread between run_for calls, never from inside a reaction.
#pragma once

#include <memory>
#include <vector>

#include "emu/host_adapter.h"
#include "sim/shard.h"
#include "tota/middleware.h"

namespace tota::emu {

/// Binds a Middleware to its owner shard: timers and broadcasts go to
/// the shard's EventQueue, randomness comes from a per-node fork of the
/// shard's Rng stream, decoded frames share the shard's codec.
class ShardPlatform final : public Platform {
 public:
  ShardPlatform(sim::ShardedSim& sim, NodeId id)
      : sim_(sim), id_(id), rng_(sim.shard_rng(id).fork()) {}

  ShardPlatform(const ShardPlatform&) = delete;
  ShardPlatform& operator=(const ShardPlatform&) = delete;

  void broadcast(wire::Bytes payload) override {
    sim_.broadcast(id_, std::move(payload));
  }
  [[nodiscard]] SimTime now() const override { return sim_.node_now(id_); }
  TimerId schedule(SimTime delay, std::function<void()> action) override {
    return sim_.schedule(id_, delay, std::move(action));
  }
  void cancel(TimerId id) override { sim_.cancel(id_, id); }
  [[nodiscard]] Vec2 position() const override { return sim_.position(id_); }
  [[nodiscard]] Rng& rng() override { return rng_; }
  [[nodiscard]] wire::FrameCodec* frame_codec() override {
    return &sim_.frame_codec(id_);
  }

 private:
  sim::ShardedSim& sim_;
  NodeId id_;
  Rng rng_;
};

struct ShardedWorldOptions {
  sim::ShardedParams net;
  MaintenanceOptions maintenance;
};

class ShardedWorld {
 public:
  using Options = ShardedWorldOptions;

  explicit ShardedWorld(Options options = {});

  // --- population (build phase; before seal) ----------------------------

  NodeId spawn(Vec2 position);
  /// rows × cols grid with the given spacing, anchored at `origin`.
  std::vector<NodeId> spawn_grid(int rows, int cols, double spacing,
                                 Vec2 origin = {});

  /// Freezes the population, partitions the world, and builds every
  /// node's middleware stack.  Idempotent; implied by run_*/mw().
  void seal();

  // --- access (quiescent points) ----------------------------------------

  [[nodiscard]] Middleware& mw(NodeId id);
  [[nodiscard]] const Middleware& mw(NodeId id) const;
  [[nodiscard]] sim::ShardedSim& net() { return sim_; }
  [[nodiscard]] const sim::ShardedSim& net() const { return sim_; }
  [[nodiscard]] std::vector<NodeId> nodes() const { return sim_.nodes(); }

  /// Teleports a node (the scripted churn primitive).
  void move_node(NodeId id, Vec2 position) { sim_.move_node(id, position); }

  /// Per-node hardware heterogeneity (net/device_profile.h); quiescent
  /// points only, tx_delay_scale >= 1.0 when sharded.
  void set_profile(NodeId id, net::DeviceProfile profile) {
    sim_.set_profile(id, profile);
  }

  /// Deterministic merged view of every shard's metrics plus the
  /// scheduler's sim.shard.* counters.
  void export_metrics(obs::MetricsRegistry& into) const {
    sim_.export_metrics(into);
  }

  // --- time -------------------------------------------------------------

  [[nodiscard]] SimTime now() const { return sim_.now(); }
  void run_for(SimTime duration) {
    seal();
    sim_.run_for(duration);
  }
  void run_until(SimTime deadline) {
    seal();
    sim_.run_until(deadline);
  }

 private:
  struct NodeCell {
    std::unique_ptr<ShardPlatform> platform;
    std::unique_ptr<Middleware> middleware;
    std::unique_ptr<HostAdapter> adapter;
  };

  Options options_;
  sim::ShardedSim sim_;
  std::vector<NodeId> pending_;   // spawned, stack not built yet
  std::vector<NodeCell> cells_;   // indexed by NodeId value; slot 0 unused
  bool built_ = false;
};

}  // namespace tota::emu
