// SimPlatform — binds a TOTA Middleware to the network simulator.
//
// Implements the Platform interface (broadcast / clock / timers / location
// sensor / randomness) on top of sim::Network.  Scheduled actions are
// guarded by an aliveness token so a node can be torn down (churn!) while
// its timers are still in flight.
#pragma once

#include <memory>

#include "sim/network.h"
#include "tota/platform.h"

namespace tota::emu {

class SimPlatform final : public Platform {
 public:
  SimPlatform(sim::Network& net, NodeId id)
      : net_(net), id_(id), rng_(net.rng().fork()) {}

  ~SimPlatform() override { *alive_ = false; }

  SimPlatform(const SimPlatform&) = delete;
  SimPlatform& operator=(const SimPlatform&) = delete;

  void broadcast(wire::Bytes payload) override {
    net_.broadcast(id_, std::move(payload));
  }

  [[nodiscard]] SimTime now() const override { return net_.now(); }

  TimerId schedule(SimTime delay, std::function<void()> action) override {
    // sim::EventQueue ids start at 1, so they double as TimerIds directly.
    return net_.schedule(delay, [alive = alive_, action = std::move(action)] {
      if (*alive) action();
    });
  }

  void cancel(TimerId id) override { net_.cancel(id); }

  [[nodiscard]] Vec2 position() const override {
    if (net_.alive(id_)) last_position_ = net_.position(id_);
    return last_position_;
  }

  [[nodiscard]] Rng& rng() override { return rng_; }

  /// All nodes on one simulated medium share the network's decode-once
  /// cache; real/emulated UDP platforms keep the base nullptr (each
  /// process sees its own private buffer, so there is nothing to share).
  [[nodiscard]] wire::FrameCodec* frame_codec() override {
    return &net_.frame_codec();
  }

 private:
  sim::Network& net_;
  NodeId id_;
  Rng rng_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  mutable Vec2 last_position_;
};

}  // namespace tota::emu
