#include "emu/sharded_world.h"

#include <stdexcept>

#include "tuples/all.h"

namespace tota::emu {

ShardedWorld::ShardedWorld(Options options)
    : options_(options), sim_(options.net) {
  tuples::register_standard_tuples();
}

NodeId ShardedWorld::spawn(Vec2 position) {
  const NodeId id = sim_.add_node(position);
  pending_.push_back(id);
  return id;
}

std::vector<NodeId> ShardedWorld::spawn_grid(int rows, int cols,
                                             double spacing, Vec2 origin) {
  std::vector<NodeId> ids;
  ids.reserve(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols));
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      ids.push_back(spawn({origin.x + spacing * static_cast<double>(c),
                           origin.y + spacing * static_cast<double>(r)}));
    }
  }
  return ids;
}

void ShardedWorld::seal() {
  if (built_) return;
  built_ = true;
  // Partition first: each node's platform forks its owner shard's Rng
  // stream, so ownership must exist before any stack is built.  Cells
  // are built in node-id order — the fork order, and therefore every
  // node's private stream, is deterministic per (seed, shard_count).
  sim_.seal();
  cells_.resize(pending_.size() + 1);
  for (const NodeId id : pending_) {
    NodeCell& cell = cells_[id.value()];
    cell.platform = std::make_unique<ShardPlatform>(sim_, id);
    cell.middleware = std::make_unique<Middleware>(
        id, *cell.platform, options_.maintenance, &sim_.shard_hub(id));
    cell.adapter = std::make_unique<HostAdapter>(*cell.middleware);
    sim_.attach(id, cell.adapter.get());
  }
  pending_.clear();
}

Middleware& ShardedWorld::mw(NodeId id) {
  seal();
  if (id.value() == 0 || id.value() >= cells_.size() ||
      cells_[id.value()].middleware == nullptr) {
    throw std::invalid_argument("unknown node");
  }
  return *cells_[id.value()].middleware;
}

const Middleware& ShardedWorld::mw(NodeId id) const {
  if (!built_ || id.value() == 0 || id.value() >= cells_.size() ||
      cells_[id.value()].middleware == nullptr) {
    throw std::invalid_argument("unknown node (or world not sealed)");
  }
  return *cells_[id.value()].middleware;
}

}  // namespace tota::emu
