// HostAdapter — forwards the simulator's upcalls to a node's middleware.
//
// Shared by the two emulator worlds: emu::World (single-threaded
// sim::Network) and emu::ShardedWorld (sim::ShardedSim), which wire the
// same Middleware stack to different schedulers.
#pragma once

#include "sim/node.h"
#include "tota/middleware.h"

namespace tota::emu {

class HostAdapter final : public sim::Host {
 public:
  explicit HostAdapter(Middleware& mw) : mw_(mw) {}

  void on_datagram(NodeId from,
                   std::span<const std::uint8_t> payload) override {
    mw_.on_datagram(from, payload);
  }
  void on_datagram(NodeId from,
                   std::shared_ptr<const wire::Bytes> payload) override {
    mw_.on_datagram(from, std::move(payload));
  }
  void on_neighbor_up(NodeId neighbor) override {
    mw_.on_neighbor_up(neighbor);
  }
  void on_neighbor_down(NodeId neighbor) override {
    mw_.on_neighbor_down(neighbor);
  }

 private:
  Middleware& mw_;
};

}  // namespace tota::emu
