#include "obs/export.h"

#include <cstdio>
#include <stdexcept>

namespace tota::obs {

namespace {

Json histogram_to_json(const Histogram& h) {
  Json::Object o;
  o.emplace("count", Json(static_cast<std::int64_t>(h.count())));
  if (!h.empty()) {
    o.emplace("sum", Json(h.sum()));
    o.emplace("min", Json(h.min()));
    o.emplace("max", Json(h.max()));
    o.emplace("mean", Json(h.mean()));
    o.emplace("p50", Json(h.quantile(0.50)));
    o.emplace("p90", Json(h.quantile(0.90)));
    o.emplace("p95", Json(h.quantile(0.95)));
    o.emplace("p99", Json(h.quantile(0.99)));
  }
  return Json(std::move(o));
}

}  // namespace

Json metrics_to_json(const MetricsRegistry& registry) {
  Json::Object counters;
  for (const auto& [name, c] : registry.counters()) {
    counters.emplace(name, Json(c.value()));
  }
  Json::Object gauges;
  for (const auto& [name, g] : registry.gauges()) {
    gauges.emplace(name, Json(g.value()));
  }
  Json::Object histograms;
  for (const auto& [name, h] : registry.histograms()) {
    histograms.emplace(name, histogram_to_json(h));
  }
  Json::Object out;
  out.emplace("metrics", Json(std::move(counters)));
  out.emplace("gauges", Json(std::move(gauges)));
  out.emplace("histograms", Json(std::move(histograms)));
  return Json(std::move(out));
}

Json trace_to_json(const Tracer& tracer, std::size_t max_spans) {
  const auto spans = tracer.snapshot();
  const std::size_t start =
      spans.size() > max_spans ? spans.size() - max_spans : 0;
  Json::Array rows;
  rows.reserve(spans.size() - start);
  for (std::size_t i = start; i < spans.size(); ++i) {
    const Span& s = spans[i];
    Json::Object row;
    row.emplace("t_us", Json(s.t.micros()));
    row.emplace("node", Json(static_cast<std::int64_t>(s.node.value())));
    row.emplace("stage", Json(stage_name(s.stage)));
    row.emplace("uid", Json(std::to_string(s.cause.origin().value()) + ":" +
                            std::to_string(s.cause.sequence())));
    row.emplace("hop", Json(s.hop));
    rows.push_back(Json(std::move(row)));
  }
  Json::Object out;
  out.emplace("capacity", Json(static_cast<std::int64_t>(tracer.capacity())));
  out.emplace("recorded", Json(static_cast<std::int64_t>(tracer.recorded())));
  out.emplace("dropped", Json(static_cast<std::int64_t>(tracer.dropped())));
  out.emplace("spans", Json(std::move(rows)));
  return Json(std::move(out));
}

Json bench_to_json(const std::string& bench_name, const Hub& hub,
                   std::size_t max_spans) {
  Json doc = metrics_to_json(hub.metrics);
  doc.as_object().emplace("schema", Json(kBenchSchema));
  doc.as_object().emplace("bench", Json(bench_name));
  doc.as_object().emplace("trace", trace_to_json(hub.tracer, max_spans));
  return doc;
}

std::string write_bench_json(const std::string& bench_name, const Hub& hub,
                             const std::string& dir) {
  const std::string path = dir + "/BENCH_" + bench_name + ".json";
  const std::string body = bench_to_json(bench_name, hub).dump(2) + "\n";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error("cannot open " + path + " for writing");
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return path;
}

std::string metrics_to_csv(const MetricsRegistry& registry) {
  std::string out = "name,kind,value\n";
  const auto row = [&out](const std::string& name, const char* kind,
                          const std::string& value) {
    out += name;
    out += ',';
    out += kind;
    out += ',';
    out += value;
    out += '\n';
  };
  for (const auto& [name, c] : registry.counters()) {
    row(name, "counter", std::to_string(c.value()));
  }
  for (const auto& [name, g] : registry.gauges()) {
    row(name, "gauge", std::to_string(g.value()));
  }
  for (const auto& [name, h] : registry.histograms()) {
    row(name + ".count", "histogram", std::to_string(h.count()));
    if (h.empty()) continue;
    row(name + ".mean", "histogram", std::to_string(h.mean()));
    row(name + ".p50", "histogram", std::to_string(h.quantile(0.5)));
    row(name + ".p95", "histogram", std::to_string(h.quantile(0.95)));
    row(name + ".max", "histogram", std::to_string(h.max()));
  }
  return out;
}

}  // namespace tota::obs
