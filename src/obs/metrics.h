// Structured metrics: typed instruments behind pre-registered handles.
//
// The observability contract of this repository (docs/OBSERVABILITY.md):
// hot paths never pay a string-map lookup.  A component asks the
// MetricsRegistry for its instruments *once*, at construction, and keeps
// the returned references — recording is then a plain integer add
// (Counter), a store (Gauge), or a bounded-bucket insert (Histogram).
// Cold readers (benches, exporters, tests) look instruments up by name.
//
// Instruments are single-threaded, matching the deterministic
// discrete-event simulator they measure; no atomics, no locks.
//
// Compile-time kill switch: building with -DTOTA_OBS=OFF (CMake) defines
// TOTA_OBS_ENABLED=0 and every record operation compiles to a no-op while
// the API keeps its shape, so instrumented code needs no #ifdefs.
#pragma once

#include <cstdint>
#include <map>
#include <string>

// 1 (default) = record operations do work; 0 = they compile to no-ops.
// Set by the TOTA_OBS CMake option; see src/obs/CMakeLists.txt.
#ifndef TOTA_OBS_ENABLED
#define TOTA_OBS_ENABLED 1
#endif
static_assert(TOTA_OBS_ENABLED == 0 || TOTA_OBS_ENABLED == 1,
              "TOTA_OBS_ENABLED must be defined to exactly 0 or 1 "
              "(drive it through the TOTA_OBS CMake option)");

namespace tota::obs {

/// Monotonically increasing tally.  The hot-path replacement for the old
/// string-keyed Counters::add("radio.tx") pattern.
class Counter {
 public:
  void inc(std::int64_t delta = 1) {
#if TOTA_OBS_ENABLED
    value_ += delta;
#else
    (void)delta;
#endif
  }

  [[nodiscard]] std::int64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::int64_t value_ = 0;
};

/// Last-written value (population sizes, queue depths, configuration).
class Gauge {
 public:
  void set(double value) {
#if TOTA_OBS_ENABLED
    value_ = value;
#else
    (void)value;
#endif
  }
  void add(double delta) {
#if TOTA_OBS_ENABLED
    value_ += delta;
#else
    (void)delta;
#endif
  }

  [[nodiscard]] double value() const { return value_; }
  void reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// Log-linear bucketed distribution with bounded memory.
///
/// Where Summary (common/stats.h) keeps every sample for exact
/// quantiles, Histogram buckets them: each power-of-two octave is split
/// into 8 linear sub-buckets, so quantile() is approximate with a
/// relative error bounded by the widest sub-bucket (the first of each
/// octave, ratio 9/8 → midpoint within ±6%) while memory stays
/// proportional to the number of *touched* buckets, not the sample
/// count.  min/max/mean/sum are exact.  Non-positive samples land in a
/// dedicated zero bucket and report as 0 from quantile().
class Histogram {
 public:
  void record(double value);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  /// Approximate nearest-rank quantile, q in [0,1]; NaN when empty.
  [[nodiscard]] double quantile(double q) const;

  /// Adds another histogram's buckets and exact moments into this one.
  void merge_from(const Histogram& other);
  void reset();

  /// "n=… mean=… p50=… p95=… max=…" for text output.
  [[nodiscard]] std::string str() const;

 private:
  static int bucket_index(double value);
  static double bucket_representative(int index);

  // bucket index → sample count; kZeroBucket holds samples <= 0.
  // std::map iterates in value order, which is exactly quantile order.
  std::map<int, std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Names and owns instruments.  Registration (counter()/gauge()/
/// histogram()) is idempotent: the first call creates, later calls with
/// the same name return the same instrument, and the returned reference
/// stays valid for the registry's lifetime.  See docs/OBSERVABILITY.md
/// for the dotted naming scheme ("radio.tx", "maint.repair_ms", …).
class MetricsRegistry {
 public:
  /// Registers (or finds) the named instrument; keep the reference.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Cold read of a counter's value by name; 0 when never registered.
  /// (Also the drop-in replacement for the old Counters::get.)
  [[nodiscard]] std::int64_t get(const std::string& name) const;

  /// Lookup without registering; nullptr when absent.
  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

  /// Iteration for exporters; keys are sorted (std::map), so every
  /// export is deterministic.
  [[nodiscard]] const std::map<std::string, Counter>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// Sums/merges every instrument of `other` into this registry,
  /// registering names as needed (used to aggregate per-world registries
  /// into a process-wide one).
  void merge_from(const MetricsRegistry& other);

  /// Zeroes all values; registrations (and handed-out handles) survive.
  void reset();

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace tota::obs
