// Event tracing: a bounded ring buffer of pipeline spans.
//
// The engine stamps one Span per interesting pipeline transition of a
// tuple — inject → propagate → store → (maintenance: retract / heal /
// probe) — keyed by the tuple's uid, which doubles as the *causality
// id*: every span carrying the same uid belongs to the life of the same
// distributed tuple, so filtering a trace by uid reconstructs that
// tuple's journey across nodes and time.
//
// The buffer is a fixed-capacity ring: recording never allocates after
// construction and never blocks the hot path; once full, the oldest
// spans are overwritten (dropped() says how many).  snapshot() returns
// the surviving spans oldest-first for export (see obs/export.h and the
// "trace" section of BENCH_*.json in docs/OBSERVABILITY.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "obs/metrics.h"  // for TOTA_OBS_ENABLED

namespace tota::obs {

/// Pipeline stage a span marks; names on the wire via stage_name().
enum class Stage : std::uint8_t {
  kInject = 0,     ///< a node put a locally-created tuple on the air
  kPropagate = 1,  ///< a node broadcast a tuple copy to its neighbours
  kStore = 2,      ///< a node installed a replica in its tuple space
  kRetract = 3,    ///< maintenance removed an unjustified replica
  kHeal = 4,       ///< a justified holder re-announced after damage
  kProbe = 5,      ///< hold-down expiry probed for surviving holders
};

/// Stable lower-case label of a stage ("inject", "store", …).
[[nodiscard]] const char* stage_name(Stage stage);

/// One traced pipeline transition.
struct Span {
  SimTime t;       ///< simulated time of the transition
  NodeId node;     ///< node the transition happened on
  Stage stage;     ///< which transition
  TupleUid cause;  ///< causality id: the distributed tuple's uid
  int hop;         ///< the copy's hop count at that moment
};

class Tracer {
 public:
  /// `capacity` = spans retained; the default keeps the trace section of
  /// a BENCH_*.json around a few hundred KB at worst.
  explicit Tracer(std::size_t capacity = 4096);

  /// Appends a span, overwriting the oldest when full.  No-op when
  /// tracing is disabled (set_enabled(false)) or TOTA_OBS_ENABLED is 0.
  void record(SimTime t, NodeId node, Stage stage, TupleUid cause, int hop);

  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  /// Spans currently held (≤ capacity).
  [[nodiscard]] std::size_t size() const;
  /// Spans ever recorded, including overwritten ones.
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  /// Spans lost to ring wraparound.
  [[nodiscard]] std::uint64_t dropped() const {
    return recorded_ - size();
  }

  /// Surviving spans, oldest first.
  [[nodiscard]] std::vector<Span> snapshot() const;

  /// Runtime switch (the compile-time one is TOTA_OBS); tracing starts
  /// enabled.
  void set_enabled(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void clear();

 private:
  std::vector<Span> ring_;
  std::uint64_t recorded_ = 0;
  bool enabled_ = true;
};

}  // namespace tota::obs
