// Minimal JSON document model: build, serialize, parse.
//
// Just enough JSON for the observability exporters (obs/export.h) and
// their round-trip tests — no external dependency, no streaming, no
// comments/trailing-comma extensions.  Objects keep their keys sorted
// (std::map), so serialization is deterministic: the same metrics always
// produce byte-identical BENCH_*.json files.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace tota::obs {

/// Thrown by Json::parse on malformed input; what() points at the
/// offending byte offset.
class JsonParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One JSON value: null, bool, integer, double, string, array, object.
/// Integers are kept distinct from doubles so counters survive a
/// round-trip exactly.
class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(std::int64_t i) : value_(i) {}
  Json(int i) : value_(static_cast<std::int64_t>(i)) {}
  Json(std::uint64_t u) : value_(static_cast<std::int64_t>(u)) {}
  Json(double d) : value_(d) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(Object o) : value_(std::move(o)) {}

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(value_);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(value_);
  }
  [[nodiscard]] bool is_int() const {
    return std::holds_alternative<std::int64_t>(value_);
  }
  [[nodiscard]] bool is_double() const {
    return std::holds_alternative<double>(value_);
  }
  /// Either numeric alternative.
  [[nodiscard]] bool is_number() const { return is_int() || is_double(); }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(value_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<Array>(value_);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<Object>(value_);
  }

  /// Checked accessors; throw std::bad_variant_access on kind mismatch.
  [[nodiscard]] bool as_bool() const { return std::get<bool>(value_); }
  [[nodiscard]] std::int64_t as_int() const {
    return std::get<std::int64_t>(value_);
  }
  /// Numeric value as double regardless of which alternative holds it.
  [[nodiscard]] double as_double() const {
    return is_int() ? static_cast<double>(as_int()) : std::get<double>(value_);
  }
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(value_);
  }
  [[nodiscard]] const Array& as_array() const {
    return std::get<Array>(value_);
  }
  [[nodiscard]] Array& as_array() { return std::get<Array>(value_); }
  [[nodiscard]] const Object& as_object() const {
    return std::get<Object>(value_);
  }
  [[nodiscard]] Object& as_object() { return std::get<Object>(value_); }

  /// Object member access; creates (mutable) / throws std::out_of_range
  /// (const) like std::map.
  Json& operator[](const std::string& key) {
    return std::get<Object>(value_)[key];
  }
  [[nodiscard]] const Json& at(const std::string& key) const {
    return std::get<Object>(value_).at(key);
  }
  [[nodiscard]] bool contains(const std::string& key) const {
    return is_object() && as_object().count(key) > 0;
  }

  /// Serializes; indent < 0 → compact one-liner, otherwise pretty-print
  /// with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Parses a complete JSON document (rejects trailing garbage).
  static Json parse(std::string_view text);

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string,
               Array, Object>
      value_;
};

}  // namespace tota::obs
