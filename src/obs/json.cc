#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace tota::obs {

namespace {

void escape_into(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void number_into(double d, std::string& out) {
  if (!std::isfinite(d)) {
    // JSON has no Infinity/NaN; null is the conventional stand-in.
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out += buf;
}

}  // namespace

namespace {

void dump_into(const Json& v, std::string& out, int indent, int depth);

void newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
             ' ');
}

void dump_into(const Json& v, std::string& out, int indent, int depth) {
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_int()) {
    out += std::to_string(v.as_int());
  } else if (v.is_double()) {
    number_into(v.as_double(), out);
  } else if (v.is_string()) {
    escape_into(v.as_string(), out);
  } else if (v.is_array()) {
    const auto& a = v.as_array();
    if (a.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    bool first = true;
    for (const auto& item : a) {
      if (!first) out += ',';
      first = false;
      newline_indent(out, indent, depth + 1);
      dump_into(item, out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out += ']';
  } else {
    const auto& o = v.as_object();
    if (o.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [key, value] : o) {
      if (!first) out += ',';
      first = false;
      newline_indent(out, indent, depth + 1);
      escape_into(key, out);
      out += indent < 0 ? ":" : ": ";
      dump_into(value, out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out += '}';
  }
}

/// Recursive-descent parser over a string_view; single pass, no lookahead
/// beyond one byte.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonParseError("JSON parse error at byte " + std::to_string(pos_) +
                         ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("bad literal");
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json::Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Json(std::move(obj));
    }
  }

  Json parse_array() {
    expect('[');
    Json::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Json(std::move(arr));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // UTF-8 encode the code point (BMP only; exporters never emit
          // surrogate pairs).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_floating = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        // '+'/'-' only legal inside an exponent, but accepting them here
        // keeps the scanner simple; strtod arbitrates validity below.
        is_floating = is_floating || c == '.' || c == 'e' || c == 'E';
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("expected a value");
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (!is_floating) {
      errno = 0;
      char* end = nullptr;
      const long long i = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return Json(static_cast<std::int64_t>(i));
      }
      // Out-of-range integer: fall through to double.
    }
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    return Json(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string Json::dump(int indent) const {
  std::string out;
  dump_into(*this, out, indent, 0);
  return out;
}

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace tota::obs
