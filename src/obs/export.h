// Exporters: turn a Hub's metrics and trace into JSON / CSV documents.
//
// The flagship artefact is BENCH_<name>.json — every experiment binary
// writes one next to its text output (bench/exp_common.h calls
// write_bench_json() at the end of main), giving the repository a
// machine-readable perf trajectory.  The schema is documented, with a
// worked example, in docs/OBSERVABILITY.md; the top-level "schema" key
// names the format version so downstream tooling can evolve.
#pragma once

#include <cstddef>
#include <string>

#include "obs/hub.h"
#include "obs/json.h"

namespace tota::obs {

/// Schema tag written into every exported document.
inline constexpr const char* kBenchSchema = "tota-bench-v1";

/// The "metrics"/"gauges"/"histograms" sections: counter name → integer
/// value, gauge name → number, histogram name → {count,min,max,mean,
/// p50,p90,p95,p99,sum} summaries.
[[nodiscard]] Json metrics_to_json(const MetricsRegistry& registry);

/// The "trace" section: {capacity, recorded, dropped, spans:[…]} with at
/// most `max_spans` (newest) spans, each {t_us, node, stage, uid, hop}.
[[nodiscard]] Json trace_to_json(const Tracer& tracer,
                                 std::size_t max_spans = 512);

/// Full document: {schema, bench, metrics, gauges, histograms, trace}.
[[nodiscard]] Json bench_to_json(const std::string& bench_name,
                                 const Hub& hub,
                                 std::size_t max_spans = 512);

/// Serializes bench_to_json() and writes it to
/// `<dir>/BENCH_<bench_name>.json`; returns the path written.  Throws
/// std::runtime_error when the file cannot be opened.
std::string write_bench_json(const std::string& bench_name, const Hub& hub,
                             const std::string& dir = ".");

/// "name,kind,value" rows (histograms expand to one row per summary
/// statistic) for spreadsheet-side consumption.
[[nodiscard]] std::string metrics_to_csv(const MetricsRegistry& registry);

}  // namespace tota::obs
