// The observability hub: one MetricsRegistry + one Tracer, shared by
// every component observing the same world.
//
// A simulated world (emu::World), its Network, and every per-node Engine
// all record into the same Hub, so counters aggregate across nodes and
// the trace interleaves the whole system's pipeline — which is what
// benches and the JSON exporter want.  Components take the hub as an
// optional constructor argument.  Defaulting rules: a World or Network
// constructed with nullptr owns a *private* hub, so its counters reflect
// only its own traffic (two identical runs stay bit-identical — the
// determinism tests rely on this); an Engine/Middleware given nullptr
// records into the process-wide default_hub() (in a World, each node's
// middleware is handed the world's hub explicitly, so this fallback only
// matters for standalone engines).  Benches opt into aggregation:
// exp::manet_options() points every world at default_hub(), so one
// BENCH_*.json tells the whole binary's story, while a sweep wanting
// per-row numbers passes its own Hub and merge_from()s it back.
#pragma once

#include "obs/metrics.h"
#include "obs/tracer.h"

namespace tota::obs {

struct Hub {
  MetricsRegistry metrics;
  Tracer tracer;
};

/// The process-wide hub used when none is supplied.  Never destroyed
/// before its users (function-local static).
[[nodiscard]] Hub& default_hub();

}  // namespace tota::obs
