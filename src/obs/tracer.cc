#include "obs/tracer.h"

#include <algorithm>

namespace tota::obs {

const char* stage_name(Stage stage) {
  switch (stage) {
    case Stage::kInject:
      return "inject";
    case Stage::kPropagate:
      return "propagate";
    case Stage::kStore:
      return "store";
    case Stage::kRetract:
      return "retract";
    case Stage::kHeal:
      return "heal";
    case Stage::kProbe:
      return "probe";
  }
  return "?";
}

Tracer::Tracer(std::size_t capacity) : ring_(std::max<std::size_t>(1, capacity)) {}

void Tracer::record(SimTime t, NodeId node, Stage stage, TupleUid cause,
                    int hop) {
#if TOTA_OBS_ENABLED
  if (!enabled_) return;
  ring_[recorded_ % ring_.size()] = Span{t, node, stage, cause, hop};
  ++recorded_;
#else
  (void)t;
  (void)node;
  (void)stage;
  (void)cause;
  (void)hop;
#endif
}

std::size_t Tracer::size() const {
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(recorded_, ring_.size()));
}

std::vector<Span> Tracer::snapshot() const {
  std::vector<Span> out;
  const std::size_t n = size();
  out.reserve(n);
  // Oldest surviving span sits at recorded_ % capacity once wrapped.
  const std::size_t start =
      recorded_ > ring_.size()
          ? static_cast<std::size_t>(recorded_ % ring_.size())
          : 0;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void Tracer::clear() { recorded_ = 0; }

}  // namespace tota::obs
