#include "obs/hub.h"

namespace tota::obs {

Hub& default_hub() {
  static Hub hub;
  return hub;
}

}  // namespace tota::obs
