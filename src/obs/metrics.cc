#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace tota::obs {

namespace {

// 8 linear sub-buckets per power-of-two octave.  The widest (first) one
// spans [2^e, 9/8 * 2^e], so a geometric-midpoint estimate is within
// sqrt(9/8) ≈ ±6% of any sample in its bucket.
constexpr int kSubBuckets = 8;
// Samples <= 0 (or denormal-small) collapse into this sentinel bucket.
constexpr int kZeroBucket = std::numeric_limits<int>::min();

}  // namespace

int Histogram::bucket_index(double value) {
  if (!(value > 0.0) || !std::isfinite(value)) return kZeroBucket;
  int exponent = 0;
  const double fraction = std::frexp(value, &exponent);  // in [0.5, 1)
  // Linear position of the fraction inside its octave, 0..kSubBuckets-1.
  const int sub = std::min(
      kSubBuckets - 1,
      static_cast<int>((fraction - 0.5) * 2.0 * kSubBuckets));
  return exponent * kSubBuckets + sub;
}

double Histogram::bucket_representative(int index) {
  if (index == kZeroBucket) return 0.0;
  const int exponent = (index >= 0 ? index : index - (kSubBuckets - 1)) /
                       kSubBuckets;  // floor division
  const int sub = index - exponent * kSubBuckets;
  const double lower =
      std::ldexp(0.5 + 0.5 * static_cast<double>(sub) / kSubBuckets,
                 exponent);
  const double upper =
      std::ldexp(0.5 + 0.5 * static_cast<double>(sub + 1) / kSubBuckets,
                 exponent);
  return std::sqrt(lower * upper);  // geometric midpoint
}

void Histogram::record(double value) {
#if TOTA_OBS_ENABLED
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[bucket_index(value)];
#else
  (void)value;
#endif
}

double Histogram::min() const {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
}

double Histogram::max() const {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
}

double Histogram::mean() const {
  if (count_ == 0) return std::numeric_limits<double>::quiet_NaN();
  return sum_ / static_cast<double>(count_);
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank, mirroring Summary::quantile so the two agree up to
  // bucket resolution.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t cumulative = 0;
  for (const auto& [index, bucket_count] : buckets_) {
    cumulative += bucket_count;
    if (cumulative >= rank) {
      // Exact extremes beat a bucket midpoint at the ends.
      return std::clamp(bucket_representative(index), min_, max_);
    }
  }
  return max_;
}

void Histogram::merge_from(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (const auto& [index, bucket_count] : other.buckets_) {
    buckets_[index] += bucket_count;
  }
}

void Histogram::reset() {
  buckets_.clear();
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

std::string Histogram::str() const {
  if (count_ == 0) return "n=0";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.3f p50=%.3f p95=%.3f min=%.3f max=%.3f",
                static_cast<unsigned long long>(count_), mean(),
                quantile(0.5), quantile(0.95), min(), max());
  return buf;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return histograms_[name];
}

std::int64_t MetricsRegistry::get(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) {
    counters_[name].inc(c.value());
  }
  for (const auto& [name, g] : other.gauges_) {
    gauges_[name].set(g.value());
  }
  for (const auto& [name, h] : other.histograms_) {
    histograms_[name].merge_from(h);
  }
}

void MetricsRegistry::reset() {
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

}  // namespace tota::obs
