// Pure-flooding message delivery — the baseline of paper §5.1.
//
// "In all situations in which such information is absent, the routing
// simply reduces to flooding the network."  This service *always* routes
// in that degenerate mode: it never advertises a structure and its
// messages descend a structure name nobody publishes, so every send is a
// network-wide flood.  Benchmarks compare its transmission cost against
// RoutingService's gradient descent.
#pragma once

#include <functional>
#include <string>

#include "tota/middleware.h"
#include "tuples/message_tuple.h"

namespace tota::baseline {

class FloodRoutingService {
 public:
  using Handler = std::function<void(NodeId, const std::string&)>;

  FloodRoutingService(Middleware& mw, Handler handler);
  ~FloodRoutingService();

  FloodRoutingService(const FloodRoutingService&) = delete;
  FloodRoutingService& operator=(const FloodRoutingService&) = delete;

  /// Sends `payload` to `dest` by flooding.
  void send(NodeId dest, std::string payload);

  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t sent() const { return sent_; }

 private:
  /// A structure name no node ever publishes: guarantees flood mode.
  static constexpr const char* kNoStructure = "__flood_baseline__";

  Middleware& mw_;
  Handler handler_;
  SubscriptionId subscription_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t sent_ = 0;
};

}  // namespace tota::baseline
