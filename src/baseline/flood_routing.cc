#include "baseline/flood_routing.h"

namespace tota::baseline {

FloodRoutingService::FloodRoutingService(Middleware& mw, Handler handler)
    : mw_(mw), handler_(std::move(handler)) {
  Pattern to_me = Pattern::of_type(tuples::MessageTuple::kTag);
  to_me.eq("receiver", mw_.self());
  subscription_ = mw_.subscribe(
      std::move(to_me),
      [this](const Event& event) {
        const auto& msg =
            static_cast<const tuples::MessageTuple&>(*event.tuple);
        ++delivered_;
        if (handler_) handler_(msg.sender(), msg.payload());
      },
      static_cast<int>(EventKind::kTupleArrived));
}

FloodRoutingService::~FloodRoutingService() {
  mw_.unsubscribe(subscription_);
}

void FloodRoutingService::send(NodeId dest, std::string payload) {
  ++sent_;
  mw_.inject(std::make_unique<tuples::MessageTuple>(dest, std::move(payload),
                                                    kNoStructure));
}

}  // namespace tota::baseline
