#include "baseline/local_space.h"

namespace tota::baseline {

void LocalSpace::share(const std::string& name, wire::Value value) {
  auto tuple = std::make_unique<tuples::GradientTuple>(name, /*scope=*/1);
  tuple->content().set("kind", kTagField).set("value", std::move(value));
  mw_.inject(std::move(tuple));
}

std::vector<LocalSpace::SharedDatum> LocalSpace::visible() const {
  Pattern shared = Pattern::of_type(tuples::GradientTuple::kTag);
  shared.eq("kind", kTagField);
  std::vector<SharedDatum> out;
  for (const auto& tuple : mw_.read(shared)) {
    const auto& field = static_cast<const tuples::GradientTuple&>(*tuple);
    out.push_back({field.name(), field.content().at("value"), field.source()});
  }
  return out;
}

std::optional<wire::Value> LocalSpace::lookup(const std::string& name) const {
  Pattern shared = Pattern::of_type(tuples::GradientTuple::kTag);
  shared.eq("kind", kTagField).eq("name", name);
  const auto tuple = mw_.read_one(shared);
  if (!tuple) return std::nullopt;
  return tuple->content().at("value");
}

}  // namespace tota::baseline
