// Lime-style locally-shared tuple space, expressed in TOTA.
//
// Lime / XMIDDLE merge privately-owned data spaces between directly
// connected devices; the paper notes the acquired information "is
// typically strictly local … and is of no support in acquiring a more
// global perspective".  TOTA subsumes the pattern: a shared tuple is just
// a field with scope 1 — the middleware's maintenance machinery then
// *is* the engagement/disengagement protocol (share on contact, withdraw
// on departure).
//
// Benchmarks use this to show the locality limitation: a seeker finds a
// LocalSpace datum only when standing next to its owner, while a TOTA
// advert field reaches it anywhere in the connected network.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "tota/middleware.h"
#include "tuples/gradient_tuple.h"

namespace tota::baseline {

class LocalSpace {
 public:
  explicit LocalSpace(Middleware& mw) : mw_(mw) {}

  /// Publishes (name, value) to this node and its *direct* neighbours,
  /// present and future — the Lime "merge on connection".
  void share(const std::string& name, wire::Value value);

  struct SharedDatum {
    std::string name;
    wire::Value value;
    NodeId owner;
  };

  /// Everything shared by this node or a currently-connected neighbour.
  [[nodiscard]] std::vector<SharedDatum> visible() const;

  /// The value for `name`, if some engaged device shares it.
  [[nodiscard]] std::optional<wire::Value> lookup(
      const std::string& name) const;

 private:
  static constexpr const char* kTagField = "lime.shared";

  Middleware& mw_;
};

}  // namespace tota::baseline
