#include "tota/predicate.h"

namespace tota {

namespace {
// Decode limits: deep nesting only comes from all_of, wide operand lists
// only from any_of.  Both are far above anything a real query needs and
// low enough that garbage input stays cheap to reject.
constexpr int kMaxDepth = 8;
constexpr std::uint64_t kMaxOptions = 1024;
constexpr std::uint64_t kMaxParts = 64;
}  // namespace

const char* to_string(PredOp op) {
  switch (op) {
    case PredOp::kExists:
      return "exists";
    case PredOp::kEq:
      return "eq";
    case PredOp::kNe:
      return "ne";
    case PredOp::kLt:
      return "lt";
    case PredOp::kLe:
      return "le";
    case PredOp::kGt:
      return "gt";
    case PredOp::kGe:
      return "ge";
    case PredOp::kBetween:
      return "between";
    case PredOp::kAnyOf:
      return "any_of";
    case PredOp::kAllOf:
      return "all_of";
  }
  return "?";
}

Pred::Pred(PredOp op, std::vector<wire::Value> values, std::vector<Pred> parts)
    : op_(op), values_(std::move(values)), parts_(std::move(parts)) {}

Pred Pred::exists() { return Pred{}; }

Pred Pred::eq(wire::Value value) {
  return Pred{PredOp::kEq, {std::move(value)}, {}};
}

Pred Pred::ne(wire::Value value) {
  return Pred{PredOp::kNe, {std::move(value)}, {}};
}

Pred Pred::lt(wire::Value bound) {
  return Pred{PredOp::kLt, {std::move(bound)}, {}};
}

Pred Pred::le(wire::Value bound) {
  return Pred{PredOp::kLe, {std::move(bound)}, {}};
}

Pred Pred::gt(wire::Value bound) {
  return Pred{PredOp::kGt, {std::move(bound)}, {}};
}

Pred Pred::ge(wire::Value bound) {
  return Pred{PredOp::kGe, {std::move(bound)}, {}};
}

Pred Pred::between(wire::Value lo, wire::Value hi) {
  return Pred{PredOp::kBetween, {std::move(lo), std::move(hi)}, {}};
}

Pred Pred::any_of(std::vector<wire::Value> options) {
  return Pred{PredOp::kAnyOf, std::move(options), {}};
}

Pred Pred::all_of(std::vector<Pred> parts) {
  return Pred{PredOp::kAllOf, {}, std::move(parts)};
}

bool Pred::eval(const wire::Value& value) const {
  switch (op_) {
    case PredOp::kExists:
      return true;
    case PredOp::kEq:
      return value == values_[0];
    case PredOp::kNe:
      return !(value == values_[0]);
    case PredOp::kLt:
    case PredOp::kLe:
    case PredOp::kGt:
    case PredOp::kGe: {
      const auto c = wire::compare_ordered(value, values_[0]);
      if (!c) return false;  // unordered pairing never matches
      switch (op_) {
        case PredOp::kLt:
          return *c < 0;
        case PredOp::kLe:
          return *c <= 0;
        case PredOp::kGt:
          return *c > 0;
        default:
          return *c >= 0;
      }
    }
    case PredOp::kBetween: {
      const auto lo = wire::compare_ordered(value, values_[0]);
      const auto hi = wire::compare_ordered(value, values_[1]);
      return lo && hi && *lo >= 0 && *hi <= 0;
    }
    case PredOp::kAnyOf:
      for (const auto& option : values_) {
        if (value == option) return true;
      }
      return false;
    case PredOp::kAllOf:
      for (const auto& part : parts_) {
        if (!part.eval(value)) return false;
      }
      return true;
  }
  return false;
}

void Pred::encode(wire::Writer& w) const {
  w.u8(static_cast<std::uint8_t>(op_));
  switch (op_) {
    case PredOp::kExists:
      break;
    case PredOp::kEq:
    case PredOp::kNe:
    case PredOp::kLt:
    case PredOp::kLe:
    case PredOp::kGt:
    case PredOp::kGe:
      values_[0].encode(w);
      break;
    case PredOp::kBetween:
      values_[0].encode(w);
      values_[1].encode(w);
      break;
    case PredOp::kAnyOf:
      w.uvarint(values_.size());
      for (const auto& v : values_) v.encode(w);
      break;
    case PredOp::kAllOf:
      w.uvarint(parts_.size());
      for (const auto& p : parts_) p.encode(w);
      break;
  }
}

Pred Pred::decode(wire::Reader& r) { return decode_at(r, 0); }

Pred Pred::decode_at(wire::Reader& r, int depth) {
  if (depth > kMaxDepth) throw wire::DecodeError("predicate nested too deep");
  const auto tag = r.u8();
  if (tag > static_cast<std::uint8_t>(PredOp::kAllOf)) {
    throw wire::DecodeError("unknown predicate op " + std::to_string(tag));
  }
  const auto op = static_cast<PredOp>(tag);
  switch (op) {
    case PredOp::kExists:
      return Pred{};
    case PredOp::kEq:
    case PredOp::kNe:
    case PredOp::kLt:
    case PredOp::kLe:
    case PredOp::kGt:
    case PredOp::kGe:
      return Pred{op, {wire::Value::decode(r)}, {}};
    case PredOp::kBetween: {
      auto lo = wire::Value::decode(r);
      auto hi = wire::Value::decode(r);
      return Pred{op, {std::move(lo), std::move(hi)}, {}};
    }
    case PredOp::kAnyOf: {
      const auto n = r.uvarint();
      if (n > kMaxOptions) throw wire::DecodeError("any_of too wide");
      std::vector<wire::Value> options;
      options.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        options.push_back(wire::Value::decode(r));
      }
      return Pred{op, std::move(options), {}};
    }
    case PredOp::kAllOf: {
      const auto n = r.uvarint();
      if (n > kMaxParts) throw wire::DecodeError("all_of too wide");
      std::vector<Pred> parts;
      parts.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        parts.push_back(decode_at(r, depth + 1));
      }
      return Pred{op, {}, std::move(parts)};
    }
  }
  throw wire::DecodeError("unknown predicate op");
}

std::string Pred::str() const {
  switch (op_) {
    case PredOp::kExists:
      return "?";
    case PredOp::kEq:
      return "=" + values_[0].str();
    case PredOp::kNe:
      return "!=" + values_[0].str();
    case PredOp::kLt:
      return "<" + values_[0].str();
    case PredOp::kLe:
      return "<=" + values_[0].str();
    case PredOp::kGt:
      return ">" + values_[0].str();
    case PredOp::kGe:
      return ">=" + values_[0].str();
    case PredOp::kBetween:
      return " in [" + values_[0].str() + ", " + values_[1].str() + "]";
    case PredOp::kAnyOf: {
      std::string out = " in {";
      for (std::size_t i = 0; i < values_.size(); ++i) {
        if (i > 0) out += ", ";
        out += values_[i].str();
      }
      return out + "}";
    }
    case PredOp::kAllOf: {
      std::string out = "(";
      for (std::size_t i = 0; i < parts_.size(); ++i) {
        if (i > 0) out += " & ";
        out += parts_[i].str();
      }
      return out + ")";
    }
  }
  return "?";
}

}  // namespace tota
