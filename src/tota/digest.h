// StoreDigest — a compact, order-independent summary of a node's
// propagated tuple set, for per-neighbour anti-entropy.
//
// After a partition heals (or a node restarts discovery), two
// neighbours may silently disagree about which tuples exist: frames
// lost during the outage are never retransmitted by the flood itself.
// Rebroadcasting the whole store on every neighbour-up is O(store);
// instead each node periodically ships this digest and a receiver
// re-sends only the tuples falling into buckets whose hashes differ —
// O(diff) frames in expectation.
//
// The digest hashes *uids only*, never hop values: hop counts
// legitimately differ between nodes (that is the gradient), so two
// perfectly synchronized stores would never agree on a hop-sensitive
// digest.  Each uid is mixed through splitmix64 and XOR-folded into
// `buckets[mix % buckets.size()]`; XOR makes the fold order-independent
// and incremental-friendly, and the mix keeps sequential sequence
// numbers from clustering in adjacent buckets.
//
// Wire format (body of a DIGEST chunk), all little-endian:
//   bucket_count  uvarint   1..kMaxDigestBuckets
//   tuple_count   uvarint   informational (sizing resyncs, metrics)
//   bucket hashes bucket_count × u64
//
// Comparing digests with different bucket_counts is meaningless; the
// receiver rebuilds its own digest at the sender's bucket_count before
// diffing (Engine::on_digest).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/ids.h"
#include "wire/buffer.h"

namespace tota {

inline constexpr std::uint32_t kMaxDigestBuckets = 4096;

struct StoreDigest {
  std::uint64_t count = 0;  // tuples folded in
  std::vector<std::uint64_t> buckets;

  /// The canonical 64-bit mix of a uid (splitmix64 over a combination
  /// of origin and sequence).  Exposed so resync can recompute a
  /// tuple's bucket without building a full digest.
  static std::uint64_t mix(const TupleUid& uid);

  /// Bucket index of `uid` in a digest with `bucket_count` buckets.
  static std::size_t bucket_of(const TupleUid& uid,
                               std::size_t bucket_count);

  /// Builds a digest of `uids` with `bucket_count` buckets (clamped to
  /// [1, kMaxDigestBuckets]).
  static StoreDigest build(std::span<const TupleUid> uids,
                           std::uint32_t bucket_count);

  /// Folds one more uid in (XOR: also removes a previously added uid).
  void add(const TupleUid& uid);

  [[nodiscard]] wire::Bytes encode() const;
  /// Throws wire::DecodeError on malformed input (zero or oversized
  /// bucket count, truncation, trailing bytes).
  static StoreDigest decode(std::span<const std::uint8_t> bytes);

  friend bool operator==(const StoreDigest&, const StoreDigest&) = default;
};

}  // namespace tota
