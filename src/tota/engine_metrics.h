// The engine's observability handles, resolved once at construction so
// the pipeline never does a by-name metric lookup (naming scheme:
// docs/OBSERVABILITY.md).  Counters aggregate across every engine
// sharing the hub — i.e. across all nodes of a simulated world.
#pragma once

#include "obs/metrics.h"

namespace tota {

struct EngineMetrics {
  explicit EngineMetrics(obs::MetricsRegistry& registry);

  /// Local injections (pipeline entry with hop 0).
  obs::Counter& inject;
  /// Replicas installed into a local tuple space.
  obs::Counter& store;
  /// Re-broadcasts (floods, heals, re-propagations alike).
  obs::Counter& propagate;
  /// Copies decide_enter() rejected.
  obs::Counter& drop_enter;
  /// Copies dropped as duplicates / superseded losers.
  obs::Counter& drop_duplicate;
  /// Copies refused while their uid's hold-down was armed.
  obs::Counter& drop_holddown;
  /// Pass-through copies the uid filter had already seen.
  obs::Counter& drop_passthrough;
  /// Stored replicas retired because an update stopped matching locally.
  obs::Counter& retire;
  /// Frames that failed to decode (see Engine::decode_failures()).
  obs::Counter& decode_fail;

  // MaintenanceStats, promoted into the registry (same meanings).
  obs::Counter& maint_link_up_reprop;
  obs::Counter& maint_retract_started;
  obs::Counter& maint_retract_cascaded;
  obs::Counter& maint_heal_reprop;
  obs::Counter& maint_probe_tx;
  obs::Counter& maint_probe_answer;

  /// Milliseconds from a replica's retraction to the same tuple being
  /// reinstalled on that node — the per-replica repair latency.
  obs::Histogram& repair_ms;
};

}  // namespace tota
