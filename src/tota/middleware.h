// The TOTA API (paper Sec. 4.3) — the middleware facade of one node.
//
//   inject(tuple)                  put a tuple on the air
//   read(template)                 copies of matching local tuples
//   take(template)                 extract matching local tuples
//                                  (the paper's `delete`; renamed because
//                                  `delete` is a C++ keyword)
//   subscribe(template, reaction)  react to matching local events
//   unsubscribe(...)               remove subscriptions
//
// A Middleware is wired to a Platform (radio + clock + sensors) and is
// driven by upcalls from the node's link layer: on_datagram,
// on_neighbor_up, on_neighbor_down.  In this repository the Platform is
// the network simulator (see emu/sim_platform.h); on real hardware it
// would wrap sockets, as the paper's IPAQ prototype did.
#pragma once

#include <memory>
#include <vector>

#include "tota/engine.h"
#include "tota/events.h"
#include "tota/maintenance.h"
#include "tota/pattern.h"
#include "tota/platform.h"
#include "tota/tuple.h"
#include "tota/tuple_space.h"

namespace tota {

class Middleware {
 public:
  /// `hub` collects this node's metrics and trace spans (shared with the
  /// other nodes of the same world); nullptr = obs::default_hub().
  Middleware(NodeId self, Platform& platform,
             MaintenanceOptions maintenance = {}, obs::Hub* hub = nullptr);

  Middleware(const Middleware&) = delete;
  Middleware& operator=(const Middleware&) = delete;

  // --- the TOTA API -------------------------------------------------------

  /// Injects `tuple` into the network: the tuple starts propagating
  /// according to its propagation rule.  Returns the middleware-assigned
  /// uid (useful for tests and tracing; applications normally ignore it).
  TupleUid inject(std::unique_ptr<Tuple> tuple);

  /// Copies of local tuples matching `pattern` (the paper's `read`).
  [[nodiscard]] std::vector<std::unique_ptr<Tuple>> read(
      const Pattern& pattern) const;

  /// First local match, or nullptr.
  [[nodiscard]] std::unique_ptr<Tuple> read_one(const Pattern& pattern) const;

  /// Extracts and returns local tuples matching `pattern` (the paper's
  /// `delete`).  Removal is local: replicas on other nodes are untouched,
  /// exactly as in the paper (use a modifier tuple for distributed
  /// deletion).
  std::vector<std::unique_ptr<Tuple>> take(const Pattern& pattern);

  /// Associates `reaction` with events whose tuple matches `pattern`.
  SubscriptionId subscribe(Pattern pattern, EventBus::Reaction reaction,
                           int kind_filter = EventBus::kAnyKind);

  void unsubscribe(SubscriptionId id);
  void unsubscribe(const Pattern& pattern);

  /// Registers a continuous query (docs/QUERY.md): `on_delta` first
  /// replays the current matches as kAdded deltas (uid order), then the
  /// result set is maintained incrementally on every local store change —
  /// no re-scan.  Tuples this node may not observe never enter the set.
  QueryId subscribe_query(Pattern pattern, EventBus::QueryCallback on_delta);

  void unsubscribe_query(QueryId id);

  // --- link-layer upcalls ---------------------------------------------------

  void on_datagram(NodeId from, std::span<const std::uint8_t> payload);
  /// Shared-buffer variant: link layers that deliver one broadcast buffer
  /// to many co-simulated receivers use this so the engine can decode the
  /// frame once per transmission (see Engine::on_datagram).
  void on_datagram(NodeId from, std::shared_ptr<const wire::Bytes> payload);
  void on_neighbor_up(NodeId neighbor);
  void on_neighbor_down(NodeId neighbor);

  // --- anti-entropy (see tota/digest.h, net/session.h) ----------------------

  /// Digest of this node's propagated tuple set.
  [[nodiscard]] StoreDigest digest(std::uint32_t buckets) const {
    return engine_.digest(buckets);
  }
  /// Diff a neighbour's digest against the local store and re-broadcast
  /// the tuples in differing buckets; returns how many were re-sent.
  int on_digest(NodeId from, const StoreDigest& remote) {
    return engine_.on_digest(from, remote);
  }

  // --- introspection ----------------------------------------------------------

  [[nodiscard]] NodeId self() const { return engine_.self(); }
  [[nodiscard]] const TupleSpace& space() const { return space_; }
  [[nodiscard]] const Engine& engine() const { return engine_; }
  /// This node's observability hub (shared with the other nodes of the
  /// same world).
  [[nodiscard]] obs::Hub& hub() const { return engine_.hub(); }
  [[nodiscard]] const MaintenanceOptions& maintenance_options() const {
    return engine_.maintenance_options();
  }
  [[nodiscard]] const std::vector<NodeId>& neighbors() const {
    return engine_.neighbors();
  }
  [[nodiscard]] Platform& platform() { return platform_; }

 private:
  Platform& platform_;
  TupleSpace space_;
  EventBus bus_;
  Engine engine_;
};

}  // namespace tota
