#include "tota/engine_metrics.h"

namespace tota {

EngineMetrics::EngineMetrics(obs::MetricsRegistry& registry)
    : inject(registry.counter("engine.inject")),
      store(registry.counter("engine.store")),
      propagate(registry.counter("engine.propagate")),
      drop_enter(registry.counter("engine.drop.enter")),
      drop_duplicate(registry.counter("engine.drop.duplicate")),
      drop_holddown(registry.counter("engine.drop.holddown")),
      drop_passthrough(registry.counter("engine.drop.passthrough")),
      retire(registry.counter("engine.retire")),
      decode_fail(registry.counter("engine.decode_fail")),
      maint_link_up_reprop(registry.counter("maint.link_up_reprop")),
      maint_retract_started(registry.counter("maint.retract_started")),
      maint_retract_cascaded(registry.counter("maint.retract_cascaded")),
      maint_heal_reprop(registry.counter("maint.heal_reprop")),
      maint_probe_tx(registry.counter("maint.probe_tx")),
      maint_probe_answer(registry.counter("maint.probe_answer")),
      repair_ms(registry.histogram("maint.repair_ms")) {}

}  // namespace tota
