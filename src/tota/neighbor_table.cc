#include "tota/neighbor_table.h"

namespace tota {

void NeighborValueTable::note(const TupleUid& uid, NodeId n, int hop) {
  values_[uid][n] = hop;
}

void NeighborValueTable::forget(const TupleUid& uid, NodeId n,
                                bool retain_row) {
  const auto it = values_.find(uid);
  if (it == values_.end()) return;
  it->second.erase(n);
  if (it->second.empty() && !retain_row) values_.erase(it);
}

std::vector<TupleUid> NeighborValueTable::forget_neighbor(NodeId n) {
  std::vector<TupleUid> affected;
  for (auto& [uid, values] : values_) {
    if (values.erase(n) > 0) affected.push_back(uid);
  }
  return affected;
}

bool NeighborValueTable::supports(const TupleUid& uid, int hop) const {
  const auto it = values_.find(uid);
  if (it == values_.end()) return false;
  for (const auto& [n, value] : it->second) {
    if (value < hop) return true;  // a shorter support chain next door
  }
  return false;
}

}  // namespace tota
