// Query planner — compiles a Pattern into an index-assisted access plan
// over TupleSpace's secondary indexes (docs/QUERY.md).
//
// A pattern names up to three indexable constraints: the type tag (the
// by-type bucket), the replica's parent (the parent→children index), and
// the propagated flag (the propagated set).  `compile` looks at the
// actual bucket sizes of the target space and picks the path with the
// fewest candidates, then marks which constraints remain to be checked
// per candidate (the residual).  Plans are per-query and cost a few map
// lookups — the store can change arbitrarily between queries.
#pragma once

#include <cstddef>
#include <cstdint>

#include "tota/pattern.h"

namespace tota {

class TupleSpace;

namespace query {

/// How the executor walks the store.  Every path yields candidates in
/// ascending uid order, so plan results are bit-for-bit a full scan's.
enum class AccessPath : std::uint8_t {
  kTypeIndex,        // the pattern's type-tag bucket
  kParentIndex,      // children of the pattern's parent
  kPropagatedIndex,  // the propagated set (pattern wants propagated==true)
  kFullScan,         // the whole store
};

const char* to_string(AccessPath path);

struct Plan {
  AccessPath path = AccessPath::kFullScan;
  /// Candidates the chosen path will touch (exact: index sizes are known
  /// at compile time; the store is not mutated while a query runs).
  std::size_t candidates = 0;
  // Residual constraints — whatever the access path doesn't imply.
  bool check_type = false;
  bool check_parent = false;
  bool check_propagated = false;
  bool check_fields = false;

  [[nodiscard]] bool residual() const {
    return check_type || check_parent || check_propagated || check_fields;
  }
};

/// Picks the most selective access path for `pattern` over `space`.
/// Ties break toward the cheaper walk: type bucket (contiguous entry
/// pointers) over parent/propagated uid sets over the full scan.
[[nodiscard]] Plan compile(const Pattern& pattern, const TupleSpace& space);

}  // namespace query
}  // namespace tota
