#include "tota/hold_down.h"

namespace tota {

void HoldDownTable::arm(const TupleUid& uid, SimTime until, int removed_hop) {
  entries_[uid] = Entry{until, removed_hop};
}

void HoldDownTable::disarm(const TupleUid& uid) { entries_.erase(uid); }

bool HoldDownTable::blocks(const TupleUid& uid, int hop, SimTime now) const {
  const auto it = entries_.find(uid);
  if (it == entries_.end()) return false;
  if (now >= it->second.until) return false;  // expired, probe pending
  return hop >= it->second.removed_hop;
}

bool HoldDownTable::expire(const TupleUid& uid, SimTime now) {
  const auto it = entries_.find(uid);
  if (it == entries_.end() || now < it->second.until) return false;
  entries_.erase(it);
  return true;
}

}  // namespace tota
