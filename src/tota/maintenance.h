// Self-maintenance policy knobs and bookkeeping.
//
// The TOTA engine keeps distributed tuple structures coherent as the
// network changes (Sec. 3: "the middleware automatically re-propagates
// tuples as soon as appropriate conditions occur").  Two mechanisms,
// described in full in engine.h's header essay:
//
//  * link-up re-propagation — every stored replica whose rule propagated
//    is re-broadcast when a new neighbour appears, so newcomers receive
//    the structures already in place;
//  * link-down retraction by *value justification* — there are no parent
//    pointers: a stored replica (other than at its source) is justified
//    while some current neighbour holds the same tuple at a strictly
//    smaller hop value.  A replica that loses justification (link break,
//    or a neighbour's RETRACT/stretch) is removed and announces its
//    removal with a RETRACT control message, cascading the check
//    outward; still-justified neighbours answer a RETRACT by
//    re-announcing their replica, which rebuilds correct values in the
//    orphaned region.  The hold_down window below plus a PROBE on its
//    expiry keep transient heals from re-seeding a region that must
//    drain (the distance-vector count-to-infinity hazard).
//
// Both can be disabled independently for the ablation benchmarks.
#pragma once

#include <cstdint>

#include "common/clock.h"

namespace tota {

struct MaintenanceOptions {
  /// Re-broadcast stored propagating replicas when a neighbour appears.
  bool repropagate_on_link_up = true;
  /// Retract unjustified replicas when their support disappears.
  bool retract_on_link_down = true;
  /// After retracting a replica, refuse to reinstall the same tuple at a
  /// value >= the removed one for this long, then PROBE the neighbourhood
  /// for surviving replicas.  This is the hold-down that lets regions cut
  /// off from a tuple's source drain completely instead of ratcheting
  /// their values upward forever (distance-vector count-to-infinity).
  /// Must comfortably exceed a few radio hops' worth of latency.
  SimTime hold_down = SimTime::from_millis(150);
  /// How many pass-through tuple uids the dedup filter remembers.  When
  /// exceeded, the oldest half is evicted — a very late duplicate of an
  /// evicted message could then be re-relayed once, which is harmless;
  /// unbounded memory on "really simple devices" is not.
  std::size_t passthrough_memory = 4096;
  /// Cadence of the aggregation subsystem's maintenance tick
  /// (tuples/aggregator.h): per-tuple value decay is pruned and stale
  /// contributions expire on this timer.  Aggregators inherit this as
  /// their default tick; zero disables decay maintenance entirely.
  SimTime agg_decay_tick = SimTime::from_millis(250);
};

/// Counters the engine increments; experiments read these to cost the
/// maintenance machinery.  The engine mirrors each field into its
/// metrics registry under the "maint." prefix (see EngineMetrics in
/// engine.h and docs/OBSERVABILITY.md), where they aggregate across all
/// nodes sharing a hub; this struct stays per-engine.
struct MaintenanceStats {
  std::uint64_t link_up_repropagations = 0;
  std::uint64_t retractions_started = 0;   // replicas dropped by link loss
  std::uint64_t retractions_cascaded = 0;  // replicas dropped by RETRACT
  std::uint64_t heal_repropagations = 0;   // replies to RETRACT
  std::uint64_t probes_sent = 0;           // hold-down expiry probes
  std::uint64_t probe_answers = 0;         // re-announcements to probes
};

}  // namespace tota
