#include "tota/query.h"

#include "tota/tuple_space.h"

namespace tota::query {

const char* to_string(AccessPath path) {
  switch (path) {
    case AccessPath::kTypeIndex:
      return "type_index";
    case AccessPath::kParentIndex:
      return "parent_index";
    case AccessPath::kPropagatedIndex:
      return "propagated_index";
    case AccessPath::kFullScan:
      return "full_scan";
  }
  return "?";
}

Plan compile(const Pattern& pattern, const TupleSpace& space) {
  Plan plan;
  plan.path = AccessPath::kFullScan;
  plan.candidates = space.size();

  // Earlier options win ties, so the order here encodes walk cost.
  if (pattern.type_tag()) {
    const auto* bucket = space.type_bucket(*pattern.type_tag());
    const std::size_t n = bucket != nullptr ? bucket->size() : 0;
    if (n < plan.candidates ||
        (n == plan.candidates && plan.path == AccessPath::kFullScan)) {
      plan.path = AccessPath::kTypeIndex;
      plan.candidates = n;
    }
  }
  if (pattern.parent()) {
    const auto* bucket = space.parent_bucket(*pattern.parent());
    const std::size_t n = bucket != nullptr ? bucket->size() : 0;
    if (n < plan.candidates) {
      plan.path = AccessPath::kParentIndex;
      plan.candidates = n;
    }
  }
  // Only propagated==true has an index; ==false is residual-only.
  if (pattern.propagated() && *pattern.propagated()) {
    const std::size_t n = space.propagated_set().size();
    if (n < plan.candidates) {
      plan.path = AccessPath::kPropagatedIndex;
      plan.candidates = n;
    }
  }

  plan.check_type =
      pattern.type_tag().has_value() && plan.path != AccessPath::kTypeIndex;
  plan.check_parent =
      pattern.parent().has_value() && plan.path != AccessPath::kParentIndex;
  plan.check_propagated = pattern.propagated().has_value() &&
                          plan.path != AccessPath::kPropagatedIndex;
  plan.check_fields = !pattern.constraints().empty();
  return plan;
}

}  // namespace tota::query
