// Bounded uid-keyed store with FIFO half-eviction — the memory-safety
// primitive behind the engine's pass-through filter and repair tracker.
//
// "Really simple devices" (paper §7) cannot keep unbounded state, so both
// users cap their entry count: when an insert pushes the store past its
// capacity, the oldest half is evicted in insertion order.  Evicting half
// (not one) amortizes the walk and keeps recently-seen uids — the ones
// duplicates actually arrive for — resident.
//
// Entries can also be erased externally (a repair completing removes its
// uid from the tracker).  The insertion-order deque is not compacted on
// such erases; instead each entry carries the sequence number of its
// insertion, and the eviction walk skips deque slots whose sequence no
// longer matches the live entry — a stale slot (erased, or erased and
// later re-inserted) neither counts toward the eviction quota nor can
// evict the newer entry that reused its uid.  (The pre-extraction code
// counted stale slots against the quota, so live entries were evicted
// well before the configured capacity; see the regression test in
// tests/test_engine.cc.)
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <utility>

#include "common/ids.h"

namespace tota {

template <typename Value>
class BoundedUidFifo {
 public:
  explicit BoundedUidFifo(std::size_t capacity) : capacity_(capacity) {}

  /// Inserts `uid` → `value`; returns false (and leaves the stored value
  /// untouched) when the uid is already present.
  bool insert(const TupleUid& uid, Value value = Value{}) {
    const auto [it, fresh] = entries_.try_emplace(
        uid, Slot{std::move(value), next_seq_});
    if (!fresh) return false;
    order_.emplace_back(uid, next_seq_++);
    maybe_evict();
    return true;
  }

  [[nodiscard]] bool contains(const TupleUid& uid) const {
    return entries_.count(uid) > 0;
  }

  /// The stored value, or nullptr when absent.
  [[nodiscard]] const Value* find(const TupleUid& uid) const {
    const auto it = entries_.find(uid);
    return it == entries_.end() ? nullptr : &it->second.value;
  }

  /// External removal (e.g. a repair completed).  The order deque keeps a
  /// stale slot; eviction skips it.  Returns true when the uid was live.
  bool erase(const TupleUid& uid) { return entries_.erase(uid) > 0; }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  struct Slot {
    Value value;
    std::uint64_t seq;  // insertion sequence; pairs with the order deque
  };

  void maybe_evict() {
    if (entries_.size() <= capacity_) return;
    std::size_t quota = entries_.size() / 2;
    while (quota > 0 && !order_.empty()) {
      const auto& [uid, seq] = order_.front();
      const auto it = entries_.find(uid);
      if (it != entries_.end() && it->second.seq == seq) {
        entries_.erase(it);
        --quota;  // only a live eviction spends quota
      }
      order_.pop_front();
    }
  }

  std::unordered_map<TupleUid, Slot> entries_;
  std::deque<std::pair<TupleUid, std::uint64_t>> order_;
  std::size_t capacity_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace tota
