// The propagation pipeline (steps 1–7 in engine.h) and the send path.
// Receive/decode lives in engine_rx.cc; topology-change repair in
// engine_maintenance.cc.
#include "tota/engine.h"

#include "common/logging.h"

namespace tota {

Engine::Engine(NodeId self, Platform& platform, TupleSpace& space,
               EventBus& bus, MaintenanceOptions maintenance, obs::Hub* hub)
    : self_(self),
      platform_(platform),
      space_(space),
      bus_(bus),
      maintenance_(maintenance),
      hub_(hub != nullptr ? *hub : obs::default_hub()),
      metrics_(hub_.metrics),
      seen_passthrough_(maintenance.passthrough_memory),
      repair_pending_(maintenance.passthrough_memory) {}

Engine::~Engine() {
  // Recurring maintenance timers (hold-down expiries, coalesced
  // re-propagation) capture `this`; cancel the survivors so a platform
  // that outlives the engine (live event loop) cannot fire them into a
  // destroyed object.  SimPlatform additionally guards with an aliveness
  // token, so in the simulator this is belt-and-braces.
  for (const Platform::TimerId id : live_timers_) platform_.cancel(id);
}

void Engine::schedule_owned(SimTime delay, std::function<void()> action) {
  // The callback needs its own id to retire it from live_timers_, but the
  // id only exists after schedule() returns; the shared slot bridges the
  // gap (schedule never runs the action synchronously).
  auto slot = std::make_shared<Platform::TimerId>(Platform::kInvalidTimer);
  const Platform::TimerId id = platform_.schedule(
      delay, [this, slot, action = std::move(action)] {
        live_timers_.erase(*slot);
        action();
      });
  *slot = id;
  live_timers_.insert(id);
}

void Engine::trace(obs::Stage stage, const TupleUid& uid, int hop) {
  hub_.tracer.record(platform_.now(), self_, stage, uid, hop);
}

Context Engine::make_context(NodeId from, int hop) const {
  auto* self = const_cast<Engine*>(this);  // SpaceOps is deliberately mutable
  return Context{self_,
                 from,
                 hop,
                 platform_.now(),
                 platform_.position(),
                 space_,
                 platform_.rng(),
                 self};
}

std::vector<std::unique_ptr<Tuple>> Engine::take_local(
    const Pattern& pattern) {
  auto removed = space_.take(pattern);
  for (const auto& tuple : removed) {
    bus_.publish(
        Event{EventKind::kTupleRemoved, tuple.get(), platform_.now()});
  }
  return removed;
}

TupleUid Engine::inject(std::unique_ptr<Tuple> tuple) {
  const TupleUid uid{self_, next_sequence_++};
  tuple->set_uid(uid);
  tuple->set_hop(0);
  metrics_.inject.inc();
  trace(obs::Stage::kInject, uid, 0);
  process(std::move(tuple), self_);
  return uid;
}

void Engine::process(std::unique_ptr<Tuple> tuple, NodeId from) {
  const Context ctx = make_context(from, tuple->hop());
  if (!tuple->decide_enter(ctx)) {  // step 1
    metrics_.drop_enter.inc();
    return;
  }
  tuple->change_content(ctx);  // step 2

  const TupleUid uid = tuple->uid();
  const TupleSpace::Entry* existing = space_.find(uid);
  const bool local = from == self_;

  // Step 3: duplicate resolution.
  if (existing != nullptr && !tuple->supersedes(*existing->tuple)) {
    metrics_.drop_duplicate.inc();
    return;  // duplicate or worse copy; the stored structure stands
  }

  if (!local && tuple->maintained() &&
      hold_down_.blocks(uid, tuple->hop(), platform_.now())) {
    // Recently retracted at a value this copy does not beat: wait out the
    // hold-down instead of re-seeding a possibly-orphaned region.  The
    // PROBE at expiry pulls the value back in if a real holder survives.
    metrics_.drop_holddown.inc();
    return;
  }

  // Access control (paper §6): a node without host rights relays the
  // tuple (when the rule propagates) but keeps no replica; a node without
  // observe rights hosts/relays silently — its applications never hear
  // about the tuple.
  const bool may_host = tuple->permits(AccessOp::kHost, self_);
  const bool may_observe = tuple->permits(AccessOp::kObserve, self_);

  const bool store = tuple->decide_store(ctx) && may_host;  // step 4
  const bool propagate = tuple->decide_propagate(ctx);

  if (!store && existing == nullptr) {
    // Pass-through tuples keep no replica to deduplicate against, so the
    // engine remembers their uids: each flows through a node once.
    if (!seen_passthrough_.insert(uid)) {
      metrics_.drop_passthrough.inc();
      return;
    }
  }

  tuple->apply_effects(ctx);  // step 5

  if (store) {
    // Replicas of non-maintained tuples record no upstream dependency, so
    // link loss never retracts them (a delivered message outlives its
    // path).
    const NodeId parent =
        (local || !tuple->maintained()) ? NodeId{} : from;
    space_.put(tuple->clone(), parent, propagate, platform_.now());
    hold_down_.disarm(uid);  // a strictly better value ends the hold early
    metrics_.store.inc();
    trace(obs::Stage::kStore, uid, tuple->hop());
    record_repair(uid);
  } else if (existing != nullptr) {
    // An update talked the rule out of storing here (e.g. the content
    // moved out of the tuple's spatial scope): retire the stale replica.
    auto removed = space_.erase(uid);
    metrics_.retire.inc();
    bus_.publish(
        Event{EventKind::kTupleRemoved, removed.get(), platform_.now()});
  }

  if (may_observe) {  // step 6
    bus_.publish(
        Event{EventKind::kTupleArrived, tuple.get(), platform_.now()});
  }

  if (propagate) send_tuple(*tuple);  // step 7
}

void Engine::send_tuple(const Tuple& tuple) {
  wire::Bytes frame = wire::Frame::tuple(
      [&tuple](wire::Writer& w) { tuple.encode(w); }, frame_size_hint_);
  if (frame.size() > frame_size_hint_) frame_size_hint_ = frame.size();
  metrics_.propagate.inc();
  trace(obs::Stage::kPropagate, tuple.uid(), tuple.hop());
  platform_.broadcast(std::move(frame));
}

}  // namespace tota
