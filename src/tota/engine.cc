#include "tota/engine.h"

#include <algorithm>

#include "common/logging.h"

namespace tota {

EngineMetrics::EngineMetrics(obs::MetricsRegistry& registry)
    : inject(registry.counter("engine.inject")),
      store(registry.counter("engine.store")),
      propagate(registry.counter("engine.propagate")),
      drop_enter(registry.counter("engine.drop.enter")),
      drop_duplicate(registry.counter("engine.drop.duplicate")),
      drop_holddown(registry.counter("engine.drop.holddown")),
      drop_passthrough(registry.counter("engine.drop.passthrough")),
      retire(registry.counter("engine.retire")),
      decode_fail(registry.counter("engine.decode_fail")),
      maint_link_up_reprop(registry.counter("maint.link_up_reprop")),
      maint_retract_started(registry.counter("maint.retract_started")),
      maint_retract_cascaded(registry.counter("maint.retract_cascaded")),
      maint_heal_reprop(registry.counter("maint.heal_reprop")),
      maint_probe_tx(registry.counter("maint.probe_tx")),
      maint_probe_answer(registry.counter("maint.probe_answer")),
      repair_ms(registry.histogram("maint.repair_ms")) {}

Engine::Engine(NodeId self, Platform& platform, TupleSpace& space,
               EventBus& bus, MaintenanceOptions maintenance, obs::Hub* hub)
    : self_(self),
      platform_(platform),
      space_(space),
      bus_(bus),
      maintenance_(maintenance),
      hub_(hub != nullptr ? *hub : obs::default_hub()),
      metrics_(hub_.metrics) {}

void Engine::trace(obs::Stage stage, const TupleUid& uid, int hop) {
  hub_.tracer.record(platform_.now(), self_, stage, uid, hop);
}

Context Engine::make_context(NodeId from, int hop) const {
  auto* self = const_cast<Engine*>(this);  // SpaceOps is deliberately mutable
  return Context{self_,
                 from,
                 hop,
                 platform_.now(),
                 platform_.position(),
                 space_,
                 platform_.rng(),
                 self};
}

std::vector<std::unique_ptr<Tuple>> Engine::take_local(
    const Pattern& pattern) {
  auto removed = space_.take(pattern);
  for (const auto& tuple : removed) {
    bus_.publish(
        Event{EventKind::kTupleRemoved, tuple.get(), platform_.now()});
  }
  return removed;
}

TupleUid Engine::inject(std::unique_ptr<Tuple> tuple) {
  const TupleUid uid{self_, next_sequence_++};
  tuple->set_uid(uid);
  tuple->set_hop(0);
  metrics_.inject.inc();
  trace(obs::Stage::kInject, uid, 0);
  process(std::move(tuple), self_);
  return uid;
}

void Engine::process(std::unique_ptr<Tuple> tuple, NodeId from) {
  const Context ctx = make_context(from, tuple->hop());
  if (!tuple->decide_enter(ctx)) {
    metrics_.drop_enter.inc();
    return;
  }
  tuple->change_content(ctx);

  const TupleUid uid = tuple->uid();
  const TupleSpace::Entry* existing = space_.find(uid);
  const bool local = from == self_;

  if (existing != nullptr && !tuple->supersedes(*existing->tuple)) {
    metrics_.drop_duplicate.inc();
    return;  // duplicate or worse copy; the stored structure stands
  }

  if (!local && tuple->maintained() && held_down(uid, tuple->hop())) {
    // Recently retracted at a value this copy does not beat: wait out the
    // hold-down instead of re-seeding a possibly-orphaned region.  The
    // PROBE at expiry pulls the value back in if a real holder survives.
    metrics_.drop_holddown.inc();
    return;
  }

  // Access control (paper §6): a node without host rights relays the
  // tuple (when the rule propagates) but keeps no replica; a node without
  // observe rights hosts/relays silently — its applications never hear
  // about the tuple.
  const bool may_host = tuple->permits(AccessOp::kHost, self_);
  const bool may_observe = tuple->permits(AccessOp::kObserve, self_);

  const bool store = tuple->decide_store(ctx) && may_host;
  const bool propagate = tuple->decide_propagate(ctx);

  if (!store && existing == nullptr) {
    // Pass-through tuples keep no replica to deduplicate against, so the
    // engine remembers their uids: each flows through a node once.
    if (!remember_passthrough(uid)) {
      metrics_.drop_passthrough.inc();
      return;
    }
  }

  tuple->apply_effects(ctx);

  if (store) {
    // Replicas of non-maintained tuples record no upstream dependency, so
    // link loss never retracts them (a delivered message outlives its
    // path).
    const NodeId parent =
        (local || !tuple->maintained()) ? NodeId{} : from;
    space_.put(tuple->clone(), parent, propagate, platform_.now());
    hold_down_.erase(uid);  // a strictly better value ends the hold early
    metrics_.store.inc();
    trace(obs::Stage::kStore, uid, tuple->hop());
    record_repair(uid);
  } else if (existing != nullptr) {
    // An update talked the rule out of storing here (e.g. the content
    // moved out of the tuple's spatial scope): retire the stale replica.
    auto removed = space_.erase(uid);
    metrics_.retire.inc();
    bus_.publish(
        Event{EventKind::kTupleRemoved, removed.get(), platform_.now()});
  }

  if (may_observe) {
    bus_.publish(
        Event{EventKind::kTupleArrived, tuple.get(), platform_.now()});
  }

  if (propagate) send_tuple(*tuple);
}

bool Engine::remember_passthrough(const TupleUid& uid) {
  if (!seen_passthrough_.insert(uid).second) return false;
  passthrough_order_.push_back(uid);
  if (seen_passthrough_.size() > maintenance_.passthrough_memory) {
    const std::size_t evict = seen_passthrough_.size() / 2;
    for (std::size_t i = 0; i < evict; ++i) {
      seen_passthrough_.erase(passthrough_order_.front());
      passthrough_order_.pop_front();
    }
  }
  return true;
}

void Engine::send_tuple(const Tuple& tuple) {
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(FrameKind::kTuple));
  tuple.encode(w);
  metrics_.propagate.inc();
  trace(obs::Stage::kPropagate, tuple.uid(), tuple.hop());
  platform_.broadcast(w.take());
}

void Engine::on_datagram(NodeId from, std::span<const std::uint8_t> payload) {
  try {
    wire::Reader r(payload);
    const auto kind = static_cast<FrameKind>(r.u8());
    switch (kind) {
      case FrameKind::kTuple: {
        auto tuple = Tuple::decode(r);
        r.expect_done();
        // Overhearing the frame tells us what the sender now holds —
        // maintenance bookkeeping happens even for copies the
        // propagation rule goes on to reject.
        if (tuple->maintained()) {
          note_neighbor_value(tuple->uid(), from, tuple->hop());
        }
        tuple->set_hop(tuple->hop() + 1);
        process(std::move(tuple), from);
        return;
      }
      case FrameKind::kRetract: {
        const NodeId origin{r.uvarint()};
        const std::uint64_t seq = r.uvarint();
        r.svarint();  // hop at removal; carried for tracing only
        r.expect_done();
        handle_retract(from, TupleUid{origin, seq});
        return;
      }
      case FrameKind::kProbe: {
        const NodeId origin{r.uvarint()};
        const std::uint64_t seq = r.uvarint();
        r.expect_done();
        handle_probe(TupleUid{origin, seq});
        return;
      }
    }
    throw wire::DecodeError("unknown frame kind");
  } catch (const wire::DecodeError&) {
    ++decode_failures_;
    metrics_.decode_fail.inc();
  } catch (const wire::UnknownTypeError&) {
    ++decode_failures_;
    metrics_.decode_fail.inc();
  }
}

void Engine::on_neighbor_up(NodeId neighbor) {
  const auto it =
      std::lower_bound(neighbors_.begin(), neighbors_.end(), neighbor);
  if (it != neighbors_.end() && *it == neighbor) return;
  neighbors_.insert(it, neighbor);

  if (!maintenance_.repropagate_on_link_up) return;
  // Debounced: several links appearing at the same instant (a node joining
  // a dense area) trigger one re-propagation round, not one per link.
  if (repropagation_pending_) return;
  repropagation_pending_ = true;
  platform_.schedule(SimTime::zero(), [this] {
    repropagation_pending_ = false;
    for (const TupleUid& uid : space_.propagated_uids()) {
      const auto* entry = space_.find(uid);
      if (entry == nullptr) continue;
      if (uid.origin() == self_ && entry->tuple->hop() == 0) {
        // Source replica: the node may have moved since injection, so
        // position-dependent content (advert locations, spatial origins)
        // is re-evaluated at hop 0 before re-announcing.
        auto fresh = entry->tuple->clone();
        fresh->change_content(make_context(self_, 0));
        if (!(fresh->content() == entry->tuple->content())) {
          send_tuple(*fresh);
          space_.put(std::move(fresh), NodeId{}, true, platform_.now());
        } else {
          send_tuple(*entry->tuple);
        }
      } else {
        send_tuple(*entry->tuple);
      }
      ++maintenance_stats_.link_up_repropagations;
      metrics_.maint_link_up_reprop.inc();
    }
  });
}

void Engine::on_neighbor_down(NodeId neighbor) {
  const auto it =
      std::lower_bound(neighbors_.begin(), neighbors_.end(), neighbor);
  if (it != neighbors_.end() && *it == neighbor) neighbors_.erase(it);

  if (!maintenance_.retract_on_link_down) return;
  // Everything we knew the departed neighbour held is gone; replicas that
  // relied on those values for justification must go too.
  std::vector<TupleUid> to_recheck;
  for (auto& [uid, values] : neighbor_values_) {
    if (values.erase(neighbor) > 0) to_recheck.push_back(uid);
  }
  for (const TupleUid& uid : to_recheck) recheck(uid, /*cascaded=*/false);
}

void Engine::note_neighbor_value(const TupleUid& uid, NodeId n, int hop) {
  neighbor_values_[uid][n] = hop;
  // A neighbour's value can also *stretch* past ours and void our
  // justification; re-check eagerly.
  if (maintenance_.retract_on_link_down) recheck(uid);
}

void Engine::forget_neighbor_value(const TupleUid& uid, NodeId n) {
  const auto it = neighbor_values_.find(uid);
  if (it == neighbor_values_.end()) return;
  it->second.erase(n);
  if (it->second.empty() && space_.find(uid) == nullptr) {
    neighbor_values_.erase(it);
  }
}

bool Engine::justified(const TupleSpace::Entry& entry) const {
  const TupleUid uid = entry.tuple->uid();
  if (!entry.tuple->maintained()) return true;
  if (uid.origin() == self_) return true;  // the source carries its own
  const auto it = neighbor_values_.find(uid);
  if (it == neighbor_values_.end()) return false;
  const int mine = entry.tuple->hop();
  for (const auto& [n, hop] : it->second) {
    if (hop < mine) return true;  // a shorter support chain next door
  }
  return false;
}

void Engine::recheck(const TupleUid& uid, bool cascaded) {
  const auto* entry = space_.find(uid);
  if (entry == nullptr) return;
  if (justified(*entry)) return;
  retract_local(uid, cascaded);
}

void Engine::retract_local(const TupleUid& uid, bool cascaded) {
  const auto* entry = space_.find(uid);
  if (entry == nullptr) return;
  const int removed_hop = entry->tuple->hop();

  auto removed = space_.erase(uid);
  if (cascaded) {
    ++maintenance_stats_.retractions_cascaded;
    metrics_.maint_retract_cascaded.inc();
  } else {
    ++maintenance_stats_.retractions_started;
    metrics_.maint_retract_started.inc();
  }
  trace(obs::Stage::kRetract, uid, removed_hop);
  note_repair_pending(uid);
  bus_.publish(
      Event{EventKind::kTupleRemoved, removed.get(), platform_.now()});

  // Arm the hold-down and schedule the expiry probe.  A newer retraction
  // may re-arm before this one expires; the lambda checks.
  const SimTime until = platform_.now() + maintenance_.hold_down;
  hold_down_[uid] = HoldDown{until, removed_hop};
  platform_.schedule(maintenance_.hold_down, [this, uid] {
    const auto it = hold_down_.find(uid);
    if (it == hold_down_.end() || platform_.now() < it->second.until) return;
    hold_down_.erase(it);
    wire::Writer w;
    w.u8(static_cast<std::uint8_t>(FrameKind::kProbe));
    w.uvarint(uid.origin().value());
    w.uvarint(uid.sequence());
    platform_.broadcast(w.take());
    ++maintenance_stats_.probes_sent;
    metrics_.maint_probe_tx.inc();
    trace(obs::Stage::kProbe, uid, /*hop=*/-1);
  });

  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(FrameKind::kRetract));
  w.uvarint(uid.origin().value());
  w.uvarint(uid.sequence());
  w.svarint(removed_hop);
  platform_.broadcast(w.take());
}

bool Engine::held_down(const TupleUid& uid, int hop) const {
  const auto it = hold_down_.find(uid);
  if (it == hold_down_.end()) return false;
  if (platform_.now() >= it->second.until) return false;  // expired
  return hop >= it->second.removed_hop;
}

void Engine::handle_probe(const TupleUid& uid) {
  const auto* entry = space_.find(uid);
  if (entry == nullptr || !entry->propagated) return;
  if (!justified(*entry)) return;  // don't feed a drain in progress
  send_tuple(*entry->tuple);
  ++maintenance_stats_.probe_answers;
  metrics_.maint_probe_answer.inc();
  trace(obs::Stage::kHeal, uid, entry->tuple->hop());
}

void Engine::handle_retract(NodeId from, const TupleUid& uid) {
  forget_neighbor_value(uid, from);
  if (!maintenance_.retract_on_link_down) return;

  const auto* entry = space_.find(uid);
  if (entry == nullptr) return;
  if (!justified(*entry)) {
    // Our support chain ran through the retracting neighbour: cascade.
    retract_local(uid, /*cascaded=*/true);
    return;
  }
  // Our replica is independently supported: answer by re-announcing it,
  // which rebuilds correct values in the orphaned region.
  if (entry->propagated) {
    send_tuple(*entry->tuple);
    ++maintenance_stats_.heal_repropagations;
    metrics_.maint_heal_reprop.inc();
    trace(obs::Stage::kHeal, uid, entry->tuple->hop());
  }
}

void Engine::note_repair_pending(const TupleUid& uid) {
  // Keep the *first* retraction instant: the structure has been wrong
  // since then, so a re-retraction during an ongoing repair must not
  // reset the clock.
  if (!repair_pending_.emplace(uid, platform_.now()).second) return;
  repair_order_.push_back(uid);
  if (repair_pending_.size() > maintenance_.passthrough_memory) {
    const std::size_t evict = repair_pending_.size() / 2;
    for (std::size_t i = 0; i < evict; ++i) {
      repair_pending_.erase(repair_order_.front());
      repair_order_.pop_front();
    }
  }
}

void Engine::record_repair(const TupleUid& uid) {
  const auto it = repair_pending_.find(uid);
  if (it == repair_pending_.end()) return;
  metrics_.repair_ms.record((platform_.now() - it->second).millis());
  repair_pending_.erase(it);
  // repair_order_ may keep a stale uid; the eviction loop tolerates that
  // (erase of an absent key is a no-op).
}

}  // namespace tota
