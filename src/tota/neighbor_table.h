// NeighborValueTable — the justification oracle of self-maintenance.
//
// Because every propagation is a broadcast, a node overhears the replica
// values its one-hop neighbours hold.  This table records them:
// uid → neighbour → hop value at that neighbour.  The engine consults it
// to decide whether a stored replica is *justified* — some current
// neighbour holds the same tuple at a strictly smaller hop value, i.e. a
// shorter support chain towards the source exists next door (the full
// essay lives in engine.h).
//
// Determinism note: the outer map is deliberately the same unordered_map
// the engine historically used, and forget_neighbor() reports affected
// uids in its iteration order — the recheck cascade (and therefore the
// broadcast/RNG draw order of a whole simulation) reproduces run-to-run.
#pragma once

#include <map>
#include <unordered_map>
#include <vector>

#include "common/ids.h"

namespace tota {

class NeighborValueTable {
 public:
  /// Records that neighbour `n` currently holds `uid` at `hop`.
  void note(const TupleUid& uid, NodeId n, int hop);

  /// Forgets what `n` held for `uid` (it retracted).  When the row
  /// empties and `retain_row` is false (no local replica left that a
  /// future value could justify), the row itself is dropped.
  void forget(const TupleUid& uid, NodeId n, bool retain_row);

  /// Drops everything `n` held (the link went down); returns the uids
  /// whose support changed, in table iteration order.
  std::vector<TupleUid> forget_neighbor(NodeId n);

  /// True when some current neighbour holds `uid` strictly below `hop` —
  /// the value-justification test.
  [[nodiscard]] bool supports(const TupleUid& uid, int hop) const;

  [[nodiscard]] std::size_t rows() const { return values_.size(); }

 private:
  std::unordered_map<TupleUid, std::map<NodeId, int>> values_;
};

}  // namespace tota
