// EVENT INTERFACE — asynchronous notification of local events.
//
// "Any event occurring in TOTA (including: arrivals of new tuples,
// connections and disconnections of nodes) can be represented as a tuple"
// (Sec. 4.3): neighbour connect/disconnect is published as an ephemeral
// PresenceTuple, so one subscription mechanism (pattern + reaction)
// covers everything.  The Java prototype names the reaction method by
// string; the C++ analogue is a callback.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "tota/pattern.h"
#include "tota/tuple.h"

namespace tota {

enum class EventKind {
  kTupleArrived,   // a tuple entered (or updated in) the local space
  kTupleRemoved,   // a replica was removed (taken or retracted)
  kNeighborUp,     // a node joined the one-hop neighbourhood
  kNeighborDown,   // a node left the one-hop neighbourhood
};

const char* to_string(EventKind kind);

/// What a reaction sees.  `tuple` is the arrived/removed tuple, or the
/// synthesized PresenceTuple for neighbour events; always non-null and
/// valid only for the duration of the callback.
struct Event {
  EventKind kind;
  const Tuple* tuple;
  SimTime time;
};

/// Ephemeral tuple representing a neighbour connect/disconnect.  Never
/// stored or propagated; exists so presence subscriptions use ordinary
/// patterns: Pattern::of_type(PresenceTuple::kTag).eq("event", "up").
class PresenceTuple final : public Tuple {
 public:
  static constexpr const char* kTag = "tota.presence";

  PresenceTuple() = default;
  PresenceTuple(NodeId neighbor, bool up);

  [[nodiscard]] std::string type_tag() const override { return kTag; }
  [[nodiscard]] std::unique_ptr<Tuple> clone() const override {
    return std::make_unique<PresenceTuple>(*this);
  }
  [[nodiscard]] NodeId neighbor() const { return content().at("node").as_node(); }
  [[nodiscard]] bool up() const { return content().at("event").as_string() == "up"; }
};

using SubscriptionId = std::uint64_t;

class EventBus {
 public:
  using Reaction = std::function<void(const Event&)>;

  /// Registers `reaction` for events whose tuple matches `pattern`,
  /// optionally restricted to one event kind (kAnyKind = all).
  static constexpr int kAnyKind = -1;
  SubscriptionId subscribe(Pattern pattern, Reaction reaction,
                           int kind_filter = kAnyKind);

  void unsubscribe(SubscriptionId id);

  /// Removes every subscription whose pattern is structurally equivalent
  /// to `pattern` — the paper's `unsubscribe(Tuple template)`.
  void unsubscribe(const Pattern& pattern);

  /// Dispatches an event to all matching subscriptions.  Reactions may
  /// subscribe/unsubscribe/inject reentrantly; dispatch works on a
  /// snapshot.
  void publish(const Event& event);

  [[nodiscard]] std::size_t subscription_count() const {
    return subscriptions_.size();
  }

 private:
  struct Subscription {
    SubscriptionId id;
    Pattern pattern;
    Reaction reaction;
    int kind_filter;
  };

  std::vector<Subscription> subscriptions_;
  SubscriptionId next_id_ = 1;
};

}  // namespace tota
