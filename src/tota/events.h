// EVENT INTERFACE — asynchronous notification of local events.
//
// "Any event occurring in TOTA (including: arrivals of new tuples,
// connections and disconnections of nodes) can be represented as a tuple"
// (Sec. 4.3): neighbour connect/disconnect is published as an ephemeral
// PresenceTuple, so one subscription mechanism (pattern + reaction)
// covers everything.  The Java prototype names the reaction method by
// string; the C++ analogue is a callback.
//
// Dispatch is indexed: subscriptions live in (kind_filter, pattern type
// tag) buckets, so publish() examines only the four buckets an event can
// match — (kind, tag), (kind, any), (any, tag), (any, any) — instead of
// every subscription.  Reactions fire in subscription order (ids are
// assigned monotonically), identical to the pre-index linear scan, and
// reentrancy is handled by snapshotting the matched reactions and
// checking a live-id set (O(1) per reaction) before each call.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "obs/metrics.h"
#include "tota/pattern.h"
#include "tota/tuple.h"

namespace tota {

enum class EventKind {
  kTupleArrived,   // a tuple entered (or updated in) the local space
  kTupleRemoved,   // a replica was removed (taken or retracted)
  kNeighborUp,     // a node joined the one-hop neighbourhood
  kNeighborDown,   // a node left the one-hop neighbourhood
};

const char* to_string(EventKind kind);

/// What a reaction sees.  `tuple` is the arrived/removed tuple, or the
/// synthesized PresenceTuple for neighbour events; always non-null and
/// valid only for the duration of the callback.
struct Event {
  EventKind kind;
  const Tuple* tuple;
  SimTime time;
};

/// Ephemeral tuple representing a neighbour connect/disconnect.  Never
/// stored or propagated; exists so presence subscriptions use ordinary
/// patterns: Pattern::of_type(PresenceTuple::kTag).eq("event", "up").
class PresenceTuple final : public Tuple {
 public:
  static constexpr const char* kTag = "tota.presence";

  PresenceTuple() = default;
  PresenceTuple(NodeId neighbor, bool up);

  [[nodiscard]] std::string type_tag() const override { return kTag; }
  [[nodiscard]] std::unique_ptr<Tuple> clone() const override {
    return std::make_unique<PresenceTuple>(*this);
  }
  [[nodiscard]] NodeId neighbor() const { return content().at("node").as_node(); }
  [[nodiscard]] bool up() const { return content().at("event").as_string() == "up"; }
};

using SubscriptionId = std::uint64_t;
using QueryId = std::uint64_t;

/// One incremental change to a continuous query's result set
/// (docs/QUERY.md).  `tuple` is valid only for the duration of the
/// callback; kRemoved deltas see the tuple as it was when it left.
struct QueryDelta {
  enum class Kind {
    kAdded,    // tuple entered the result set
    kUpdated,  // a member was replaced and still matches
    kRemoved,  // tuple left the result set (retract/take/replace-out)
  };
  Kind kind;
  const Tuple* tuple;
  SimTime time;
};

const char* to_string(QueryDelta::Kind kind);

/// The bus's observability handles (docs/OBSERVABILITY.md, `bus.*`).
struct BusMetrics {
  explicit BusMetrics(obs::MetricsRegistry& registry);

  /// Events published.
  obs::Counter& publish;
  /// Subscriptions examined (pattern-match attempts) across publishes;
  /// candidates/publish approaches the matching count as buckets help.
  obs::Counter& candidates;
  /// Reactions run.
  obs::Counter& fired;
  /// Snapshot entries skipped because an earlier reaction in the same
  /// publish unsubscribed them.
  obs::Counter& skipped_dead;

  // Continuous-query counters (bus.cq.*, docs/QUERY.md).
  /// (query, change) pairs evaluated across space mutations.
  obs::Counter& cq_evals;
  /// Deltas delivered, by kind.
  obs::Counter& cq_added;
  obs::Counter& cq_updated;
  obs::Counter& cq_removed;
};

class EventBus {
 public:
  using Reaction = std::function<void(const Event&)>;
  using QueryCallback = std::function<void(const QueryDelta&)>;
  /// Per-tuple visibility filter a continuous query applies on top of its
  /// pattern (Middleware passes the observe-access check).
  using QueryAccept = std::function<bool(const Tuple&)>;

  /// Registers the bus.* instruments on `registry` and records into them
  /// from then on.  Optional: an unbound bus counts nothing.
  void bind_metrics(obs::MetricsRegistry& registry);

  /// Registers `reaction` for events whose tuple matches `pattern`,
  /// optionally restricted to one event kind (kAnyKind = all).
  static constexpr int kAnyKind = -1;
  SubscriptionId subscribe(Pattern pattern, Reaction reaction,
                           int kind_filter = kAnyKind);

  void unsubscribe(SubscriptionId id);

  /// Removes every subscription whose pattern is structurally equivalent
  /// to `pattern` — the paper's `unsubscribe(Tuple template)`.
  void unsubscribe(const Pattern& pattern);

  /// Dispatches an event to all matching subscriptions.  Reactions may
  /// subscribe/unsubscribe/inject reentrantly; dispatch works on a
  /// snapshot, and a reaction unsubscribed mid-publish never fires.
  void publish(const Event& event);

  [[nodiscard]] std::size_t subscription_count() const {
    return subscriptions_.size();
  }

  // --- continuous queries (docs/QUERY.md) -----------------------------------
  // A standing query whose result set is maintained *incrementally*: each
  // space mutation (reported via notify_space) re-evaluates only the
  // changed tuple against the registered patterns — never a re-scan —
  // and membership transitions become added/updated/removed deltas.

  /// Registers a standing query.  The caller seeds the initial result set
  /// (see seed_query); from then on deltas flow from notify_space.
  QueryId subscribe_query(Pattern pattern, QueryCallback on_delta,
                          QueryAccept accept = nullptr);

  void unsubscribe_query(QueryId id);

  /// Admits one already-stored replica into query `id`'s result set at
  /// registration time (fires kAdded if it matches).  Replays the same
  /// evaluation notify_space would run for an insert.
  void seed_query(QueryId id, const std::string& type_tag, const Tuple& tuple,
                  NodeId parent, bool propagated, SimTime now);

  /// The bus's view of a space mutation (mirrors
  /// TupleSpace::ChangeKind; kept local so the bus stays independent of
  /// the store's header).
  enum class SpaceChange { kStored, kReplaced, kErased };

  /// How a space mutation enters the bus (wired from
  /// TupleSpace::set_listener by Middleware).  O(1) when no continuous
  /// query could match the tuple's type.
  void notify_space(SpaceChange change, const std::string& type_tag,
                    const Tuple& tuple, NodeId parent, bool propagated,
                    SimTime now);

  [[nodiscard]] std::size_t query_count() const { return queries_.size(); }

 private:
  struct Subscription {
    SubscriptionId id;
    Pattern pattern;
    Reaction reaction;
    int kind_filter;
  };

  /// Bucket key: the subscription's exact kind filter (kAnyKind for
  /// unfiltered) and its pattern's type tag ("" for untyped patterns —
  /// registered tuple tags are never empty).
  struct BucketKey {
    int kind;
    std::string tag;
    friend bool operator==(const BucketKey&, const BucketKey&) = default;
  };
  struct BucketKeyHash {
    std::size_t operator()(const BucketKey& k) const {
      return std::hash<std::string>{}(k.tag) ^
             (std::hash<int>{}(k.kind) * 0x9E3779B97F4A7C15ull);
    }
  };

  [[nodiscard]] static BucketKey key_of(const Subscription& sub);

  /// Appends the ids of one bucket to `out`.
  void collect(const BucketKey& key, std::vector<SubscriptionId>& out) const;

  /// Removes `id` from the store, its bucket, and the live set.
  void drop(SubscriptionId id);

  /// Id-ordered store; iteration order == subscription order because ids
  /// are assigned monotonically.
  std::map<SubscriptionId, Subscription> subscriptions_;
  std::unordered_map<BucketKey, std::vector<SubscriptionId>, BucketKeyHash>
      buckets_;
  /// Ids currently subscribed — the O(1) liveness check publish() uses
  /// instead of rescanning the store per fired reaction.
  std::unordered_set<SubscriptionId> live_;
  SubscriptionId next_id_ = 1;

  struct ContinuousQuery {
    QueryId id;
    Pattern pattern;
    QueryCallback on_delta;
    QueryAccept accept;
    /// Current result-set membership, by uid.
    std::set<TupleUid> members;
  };

  /// Evaluates one (query, change) pair and fires the resulting delta,
  /// if any.  `erased` suppresses matching (the tuple is leaving).
  void evaluate_query(ContinuousQuery& q, bool erased,
                      const std::string& type_tag, const Tuple& tuple,
                      NodeId parent, bool propagated, SimTime now);

  /// Id-ordered store; delta delivery order == registration order.
  std::map<QueryId, ContinuousQuery> queries_;
  /// Type tag ("" = untyped) → query ids, pruned on unsubscribe.
  std::unordered_map<std::string, std::vector<QueryId>> query_buckets_;
  /// Live query ids — reentrancy guard mirroring `live_`.
  std::unordered_set<QueryId> live_queries_;
  QueryId next_query_id_ = 1;
  std::unique_ptr<BusMetrics> metrics_;
};

}  // namespace tota
