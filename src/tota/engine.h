// TOTA ENGINE — the propagation and maintenance core of one node.
//
// Responsibilities (paper Fig. 2): keep the neighbour table, send tuples
// injected locally, apply the propagation rule of received tuples and
// re-propagate them, and keep the distributed structures coherent when
// the topology changes.  The engine composes four extracted units:
//
//   wire::Frame / FrameCodec  (wire/frame.h)        envelope + decode-once
//   TupleSpace                (tuple_space.h)       indexed replica store
//                                                   (type/parent/propagated
//                                                   indexes, uid order)
//   NeighborValueTable        (neighbor_table.h)    justification oracle
//   HoldDownTable             (hold_down.h)         anti-count-to-infinity
//   BoundedUidFifo            (bounded_uid_fifo.h)  pass-through filter,
//                                                   repair tracker
//
// and is implemented across three translation units: engine.cc (the
// propagation pipeline), engine_rx.cc (frame receive/decode), and
// engine_maintenance.cc (topology-change repair).
//
// Propagation pipeline for a copy arriving from `from` with travelled
// hop-count h (h = 0 for local injection):
//   1. decide_enter(ctx)?           no → drop
//   2. change_content(ctx)          per-hop content mutation
//   3. duplicate resolution         (uid already stored? superseded?
//                                    pass-through already seen?)
//   4. decide_store(ctx)?           yes → replica into local space
//   5. apply_effects(ctx)           effectful tuples edit the node
//   6. publish kTupleArrived        subscriptions fire
//   7. decide_propagate(ctx)?       yes → broadcast to neighbours
//
// Self-maintenance uses *value justification*: because every propagation
// is a broadcast, a node overhears the replica values its neighbours
// hold (NeighborValueTable).  A stored replica (other than at its
// source) is justified while some current neighbour holds the same tuple
// with a strictly smaller hop value — i.e. while a shorter support chain
// towards the source exists next door.  When a link breaks or a
// neighbour retracts/stretches, replicas that lose justification are
// removed and announce their removal (RETRACT), cascading the check
// outward; surviving justified neighbours answer a RETRACT by
// re-announcing their replica, which rebuilds correct values in the
// orphaned region.  Justification-by-value (rather than a parent
// pointer) means the minimum-valued replica of a region cut off from its
// source never has a justifier, so orphan regions drain; the hold-down
// (HoldDownTable) stops transient heals from re-seeding them while they
// do: after retracting a replica, a node refuses to reinstall the same
// tuple at a hop value >= the removed one until `hold_down` elapses,
// then broadcasts a PROBE that surviving justified holders answer.
// Together, justification + hold-down + probe give convergence without
// the count-to-infinity ratchet of naive distance-vector repair.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_set>
#include <variant>
#include <vector>

#include "common/ids.h"
#include "obs/hub.h"
#include "tota/bounded_uid_fifo.h"
#include "tota/digest.h"
#include "tota/engine_metrics.h"
#include "tota/events.h"
#include "tota/hold_down.h"
#include "tota/maintenance.h"
#include "tota/neighbor_table.h"
#include "tota/platform.h"
#include "tota/tuple.h"
#include "tota/tuple_space.h"
#include "wire/frame.h"

namespace tota {

class Engine final : public SpaceOps {
 public:
  /// `hub` receives this engine's metrics and trace spans; nullptr
  /// selects obs::default_hub().  The hub must outlive the engine.
  Engine(NodeId self, Platform& platform, TupleSpace& space, EventBus& bus,
         MaintenanceOptions maintenance = {}, obs::Hub* hub = nullptr);

  /// Cancels every timer this engine still has pending on the platform,
  /// so none can fire into a destroyed engine.
  ~Engine();

  /// SpaceOps: removal that fires kTupleRemoved, available to effectful
  /// tuples through Context::ops.
  std::vector<std::unique_ptr<Tuple>> take_local(
      const Pattern& pattern) override;

  // --- application-facing (used by the Middleware facade) ---------------

  /// Injects a locally-created tuple: assigns its uid and runs the
  /// propagation pipeline with hop 0.  Returns the assigned uid.
  TupleUid inject(std::unique_ptr<Tuple> tuple);

  // --- platform-facing upcalls ------------------------------------------

  /// Span-only receive path: parses the frame (and, for TUPLE frames,
  /// the tuple body) itself.  This is the fallback for transports that
  /// cannot share one buffer across receivers.
  void on_datagram(NodeId from, std::span<const std::uint8_t> payload);

  /// Shared-buffer receive path (broadcast medium): when the platform
  /// exposes a FrameCodec, the tuple body of `payload` is decoded into
  /// an immutable prototype once per transmission and this engine gets a
  /// clone — every further receiver of the same buffer is a cache hit.
  void on_datagram(NodeId from, std::shared_ptr<const wire::Bytes> payload);

  void on_neighbor_up(NodeId neighbor);
  void on_neighbor_down(NodeId neighbor);

  // --- anti-entropy (engine_sync.cc) -------------------------------------

  /// Digest of this node's propagated tuple set with `buckets` hash
  /// buckets (see tota/digest.h).
  [[nodiscard]] StoreDigest digest(std::uint32_t buckets) const;

  /// Compares `remote` (a neighbour's digest) against the local store
  /// and re-broadcasts every propagated tuple in a differing bucket —
  /// one-way push resync, O(diff) in expectation.  Returns the number of
  /// tuples re-sent (counted under net.sync.resend).
  int on_digest(NodeId from, const StoreDigest& remote);

  // --- introspection -----------------------------------------------------

  [[nodiscard]] NodeId self() const { return self_; }
  [[nodiscard]] const std::vector<NodeId>& neighbors() const {
    return neighbors_;
  }
  [[nodiscard]] const MaintenanceStats& maintenance_stats() const {
    return maintenance_stats_;
  }
  [[nodiscard]] const MaintenanceOptions& maintenance_options() const {
    return maintenance_;
  }
  /// The observability hub this engine records into — node-level
  /// runtimes built on top of the engine (tuples/aggregator.h) register
  /// their own instruments here so one world shares one registry.
  [[nodiscard]] obs::Hub& hub() const { return hub_; }
  /// Frames this engine could not parse (corruption / unknown types);
  /// a healthy simulation keeps this at zero.
  [[nodiscard]] std::uint64_t decode_failures() const {
    return decode_failures_;
  }

 private:
  // --- engine.cc: the propagation pipeline -------------------------------

  Context make_context(NodeId from, int hop) const;

  /// The shared pipeline (steps 1–7 above) for injected and received
  /// tuples.
  void process(std::unique_ptr<Tuple> tuple, NodeId from);

  /// Broadcasts a TUPLE frame carrying `tuple` as stored on this node.
  void send_tuple(const Tuple& tuple);

  /// Convenience: one trace span (obs/tracer.h) on this engine's node.
  void trace(obs::Stage stage, const TupleUid& uid, int hop);

  /// Platform::schedule plus ownership: the timer is tracked in
  /// live_timers_ until it fires and cancelled by ~Engine if it has not.
  void schedule_owned(SimTime delay, std::function<void()> action);

  // --- engine_rx.cc: frame receive/decode --------------------------------

  /// Routes a decoded envelope: TUPLE bodies via `tuple`, control frames
  /// to their handlers.
  void dispatch(NodeId from, const wire::Frame& frame,
                std::unique_ptr<Tuple> tuple);

  /// Maintenance bookkeeping + hop increment + pipeline for one received
  /// tuple copy.
  void receive_tuple(NodeId from, std::unique_ptr<Tuple> tuple);

  /// Counts a frame this engine could not parse.
  void note_decode_failure();

  // --- engine_maintenance.cc: topology-change repair ---------------------

  /// Removes the local replica of `uid`, announces the removal, arms the
  /// hold-down, and counts it under started/cascaded retractions.
  void retract_local(const TupleUid& uid, bool cascaded);

  void handle_retract(NodeId from, const TupleUid& uid);
  void handle_probe(const TupleUid& uid);

  /// True when the local replica of `uid` is allowed to stay: it is the
  /// source's own, not maintained, or some neighbour holds a smaller
  /// value (NeighborValueTable::supports).
  [[nodiscard]] bool justified(const TupleSpace::Entry& entry) const;

  /// Re-checks justification of the local replica of `uid`; retracts it
  /// when support is gone.  `cascaded` only labels the statistics:
  /// link-loss-initiated removals are "started", removals triggered by
  /// another node's retraction/stretch are "cascaded".
  void recheck(const TupleUid& uid, bool cascaded = true);

  /// Starts the repair clock for `uid` (called at retraction); stopped
  /// by record_repair when the tuple reinstalls, feeding maint.repair_ms.
  void note_repair_pending(const TupleUid& uid);
  void record_repair(const TupleUid& uid);

  // --- state --------------------------------------------------------------

  NodeId self_;
  Platform& platform_;
  TupleSpace& space_;
  EventBus& bus_;
  MaintenanceOptions maintenance_;
  MaintenanceStats maintenance_stats_;
  obs::Hub& hub_;
  EngineMetrics metrics_;

  std::vector<NodeId> neighbors_;
  /// Overheard replica values per distributed tuple — the justification
  /// oracle.
  NeighborValueTable neighbor_values_;
  /// Uids of pass-through (non-stored) tuples already processed here;
  /// terminates floods of tuples that keep no replica to dedup against.
  BoundedUidFifo<std::monostate> seen_passthrough_;
  /// Recently-retracted tuples: reinstalls at >= the removed hop wait
  /// out the hold-down (see header essay).
  HoldDownTable hold_down_;
  /// Retraction instants of tuples whose repair we are still waiting to
  /// observe; bounded because a tuple whose region drains for good never
  /// reinstalls.
  BoundedUidFifo<SimTime> repair_pending_;
  /// Timers scheduled by this engine that have not fired yet; ~Engine
  /// cancels them (see schedule_owned).
  std::unordered_set<Platform::TimerId> live_timers_;
  std::uint64_t next_sequence_ = 1;
  std::uint64_t decode_failures_ = 0;
  /// Grows to the largest TUPLE frame this engine has sent; pre-sizes
  /// the next frame's buffer.
  std::size_t frame_size_hint_ = 128;
  /// Coalesces same-instant link-up re-propagation into one round.
  bool repropagation_pending_ = false;
};

}  // namespace tota
