// TOTA ENGINE — the propagation and maintenance core of one node.
//
// Responsibilities (paper Fig. 2): keep the neighbour table, send tuples
// injected locally, apply the propagation rule of received tuples and
// re-propagate them, and keep the distributed structures coherent when
// the topology changes.
//
// Wire protocol (one envelope per radio frame):
//   0x01 TUPLE   <tuple encoding>            — a propagating tuple copy
//   0x02 RETRACT <origin, seq, hop>          — replica removal announcement
//   0x03 PROBE   <origin, seq>               — request re-announcement
//
// Propagation pipeline for a copy arriving from `from` with travelled
// hop-count h (h = 0 for local injection):
//   1. decide_enter(ctx)?           no → drop
//   2. change_content(ctx)          per-hop content mutation
//   3. duplicate resolution         (uid already stored? superseded?
//                                    pass-through already seen?)
//   4. decide_store(ctx)?           yes → replica into local space
//   5. apply_effects(ctx)           effectful tuples edit the node
//   6. publish kTupleArrived        subscriptions fire
//   7. decide_propagate(ctx)?       yes → broadcast to neighbours
//
// Self-maintenance uses *value justification*: because every propagation
// is a broadcast, a node overhears the replica values its neighbours
// hold.  A stored replica (other than at its source) is justified while
// some current neighbour holds the same tuple with a strictly smaller
// hop value — i.e. while a shorter support chain towards the source
// exists next door.  When a link breaks or a neighbour retracts/stretches,
// replicas that lose justification are removed and announce their removal
// (RETRACT), cascading the check outward; surviving justified neighbours
// answer a RETRACT by re-announcing their replica, which rebuilds correct
// values in the orphaned region.  Justification-by-value (rather than a
// parent pointer) means the minimum-valued replica of a region cut off
// from its source never has a justifier, so orphan regions drain; the
// *hold-down* below stops transient heals from re-seeding them while
// they do.
//
// Hold-down: after retracting a replica, a node refuses to reinstall the
// same tuple at a hop value >= the removed one until `hold_down` elapses
// (strictly better values — a genuinely shorter path — pass immediately).
// On expiry the node broadcasts a PROBE; surviving justified holders
// answer by re-announcing, which rebuilds correct (possibly larger)
// values exactly once the removal wave has settled.  Together,
// justification + hold-down + probe give convergence without the
// count-to-infinity ratchet of naive distance-vector repair.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <span>
#include <unordered_map>
#include <unordered_set>

#include "common/ids.h"
#include "obs/hub.h"
#include "tota/events.h"
#include "tota/maintenance.h"
#include "tota/platform.h"
#include "tota/tuple.h"
#include "tota/tuple_space.h"

namespace tota {

/// The engine's observability handles, resolved once at construction so
/// the pipeline never does a by-name metric lookup (naming scheme:
/// docs/OBSERVABILITY.md).  Counters aggregate across every engine
/// sharing the hub — i.e. across all nodes of a simulated world.
struct EngineMetrics {
  explicit EngineMetrics(obs::MetricsRegistry& registry);

  /// Local injections (pipeline entry with hop 0).
  obs::Counter& inject;
  /// Replicas installed into a local tuple space.
  obs::Counter& store;
  /// Re-broadcasts (floods, heals, re-propagations alike).
  obs::Counter& propagate;
  /// Copies decide_enter() rejected.
  obs::Counter& drop_enter;
  /// Copies dropped as duplicates / superseded losers.
  obs::Counter& drop_duplicate;
  /// Copies refused while their uid's hold-down was armed.
  obs::Counter& drop_holddown;
  /// Pass-through copies the uid filter had already seen.
  obs::Counter& drop_passthrough;
  /// Stored replicas retired because an update stopped matching locally.
  obs::Counter& retire;
  /// Frames that failed to decode (see Engine::decode_failures()).
  obs::Counter& decode_fail;

  // MaintenanceStats, promoted into the registry (same meanings).
  obs::Counter& maint_link_up_reprop;
  obs::Counter& maint_retract_started;
  obs::Counter& maint_retract_cascaded;
  obs::Counter& maint_heal_reprop;
  obs::Counter& maint_probe_tx;
  obs::Counter& maint_probe_answer;

  /// Milliseconds from a replica's retraction to the same tuple being
  /// reinstalled on that node — the per-replica repair latency.
  obs::Histogram& repair_ms;
};

class Engine final : public SpaceOps {
 public:
  /// `hub` receives this engine's metrics and trace spans; nullptr
  /// selects obs::default_hub().  The hub must outlive the engine.
  Engine(NodeId self, Platform& platform, TupleSpace& space, EventBus& bus,
         MaintenanceOptions maintenance = {}, obs::Hub* hub = nullptr);

  /// SpaceOps: removal that fires kTupleRemoved, available to effectful
  /// tuples through Context::ops.
  std::vector<std::unique_ptr<Tuple>> take_local(
      const Pattern& pattern) override;

  // --- application-facing (used by the Middleware facade) ---------------

  /// Injects a locally-created tuple: assigns its uid and runs the
  /// propagation pipeline with hop 0.  Returns the assigned uid.
  TupleUid inject(std::unique_ptr<Tuple> tuple);

  // --- platform-facing upcalls ------------------------------------------

  void on_datagram(NodeId from, std::span<const std::uint8_t> payload);
  void on_neighbor_up(NodeId neighbor);
  void on_neighbor_down(NodeId neighbor);

  // --- introspection -----------------------------------------------------

  [[nodiscard]] NodeId self() const { return self_; }
  [[nodiscard]] const std::vector<NodeId>& neighbors() const {
    return neighbors_;
  }
  [[nodiscard]] const MaintenanceStats& maintenance_stats() const {
    return maintenance_stats_;
  }
  /// Frames this engine could not parse (corruption / unknown types);
  /// a healthy simulation keeps this at zero.
  [[nodiscard]] std::uint64_t decode_failures() const {
    return decode_failures_;
  }

 private:
  enum class FrameKind : std::uint8_t { kTuple = 1, kRetract = 2, kProbe = 3 };

  Context make_context(NodeId from, int hop) const;

  /// The shared pipeline for injected and received tuples.
  void process(std::unique_ptr<Tuple> tuple, NodeId from);

  /// Broadcasts a TUPLE frame carrying `tuple` as stored on this node.
  void send_tuple(const Tuple& tuple);

  /// Removes the local replica of `uid`, announces the removal, and
  /// counts it under started/cascaded retractions.
  void retract_local(const TupleUid& uid, bool cascaded);

  void handle_retract(NodeId from, const TupleUid& uid);
  void handle_probe(const TupleUid& uid);

  /// True while `hop` is blocked from installing under `uid`'s hold-down.
  [[nodiscard]] bool held_down(const TupleUid& uid, int hop) const;

  /// Records that neighbour `n` holds `uid` at `hop`; erase via
  /// forget_neighbor_value.  Returns true if this changed the table.
  void note_neighbor_value(const TupleUid& uid, NodeId n, int hop);
  void forget_neighbor_value(const TupleUid& uid, NodeId n);

  /// True when the local replica of `uid` is allowed to stay: it is the
  /// source's own, not maintained, or some neighbour holds a smaller
  /// value.
  [[nodiscard]] bool justified(const TupleSpace::Entry& entry) const;

  /// Re-checks justification of the local replica of `uid`; retracts it
  /// when support is gone.  `cascaded` only labels the statistics:
  /// link-loss-initiated removals are "started", removals triggered by
  /// another node's retraction/stretch are "cascaded".
  void recheck(const TupleUid& uid, bool cascaded = true);

  /// Convenience: one trace span (obs/tracer.h) on this engine's node.
  void trace(obs::Stage stage, const TupleUid& uid, int hop);

  /// Starts the repair clock for `uid` (called at retraction); bounded
  /// FIFO like the pass-through filter.
  void note_repair_pending(const TupleUid& uid);
  /// Stops the repair clock and records maint.repair_ms (called when a
  /// previously-retracted tuple is reinstalled).
  void record_repair(const TupleUid& uid);

  NodeId self_;
  Platform& platform_;
  TupleSpace& space_;
  EventBus& bus_;
  MaintenanceOptions maintenance_;
  MaintenanceStats maintenance_stats_;
  obs::Hub& hub_;
  EngineMetrics metrics_;

  std::vector<NodeId> neighbors_;
  /// Overheard replica values per distributed tuple: uid → neighbour →
  /// hop value at that neighbour.  The justification oracle.
  std::unordered_map<TupleUid, std::map<NodeId, int>> neighbor_values_;
  /// Uids of pass-through (non-stored) tuples already processed here;
  /// terminates floods of tuples that keep no replica to dedup against.
  /// Bounded (MaintenanceOptions::passthrough_memory) with FIFO
  /// half-eviction; `passthrough_order_` remembers insertion order.
  std::unordered_set<TupleUid> seen_passthrough_;
  std::deque<TupleUid> passthrough_order_;

  /// Inserts into the bounded pass-through filter; returns false when
  /// the uid was already known.
  bool remember_passthrough(const TupleUid& uid);
  struct HoldDown {
    SimTime until;
    int removed_hop;
  };
  /// Recently-retracted tuples: reinstalls at >= removed_hop wait out the
  /// hold-down (see class comment).
  std::unordered_map<TupleUid, HoldDown> hold_down_;
  /// Retraction instants of tuples whose repair we are still waiting to
  /// observe (uid → time of first retraction); feeds maint.repair_ms.
  /// Bounded FIFO (same scheme as the pass-through filter) because a
  /// tuple whose region drains for good never reinstalls.
  std::unordered_map<TupleUid, SimTime> repair_pending_;
  std::deque<TupleUid> repair_order_;
  std::uint64_t next_sequence_ = 1;
  std::uint64_t decode_failures_ = 0;
  /// Coalesces same-instant link-up re-propagation into one round.
  bool repropagation_pending_ = false;
};

}  // namespace tota
