#include "tota/access.h"

#include <algorithm>

namespace tota {

const char* to_string(AccessOp op) {
  switch (op) {
    case AccessOp::kObserve:
      return "observe";
    case AccessOp::kExtract:
      return "extract";
    case AccessOp::kHost:
      return "host";
  }
  return "?";
}

bool AccessGrant::permits(NodeId owner, NodeId requester) const {
  switch (scope) {
    case AccessScope::kEveryone:
      return true;
    case AccessScope::kOwnerOnly:
      return requester == owner;
    case AccessScope::kList:
      // `allowed` is sorted (see the field invariant in access.h).
      return requester == owner ||
             std::binary_search(allowed.begin(), allowed.end(), requester);
  }
  return false;
}

void AccessGrant::normalize() { std::sort(allowed.begin(), allowed.end()); }

void AccessGrant::encode(wire::Writer& w) const {
  w.u8(static_cast<std::uint8_t>(scope));
  if (scope == AccessScope::kList) {
    w.uvarint(allowed.size());
    for (const NodeId n : allowed) w.uvarint(n.value());
  }
}

AccessGrant AccessGrant::decode(wire::Reader& r) {
  AccessGrant g;
  const auto scope = r.u8();
  if (scope > 2) throw wire::DecodeError("bad access scope");
  g.scope = static_cast<AccessScope>(scope);
  if (g.scope == AccessScope::kList) {
    const auto n = r.uvarint();
    if (n > 4096) throw wire::DecodeError("access list too large");
    g.allowed.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) g.allowed.push_back(NodeId{r.uvarint()});
    g.normalize();
  }
  return g;
}

AccessPolicy AccessPolicy::open() { return AccessPolicy{}; }

AccessPolicy AccessPolicy::private_to_owner() {
  AccessPolicy p;
  p.observe_.scope = AccessScope::kOwnerOnly;
  p.extract_.scope = AccessScope::kOwnerOnly;
  return p;
}

AccessPolicy AccessPolicy::shared_with(std::vector<NodeId> readers) {
  std::sort(readers.begin(), readers.end());
  AccessPolicy p;
  p.observe_ = AccessGrant{AccessScope::kList, readers};
  p.extract_ = AccessGrant{AccessScope::kList, std::move(readers)};
  return p;
}

AccessPolicy& AccessPolicy::set(AccessOp op, AccessGrant grant) {
  grant.normalize();
  switch (op) {
    case AccessOp::kObserve:
      observe_ = std::move(grant);
      break;
    case AccessOp::kExtract:
      extract_ = std::move(grant);
      break;
    case AccessOp::kHost:
      host_ = std::move(grant);
      break;
  }
  return *this;
}

const AccessGrant& AccessPolicy::grant(AccessOp op) const {
  switch (op) {
    case AccessOp::kExtract:
      return extract_;
    case AccessOp::kHost:
      return host_;
    case AccessOp::kObserve:
      break;
  }
  return observe_;
}

bool AccessPolicy::permits(AccessOp op, NodeId owner,
                           NodeId requester) const {
  return grant(op).permits(owner, requester);
}

void AccessPolicy::encode(wire::Writer& w) const {
  observe_.encode(w);
  extract_.encode(w);
  host_.encode(w);
}

AccessPolicy AccessPolicy::decode(wire::Reader& r) {
  AccessPolicy p;
  p.observe_ = AccessGrant::decode(r);
  p.extract_ = AccessGrant::decode(r);
  p.host_ = AccessGrant::decode(r);
  return p;
}

}  // namespace tota
