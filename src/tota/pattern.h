// Pattern matching over tuples — the paper's `read(Tuple template)`.
//
// A Pattern matches a tuple when (a) the type tag matches, if constrained,
// and (b) every pattern field matches the tuple's content: exact value,
// wildcard (field must merely exist), or arbitrary predicate.  Fields the
// pattern doesn't mention are unconstrained, mirroring Linda templates
// where formal fields match anything.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "wire/record.h"

namespace tota {

class Tuple;

class Pattern {
 public:
  using Predicate = std::function<bool(const wire::Value&)>;

  Pattern() = default;

  /// Convenience: match any tuple of a given type tag.
  static Pattern of_type(std::string tag);

  /// Constrains the tuple's dynamic type tag.
  Pattern& type(std::string tag);

  /// Field must exist and equal `value`.
  Pattern& eq(std::string field, wire::Value value);

  /// Field must merely exist (any value) — a Linda formal.
  Pattern& exists(std::string field);

  /// Field must exist and satisfy `pred`.
  Pattern& where(std::string field, Predicate pred);

  [[nodiscard]] bool matches(const Tuple& tuple) const;
  [[nodiscard]] bool matches_record(const std::string& tag,
                                    const wire::Record& content) const;

  /// The type constraint, if any — what the TupleSpace type index and the
  /// EventBus subscription buckets key on.
  [[nodiscard]] const std::optional<std::string>& type_tag() const {
    return type_;
  }

  /// Structural equality used by `unsubscribe(template)`.  Two patterns
  /// are equivalent when their type constraint and exact/exists field
  /// constraints are equal; predicate constraints compare by identity
  /// (never equal unless both patterns are the same object's copies with
  /// zero predicates).
  [[nodiscard]] bool equivalent(const Pattern& other) const;

  [[nodiscard]] std::string str() const;

 private:
  enum class Kind { kExact, kExists, kPredicate };
  struct FieldConstraint {
    Kind kind;
    std::string name;
    wire::Value value;   // kExact
    Predicate predicate; // kPredicate
  };

  std::optional<std::string> type_;
  std::vector<FieldConstraint> fields_;
};

}  // namespace tota
