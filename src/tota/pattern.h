// Pattern matching over tuples — the paper's `read(Tuple template)`.
//
// A Pattern matches a tuple when (a) the type tag matches, if constrained,
// and (b) every pattern field exists in the tuple's content and satisfies
// its Pred (tota/predicate.h): exact value, wildcard existence, ordered
// comparison, range, set membership, or a conjunction.  Fields the pattern
// doesn't mention are unconstrained, mirroring Linda templates where
// formal fields match anything.
//
// Space queries may additionally constrain replica *metadata* — the
// neighbour a replica was received from (`from_parent`) and the
// re-propagation flag (`propagated_only`).  Metadata constraints give the
// query planner (tota/query.h) two extra index-assisted access paths; they
// apply only where replicas have metadata, i.e. TupleSpace queries and
// continuous queries.  `matches()` / `matches_record()` check type +
// fields only (events carry no entry metadata).
//
// Because constraints are data, patterns compare structurally
// (`equivalent`, the paper's unsubscribe-by-template) and serialize
// through the wire codec so QueryTuple/PROBE can carry one remotely.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "tota/predicate.h"
#include "wire/buffer.h"
#include "wire/record.h"

namespace tota {

class Tuple;

class Pattern {
 public:
  /// One field constraint: the field must exist and satisfy `pred`.
  struct FieldConstraint {
    std::string name;
    Pred pred;
    friend bool operator==(const FieldConstraint&,
                           const FieldConstraint&) = default;
  };

  Pattern() = default;

  /// Convenience: match any tuple of a given type tag.
  static Pattern of_type(std::string tag);

  /// Constrains the tuple's dynamic type tag.
  Pattern& type(std::string tag);

  /// Field must exist and equal `value` — sugar for where(f, Pred::eq).
  Pattern& eq(std::string field, wire::Value value);

  /// Field must merely exist (any value) — a Linda formal.
  Pattern& exists(std::string field);

  /// Field must exist and satisfy `pred`.
  Pattern& where(std::string field, Pred pred);

  /// Replica metadata: only replicas received from `parent`.
  Pattern& from_parent(NodeId parent);

  /// Replica metadata: only replicas whose propagated flag equals `flag`.
  Pattern& propagated_only(bool flag = true);

  /// Type + field constraints (metadata constraints don't apply: a bare
  /// tuple has no replica metadata).
  [[nodiscard]] bool matches(const Tuple& tuple) const;
  [[nodiscard]] bool matches_record(const std::string& tag,
                                    const wire::Record& content) const;

  /// Field constraints only (caller has already resolved the type).
  [[nodiscard]] bool matches_fields(const wire::Record& content) const;

  /// Metadata constraints only, against one replica's entry metadata.
  [[nodiscard]] bool matches_meta(NodeId parent, bool propagated) const;

  /// The type constraint, if any — what the TupleSpace type index and the
  /// EventBus subscription buckets key on.
  [[nodiscard]] const std::optional<std::string>& type_tag() const {
    return type_;
  }
  [[nodiscard]] const std::optional<NodeId>& parent() const { return parent_; }
  [[nodiscard]] const std::optional<bool>& propagated() const {
    return propagated_;
  }
  [[nodiscard]] const std::vector<FieldConstraint>& constraints() const {
    return fields_;
  }

  /// Structural equality used by `unsubscribe(template)`: equal type,
  /// metadata, and field constraints (same fields, same predicates, same
  /// order).  Predicates are ASTs, so two independently-built patterns
  /// with identical clauses are equivalent.
  [[nodiscard]] bool equivalent(const Pattern& other) const;

  // Wire codec (flags + constraints), so a pattern rides inside frames.
  void encode(wire::Writer& w) const;
  static Pattern decode(wire::Reader& r);

  /// Record form for embedding in tuple content: the full encoding under
  /// "pattern", plus the type tag duplicated under "type" so remote nodes
  /// can route on it without decoding the predicate body.
  [[nodiscard]] wire::Record to_record() const;
  static Pattern from_record(const wire::Record& record);

  [[nodiscard]] std::string str() const;

 private:
  std::optional<std::string> type_;
  std::optional<NodeId> parent_;
  std::optional<bool> propagated_;
  std::vector<FieldConstraint> fields_;
};

}  // namespace tota
