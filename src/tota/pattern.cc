#include "tota/pattern.h"

#include "tota/tuple.h"

namespace tota {

namespace {
// A hostile pattern with thousands of clauses is garbage, not a query.
constexpr std::uint64_t kMaxFields = 256;

constexpr std::uint8_t kHasType = 1u << 0;
constexpr std::uint8_t kHasParent = 1u << 1;
constexpr std::uint8_t kHasPropagated = 1u << 2;
}  // namespace

Pattern Pattern::of_type(std::string tag) {
  Pattern p;
  p.type(std::move(tag));
  return p;
}

Pattern& Pattern::type(std::string tag) {
  type_ = std::move(tag);
  return *this;
}

Pattern& Pattern::eq(std::string field, wire::Value value) {
  fields_.push_back({std::move(field), Pred::eq(std::move(value))});
  return *this;
}

Pattern& Pattern::exists(std::string field) {
  fields_.push_back({std::move(field), Pred::exists()});
  return *this;
}

Pattern& Pattern::where(std::string field, Pred pred) {
  fields_.push_back({std::move(field), std::move(pred)});
  return *this;
}

Pattern& Pattern::from_parent(NodeId parent) {
  parent_ = parent;
  return *this;
}

Pattern& Pattern::propagated_only(bool flag) {
  propagated_ = flag;
  return *this;
}

bool Pattern::matches(const Tuple& tuple) const {
  return matches_record(tuple.type_tag(), tuple.content());
}

bool Pattern::matches_record(const std::string& tag,
                             const wire::Record& content) const {
  if (type_ && *type_ != tag) return false;
  return matches_fields(content);
}

bool Pattern::matches_fields(const wire::Record& content) const {
  for (const auto& c : fields_) {
    const auto value = content.find(c.name);
    if (!value) return false;
    if (!c.pred.eval(*value)) return false;
  }
  return true;
}

bool Pattern::matches_meta(NodeId parent, bool propagated) const {
  if (parent_ && *parent_ != parent) return false;
  if (propagated_ && *propagated_ != propagated) return false;
  return true;
}

bool Pattern::equivalent(const Pattern& other) const {
  return type_ == other.type_ && parent_ == other.parent_ &&
         propagated_ == other.propagated_ && fields_ == other.fields_;
}

void Pattern::encode(wire::Writer& w) const {
  std::uint8_t flags = 0;
  if (type_) flags |= kHasType;
  if (parent_) flags |= kHasParent;
  if (propagated_) flags |= kHasPropagated;
  w.u8(flags);
  if (type_) w.string(*type_);
  if (parent_) w.uvarint(parent_->value());
  if (propagated_) w.boolean(*propagated_);
  w.uvarint(fields_.size());
  for (const auto& c : fields_) {
    w.string(c.name);
    c.pred.encode(w);
  }
}

Pattern Pattern::decode(wire::Reader& r) {
  const auto flags = r.u8();
  if ((flags & ~(kHasType | kHasParent | kHasPropagated)) != 0) {
    throw wire::DecodeError("unknown pattern flags");
  }
  Pattern p;
  if ((flags & kHasType) != 0) p.type_ = r.string();
  if ((flags & kHasParent) != 0) p.parent_ = NodeId{r.uvarint()};
  if ((flags & kHasPropagated) != 0) p.propagated_ = r.boolean();
  const auto n = r.uvarint();
  if (n > kMaxFields) throw wire::DecodeError("pattern too wide");
  p.fields_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name = r.string();
    p.fields_.push_back({std::move(name), Pred::decode(r)});
  }
  return p;
}

wire::Record Pattern::to_record() const {
  wire::Writer w;
  encode(w);
  wire::Record record;
  if (type_) record.set("type", *type_);
  record.set("pattern", w.take());
  return record;
}

Pattern Pattern::from_record(const wire::Record& record) {
  wire::Reader r(record.at("pattern").as_blob());
  Pattern p = decode(r);
  r.expect_done();
  return p;
}

std::string Pattern::str() const {
  std::string out = type_ ? *type_ : "*";
  out += "{";
  bool first = true;
  const auto sep = [&] {
    if (!first) out += ", ";
    first = false;
  };
  for (const auto& c : fields_) {
    sep();
    out += c.name + c.pred.str();
  }
  if (parent_) {
    sep();
    out += "parent=" + to_string(*parent_);
  }
  if (propagated_) {
    sep();
    out += *propagated_ ? "propagated" : "!propagated";
  }
  out += "}";
  return out;
}

}  // namespace tota
