#include "tota/pattern.h"

#include "tota/tuple.h"

namespace tota {

Pattern Pattern::of_type(std::string tag) {
  Pattern p;
  p.type(std::move(tag));
  return p;
}

Pattern& Pattern::type(std::string tag) {
  type_ = std::move(tag);
  return *this;
}

Pattern& Pattern::eq(std::string field, wire::Value value) {
  fields_.push_back(
      {Kind::kExact, std::move(field), std::move(value), nullptr});
  return *this;
}

Pattern& Pattern::exists(std::string field) {
  fields_.push_back({Kind::kExists, std::move(field), {}, nullptr});
  return *this;
}

Pattern& Pattern::where(std::string field, Predicate pred) {
  fields_.push_back({Kind::kPredicate, std::move(field), {}, std::move(pred)});
  return *this;
}

bool Pattern::matches(const Tuple& tuple) const {
  return matches_record(tuple.type_tag(), tuple.content());
}

bool Pattern::matches_record(const std::string& tag,
                             const wire::Record& content) const {
  if (type_ && *type_ != tag) return false;
  for (const auto& c : fields_) {
    const auto value = content.find(c.name);
    if (!value) return false;
    switch (c.kind) {
      case Kind::kExact:
        if (!(*value == c.value)) return false;
        break;
      case Kind::kExists:
        break;
      case Kind::kPredicate:
        if (!c.predicate(*value)) return false;
        break;
    }
  }
  return true;
}

bool Pattern::equivalent(const Pattern& other) const {
  if (type_ != other.type_) return false;
  if (fields_.size() != other.fields_.size()) return false;
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    const auto& a = fields_[i];
    const auto& b = other.fields_[i];
    if (a.kind != b.kind || a.name != b.name) return false;
    if (a.kind == Kind::kExact && !(a.value == b.value)) return false;
    if (a.kind == Kind::kPredicate) return false;  // opaque; never equal
  }
  return true;
}

std::string Pattern::str() const {
  std::string out = type_ ? *type_ : "*";
  out += "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    const auto& c = fields_[i];
    out += c.name;
    switch (c.kind) {
      case Kind::kExact:
        out += "=" + c.value.str();
        break;
      case Kind::kExists:
        out += "=?";
        break;
      case Kind::kPredicate:
        out += "~pred";
        break;
    }
  }
  out += "}";
  return out;
}

}  // namespace tota
