// Typed field predicates — the structured constraint language of Pattern.
//
// A Pred is a small AST over one field's wire::Value: existence, typed
// equality, ordered comparisons (numbers and strings, via
// wire::compare_ordered), ranges, set membership, and conjunction.
// Because predicates are data rather than closures, they compare
// structurally (so `unsubscribe(template)` works — docs/QUERY.md), the
// query planner can reason about them, and they serialize through the
// wire codec so QueryTuple/PROBE can carry a query to a remote node.
//
// Semantics are total and network-safe: a predicate never throws during
// evaluation.  Ordered comparisons over unordered pairings (string vs
// int, NaN, blobs) simply don't match, and equality is exact-typed —
// Value{1} does not equal Value{1.0}, matching Record's own `==`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "wire/buffer.h"
#include "wire/value.h"

namespace tota {

/// Wire discriminators; stable on the air — never reorder.
enum class PredOp : std::uint8_t {
  kExists = 0,   // field present, any value (a Linda formal)
  kEq = 1,       // exactly equal (type-sensitive)
  kNe = 2,       // present and not exactly equal
  kLt = 3,       // ordered comparisons over numbers/strings …
  kLe = 4,
  kGt = 5,
  kGe = 6,
  kBetween = 7,  // lo <= value <= hi (inclusive)
  kAnyOf = 8,    // exactly equal to one of N options
  kAllOf = 9,    // conjunction of sub-predicates
};

const char* to_string(PredOp op);

class Pred {
 public:
  /// Default is the weakest constraint: the field merely exists.
  Pred() = default;

  static Pred exists();
  static Pred eq(wire::Value value);
  static Pred ne(wire::Value value);
  static Pred lt(wire::Value bound);
  static Pred le(wire::Value bound);
  static Pred gt(wire::Value bound);
  static Pred ge(wire::Value bound);
  /// Inclusive on both ends.
  static Pred between(wire::Value lo, wire::Value hi);
  static Pred any_of(std::vector<wire::Value> options);
  static Pred all_of(std::vector<Pred> parts);

  /// Evaluates against a field value that exists.  (Absent fields never
  /// match any predicate; Pattern enforces that before calling eval.)
  [[nodiscard]] bool eval(const wire::Value& value) const;

  [[nodiscard]] PredOp op() const { return op_; }

  /// Structural equality — what makes predicate patterns comparable.
  friend bool operator==(const Pred& a, const Pred& b) = default;

  // Wire codec.  Decode is bounds-checked and depth/width-limited so a
  // hostile remote predicate cannot blow the stack or the heap.
  void encode(wire::Writer& w) const;
  static Pred decode(wire::Reader& r);

  [[nodiscard]] std::string str() const;

 private:
  Pred(PredOp op, std::vector<wire::Value> values, std::vector<Pred> parts);
  static Pred decode_at(wire::Reader& r, int depth);

  PredOp op_ = PredOp::kExists;
  /// Operands: 1 for eq/ne/lt/le/gt/ge, 2 for between, N for any_of.
  std::vector<wire::Value> values_;
  /// Sub-predicates of all_of.
  std::vector<Pred> parts_;
};

}  // namespace tota
