// Access control for distributed tuples — the paper's §6 future work:
// "we must compulsory integrate proper access control model to rule
// accesses to distributed tuples and their updates."
//
// Model.  Every protected tuple carries an immutable owner (its injecting
// node) plus a policy describing who may observe it (read / react to its
// events), extract it locally (take), and host it (store a replica as it
// propagates).  Policies travel inside the tuple content, so every node
// enforces them locally with no extra protocol:
//
//   * observe  — filters `read`/`read_one` results and event dispatch;
//   * extract  — filters `take`;
//   * host     — consulted by the engine before storing a replica, so a
//                tuple can cross untrusted nodes without resting on them.
//
// Scope rules are deliberately simple and serializable: everyone, the
// owner only, or an explicit node whitelist.  Custom tuples needing
// richer logic override Tuple::access() directly.
//
// Enforcement is cooperative middleware-level protection (a compromised
// node could run a modified engine); the paper's model is the same — the
// middleware, not cryptography, is the reference monitor.
#pragma once

#include <optional>
#include <vector>

#include "common/ids.h"
#include "wire/record.h"

namespace tota {

class Tuple;

/// The operations the access model distinguishes.
enum class AccessOp {
  kObserve,  // read / react to events about the tuple
  kExtract,  // take (local removal)
  kHost,     // store a replica during propagation
};

const char* to_string(AccessOp op);

/// Who a grant applies to.
enum class AccessScope : std::uint8_t {
  kEveryone = 0,
  kOwnerOnly = 1,
  kList = 2,
};

/// A per-operation grant.
struct AccessGrant {
  AccessScope scope = AccessScope::kEveryone;
  /// kList only.  Invariant: sorted ascending — permits() binary-searches
  /// it.  decode() and every AccessPolicy entry point normalize(); code
  /// aggregate-initializing a grant directly must pass a sorted list (or
  /// call normalize()).  decode() caps the list at 4096 entries, so
  /// normalize-on-decode is bounded work per frame.
  std::vector<NodeId> allowed;

  [[nodiscard]] bool permits(NodeId owner, NodeId requester) const;

  /// Restores the sorted-`allowed` invariant after manual construction.
  void normalize();

  void encode(wire::Writer& w) const;
  static AccessGrant decode(wire::Reader& r);

  friend bool operator==(const AccessGrant&, const AccessGrant&) = default;
};

/// The full policy of one tuple.  Default-constructed: everything open —
/// matching the paper's unprotected base model.
class AccessPolicy {
 public:
  AccessPolicy() = default;

  static AccessPolicy open();
  /// Only the owner observes/extracts; anyone hosts (a private marker
  /// that can still propagate).
  static AccessPolicy private_to_owner();
  /// A whitelist shared across observe+extract; anyone hosts.
  static AccessPolicy shared_with(std::vector<NodeId> readers);

  AccessPolicy& set(AccessOp op, AccessGrant grant);
  [[nodiscard]] const AccessGrant& grant(AccessOp op) const;

  [[nodiscard]] bool permits(AccessOp op, NodeId owner,
                             NodeId requester) const;

  void encode(wire::Writer& w) const;
  static AccessPolicy decode(wire::Reader& r);

  friend bool operator==(const AccessPolicy&, const AccessPolicy&) = default;

 private:
  AccessGrant observe_;
  AccessGrant extract_;
  AccessGrant host_;
};

}  // namespace tota
