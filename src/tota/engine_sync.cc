// Engine anti-entropy: digest construction and digest-driven resync.
//
// The flood keeps connected neighbours consistent, but frames lost
// while a link was down (partition, discovery restart, duty-cycle gap)
// are gone for good — nothing in the propagation rule re-offers a tuple
// to a neighbour that silently missed it.  Each node therefore
// periodically publishes a StoreDigest of its *propagated* uid set (the
// tuples it would re-broadcast anyway; local-only replicas are not the
// flood's business).  A receiver diffs the digest against its own store
// at the sender's bucket count and re-broadcasts its tuples from every
// differing bucket: if the stores agree, all buckets match and nothing
// is sent; after a heal, only the buckets covering the missing tuples
// differ, so the repair traffic is O(diff), not O(store).
//
// The push is deliberately one-way and idempotent: re-sent tuples run
// the normal propagation pipeline on arrival (duplicates dedup, better
// values win, hold-downs still gate reinstalls), so a spurious bucket
// mismatch — e.g. the *sender* missing tuples the receiver holds —
// costs duplicate frames, never wrong state.  Deletions need no special
// case: a retraction the receiver missed shows up as a mismatch too,
// and the re-sent tuple either reinstalls (it is still justified
// upstream) or is refused by the hold-down and drains again.
#include "tota/engine.h"

namespace tota {

StoreDigest Engine::digest(std::uint32_t buckets) const {
  const std::vector<TupleUid> uids = space_.propagated_uids();
  return StoreDigest::build(uids, buckets);
}

int Engine::on_digest(NodeId from, const StoreDigest& remote) {
  (void)from;  // per-sender suppression would go here; push is stateless
  if (remote.buckets.empty()) return 0;
  // Registered on first use, not in EngineMetrics: worlds that never
  // exchange digests must not grow a new metric key (the committed
  // bench baselines are byte-compared).
  obs::Counter& sync_resend = hub_.metrics.counter("net.sync.resend");
  const StoreDigest local = digest(
      static_cast<std::uint32_t>(remote.buckets.size()));
  int resent = 0;
  for (const TupleUid& uid : space_.propagated_uids()) {
    const std::size_t b = StoreDigest::bucket_of(uid, local.buckets.size());
    if (local.buckets[b] == remote.buckets[b]) continue;
    const TupleSpace::Entry* entry = space_.find(uid);
    if (entry == nullptr) continue;
    send_tuple(*entry->tuple);
    sync_resend.inc();
    ++resent;
  }
  return resent;
}

}  // namespace tota
