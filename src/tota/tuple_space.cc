#include "tota/tuple_space.h"

#include "tota/query.h"

namespace tota {

SpaceMetrics::SpaceMetrics(obs::MetricsRegistry& registry)
    : query_indexed(registry.counter("space.query.indexed")),
      query_scan(registry.counter("space.query.scan")),
      candidates(registry.counter("space.query.candidates")),
      matches(registry.counter("space.query.matches")),
      naive_candidates(registry.counter("space.query.naive_candidates")),
      plan_type_index(registry.counter("space.plan.type_index")),
      plan_parent_index(registry.counter("space.plan.parent_index")),
      plan_propagated_index(registry.counter("space.plan.propagated_index")),
      plan_full_scan(registry.counter("space.plan.full_scan")),
      plan_candidates(registry.counter("space.plan.candidates")),
      plan_residual_evals(registry.counter("space.plan.residual_evals")) {}

void TupleSpace::bind_metrics(obs::MetricsRegistry& registry) {
  metrics_ = std::make_unique<SpaceMetrics>(registry);
}

void TupleSpace::index_entry(const TupleUid& uid, const Entry& entry) {
  by_type_[entry.type_tag].emplace(uid, &entry);
  by_parent_[entry.parent].insert(uid);
  if (entry.propagated) propagated_.insert(uid);
}

void TupleSpace::unindex_entry(const TupleUid& uid, const Entry& entry) {
  const auto type_it = by_type_.find(entry.type_tag);
  if (type_it != by_type_.end()) {
    type_it->second.erase(uid);
    if (type_it->second.empty()) by_type_.erase(type_it);
  }
  const auto parent_it = by_parent_.find(entry.parent);
  if (parent_it != by_parent_.end()) {
    parent_it->second.erase(uid);
    if (parent_it->second.empty()) by_parent_.erase(parent_it);
  }
  if (entry.propagated) propagated_.erase(uid);
}

void TupleSpace::put(std::unique_ptr<Tuple> tuple, NodeId parent,
                     bool propagated, SimTime now) {
  const TupleUid uid = tuple->uid();
  std::string tag = tuple->type_tag();
  const auto [it, inserted] = entries_.try_emplace(uid);
  // Replacement may change the tag/parent/flag, so the old entry leaves
  // the indexes before the new one enters.
  bool tag_changed = false;
  if (!inserted) {
    tag_changed = it->second.type_tag != tag;
    // To observers, a replacement that changes the type tag is an erase
    // of the old replica followed by an insert — a type-bucketed
    // continuous query on the old tag must see its member leave.
    if (tag_changed && listener_) listener_(ChangeKind::kErased, it->second);
    unindex_entry(uid, it->second);
  }
  it->second =
      Entry{std::move(tuple), std::move(tag), parent, propagated, now};
  index_entry(uid, it->second);
  if (listener_) {
    listener_(inserted || tag_changed ? ChangeKind::kInserted
                                      : ChangeKind::kReplaced,
              it->second);
  }
}

const TupleSpace::Entry* TupleSpace::find(const TupleUid& uid) const {
  const auto it = entries_.find(uid);
  return it == entries_.end() ? nullptr : &it->second;
}

std::unique_ptr<Tuple> TupleSpace::erase(const TupleUid& uid) {
  const auto it = entries_.find(uid);
  if (it == entries_.end()) return nullptr;
  // Notified while the entry is still intact and indexed, so listeners
  // see the state being removed.
  if (listener_) listener_(ChangeKind::kErased, it->second);
  unindex_entry(uid, it->second);
  auto tuple = std::move(it->second.tuple);
  entries_.erase(it);
  return tuple;
}

const std::map<TupleUid, const TupleSpace::Entry*>* TupleSpace::type_bucket(
    const std::string& tag) const {
  const auto it = by_type_.find(tag);
  return it == by_type_.end() ? nullptr : &it->second;
}

const std::set<TupleUid>* TupleSpace::parent_bucket(NodeId parent) const {
  const auto it = by_parent_.find(parent);
  return it == by_parent_.end() ? nullptr : &it->second;
}

template <typename Fn>
void TupleSpace::match(const Pattern& pattern, Fn&& fn) const {
  const query::Plan plan = query::compile(pattern, *this);
  if (metrics_ != nullptr) {
    metrics_->naive_candidates.inc(
        static_cast<std::int64_t>(entries_.size()));
    if (plan.path == query::AccessPath::kFullScan) {
      metrics_->query_scan.inc();
      metrics_->plan_full_scan.inc();
    } else {
      metrics_->query_indexed.inc();
      switch (plan.path) {
        case query::AccessPath::kTypeIndex:
          metrics_->plan_type_index.inc();
          break;
        case query::AccessPath::kParentIndex:
          metrics_->plan_parent_index.inc();
          break;
        case query::AccessPath::kPropagatedIndex:
          metrics_->plan_propagated_index.inc();
          break;
        case query::AccessPath::kFullScan:
          break;
      }
    }
    metrics_->plan_candidates.inc(static_cast<std::int64_t>(plan.candidates));
  }

  // Residual checks run per candidate against the cached tag and entry
  // metadata — no virtual call anywhere on this path.
  const auto consider = [&](const Entry& entry) -> bool {
    if (metrics_ != nullptr) metrics_->candidates.inc();
    if (plan.check_type && entry.type_tag != *pattern.type_tag()) return true;
    if (plan.check_parent && entry.parent != *pattern.parent()) return true;
    if (plan.check_propagated && entry.propagated != *pattern.propagated()) {
      return true;
    }
    if (plan.check_fields) {
      if (metrics_ != nullptr) metrics_->plan_residual_evals.inc();
      if (!pattern.matches_fields(entry.tuple->content())) return true;
    }
    if (metrics_ != nullptr) metrics_->matches.inc();
    return fn(entry);
  };

  switch (plan.path) {
    case query::AccessPath::kTypeIndex: {
      const auto* bucket = type_bucket(*pattern.type_tag());
      if (bucket == nullptr) return;
      for (const auto& [uid, entry] : *bucket) {
        if (!consider(*entry)) return;
      }
      return;
    }
    case query::AccessPath::kParentIndex: {
      const auto* bucket = parent_bucket(*pattern.parent());
      if (bucket == nullptr) return;
      for (const TupleUid& uid : *bucket) {
        if (!consider(entries_.find(uid)->second)) return;
      }
      return;
    }
    case query::AccessPath::kPropagatedIndex:
      for (const TupleUid& uid : propagated_) {
        if (!consider(entries_.find(uid)->second)) return;
      }
      return;
    case query::AccessPath::kFullScan:
      for (const auto& [uid, entry] : entries_) {
        if (!consider(entry)) return;
      }
      return;
  }
}

std::vector<std::unique_ptr<Tuple>> TupleSpace::read(
    const Pattern& pattern) const {
  std::vector<std::unique_ptr<Tuple>> out;
  match(pattern, [&out](const Entry& entry) {
    out.push_back(entry.tuple->clone());
    return true;
  });
  return out;
}

std::vector<std::unique_ptr<Tuple>> TupleSpace::read(
    const Pattern& pattern,
    const std::function<bool(const Tuple&)>& accept) const {
  std::vector<std::unique_ptr<Tuple>> out;
  match(pattern, [&out, &accept](const Entry& entry) {
    if (accept(*entry.tuple)) out.push_back(entry.tuple->clone());
    return true;
  });
  return out;
}

std::unique_ptr<Tuple> TupleSpace::read_one(const Pattern& pattern) const {
  std::unique_ptr<Tuple> out;
  match(pattern, [&out](const Entry& entry) {
    out = entry.tuple->clone();
    return false;  // first (lowest-uid) match wins
  });
  return out;
}

std::unique_ptr<Tuple> TupleSpace::read_one(
    const Pattern& pattern,
    const std::function<bool(const Tuple&)>& accept) const {
  std::unique_ptr<Tuple> out;
  match(pattern, [&out, &accept](const Entry& entry) {
    if (!accept(*entry.tuple)) return true;  // keep looking
    out = entry.tuple->clone();
    return false;
  });
  return out;
}

std::vector<const Tuple*> TupleSpace::peek(const Pattern& pattern) const {
  std::vector<const Tuple*> out;
  match(pattern, [&out](const Entry& entry) {
    out.push_back(entry.tuple.get());
    return true;
  });
  return out;
}

std::vector<std::unique_ptr<Tuple>> TupleSpace::take(const Pattern& pattern) {
  std::vector<TupleUid> uids;
  match(pattern, [&uids](const Entry& entry) {
    uids.push_back(entry.tuple->uid());
    return true;
  });
  std::vector<std::unique_ptr<Tuple>> out;
  out.reserve(uids.size());
  for (const auto& uid : uids) out.push_back(erase(uid));
  return out;
}

std::vector<TupleUid> TupleSpace::dependents_of(NodeId parent) const {
  const auto it = by_parent_.find(parent);
  if (it == by_parent_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::vector<TupleUid> TupleSpace::propagated_uids() const {
  return {propagated_.begin(), propagated_.end()};
}

void TupleSpace::for_each(const std::function<void(const Entry&)>& fn) const {
  for (const auto& [uid, entry] : entries_) fn(entry);
}

void TupleSpace::for_matching(
    const Pattern& pattern,
    const std::function<bool(const Entry&)>& fn) const {
  match(pattern, fn);
}

}  // namespace tota
