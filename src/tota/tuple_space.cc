#include "tota/tuple_space.h"

namespace tota {

SpaceMetrics::SpaceMetrics(obs::MetricsRegistry& registry)
    : query_indexed(registry.counter("space.query.indexed")),
      query_scan(registry.counter("space.query.scan")),
      candidates(registry.counter("space.query.candidates")),
      matches(registry.counter("space.query.matches")),
      naive_candidates(registry.counter("space.query.naive_candidates")) {}

void TupleSpace::bind_metrics(obs::MetricsRegistry& registry) {
  metrics_ = std::make_unique<SpaceMetrics>(registry);
}

void TupleSpace::index_entry(const TupleUid& uid, const Entry& entry) {
  by_type_[entry.type_tag].emplace(uid, &entry);
  by_parent_[entry.parent].insert(uid);
  if (entry.propagated) propagated_.insert(uid);
}

void TupleSpace::unindex_entry(const TupleUid& uid, const Entry& entry) {
  const auto type_it = by_type_.find(entry.type_tag);
  if (type_it != by_type_.end()) {
    type_it->second.erase(uid);
    if (type_it->second.empty()) by_type_.erase(type_it);
  }
  const auto parent_it = by_parent_.find(entry.parent);
  if (parent_it != by_parent_.end()) {
    parent_it->second.erase(uid);
    if (parent_it->second.empty()) by_parent_.erase(parent_it);
  }
  if (entry.propagated) propagated_.erase(uid);
}

void TupleSpace::put(std::unique_ptr<Tuple> tuple, NodeId parent,
                     bool propagated, SimTime now) {
  const TupleUid uid = tuple->uid();
  std::string tag = tuple->type_tag();
  const auto [it, inserted] = entries_.try_emplace(uid);
  // Replacement may change the tag/parent/flag, so the old entry leaves
  // the indexes before the new one enters.
  if (!inserted) unindex_entry(uid, it->second);
  it->second =
      Entry{std::move(tuple), std::move(tag), parent, propagated, now};
  index_entry(uid, it->second);
}

const TupleSpace::Entry* TupleSpace::find(const TupleUid& uid) const {
  const auto it = entries_.find(uid);
  return it == entries_.end() ? nullptr : &it->second;
}

std::unique_ptr<Tuple> TupleSpace::erase(const TupleUid& uid) {
  const auto it = entries_.find(uid);
  if (it == entries_.end()) return nullptr;
  unindex_entry(uid, it->second);
  auto tuple = std::move(it->second.tuple);
  entries_.erase(it);
  return tuple;
}

template <typename Fn>
void TupleSpace::match(const Pattern& pattern, Fn&& fn) const {
  if (metrics_ != nullptr) {
    metrics_->naive_candidates.inc(
        static_cast<std::int64_t>(entries_.size()));
  }
  // Matching against the cached tag (matches_record) skips the virtual
  // type_tag() string construction per candidate.
  if (const auto& tag = pattern.type_tag(); tag.has_value()) {
    if (metrics_ != nullptr) metrics_->query_indexed.inc();
    const auto bucket = by_type_.find(*tag);
    if (bucket == by_type_.end()) return;
    for (const auto& [uid, entry] : bucket->second) {
      if (metrics_ != nullptr) metrics_->candidates.inc();
      if (!pattern.matches_record(entry->type_tag, entry->tuple->content())) {
        continue;
      }
      if (metrics_ != nullptr) metrics_->matches.inc();
      if (!fn(*entry)) return;
    }
    return;
  }
  if (metrics_ != nullptr) metrics_->query_scan.inc();
  for (const auto& [uid, entry] : entries_) {
    if (metrics_ != nullptr) metrics_->candidates.inc();
    if (!pattern.matches_record(entry.type_tag, entry.tuple->content())) {
      continue;
    }
    if (metrics_ != nullptr) metrics_->matches.inc();
    if (!fn(entry)) return;
  }
}

std::vector<std::unique_ptr<Tuple>> TupleSpace::read(
    const Pattern& pattern) const {
  std::vector<std::unique_ptr<Tuple>> out;
  match(pattern, [&out](const Entry& entry) {
    out.push_back(entry.tuple->clone());
    return true;
  });
  return out;
}

std::unique_ptr<Tuple> TupleSpace::read_one(const Pattern& pattern) const {
  std::unique_ptr<Tuple> out;
  match(pattern, [&out](const Entry& entry) {
    out = entry.tuple->clone();
    return false;  // first (lowest-uid) match wins
  });
  return out;
}

std::unique_ptr<Tuple> TupleSpace::read_one(
    const Pattern& pattern,
    const std::function<bool(const Tuple&)>& accept) const {
  std::unique_ptr<Tuple> out;
  match(pattern, [&out, &accept](const Entry& entry) {
    if (!accept(*entry.tuple)) return true;  // keep looking
    out = entry.tuple->clone();
    return false;
  });
  return out;
}

std::vector<const Tuple*> TupleSpace::peek(const Pattern& pattern) const {
  std::vector<const Tuple*> out;
  match(pattern, [&out](const Entry& entry) {
    out.push_back(entry.tuple.get());
    return true;
  });
  return out;
}

std::vector<std::unique_ptr<Tuple>> TupleSpace::take(const Pattern& pattern) {
  std::vector<TupleUid> uids;
  match(pattern, [&uids](const Entry& entry) {
    uids.push_back(entry.tuple->uid());
    return true;
  });
  std::vector<std::unique_ptr<Tuple>> out;
  out.reserve(uids.size());
  for (const auto& uid : uids) out.push_back(erase(uid));
  return out;
}

std::vector<TupleUid> TupleSpace::dependents_of(NodeId parent) const {
  const auto it = by_parent_.find(parent);
  if (it == by_parent_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::vector<TupleUid> TupleSpace::propagated_uids() const {
  return {propagated_.begin(), propagated_.end()};
}

void TupleSpace::for_each(const std::function<void(const Entry&)>& fn) const {
  for (const auto& [uid, entry] : entries_) fn(entry);
}

}  // namespace tota
