#include "tota/tuple_space.h"

#include <algorithm>

namespace tota {

void TupleSpace::put(std::unique_ptr<Tuple> tuple, NodeId parent,
                     bool propagated, SimTime now) {
  const TupleUid uid = tuple->uid();
  entries_[uid] = Entry{std::move(tuple), parent, propagated, now};
}

const TupleSpace::Entry* TupleSpace::find(const TupleUid& uid) const {
  const auto it = entries_.find(uid);
  return it == entries_.end() ? nullptr : &it->second;
}

std::unique_ptr<Tuple> TupleSpace::erase(const TupleUid& uid) {
  const auto it = entries_.find(uid);
  if (it == entries_.end()) return nullptr;
  auto tuple = std::move(it->second.tuple);
  entries_.erase(it);
  return tuple;
}

std::vector<const TupleSpace::Entry*> TupleSpace::sorted_entries() const {
  std::vector<const Entry*> out;
  out.reserve(entries_.size());
  for (const auto& [_, entry] : entries_) out.push_back(&entry);
  std::sort(out.begin(), out.end(), [](const Entry* a, const Entry* b) {
    return a->tuple->uid() < b->tuple->uid();
  });
  return out;
}

std::vector<std::unique_ptr<Tuple>> TupleSpace::read(
    const Pattern& pattern) const {
  std::vector<std::unique_ptr<Tuple>> out;
  for (const Entry* entry : sorted_entries()) {
    if (pattern.matches(*entry->tuple)) out.push_back(entry->tuple->clone());
  }
  return out;
}

std::unique_ptr<Tuple> TupleSpace::read_one(const Pattern& pattern) const {
  for (const Entry* entry : sorted_entries()) {
    if (pattern.matches(*entry->tuple)) return entry->tuple->clone();
  }
  return nullptr;
}

std::vector<const Tuple*> TupleSpace::peek(const Pattern& pattern) const {
  std::vector<const Tuple*> out;
  for (const Entry* entry : sorted_entries()) {
    if (pattern.matches(*entry->tuple)) out.push_back(entry->tuple.get());
  }
  return out;
}

std::vector<std::unique_ptr<Tuple>> TupleSpace::take(const Pattern& pattern) {
  std::vector<std::unique_ptr<Tuple>> out;
  std::vector<TupleUid> uids;
  for (const Entry* entry : sorted_entries()) {
    if (pattern.matches(*entry->tuple)) uids.push_back(entry->tuple->uid());
  }
  for (const auto& uid : uids) out.push_back(erase(uid));
  return out;
}

std::vector<TupleUid> TupleSpace::dependents_of(NodeId parent) const {
  std::vector<TupleUid> out;
  for (const Entry* entry : sorted_entries()) {
    if (entry->parent == parent) out.push_back(entry->tuple->uid());
  }
  return out;
}

std::vector<TupleUid> TupleSpace::propagated_uids() const {
  std::vector<TupleUid> out;
  for (const Entry* entry : sorted_entries()) {
    if (entry->propagated) out.push_back(entry->tuple->uid());
  }
  return out;
}

void TupleSpace::for_each(const std::function<void(const Entry&)>& fn) const {
  for (const Entry* entry : sorted_entries()) fn(*entry);
}

}  // namespace tota
