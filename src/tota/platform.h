// Platform: what the TOTA middleware needs from the device it runs on.
//
// The middleware itself is transport-agnostic — the paper's prototype ran
// on 802.11b multicast sockets; this repository runs it on a simulated
// radio.  A Platform provides one-hop broadcast, timers, a clock, a
// location sensor, and per-node randomness.  Porting TOTA to real
// hardware means implementing this interface (see sim_platform.h for the
// simulator binding).
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "common/clock.h"
#include "common/geometry.h"
#include "common/ids.h"
#include "common/rng.h"
#include "wire/buffer.h"

namespace tota {

namespace wire {
class FrameCodec;
}  // namespace wire

class Platform {
 public:
  /// Handle to a scheduled action, usable with cancel().  kInvalidTimer
  /// is never returned by schedule(), so callers can use it as "no timer
  /// pending".
  using TimerId = std::uint64_t;
  static constexpr TimerId kInvalidTimer = 0;

  virtual ~Platform() = default;

  /// Sends `payload` to every current one-hop neighbour (broadcast
  /// medium; one transmission, many receivers).
  virtual void broadcast(wire::Bytes payload) = 0;

  /// Like broadcast(), but the platform may upgrade delivery to
  /// at-least-once for the neighbours present at call time (the engine
  /// uses this for RETRACT/PROBE control frames, whose loss is not
  /// self-healing the way tuple floods are).  The default forwards to
  /// broadcast() — best-effort platforms and the lossless simulator
  /// need nothing extra; net::NetSession overrides it with its reliable
  /// channel (net/reliable.h) when that channel is enabled.
  virtual void broadcast_reliable(wire::Bytes payload) {
    broadcast(std::move(payload));
  }

  /// The decode-once frame cache shared by every receiver on this
  /// medium (see wire/frame.h), or nullptr when the transport cannot
  /// share buffers across receivers — the engine then falls back to
  /// parsing every frame itself.  The codec, when present, must outlive
  /// the platform's engines.
  [[nodiscard]] virtual wire::FrameCodec* frame_codec() { return nullptr; }

  /// Current local time.
  [[nodiscard]] virtual SimTime now() const = 0;

  /// Runs `action` after `delay` (never synchronously, even for a zero
  /// delay).  The returned handle cancels the action while it is still
  /// pending — components with recurring timers (discovery beacons,
  /// hold-down expiries) cancel them on shutdown instead of firing into
  /// a destroyed owner.
  virtual TimerId schedule(SimTime delay, std::function<void()> action) = 0;

  /// Cancels a pending action; no-op when it already fired or was
  /// cancelled.
  virtual void cancel(TimerId id) = 0;

  /// Location sensor reading (GPS / Wi-Fi triangulation stand-in).
  [[nodiscard]] virtual Vec2 position() const = 0;

  /// Node-local deterministic randomness.
  [[nodiscard]] virtual Rng& rng() = 0;
};

}  // namespace tota
