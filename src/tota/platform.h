// Platform: what the TOTA middleware needs from the device it runs on.
//
// The middleware itself is transport-agnostic — the paper's prototype ran
// on 802.11b multicast sockets; this repository runs it on a simulated
// radio.  A Platform provides one-hop broadcast, timers, a clock, a
// location sensor, and per-node randomness.  Porting TOTA to real
// hardware means implementing this interface (see sim_platform.h for the
// simulator binding).
#pragma once

#include <functional>

#include "common/clock.h"
#include "common/geometry.h"
#include "common/ids.h"
#include "common/rng.h"
#include "wire/buffer.h"

namespace tota {

namespace wire {
class FrameCodec;
}  // namespace wire

class Platform {
 public:
  virtual ~Platform() = default;

  /// Sends `payload` to every current one-hop neighbour (broadcast
  /// medium; one transmission, many receivers).
  virtual void broadcast(wire::Bytes payload) = 0;

  /// The decode-once frame cache shared by every receiver on this
  /// medium (see wire/frame.h), or nullptr when the transport cannot
  /// share buffers across receivers — the engine then falls back to
  /// parsing every frame itself.  The codec, when present, must outlive
  /// the platform's engines.
  [[nodiscard]] virtual wire::FrameCodec* frame_codec() { return nullptr; }

  /// Current local time.
  [[nodiscard]] virtual SimTime now() const = 0;

  /// Runs `action` after `delay`.
  virtual void schedule(SimTime delay, std::function<void()> action) = 0;

  /// Location sensor reading (GPS / Wi-Fi triangulation stand-in).
  [[nodiscard]] virtual Vec2 position() const = 0;

  /// Node-local deterministic randomness.
  [[nodiscard]] virtual Rng& rng() = 0;
};

}  // namespace tota
