// Context passed to tuple propagation hooks.
//
// When a tuple's hooks (decide_enter / decide_store / decide_propagate /
// change_content / apply_effects) run on a node, they see that node's
// local world only: its id, its physical position (location sensor), the
// hop count the tuple has travelled, who handed the tuple over, the local
// tuple space, and the local clock.  Nothing global — tuples must build
// global structure from strictly local decisions, which is the point of
// the TOTA model.
#pragma once

#include <memory>
#include <vector>

#include "common/clock.h"
#include "common/geometry.h"
#include "common/ids.h"
#include "common/rng.h"

namespace tota {

class TupleSpace;
class Pattern;
class Tuple;

/// Mutating operations a propagating tuple may perform on the node it is
/// crossing (the paper: propagation rules can "delet[e]/modify[…] specific
/// tuples in the propagation nodes").  Provided by the engine; removals
/// performed through here fire kTupleRemoved events like any other.
class SpaceOps {
 public:
  virtual ~SpaceOps() = default;

  /// Removes and returns local tuples matching `pattern`.
  virtual std::vector<std::unique_ptr<Tuple>> take_local(
      const Pattern& pattern) = 0;
};

struct Context {
  /// The node the hook is running on.
  NodeId self;
  /// The neighbour that sent this copy; equals `self` at injection.
  NodeId from;
  /// Hops travelled from the injecting node (0 at the source).
  int hop = 0;
  /// Local middleware clock.
  SimTime now;
  /// Location-sensor reading (GPS / Wi-Fi triangulation stand-in).
  Vec2 position;
  /// Read access to the node's local tuple space.
  const TupleSpace& space;
  /// Node-local deterministic randomness.
  Rng& rng;
  /// Mutating space operations for effectful tuples; may be null when a
  /// hook runs outside an engine (unit tests).
  SpaceOps* ops = nullptr;
};

}  // namespace tota
