// The local tuple space of one TOTA node.
//
// Holds at most one replica per distributed tuple (keyed by TupleUid) plus
// per-replica maintenance metadata: which neighbour the replica was
// received from (`parent` — the dependency link the self-maintenance
// algorithm cascades along) and whether the replica is re-propagated to
// newly-appearing neighbours.
//
// Storage is an *indexed store with maintained order*: the primary map is
// uid-ordered (std::map), so every query iterates replicas in uid order
// without a per-query sort, and three secondary indexes are kept coherent
// under put/erase:
//
//   by_type_     type tag → uid-ordered candidates, so a typed pattern
//                (Pattern::of_type) touches only replicas of that type;
//   by_parent_   parent → children uids, so dependents_of is O(children);
//   propagated_  uids flagged for link-up re-propagation, so
//                propagated_uids is O(flagged).
//
// Invariants (asserted by the property tests in tests/test_tuple_space.cc):
// every entry appears in exactly one by_type_ bucket (under its cached
// type_tag), in exactly one by_parent_ set, and in propagated_ iff its
// flag is set; indexed queries therefore return bit-for-bit the same
// tuples, in the same uid order, as a naive full scan.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "obs/metrics.h"
#include "tota/pattern.h"
#include "tota/tuple.h"

namespace tota {

/// The tuple space's observability handles (docs/OBSERVABILITY.md,
/// `space.*`), resolved once so queries never do a by-name lookup.
struct SpaceMetrics {
  explicit SpaceMetrics(obs::MetricsRegistry& registry);

  /// Queries answered from any secondary index (plan chose a non-scan
  /// access path; historically "pattern had a type").
  obs::Counter& query_indexed;
  /// Queries that fell back to scanning the whole store.
  obs::Counter& query_scan;
  /// Entries actually examined (pattern-match attempts) across queries.
  obs::Counter& candidates;
  /// Entries that matched.
  obs::Counter& matches;
  /// Entries a naive full scan would have examined (store size at query
  /// time); candidates/naive_candidates is the index's candidate ratio.
  obs::Counter& naive_candidates;

  // Query-planner counters (space.plan.*, docs/QUERY.md): which access
  // path each compiled plan chose, and how much residual work ran.
  obs::Counter& plan_type_index;
  obs::Counter& plan_parent_index;
  obs::Counter& plan_propagated_index;
  obs::Counter& plan_full_scan;
  /// Candidates the chosen paths promised to touch (per plan, at compile
  /// time; equals space.query.candidates unless a query early-exits).
  obs::Counter& plan_candidates;
  /// Candidates that reached field-predicate evaluation (the residual).
  obs::Counter& plan_residual_evals;
};

class TupleSpace {
 public:
  struct Entry {
    std::unique_ptr<Tuple> tuple;
    /// tuple->type_tag(), cached at put() so queries and index
    /// maintenance never re-derive it through the virtual call.
    std::string type_tag;
    /// Neighbour this replica came from; invalid for locally-injected
    /// tuples (the source has no upstream dependency).
    NodeId parent;
    /// True when decide_propagate() held here, so the replica is re-sent
    /// to new neighbours by the maintenance machinery.
    bool propagated = false;
    SimTime stored_at;
  };

  /// How a replica changed, as seen by the change listener.
  enum class ChangeKind {
    kInserted,  // a new uid entered the store
    kReplaced,  // an existing uid was overwritten (possibly new tag/meta)
    kErased,    // a replica left the store (take/retract/supersede)
  };

  /// One listener observes every mutation — the hook continuous queries
  /// hang off (Middleware wires it into EventBus::notify_space).  For
  /// kInserted/kReplaced the entry is the fully-indexed new state; for
  /// kErased it is the still-intact entry just before removal.  The
  /// listener must not mutate the space reentrantly.
  using ChangeListener =
      std::function<void(ChangeKind kind, const Entry& entry)>;
  void set_listener(ChangeListener listener) {
    listener_ = std::move(listener);
  }

  /// Registers the space.* instruments on `registry` and records into
  /// them from then on.  Optional: an unbound space counts nothing.
  void bind_metrics(obs::MetricsRegistry& registry);

  /// Stores or replaces the replica for tuple->uid().
  void put(std::unique_ptr<Tuple> tuple, NodeId parent, bool propagated,
           SimTime now);

  /// Replica for `uid`, or nullptr.
  [[nodiscard]] const Entry* find(const TupleUid& uid) const;

  /// Removes the replica for `uid`; returns it (empty if absent).
  std::unique_ptr<Tuple> erase(const TupleUid& uid);

  /// Copies of all stored tuples matching `pattern` (the paper's `read`).
  [[nodiscard]] std::vector<std::unique_ptr<Tuple>> read(
      const Pattern& pattern) const;

  /// Copies of matches `accept` approves (e.g. an access-control check);
  /// rejected matches are never cloned.  Pattern-level counters
  /// (space.query.*) are identical to the unfiltered read's.
  [[nodiscard]] std::vector<std::unique_ptr<Tuple>> read(
      const Pattern& pattern,
      const std::function<bool(const Tuple&)>& accept) const;

  /// First match, if any — the common single-tuple lookup.  Early-exits
  /// on the first (lowest-uid) match.
  [[nodiscard]] std::unique_ptr<Tuple> read_one(const Pattern& pattern) const;

  /// First match `accept` approves (e.g. an access-control check),
  /// cloned; still early-exits at the first accepted match.
  [[nodiscard]] std::unique_ptr<Tuple> read_one(
      const Pattern& pattern,
      const std::function<bool(const Tuple&)>& accept) const;

  /// Non-owning views of matches; valid only until the space next mutates.
  [[nodiscard]] std::vector<const Tuple*> peek(const Pattern& pattern) const;

  /// Removes and returns all matches (the paper's `delete`).
  std::vector<std::unique_ptr<Tuple>> take(const Pattern& pattern);

  /// Uids of replicas whose parent is `parent` (dependency children of a
  /// lost link).  O(children) via the parent index.
  [[nodiscard]] std::vector<TupleUid> dependents_of(NodeId parent) const;

  /// Uids of replicas flagged for re-propagation.  O(flagged).
  [[nodiscard]] std::vector<TupleUid> propagated_uids() const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Iterates entries in deterministic (uid) order.
  void for_each(const std::function<void(const Entry&)>& fn) const;

  /// Runs `fn` over every entry matching `pattern` — fields *and* replica
  /// metadata — in uid order, until `fn` returns false.  Plan-assisted;
  /// what Middleware uses to seed a continuous query's result set.
  void for_matching(const Pattern& pattern,
                    const std::function<bool(const Entry&)>& fn) const;

  // --- planner surface (tota/query.cc) -------------------------------------
  // Read-only views of the secondary indexes so `query::compile` can
  // price access paths; nullptr when the bucket doesn't exist.

  [[nodiscard]] const std::map<TupleUid, const Entry*>* type_bucket(
      const std::string& tag) const;
  [[nodiscard]] const std::set<TupleUid>* parent_bucket(NodeId parent) const;
  [[nodiscard]] const std::set<TupleUid>& propagated_set() const {
    return propagated_;
  }

 private:
  /// Inserts/removes `entry` (stored under `uid`) into/from the three
  /// secondary indexes.  Entry addresses are stable (std::map nodes), so
  /// by_type_ holds raw pointers.
  void index_entry(const TupleUid& uid, const Entry& entry);
  void unindex_entry(const TupleUid& uid, const Entry& entry);

  /// Compiles `pattern` into an access plan (tota/query.h) and runs
  /// `fn(entry)` over the plan's candidates in uid order, applying
  /// residual constraints per candidate, until `fn` returns false.  Only
  /// matching entries reach `fn`.
  template <typename Fn>
  void match(const Pattern& pattern, Fn&& fn) const;

  std::map<TupleUid, Entry> entries_;
  std::unordered_map<std::string, std::map<TupleUid, const Entry*>> by_type_;
  std::unordered_map<NodeId, std::set<TupleUid>> by_parent_;
  std::set<TupleUid> propagated_;
  ChangeListener listener_;
  std::unique_ptr<SpaceMetrics> metrics_;
};

}  // namespace tota
