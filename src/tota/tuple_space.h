// The local tuple space of one TOTA node.
//
// Holds at most one replica per distributed tuple (keyed by TupleUid) plus
// per-replica maintenance metadata: which neighbour the replica was
// received from (`parent` — the dependency link the self-maintenance
// algorithm cascades along) and whether the replica is re-propagated to
// newly-appearing neighbours.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "tota/pattern.h"
#include "tota/tuple.h"

namespace tota {

class TupleSpace {
 public:
  struct Entry {
    std::unique_ptr<Tuple> tuple;
    /// Neighbour this replica came from; invalid for locally-injected
    /// tuples (the source has no upstream dependency).
    NodeId parent;
    /// True when decide_propagate() held here, so the replica is re-sent
    /// to new neighbours by the maintenance machinery.
    bool propagated = false;
    SimTime stored_at;
  };

  /// Stores or replaces the replica for tuple->uid().
  void put(std::unique_ptr<Tuple> tuple, NodeId parent, bool propagated,
           SimTime now);

  /// Replica for `uid`, or nullptr.
  [[nodiscard]] const Entry* find(const TupleUid& uid) const;

  /// Removes the replica for `uid`; returns it (empty if absent).
  std::unique_ptr<Tuple> erase(const TupleUid& uid);

  /// Copies of all stored tuples matching `pattern` (the paper's `read`).
  [[nodiscard]] std::vector<std::unique_ptr<Tuple>> read(
      const Pattern& pattern) const;

  /// First match, if any — the common single-tuple lookup.
  [[nodiscard]] std::unique_ptr<Tuple> read_one(const Pattern& pattern) const;

  /// Non-owning views of matches; valid only until the space next mutates.
  [[nodiscard]] std::vector<const Tuple*> peek(const Pattern& pattern) const;

  /// Removes and returns all matches (the paper's `delete`).
  std::vector<std::unique_ptr<Tuple>> take(const Pattern& pattern);

  /// Uids of replicas whose parent is `parent` (dependency children of a
  /// lost link).
  [[nodiscard]] std::vector<TupleUid> dependents_of(NodeId parent) const;

  /// Uids of replicas flagged for re-propagation.
  [[nodiscard]] std::vector<TupleUid> propagated_uids() const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Iterates entries in deterministic (uid) order.
  void for_each(const std::function<void(const Entry&)>& fn) const;

 private:
  [[nodiscard]] std::vector<const Entry*> sorted_entries() const;

  std::unordered_map<TupleUid, Entry> entries_;
};

}  // namespace tota
