#include "tota/digest.h"

namespace tota {

namespace {

/// splitmix64 finalizer — full-avalanche 64-bit mix.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t StoreDigest::mix(const TupleUid& uid) {
  // Mix the origin first so (node 1, seq 2) and (node 2, seq 1) land
  // far apart before the final avalanche.
  return splitmix64(splitmix64(uid.origin().value()) ^ uid.sequence());
}

std::size_t StoreDigest::bucket_of(const TupleUid& uid,
                                   std::size_t bucket_count) {
  return static_cast<std::size_t>(mix(uid) % bucket_count);
}

StoreDigest StoreDigest::build(std::span<const TupleUid> uids,
                               std::uint32_t bucket_count) {
  if (bucket_count == 0) bucket_count = 1;
  if (bucket_count > kMaxDigestBuckets) bucket_count = kMaxDigestBuckets;
  StoreDigest d;
  d.buckets.assign(bucket_count, 0);
  for (const TupleUid& uid : uids) d.add(uid);
  return d;
}

void StoreDigest::add(const TupleUid& uid) {
  buckets[bucket_of(uid, buckets.size())] ^= mix(uid);
  ++count;
}

wire::Bytes StoreDigest::encode() const {
  wire::Writer w;
  w.reserve(10 + 8 * buckets.size());
  w.uvarint(buckets.size());
  w.uvarint(count);
  for (const std::uint64_t b : buckets) w.u64(b);
  return w.take();
}

StoreDigest StoreDigest::decode(std::span<const std::uint8_t> bytes) {
  wire::Reader r(bytes);
  const std::uint64_t bucket_count = r.uvarint();
  if (bucket_count == 0) throw wire::DecodeError("digest without buckets");
  if (bucket_count > kMaxDigestBuckets) {
    throw wire::DecodeError("digest bucket count over the cap");
  }
  StoreDigest d;
  d.count = r.uvarint();
  d.buckets.reserve(static_cast<std::size_t>(bucket_count));
  for (std::uint64_t i = 0; i < bucket_count; ++i) {
    d.buckets.push_back(r.u64());
  }
  r.expect_done();
  return d;
}

}  // namespace tota
