#include "tota/events.h"

#include <algorithm>

namespace tota {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kTupleArrived:
      return "tuple_arrived";
    case EventKind::kTupleRemoved:
      return "tuple_removed";
    case EventKind::kNeighborUp:
      return "neighbor_up";
    case EventKind::kNeighborDown:
      return "neighbor_down";
  }
  return "?";
}

namespace {
const bool kPresenceRegistered = [] {
  register_tuple_type<PresenceTuple>(PresenceTuple::kTag);
  return true;
}();
}  // namespace

PresenceTuple::PresenceTuple(NodeId neighbor, bool up) {
  content().set("event", up ? "up" : "down").set("node", neighbor);
}

BusMetrics::BusMetrics(obs::MetricsRegistry& registry)
    : publish(registry.counter("bus.publish")),
      candidates(registry.counter("bus.dispatch.candidates")),
      fired(registry.counter("bus.dispatch.fired")),
      skipped_dead(registry.counter("bus.dispatch.skipped_dead")) {}

void EventBus::bind_metrics(obs::MetricsRegistry& registry) {
  metrics_ = std::make_unique<BusMetrics>(registry);
}

EventBus::BucketKey EventBus::key_of(const Subscription& sub) {
  return BucketKey{sub.kind_filter, sub.pattern.type_tag().value_or("")};
}

SubscriptionId EventBus::subscribe(Pattern pattern, Reaction reaction,
                                   int kind_filter) {
  const SubscriptionId id = next_id_++;
  const auto [it, inserted] = subscriptions_.emplace(
      id, Subscription{id, std::move(pattern), std::move(reaction),
                       kind_filter});
  buckets_[key_of(it->second)].push_back(id);
  live_.insert(id);
  return id;
}

void EventBus::drop(SubscriptionId id) {
  const auto it = subscriptions_.find(id);
  if (it == subscriptions_.end()) return;
  const auto bucket = buckets_.find(key_of(it->second));
  if (bucket != buckets_.end()) {
    std::erase(bucket->second, id);
    if (bucket->second.empty()) buckets_.erase(bucket);
  }
  live_.erase(id);
  subscriptions_.erase(it);
}

void EventBus::unsubscribe(SubscriptionId id) { drop(id); }

void EventBus::unsubscribe(const Pattern& pattern) {
  std::vector<SubscriptionId> doomed;
  for (const auto& [id, sub] : subscriptions_) {
    if (sub.pattern.equivalent(pattern)) doomed.push_back(id);
  }
  for (const SubscriptionId id : doomed) drop(id);
}

void EventBus::collect(const BucketKey& key,
                       std::vector<SubscriptionId>& out) const {
  const auto it = buckets_.find(key);
  if (it == buckets_.end()) return;
  out.insert(out.end(), it->second.begin(), it->second.end());
}

void EventBus::publish(const Event& event) {
  if (metrics_ != nullptr) metrics_->publish.inc();
  // The four buckets this event can match; a subscription lives in
  // exactly one bucket, so the union is duplicate-free.
  const int kind = static_cast<int>(event.kind);
  const std::string tag = event.tuple->type_tag();
  std::vector<SubscriptionId> candidates;
  collect(BucketKey{kind, tag}, candidates);
  collect(BucketKey{kind, std::string{}}, candidates);
  collect(BucketKey{kAnyKind, tag}, candidates);
  collect(BucketKey{kAnyKind, std::string{}}, candidates);
  // Dispatch order is subscription order == id order.
  std::sort(candidates.begin(), candidates.end());

  // Snapshot ids + reactions so reentrant (un)subscription is safe.
  std::vector<std::pair<SubscriptionId, Reaction>> to_run;
  for (const SubscriptionId id : candidates) {
    const Subscription& sub = subscriptions_.find(id)->second;
    if (metrics_ != nullptr) metrics_->candidates.inc();
    if (sub.pattern.matches(*event.tuple)) {
      to_run.emplace_back(id, sub.reaction);
    }
  }
  for (auto& [id, reaction] : to_run) {
    // Skip reactions unsubscribed by an earlier reaction in this batch.
    if (!live_.contains(id)) {
      if (metrics_ != nullptr) metrics_->skipped_dead.inc();
      continue;
    }
    if (metrics_ != nullptr) metrics_->fired.inc();
    reaction(event);
  }
}

}  // namespace tota
