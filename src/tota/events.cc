#include "tota/events.h"

#include <algorithm>

namespace tota {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kTupleArrived:
      return "tuple_arrived";
    case EventKind::kTupleRemoved:
      return "tuple_removed";
    case EventKind::kNeighborUp:
      return "neighbor_up";
    case EventKind::kNeighborDown:
      return "neighbor_down";
  }
  return "?";
}

namespace {
const bool kPresenceRegistered = [] {
  register_tuple_type<PresenceTuple>(PresenceTuple::kTag);
  return true;
}();
}  // namespace

PresenceTuple::PresenceTuple(NodeId neighbor, bool up) {
  content().set("event", up ? "up" : "down").set("node", neighbor);
}

SubscriptionId EventBus::subscribe(Pattern pattern, Reaction reaction,
                                   int kind_filter) {
  const SubscriptionId id = next_id_++;
  subscriptions_.push_back(
      {id, std::move(pattern), std::move(reaction), kind_filter});
  return id;
}

void EventBus::unsubscribe(SubscriptionId id) {
  std::erase_if(subscriptions_,
                [id](const Subscription& s) { return s.id == id; });
}

void EventBus::unsubscribe(const Pattern& pattern) {
  std::erase_if(subscriptions_, [&pattern](const Subscription& s) {
    return s.pattern.equivalent(pattern);
  });
}

void EventBus::publish(const Event& event) {
  // Snapshot ids + reactions so reentrant (un)subscription is safe.
  std::vector<std::pair<SubscriptionId, Reaction>> to_run;
  for (const auto& sub : subscriptions_) {
    if (sub.kind_filter != kAnyKind &&
        sub.kind_filter != static_cast<int>(event.kind)) {
      continue;
    }
    if (sub.pattern.matches(*event.tuple)) {
      to_run.emplace_back(sub.id, sub.reaction);
    }
  }
  for (auto& [id, reaction] : to_run) {
    // Skip reactions unsubscribed by an earlier reaction in this batch.
    const bool still_live =
        std::any_of(subscriptions_.begin(), subscriptions_.end(),
                    [id](const Subscription& s) { return s.id == id; });
    if (still_live) reaction(event);
  }
}

}  // namespace tota
