#include "tota/events.h"

#include <algorithm>

namespace tota {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kTupleArrived:
      return "tuple_arrived";
    case EventKind::kTupleRemoved:
      return "tuple_removed";
    case EventKind::kNeighborUp:
      return "neighbor_up";
    case EventKind::kNeighborDown:
      return "neighbor_down";
  }
  return "?";
}

namespace {
const bool kPresenceRegistered = [] {
  register_tuple_type<PresenceTuple>(PresenceTuple::kTag);
  return true;
}();
}  // namespace

PresenceTuple::PresenceTuple(NodeId neighbor, bool up) {
  content().set("event", up ? "up" : "down").set("node", neighbor);
}

const char* to_string(QueryDelta::Kind kind) {
  switch (kind) {
    case QueryDelta::Kind::kAdded:
      return "added";
    case QueryDelta::Kind::kUpdated:
      return "updated";
    case QueryDelta::Kind::kRemoved:
      return "removed";
  }
  return "?";
}

BusMetrics::BusMetrics(obs::MetricsRegistry& registry)
    : publish(registry.counter("bus.publish")),
      candidates(registry.counter("bus.dispatch.candidates")),
      fired(registry.counter("bus.dispatch.fired")),
      skipped_dead(registry.counter("bus.dispatch.skipped_dead")),
      cq_evals(registry.counter("bus.cq.evals")),
      cq_added(registry.counter("bus.cq.added")),
      cq_updated(registry.counter("bus.cq.updated")),
      cq_removed(registry.counter("bus.cq.removed")) {}

void EventBus::bind_metrics(obs::MetricsRegistry& registry) {
  metrics_ = std::make_unique<BusMetrics>(registry);
}

EventBus::BucketKey EventBus::key_of(const Subscription& sub) {
  return BucketKey{sub.kind_filter, sub.pattern.type_tag().value_or("")};
}

SubscriptionId EventBus::subscribe(Pattern pattern, Reaction reaction,
                                   int kind_filter) {
  const SubscriptionId id = next_id_++;
  const auto [it, inserted] = subscriptions_.emplace(
      id, Subscription{id, std::move(pattern), std::move(reaction),
                       kind_filter});
  buckets_[key_of(it->second)].push_back(id);
  live_.insert(id);
  return id;
}

void EventBus::drop(SubscriptionId id) {
  const auto it = subscriptions_.find(id);
  if (it == subscriptions_.end()) return;
  const auto bucket = buckets_.find(key_of(it->second));
  if (bucket != buckets_.end()) {
    std::erase(bucket->second, id);
    if (bucket->second.empty()) buckets_.erase(bucket);
  }
  live_.erase(id);
  subscriptions_.erase(it);
}

void EventBus::unsubscribe(SubscriptionId id) { drop(id); }

void EventBus::unsubscribe(const Pattern& pattern) {
  std::vector<SubscriptionId> doomed;
  for (const auto& [id, sub] : subscriptions_) {
    if (sub.pattern.equivalent(pattern)) doomed.push_back(id);
  }
  for (const SubscriptionId id : doomed) drop(id);
}

void EventBus::collect(const BucketKey& key,
                       std::vector<SubscriptionId>& out) const {
  const auto it = buckets_.find(key);
  if (it == buckets_.end()) return;
  out.insert(out.end(), it->second.begin(), it->second.end());
}

void EventBus::publish(const Event& event) {
  if (metrics_ != nullptr) metrics_->publish.inc();
  // The four buckets this event can match; a subscription lives in
  // exactly one bucket, so the union is duplicate-free.
  const int kind = static_cast<int>(event.kind);
  const std::string tag = event.tuple->type_tag();
  std::vector<SubscriptionId> candidates;
  collect(BucketKey{kind, tag}, candidates);
  collect(BucketKey{kind, std::string{}}, candidates);
  collect(BucketKey{kAnyKind, tag}, candidates);
  collect(BucketKey{kAnyKind, std::string{}}, candidates);
  // Dispatch order is subscription order == id order.
  std::sort(candidates.begin(), candidates.end());

  // Snapshot ids + reactions so reentrant (un)subscription is safe.
  std::vector<std::pair<SubscriptionId, Reaction>> to_run;
  for (const SubscriptionId id : candidates) {
    const Subscription& sub = subscriptions_.find(id)->second;
    if (metrics_ != nullptr) metrics_->candidates.inc();
    if (sub.pattern.matches(*event.tuple)) {
      to_run.emplace_back(id, sub.reaction);
    }
  }
  for (auto& [id, reaction] : to_run) {
    // Skip reactions unsubscribed by an earlier reaction in this batch.
    if (!live_.contains(id)) {
      if (metrics_ != nullptr) metrics_->skipped_dead.inc();
      continue;
    }
    if (metrics_ != nullptr) metrics_->fired.inc();
    reaction(event);
  }
}

QueryId EventBus::subscribe_query(Pattern pattern, QueryCallback on_delta,
                                  QueryAccept accept) {
  const QueryId id = next_query_id_++;
  const std::string bucket = pattern.type_tag().value_or("");
  queries_.emplace(id, ContinuousQuery{id, std::move(pattern),
                                       std::move(on_delta), std::move(accept),
                                       {}});
  query_buckets_[bucket].push_back(id);
  live_queries_.insert(id);
  return id;
}

void EventBus::unsubscribe_query(QueryId id) {
  const auto it = queries_.find(id);
  if (it == queries_.end()) return;
  const std::string bucket = it->second.pattern.type_tag().value_or("");
  const auto bucket_it = query_buckets_.find(bucket);
  if (bucket_it != query_buckets_.end()) {
    std::erase(bucket_it->second, id);
    if (bucket_it->second.empty()) query_buckets_.erase(bucket_it);
  }
  live_queries_.erase(id);
  queries_.erase(it);
}

void EventBus::evaluate_query(ContinuousQuery& q, bool erased,
                              const std::string& type_tag, const Tuple& tuple,
                              NodeId parent, bool propagated, SimTime now) {
  if (metrics_ != nullptr) metrics_->cq_evals.inc();
  const TupleUid uid = tuple.uid();
  const bool member = q.members.contains(uid);
  bool matches = false;
  if (!erased) {
    matches = q.pattern.matches_record(type_tag, tuple.content()) &&
              q.pattern.matches_meta(parent, propagated) &&
              (!q.accept || q.accept(tuple));
  }
  if (matches == member && !matches) return;  // non-member stays out

  // Membership mutates before the callback and `q` is never touched
  // after it: the callback may unsubscribe this very query.
  QueryDelta delta{QueryDelta::Kind::kUpdated, &tuple, now};
  if (matches && !member) {
    q.members.insert(uid);
    delta.kind = QueryDelta::Kind::kAdded;
  } else if (!matches && member) {
    q.members.erase(uid);
    delta.kind = QueryDelta::Kind::kRemoved;
  }
  if (metrics_ != nullptr) {
    switch (delta.kind) {
      case QueryDelta::Kind::kAdded:
        metrics_->cq_added.inc();
        break;
      case QueryDelta::Kind::kUpdated:
        metrics_->cq_updated.inc();
        break;
      case QueryDelta::Kind::kRemoved:
        metrics_->cq_removed.inc();
        break;
    }
  }
  const QueryCallback on_delta = q.on_delta;  // survives self-unsubscribe
  on_delta(delta);
}

void EventBus::seed_query(QueryId id, const std::string& type_tag,
                          const Tuple& tuple, NodeId parent, bool propagated,
                          SimTime now) {
  const auto it = queries_.find(id);
  if (it == queries_.end()) return;
  evaluate_query(it->second, /*erased=*/false, type_tag, tuple, parent,
                 propagated, now);
}

void EventBus::notify_space(SpaceChange change, const std::string& type_tag,
                            const Tuple& tuple, NodeId parent, bool propagated,
                            SimTime now) {
  if (queries_.empty()) return;
  // Only queries bucketed on this tag (or untyped) can change — copied,
  // because a callback may (un)subscribe and reshape the buckets.
  std::vector<QueryId> ids;
  for (const std::string& bucket : {type_tag, std::string{}}) {
    const auto it = query_buckets_.find(bucket);
    if (it != query_buckets_.end()) {
      ids.insert(ids.end(), it->second.begin(), it->second.end());
    }
  }
  std::sort(ids.begin(), ids.end());
  const bool erased = change == SpaceChange::kErased;
  for (const QueryId id : ids) {
    if (!live_queries_.contains(id)) continue;
    const auto it = queries_.find(id);
    if (it == queries_.end()) continue;
    evaluate_query(it->second, erased, type_tag, tuple, parent, propagated,
                   now);
  }
}

}  // namespace tota
