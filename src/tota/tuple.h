// The distributed tuple T = (C, P).
//
// C — the content — is a wire::Record of named typed fields.
// P — the propagation rule — is *behaviour*: subclasses override four hook
// methods that the engine consults as the tuple spreads hop-by-hop through
// the network (the paper's "breadth first, expanding ring" skeleton):
//
//   decide_enter      should this copy be processed at this node at all?
//   change_content    mutate the content for this node (e.g. hopcount+1)
//   decide_store      keep a replica in this node's local tuple space?
//   decide_propagate  re-broadcast from this node to its neighbours?
//
// plus `supersedes`, which resolves what happens when a copy of an
// already-held distributed tuple arrives (monotone update vs duplicate).
//
// Tuples cross the (simulated) network only as bytes: encode()/decode()
// serialize the base state, and subclasses with extra propagation state
// override encode_extra()/decode_extra().  Every concrete tuple class is
// registered in the TupleRegistry under a stable string tag so receivers
// can reconstruct the right subclass.
#pragma once

#include <memory>
#include <string>

#include "common/ids.h"
#include "tota/access.h"
#include "tota/context.h"
#include "wire/buffer.h"
#include "wire/record.h"
#include "wire/registry.h"

namespace tota {

class Tuple {
 public:
  Tuple() = default;
  virtual ~Tuple() = default;

  Tuple(const Tuple&) = default;
  Tuple& operator=(const Tuple&) = default;

  // --- identity ------------------------------------------------------------

  /// Stable wire tag identifying the concrete class (see TupleRegistry).
  [[nodiscard]] virtual std::string type_tag() const = 0;

  /// Middleware-level id: (injecting node, per-node sequence).  Invisible
  /// to applications in the paper; exposed read-only here for tests and
  /// tooling.
  [[nodiscard]] const TupleUid& uid() const { return uid_; }
  void set_uid(TupleUid uid) { uid_ = uid; }

  /// Hops this copy travelled from its source (0 at the source).
  [[nodiscard]] int hop() const { return hop_; }
  void set_hop(int hop) { hop_ = hop; }

  // --- content C ------------------------------------------------------------

  [[nodiscard]] const wire::Record& content() const { return content_; }
  [[nodiscard]] wire::Record& content() { return content_; }

  // --- access control (paper §6 future work; see access.h) -------------------

  /// The policy governing who observes/extracts/hosts this tuple.  The
  /// owner is the tuple's injecting node (uid().origin()).  Default: open.
  [[nodiscard]] const AccessPolicy& access() const { return access_; }
  void set_access(AccessPolicy policy) { access_ = std::move(policy); }

  /// Convenience: does `node` hold `op` rights on this tuple?
  [[nodiscard]] bool permits(AccessOp op, NodeId node) const {
    return access_.permits(op, uid_.origin(), node);
  }

  // --- propagation rule P (hooks) -------------------------------------------

  /// Should this copy be considered at this node at all?  Returning false
  /// drops it without storing or forwarding (spatial scoping lives here).
  /// Default: yes.
  virtual bool decide_enter(const Context& ctx);

  /// Mutates the content for this node; the classic gradient increments a
  /// distance field here.  Runs before storage.  Default: no change.
  virtual void change_content(const Context& ctx);

  /// Keep a replica in this node's tuple space?  Default: yes.  Tuples
  /// that only pass through (pure messages) return false.
  virtual bool decide_store(const Context& ctx);

  /// Re-broadcast from this node?  Default: yes (network-wide flood).
  /// Scope-limited tuples return false past their range.
  virtual bool decide_propagate(const Context& ctx);

  /// A copy of this distributed tuple arrived at a node already holding
  /// replica `stored`.  Return true when this copy should replace it (and
  /// be re-propagated); false to drop it as a duplicate.  Default: false —
  /// first copy wins, which terminates plain floods.
  virtual bool supersedes(const Tuple& stored) const;

  /// Side effects on the node being crossed (delete/modify other tuples
  /// via ctx.ops).  Runs once per node, after change_content and duplicate
  /// resolution.  Default: none.  This is the paper's "propagating by
  /// deleting/modifying specific tuples in the propagation nodes".
  virtual void apply_effects(const Context& ctx);

  /// Whether stored replicas participate in self-maintenance, i.e. are
  /// retracted when they lose justification — no current neighbour holds
  /// the tuple at a smaller hop value (see engine.h).  True for
  /// structural tuples (distance fields must track the topology); false
  /// for delivered data (a message kept at its receiver outlives the
  /// path it travelled).  Default: true.
  [[nodiscard]] virtual bool maintained() const;

  // --- wire -------------------------------------------------------------------

  /// Serializes tag + uid + hop + content + subclass extras.
  void encode(wire::Writer& w) const;

  /// Reconstructs a tuple from bytes using the registry.  Throws
  /// wire::DecodeError / wire::UnknownTypeError on malformed input.
  static std::unique_ptr<Tuple> decode(wire::Reader& r);

  /// Deep copy preserving the dynamic type.  Concrete subclasses
  /// override with a copy-construction one-liner — the decode-once
  /// receive path clones a cached prototype for every receiver of a
  /// broadcast frame, so this is hot.  The base fallback round-trips
  /// through the wire format: always correct (every propagation-relevant
  /// field is serialized, as decode must rebuild the full state) but it
  /// pays a full encode+decode.
  [[nodiscard]] virtual std::unique_ptr<Tuple> clone() const;

  /// "<tag>[uid hop] (content)" for logs.
  [[nodiscard]] std::string str() const;

 protected:
  /// Subclasses with propagation state beyond the content record hook in
  /// here; base implementations write/read nothing.
  virtual void encode_extra(wire::Writer& w) const;
  virtual void decode_extra(wire::Reader& r);

 private:
  TupleUid uid_;
  int hop_ = 0;
  wire::Record content_;
  AccessPolicy access_;
};

/// Process-wide registry mapping type tags to factories.
wire::TypeRegistry<Tuple>& tuple_registry();

/// Registers `T` (default-constructible Tuple subclass) under `tag`.
/// Typically invoked once per concrete class via a namespace-scope helper.
template <typename T>
void register_tuple_type(const std::string& tag) {
  tuple_registry().register_default<T>(tag);
}

}  // namespace tota
