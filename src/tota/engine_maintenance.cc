// Topology-change repair: link-up re-propagation, value-justification
// retraction, RETRACT/PROBE handling, and repair-latency tracking.  The
// mechanism essay lives in engine.h; the policy knobs in maintenance.h.
#include <algorithm>

#include "tota/engine.h"

namespace tota {

void Engine::on_neighbor_up(NodeId neighbor) {
  const auto it =
      std::lower_bound(neighbors_.begin(), neighbors_.end(), neighbor);
  if (it != neighbors_.end() && *it == neighbor) return;
  neighbors_.insert(it, neighbor);

  if (!maintenance_.repropagate_on_link_up) return;
  // Debounced: several links appearing at the same instant (a node joining
  // a dense area) trigger one re-propagation round, not one per link.
  if (repropagation_pending_) return;
  repropagation_pending_ = true;
  schedule_owned(SimTime::zero(), [this] {
    repropagation_pending_ = false;
    for (const TupleUid& uid : space_.propagated_uids()) {
      const auto* entry = space_.find(uid);
      if (entry == nullptr) continue;
      if (uid.origin() == self_ && entry->tuple->hop() == 0) {
        // Source replica: the node may have moved since injection, so
        // position-dependent content (advert locations, spatial origins)
        // is re-evaluated at hop 0 before re-announcing.
        auto fresh = entry->tuple->clone();
        fresh->change_content(make_context(self_, 0));
        if (!(fresh->content() == entry->tuple->content())) {
          send_tuple(*fresh);
          space_.put(std::move(fresh), NodeId{}, true, platform_.now());
        } else {
          send_tuple(*entry->tuple);
        }
      } else {
        send_tuple(*entry->tuple);
      }
      ++maintenance_stats_.link_up_repropagations;
      metrics_.maint_link_up_reprop.inc();
    }
  });
}

void Engine::on_neighbor_down(NodeId neighbor) {
  const auto it =
      std::lower_bound(neighbors_.begin(), neighbors_.end(), neighbor);
  if (it != neighbors_.end() && *it == neighbor) neighbors_.erase(it);

  if (!maintenance_.retract_on_link_down) return;
  // Everything we knew the departed neighbour held is gone; replicas that
  // relied on those values for justification must go too.
  for (const TupleUid& uid : neighbor_values_.forget_neighbor(neighbor)) {
    recheck(uid, /*cascaded=*/false);
  }
}

bool Engine::justified(const TupleSpace::Entry& entry) const {
  const TupleUid uid = entry.tuple->uid();
  if (!entry.tuple->maintained()) return true;
  if (uid.origin() == self_) return true;  // the source carries its own
  return neighbor_values_.supports(uid, entry.tuple->hop());
}

void Engine::recheck(const TupleUid& uid, bool cascaded) {
  const auto* entry = space_.find(uid);
  if (entry == nullptr) return;
  if (justified(*entry)) return;
  retract_local(uid, cascaded);
}

void Engine::retract_local(const TupleUid& uid, bool cascaded) {
  const auto* entry = space_.find(uid);
  if (entry == nullptr) return;
  const int removed_hop = entry->tuple->hop();

  auto removed = space_.erase(uid);
  if (cascaded) {
    ++maintenance_stats_.retractions_cascaded;
    metrics_.maint_retract_cascaded.inc();
  } else {
    ++maintenance_stats_.retractions_started;
    metrics_.maint_retract_started.inc();
  }
  trace(obs::Stage::kRetract, uid, removed_hop);
  note_repair_pending(uid);
  bus_.publish(
      Event{EventKind::kTupleRemoved, removed.get(), platform_.now()});

  // Arm the hold-down and schedule the expiry probe.  A newer retraction
  // may re-arm before this one expires; HoldDownTable::expire checks.
  hold_down_.arm(uid, platform_.now() + maintenance_.hold_down, removed_hop);
  schedule_owned(maintenance_.hold_down, [this, uid] {
    if (!hold_down_.expire(uid, platform_.now())) return;
    platform_.broadcast_reliable(wire::Frame::probe(uid));
    ++maintenance_stats_.probes_sent;
    metrics_.maint_probe_tx.inc();
    trace(obs::Stage::kProbe, uid, /*hop=*/-1);
  });

  // A lost RETRACT is the one frame the flood cannot heal on its own:
  // the stale replica stays justified forever.  Platforms with a
  // reliable channel upgrade this to at-least-once delivery.
  platform_.broadcast_reliable(wire::Frame::retract(uid, removed_hop));
}

void Engine::handle_probe(const TupleUid& uid) {
  const auto* entry = space_.find(uid);
  if (entry == nullptr || !entry->propagated) return;
  if (!justified(*entry)) return;  // don't feed a drain in progress
  send_tuple(*entry->tuple);
  ++maintenance_stats_.probe_answers;
  metrics_.maint_probe_answer.inc();
  trace(obs::Stage::kHeal, uid, entry->tuple->hop());
}

void Engine::handle_retract(NodeId from, const TupleUid& uid) {
  // The retracting neighbour no longer holds the tuple; keep the row
  // alive only while a local replica could still be justified by it.
  neighbor_values_.forget(uid, from, /*retain_row=*/space_.find(uid) != nullptr);
  if (!maintenance_.retract_on_link_down) return;

  const auto* entry = space_.find(uid);
  if (entry == nullptr) return;
  if (!justified(*entry)) {
    // Our support chain ran through the retracting neighbour: cascade.
    retract_local(uid, /*cascaded=*/true);
    return;
  }
  // Our replica is independently supported: answer by re-announcing it,
  // which rebuilds correct values in the orphaned region.
  if (entry->propagated) {
    send_tuple(*entry->tuple);
    ++maintenance_stats_.heal_repropagations;
    metrics_.maint_heal_reprop.inc();
    trace(obs::Stage::kHeal, uid, entry->tuple->hop());
  }
}

void Engine::note_repair_pending(const TupleUid& uid) {
  // Keep the *first* retraction instant: the structure has been wrong
  // since then, so a re-retraction during an ongoing repair must not
  // reset the clock.  Bounded (BoundedUidFifo) because a tuple whose
  // region drains for good never reinstalls.
  repair_pending_.insert(uid, platform_.now());
}

void Engine::record_repair(const TupleUid& uid) {
  const SimTime* retracted_at = repair_pending_.find(uid);
  if (retracted_at == nullptr) return;
  metrics_.repair_ms.record((platform_.now() - *retracted_at).millis());
  repair_pending_.erase(uid);
}

}  // namespace tota
