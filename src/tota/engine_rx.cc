// The receive/decode path: frame envelope parsing, the decode-once
// prototype cache, and robustness against malformed frames.  The
// propagation pipeline itself lives in engine.cc.
#include "tota/engine.h"

namespace tota {

namespace {

/// Parses one tuple body (a TUPLE frame with the envelope stripped),
/// consuming it to the last byte.
std::unique_ptr<Tuple> parse_tuple_body(std::span<const std::uint8_t> body) {
  wire::Reader r(body);
  auto tuple = Tuple::decode(r);
  r.expect_done();
  return tuple;
}

}  // namespace

void Engine::note_decode_failure() {
  ++decode_failures_;
  metrics_.decode_fail.inc();
}

void Engine::dispatch(NodeId from, const wire::Frame& frame,
                      std::unique_ptr<Tuple> tuple) {
  switch (frame.kind) {
    case wire::FrameKind::kTuple:
      receive_tuple(from, std::move(tuple));
      return;
    case wire::FrameKind::kRetract:
      // frame.removed_hop is carried for tracing only.
      handle_retract(from, frame.uid);
      return;
    case wire::FrameKind::kProbe:
      handle_probe(frame.uid);
      return;
  }
}

void Engine::receive_tuple(NodeId from, std::unique_ptr<Tuple> tuple) {
  // Overhearing the frame tells us what the sender now holds —
  // maintenance bookkeeping happens even for copies the propagation rule
  // goes on to reject.
  if (tuple->maintained()) {
    neighbor_values_.note(tuple->uid(), from, tuple->hop());
    // A neighbour's value can also *stretch* past ours and void our
    // justification; re-check eagerly.
    if (maintenance_.retract_on_link_down) recheck(tuple->uid());
  }
  tuple->set_hop(tuple->hop() + 1);
  process(std::move(tuple), from);
}

void Engine::on_datagram(NodeId from, std::span<const std::uint8_t> payload) {
  try {
    const wire::Frame frame = wire::Frame::decode(payload);
    std::unique_ptr<Tuple> tuple;
    if (frame.kind == wire::FrameKind::kTuple) {
      tuple = parse_tuple_body(frame.tuple_body);
    }
    dispatch(from, frame, std::move(tuple));
  } catch (const wire::DecodeError&) {
    note_decode_failure();
  } catch (const wire::UnknownTypeError&) {
    note_decode_failure();
  }
}

void Engine::on_datagram(NodeId from,
                         std::shared_ptr<const wire::Bytes> payload) {
  wire::FrameCodec* codec = platform_.frame_codec();
  if (codec == nullptr || payload == nullptr) {
    // Span-only fallback: no shared cache on this medium.
    if (payload != nullptr) on_datagram(from, std::span(*payload));
    return;
  }
  try {
    const wire::Frame frame = wire::Frame::decode(*payload);
    std::unique_ptr<Tuple> tuple;
    if (frame.kind == wire::FrameKind::kTuple) {
      // Decode-once: the first receiver of this transmission parses the
      // body into an immutable prototype and caches it under the shared
      // buffer's identity; every other receiver clones the prototype.
      auto prototype =
          std::static_pointer_cast<const Tuple>(codec->lookup(payload));
      if (prototype == nullptr) {
        prototype = std::shared_ptr<const Tuple>(
            parse_tuple_body(frame.tuple_body));
        codec->remember(payload, prototype);
      }
      tuple = prototype->clone();
    }
    dispatch(from, frame, std::move(tuple));
  } catch (const wire::DecodeError&) {
    note_decode_failure();
  } catch (const wire::UnknownTypeError&) {
    note_decode_failure();
  }
}

}  // namespace tota
