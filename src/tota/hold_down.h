// HoldDownTable — the anti-count-to-infinity window of self-maintenance.
//
// After retracting a replica, a node refuses to reinstall the same tuple
// at a hop value >= the removed one until the hold-down elapses (strictly
// better values — a genuinely shorter path — pass immediately).  The
// engine arms an entry at retraction and schedules an expiry check for
// hold-down duration later; if the entry is still due at that instant
// (a newer retraction may have re-armed it further out), the engine
// broadcasts the PROBE that asks surviving justified holders to
// re-announce.  See engine.h for how the three mechanisms compose.
#pragma once

#include <unordered_map>

#include "common/clock.h"
#include "common/ids.h"

namespace tota {

class HoldDownTable {
 public:
  /// Arms (or re-arms, pushing the expiry out) the hold-down for `uid`:
  /// until `until`, reinstalls at hop >= `removed_hop` are refused.
  void arm(const TupleUid& uid, SimTime until, int removed_hop);

  /// Ends the hold early — a strictly better value was installed.
  void disarm(const TupleUid& uid);

  /// True while a reinstall of `uid` at `hop` must wait.
  [[nodiscard]] bool blocks(const TupleUid& uid, int hop, SimTime now) const;

  /// The expiry check: when `uid`'s entry exists and is due at `now`,
  /// removes it and returns true (the caller then probes the
  /// neighbourhood); returns false when a re-arm pushed the expiry out
  /// or the entry is already gone.
  bool expire(const TupleUid& uid, SimTime now);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    SimTime until;
    int removed_hop;
  };

  std::unordered_map<TupleUid, Entry> entries_;
};

}  // namespace tota
