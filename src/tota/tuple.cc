#include "tota/tuple.h"

namespace tota {

bool Tuple::decide_enter(const Context&) { return true; }

void Tuple::change_content(const Context&) {}

bool Tuple::decide_store(const Context&) { return true; }

bool Tuple::decide_propagate(const Context&) { return true; }

bool Tuple::supersedes(const Tuple&) const { return false; }

void Tuple::apply_effects(const Context&) {}

bool Tuple::maintained() const { return true; }

void Tuple::encode(wire::Writer& w) const {
  w.string(type_tag());
  w.uvarint(uid_.origin().value());
  w.uvarint(uid_.sequence());
  w.svarint(hop_);
  access_.encode(w);
  content_.encode(w);
  encode_extra(w);
}

std::unique_ptr<Tuple> Tuple::decode(wire::Reader& r) {
  const std::string tag = r.string();
  auto tuple = tuple_registry().create(tag);
  const NodeId origin{r.uvarint()};
  const std::uint64_t seq = r.uvarint();
  tuple->uid_ = TupleUid{origin, seq};
  const std::int64_t hop = r.svarint();
  if (hop < 0 || hop > (1 << 24)) throw wire::DecodeError("bad hop count");
  tuple->hop_ = static_cast<int>(hop);
  tuple->access_ = AccessPolicy::decode(r);
  tuple->content_ = wire::Record::decode(r);
  tuple->decode_extra(r);
  return tuple;
}

std::unique_ptr<Tuple> Tuple::clone() const {
  // Fallback for subclasses without a copy-construction override:
  // round-tripping through the wire format guarantees the copy is exactly
  // what a remote node would see and keeps subclasses free of clone code.
  wire::Writer w;
  encode(w);
  const auto bytes = w.take();
  wire::Reader r(bytes);
  auto copy = decode(r);
  r.expect_done();
  return copy;
}

std::string Tuple::str() const {
  return type_tag() + "[" + to_string(uid_) + " hop=" + std::to_string(hop_) +
         "] " + content_.str();
}

void Tuple::encode_extra(wire::Writer&) const {}

void Tuple::decode_extra(wire::Reader&) {}

wire::TypeRegistry<Tuple>& tuple_registry() {
  static wire::TypeRegistry<Tuple> registry;
  return registry;
}

}  // namespace tota
