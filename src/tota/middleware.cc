#include "tota/middleware.h"

namespace tota {

Middleware::Middleware(NodeId self, Platform& platform,
                       MaintenanceOptions maintenance, obs::Hub* hub)
    : platform_(platform),
      engine_(self, platform, space_, bus_, maintenance, hub) {
  // The space/bus record their space.*/bus.* instruments next to the
  // engine's, on the same hub.
  obs::Hub& h = hub != nullptr ? *hub : obs::default_hub();
  space_.bind_metrics(h.metrics);
  bus_.bind_metrics(h.metrics);
  // Every store mutation feeds the bus's continuous queries (O(1) when
  // none are registered).
  space_.set_listener(
      [this](TupleSpace::ChangeKind kind, const TupleSpace::Entry& entry) {
        EventBus::SpaceChange change = EventBus::SpaceChange::kStored;
        switch (kind) {
          case TupleSpace::ChangeKind::kInserted:
            change = EventBus::SpaceChange::kStored;
            break;
          case TupleSpace::ChangeKind::kReplaced:
            change = EventBus::SpaceChange::kReplaced;
            break;
          case TupleSpace::ChangeKind::kErased:
            change = EventBus::SpaceChange::kErased;
            break;
        }
        bus_.notify_space(change, entry.type_tag, *entry.tuple, entry.parent,
                          entry.propagated, platform_.now());
      });
}

TupleUid Middleware::inject(std::unique_ptr<Tuple> tuple) {
  return engine_.inject(std::move(tuple));
}

std::vector<std::unique_ptr<Tuple>> Middleware::read(
    const Pattern& pattern) const {
  // The access filter runs inside the space's match loop, so denied
  // tuples are never cloned.
  return space_.read(pattern, [this](const Tuple& t) {
    return t.permits(AccessOp::kObserve, self());
  });
}

std::unique_ptr<Tuple> Middleware::read_one(const Pattern& pattern) const {
  // Early-exits at the first observable match instead of materializing
  // the full match set.
  return space_.read_one(pattern, [this](const Tuple& t) {
    return t.permits(AccessOp::kObserve, self());
  });
}

std::vector<std::unique_ptr<Tuple>> Middleware::take(const Pattern& pattern) {
  // Only extractable tuples leave the space; protected matches stay put.
  std::vector<TupleUid> uids;
  for (const Tuple* t : space_.peek(pattern)) {
    if (t->permits(AccessOp::kExtract, self())) uids.push_back(t->uid());
  }
  std::vector<std::unique_ptr<Tuple>> out;
  out.reserve(uids.size());
  for (const TupleUid& uid : uids) out.push_back(space_.erase(uid));
  return out;
}

SubscriptionId Middleware::subscribe(Pattern pattern,
                                     EventBus::Reaction reaction,
                                     int kind_filter) {
  return bus_.subscribe(std::move(pattern), std::move(reaction), kind_filter);
}

QueryId Middleware::subscribe_query(Pattern pattern,
                                    EventBus::QueryCallback on_delta) {
  const Pattern seed = pattern;  // replay needs it after the bus takes it
  const QueryId id = bus_.subscribe_query(
      std::move(pattern), std::move(on_delta), [this](const Tuple& t) {
        return t.permits(AccessOp::kObserve, self());
      });
  // Replay: admit every currently-stored match (uid order), so the
  // caller's view starts complete before incremental deltas take over.
  space_.for_matching(seed, [&](const TupleSpace::Entry& entry) {
    bus_.seed_query(id, entry.type_tag, *entry.tuple, entry.parent,
                    entry.propagated, platform_.now());
    return true;
  });
  return id;
}

void Middleware::unsubscribe_query(QueryId id) { bus_.unsubscribe_query(id); }

void Middleware::unsubscribe(SubscriptionId id) { bus_.unsubscribe(id); }

void Middleware::unsubscribe(const Pattern& pattern) {
  bus_.unsubscribe(pattern);
}

void Middleware::on_datagram(NodeId from,
                             std::span<const std::uint8_t> payload) {
  engine_.on_datagram(from, payload);
}

void Middleware::on_datagram(NodeId from,
                             std::shared_ptr<const wire::Bytes> payload) {
  engine_.on_datagram(from, std::move(payload));
}

void Middleware::on_neighbor_up(NodeId neighbor) {
  engine_.on_neighbor_up(neighbor);
  const PresenceTuple presence(neighbor, /*up=*/true);
  bus_.publish(Event{EventKind::kNeighborUp, &presence, platform_.now()});
}

void Middleware::on_neighbor_down(NodeId neighbor) {
  engine_.on_neighbor_down(neighbor);
  const PresenceTuple presence(neighbor, /*up=*/false);
  bus_.publish(Event{EventKind::kNeighborDown, &presence, platform_.now()});
}

}  // namespace tota
