#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace tota {

void Summary::add(double value) {
  samples_.push_back(value);
  sum_ += value;
  sum_sq_ += value * value;
  sorted_valid_ = false;
}

double Summary::min() const {
  if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::mean() const {
  if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
  return sum_ / static_cast<double>(samples_.size());
}

double Summary::stddev() const {
  const auto n = static_cast<double>(samples_.size());
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  const double var = (sum_sq_ - n * m * m) / (n - 1.0);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

void Summary::ensure_sorted() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double Summary::quantile(double q) const {
  if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted_.size())));
  return sorted_[rank == 0 ? 0 : rank - 1];
}

std::string Summary::str() const {
  if (samples_.empty()) return "n=0";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.3f sd=%.3f p50=%.3f p95=%.3f min=%.3f max=%.3f",
                count(), mean(), stddev(), quantile(0.5), quantile(0.95),
                min(), max());
  return buf;
}

void Counters::add(const std::string& name, std::int64_t delta) {
  counters_[name] += delta;
}

std::int64_t Counters::get(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void Counters::reset() { counters_.clear(); }

std::string Series::str() const {
  std::string out;
  for (const auto& p : points_) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s: x=%.4g y=%.4g\n", name_.c_str(), p.x,
                  p.y);
    out += buf;
  }
  return out;
}

}  // namespace tota
