// Tiny levelled logger.
//
// Benchmarks run with the logger disabled (kOff); tests that want to
// assert on diagnostics can install a capture sink.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace tota {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

/// Global log configuration.  Not thread-safe by design: the simulator is
/// single-threaded (one deterministic event loop).
class Log {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static LogLevel level();
  static void set_level(LogLevel level);

  /// Replaces the output sink (default: stderr).  Pass nullptr to restore
  /// the default.
  static void set_sink(Sink sink);

  static void write(LogLevel level, const std::string& message);

  static const char* level_name(LogLevel level);
};

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Log::write(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace tota

#define TOTA_LOG(level)                        \
  if (::tota::Log::level() > (level)) {        \
  } else                                       \
    ::tota::detail::LogLine(level)

#define TOTA_TRACE() TOTA_LOG(::tota::LogLevel::kTrace)
#define TOTA_DEBUG() TOTA_LOG(::tota::LogLevel::kDebug)
#define TOTA_INFO() TOTA_LOG(::tota::LogLevel::kInfo)
#define TOTA_WARN() TOTA_LOG(::tota::LogLevel::kWarn)
#define TOTA_ERROR() TOTA_LOG(::tota::LogLevel::kError)
