#include "common/rng.h"

#include <cmath>
#include <numbers>

namespace tota {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  // Lemire-style rejection-free multiply-shift with a correction loop to
  // remove modulo bias.
  __uint128_t m = static_cast<__uint128_t>((*this)()) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      m = static_cast<__uint128_t>((*this)()) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 == 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::exponential(double mean) {
  double u = uniform();
  while (u == 0.0) u = uniform();
  return -mean * std::log(u);
}

Rng Rng::fork() { return Rng((*this)()); }

Rng Rng::stream(std::uint64_t seed, std::uint64_t stream) {
  // Two SplitMix64 rounds over (seed, stream): the first whitens the seed
  // (so stream 0 is not Rng(seed) itself), the second folds the stream
  // index in.  Pure function of its arguments — no generator state is
  // consumed, so the streams of one family can be created in any order.
  std::uint64_t sm = seed;
  sm = splitmix64(sm) ^ stream;
  return Rng(splitmix64(sm));
}

}  // namespace tota
