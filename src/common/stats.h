// Lightweight statistics collection for experiments and benchmarks.
//
// Counter  — named monotonically increasing tallies (e.g. radio sends).
// Summary  — running min/max/mean/stddev plus exact quantiles on demand.
// Series   — (x, y) samples for printing a figure's data line.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tota {

/// Running summary of a stream of doubles.  Keeps all samples so exact
/// quantiles can be reported; experiment sample counts are small (<=1e6).
class Summary {
 public:
  void add(double value);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double sum() const { return sum_; }
  /// Exact quantile via nearest-rank on the sorted samples; q in [0,1].
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }

  /// "n=… mean=… p50=… p95=… max=…" for experiment output.
  [[nodiscard]] std::string str() const;

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = true;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

/// Named counters, used by the simulator to tally radio transmissions,
/// deliveries, drops, and by the middleware for propagation bookkeeping.
class Counters {
 public:
  void add(const std::string& name, std::int64_t delta = 1);
  [[nodiscard]] std::int64_t get(const std::string& name) const;
  void reset();
  [[nodiscard]] const std::map<std::string, std::int64_t>& all() const {
    return counters_;
  }

 private:
  std::map<std::string, std::int64_t> counters_;
};

/// An (x, y) data series; one per plotted line of a reproduced figure.
class Series {
 public:
  explicit Series(std::string name) : name_(std::move(name)) {}

  void add(double x, double y) { points_.push_back({x, y}); }

  struct Point {
    double x;
    double y;
  };

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Point>& points() const { return points_; }

  /// Prints "name: x=… y=…" rows, one per point.
  [[nodiscard]] std::string str() const;

 private:
  std::string name_;
  std::vector<Point> points_;
};

}  // namespace tota
