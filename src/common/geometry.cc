#include "common/geometry.h"

#include <algorithm>
#include <cstdio>

namespace tota {

Vec2 Rect::clamp(Vec2 p) const {
  return {std::clamp(p.x, min.x, max.x), std::clamp(p.y, min.y, max.y)};
}

std::string to_string(Vec2 v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "(%.2f, %.2f)", v.x, v.y);
  return buf;
}

}  // namespace tota
