// Simulated-time types.
//
// The discrete-event simulator advances a virtual clock measured in
// microseconds.  Using an integral representation keeps event ordering
// exact (no floating-point ties) and makes runs reproducible.
#pragma once

#include <cstdint>
#include <string>

namespace tota {

/// A point in simulated time, in microseconds since simulation start.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t micros) : micros_(micros) {}

  static constexpr SimTime zero() { return SimTime(0); }
  static constexpr SimTime from_seconds(double s) {
    return SimTime(static_cast<std::int64_t>(s * 1e6));
  }
  static constexpr SimTime from_millis(double ms) {
    return SimTime(static_cast<std::int64_t>(ms * 1e3));
  }

  [[nodiscard]] constexpr std::int64_t micros() const { return micros_; }
  [[nodiscard]] constexpr double seconds() const { return micros_ * 1e-6; }
  [[nodiscard]] constexpr double millis() const { return micros_ * 1e-3; }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  constexpr SimTime operator+(SimTime other) const {
    return SimTime(micros_ + other.micros_);
  }
  constexpr SimTime operator-(SimTime other) const {
    return SimTime(micros_ - other.micros_);
  }
  constexpr SimTime& operator+=(SimTime other) {
    micros_ += other.micros_;
    return *this;
  }
  constexpr SimTime operator*(double k) const {
    return SimTime(static_cast<std::int64_t>(static_cast<double>(micros_) * k));
  }

 private:
  std::int64_t micros_ = 0;
};

inline std::string to_string(SimTime t) {
  return std::to_string(t.seconds()) + "s";
}

}  // namespace tota
