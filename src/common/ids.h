// Strongly-typed identifiers used throughout the TOTA middleware and the
// network simulator.
//
// The paper identifies each tuple with "a unique number relative to each
// node (i.e., the MAC address) together with a progressive counter for all
// the tuples injected by the node" (Sec. 4.1).  NodeId plays the role of
// the MAC address; TupleUid is the (node, counter) pair.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace tota {

/// Identifier of a network node (the simulator's stand-in for a MAC
/// address).  Value 0 is reserved as "invalid / no node".
class NodeId {
 public:
  constexpr NodeId() = default;
  constexpr explicit NodeId(std::uint64_t value) : value_(value) {}

  [[nodiscard]] constexpr std::uint64_t value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != 0; }

  friend constexpr auto operator<=>(NodeId, NodeId) = default;

 private:
  std::uint64_t value_ = 0;
};

/// Returns "node:<n>" for logs and traces.
std::string to_string(NodeId id);

/// Middleware-level unique identifier of a distributed tuple: the injecting
/// node plus a per-node monotonically increasing sequence number.  Invisible
/// at the application level; used by the engine to deduplicate and update
/// tuple replicas during propagation.
class TupleUid {
 public:
  constexpr TupleUid() = default;
  constexpr TupleUid(NodeId origin, std::uint64_t sequence)
      : origin_(origin), sequence_(sequence) {}

  [[nodiscard]] constexpr NodeId origin() const { return origin_; }
  [[nodiscard]] constexpr std::uint64_t sequence() const { return sequence_; }
  [[nodiscard]] constexpr bool valid() const { return origin_.valid(); }

  friend constexpr auto operator<=>(const TupleUid&, const TupleUid&) =
      default;

 private:
  NodeId origin_;
  std::uint64_t sequence_ = 0;
};

/// Returns "tuple:<node>/<seq>".
std::string to_string(const TupleUid& uid);

}  // namespace tota

template <>
struct std::hash<tota::NodeId> {
  std::size_t operator()(tota::NodeId id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};

template <>
struct std::hash<tota::TupleUid> {
  std::size_t operator()(const tota::TupleUid& uid) const noexcept {
    // 64-bit mix of the two components; good enough for hash containers.
    std::uint64_t h = uid.origin().value() * 0x9E3779B97F4A7C15ull;
    h ^= uid.sequence() + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    return std::hash<std::uint64_t>{}(h);
  }
};
