#include "common/ids.h"

namespace tota {

std::string to_string(NodeId id) { return "node:" + std::to_string(id.value()); }

std::string to_string(const TupleUid& uid) {
  return "tuple:" + std::to_string(uid.origin().value()) + "/" +
         std::to_string(uid.sequence());
}

}  // namespace tota
