// Minimal 2-D geometry for node positions, radio ranges and mobility.
//
// The paper grounds tuple propagation in physical space ("a tuple to be
// propagated, say, at most for 10 meters from its source"); positions are
// metres in a flat 2-D arena.
#pragma once

#include <cmath>
#include <string>

namespace tota {

/// A 2-D point / vector in metres.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) {
    return {a.x - b.x, a.y - b.y};
  }
  friend constexpr Vec2 operator*(Vec2 a, double k) {
    return {a.x * k, a.y * k};
  }
  friend constexpr Vec2 operator*(double k, Vec2 a) { return a * k; }
  friend constexpr bool operator==(Vec2 a, Vec2 b) = default;

  Vec2& operator+=(Vec2 o) {
    x += o.x;
    y += o.y;
    return *this;
  }

  [[nodiscard]] double norm() const { return std::hypot(x, y); }
  [[nodiscard]] double norm_sq() const { return x * x + y * y; }

  /// Unit vector in the same direction; returns {0,0} for the zero vector.
  [[nodiscard]] Vec2 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }
};

inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }
inline double distance_sq(Vec2 a, Vec2 b) { return (a - b).norm_sq(); }
inline double dot(Vec2 a, Vec2 b) { return a.x * b.x + a.y * b.y; }

/// Axis-aligned rectangle, used for arena bounds.
struct Rect {
  Vec2 min;
  Vec2 max;

  [[nodiscard]] double width() const { return max.x - min.x; }
  [[nodiscard]] double height() const { return max.y - min.y; }
  [[nodiscard]] bool contains(Vec2 p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }
  /// Clamps p into the rectangle.
  [[nodiscard]] Vec2 clamp(Vec2 p) const;
};

std::string to_string(Vec2 v);

}  // namespace tota
