// Deterministic pseudo-random number generation for simulations.
//
// Every source of randomness in the repository flows through an explicitly
// seeded Rng so that experiments and tests are bit-for-bit reproducible.
// The generator is xoshiro256** seeded via SplitMix64, which is fast,
// high-quality, and has a tiny state compared to std::mt19937_64.
#pragma once

#include <cstdint>
#include <limits>

namespace tota {

/// Deterministic 64-bit PRNG (xoshiro256**).  Satisfies the
/// UniformRandomBitGenerator requirements so it can be used with <random>
/// distributions when needed, but the common cases are provided as methods.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the state from a single 64-bit value via SplitMix64 so that
  /// nearby seeds produce unrelated streams.
  explicit Rng(std::uint64_t seed = 0x853C49E6748FEA9Bull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit value.
  result_type operator()();

  /// Uniform integer in [0, bound).  bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Standard normal deviate (Box-Muller, cached pair).
  double normal();

  /// Exponential deviate with the given mean (> 0).
  double exponential(double mean);

  /// Derives an independent child generator; useful to give each simulated
  /// node its own stream while keeping a single experiment seed.
  Rng fork();

  /// Derives the `stream`-th independent generator of the family rooted at
  /// `seed` *without* consuming any generator state: stream(s, i) depends
  /// only on (s, i).  This is how the sharded simulator splits one
  /// experiment seed into per-shard streams — shard i's stream is the same
  /// whether streams are created eagerly, lazily, or in any order, which
  /// keeps runs deterministic per (seed, shard_count) (docs/SIM.md).
  /// fork(), by contrast, advances the parent and therefore depends on
  /// everything drawn before it.
  static Rng stream(std::uint64_t seed, std::uint64_t stream);

 private:
  std::uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace tota
