// Sharded parallel simulator: one world, N shards, N threads.
//
// sim::Network runs everything through a single EventQueue on one thread,
// which caps worlds at a few thousand nodes.  ShardedSim partitions the
// world *spatially*: the bounding box of all node positions is cut into
// `shards` contiguous vertical strips, each strip owns its nodes and runs
// them on its own thread with its own EventQueue, its own Rng stream
// (Rng::stream(seed, shard)), its own obs::Hub, and its own decode-once
// FrameCodec.  Radio interaction is local — a broadcast reaches only
// nodes within range — so a frame can cross a shard boundary no earlier
// than the radio's minimum one-hop latency.  That bound is the
// *conservative lookahead*: shards advance in lock-stepped epochs no
// longer than the lookahead, exchanging boundary-crossing deliveries
// ("mail") at the barrier between epochs, and no shard can ever receive
// an event in its past.  docs/SIM.md develops the full argument.
//
// Determinism contract: runs are bit-for-bit reproducible per
// (seed, shard_count).  Within an epoch each shard is a sequential
// deterministic simulator over private state; the only shared data is
// the Topology, which is immutable while shards run (population and
// moves are quiescent-point operations), and the mail outboxes, which
// are single-writer and drained between epochs in fixed shard order.
// Changing the shard count re-partitions the Rng streams, so it changes
// the exact event timings — but not the converged TOTA state, which
// tests/test_shard.cc pins against the BFS oracle for 1/2/4 shards.
//
// What ShardedSim deliberately does not do (use sim::Network instead):
// mobility models, wired mode, fault injection, despawn.  Population is
// frozen at seal(); churn is expressed with move_node() at quiescent
// points, exactly like the emulator's drag-and-drop teleports.
#pragma once

#include <barrier>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/geometry.h"
#include "common/ids.h"
#include "common/rng.h"
#include "net/device_profile.h"
#include "obs/hub.h"
#include "sim/event_queue.h"
#include "sim/node.h"
#include "sim/radio.h"
#include "sim/topology.h"
#include "wire/buffer.h"
#include "wire/frame.h"

namespace tota::sim {

struct ShardedParams {
  RadioParams radio;
  /// Latency between a topology change and the neighbour-up/down upcall.
  SimTime link_detect_delay = SimTime::zero();
  std::uint64_t seed = 1;
  /// Shard (= worker thread) count.  1 = sequential, no threads, no
  /// barriers — the degenerate case used by the scaling curve's baseline.
  /// With more than one shard, radio.base_delay must be >= 1 µs: it is
  /// the conservative lookahead bound.
  std::uint32_t shards = 1;
};

class ShardedSim {
 public:
  explicit ShardedSim(ShardedParams params);
  ~ShardedSim();

  ShardedSim(const ShardedSim&) = delete;
  ShardedSim& operator=(const ShardedSim&) = delete;

  // --- population (build phase) -----------------------------------------

  /// Adds a node.  Only valid before seal(); the sharded world's
  /// population is frozen once the partition is computed.
  NodeId add_node(Vec2 position);

  /// Freezes the population: computes the strip partition and node
  /// ownership, snapshots every node's neighbour set, schedules the
  /// initial link-up upcalls, and (for shards > 1) starts the worker
  /// threads.  Idempotent; run_until() calls it on first use.
  void seal();
  [[nodiscard]] bool sealed() const { return sealed_; }

  /// Installs / removes the software stack of a node (not owned).
  void attach(NodeId id, Host* host);
  void detach(NodeId id);

  // --- topology (quiescent points only) ---------------------------------

  /// Teleports a node; link up/down upcalls fire after link_detect_delay.
  /// Ownership is static — the node keeps its home shard wherever it
  /// moves, which preserves determinism and costs only cross-shard mail.
  /// Must be called between run_until() calls (never from node code).
  void move_node(NodeId id, Vec2 position);

  /// Attaches a hardware profile (net/device_profile.h); quiescent points
  /// only — profiles are read concurrently by shard threads during
  /// epochs.  tx_delay_scale must be >= 1.0 when shards > 1 (it would
  /// undercut the conservative lookahead).  Worlds that never set a
  /// profile keep the exact pre-profile Rng streams.
  void set_profile(NodeId id, net::DeviceProfile profile);
  [[nodiscard]] const net::DeviceProfile& profile(NodeId id) const;

  // --- node-side services (used by emu::ShardPlatform) ------------------

  /// One-hop broadcast.  Same-shard receivers are scheduled directly;
  /// receivers owned by other shards become outbox mail exchanged at the
  /// next epoch barrier.  Loss and latency are drawn from the *sender's*
  /// shard stream.
  void broadcast(NodeId from, wire::Bytes payload);

  /// Timer on the owning shard's queue (safe from that shard's thread
  /// and from quiescent points).
  EventId schedule(NodeId id, SimTime delay, EventQueue::Action action);
  void cancel(NodeId id, EventId event);

  /// The owning shard's clock (== global time at quiescent points).
  [[nodiscard]] SimTime node_now(NodeId id) const;
  /// The owning shard's Rng stream (per-node Rngs fork from this during
  /// the build phase).
  [[nodiscard]] Rng& shard_rng(NodeId id);
  /// The owning shard's decode-once cache.
  [[nodiscard]] wire::FrameCodec& frame_codec(NodeId id);
  /// The owning shard's metrics/trace hub (what a node's Middleware
  /// should record into).
  [[nodiscard]] obs::Hub& shard_hub(NodeId id);
  [[nodiscard]] Vec2 position(NodeId id) const {
    return topology_.position(id);
  }

  // --- time (driver thread, quiescent) ----------------------------------

  [[nodiscard]] SimTime now() const;
  void run_until(SimTime deadline);
  void run_for(SimTime duration) { run_until(now() + duration); }

  // --- introspection ----------------------------------------------------

  [[nodiscard]] const Topology& topology() const { return topology_; }
  [[nodiscard]] std::uint32_t shard_count() const;
  /// Owner shard of a node (valid after seal()).
  [[nodiscard]] std::uint32_t shard_of(NodeId id) const;
  [[nodiscard]] std::vector<NodeId> nodes() const { return topology_.nodes(); }
  /// Current maintained neighbour set (sorted); ground truth, identical
  /// to topology().neighbors(id) between quiescent-point updates.
  [[nodiscard]] const std::vector<NodeId>& neighbors(NodeId id) const;
  [[nodiscard]] const ShardedParams& params() const { return params_; }

  /// Merges every shard hub's metrics (in shard order — deterministic)
  /// and then the coordinator's sim.shard.* metrics into `into`.
  void export_metrics(obs::MetricsRegistry& into) const;

 private:
  /// A cross-shard delivery buffered until the next epoch barrier.
  struct Mail {
    SimTime when;  // absolute land time (>= the barrier it crosses)
    NodeId from;
    NodeId to;
    std::shared_ptr<const wire::Bytes> payload;
  };

  /// Everything one worker thread owns.  Only the outboxes are ever read
  /// by another thread, and only between epochs (barrier-synchronised).
  struct Shard {
    Shard(std::uint32_t index, std::uint32_t total, std::uint64_t seed);

    std::uint32_t index;
    EventQueue events;
    Rng rng;
    obs::Hub hub;  // must precede codec (codec registers counters in it)
    wire::FrameCodec codec;
    /// outbox[d]: mail for shard d generated during the current epoch.
    std::vector<std::vector<Mail>> outbox;
    obs::Counter& radio_tx;
    obs::Counter& radio_tx_bytes;
    obs::Counter& radio_rx;
    obs::Counter& radio_lost;
    obs::Counter& link_up;
    obs::Counter& link_down;
    obs::Counter& mail_out;
    obs::Counter& mtu_drop;
    obs::Counter& duty_drop;
  };

  struct NodeState {
    std::uint32_t owner = 0;
    Host* host = nullptr;
    std::vector<NodeId> neighbors;  // sorted
  };

  [[nodiscard]] NodeState& state(NodeId id) { return nodes_[id.value()]; }
  [[nodiscard]] const NodeState& state(NodeId id) const {
    return nodes_[id.value()];
  }
  [[nodiscard]] Shard& shard_of_node(NodeId id) {
    return *shards_[state(id).owner];
  }

  void deliver(NodeId from, NodeId to,
               std::shared_ptr<const wire::Bytes> payload);
  /// Drains every outbox into the destination queues in fixed
  /// (destination, source) shard order.  Quiescent points only.
  void ingest_mail();
  void notify_link(NodeId node, NodeId neighbor, bool up);
  void worker(std::uint32_t index);

  ShardedParams params_;
  Radio radio_;
  Topology topology_;
  std::vector<NodeState> nodes_;  // indexed by NodeId value; slot 0 unused
  /// Per-node hardware profiles; absent = full-power default.  Mutated
  /// only at quiescent points, read concurrently (read-only) by shard
  /// threads during epochs.
  std::unordered_map<NodeId, net::DeviceProfile> profiles_;
  std::uint64_t next_node_ = 1;
  bool sealed_ = false;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Coordinator-side observability (merged after the shard hubs).
  obs::Hub hub_;
  obs::Counter& epochs_;
  obs::Counter& barrier_waits_;

  // Parallel epoch engine (shards > 1 only).  epoch_end_ is written by
  // the driver before it arrives at epoch_start_, and the barrier's
  // completion orders that write before any worker reads it.
  SimTime epoch_end_{};
  bool stop_ = false;
  std::unique_ptr<std::barrier<>> epoch_start_;
  std::unique_ptr<std::barrier<>> epoch_done_;
  std::vector<std::thread> workers_;
};

}  // namespace tota::sim
