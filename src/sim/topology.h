// Topology: node positions and disc-graph neighbourhoods.
//
// Keeps per-node positions and computes the neighbour sets induced by the
// radio range.  Recomputation uses a uniform grid hash with cell size equal
// to the range, so each query touches only the 9 surrounding cells.
// Ground-truth graph queries (BFS hop distance, connectivity) live here
// too: tests and benchmarks compare TOTA's distributed structures against
// these oracle values.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/geometry.h"
#include "common/ids.h"

namespace tota::sim {

class Topology {
 public:
  /// Neighbourhood semantics (paper §4.1): in an ad-hoc network the
  /// neighbourhood is "the range of the wireless link" (kDisc); "in a
  /// wired scenario like the Internet" it is addressability — an explicit
  /// set of links managed by add_link/remove_link (kExplicit).
  enum class Mode { kDisc, kExplicit };

  explicit Topology(double range_m, Mode mode = Mode::kDisc)
      : range_(range_m), mode_(mode) {}

  [[nodiscard]] Mode mode() const { return mode_; }

  void add(NodeId id, Vec2 position);
  void remove(NodeId id);
  void move(NodeId id, Vec2 position);

  /// Explicit-mode link management; symmetric, idempotent.  Throws in
  /// disc mode or for unknown nodes.
  void add_link(NodeId a, NodeId b);
  void remove_link(NodeId a, NodeId b);

  [[nodiscard]] bool contains(NodeId id) const {
    return positions_.count(id) > 0;
  }
  [[nodiscard]] Vec2 position(NodeId id) const;
  [[nodiscard]] std::size_t size() const { return positions_.size(); }
  [[nodiscard]] std::vector<NodeId> nodes() const;
  [[nodiscard]] double range() const { return range_; }

  /// Nodes within radio range of `id` (excluding `id`), sorted by id for
  /// determinism.
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId id) const;

  /// Nodes within radio range of an arbitrary point.
  [[nodiscard]] std::vector<NodeId> in_range(Vec2 point) const;

  /// Axis-aligned bounding box of all node positions (a zero-area Rect
  /// for a single node).  Throws when the topology is empty.  The sharded
  /// simulator partitions this box into per-shard strips (docs/SIM.md).
  [[nodiscard]] Rect bounding_box() const;

  /// Oracle: minimum hop count from `from` to `to` over the disc graph;
  /// nullopt when disconnected.
  [[nodiscard]] std::optional<int> hop_distance(NodeId from, NodeId to) const;

  /// Oracle: hop distance from `from` to every reachable node.
  [[nodiscard]] std::unordered_map<NodeId, int> hop_distances(
      NodeId from) const;

  /// Oracle: true when every node is reachable from every other.
  [[nodiscard]] bool connected() const;

 private:
  struct CellKey {
    std::int64_t cx;
    std::int64_t cy;
    friend bool operator==(CellKey, CellKey) = default;
  };
  struct CellHash {
    std::size_t operator()(CellKey k) const {
      return std::hash<std::int64_t>{}(k.cx * 73856093 ^ k.cy * 19349663);
    }
  };

  [[nodiscard]] CellKey cell_of(Vec2 p) const;
  void unindex(NodeId id, Vec2 p);
  void index(NodeId id, Vec2 p);

  double range_;
  Mode mode_;
  std::unordered_map<NodeId, Vec2> positions_;
  std::unordered_map<CellKey, std::vector<NodeId>, CellHash> grid_;
  /// Explicit-mode adjacency.
  std::unordered_map<NodeId, std::unordered_set<NodeId>> links_;
};

}  // namespace tota::sim
