#include "sim/topology.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>

namespace tota::sim {

Topology::CellKey Topology::cell_of(Vec2 p) const {
  return {static_cast<std::int64_t>(std::floor(p.x / range_)),
          static_cast<std::int64_t>(std::floor(p.y / range_))};
}

void Topology::index(NodeId id, Vec2 p) { grid_[cell_of(p)].push_back(id); }

void Topology::unindex(NodeId id, Vec2 p) {
  auto it = grid_.find(cell_of(p));
  if (it == grid_.end()) return;
  auto& cell = it->second;
  cell.erase(std::remove(cell.begin(), cell.end(), id), cell.end());
  if (cell.empty()) grid_.erase(it);
}

void Topology::add(NodeId id, Vec2 position) {
  if (contains(id)) throw std::invalid_argument("duplicate node id");
  positions_.emplace(id, position);
  index(id, position);
}

void Topology::remove(NodeId id) {
  const auto it = positions_.find(id);
  if (it == positions_.end()) return;
  unindex(id, it->second);
  positions_.erase(it);
  const auto links = links_.find(id);
  if (links != links_.end()) {
    for (const NodeId other : links->second) links_[other].erase(id);
    links_.erase(links);
  }
}

void Topology::add_link(NodeId a, NodeId b) {
  if (mode_ != Mode::kExplicit) {
    throw std::logic_error("add_link requires explicit topology mode");
  }
  if (!contains(a) || !contains(b)) {
    throw std::invalid_argument("unknown node id");
  }
  if (a == b) throw std::invalid_argument("self links are not allowed");
  links_[a].insert(b);
  links_[b].insert(a);
}

void Topology::remove_link(NodeId a, NodeId b) {
  if (mode_ != Mode::kExplicit) {
    throw std::logic_error("remove_link requires explicit topology mode");
  }
  const auto it = links_.find(a);
  if (it != links_.end()) it->second.erase(b);
  const auto jt = links_.find(b);
  if (jt != links_.end()) jt->second.erase(a);
}

void Topology::move(NodeId id, Vec2 position) {
  auto it = positions_.find(id);
  if (it == positions_.end()) throw std::invalid_argument("unknown node id");
  if (cell_of(it->second) != cell_of(position)) {
    unindex(id, it->second);
    index(id, position);
  }
  it->second = position;
}

Vec2 Topology::position(NodeId id) const {
  const auto it = positions_.find(id);
  if (it == positions_.end()) throw std::invalid_argument("unknown node id");
  return it->second;
}

std::vector<NodeId> Topology::nodes() const {
  std::vector<NodeId> out;
  out.reserve(positions_.size());
  for (const auto& [id, _] : positions_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> Topology::in_range(Vec2 point) const {
  std::vector<NodeId> out;
  const CellKey c = cell_of(point);
  const double r2 = range_ * range_;
  for (std::int64_t dx = -1; dx <= 1; ++dx) {
    for (std::int64_t dy = -1; dy <= 1; ++dy) {
      const auto it = grid_.find(CellKey{c.cx + dx, c.cy + dy});
      if (it == grid_.end()) continue;
      for (const NodeId other : it->second) {
        if (distance_sq(positions_.at(other), point) <= r2) {
          out.push_back(other);
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> Topology::neighbors(NodeId id) const {
  if (mode_ == Mode::kExplicit) {
    if (!contains(id)) throw std::invalid_argument("unknown node id");
    const auto it = links_.find(id);
    if (it == links_.end()) return {};
    std::vector<NodeId> out(it->second.begin(), it->second.end());
    std::sort(out.begin(), out.end());
    return out;
  }
  auto out = in_range(position(id));
  out.erase(std::remove(out.begin(), out.end(), id), out.end());
  return out;
}

Rect Topology::bounding_box() const {
  if (positions_.empty()) {
    throw std::logic_error("bounding_box() of an empty topology");
  }
  auto it = positions_.begin();
  Rect box{it->second, it->second};
  for (++it; it != positions_.end(); ++it) {
    const Vec2 p = it->second;
    box.min.x = std::min(box.min.x, p.x);
    box.min.y = std::min(box.min.y, p.y);
    box.max.x = std::max(box.max.x, p.x);
    box.max.y = std::max(box.max.y, p.y);
  }
  return box;
}

std::unordered_map<NodeId, int> Topology::hop_distances(NodeId from) const {
  std::unordered_map<NodeId, int> dist;
  if (!contains(from)) return dist;
  std::deque<NodeId> frontier{from};
  dist[from] = 0;
  while (!frontier.empty()) {
    const NodeId cur = frontier.front();
    frontier.pop_front();
    for (const NodeId next : neighbors(cur)) {
      if (dist.count(next)) continue;
      dist[next] = dist[cur] + 1;
      frontier.push_back(next);
    }
  }
  return dist;
}

std::optional<int> Topology::hop_distance(NodeId from, NodeId to) const {
  if (!contains(from) || !contains(to)) return std::nullopt;
  if (from == to) return 0;
  // Same BFS as hop_distances, but stops as soon as `to` is labelled
  // instead of exhausting the component.
  std::unordered_map<NodeId, int> dist;
  std::deque<NodeId> frontier{from};
  dist[from] = 0;
  while (!frontier.empty()) {
    const NodeId cur = frontier.front();
    frontier.pop_front();
    for (const NodeId next : neighbors(cur)) {
      if (dist.count(next)) continue;
      dist[next] = dist[cur] + 1;
      if (next == to) return dist[next];
      frontier.push_back(next);
    }
  }
  return std::nullopt;
}

bool Topology::connected() const {
  if (positions_.empty()) return true;
  const NodeId first = positions_.begin()->first;
  return hop_distances(first).size() == positions_.size();
}

}  // namespace tota::sim
