// Node mobility models.
//
// The paper exercises TOTA under node movement (users with PDAs, robots,
// drag-and-drop in the emulator).  A MobilityModel integrates a node's
// position over discrete ticks; the network recomputes neighbourhoods
// after each tick and fires link up/down events.
#pragma once

#include <memory>
#include <optional>

#include "common/clock.h"
#include "common/geometry.h"
#include "common/rng.h"

namespace tota::sim {

/// Per-node movement policy.  step() returns the new position after `dt`.
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  virtual Vec2 step(Vec2 current, SimTime dt, Rng& rng) = 0;
};

/// Never moves.
class StaticMobility final : public MobilityModel {
 public:
  Vec2 step(Vec2 current, SimTime, Rng&) override { return current; }
};

/// Classic random-waypoint: pick a uniform target in the arena, travel at a
/// uniform speed in [min,max], pause, repeat.
class RandomWaypoint final : public MobilityModel {
 public:
  RandomWaypoint(Rect arena, double min_speed_mps, double max_speed_mps,
                 SimTime pause = SimTime::zero());

  Vec2 step(Vec2 current, SimTime dt, Rng& rng) override;

 private:
  Rect arena_;
  double min_speed_;
  double max_speed_;
  SimTime pause_;

  std::optional<Vec2> target_;
  double speed_ = 0.0;
  SimTime pause_left_;
};

/// Travels toward explicit targets at a fixed speed; used to script "drag"
/// scenarios like the paper's emulator UI.  Idle when no target is set.
class WaypointTo final : public MobilityModel {
 public:
  explicit WaypointTo(double speed_mps) : speed_(speed_mps) {}

  void set_target(Vec2 target) { target_ = target; }
  void clear_target() { target_.reset(); }
  [[nodiscard]] bool idle() const { return !target_.has_value(); }

  Vec2 step(Vec2 current, SimTime dt, Rng& rng) override;

 private:
  double speed_;
  std::optional<Vec2> target_;
};

/// Moves with an externally-set velocity; flocking controllers steer nodes
/// by writing this velocity each control period.
class VelocityMobility final : public MobilityModel {
 public:
  explicit VelocityMobility(Rect arena, double max_speed_mps)
      : arena_(arena), max_speed_(max_speed_mps) {}

  void set_velocity(Vec2 v);
  [[nodiscard]] Vec2 velocity() const { return velocity_; }

  Vec2 step(Vec2 current, SimTime dt, Rng& rng) override;

 private:
  Rect arena_;
  double max_speed_;
  Vec2 velocity_;
};

}  // namespace tota::sim
