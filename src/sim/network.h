// The simulated world: nodes, radio, mobility, virtual time.
//
// Single-threaded and deterministic: all activity (frame deliveries,
// middleware timers, mobility ticks) runs through one EventQueue seeded
// from one Rng.  The Network substitutes for the paper's IPAQ testbed and
// Java emulator (see DESIGN.md §3).
#pragma once

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/clock.h"
#include "common/geometry.h"
#include "common/ids.h"
#include "common/rng.h"
#include "net/batch.h"
#include "net/device_profile.h"
#include "net/fault.h"
#include "obs/hub.h"
#include "sim/event_queue.h"
#include "sim/mobility.h"
#include "sim/node.h"
#include "sim/radio.h"
#include "sim/topology.h"
#include "wire/buffer.h"
#include "wire/frame.h"

namespace tota::sim {

struct NetworkParams {
  RadioParams radio;
  /// Wired ("Internet") mode: neighbourhood = explicit links managed with
  /// connect()/disconnect() instead of radio range (paper §4.1 — "in a
  /// wired scenario … the term is not related to the real reachability of
  /// a node, but rather on its addressability").  Radio latency/loss
  /// parameters still shape per-link delivery.
  bool wired = false;
  /// Latency between a topology change and the neighbour-up/down upcall,
  /// modelling beacon-based discovery.  Zero = instantaneous detection.
  SimTime link_detect_delay = SimTime::zero();
  /// Mobility integration period.
  SimTime mobility_tick = SimTime::from_millis(100);
  std::uint64_t seed = 1;
  /// Adversity layer (net::FaultInjector): drop/duplicate/reorder/
  /// truncate/corrupt faults plus scheduled partitions, applied to every
  /// delivery on top of the radio model.  This is the one knob for
  /// injected adversity — `radio.loss_probability` stays the physical
  /// layer's loss.  The default (benign) plan is bypassed entirely, so
  /// behaviour and the Rng stream are bit-for-bit unchanged.
  net::FaultPlan fault;
  /// v2 frame coalescing under the simulated radio (net/batch.h): when
  /// enabled, broadcasts from one node pend as DATA chunks and go on
  /// the air as BATCH datagrams after `batch.flush_delay` — pricing the
  /// radio (loss, MTU, airtime, faults) per *datagram* instead of per
  /// frame, exactly like the live transport.  Disabled (the default)
  /// takes the legacy per-frame path bit-for-bit: same Rng stream, same
  /// committed baselines.
  net::BatchOptions batch;
};

class Network {
 public:
  /// `hub` is where the network records its metrics (radio.tx/rx/…, see
  /// docs/OBSERVABILITY.md); nullptr (the default) gives the network a
  /// private hub, so its counters only ever reflect its own traffic.
  /// A non-null hub must outlive the network.
  explicit Network(NetworkParams params, obs::Hub* hub = nullptr);

  // --- population -------------------------------------------------------

  /// Adds a node at `position`; optionally with a mobility model.
  /// The returned id is stable for the node's lifetime.
  NodeId add_node(Vec2 position,
                  std::unique_ptr<MobilityModel> mobility = nullptr);

  /// Installs the software stack of a node.  `host` is not owned and must
  /// outlive the node (or be detached first).
  void attach(NodeId id, Host* host);
  void detach(NodeId id);

  /// Removes a node (covers both graceful leave and crash: neighbours
  /// observe only link loss either way).
  void remove_node(NodeId id);

  [[nodiscard]] bool alive(NodeId id) const { return topology_.contains(id); }

  // --- geometry & movement ----------------------------------------------

  [[nodiscard]] Vec2 position(NodeId id) const {
    return topology_.position(id);
  }

  /// Teleports a node (the emulator's drag-and-drop); link events fire.
  void move_node(NodeId id, Vec2 position);

  /// Wired-mode link management (throws in radio mode).  A node "knows
  /// the other node's IP address" — link events fire like radio links.
  void connect(NodeId a, NodeId b);
  void disconnect(NodeId a, NodeId b);

  /// Sets the velocity of a node using VelocityMobility; throws otherwise.
  void set_velocity(NodeId id, Vec2 velocity);

  /// Direct access to a node's mobility model (e.g. WaypointTo::set_target).
  [[nodiscard]] MobilityModel* mobility(NodeId id);

  // --- device heterogeneity ---------------------------------------------

  /// Attaches a hardware profile (net/device_profile.h): duty-cycled
  /// radio, per-link MTU, tx latency scaling, gateway flag.  Nodes
  /// without a profile are full-power devices, and a world that never
  /// sets one takes the pre-profile code path bit-for-bit (same Rng
  /// stream, same baselines).
  void set_profile(NodeId id, net::DeviceProfile profile);
  [[nodiscard]] const net::DeviceProfile& profile(NodeId id) const;

  // --- communication ------------------------------------------------------

  /// One-hop broadcast from `from` to every node currently in range.
  /// Counts one "radio.tx" regardless of receiver count (broadcast medium).
  void broadcast(NodeId from, wire::Bytes payload);

  // --- time ----------------------------------------------------------------

  [[nodiscard]] SimTime now() const { return events_.now(); }
  void run_until(SimTime deadline);
  void run_for(SimTime duration) { run_until(now() + duration); }
  EventId schedule(SimTime delay, EventQueue::Action action) {
    return events_.schedule_after(delay, std::move(action));
  }
  void cancel(EventId id) { events_.cancel(id); }

  // --- introspection -------------------------------------------------------

  [[nodiscard]] const Topology& topology() const { return topology_; }
  /// The metrics registry this network records into (shared with the
  /// middleware instances observing the same hub).
  [[nodiscard]] obs::MetricsRegistry& metrics() { return hub_.metrics; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const {
    return hub_.metrics;
  }
  /// Legacy name for metrics() kept for the pre-obs API
  /// (`counters().get("radio.tx")` still reads the radio tallies).
  [[nodiscard]] const obs::MetricsRegistry& counters() const {
    return hub_.metrics;
  }
  /// The full observability hub (metrics + tracer).
  [[nodiscard]] obs::Hub& hub() { return hub_; }
  /// The shared decode-once cache for this medium: broadcast() hands every
  /// receiver the same wire::Bytes object, and stacks attached to this
  /// network key decoded-frame prototypes on that buffer identity.
  [[nodiscard]] wire::FrameCodec& frame_codec() { return frame_codec_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] const NetworkParams& params() const { return params_; }
  [[nodiscard]] std::vector<NodeId> nodes() const { return topology_.nodes(); }

  /// Current (already-notified) neighbour view of a node; this is what the
  /// node's middleware has been told, which can lag ground truth by
  /// link_detect_delay.
  [[nodiscard]] std::vector<NodeId> notified_neighbors(NodeId id) const;

 private:
  struct NodeState {
    Host* host = nullptr;
    std::unique_ptr<MobilityModel> mobility;
    // Neighbour set as last notified to the host.
    std::unordered_set<NodeId> neighbors;
  };

  /// Recomputes neighbour sets after any topology mutation and fires
  /// (possibly delayed) link up/down events.
  void refresh_links();
  void notify_link(NodeId node, NodeId neighbor, bool up);
  void mobility_tick();
  /// Schedules the host upcall for one (possibly fault-damaged) frame.
  void deliver_after(SimTime delay, NodeId from, NodeId to,
                     std::shared_ptr<const wire::Bytes> payload);

  // --- the batching path (params_.batch.enabled) ------------------------
  // A deliberate duplicate of the legacy broadcast/deliver pair rather
  // than a refactor: the legacy path's per-receiver Rng draw sequence is
  // a compatibility contract with the committed bench baselines, and a
  // shared helper would be one accidental reordering away from breaking
  // it.

  /// Queues one engine frame as a DATA chunk of `from`'s next batch and
  /// arms the flush when it is the first pending chunk.
  void enqueue_batch(NodeId from, wire::Bytes payload);
  /// Packs `from`'s pending chunks into BATCH datagrams and transmits
  /// each through the radio model.
  void flush_batch(NodeId from);
  /// The per-receiver loop (loss, MTU, duty, faults) for one BATCH
  /// datagram — the batch analogue of the body of broadcast().
  void transmit_batch(NodeId from, wire::Bytes datagram);
  /// Decodes a received BATCH and delivers its DATA chunks to the host;
  /// fault-corrupted batches count net.frame.bad.
  void deliver_batch_after(SimTime delay, NodeId from, NodeId to,
                           std::shared_ptr<const wire::Bytes> datagram);

  NetworkParams params_;
  std::unique_ptr<obs::Hub> owned_hub_;  // set when constructed hub-less
  obs::Hub& hub_;
  Rng rng_;
  EventQueue events_;
  Topology topology_;
  Radio radio_;
  // Pre-registered handles — the radio hot path never does a name lookup.
  obs::Counter& radio_tx_;
  obs::Counter& radio_tx_bytes_;
  obs::Counter& radio_rx_;
  obs::Counter& radio_lost_;
  obs::Counter& link_up_;
  obs::Counter& link_down_;
  obs::Counter& mtu_drop_;
  obs::Counter& duty_drop_;
  // Registered only when params_.batch.enabled: a batching-off world
  // must not grow new metric keys (committed baselines are
  // byte-compared against the exported registry).
  obs::Counter* batch_tx_ = nullptr;
  obs::Counter* batch_chunks_ = nullptr;
  obs::Counter* batch_flush_ = nullptr;
  obs::Counter* batch_oversize_ = nullptr;
  obs::Counter* frame_bad_ = nullptr;
  wire::FrameCodec frame_codec_;
  /// Chunks awaiting the per-sender batch flush (batching mode only).
  std::unordered_map<NodeId, std::vector<net::EncodedChunk>> batch_pending_;
  /// Per-node hardware profiles; absent = full-power default.  Kept out
  /// of NodeState so the "no profiles anywhere" hot path is one empty()
  /// check.
  std::unordered_map<NodeId, net::DeviceProfile> profiles_;
  std::unordered_map<NodeId, NodeState> nodes_;
  std::uint64_t next_node_ = 1;
  bool mobility_scheduled_ = false;
  /// Channel-level adversity; null when params_.fault is benign (the
  /// common case — the hot path then never touches it).
  std::unique_ptr<tota::Platform> fault_platform_;
  std::unique_ptr<net::FaultInjector> fault_;
};

}  // namespace tota::sim
