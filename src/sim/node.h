// Host interface: what a simulated node's software stack must implement.
//
// The network delivers three kinds of upcalls, mirroring what the TOTA
// prototype gets from its OS/network layer: received datagrams (multicast
// frames from one-hop neighbours), and neighbour appearance/disappearance
// from the low-level "system to continuously detect neighboring nodes"
// the paper describes.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "common/ids.h"
#include "wire/buffer.h"

namespace tota::sim {

class Host {
 public:
  virtual ~Host() = default;

  /// A one-hop broadcast frame from `from` arrived.
  virtual void on_datagram(NodeId from,
                           std::span<const std::uint8_t> payload) = 0;

  /// Same upcall, but handing over the broadcast's shared buffer.  One
  /// transmission reaches many receivers as the *same* wire::Bytes object;
  /// stacks that cache decoded frames by buffer identity (wire::FrameCodec)
  /// override this to decode once per transmission instead of once per
  /// receiver.  Default: forwards to the span overload.
  virtual void on_datagram(NodeId from,
                           std::shared_ptr<const wire::Bytes> payload) {
    if (payload != nullptr) on_datagram(from, std::span(*payload));
  }

  /// `neighbor` entered radio range (or joined the network).
  virtual void on_neighbor_up(NodeId neighbor) = 0;

  /// `neighbor` left radio range (moved away, left, or failed).
  virtual void on_neighbor_down(NodeId neighbor) = 0;
};

}  // namespace tota::sim
