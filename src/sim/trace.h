// Experiment trace: timestamped rows exported as CSV.
//
// Benches use a Trace to record per-event measurements (delivery latency,
// repair time, formation error) and dump them for EXPERIMENTS.md.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"

namespace tota::sim {

class Trace {
 public:
  struct Row {
    SimTime time;
    std::string kind;
    NodeId node;
    double value;
    std::string detail;
  };

  void record(SimTime time, std::string kind, NodeId node, double value,
              std::string detail = {});

  [[nodiscard]] const std::vector<Row>& rows() const { return rows_; }
  [[nodiscard]] std::size_t count(const std::string& kind) const;

  /// Writes "time_s,kind,node,value,detail" rows.
  void write_csv(std::ostream& out) const;

  void clear() { rows_.clear(); }

 private:
  std::vector<Row> rows_;
};

}  // namespace tota::sim
