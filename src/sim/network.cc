#include "sim/network.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/logging.h"

namespace tota::sim {

namespace {

/// The minimal Platform the channel's FaultInjector needs: the event
/// queue's clock and timers plus a forked Rng.  It represents the medium
/// itself, not a node, so broadcast/position are inert.
class ChannelPlatform final : public tota::Platform {
 public:
  ChannelPlatform(EventQueue& events, Rng rng)
      : events_(events), rng_(rng) {}

  void broadcast(wire::Bytes) override {}
  [[nodiscard]] SimTime now() const override { return events_.now(); }
  TimerId schedule(SimTime delay, std::function<void()> action) override {
    return events_.schedule_after(delay, std::move(action));
  }
  void cancel(TimerId id) override { events_.cancel(id); }
  [[nodiscard]] Vec2 position() const override { return {}; }
  [[nodiscard]] Rng& rng() override { return rng_; }

 private:
  EventQueue& events_;
  Rng rng_;
};

}  // namespace

Network::Network(NetworkParams params, obs::Hub* hub)
    : params_(params),
      owned_hub_(hub != nullptr ? nullptr : std::make_unique<obs::Hub>()),
      hub_(hub != nullptr ? *hub : *owned_hub_),
      rng_(params.seed),
      topology_(params.radio.range_m, params.wired
                                          ? Topology::Mode::kExplicit
                                          : Topology::Mode::kDisc),
      radio_(params.radio),
      radio_tx_(hub_.metrics.counter("radio.tx")),
      radio_tx_bytes_(hub_.metrics.counter("radio.tx_bytes")),
      radio_rx_(hub_.metrics.counter("radio.rx")),
      radio_lost_(hub_.metrics.counter("radio.lost")),
      link_up_(hub_.metrics.counter("link.up")),
      link_down_(hub_.metrics.counter("link.down")),
      mtu_drop_(hub_.metrics.counter("net.mtu_drop")),
      duty_drop_(hub_.metrics.counter("net.duty_drop")),
      frame_codec_(hub_.metrics) {
  if (params_.batch.enabled) {
    batch_tx_ = &hub_.metrics.counter("net.batch.tx");
    batch_chunks_ = &hub_.metrics.counter("net.batch.chunks");
    batch_flush_ = &hub_.metrics.counter("net.batch.flush");
    batch_oversize_ = &hub_.metrics.counter("net.batch.oversize");
    frame_bad_ = &hub_.metrics.counter("net.frame.bad");
  }
  if (params_.fault.enabled()) {
    // The fork below is the only extra Rng draw a faulted configuration
    // makes from the network stream; a benign plan leaves the stream —
    // and therefore every committed bench baseline — untouched.
    fault_platform_ = std::make_unique<ChannelPlatform>(events_, rng_.fork());
    fault_ = std::make_unique<net::FaultInjector>(params_.fault,
                                                 *fault_platform_,
                                                 hub_.metrics);
  }
}

NodeId Network::add_node(Vec2 position,
                         std::unique_ptr<MobilityModel> mobility) {
  const NodeId id{next_node_++};
  topology_.add(id, position);
  NodeState state;
  state.mobility = std::move(mobility);
  nodes_.emplace(id, std::move(state));
  if (nodes_.at(id).mobility && !mobility_scheduled_) {
    mobility_scheduled_ = true;
    events_.schedule_after(params_.mobility_tick, [this] { mobility_tick(); });
  }
  refresh_links();
  return id;
}

void Network::attach(NodeId id, Host* host) {
  const auto it = nodes_.find(id);
  if (it == nodes_.end()) throw std::invalid_argument("unknown node id");
  it->second.host = host;
}

void Network::detach(NodeId id) {
  const auto it = nodes_.find(id);
  if (it != nodes_.end()) it->second.host = nullptr;
}

void Network::remove_node(NodeId id) {
  const auto it = nodes_.find(id);
  if (it == nodes_.end()) return;
  topology_.remove(id);
  // Neighbours observe the link loss; the departed node itself gets no
  // further upcalls.
  it->second.host = nullptr;
  it->second.neighbors.clear();
  nodes_.erase(it);
  refresh_links();
}

void Network::move_node(NodeId id, Vec2 position) {
  topology_.move(id, position);
  refresh_links();
}

void Network::connect(NodeId a, NodeId b) {
  topology_.add_link(a, b);
  refresh_links();
}

void Network::disconnect(NodeId a, NodeId b) {
  topology_.remove_link(a, b);
  refresh_links();
}

void Network::set_velocity(NodeId id, Vec2 velocity) {
  auto* model = dynamic_cast<VelocityMobility*>(mobility(id));
  if (model == nullptr) {
    throw std::invalid_argument("node has no VelocityMobility model");
  }
  model->set_velocity(velocity);
}

MobilityModel* Network::mobility(NodeId id) {
  const auto it = nodes_.find(id);
  if (it == nodes_.end()) throw std::invalid_argument("unknown node id");
  return it->second.mobility.get();
}

void Network::set_profile(NodeId id, net::DeviceProfile profile) {
  if (nodes_.find(id) == nodes_.end()) {
    throw std::invalid_argument("unknown node id");
  }
  if (profile.is_default()) {
    profiles_.erase(id);  // keep the no-profile hot path hot
  } else {
    profiles_[id] = profile;
  }
}

const net::DeviceProfile& Network::profile(NodeId id) const {
  static const net::DeviceProfile kDefault{};
  const auto it = profiles_.find(id);
  return it == profiles_.end() ? kDefault : it->second;
}

void Network::broadcast(NodeId from, wire::Bytes payload) {
  if (!topology_.contains(from)) return;  // sender died mid-flight
  if (params_.batch.enabled) {
    enqueue_batch(from, std::move(payload));
    return;
  }
  radio_tx_.inc();
  radio_tx_bytes_.inc(static_cast<std::int64_t>(payload.size()));
  const auto receivers = topology_.neighbors(from);
  // One shared payload for all receivers of this frame.
  auto shared = std::make_shared<const wire::Bytes>(std::move(payload));
  // Device heterogeneity (net/device_profile.h).  Profile checks are
  // pure functions of time and frame size — no Rng draws — and an
  // MTU-dropped link skips the loss/latency draws entirely, so a world
  // with no profiles runs the exact pre-profile Rng stream.
  const net::DeviceProfile* sender =
      profiles_.empty() ? nullptr : &profile(from);
  for (const NodeId to : receivers) {
    if (sender != nullptr) {
      const std::size_t mtu =
          net::DeviceProfile::link_mtu(*sender, profile(to));
      if (mtu != 0 && shared->size() > mtu) {
        mtu_drop_.inc();
        continue;
      }
    }
    if (!radio_.delivered(rng_)) {
      radio_lost_.inc();
      continue;
    }
    SimTime delay = radio_.delay(rng_, shared->size());
    if (sender != nullptr) {
      if (sender->tx_delay_scale != 1.0) delay = delay * sender->tx_delay_scale;
      // The receiver's radio must be listening when the frame lands.
      if (!profile(to).awake_at(events_.now() + delay)) {
        duty_drop_.inc();
        continue;
      }
    }
    if (fault_ != nullptr) {
      // Adversity layer between the radio model and the receiver: the
      // injector may drop/hold/damage this delivery.  Damaged or
      // reordered copies get their own buffer (no decode-once sharing —
      // each surviving receiver parses what *it* received).
      fault_->process(
          std::span(*shared),
          [this, from, to, delay](const wire::Bytes& bytes) {
            deliver_after(delay, from, to,
                          std::make_shared<const wire::Bytes>(bytes));
          },
          from, to);
    } else {
      deliver_after(delay, from, to, shared);
    }
  }
}

void Network::deliver_after(SimTime delay, NodeId from, NodeId to,
                            std::shared_ptr<const wire::Bytes> payload) {
  events_.schedule_after(delay,
                         [this, from, to, payload = std::move(payload)] {
                           const auto it = nodes_.find(to);
                           if (it == nodes_.end() ||
                               it->second.host == nullptr) {
                             return;
                           }
                           radio_rx_.inc();
                           it->second.host->on_datagram(from, payload);
                         });
}

void Network::enqueue_batch(NodeId from, wire::Bytes payload) {
  auto& pending = batch_pending_[from];
  pending.push_back(net::Datagram::chunk_data(payload));
  if (pending.size() == 1) {
    // First chunk arms the flush; a zero flush_delay still runs after
    // the current event, so everything a node emits within one event
    // instant (e.g. its reactions to one received batch) coalesces.
    events_.schedule_after(params_.batch.flush_delay,
                           [this, from] { flush_batch(from); });
  }
}

void Network::flush_batch(NodeId from) {
  const auto it = batch_pending_.find(from);
  if (it == batch_pending_.end() || it->second.empty()) return;
  auto chunks = std::exchange(it->second, {});
  if (!topology_.contains(from)) return;  // died while pending
  batch_flush_->inc();
  batch_chunks_->inc(static_cast<std::int64_t>(chunks.size()));
  auto datagrams = net::pack_batches(from, std::move(chunks), params_.batch,
                                     batch_oversize_);
  batch_tx_->inc(static_cast<std::int64_t>(datagrams.size()));
  for (auto& d : datagrams) transmit_batch(from, std::move(d));
}

void Network::transmit_batch(NodeId from, wire::Bytes datagram) {
  radio_tx_.inc();
  radio_tx_bytes_.inc(static_cast<std::int64_t>(datagram.size()));
  const auto receivers = topology_.neighbors(from);
  auto shared = std::make_shared<const wire::Bytes>(std::move(datagram));
  const net::DeviceProfile* sender =
      profiles_.empty() ? nullptr : &profile(from);
  for (const NodeId to : receivers) {
    if (sender != nullptr) {
      const std::size_t mtu =
          net::DeviceProfile::link_mtu(*sender, profile(to));
      if (mtu != 0 && shared->size() > mtu) {
        mtu_drop_.inc();  // the whole batch: coalescing raises the stakes
        continue;
      }
    }
    if (!radio_.delivered(rng_)) {
      radio_lost_.inc();
      continue;
    }
    SimTime delay = radio_.delay(rng_, shared->size());
    if (sender != nullptr) {
      if (sender->tx_delay_scale != 1.0) delay = delay * sender->tx_delay_scale;
      if (!profile(to).awake_at(events_.now() + delay)) {
        duty_drop_.inc();
        continue;
      }
    }
    if (fault_ != nullptr) {
      fault_->process(
          std::span(*shared),
          [this, from, to, delay](const wire::Bytes& bytes) {
            deliver_batch_after(delay, from, to,
                                std::make_shared<const wire::Bytes>(bytes));
          },
          from, to);
    } else {
      deliver_batch_after(delay, from, to, shared);
    }
  }
}

void Network::deliver_batch_after(
    SimTime delay, NodeId from, NodeId to,
    std::shared_ptr<const wire::Bytes> datagram) {
  events_.schedule_after(
      delay, [this, from, to, datagram = std::move(datagram)] {
        const auto it = nodes_.find(to);
        if (it == nodes_.end() || it->second.host == nullptr) return;
        radio_rx_.inc();
        net::Datagram d;
        try {
          d = net::Datagram::decode(*datagram);
        } catch (const wire::DecodeError&) {
          frame_bad_->inc();  // fault-corrupted past recognition
          return;
        }
        for (const net::Chunk& chunk : d.chunks) {
          if (chunk.kind != net::ChunkKind::kData) continue;
          it->second.host->on_datagram(from, chunk.payload);
        }
      });
}

void Network::run_until(SimTime deadline) { events_.run_until(deadline); }

std::vector<NodeId> Network::notified_neighbors(NodeId id) const {
  const auto it = nodes_.find(id);
  if (it == nodes_.end()) return {};
  std::vector<NodeId> out(it->second.neighbors.begin(),
                          it->second.neighbors.end());
  std::sort(out.begin(), out.end());
  return out;
}

void Network::notify_link(NodeId node, NodeId neighbor, bool up) {
  events_.schedule_after(params_.link_detect_delay,
                         [this, node, neighbor, up] {
                           const auto it = nodes_.find(node);
                           if (it == nodes_.end() || it->second.host == nullptr)
                             return;
                           if (up) {
                             it->second.host->on_neighbor_up(neighbor);
                           } else {
                             it->second.host->on_neighbor_down(neighbor);
                           }
                         });
}

void Network::refresh_links() {
  // Deterministic order: sorted node ids.
  for (const NodeId id : topology_.nodes()) {
    auto& state = nodes_.at(id);
    const auto current_vec = topology_.neighbors(id);
    const std::unordered_set<NodeId> current(current_vec.begin(),
                                             current_vec.end());
    // Departed links first, then new ones, each in sorted order.
    std::vector<NodeId> downs;
    for (const NodeId old : state.neighbors) {
      if (!current.count(old)) downs.push_back(old);
    }
    std::sort(downs.begin(), downs.end());
    for (const NodeId old : downs) {
      state.neighbors.erase(old);
      link_down_.inc();
      notify_link(id, old, /*up=*/false);
    }
    for (const NodeId fresh : current_vec) {  // already sorted
      if (!state.neighbors.count(fresh)) {
        state.neighbors.insert(fresh);
        link_up_.inc();
        notify_link(id, fresh, /*up=*/true);
      }
    }
  }
  // Nodes that left the topology entirely were handled in remove_node;
  // their ids are gone from nodes_ too, but other nodes' stale references
  // to them are cleared by the loop above.
}

void Network::mobility_tick() {
  bool moved = false;
  for (const NodeId id : topology_.nodes()) {
    auto& state = nodes_.at(id);
    if (!state.mobility) continue;
    const Vec2 before = topology_.position(id);
    const Vec2 after = state.mobility->step(before, params_.mobility_tick,
                                            rng_);
    if (!(after == before)) {
      topology_.move(id, after);
      moved = true;
    }
  }
  if (moved) refresh_links();
  events_.schedule_after(params_.mobility_tick, [this] { mobility_tick(); });
}

}  // namespace tota::sim
