// Deterministic discrete-event scheduler.
//
// Events fire in (time, insertion-sequence) order, so two events scheduled
// for the same instant always run in the order they were scheduled — this
// removes a whole class of flaky-simulation bugs and makes every run
// bit-for-bit reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/clock.h"

namespace tota::sim {

/// Handle to a scheduled event, usable to cancel it.
using EventId = std::uint64_t;

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` at absolute time `when` (must be >= now()).
  EventId schedule_at(SimTime when, Action action);

  /// Schedules `action` `delay` after the current time.
  EventId schedule_after(SimTime delay, Action action);

  /// Cancels a pending event; no-op if it already fired or was cancelled.
  void cancel(EventId id);

  /// Runs events until the queue is empty or the next event is after
  /// `deadline`; leaves now() == deadline.
  void run_until(SimTime deadline);

  /// Runs a single event if one is pending; returns false when empty.
  bool step();

  /// Fire time of the earliest live event, or nullopt when empty.  The
  /// sharded scheduler's epoch planner uses this to jump idle stretches
  /// instead of stepping lookahead-sized windows through them.  Non-const
  /// because it prunes cancelled entries off the top of the heap (no live
  /// event is touched).
  [[nodiscard]] std::optional<SimTime> next_event_time();

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::size_t pending() const { return live_count_; }
  [[nodiscard]] bool empty() const { return live_count_ == 0; }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    EventId id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimTime now_;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  // Actions for live events; cancelled ids are simply erased and their
  // queue entries skipped when popped.
  std::unordered_map<EventId, Action> actions_;
  std::size_t live_count_ = 0;
};

}  // namespace tota::sim
