#include "sim/event_queue.h"

#include <cassert>
#include <stdexcept>

namespace tota::sim {

EventId EventQueue::schedule_at(SimTime when, Action action) {
  if (when < now_) {
    throw std::invalid_argument("cannot schedule event in the past");
  }
  const EventId id = next_id_++;
  queue_.push(Entry{when, next_seq_++, id});
  actions_.emplace(id, std::move(action));
  ++live_count_;
  return id;
}

EventId EventQueue::schedule_after(SimTime delay, Action action) {
  return schedule_at(now_ + delay, std::move(action));
}

void EventQueue::cancel(EventId id) {
  if (actions_.erase(id) > 0) --live_count_;
}

bool EventQueue::step() {
  while (!queue_.empty()) {
    const Entry top = queue_.top();
    queue_.pop();
    auto it = actions_.find(top.id);
    if (it == actions_.end()) continue;  // cancelled
    Action action = std::move(it->second);
    actions_.erase(it);
    --live_count_;
    now_ = top.when;
    action();
    return true;
  }
  return false;
}

std::optional<SimTime> EventQueue::next_event_time() {
  while (!queue_.empty()) {
    if (actions_.find(queue_.top().id) != actions_.end()) {
      return queue_.top().when;
    }
    queue_.pop();  // cancelled — drop the stale entry
  }
  return std::nullopt;
}

void EventQueue::run_until(SimTime deadline) {
  while (!queue_.empty()) {
    // Skip cancelled entries without advancing time.
    if (actions_.find(queue_.top().id) == actions_.end()) {
      queue_.pop();
      continue;
    }
    if (queue_.top().when > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace tota::sim
