#include "sim/trace.h"

#include <ostream>

namespace tota::sim {

void Trace::record(SimTime time, std::string kind, NodeId node, double value,
                   std::string detail) {
  rows_.push_back(
      {time, std::move(kind), node, value, std::move(detail)});
}

std::size_t Trace::count(const std::string& kind) const {
  std::size_t n = 0;
  for (const auto& row : rows_) {
    if (row.kind == kind) ++n;
  }
  return n;
}

void Trace::write_csv(std::ostream& out) const {
  out << "time_s,kind,node,value,detail\n";
  for (const auto& row : rows_) {
    out << row.time.seconds() << ',' << row.kind << ',' << row.node.value()
        << ',' << row.value << ',' << row.detail << '\n';
  }
}

}  // namespace tota::sim
