#include "sim/radio.h"

// Radio is header-only today; this TU anchors the library target and keeps
// room for richer propagation models (log-normal shadowing) later.
