#include "sim/shard.h"

#include <algorithm>
#include <stdexcept>

namespace tota::sim {

ShardedSim::Shard::Shard(std::uint32_t index, std::uint32_t total,
                         std::uint64_t seed)
    : index(index),
      rng(Rng::stream(seed, index)),
      codec(hub.metrics),
      outbox(total),
      radio_tx(hub.metrics.counter("radio.tx")),
      radio_tx_bytes(hub.metrics.counter("radio.tx_bytes")),
      radio_rx(hub.metrics.counter("radio.rx")),
      radio_lost(hub.metrics.counter("radio.lost")),
      link_up(hub.metrics.counter("link.up")),
      link_down(hub.metrics.counter("link.down")),
      mail_out(hub.metrics.counter("sim.shard.cross_deliveries")),
      mtu_drop(hub.metrics.counter("net.mtu_drop")),
      duty_drop(hub.metrics.counter("net.duty_drop")) {}

ShardedSim::ShardedSim(ShardedParams params)
    : params_(params),
      radio_(params.radio),
      topology_(params.radio.range_m),
      nodes_(1),  // slot 0 = the reserved invalid NodeId
      epochs_(hub_.metrics.counter("sim.shard.epochs")),
      barrier_waits_(hub_.metrics.counter("sim.shard.barrier_waits")) {
  if (params_.shards == 0) {
    throw std::invalid_argument("ShardedParams::shards must be >= 1");
  }
  if (params_.shards > 1 && params_.radio.base_delay < SimTime(1)) {
    // base_delay is the conservative lookahead; a zero bound would allow
    // a cross-shard event inside the current epoch (docs/SIM.md).
    throw std::invalid_argument(
        "sharded simulation needs radio.base_delay >= 1us "
        "(it bounds the cross-shard lookahead)");
  }
}

ShardedSim::~ShardedSim() {
  if (!workers_.empty()) {
    stop_ = true;
    epoch_start_->arrive_and_wait();  // release workers into the stop check
    for (auto& w : workers_) w.join();
  }
}

NodeId ShardedSim::add_node(Vec2 position) {
  if (sealed_) {
    throw std::logic_error("ShardedSim: population is sealed");
  }
  const NodeId id{next_node_++};
  topology_.add(id, position);
  nodes_.emplace_back();
  return id;
}

void ShardedSim::seal() {
  if (sealed_) return;
  sealed_ = true;

  // Partition: equal-width vertical strips of the population's bounding
  // box.  Ownership depends only on (positions, shard count), never on
  // insertion order.
  double min_x = 0.0;
  double width = 0.0;
  if (topology_.size() > 0) {
    const Rect box = topology_.bounding_box();
    min_x = box.min.x;
    width = box.width();
  }
  const auto n_shards = params_.shards;
  shards_.reserve(n_shards);
  for (std::uint32_t i = 0; i < n_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(i, n_shards, params_.seed));
  }
  hub_.metrics.gauge("sim.shard.count").set(static_cast<double>(n_shards));

  for (std::uint64_t v = 1; v < next_node_; ++v) {
    const NodeId id{v};
    const double frac =
        width > 0.0 ? (topology_.position(id).x - min_x) / width : 0.0;
    state(id).owner = std::min(
        n_shards - 1, static_cast<std::uint32_t>(
                          frac * static_cast<double>(n_shards)));
  }

  // Initial neighbour sets + link-up upcalls, in node-id order.
  for (std::uint64_t v = 1; v < next_node_; ++v) {
    const NodeId id{v};
    state(id).neighbors = topology_.neighbors(id);
  }
  for (std::uint64_t v = 1; v < next_node_; ++v) {
    const NodeId id{v};
    for (const NodeId nb : state(id).neighbors) {
      notify_link(id, nb, /*up=*/true);
    }
  }

  if (n_shards > 1) {
    epoch_start_ = std::make_unique<std::barrier<>>(n_shards + 1);
    epoch_done_ = std::make_unique<std::barrier<>>(n_shards + 1);
    workers_.reserve(n_shards);
    for (std::uint32_t i = 0; i < n_shards; ++i) {
      workers_.emplace_back([this, i] { worker(i); });
    }
  }
}

void ShardedSim::attach(NodeId id, Host* host) {
  if (id.value() == 0 || id.value() >= next_node_) {
    throw std::invalid_argument("unknown node id");
  }
  state(id).host = host;
}

void ShardedSim::detach(NodeId id) {
  if (id.value() == 0 || id.value() >= next_node_) return;
  state(id).host = nullptr;
}

void ShardedSim::move_node(NodeId id, Vec2 position) {
  if (!sealed_) {
    // Pre-seal moves are plain position edits; links don't exist yet.
    topology_.move(id, position);
    return;
  }
  topology_.move(id, position);
  auto& st = state(id);
  auto fresh = topology_.neighbors(id);  // sorted
  std::vector<NodeId> downs;
  std::vector<NodeId> ups;
  std::set_difference(st.neighbors.begin(), st.neighbors.end(), fresh.begin(),
                      fresh.end(), std::back_inserter(downs));
  std::set_difference(fresh.begin(), fresh.end(), st.neighbors.begin(),
                      st.neighbors.end(), std::back_inserter(ups));
  for (const NodeId nb : downs) {
    auto& nst = state(nb);
    nst.neighbors.erase(
        std::lower_bound(nst.neighbors.begin(), nst.neighbors.end(), id));
    notify_link(id, nb, /*up=*/false);
    notify_link(nb, id, /*up=*/false);
  }
  for (const NodeId nb : ups) {
    auto& nst = state(nb);
    nst.neighbors.insert(
        std::lower_bound(nst.neighbors.begin(), nst.neighbors.end(), id), id);
    notify_link(id, nb, /*up=*/true);
    notify_link(nb, id, /*up=*/true);
  }
  st.neighbors = std::move(fresh);
}

void ShardedSim::set_profile(NodeId id, net::DeviceProfile profile) {
  if (id.value() == 0 || id.value() >= next_node_) {
    throw std::invalid_argument("unknown node id");
  }
  if (params_.shards > 1 && profile.tx_delay_scale < 1.0) {
    // The conservative lookahead is radio.base_delay; a faster-than-
    // nominal sender could deliver inside it (see docs/SIM.md).
    throw std::invalid_argument(
        "sharded simulation needs tx_delay_scale >= 1.0");
  }
  if (profile.is_default()) {
    profiles_.erase(id);
  } else {
    profiles_[id] = profile;
  }
}

const net::DeviceProfile& ShardedSim::profile(NodeId id) const {
  static const net::DeviceProfile kDefault{};
  const auto it = profiles_.find(id);
  return it == profiles_.end() ? kDefault : it->second;
}

void ShardedSim::notify_link(NodeId node, NodeId neighbor, bool up) {
  Shard& s = shard_of_node(node);
  (up ? s.link_up : s.link_down).inc();
  s.events.schedule_after(params_.link_detect_delay,
                          [this, node, neighbor, up] {
                            Host* host = state(node).host;
                            if (host == nullptr) return;
                            if (up) {
                              host->on_neighbor_up(neighbor);
                            } else {
                              host->on_neighbor_down(neighbor);
                            }
                          });
}

void ShardedSim::broadcast(NodeId from, wire::Bytes payload) {
  // Runs on `from`'s owner thread during epochs, or on the driver thread
  // at quiescent points (tuple injection).
  auto& st = state(from);
  Shard& s = *shards_[st.owner];
  s.radio_tx.inc();
  s.radio_tx_bytes.inc(static_cast<std::int64_t>(payload.size()));
  auto shared = std::make_shared<const wire::Bytes>(std::move(payload));
  // One buffer per destination shard: same-shard receivers share
  // `shared` (decode-once in this shard's codec); each foreign shard
  // gets one private copy shared by that shard's receivers, so the
  // decode-once property survives the crossing.
  std::vector<std::shared_ptr<const wire::Bytes>> per_dst;
  // Device heterogeneity (net/device_profile.h): pure time/size checks,
  // no Rng draws, so profile-free worlds keep the exact per-shard
  // streams the committed baselines pin.
  const net::DeviceProfile* sender =
      profiles_.empty() ? nullptr : &profile(from);
  for (const NodeId to : st.neighbors) {
    if (sender != nullptr) {
      const std::size_t mtu =
          net::DeviceProfile::link_mtu(*sender, profile(to));
      if (mtu != 0 && shared->size() > mtu) {
        s.mtu_drop.inc();
        continue;
      }
    }
    if (!radio_.delivered(s.rng)) {
      s.radio_lost.inc();
      continue;
    }
    SimTime delay = radio_.delay(s.rng, shared->size());
    if (sender != nullptr) {
      if (sender->tx_delay_scale != 1.0) delay = delay * sender->tx_delay_scale;
      if (!profile(to).awake_at(s.events.now() + delay)) {
        s.duty_drop.inc();
        continue;
      }
    }
    const std::uint32_t dst = state(to).owner;
    if (dst == st.owner) {
      s.events.schedule_after(
          delay, [this, from, to, shared] { deliver(from, to, shared); });
    } else {
      if (per_dst.empty()) per_dst.resize(shards_.size());
      auto& buf = per_dst[dst];
      if (buf == nullptr) buf = std::make_shared<const wire::Bytes>(*shared);
      s.outbox[dst].push_back(Mail{s.events.now() + delay, from, to, buf});
      s.mail_out.inc();
    }
  }
}

void ShardedSim::deliver(NodeId from, NodeId to,
                         std::shared_ptr<const wire::Bytes> payload) {
  auto& st = state(to);
  if (st.host == nullptr) return;
  shards_[st.owner]->radio_rx.inc();
  st.host->on_datagram(from, std::move(payload));
}

void ShardedSim::ingest_mail() {
  for (std::size_t dst = 0; dst < shards_.size(); ++dst) {
    auto& queue = shards_[dst]->events;
    for (auto& src : shards_) {
      auto& box = src->outbox[dst];
      for (auto& m : box) {
        queue.schedule_at(m.when, [this, m = std::move(m)]() mutable {
          deliver(m.from, m.to, std::move(m.payload));
        });
      }
      box.clear();
    }
  }
}

EventId ShardedSim::schedule(NodeId id, SimTime delay,
                             EventQueue::Action action) {
  return shard_of_node(id).events.schedule_after(delay, std::move(action));
}

void ShardedSim::cancel(NodeId id, EventId event) {
  shard_of_node(id).events.cancel(event);
}

SimTime ShardedSim::node_now(NodeId id) const {
  return shards_[state(id).owner]->events.now();
}

Rng& ShardedSim::shard_rng(NodeId id) { return shard_of_node(id).rng; }

wire::FrameCodec& ShardedSim::frame_codec(NodeId id) {
  return shard_of_node(id).codec;
}

obs::Hub& ShardedSim::shard_hub(NodeId id) { return shard_of_node(id).hub; }

SimTime ShardedSim::now() const {
  // All shard clocks agree at quiescent points; before seal() there is
  // no clock yet.
  return shards_.empty() ? SimTime::zero() : shards_[0]->events.now();
}

std::uint32_t ShardedSim::shard_count() const { return params_.shards; }

std::uint32_t ShardedSim::shard_of(NodeId id) const {
  if (!sealed_) throw std::logic_error("shard_of() before seal()");
  return state(id).owner;
}

const std::vector<NodeId>& ShardedSim::neighbors(NodeId id) const {
  return state(id).neighbors;
}

void ShardedSim::run_until(SimTime deadline) {
  seal();
  if (shards_.size() == 1) {
    // Degenerate sequential case: one queue, no epochs, no barriers.
    ingest_mail();  // nothing crosses shards, but keep the path uniform
    shards_[0]->events.run_until(deadline);
    return;
  }
  const SimTime lookahead = params_.radio.base_delay;
  for (;;) {
    ingest_mail();
    // Epoch planning: jump straight to the earliest pending event, then
    // open a lookahead-bounded window from there.  Idle stretches cost
    // one pass instead of ceil(idle/lookahead) barriers.
    std::optional<SimTime> t_next;
    for (auto& s : shards_) {
      const auto t = s->events.next_event_time();
      if (t.has_value() && (!t_next.has_value() || *t < *t_next)) t_next = t;
    }
    if (!t_next.has_value() || *t_next > deadline) break;
    // Every event processed this epoch fires at t >= t_next, so any
    // cross-shard delivery it generates lands at t + lookahead or later
    // — strictly after epoch_end, hence never in a shard's past.
    SimTime epoch_end = *t_next + lookahead - SimTime(1);
    if (epoch_end > deadline) epoch_end = deadline;
    epoch_end_ = epoch_end;
    epochs_.inc();
    epoch_start_->arrive_and_wait();
    // ... workers run their shards to epoch_end_ ...
    epoch_done_->arrive_and_wait();
    barrier_waits_.inc(2);
  }
  // Nothing pending at or before the deadline: advance all clocks.
  for (auto& s : shards_) s->events.run_until(deadline);
}

void ShardedSim::worker(std::uint32_t index) {
  for (;;) {
    epoch_start_->arrive_and_wait();
    if (stop_) return;
    shards_[index]->events.run_until(epoch_end_);
    epoch_done_->arrive_and_wait();
  }
}

void ShardedSim::export_metrics(obs::MetricsRegistry& into) const {
  for (const auto& s : shards_) into.merge_from(s->hub.metrics);
  into.merge_from(hub_.metrics);
}

}  // namespace tota::sim
