// Radio model: broadcast medium with disc connectivity.
//
// Mirrors the paper's prototype, which sends tuples "through multicast
// sockets to all the nodes in the one-hop neighbor[hood]" over 802.11b in
// ad-hoc mode: one transmission reaches every node within range.  The
// model adds per-hop latency (propagation + MAC contention jitter) and an
// independent per-receiver loss probability.
#pragma once

#include "common/clock.h"
#include "common/rng.h"

namespace tota::sim {

struct RadioParams {
  /// Communication range in metres (disc model).
  double range_m = 100.0;
  /// Fixed per-hop latency component.
  SimTime base_delay = SimTime::from_millis(2);
  /// Uniform extra latency in [0, jitter] modelling MAC contention.
  SimTime jitter = SimTime::from_millis(3);
  /// Probability that an individual receiver misses a broadcast frame.
  double loss_probability = 0.0;
  /// Bytes/second; adds payload_size / bandwidth to the delay.  0 = infinite.
  double bandwidth_bps = 0.0;
};

/// Stateless-per-call helper that samples delivery outcomes.
class Radio {
 public:
  explicit Radio(RadioParams params) : params_(params) {}

  [[nodiscard]] const RadioParams& params() const { return params_; }
  [[nodiscard]] double range() const { return params_.range_m; }

  /// Samples whether a given receiver gets the frame.
  bool delivered(Rng& rng) const {
    return !rng.chance(params_.loss_probability);
  }

  /// Samples the end-to-end one-hop delay for a payload of `bytes` bytes.
  SimTime delay(Rng& rng, std::size_t bytes) const {
    SimTime d = params_.base_delay;
    if (params_.jitter.micros() > 0) {
      d += SimTime(static_cast<std::int64_t>(
          rng.uniform() * static_cast<double>(params_.jitter.micros())));
    }
    if (params_.bandwidth_bps > 0.0) {
      d += SimTime::from_seconds(static_cast<double>(bytes) * 8.0 /
                                 params_.bandwidth_bps);
    }
    return d;
  }

 private:
  RadioParams params_;
};

}  // namespace tota::sim
