#include "sim/mobility.h"

#include <algorithm>

namespace tota::sim {

RandomWaypoint::RandomWaypoint(Rect arena, double min_speed_mps,
                               double max_speed_mps, SimTime pause)
    : arena_(arena),
      min_speed_(min_speed_mps),
      max_speed_(max_speed_mps),
      pause_(pause),
      pause_left_(SimTime::zero()) {}

Vec2 RandomWaypoint::step(Vec2 current, SimTime dt, Rng& rng) {
  double seconds = dt.seconds();
  while (seconds > 0.0) {
    if (pause_left_ > SimTime::zero()) {
      const double pause_s = std::min(seconds, pause_left_.seconds());
      pause_left_ = pause_left_ - SimTime::from_seconds(pause_s);
      seconds -= pause_s;
      continue;
    }
    if (!target_) {
      target_ = Vec2{rng.uniform(arena_.min.x, arena_.max.x),
                     rng.uniform(arena_.min.y, arena_.max.y)};
      speed_ = rng.uniform(min_speed_, max_speed_);
    }
    const Vec2 to_target = *target_ - current;
    const double dist = to_target.norm();
    const double reach = speed_ * seconds;
    if (reach >= dist) {
      current = *target_;
      target_.reset();
      pause_left_ = pause_;
      seconds -= speed_ > 0.0 ? dist / speed_ : seconds;
      if (speed_ <= 0.0) break;
      continue;
    }
    current += to_target.normalized() * reach;
    break;
  }
  return arena_.clamp(current);
}

Vec2 WaypointTo::step(Vec2 current, SimTime dt, Rng&) {
  if (!target_) return current;
  const Vec2 to_target = *target_ - current;
  const double dist = to_target.norm();
  const double reach = speed_ * dt.seconds();
  if (reach >= dist) {
    current = *target_;
    target_.reset();
    return current;
  }
  return current + to_target.normalized() * reach;
}

void VelocityMobility::set_velocity(Vec2 v) {
  const double n = v.norm();
  velocity_ = n > max_speed_ ? v.normalized() * max_speed_ : v;
}

Vec2 VelocityMobility::step(Vec2 current, SimTime dt, Rng&) {
  return arena_.clamp(current + velocity_ * dt.seconds());
}

}  // namespace tota::sim
