// Soak suite: N in-process TOTA engines + discovery instances over a
// shared faulty channel, all sockets-free and fully deterministic.
//
// Two layers of coverage:
//
//   1. FaultInjector unit tests — each fault mode in isolation against
//      the FakePlatform (drop, duplicate, reorder + timer fallback,
//      truncate/corrupt, partitions and group boundaries), plus the
//      counter conservation law.
//
//   2. The soak harness — six full nodes (Middleware + Discovery) on a
//      line topology, wired through per-directed-link FaultInjectors
//      over one sim::EventQueue.  The run injects two gradients, then
//      turns on heavy churn (loss 0.3, dup 0.1, reorder window 5, two
//      partition windows on the only boundary-crossing link), kills a
//      source after the faults quiesce, and asserts the convergence
//      invariants the paper promises: gradient hop values equal BFS
//      ground truth, neighbour tables equal the reachability graph, no
//      tuple survives past its retraction, and the injector counters
//      obey processed == delivered + drop + partition_drop with nothing
//      left held.  Repeated for seeds {1, 2, 3}; one seed is run twice
//      to pin bit-for-bit reproducibility.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "fake_platform.h"
#include "net/datagram.h"
#include "net/discovery.h"
#include "net/fault.h"
#include "obs/hub.h"
#include "sim/event_queue.h"
#include "tota/middleware.h"
#include "tuples/all.h"
#include "tuples/gradient_tuple.h"
#include "wire/buffer.h"

namespace tota {
namespace {

using tota::testing::FakePlatform;

// --- FaultInjector unit tests ----------------------------------------------

wire::Bytes tagged(std::uint8_t tag) { return wire::Bytes{tag, 0xAA, 0x55}; }

/// Soak nodes are indexed 0..N-1 but NodeId{0} is the invalid id, so the
/// wire identity of node `i` is i + 1.
NodeId id_of(int i) { return NodeId{static_cast<std::uint64_t>(i) + 1}; }

TEST(FaultPlan, DefaultPlanIsBenign) {
  EXPECT_FALSE(net::FaultPlan{}.enabled());
  net::FaultPlan drop;
  drop.drop = 0.1;
  EXPECT_TRUE(drop.enabled());
  net::FaultPlan part;
  part.partitions.push_back({SimTime::zero(), SimTime::from_seconds(1), {}});
  EXPECT_TRUE(part.enabled());
  // Reorder probability without a window cannot ever fire.
  net::FaultPlan reorder;
  reorder.reorder = 0.5;
  EXPECT_FALSE(reorder.enabled());
  reorder.reorder_window = 3;
  EXPECT_TRUE(reorder.enabled());
}

TEST(FaultPlan, SeversCutsTheGroupBoundaryOnly) {
  net::FaultPlan plan;
  plan.partitions.push_back({SimTime::from_seconds(1),
                             SimTime::from_seconds(1),
                             {NodeId{1}, NodeId{2}}});
  const SimTime before = SimTime::zero();
  const SimTime inside = SimTime::from_millis(1500);
  const SimTime after = SimTime::from_seconds(2);  // [start, start+dur)

  EXPECT_FALSE(plan.severs(before, NodeId{1}, NodeId{3}));
  EXPECT_FALSE(plan.severs(after, NodeId{1}, NodeId{3}));
  // Inside the window: only paths crossing the group boundary are cut.
  EXPECT_TRUE(plan.severs(inside, NodeId{1}, NodeId{3}));
  EXPECT_TRUE(plan.severs(inside, NodeId{3}, NodeId{2}));
  EXPECT_FALSE(plan.severs(inside, NodeId{1}, NodeId{2}));  // both inside
  EXPECT_FALSE(plan.severs(inside, NodeId{3}, NodeId{4}));  // both outside
  // Unknown endpoints count as outside the group (live rx path).
  EXPECT_TRUE(plan.severs(inside, NodeId{}, NodeId{1}));
  EXPECT_FALSE(plan.severs(inside, NodeId{}, NodeId{3}));

  // An empty group severs everything, unknown endpoints included.
  net::FaultPlan blackout;
  blackout.partitions.push_back(
      {SimTime::from_seconds(1), SimTime::from_seconds(1), {}});
  EXPECT_TRUE(blackout.severs(inside, NodeId{}, NodeId{}));
  EXPECT_FALSE(blackout.severs(before, NodeId{}, NodeId{}));
}

TEST(FaultInjector, DropOneDropsEverything) {
  FakePlatform platform;
  obs::MetricsRegistry metrics;
  net::FaultPlan plan;
  plan.drop = 1.0;
  net::FaultInjector inj(plan, platform, metrics);
  int delivered = 0;
  for (int i = 0; i < 20; ++i) {
    inj.process(tagged(0), [&](const wire::Bytes&) { ++delivered; });
  }
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(metrics.get("net.fault.processed"), 20);
  EXPECT_EQ(metrics.get("net.fault.drop"), 20);
  EXPECT_EQ(metrics.get("net.fault.delivered"), 0);
}

TEST(FaultInjector, DuplicateOneDeliversEverythingTwice) {
  FakePlatform platform;
  obs::MetricsRegistry metrics;
  net::FaultPlan plan;
  plan.duplicate = 1.0;
  net::FaultInjector inj(plan, platform, metrics);
  int calls = 0;
  for (int i = 0; i < 10; ++i) {
    inj.process(tagged(0), [&](const wire::Bytes&) { ++calls; });
  }
  // Duplicates are *extra* deliveries: delivered counts datagrams, dup
  // counts the extras, the sink sees both.
  EXPECT_EQ(calls, 20);
  EXPECT_EQ(metrics.get("net.fault.delivered"), 10);
  EXPECT_EQ(metrics.get("net.fault.dup"), 10);
}

TEST(FaultInjector, TruncateAndCorruptDamageButStillDeliver) {
  FakePlatform platform;
  obs::MetricsRegistry metrics;
  net::FaultPlan plan;
  plan.truncate = 1.0;
  const wire::Bytes original = tagged(7);
  {
    net::FaultInjector inj(plan, platform, metrics);
    std::size_t delivered_size = original.size();
    inj.process(original,
                [&](const wire::Bytes& b) { delivered_size = b.size(); });
    EXPECT_LT(delivered_size, original.size());
  }
  EXPECT_EQ(metrics.get("net.fault.truncate"), 1);
  EXPECT_EQ(metrics.get("net.fault.delivered"), 1);

  net::FaultPlan flip;
  flip.corrupt = 1.0;
  net::FaultInjector inj(flip, platform, metrics);
  wire::Bytes got;
  inj.process(original, [&](const wire::Bytes& b) { got = b; });
  ASSERT_EQ(got.size(), original.size());
  int differing_bits = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    differing_bits += __builtin_popcount(got[i] ^ original[i]);
  }
  EXPECT_EQ(differing_bits, 1);  // exactly one flipped bit
  EXPECT_EQ(metrics.get("net.fault.corrupt"), 1);
}

TEST(FaultInjector, ReorderReleasesAfterOvertakesAndPreservesContent) {
  FakePlatform platform;
  obs::MetricsRegistry metrics;
  net::FaultPlan plan;
  plan.reorder = 0.5;
  plan.reorder_window = 3;
  net::FaultInjector inj(plan, platform, metrics);

  std::vector<std::uint8_t> order;
  constexpr int kCount = 100;
  for (int i = 0; i < kCount; ++i) {
    inj.process(tagged(static_cast<std::uint8_t>(i)),
                [&](const wire::Bytes& b) { order.push_back(b[0]); });
  }
  inj.flush();
  EXPECT_EQ(inj.held(), 0u);

  // Every datagram arrived exactly once (a permutation: reordering never
  // loses or duplicates)...
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kCount));
  auto sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
  }
  // ...and some genuinely out of order.
  EXPECT_GT(metrics.get("net.fault.reorder"), 0);
  bool disordered = false;
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (order[i] < order[i - 1]) disordered = true;
  }
  EXPECT_TRUE(disordered);
  // Conservation with nothing dropped: everything was delivered.
  EXPECT_EQ(metrics.get("net.fault.delivered"), kCount);
}

TEST(FaultInjector, TrafficLullDrainsHeldDatagramsViaTimer) {
  FakePlatform platform;
  obs::MetricsRegistry metrics;
  net::FaultPlan plan;
  plan.reorder = 1.0;  // everything is held; nothing ever overtakes
  plan.reorder_window = 5;
  net::FaultInjector inj(plan, platform, metrics);

  int delivered = 0;
  for (int i = 0; i < 3; ++i) {
    inj.process(tagged(static_cast<std::uint8_t>(i)),
                [&](const wire::Bytes&) { ++delivered; });
  }
  EXPECT_EQ(inj.held(), 3u);
  EXPECT_EQ(delivered, 0);
  // The hold timer fires at now + reorder_max_hold and releases the
  // whole batch (same deadline); nothing stays pinned by the lull.
  platform.run_scheduled();
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(inj.held(), 0u);
}

TEST(FaultInjector, PartitionWindowSeversThenHeals) {
  FakePlatform platform;
  obs::MetricsRegistry metrics;
  net::FaultPlan plan;
  plan.partitions.push_back(
      {SimTime::from_seconds(1), SimTime::from_seconds(1), {}});
  net::FaultInjector inj(plan, platform, metrics);

  int delivered = 0;
  const auto sink = [&](const wire::Bytes&) { ++delivered; };
  inj.process(tagged(0), sink);  // before the window
  platform.time = SimTime::from_millis(1500);
  inj.process(tagged(1), sink);  // inside: severed
  platform.time = SimTime::from_seconds(2);
  inj.process(tagged(2), sink);  // healed
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(metrics.get("net.fault.partition_drop"), 1);
  EXPECT_EQ(metrics.get("net.fault.processed"),
            metrics.get("net.fault.delivered") +
                metrics.get("net.fault.partition_drop"));
}

TEST(FaultInjector, ChaosObeysTheConservationLaw) {
  FakePlatform platform;
  obs::MetricsRegistry metrics;
  net::FaultPlan plan;
  plan.drop = 0.3;
  plan.duplicate = 0.2;
  plan.reorder = 0.3;
  plan.reorder_window = 4;
  plan.truncate = 0.2;
  plan.corrupt = 0.2;
  net::FaultInjector inj(plan, platform, metrics);

  std::int64_t sink_calls = 0;
  constexpr int kCount = 500;
  for (int i = 0; i < kCount; ++i) {
    inj.process(tagged(static_cast<std::uint8_t>(i)),
                [&](const wire::Bytes&) { ++sink_calls; });
  }
  inj.flush();
  EXPECT_EQ(metrics.get("net.fault.processed"), kCount);
  EXPECT_EQ(metrics.get("net.fault.processed"),
            metrics.get("net.fault.delivered") +
                metrics.get("net.fault.drop") +
                metrics.get("net.fault.partition_drop"));
  EXPECT_EQ(sink_calls, metrics.get("net.fault.delivered") +
                            metrics.get("net.fault.dup"));
  // With 500 datagrams at these rates every fault mode actually fired.
  EXPECT_GT(metrics.get("net.fault.drop"), 0);
  EXPECT_GT(metrics.get("net.fault.dup"), 0);
  EXPECT_GT(metrics.get("net.fault.reorder"), 0);
  EXPECT_GT(metrics.get("net.fault.truncate"), 0);
  EXPECT_GT(metrics.get("net.fault.corrupt"), 0);
}

// --- the soak harness ------------------------------------------------------

/// tota::Platform over a shared sim::EventQueue: every node (and the
/// channel itself) schedules against one deterministic virtual clock.
class QueuePlatform final : public Platform {
 public:
  QueuePlatform(sim::EventQueue& events, Rng rng,
                std::function<void(wire::Bytes)> on_broadcast = nullptr)
      : events_(events), rng_(rng), on_broadcast_(std::move(on_broadcast)) {}

  void broadcast(wire::Bytes payload) override {
    if (on_broadcast_) on_broadcast_(std::move(payload));
  }
  [[nodiscard]] SimTime now() const override { return events_.now(); }
  TimerId schedule(SimTime delay, std::function<void()> action) override {
    return events_.schedule_after(delay, std::move(action));
  }
  void cancel(TimerId id) override { events_.cancel(id); }
  [[nodiscard]] Vec2 position() const override { return {}; }
  [[nodiscard]] Rng& rng() override { return rng_; }

 private:
  sim::EventQueue& events_;
  Rng rng_;
  std::function<void(wire::Bytes)> on_broadcast_;
};

constexpr int kNodes = 6;
constexpr SimTime kLinkDelay = SimTime::from_millis(2);

/// Six nodes on a line (index adjacency |i-j| == 1), each a full stack:
/// Middleware + Discovery over a QueuePlatform, wired through one
/// FaultInjector per *directed* link so each path misbehaves
/// independently.  The channel is the soak's stand-in for the radio: it
/// wraps engine frames as kData datagrams, carries HELLOs verbatim, and
/// routes by the line adjacency with a fixed per-hop delay.
class SoakWorld {
 public:
  explicit SoakWorld(std::uint64_t seed)
      : master_(seed), channel_platform_(events_, master_.fork()) {
    tuples::register_standard_tuples();

    net::FaultPlan plan;
    plan.drop = 0.3;
    plan.duplicate = 0.1;
    plan.reorder = 0.25;
    plan.reorder_window = 5;
    plan.truncate = 0.05;
    plan.corrupt = 0.05;
    // Two blackout windows on the one link crossing the group boundary
    // (ids 1..4 vs 5..6, i.e. the line's 3↔4 index link).  The second
    // window ends exactly when the fault phase does, so the partition
    // heals on a reliable channel and re-propagation re-coheres both
    // sides deterministically.
    const std::vector<NodeId> left{NodeId{1}, NodeId{2}, NodeId{3},
                                   NodeId{4}};
    plan.partitions.push_back(
        {SimTime::from_seconds(3), SimTime::from_seconds(1), left});
    plan.partitions.push_back(
        {SimTime::from_millis(8500), SimTime::from_millis(1500), left});

    for (int i = 0; i < kNodes; ++i) {
      nodes_.push_back(std::make_unique<Node>(*this, i));
    }
    for (int i = 0; i < kNodes; ++i) {
      for (const int j : neighbors_of(i)) {
        links_.emplace(key(i, j), std::make_unique<net::FaultInjector>(
                                      plan, channel_platform_, hub_.metrics));
      }
    }
  }

  /// The scripted scenario; every control event rides the same queue.
  void run() {
    for (auto& n : nodes_) n->disc->start();
    events_.schedule_at(SimTime::from_seconds(1), [this] {
      nodes_[0]->mw.inject(
          std::make_unique<tuples::GradientTuple>("main"));
    });
    events_.schedule_at(SimTime::from_millis(1200), [this] {
      nodes_[kNodes - 1]->mw.inject(
          std::make_unique<tuples::GradientTuple>("doomed"));
    });
    events_.schedule_at(SimTime::from_seconds(2),
                        [this] { faulty_ = chaos_enabled; });
    events_.schedule_at(SimTime::from_seconds(10), [this] {
      // Quiesce: faults off first, then flush — released datagrams must
      // not re-enter the injectors.
      faulty_ = false;
      for (auto& [k, inj] : links_) inj->flush();
    });
    // Post-outage restart storm, in two parity waves.  Every node's
    // beacon daemon comes back beaconing from seq 0; the opposite
    // parity still holds the old session, detects the regression, and
    // resyncs (down + up + re-propagation).  Two waves, because two
    // simultaneously-restarted endpoints have both forgotten each other
    // and would resync nothing; on a line, neighbours always have
    // opposite parity, so each wave is observed by every neighbour.
    events_.schedule_at(SimTime::from_millis(11300), [this] {
      for (int i = 0; i < kNodes; i += 2) restart_discovery(i);
    });
    events_.schedule_at(SimTime::from_seconds(12), [this] {
      for (int i = 1; i < kNodes; i += 2) restart_discovery(i);
    });
    // The doomed gradient's source dies *after* the network calms and
    // resyncs, so the retraction cascade must drain a coherent field
    // completely — any surviving replica is a leak.
    events_.schedule_at(SimTime::from_millis(12500),
                        [this] { kill(kNodes - 1); });
    events_.run_until(SimTime::from_seconds(14));
  }

  [[nodiscard]] bool alive(int i) const { return nodes_[i]->alive; }
  [[nodiscard]] Middleware& mw(int i) { return nodes_[i]->mw; }
  [[nodiscard]] net::Discovery& disc(int i) { return *nodes_[i]->disc; }
  [[nodiscard]] obs::Hub& hub() { return hub_; }
  [[nodiscard]] std::size_t total_held() const {
    std::size_t n = 0;
    for (const auto& [k, inj] : links_) n += inj->held();
    return n;
  }
  [[nodiscard]] static std::vector<int> neighbors_of(int i) {
    std::vector<int> out;
    if (i > 0) out.push_back(i - 1);
    if (i + 1 < kNodes) out.push_back(i + 1);
    return out;
  }

 private:
  struct Node {
    Node(SoakWorld& w, int i)
        : platform(w.events_, w.master_.fork(),
                   [&w, i](wire::Bytes frame) {
                     w.send(i, net::Datagram::data(id_of(i), frame));
                   }),
          mw(id_of(i), platform, {}, &w.hub_) {
      make_discovery(w, i);
    }

    /// (Re)creates the discovery instance — a fresh one beacons from
    /// seq 0, which is exactly what a restarted daemon looks like on
    /// the air.
    void make_discovery(SoakWorld& w, int i) {
      disc = std::make_unique<net::Discovery>(
          id_of(i), platform, discovery_options(),
          [&w, i](std::uint64_t seq, SimTime period) {
            w.send(i, net::Datagram::hello(id_of(i), seq, period));
          },
          w.hub_.metrics);
      disc->on_neighbor_up([this](NodeId n) { mw.on_neighbor_up(n); });
      disc->on_neighbor_down([this](NodeId n) { mw.on_neighbor_down(n); });
    }

    QueuePlatform platform;
    Middleware mw;
    std::unique_ptr<net::Discovery> disc;
    bool alive = true;
  };

  [[nodiscard]] static net::DiscoveryOptions discovery_options() {
    net::DiscoveryOptions o;
    o.beacon_period = SimTime::from_millis(100);
    o.beacon_jitter = 0.2;
    o.expiry_missed_beacons = 3;
    return o;
  }

  /// Models a beacon-daemon restart on node `i`: the replacement
  /// instance beacons from seq 0, so every peer sees a deep seq
  /// regression, tears the old session down, and re-announces — which
  /// makes the peers' engines re-propagate their tuples (the
  /// restart-resync path under test, and the anti-entropy event an
  /// event-driven middleware needs after an outage of silent losses).
  void restart_discovery(int i) {
    if (!nodes_[i]->alive) return;
    nodes_[i]->make_discovery(*this, i);
    nodes_[i]->disc->start();
  }

  [[nodiscard]] static int key(int i, int j) { return i * kNodes + j; }
  [[nodiscard]] net::FaultInjector& link(int i, int j) {
    return *links_.at(key(i, j));
  }

  /// One already-encoded datagram leaves node `i` toward each line
  /// neighbour, through that directed link's injector while the fault
  /// phase is on.
  void send(int i, wire::Bytes bytes) {
    if (!nodes_[i]->alive) return;
    for (const int j : neighbors_of(i)) {
      const auto deliver = [this, j](const wire::Bytes& damaged) {
        const auto copy = std::make_shared<const wire::Bytes>(damaged);
        events_.schedule_after(kLinkDelay,
                               [this, j, copy] { receive(j, *copy); });
      };
      if (faulty_) {
        link(i, j).process(bytes, deliver, id_of(i), id_of(j));
      } else {
        deliver(bytes);
      }
    }
  }

  void receive(int j, const wire::Bytes& bytes) {
    if (!nodes_[j]->alive) return;
    net::Datagram d;
    try {
      d = net::Datagram::decode(bytes);
    } catch (const wire::DecodeError&) {
      return;  // truncated/corrupted past recognition
    }
    switch (d.kind) {
      case net::DatagramKind::kHello:
        nodes_[j]->disc->on_hello(d.sender, d.seq, d.period);
        return;
      case net::DatagramKind::kData:
        if (d.sender == id_of(j)) return;  // own echo
        nodes_[j]->mw.on_datagram(d.sender, d.payload);
        return;
      case net::DatagramKind::kBatch:
        return;  // this harness speaks the v1 wire only
    }
  }

  void kill(int i) {
    nodes_[i]->alive = false;
    nodes_[i]->disc->stop();
  }

 public:
  /// Set false before run() for the benign control run: the scenario
  /// plays out identically but the injectors are never consulted.
  bool chaos_enabled = true;

 private:
  sim::EventQueue events_;
  Rng master_;
  obs::Hub hub_;
  QueuePlatform channel_platform_;  // clock + rng source for the injectors
  std::vector<std::unique_ptr<Node>> nodes_;
  std::map<int, std::unique_ptr<net::FaultInjector>> links_;
  bool faulty_ = false;
};

/// A per-seed result snapshot, comparable across runs for determinism.
struct SoakSnapshot {
  std::vector<std::int64_t> hops;  // main-gradient hop per alive node
  std::int64_t processed = 0;
  std::int64_t delivered = 0;
  std::int64_t dropped = 0;

  bool operator==(const SoakSnapshot&) const = default;
};

void run_soak_and_assert(std::uint64_t seed, bool chaos = true,
                         SoakSnapshot* out = nullptr) {
  SoakWorld world(seed);
  world.chaos_enabled = chaos;
  world.run();
  SoakSnapshot snap;

  const Pattern main_p =
      Pattern::of_type(tuples::GradientTuple::kTag).eq("name", "main");
  const Pattern doomed_p =
      Pattern::of_type(tuples::GradientTuple::kTag).eq("name", "doomed");

  for (int i = 0; i < kNodes; ++i) {
    if (!world.alive(i)) continue;
    // Gradient hop values equal the BFS ground truth: on a line with the
    // source at index 0, node i sits exactly i hops out.
    const auto replica = world.mw(i).read_one(main_p);
    ASSERT_NE(replica, nullptr) << "seed " << seed << ": node " << i
                                << " lost the main gradient";
    const auto hop = replica->content().at("hopcount").as_int();
    EXPECT_EQ(hop, i) << "seed " << seed << ": node " << i;
    snap.hops.push_back(hop);

    // No tuple leaks past its retraction: the doomed gradient's source
    // died and the cascade must have drained every replica.
    EXPECT_TRUE(world.mw(i).read(doomed_p).empty())
        << "seed " << seed << ": node " << i << " leaked the doomed tuple";

    // Neighbour tables equal the reachability graph.
    auto got = world.disc(i).neighbors();
    std::sort(got.begin(), got.end());
    std::vector<NodeId> expected;
    for (const int j : SoakWorld::neighbors_of(i)) {
      if (world.alive(j)) expected.push_back(id_of(j));
    }
    EXPECT_EQ(got, expected) << "seed " << seed << ": node " << i;
  }

  // Metrics conservation: every datagram the injectors saw is accounted
  // for, and the flush left nothing in flight.
  auto& m = world.hub().metrics;
  snap.processed = m.get("net.fault.processed");
  snap.delivered = m.get("net.fault.delivered");
  snap.dropped = m.get("net.fault.drop");
  EXPECT_EQ(snap.processed,
            snap.delivered + snap.dropped + m.get("net.fault.partition_drop"));
  EXPECT_EQ(world.total_held(), 0u);
  if (chaos) {
    // The chaos was real, not vacuously converged...
    EXPECT_GT(snap.dropped, 0);
    EXPECT_GT(m.get("net.fault.reorder"), 0);
    EXPECT_GT(m.get("net.fault.partition_drop"), 0);
    EXPECT_GT(m.get("net.fault.dup"), 0);
    // ...and the discovery hardening earned its keep: reordered beacons
    // were recognised as stale, and the post-outage restart storm went
    // through the seq-regression path.
    EXPECT_GT(m.get("net.hello.stale"), 0);
    EXPECT_GT(m.get("net.hello.restart"), 0);
  }
  if (out != nullptr) *out = snap;
}

// The control run: the harness itself, faults never enabled, must
// satisfy every invariant — otherwise a converging chaos run proves
// nothing about the middleware.
TEST(Soak, BenignControlRunConverges) {
  run_soak_and_assert(1, /*chaos=*/false);
}

TEST(Soak, ConvergesUnderChurnSeed1) { run_soak_and_assert(1); }
TEST(Soak, ConvergesUnderChurnSeed2) { run_soak_and_assert(2); }
TEST(Soak, ConvergesUnderChurnSeed3) { run_soak_and_assert(3); }

TEST(Soak, IdenticalSeedsProduceIdenticalRuns) {
  SoakSnapshot a, b;
  run_soak_and_assert(1, /*chaos=*/true, &a);
  run_soak_and_assert(1, /*chaos=*/true, &b);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace tota
