// Tests for the observability subsystem (src/obs/): registry handle
// semantics, histogram accuracy against the exact Summary, tracer ring
// wraparound, and JSON export / parse round-trips.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "obs/export.h"
#include "obs/hub.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace tota::obs {
namespace {

// --- MetricsRegistry ---------------------------------------------------

TEST(MetricsRegistry, RegistrationIsIdempotentAndHandlesAreStable) {
  MetricsRegistry reg;
  Counter& a = reg.counter("radio.tx");
  Counter& b = reg.counter("radio.tx");
  EXPECT_EQ(&a, &b);

  a.inc();
  a.inc(4);
  EXPECT_EQ(b.value(), 5);

  // Registering many other instruments must not invalidate `a`
  // (std::map storage: no rehash/relocation).
  for (int i = 0; i < 100; ++i) {
    reg.counter("c" + std::to_string(i)).inc();
  }
  a.inc();
  EXPECT_EQ(reg.counter("radio.tx").value(), 6);
}

TEST(MetricsRegistry, KindsHaveSeparateNamespaces) {
  MetricsRegistry reg;
  reg.counter("x").inc(7);
  reg.gauge("x").set(2.5);
  reg.histogram("x").record(1.0);
  EXPECT_EQ(reg.counter("x").value(), 7);
  EXPECT_DOUBLE_EQ(reg.gauge("x").value(), 2.5);
  EXPECT_EQ(reg.histogram("x").count(), 1u);
}

TEST(MetricsRegistry, GetMatchesLegacyCountersSemantics) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.get("never.registered"), 0);  // absent reads as 0
  reg.counter("radio.tx").inc(3);
  EXPECT_EQ(reg.get("radio.tx"), 3);
}

TEST(MetricsRegistry, FindDoesNotRegister) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.find_counter("a"), nullptr);
  EXPECT_EQ(reg.find_gauge("a"), nullptr);
  EXPECT_EQ(reg.find_histogram("a"), nullptr);
  EXPECT_TRUE(reg.counters().empty());

  reg.counter("a").inc();
  ASSERT_NE(reg.find_counter("a"), nullptr);
  EXPECT_EQ(reg.find_counter("a")->value(), 1);
}

TEST(MetricsRegistry, MergeFromSumsAndRegisters) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.counter("tx").inc(2);
  b.counter("tx").inc(3);
  b.counter("only_in_b").inc(1);
  b.gauge("g").set(4.0);
  b.histogram("h").record(10.0);
  b.histogram("h").record(20.0);

  a.merge_from(b);
  EXPECT_EQ(a.get("tx"), 5);
  EXPECT_EQ(a.get("only_in_b"), 1);
  EXPECT_DOUBLE_EQ(a.gauge("g").value(), 4.0);
  EXPECT_EQ(a.histogram("h").count(), 2u);
  EXPECT_DOUBLE_EQ(a.histogram("h").sum(), 30.0);
}

TEST(MetricsRegistry, ResetZeroesButKeepsHandles) {
  MetricsRegistry reg;
  Counter& c = reg.counter("tx");
  Histogram& h = reg.histogram("lat");
  c.inc(9);
  h.record(5.0);

  reg.reset();
  EXPECT_EQ(c.value(), 0);
  EXPECT_TRUE(h.empty());
  c.inc();  // handle still live and wired to the registry
  EXPECT_EQ(reg.get("tx"), 1);
}

// --- Histogram ---------------------------------------------------------

TEST(Histogram, ExactMomentsApproximateQuantiles) {
  // Compare against Summary, which keeps every sample and reports exact
  // nearest-rank quantiles.  The log-linear buckets (8 per octave)
  // guarantee ±6% relative error on quantiles; moments are exact.
  Histogram h;
  Summary s;
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    // Spread over several octaves, like repair latencies in ms.
    const double v = std::exp(rng.uniform(0.0, 8.0));
    h.record(v);
    s.add(v);
  }
  EXPECT_EQ(h.count(), s.count());
  EXPECT_DOUBLE_EQ(h.sum(), s.sum());
  EXPECT_DOUBLE_EQ(h.min(), s.min());
  EXPECT_DOUBLE_EQ(h.max(), s.max());
  EXPECT_DOUBLE_EQ(h.mean(), s.mean());
  for (const double q : {0.1, 0.5, 0.9, 0.95, 0.99}) {
    const double exact = s.quantile(q);
    const double approx = h.quantile(q);
    EXPECT_NEAR(approx, exact, exact * 0.07)
        << "q=" << q << " exact=" << exact << " approx=" << approx;
  }
}

TEST(Histogram, QuantileEndpointsAreClampedToObservedRange) {
  Histogram h;
  h.record(3.0);
  h.record(300.0);
  // Low end: a bucket-midpoint estimate of the smallest sample, clamped
  // so it can never undershoot the observed min.
  EXPECT_GE(h.quantile(0.0), 3.0);
  EXPECT_NEAR(h.quantile(0.0), 3.0, 3.0 * 0.07);
  // High end: the exact max (clamp beats the midpoint at the edge).
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 300.0);
  EXPECT_GE(h.quantile(0.5), 3.0);
  EXPECT_LE(h.quantile(0.5), 300.0);
}

TEST(Histogram, SingleSampleReportsItselfEverywhere) {
  Histogram h;
  h.record(42.0);
  EXPECT_DOUBLE_EQ(h.min(), 42.0);
  EXPECT_DOUBLE_EQ(h.max(), 42.0);
  EXPECT_DOUBLE_EQ(h.mean(), 42.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 42.0);
}

TEST(Histogram, NonPositiveSamplesLandInZeroBucket) {
  Histogram h;
  h.record(0.0);
  h.record(-5.0);
  h.record(10.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.1), 0.0);  // zero bucket reports as 0
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
}

TEST(Histogram, EmptyQuantileIsNaN) {
  Histogram h;
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));
}

TEST(Histogram, MergeMatchesRecordingEverythingIntoOne) {
  Histogram a;
  Histogram b;
  Histogram all;
  for (int i = 1; i <= 50; ++i) {
    a.record(i);
    all.record(i);
  }
  for (int i = 51; i <= 100; ++i) {
    b.record(i);
    all.record(i);
  }
  a.merge_from(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.sum(), all.sum());
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
  EXPECT_DOUBLE_EQ(a.quantile(0.5), all.quantile(0.5));
}

// --- Tracer ------------------------------------------------------------

Span make_span(std::uint64_t seq) {
  return {SimTime(static_cast<std::int64_t>(seq)), NodeId{1}, Stage::kStore,
          TupleUid{NodeId{1}, seq}, 0};
}

TEST(Tracer, FillsThenWrapsOldestFirst) {
  Tracer tr(4);
  for (std::uint64_t i = 0; i < 3; ++i) {
    const Span s = make_span(i);
    tr.record(s.t, s.node, s.stage, s.cause, s.hop);
  }
  EXPECT_EQ(tr.size(), 3u);
  EXPECT_EQ(tr.dropped(), 0u);
  auto spans = tr.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans.front().cause.sequence(), 0u);
  EXPECT_EQ(spans.back().cause.sequence(), 2u);

  // Push past capacity: 7 total through a ring of 4 keeps the last 4.
  for (std::uint64_t i = 3; i < 7; ++i) {
    const Span s = make_span(i);
    tr.record(s.t, s.node, s.stage, s.cause, s.hop);
  }
  EXPECT_EQ(tr.recorded(), 7u);
  EXPECT_EQ(tr.size(), 4u);
  EXPECT_EQ(tr.dropped(), 3u);
  spans = tr.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(spans[i].cause.sequence(), 3 + i);  // oldest-first: 3,4,5,6
  }
}

TEST(Tracer, DisableStopsRecording) {
  Tracer tr(4);
  tr.set_enabled(false);
  const Span s = make_span(0);
  tr.record(s.t, s.node, s.stage, s.cause, s.hop);
  EXPECT_EQ(tr.size(), 0u);
  tr.set_enabled(true);
  tr.record(s.t, s.node, s.stage, s.cause, s.hop);
#if TOTA_OBS_ENABLED
  EXPECT_EQ(tr.size(), 1u);
#else
  EXPECT_EQ(tr.size(), 0u);
#endif
}

TEST(Tracer, ClearResetsEverything) {
  Tracer tr(2);
  for (std::uint64_t i = 0; i < 5; ++i) {
    const Span s = make_span(i);
    tr.record(s.t, s.node, s.stage, s.cause, s.hop);
  }
  tr.clear();
  EXPECT_EQ(tr.size(), 0u);
  EXPECT_EQ(tr.recorded(), 0u);
  EXPECT_TRUE(tr.snapshot().empty());
}

TEST(Tracer, StageNamesAreStable) {
  EXPECT_STREQ(stage_name(Stage::kInject), "inject");
  EXPECT_STREQ(stage_name(Stage::kPropagate), "propagate");
  EXPECT_STREQ(stage_name(Stage::kStore), "store");
  EXPECT_STREQ(stage_name(Stage::kRetract), "retract");
  EXPECT_STREQ(stage_name(Stage::kHeal), "heal");
  EXPECT_STREQ(stage_name(Stage::kProbe), "probe");
}

// --- Json --------------------------------------------------------------

TEST(Json, DumpParseRoundTripPreservesKindsAndValues) {
  Json::Object obj;
  obj.emplace("int", Json(std::int64_t{9007199254740993}));  // > 2^53
  obj.emplace("neg", Json(std::int64_t{-42}));
  obj.emplace("dbl", Json(0.125));
  obj.emplace("str", Json("line\nbreak \"quoted\" \\slash"));
  obj.emplace("flag", Json(true));
  obj.emplace("nothing", Json(nullptr));
  obj.emplace("arr", Json(Json::Array{Json(1), Json(2.5), Json("three")}));
  const Json doc{obj};

  for (const int indent : {-1, 2}) {
    const Json back = Json::parse(doc.dump(indent));
    ASSERT_TRUE(back.is_object());
    EXPECT_TRUE(back.at("int").is_int());
    EXPECT_EQ(back.at("int").as_int(), 9007199254740993);
    EXPECT_EQ(back.at("neg").as_int(), -42);
    EXPECT_TRUE(back.at("dbl").is_double());
    EXPECT_DOUBLE_EQ(back.at("dbl").as_double(), 0.125);
    EXPECT_EQ(back.at("str").as_string(), "line\nbreak \"quoted\" \\slash");
    EXPECT_TRUE(back.at("flag").as_bool());
    EXPECT_TRUE(back.at("nothing").is_null());
    ASSERT_EQ(back.at("arr").as_array().size(), 3u);
    EXPECT_EQ(back.at("arr").as_array()[2].as_string(), "three");
  }
}

TEST(Json, DumpIsDeterministicSortedKeys) {
  Json::Object obj;
  obj.emplace("zebra", Json(1));
  obj.emplace("alpha", Json(2));
  const std::string text = Json{obj}.dump();
  EXPECT_LT(text.find("alpha"), text.find("zebra"));
  EXPECT_EQ(text, Json{obj}.dump());  // byte-identical on repeat
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), JsonParseError);
  EXPECT_THROW(Json::parse("{"), JsonParseError);
  EXPECT_THROW(Json::parse("{\"a\":1} trailing"), JsonParseError);
  EXPECT_THROW(Json::parse("[1,]"), JsonParseError);
  EXPECT_THROW(Json::parse("'single'"), JsonParseError);
}

TEST(Json, ParseHandlesUnicodeEscapes) {
  const Json v = Json::parse("\"a\\u00e9b\"");
  EXPECT_EQ(v.as_string(), "a\xc3\xa9" "b");  // é in UTF-8
}

// --- Exporters ---------------------------------------------------------

TEST(Export, BenchJsonRoundTripsCountersExactly) {
  Hub hub;
  hub.metrics.counter("radio.tx").inc(123456789);
  hub.metrics.gauge("pop").set(49.0);
  Histogram& h = hub.metrics.histogram("maint.repair_ms");
  for (int i = 1; i <= 100; ++i) h.record(i);
  hub.tracer.record(SimTime::from_millis(5), NodeId{3}, Stage::kInject,
                    TupleUid{NodeId{3}, 1}, 0);

  const Json doc = Json::parse(bench_to_json("unit", hub).dump(2));
  EXPECT_EQ(doc.at("schema").as_string(), kBenchSchema);
  EXPECT_EQ(doc.at("bench").as_string(), "unit");
  EXPECT_EQ(doc.at("metrics").at("radio.tx").as_int(), 123456789);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("pop").as_double(), 49.0);

  const Json& hist = doc.at("histograms").at("maint.repair_ms");
  EXPECT_EQ(hist.at("count").as_int(), 100);
  EXPECT_DOUBLE_EQ(hist.at("min").as_double(), 1.0);
  EXPECT_DOUBLE_EQ(hist.at("max").as_double(), 100.0);
  EXPECT_NEAR(hist.at("p50").as_double(), 50.0, 50.0 * 0.05);

#if TOTA_OBS_ENABLED
  const Json& trace = doc.at("trace");
  EXPECT_EQ(trace.at("recorded").as_int(), 1);
  ASSERT_EQ(trace.at("spans").as_array().size(), 1u);
  const Json& span = trace.at("spans").as_array()[0];
  EXPECT_EQ(span.at("t_us").as_int(), 5000);
  EXPECT_EQ(span.at("stage").as_string(), "inject");
  EXPECT_EQ(span.at("uid").as_string(), "3:1");
  EXPECT_EQ(span.at("hop").as_int(), 0);
#endif
}

TEST(Export, TraceJsonHonoursMaxSpans) {
  Hub hub;
  for (std::uint64_t i = 0; i < 10; ++i) {
    hub.tracer.record(SimTime(static_cast<std::int64_t>(i)), NodeId{1},
                      Stage::kStore, TupleUid{NodeId{1}, i}, 0);
  }
  const Json trace = trace_to_json(hub.tracer, 3);
#if TOTA_OBS_ENABLED
  ASSERT_EQ(trace.at("spans").as_array().size(), 3u);
  // Newest 3 of 10, still oldest-first among themselves.
  EXPECT_EQ(trace.at("spans").as_array()[0].at("uid").as_string(), "1:7");
  EXPECT_EQ(trace.at("spans").as_array()[2].at("uid").as_string(), "1:9");
#else
  EXPECT_TRUE(trace.at("spans").as_array().empty());
#endif
}

TEST(Export, CsvHasOneRowPerScalarAndPerHistogramStat) {
  MetricsRegistry reg;
  reg.counter("tx").inc(2);
  reg.histogram("lat").record(7.0);
  const std::string csv = metrics_to_csv(reg);
  EXPECT_NE(csv.find("tx,counter,2"), std::string::npos);
  EXPECT_NE(csv.find("lat.count,histogram,1"), std::string::npos);
  EXPECT_NE(csv.find("lat.p50,histogram,"), std::string::npos);
}

}  // namespace
}  // namespace tota::obs
