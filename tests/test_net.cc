// Unit tests for the live-network runtime (src/net): the datagram
// envelope, the discovery state machine (against the FakePlatform's
// controllable clock/timers/Rng — no sockets), the real-time EventLoop,
// and an in-process two-node LivePlatform integration run over loopback
// UDP (skipped where sockets are unavailable).
#include <gtest/gtest.h>
#include <unistd.h>

#include <vector>

#include "fake_platform.h"
#include "net/datagram.h"
#include "net/discovery.h"
#include "net/event_loop.h"
#include "net/live_platform.h"
#include "net/mass_live.h"
#include "tota/middleware.h"
#include "tuples/all.h"
#include "tuples/gradient_tuple.h"

namespace tota::net {
namespace {

using tota::testing::FakePlatform;

// --- datagram envelope ----------------------------------------------------

TEST(Datagram, HelloRoundTrips) {
  const auto bytes =
      Datagram::hello(NodeId{7}, 42, SimTime::from_millis(500));
  const Datagram d = Datagram::decode(bytes);
  EXPECT_EQ(d.kind, DatagramKind::kHello);
  EXPECT_EQ(d.sender, NodeId{7});
  EXPECT_EQ(d.seq, 42u);
  EXPECT_EQ(d.period, SimTime::from_millis(500));
}

TEST(Datagram, DataRoundTripsPayloadVerbatim) {
  const wire::Bytes frame = {0x01, 0xAB, 0xCD, 0x00, 0xEF};
  const auto bytes = Datagram::data(NodeId{3}, frame);
  const Datagram d = Datagram::decode(bytes);
  EXPECT_EQ(d.kind, DatagramKind::kData);
  EXPECT_EQ(d.sender, NodeId{3});
  ASSERT_EQ(d.payload.size(), frame.size());
  EXPECT_TRUE(std::equal(frame.begin(), frame.end(), d.payload.begin()));
}

TEST(Datagram, RejectsGarbage) {
  // Wrong magic (foreign traffic on our port).
  EXPECT_THROW(Datagram::decode(wire::Bytes{0x00, 0x01, 0x01, 0x07}),
               wire::DecodeError);
  // Wrong version.
  EXPECT_THROW(Datagram::decode(wire::Bytes{kMagic, 0x63, 0x01, 0x07}),
               wire::DecodeError);
  // Unknown kind.
  EXPECT_THROW(Datagram::decode(wire::Bytes{kMagic, kVersion, 0x09, 0x07}),
               wire::DecodeError);
  // Truncated.
  EXPECT_THROW(Datagram::decode(wire::Bytes{kMagic, kVersion}),
               wire::DecodeError);
  EXPECT_THROW(Datagram::decode(wire::Bytes{}), wire::DecodeError);
  // HELLO must not have trailing bytes.
  auto hello = Datagram::hello(NodeId{1}, 1, SimTime::from_millis(100));
  hello.push_back(0x00);
  EXPECT_THROW(Datagram::decode(hello), wire::DecodeError);
  // Sender id 0 is reserved as invalid.
  EXPECT_THROW(Datagram::decode(wire::Bytes{kMagic, kVersion, 0x02, 0x00}),
               wire::DecodeError);
}

// --- discovery state machine ----------------------------------------------

constexpr SimTime kPeriod = SimTime::from_millis(100);

class DiscoveryTest : public ::testing::Test {
 protected:
  DiscoveryTest() {
    DiscoveryOptions opts;
    opts.beacon_period = kPeriod;
    opts.beacon_jitter = 0.2;
    opts.expiry_missed_beacons = 3;
    discovery_ = std::make_unique<Discovery>(
        NodeId{1}, platform_, opts,
        [this](std::uint64_t seq, SimTime period) {
          // Encode like the legacy (unbatched) session does, so the
          // wire-shape assertions below keep covering the v1 HELLO.
          sent_.push_back(net::Datagram::hello(NodeId{1}, seq, period));
          send_times_.push_back(platform_.now());
        },
        metrics_);
    discovery_->on_neighbor_up([this](NodeId n) { ups_.push_back(n); });
    discovery_->on_neighbor_down([this](NodeId n) { downs_.push_back(n); });
  }

  void hear(NodeId from, std::uint64_t seq = 0) {
    discovery_->on_hello(from, seq, kPeriod);
  }

  FakePlatform platform_;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<Discovery> discovery_;
  std::vector<wire::Bytes> sent_;
  std::vector<SimTime> send_times_;
  std::vector<NodeId> ups_;
  std::vector<NodeId> downs_;
};

TEST_F(DiscoveryTest, FirstHelloIsOneUpRepeatsAreNone) {
  discovery_->start();
  hear(NodeId{2}, 0);
  hear(NodeId{2}, 1);
  hear(NodeId{2}, 2);
  EXPECT_EQ(ups_, std::vector<NodeId>{NodeId{2}});
  EXPECT_TRUE(downs_.empty());
  EXPECT_TRUE(discovery_->knows(NodeId{2}));
  EXPECT_EQ(metrics_.get("net.neighbor.up"), 1);
  EXPECT_EQ(metrics_.get("net.hello.rx"), 3);
}

TEST_F(DiscoveryTest, OwnEchoedBeaconIsIgnored) {
  discovery_->start();
  hear(NodeId{1});  // the medium echoes our own HELLO back
  EXPECT_TRUE(ups_.empty());
  EXPECT_FALSE(discovery_->knows(NodeId{1}));
}

TEST_F(DiscoveryTest, ExpiryDeadlineIsKMissedBeaconsWithJitterMargin) {
  discovery_->start();
  hear(NodeId{2});
  // k=3 beacons at period 100ms, each allowed 20% late: 360ms.
  const SimTime expect =
      platform_.time + SimTime::from_millis(100.0 * 3 * 1.2);
  ASSERT_FALSE(platform_.scheduled.empty());
  EXPECT_EQ(platform_.scheduled.back().when, expect);
}

TEST_F(DiscoveryTest, NeighborExpiresAfterMissedBeacons) {
  discovery_->start();
  hear(NodeId{2});
  // No more HELLOs: running the pending timers reaches the expiry.
  platform_.run_scheduled();
  EXPECT_EQ(downs_, std::vector<NodeId>{NodeId{2}});
  EXPECT_FALSE(discovery_->knows(NodeId{2}));
  EXPECT_EQ(metrics_.get("net.neighbor.down"), 1);
}

TEST_F(DiscoveryTest, SteadyBeaconsNeverExpire) {
  discovery_->start();
  hear(NodeId{2}, 0);
  // Each fresh HELLO must cancel the previous expiry: simulate five
  // on-time beacons, then run everything scheduled so far.  Only the
  // *latest* expiry timer is live; all the cancelled ones are skipped,
  // but the latest fires (nothing follows it) — so exactly one down.
  for (std::uint64_t s = 1; s <= 5; ++s) {
    platform_.time += kPeriod;
    hear(NodeId{2}, s);
  }
  EXPECT_EQ(ups_.size(), 1u);
  EXPECT_TRUE(downs_.empty());
  // Five re-arms cancelled five timers; exactly one expiry is pending
  // among the scheduled actions (plus the beacon chain's next timer).
  std::size_t live = platform_.pending_scheduled();
  EXPECT_EQ(live, 2u);  // one live expiry + one pending beacon
}

TEST_F(DiscoveryTest, FlapEmitsExactlyOneDownAndOneUp) {
  discovery_->start();
  hear(NodeId{2});
  platform_.run_scheduled();  // expire: one down
  ASSERT_EQ(downs_.size(), 1u);
  hear(NodeId{2}, 7);  // the node is heard again
  EXPECT_EQ(ups_.size(), 2u);   // initial + re-appearance
  EXPECT_EQ(downs_.size(), 1u); // no extra downs
  EXPECT_TRUE(discovery_->knows(NodeId{2}));
}

TEST_F(DiscoveryTest, BeaconScheduleIsDeterministicUnderSeededRng) {
  // Two discoveries over identically-seeded platforms (FakePlatform
  // seeds its Rng with a fixed constant) must emit beacons at identical
  // jittered instants.
  discovery_->start();
  for (int i = 0; i < 6; ++i) platform_.run_scheduled();

  FakePlatform platform2;
  obs::MetricsRegistry metrics2;
  std::vector<SimTime> times2;
  DiscoveryOptions opts;
  opts.beacon_period = kPeriod;
  opts.beacon_jitter = 0.2;
  Discovery d2(
      NodeId{1}, platform2, opts,
      [&](std::uint64_t, SimTime) { times2.push_back(platform2.now()); },
      metrics2);
  d2.start();
  for (int i = 0; i < 6; ++i) platform2.run_scheduled();

  ASSERT_EQ(send_times_.size(), times2.size());
  EXPECT_EQ(send_times_, times2);
  // And the jitter is real: consecutive gaps are not all the nominal
  // period.
  bool jittered = false;
  for (std::size_t i = 1; i < send_times_.size(); ++i) {
    if (send_times_[i] - send_times_[i - 1] != kPeriod) jittered = true;
  }
  EXPECT_TRUE(jittered);
}

TEST_F(DiscoveryTest, BeaconIntervalStaysWithinJitterBounds) {
  discovery_->start();
  for (int i = 0; i < 8; ++i) platform_.run_scheduled();
  ASSERT_GE(send_times_.size(), 2u);
  for (std::size_t i = 1; i < send_times_.size(); ++i) {
    const SimTime gap = send_times_[i] - send_times_[i - 1];
    EXPECT_GE(gap, kPeriod * 0.8);
    EXPECT_LE(gap, kPeriod * 1.2);
  }
}

TEST_F(DiscoveryTest, StopCancelsTimersAndForgetsSilently) {
  discovery_->start();
  hear(NodeId{2});
  hear(NodeId{3});
  EXPECT_EQ(ups_.size(), 2u);
  discovery_->stop();
  EXPECT_EQ(platform_.pending_scheduled(), 0u);
  platform_.run_scheduled();
  EXPECT_TRUE(downs_.empty());  // shutdown is not a link failure
  EXPECT_TRUE(discovery_->neighbors().empty());
}

TEST_F(DiscoveryTest, StaleReorderedHelloDoesNotRefreshExpiry) {
  discovery_->start();
  hear(NodeId{2}, 10);
  const std::size_t scheduled_before = platform_.scheduled.size();
  // A reordered old beacon (UDP and the fault injector both produce
  // these): it carries stale information and must not re-arm expiry.
  hear(NodeId{2}, 8);
  EXPECT_EQ(platform_.scheduled.size(), scheduled_before);
  EXPECT_EQ(metrics_.get("net.hello.stale"), 1);
  EXPECT_EQ(ups_.size(), 1u);
  EXPECT_TRUE(downs_.empty());
}

TEST_F(DiscoveryTest, DuplicateHelloIsStale) {
  discovery_->start();
  hear(NodeId{2}, 5);
  hear(NodeId{2}, 5);  // the medium duplicated the datagram
  EXPECT_EQ(metrics_.get("net.hello.stale"), 1);
  EXPECT_EQ(ups_.size(), 1u);
  EXPECT_TRUE(discovery_->knows(NodeId{2}));
}

TEST_F(DiscoveryTest, SeqRegressionBeyondWindowIsRestart) {
  discovery_->start();
  hear(NodeId{2}, 100);
  // Far below the stale window: the peer rebooted and beacons from zero.
  hear(NodeId{2}, 0);
  EXPECT_EQ(metrics_.get("net.hello.restart"), 1);
  EXPECT_EQ(metrics_.get("net.hello.stale"), 0);
  EXPECT_EQ(downs_, std::vector<NodeId>{NodeId{2}});  // old session down
  EXPECT_EQ(ups_.size(), 2u);                         // ...and re-announced
  EXPECT_TRUE(discovery_->knows(NodeId{2}));
}

TEST_F(DiscoveryTest, RestartSessionContinuesAtNewSeq) {
  discovery_->start();
  hear(NodeId{2}, 100);
  hear(NodeId{2}, 0);  // restart
  hear(NodeId{2}, 1);  // the new session's next beacon is not stale
  EXPECT_EQ(metrics_.get("net.hello.stale"), 0);
  EXPECT_EQ(ups_.size(), 2u);
  EXPECT_EQ(downs_.size(), 1u);
}

TEST_F(DiscoveryTest, AdvertisedPeriodIsClamped) {
  discovery_->start();
  // A hostile/corrupt HELLO advertising a one-hour beacon period must
  // not pin the neighbour entry: the default max_peer_period (5s) caps
  // the armed expiry at 5s * 3 missed * 1.2 jitter = 18s.
  discovery_->on_hello(NodeId{2}, 0, SimTime::from_seconds(3600));
  EXPECT_EQ(metrics_.get("net.hello.clamped"), 1);
  ASSERT_FALSE(platform_.scheduled.empty());
  EXPECT_EQ(platform_.scheduled.back().when,
            platform_.time + SimTime::from_seconds(18));
}

TEST_F(DiscoveryTest, HellosCarryIncreasingSeqAndAdvertisedPeriod) {
  discovery_->start();
  platform_.run_scheduled();
  ASSERT_GE(sent_.size(), 2u);
  const Datagram first = Datagram::decode(sent_[0]);
  const Datagram second = Datagram::decode(sent_[1]);
  EXPECT_EQ(first.sender, NodeId{1});
  EXPECT_EQ(first.seq + 1, second.seq);
  EXPECT_EQ(first.period, kPeriod);
}

// --- event loop -----------------------------------------------------------

TEST(EventLoop, TimersFireInDeadlineOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule(SimTime::from_millis(20), [&] { order.push_back(2); });
  loop.schedule(SimTime::from_millis(5), [&] { order.push_back(1); });
  loop.schedule(SimTime::from_millis(40), [&] {
    order.push_back(3);
    loop.stop();
  });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoop, CancelPreventsFiring) {
  EventLoop loop;
  bool fired = false;
  const auto id =
      loop.schedule(SimTime::from_millis(5), [&] { fired = true; });
  loop.cancel(id);
  EXPECT_EQ(loop.pending_timers(), 0u);
  loop.run_for(SimTime::from_millis(15));
  EXPECT_FALSE(fired);
}

TEST(EventLoop, RunForReturnsAtDeadline) {
  EventLoop loop;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    loop.schedule(SimTime::from_millis(10), tick);
  };
  loop.schedule(SimTime::from_millis(10), tick);
  loop.run_for(SimTime::from_millis(100));
  EXPECT_GE(ticks, 5);
  EXPECT_LE(ticks, 12);
}

TEST(EventLoop, FdReadinessDeliversCallback) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  EventLoop loop;
  std::string got;
  loop.add_fd(fds[0], [&] {
    char buf[16];
    const ssize_t n = ::read(fds[0], buf, sizeof(buf));
    if (n > 0) got.assign(buf, static_cast<std::size_t>(n));
    loop.stop();
  });
  loop.schedule(SimTime::from_millis(5),
                [&] { ASSERT_EQ(::write(fds[1], "ping", 4), 4); });
  loop.run_for(SimTime::from_millis(500));
  EXPECT_EQ(got, "ping");
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(EventLoop, StopsWhenNothingToWaitFor) {
  EventLoop loop;
  loop.run();  // no fds, no timers: must return, not hang
  SUCCEED();
}

TEST(EventLoop, ReusedFdNumberDoesNotInheritStaleReadiness) {
  // Two pipes readable in the same poll round.  The first callback
  // (dispatch is ascending-fd) removes and closes the second pipe, then
  // opens a fresh one — POSIX hands back the lowest free descriptor, so
  // the new pipe *reuses the removed fd number* — and registers it.  The
  // old pipe's pending POLLIN must not be delivered to the new
  // registration: nothing has ever been written to the new pipe.
  int a[2], b[2];
  ASSERT_EQ(::pipe(a), 0);
  ASSERT_EQ(::pipe(b), 0);
  ASSERT_LT(a[0], b[0]);

  EventLoop loop;
  int reused_fires = 0;
  int c0 = -1, c1 = -1;
  loop.add_fd(a[0], [&] {
    char buf[8];
    ASSERT_EQ(::read(a[0], buf, sizeof(buf)), 1);
    loop.remove_fd(b[0]);
    ::close(b[0]);
    ::close(b[1]);
    int c[2];
    ASSERT_EQ(::pipe(c), 0);
    c0 = c[0];
    c1 = c[1];
    ASSERT_EQ(c0, b[0]) << "lowest-free-fd reuse is POSIX-guaranteed";
    loop.add_fd(c0, [&] {
      char t[8];
      (void)::read(c0, t, sizeof(t));
      ++reused_fires;
    });
  });
  loop.add_fd(b[0], [&] { FAIL() << "removed registration fired"; });

  ASSERT_EQ(::write(a[1], "x", 1), 1);
  ASSERT_EQ(::write(b[1], "y", 1), 1);
  loop.run_for(SimTime::from_millis(30));
  EXPECT_EQ(reused_fires, 0) << "stale revents leaked into the reused fd";

  // The new registration is genuinely live once its own data arrives.
  ASSERT_GT(c1, 0);
  ASSERT_EQ(::write(c1, "z", 1), 1);
  loop.run_for(SimTime::from_millis(30));
  EXPECT_EQ(reused_fires, 1);

  loop.remove_fd(a[0]);
  loop.remove_fd(c0);
  ::close(a[0]);
  ::close(a[1]);
  ::close(c0);
  ::close(c1);
}

TEST(EventLoop, StopBeforeRunIsStickyAndConsumedOnce) {
  // Regression: a stop() requested while the loop was not running (a
  // start-up failure path, or a callback racing shutdown) used to be
  // silently lost — the next run() would hang until its first event.
  EventLoop loop;
  loop.stop();
  bool fired = false;
  loop.schedule(SimTime::from_millis(2), [&] { fired = true; });
  loop.run();  // must return immediately on the pending stop
  EXPECT_FALSE(fired);

  // The pending stop was consumed exactly once: the next run_for is a
  // normal run, not another immediate return.
  loop.run_for(SimTime::from_millis(30));
  EXPECT_TRUE(fired);
}

TEST(EventLoop, CancelledTimerTombstonesAreCompacted) {
  // Regression: cancel() only tombstoned the heap entry, so a periodic
  // cancel+reschedule pattern (discovery expiry re-arms do exactly
  // this) grew the heap without bound over the process lifetime.
  EventLoop loop;
  const auto never = SimTime::from_seconds(3600);
  std::vector<EventLoop::TimerId> ids;
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 64; ++i) {
      ids.push_back(loop.schedule(never, [] {}));
    }
    for (const auto id : ids) loop.cancel(id);
    ids.clear();
    // The bound documented on timer_entries(): tombstones never
    // outnumber live timers by more than the compaction slack.
    ASSERT_LE(loop.timer_entries(), 2 * loop.pending_timers() + 64);
  }
  EXPECT_EQ(loop.pending_timers(), 0u);
  EXPECT_LE(loop.timer_entries(), 64u);
}

// --- backend-parametrized loop behaviour ------------------------------------

// Every behavioural contract must hold identically on both readiness
// backends — mass-live picks epoll, other platforms poll, and the
// engine above must not be able to tell.
class LoopBackendTest : public ::testing::TestWithParam<LoopBackend> {};

TEST_P(LoopBackendTest, TimersFireInDeadlineOrder) {
  EventLoop loop(GetParam());
  std::vector<int> order;
  loop.schedule(SimTime::from_millis(20), [&] { order.push_back(2); });
  loop.schedule(SimTime::from_millis(5), [&] { order.push_back(1); });
  loop.schedule(SimTime::from_millis(40), [&] {
    order.push_back(3);
    loop.stop();
  });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_P(LoopBackendTest, SameInstantTimersFireInScheduleOrder) {
  // FIFO among equal deadlines is part of the timer contract (the sim
  // EventQueue guarantees it); both backends share the heap, but the
  // parity is what multi-backend CI actually pins.
  EventLoop loop(GetParam());
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    loop.schedule(SimTime::from_millis(5), [&order, i] {
      order.push_back(i);
    });
  }
  loop.run_for(SimTime::from_millis(40));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST_P(LoopBackendTest, FdReadinessDeliversCallback) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  EventLoop loop(GetParam());
  std::string got;
  loop.add_fd(fds[0], [&] {
    char buf[16];
    const ssize_t n = ::read(fds[0], buf, sizeof(buf));
    if (n > 0) got.assign(buf, static_cast<std::size_t>(n));
    loop.stop();
  });
  loop.schedule(SimTime::from_millis(5),
                [&] { ASSERT_EQ(::write(fds[1], "ping", 4), 4); });
  loop.run_for(SimTime::from_millis(500));
  EXPECT_EQ(got, "ping");
  loop.remove_fd(fds[0]);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST_P(LoopBackendTest, ReusedFdNumberDoesNotInheritStaleReadiness) {
  // The generation-stamp contract, on both backends: a callback of the
  // current dispatch round removes+closes another registered fd, a
  // fresh pipe reuses its number, and the stale readiness must not be
  // delivered to the new registration.
  int a[2], b[2];
  ASSERT_EQ(::pipe(a), 0);
  ASSERT_EQ(::pipe(b), 0);
  ASSERT_LT(a[0], b[0]);

  EventLoop loop(GetParam());
  int reused_fires = 0;
  int c0 = -1, c1 = -1;
  loop.add_fd(a[0], [&] {
    char buf[8];
    ASSERT_EQ(::read(a[0], buf, sizeof(buf)), 1);
    loop.remove_fd(b[0]);
    ::close(b[0]);
    ::close(b[1]);
    int c[2];
    ASSERT_EQ(::pipe(c), 0);
    c0 = c[0];
    c1 = c[1];
    ASSERT_EQ(c0, b[0]) << "lowest-free-fd reuse is POSIX-guaranteed";
    loop.add_fd(c0, [&] {
      char t[8];
      (void)::read(c0, t, sizeof(t));
      ++reused_fires;
    });
  });
  loop.add_fd(b[0], [&] { FAIL() << "removed registration fired"; });

  ASSERT_EQ(::write(a[1], "x", 1), 1);
  ASSERT_EQ(::write(b[1], "y", 1), 1);
  loop.run_for(SimTime::from_millis(30));
  EXPECT_EQ(reused_fires, 0) << "stale readiness leaked into the reused fd";

  ASSERT_GT(c1, 0);
  ASSERT_EQ(::write(c1, "z", 1), 1);
  loop.run_for(SimTime::from_millis(30));
  EXPECT_EQ(reused_fires, 1);

  loop.remove_fd(a[0]);
  loop.remove_fd(c0);
  ::close(a[0]);
  ::close(a[1]);
  ::close(c0);
  ::close(c1);
}

#if TOTA_HAVE_EPOLL
INSTANTIATE_TEST_SUITE_P(Backends, LoopBackendTest,
                         ::testing::Values(LoopBackend::kPoll,
                                           LoopBackend::kEpoll),
                         [](const auto& info) {
                           return info.param == LoopBackend::kEpoll
                                      ? "epoll"
                                      : "poll";
                         });
#else
INSTANTIATE_TEST_SUITE_P(Backends, LoopBackendTest,
                         ::testing::Values(LoopBackend::kPoll),
                         [](const auto&) { return std::string("poll"); });
#endif

// --- udp transport error accounting ----------------------------------------

TEST(UdpTransport, RealReceiveErrorIsCountedNotMasked) {
  obs::MetricsRegistry metrics;
  UdpOptions opts;
  opts.mode = UdpOptions::Mode::kBroadcast;
  opts.group = "127.255.255.255";
  opts.port = static_cast<std::uint16_t>(40000 + ((::getpid() + 97) % 20000));
  UdpTransport transport(opts, metrics);
  if (!transport.open()) {
    GTEST_SKIP() << "UDP unavailable here: " << transport.error();
  }

  // A cleanly drained empty queue (EAGAIN) is weather, not an error.
  EXPECT_EQ(transport.drain([](std::span<const std::uint8_t>) {}), 0u);
  EXPECT_EQ(metrics.get("net.udp.rx_err"), 0);
  EXPECT_TRUE(transport.error().empty());

  // Sabotage the descriptor behind the transport's back: recv now fails
  // with a real error (EBADF), which must be counted and recorded
  // instead of being silently treated as a drained queue.
  ::close(transport.fd());
  EXPECT_EQ(transport.drain([](std::span<const std::uint8_t>) {}), 0u);
  EXPECT_EQ(metrics.get("net.udp.rx_err"), 1);
  EXPECT_NE(transport.error().find("recv"), std::string::npos);
}

TEST(UdpTransport, DrainBudgetYieldsInsteadOfStarving) {
  // Regression: drain() looped until EAGAIN, so one flooded socket on a
  // multi-tenant loop starved every other tenant's socket and all due
  // timers.  A budget caps one drain; level-triggered readiness re-arms
  // the rest for the next wakeup.
  obs::MetricsRegistry metrics;
  UdpOptions opts;
  opts.mode = UdpOptions::Mode::kBroadcast;
  opts.group = "127.255.255.255";
  opts.port = static_cast<std::uint16_t>(40000 + ((::getpid() + 193) % 20000));
  opts.drain_budget = 4;
  UdpTransport transport(opts, metrics);
  if (!transport.open()) {
    GTEST_SKIP() << "UDP unavailable here: " << transport.error();
  }

  // The broadcast medium echoes: our own sends land in our own queue.
  const wire::Bytes datagram = {0x10, 0x20, 0x30};
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(transport.send(datagram));

  // Let loopback delivery finish before draining (it is effectively
  // synchronous on Linux, but the contract does not promise that), so
  // the first drain faces the whole 6-datagram backlog at once.
  ::usleep(20000);

  const std::size_t first =
      transport.drain([](std::span<const std::uint8_t>) {});
  ASSERT_EQ(first, 4u) << "drain must stop at the budget";
  EXPECT_EQ(metrics.get("net.udp.drain_yield"), 1);

  std::size_t rest = 0;
  for (int tries = 0; tries < 100 && rest < 2; ++tries) {
    rest += transport.drain([](std::span<const std::uint8_t>) {});
    if (rest < 2) ::usleep(2000);
  }
  EXPECT_EQ(rest, 2u) << "the remainder surfaces on the next drain";
}

// --- two live nodes over loopback UDP -------------------------------------

// Both platforms share one EventLoop and one process, but talk through
// real sockets: this is the smallest end-to-end proof that the engine
// runs unmodified over the live transport.  Skipped (not failed) in
// sandboxes without UDP.
TEST(LivePlatform, GradientCrossesRealSockets) {
  tuples::register_standard_tuples();
  const std::uint16_t port =
      static_cast<std::uint16_t>(40000 + (::getpid() % 20000));

  EventLoop loop;
  auto make_options = [&](std::uint64_t id) {
    LiveOptions o;
    o.id = NodeId{id};
    o.transport.mode = UdpOptions::Mode::kBroadcast;
    o.transport.group = "127.255.255.255";
    o.transport.port = port;
    o.discovery.beacon_period = SimTime::from_millis(30);
    return o;
  };

  obs::Hub hub_a, hub_b;
  LivePlatform pa(loop, make_options(1), &hub_a);
  LivePlatform pb(loop, make_options(2), &hub_b);
  Middleware ma(NodeId{1}, pa, {}, &hub_a);
  Middleware mb(NodeId{2}, pb, {}, &hub_b);
  pa.attach(ma);
  pb.attach(mb);

  if (!pa.start() || !pb.start()) {
    GTEST_SKIP() << "UDP unavailable here: " << pa.error() << pb.error();
  }

  ma.inject(std::make_unique<tuples::GradientTuple>("live-field"));
  const Pattern p =
      Pattern::of_type(tuples::GradientTuple::kTag).eq("name", "live-field");

  // Poll until node 2 holds the replica (or a generous deadline).
  std::unique_ptr<Tuple> replica;
  for (int i = 0; i < 40 && replica == nullptr; ++i) {
    loop.run_for(SimTime::from_millis(50));
    replica = mb.read_one(p);
  }
  ASSERT_NE(replica, nullptr) << "gradient never crossed the socket";
  EXPECT_EQ(replica->content().at("hopcount").as_int(), 1);
  EXPECT_EQ(hub_b.metrics.get("net.neighbor.up"), 1);
  // The medium echoes; each node must have dropped its own frames.
  EXPECT_GE(hub_a.metrics.get("net.data.echo"), 1);

  pa.stop();
  pb.stop();
}

// --- mass-live: N nodes on one multi-tenant loop ---------------------------

MassLiveOptions mass_options(int count, std::uint16_t port_salt) {
  MassLiveOptions o;
  o.count = count;
  o.transport.mode = UdpOptions::Mode::kBroadcast;
  o.transport.group = "127.255.255.255";
  o.transport.port =
      static_cast<std::uint16_t>(40000 + ((::getpid() + port_salt) % 20000));
  o.transport.rcvbuf = 4 << 20;
  o.discovery.beacon_period = SimTime::from_millis(40);
  o.discovery.expiry_missed_beacons = 6;
  o.batch.enabled = true;
  o.batch.flush_delay = SimTime::from_millis(2);
  o.digest_period = SimTime::from_millis(80);
  o.reliable = true;
  o.maintenance.hold_down = SimTime::from_millis(400);
  o.seed = 7;
  return o;
}

// The smoke_net.sh topology, in-process: three complete nodes on one
// loop must behave exactly like three processes — converge the gradient
// BFS-exact, observe the source's death, retract leak-free.
TEST(MassLive, TrioConvergesKillsAndRetracts) {
  MassLiveWorld world(mass_options(3, 389));
  if (!world.start()) {
    GTEST_SKIP() << "UDP unavailable here: " << world.error();
  }
  world.inject_gradient(0, "trio");

  ASSERT_TRUE(world.run_until(
      [&] { return world.converged("trio", 0) && world.mesh_complete(); },
      SimTime::from_seconds(10)))
      << "exact=" << world.bfs_exact_holders("trio", 0)
      << " wrong=" << world.wrong_hop_holders("trio", 0);
  EXPECT_EQ(world.bfs_exact_holders("trio", 0), 3);
  EXPECT_EQ(world.wrong_hop_holders("trio", 0), 0);

  world.kill(0);
  ASSERT_TRUE(world.run_until([&] { return world.leaked("trio") == 0; },
                              SimTime::from_seconds(10)))
      << world.leaked("trio") << " orphaned replicas leaked";
  // Both survivors observed the departure as a real topology change.
  EXPECT_GE(world.metric_sum("net.neighbor.down"), 2);
  world.stop();
}

// A dozen nodes under FaultInjector chaos on every receive path: the
// soak shape of scripts/mass_live.sh at unit-test scale.  Also pins the
// timer-heap tombstone bound under real churn — discovery expiry
// re-arms are exactly the cancel+reschedule pattern that used to grow
// the heap without bound.
TEST(MassLive, ChaosSoakConvergesLeakFreeWithBoundedTimerHeap) {
  MassLiveOptions opts = mass_options(12, 617);
  opts.fault.drop = 0.1;
  opts.fault.duplicate = 0.05;
  opts.fault.reorder = 0.05;
  opts.fault.reorder_window = 4;
  MassLiveWorld world(opts);
  if (!world.start()) {
    GTEST_SKIP() << "UDP unavailable here: " << world.error();
  }
  world.inject_gradient(0, "soak");

  ASSERT_TRUE(world.run_until(
      [&] { return world.converged("soak", 0) && world.mesh_complete(); },
      SimTime::from_seconds(20)))
      << "exact=" << world.bfs_exact_holders("soak", 0)
      << " wrong=" << world.wrong_hop_holders("soak", 0);
  EXPECT_GT(world.metric_sum("net.fault.drop"), 0)
      << "chaos was configured but never bit";

  world.kill(0);
  ASSERT_TRUE(world.run_until([&] { return world.leaked("soak") == 0; },
                              SimTime::from_seconds(20)))
      << world.leaked("soak") << " orphaned replicas leaked";

  // The documented tombstone bound held through all the expiry re-arm
  // churn of the whole soak.
  EXPECT_LE(world.loop().timer_entries(),
            2 * world.loop().pending_timers() + 64);
  world.stop();
}

// N platforms on one loop must be observationally equivalent to N
// processes: per-node hubs stay fully isolated while the shared loop
// carries every tenant's sockets and timers.
TEST(MassLive, TenantsShareTheLoopButNotTheirMetrics) {
  MassLiveWorld world(mass_options(4, 811));
  if (!world.start()) {
    GTEST_SKIP() << "UDP unavailable here: " << world.error();
  }
  // One socket per tenant, all registered with the one loop.
  EXPECT_EQ(world.loop().registered_fds(), 4u);

  world.inject_gradient(2, "iso");
  ASSERT_TRUE(world.run_until([&] { return world.converged("iso", 2); },
                              SimTime::from_seconds(10)));

  // Injection is visible only in the injecting node's hub; every node
  // counted its own traffic in its own hub.
  EXPECT_EQ(world.hub(2).metrics.get("engine.inject"), 1);
  for (int i = 0; i < 4; ++i) {
    if (i != 2) {
      EXPECT_EQ(world.hub(i).metrics.get("engine.inject"), 0);
    }
    EXPECT_GT(world.hub(i).metrics.get("net.udp.rx"), 0);
  }
  // The loop's own accounting lands in the loop hub, not any tenant's.
  EXPECT_GT(world.loop_hub().metrics.get("loop.fd_events"), 0);
  EXPECT_EQ(world.hub(0).metrics.get("loop.fd_events"), 0);
  world.stop();
}

}  // namespace
}  // namespace tota::net
