// Transport v2 suite: the BATCH grammar, the MTU-aware batcher, the
// reliable-ordered control channel, and the anti-entropy digests —
// plus the end-to-end soaks the v2 path exists for.
//
// Four layers of coverage:
//
//   1. Wire robustness — Datagram::decode fuzzed at every truncation
//      offset of every datagram kind (a UDP port is open to arbitrary
//      garbage; decode must throw or return, never misbehave), trailing
//      garbage rejected and counted, the BATCH skip-unknown-chunk
//      forward-compatibility contract pinned byte-by-byte.
//
//   2. Component units — pack_batches splitting, Batcher coalescing
//      (and its disabled mode's byte-identity with the v1 wire),
//      ReliableChannel's full state machine (ordering, dedup, floor
//      resync, window backpressure, backoff expiry, peer departure),
//      StoreDigest algebra, and the idempotence primitives behind
//      duplicate-RETRACT safety (HoldDownTable, BoundedUidFifo).
//
//   3. Engine integration — digest-driven resync re-sends exactly the
//      differing buckets; duplicate RETRACTs are no-ops.
//
//   4. TransportWorld soaks — full NetSession stacks on a line topology
//      over an in-memory channel: the drop-0.3 retraction soak (the
//      best-effort baseline leaks the doomed tuple, the reliable
//      channel drains it everywhere), the batching datagram-cost ratio,
//      and the partition-heal digest soak (a silent DATA hole heals
//      with O(diff) resend frames, not O(store)).  One soak leg runs
//      twice to pin bit-for-bit determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fake_platform.h"
#include "net/batch.h"
#include "net/datagram.h"
#include "net/fault.h"
#include "net/reliable.h"
#include "net/session.h"
#include "obs/hub.h"
#include "sim/event_queue.h"
#include "tota/bounded_uid_fifo.h"
#include "tota/digest.h"
#include "tota/hold_down.h"
#include "tota/middleware.h"
#include "tuples/all.h"
#include "tuples/gradient_tuple.h"
#include "wire/buffer.h"
#include "wire/frame.h"

namespace tota {
namespace {

using tota::testing::FakePlatform;

NodeId id_of(int i) { return NodeId{static_cast<std::uint64_t>(i) + 1}; }

wire::Bytes bytes_of(std::initializer_list<std::uint8_t> b) {
  return wire::Bytes(b);
}

// --- 1. wire robustness ----------------------------------------------------

/// A representative BATCH carrying every chunk kind once.
wire::Bytes sample_batch(NodeId sender) {
  const wire::Bytes frame = bytes_of({0x10, 0x20, 0x30, 0x40});
  std::vector<net::EncodedChunk> chunks;
  chunks.push_back(net::Datagram::chunk_hello(7, SimTime::from_millis(500)));
  chunks.push_back(net::Datagram::chunk_data(frame));
  chunks.push_back(net::Datagram::chunk_rel(9, 4, frame));
  chunks.push_back(net::Datagram::chunk_ack(NodeId{3}, 8));
  StoreDigest digest = StoreDigest::build({}, 4);
  chunks.push_back(net::Datagram::chunk_digest(digest.encode()));
  return net::Datagram::batch(sender, chunks);
}

/// Every strict prefix of a HELLO or BATCH datagram must throw — both
/// grammars end with an expect_done().  (DATA is different by design:
/// its payload is "the rest of the datagram", so a truncated DATA can
/// still be a well-formed envelope; the engine's frame decoder rejects
/// the payload later.)
void expect_all_prefixes_throw(const wire::Bytes& datagram) {
  for (std::size_t len = 0; len < datagram.size(); ++len) {
    EXPECT_THROW(
        net::Datagram::decode(std::span(datagram.data(), len)),
        wire::DecodeError)
        << "prefix of length " << len << " of " << datagram.size();
  }
}

TEST(DatagramFuzz, EveryHelloTruncationThrows) {
  expect_all_prefixes_throw(
      net::Datagram::hello(NodeId{77}, 300, SimTime::from_millis(500)));
}

TEST(DatagramFuzz, EveryBatchTruncationThrows) {
  expect_all_prefixes_throw(sample_batch(NodeId{300}));
}

TEST(DatagramFuzz, EveryDataTruncationThrowsOrShortens) {
  const wire::Bytes frame = bytes_of({1, 2, 3, 4, 5, 6, 7, 8});
  const wire::Bytes datagram = net::Datagram::data(NodeId{5}, frame);
  int decoded = 0;
  for (std::size_t len = 0; len < datagram.size(); ++len) {
    try {
      const net::Datagram d =
          net::Datagram::decode(std::span(datagram.data(), len));
      // A truncated DATA that still parses must only ever yield a
      // shorter payload — never bytes that were not on the wire.
      ASSERT_EQ(d.kind, net::DatagramKind::kData);
      ASSERT_LT(d.payload.size(), frame.size());
      ++decoded;
    } catch (const wire::DecodeError&) {
    }
  }
  EXPECT_GT(decoded, 0);  // the envelope really is length-agnostic
}

TEST(DatagramFuzz, EveryByteFlipThrowsOrDecodes) {
  // Single-byte corruption across a kitchen-sink BATCH: decode must
  // throw DecodeError or produce a datagram — anything else (crash,
  // out-of-bounds read) is what this test + ASan exist to catch.
  const wire::Bytes datagram = sample_batch(NodeId{6});
  for (std::size_t i = 0; i < datagram.size(); ++i) {
    for (const std::uint8_t flip : {0x01, 0x80, 0xFF}) {
      wire::Bytes mutated = datagram;
      mutated[i] ^= flip;
      try {
        (void)net::Datagram::decode(mutated);
      } catch (const wire::DecodeError&) {
      }
    }
  }
}

TEST(DatagramFuzz, TrailingGarbageRejected) {
  wire::Bytes hello =
      net::Datagram::hello(NodeId{1}, 1, SimTime::from_millis(100));
  hello.push_back(0x00);
  EXPECT_THROW(net::Datagram::decode(hello), wire::DecodeError);

  wire::Bytes batch = sample_batch(NodeId{1});
  batch.push_back(0xA7);
  EXPECT_THROW(net::Datagram::decode(batch), wire::DecodeError);
}

TEST(DatagramFuzz, ForeignAndMalformedEnvelopesRejected) {
  // Wrong magic, wrong version, unknown kind, invalid sender.
  EXPECT_THROW(net::Datagram::decode(bytes_of({0x00, 1, 1, 1, 1, 1})),
               wire::DecodeError);
  EXPECT_THROW(net::Datagram::decode(bytes_of({net::kMagic, 99, 1, 1, 1, 1})),
               wire::DecodeError);
  EXPECT_THROW(net::Datagram::decode(bytes_of({net::kMagic, net::kVersion,
                                               0x09, 1, 1, 1})),
               wire::DecodeError);
  EXPECT_THROW(net::Datagram::decode(bytes_of({net::kMagic, net::kVersion,
                                               0x01, 0, 1, 1})),
               wire::DecodeError);  // sender id 0 is invalid
  EXPECT_THROW(net::Datagram::decode({}), wire::DecodeError);
}

TEST(DatagramBatch, RoundtripsEveryChunkKind) {
  const wire::Bytes datagram = sample_batch(NodeId{42});
  const net::Datagram d = net::Datagram::decode(datagram);
  ASSERT_EQ(d.kind, net::DatagramKind::kBatch);
  EXPECT_EQ(d.sender, NodeId{42});
  EXPECT_EQ(d.skipped, 0u);
  ASSERT_EQ(d.chunks.size(), 5u);

  EXPECT_EQ(d.chunks[0].kind, net::ChunkKind::kHello);
  EXPECT_EQ(d.chunks[0].seq, 7u);
  EXPECT_EQ(d.chunks[0].period, SimTime::from_millis(500));

  EXPECT_EQ(d.chunks[1].kind, net::ChunkKind::kData);
  EXPECT_EQ(wire::Bytes(d.chunks[1].payload.begin(),
                        d.chunks[1].payload.end()),
            bytes_of({0x10, 0x20, 0x30, 0x40}));

  EXPECT_EQ(d.chunks[2].kind, net::ChunkKind::kRel);
  EXPECT_EQ(d.chunks[2].seq, 9u);
  EXPECT_EQ(d.chunks[2].floor, 4u);
  EXPECT_EQ(d.chunks[2].payload.size(), 4u);

  EXPECT_EQ(d.chunks[3].kind, net::ChunkKind::kAck);
  EXPECT_EQ(d.chunks[3].peer, NodeId{3});
  EXPECT_EQ(d.chunks[3].cum, 8u);

  EXPECT_EQ(d.chunks[4].kind, net::ChunkKind::kDigest);
  EXPECT_EQ(StoreDigest::decode(d.chunks[4].payload),
            StoreDigest::build({}, 4));
}

/// Hand-assembles a BATCH envelope so tests can write chunk kinds and
/// bodies the builders refuse to produce.
wire::Bytes raw_batch(NodeId sender,
                      const std::vector<std::pair<std::uint8_t, wire::Bytes>>&
                          chunks) {
  wire::Writer w;
  w.u8(net::kMagic);
  w.u8(net::kVersion);
  w.u8(static_cast<std::uint8_t>(net::DatagramKind::kBatch));
  w.uvarint(sender.value());
  w.uvarint(chunks.size());
  for (const auto& [kind, body] : chunks) {
    w.u8(kind);
    w.uvarint(body.size());
    w.raw(body);
  }
  return w.take();
}

TEST(DatagramBatch, UnknownChunkKindsAreSkippedNotFatal) {
  // A known DATA chunk sandwiched between two future chunk kinds: the
  // decoder must deliver the one it knows and count the ones it skipped
  // — this is the forward-compatibility contract of the length prefix.
  const wire::Bytes d = raw_batch(
      NodeId{4}, {{0x09, bytes_of({1, 2, 3})},
                  {static_cast<std::uint8_t>(net::ChunkKind::kData),
                   bytes_of({0xAB})},
                  {0xEE, bytes_of({})}});
  const net::Datagram decoded = net::Datagram::decode(d);
  EXPECT_EQ(decoded.skipped, 2u);
  ASSERT_EQ(decoded.chunks.size(), 1u);
  EXPECT_EQ(decoded.chunks[0].kind, net::ChunkKind::kData);
  EXPECT_EQ(decoded.chunks[0].payload[0], 0xAB);
}

TEST(DatagramBatch, RejectsEmptyAndOversizedChunkCounts) {
  EXPECT_THROW(net::Datagram::decode(raw_batch(NodeId{1}, {})),
               wire::DecodeError);  // count == 0

  wire::Writer w;  // count over kMaxBatchChunks, no bodies needed
  w.u8(net::kMagic);
  w.u8(net::kVersion);
  w.u8(static_cast<std::uint8_t>(net::DatagramKind::kBatch));
  w.uvarint(1);
  w.uvarint(net::kMaxBatchChunks + 1);
  EXPECT_THROW(net::Datagram::decode(w.take()), wire::DecodeError);

  std::vector<net::EncodedChunk> none;
  EXPECT_THROW(net::Datagram::batch(NodeId{1}, none), std::invalid_argument);
  std::vector<net::EncodedChunk> many(net::kMaxBatchChunks + 1);
  for (auto& c : many) c = net::Datagram::chunk_data(bytes_of({1}));
  EXPECT_THROW(net::Datagram::batch(NodeId{1}, many), std::invalid_argument);
}

TEST(DatagramBatch, RejectsMalformedChunkBodies) {
  const auto rel_body = [](std::uint64_t seq, std::uint64_t delta,
                           std::initializer_list<std::uint8_t> frame) {
    wire::Writer w;
    w.uvarint(seq);
    w.uvarint(delta);
    w.raw(wire::Bytes(frame));
    return w.take();
  };
  const auto rel = static_cast<std::uint8_t>(net::ChunkKind::kRel);
  // A REL floor above its own seq (delta underflows) is corruption.
  EXPECT_THROW(net::Datagram::decode(
                   raw_batch(NodeId{1}, {{rel, rel_body(1, 5, {0xAA})}})),
               wire::DecodeError);
  // An empty REL frame carries nothing to deliver reliably.
  EXPECT_THROW(net::Datagram::decode(
                   raw_batch(NodeId{1}, {{rel, rel_body(3, 1, {})}})),
               wire::DecodeError);
  // Empty DATA and DIGEST chunks are corruption, not padding.
  EXPECT_THROW(
      net::Datagram::decode(raw_batch(
          NodeId{1},
          {{static_cast<std::uint8_t>(net::ChunkKind::kData), {}}})),
      wire::DecodeError);
  EXPECT_THROW(
      net::Datagram::decode(raw_batch(
          NodeId{1},
          {{static_cast<std::uint8_t>(net::ChunkKind::kDigest), {}}})),
      wire::DecodeError);
  // An ACK naming the invalid peer 0.
  wire::Writer ack;
  ack.uvarint(0);
  ack.uvarint(3);
  EXPECT_THROW(
      net::Datagram::decode(raw_batch(
          NodeId{1}, {{static_cast<std::uint8_t>(net::ChunkKind::kAck),
                       ack.take()}})),
      wire::DecodeError);
  // A chunk whose declared length runs past the datagram.
  wire::Writer w;
  w.u8(net::kMagic);
  w.u8(net::kVersion);
  w.u8(static_cast<std::uint8_t>(net::DatagramKind::kBatch));
  w.uvarint(1);
  w.uvarint(1);
  w.u8(static_cast<std::uint8_t>(net::ChunkKind::kData));
  w.uvarint(200);
  w.u8(0xAA);
  EXPECT_THROW(net::Datagram::decode(w.take()), wire::DecodeError);
}

// --- 2a. pack_batches ------------------------------------------------------

std::vector<net::EncodedChunk> data_chunks(int n, std::size_t body_size) {
  std::vector<net::EncodedChunk> out;
  for (int i = 0; i < n; ++i) {
    wire::Bytes body(body_size, static_cast<std::uint8_t>(i + 1));
    out.push_back(net::Datagram::chunk_data(body));
  }
  return out;
}

TEST(PackBatches, SplitsAtTheMtuPreservingOrder) {
  net::BatchOptions options;
  options.enabled = true;
  // Overhead for NodeId{1} is 5 bytes; each 10-byte chunk costs 12 on
  // the wire, so an MTU of 30 fits exactly two chunks per datagram.
  options.mtu = net::Datagram::batch_overhead(NodeId{1}) + 2 * 12 + 1;
  const auto out = pack_batches(NodeId{1}, data_chunks(5, 10), options);
  ASSERT_EQ(out.size(), 3u);  // 2 + 2 + 1
  int next_tag = 1;
  for (const auto& datagram : out) {
    EXPECT_LE(datagram.size(), options.mtu);
    const net::Datagram d = net::Datagram::decode(datagram);
    for (const auto& chunk : d.chunks) {
      EXPECT_EQ(chunk.payload[0], next_tag++);  // enqueue order held
    }
  }
  EXPECT_EQ(next_tag, 6);
}

TEST(PackBatches, HonorsMaxChunksWithUnlimitedMtu) {
  net::BatchOptions options;
  options.enabled = true;
  options.mtu = 0;  // unlimited
  options.max_chunks = 3;
  const auto out = pack_batches(NodeId{1}, data_chunks(7, 4), options);
  ASSERT_EQ(out.size(), 3u);  // 3 + 3 + 1
  EXPECT_EQ(net::Datagram::decode(out[0]).chunks.size(), 3u);
  EXPECT_EQ(net::Datagram::decode(out[2]).chunks.size(), 1u);
}

TEST(PackBatches, OversizeChunkGoesAloneAndIsCounted) {
  obs::MetricsRegistry metrics;
  obs::Counter& oversize = metrics.counter("net.batch.oversize");
  net::BatchOptions options;
  options.enabled = true;
  options.mtu = 40;
  auto chunks = data_chunks(1, 4);
  auto big = data_chunks(1, 100);  // alone it exceeds the MTU
  chunks.push_back(std::move(big[0]));
  chunks.push_back(data_chunks(1, 4)[0]);
  const auto out =
      pack_batches(NodeId{1}, std::move(chunks), options, &oversize);
  ASSERT_EQ(out.size(), 3u);  // small / big-alone / small
  EXPECT_EQ(metrics.get("net.batch.oversize"), 1);
  EXPECT_GT(out[1].size(), options.mtu);  // the link decides its fate
}

// --- 2b. Batcher -----------------------------------------------------------

struct BatcherRig {
  explicit BatcherRig(net::BatchOptions options)
      : batcher(NodeId{1}, platform, options,
                [this](wire::Bytes d) { sent.push_back(std::move(d)); },
                metrics) {}

  FakePlatform platform;
  obs::MetricsRegistry metrics;
  std::vector<wire::Bytes> sent;
  net::Batcher batcher;
};

TEST(Batcher, DisabledModeIsTheV1WireBitForBit) {
  BatcherRig rig({});  // enabled = false
  const wire::Bytes frame = bytes_of({9, 8, 7});
  rig.batcher.hello(5, SimTime::from_millis(500));
  rig.batcher.data(frame);
  // Emitted immediately — no flush timer pending — and byte-identical
  // to the legacy encoders (this is what keeps old captures, old
  // decoders, and the committed sim baselines working unchanged).
  EXPECT_EQ(rig.platform.pending_scheduled(), 0u);
  ASSERT_EQ(rig.sent.size(), 2u);
  EXPECT_EQ(rig.sent[0],
            net::Datagram::hello(NodeId{1}, 5, SimTime::from_millis(500)));
  EXPECT_EQ(rig.sent[1], net::Datagram::data(NodeId{1}, frame));
}

TEST(Batcher, DisabledModeStillFramesControlChunksAsBatch) {
  BatcherRig rig({});
  rig.batcher.rel(3, 1, bytes_of({0xAA}));
  ASSERT_EQ(rig.sent.size(), 1u);  // immediate single-chunk BATCH
  const net::Datagram d = net::Datagram::decode(rig.sent[0]);
  ASSERT_EQ(d.kind, net::DatagramKind::kBatch);
  ASSERT_EQ(d.chunks.size(), 1u);
  EXPECT_EQ(d.chunks[0].kind, net::ChunkKind::kRel);
  EXPECT_EQ(d.chunks[0].seq, 3u);
  EXPECT_EQ(d.chunks[0].floor, 1u);
}

TEST(Batcher, CoalescesOneEventInstantIntoOneDatagram) {
  net::BatchOptions options;
  options.enabled = true;
  BatcherRig rig(options);
  rig.batcher.hello(1, SimTime::from_millis(500));
  rig.batcher.data(bytes_of({1}));
  rig.batcher.data(bytes_of({2}));
  EXPECT_TRUE(rig.sent.empty());  // everything waits for the flush
  EXPECT_EQ(rig.platform.pending_scheduled(), 1u);  // one timer, not three
  rig.platform.run_scheduled();
  ASSERT_EQ(rig.sent.size(), 1u);
  const net::Datagram d = net::Datagram::decode(rig.sent[0]);
  ASSERT_EQ(d.chunks.size(), 3u);
  EXPECT_EQ(d.chunks[0].kind, net::ChunkKind::kHello);
  EXPECT_EQ(d.chunks[1].payload[0], 1);
  EXPECT_EQ(d.chunks[2].payload[0], 2);
  EXPECT_EQ(rig.metrics.get("net.batch.tx"), 1);
  EXPECT_EQ(rig.metrics.get("net.batch.chunks"), 3);
  EXPECT_EQ(rig.metrics.get("net.batch.flush"), 1);
}

TEST(Batcher, NewerAckAndDigestSupersedePendingOnes) {
  net::BatchOptions options;
  options.enabled = true;
  BatcherRig rig(options);
  rig.batcher.ack(NodeId{7}, 1);
  rig.batcher.ack(NodeId{9}, 4);
  rig.batcher.ack(NodeId{7}, 6);  // cumulative: makes the first redundant
  rig.batcher.digest(bytes_of({0xD1}));
  rig.batcher.digest(bytes_of({0xD2}));  // fresher snapshot of the store
  rig.batcher.flush();
  ASSERT_EQ(rig.sent.size(), 1u);
  const net::Datagram d = net::Datagram::decode(rig.sent[0]);
  ASSERT_EQ(d.chunks.size(), 3u);
  EXPECT_EQ(d.chunks[0].peer, NodeId{7});
  EXPECT_EQ(d.chunks[0].cum, 6u);
  EXPECT_EQ(d.chunks[1].peer, NodeId{9});
  EXPECT_EQ(d.chunks[1].cum, 4u);
  EXPECT_EQ(d.chunks[2].kind, net::ChunkKind::kDigest);
  EXPECT_EQ(d.chunks[2].payload[0], 0xD2);
  // The slots reset with the flush: a post-flush ack is a fresh chunk.
  rig.batcher.ack(NodeId{7}, 9);
  rig.batcher.flush();
  ASSERT_EQ(rig.sent.size(), 2u);
  EXPECT_EQ(net::Datagram::decode(rig.sent[1]).chunks[0].cum, 9u);
}

// --- 2c. ReliableChannel ---------------------------------------------------

struct RelRig {
  explicit RelRig(net::ReliableOptions options = {})
      : channel(platform, options, metrics) {}

  FakePlatform platform;
  obs::MetricsRegistry metrics;
  net::ReliableChannel channel;

  struct Emission {
    std::uint64_t seq;
    std::uint64_t floor;
    wire::Bytes frame;
  };
  std::vector<Emission> emitted;
  std::vector<std::pair<NodeId, std::uint64_t>> acked;
  std::vector<std::pair<NodeId, wire::Bytes>> delivered;

  void wire_up() {
    channel.set_emit([this](std::uint64_t seq, std::uint64_t floor,
                            std::span<const std::uint8_t> frame) {
      emitted.push_back({seq, floor, wire::Bytes(frame.begin(), frame.end())});
    });
    channel.set_ack([this](NodeId peer, std::uint64_t cum) {
      acked.emplace_back(peer, cum);
    });
    channel.set_deliver([this](NodeId from,
                               std::span<const std::uint8_t> frame) {
      delivered.emplace_back(from, wire::Bytes(frame.begin(), frame.end()));
    });
  }
};

/// Builds a wired-up rig (the two-phase dance keeps the callbacks able
/// to capture the rig's own vectors).
std::unique_ptr<RelRig> rel_rig(net::ReliableOptions options = {}) {
  auto rig = std::make_unique<RelRig>(options);
  rig->wire_up();
  return rig;
}

TEST(ReliableChannel, SendEmitsOnceAndRetiresOnFullAck) {
  auto rig = rel_rig();
  rig->channel.send(bytes_of({1}), {NodeId{2}, NodeId{3}});
  ASSERT_EQ(rig->emitted.size(), 1u);
  EXPECT_EQ(rig->emitted[0].seq, 1u);
  EXPECT_EQ(rig->emitted[0].floor, 1u);
  EXPECT_EQ(rig->channel.in_flight(), 1u);

  rig->channel.on_ack(NodeId{2}, 1);
  EXPECT_EQ(rig->channel.in_flight(), 1u);  // 3 still owes an ack
  rig->channel.on_ack(NodeId{3}, 1);
  EXPECT_EQ(rig->channel.in_flight(), 0u);
  EXPECT_EQ(rig->channel.floor(), 2u);  // nothing below 2 retransmits
  EXPECT_EQ(rig->metrics.get("net.rel.tx"), 1);
  EXPECT_EQ(rig->metrics.get("net.rel.acked"), 1);
  EXPECT_EQ(rig->metrics.get("net.rel.ack_rx"), 2);
}

TEST(ReliableChannel, EmptyTargetSetIsBestEffort) {
  auto rig = rel_rig();
  rig->channel.send(bytes_of({1}), {});
  EXPECT_EQ(rig->emitted.size(), 1u);
  EXPECT_EQ(rig->channel.in_flight(), 0u);  // nobody to wait for
  EXPECT_EQ(rig->channel.floor(), 2u);      // but the seq is consumed
  EXPECT_EQ(rig->platform.pending_scheduled(), 0u);
}

TEST(ReliableChannel, EmptyTargetEmissionRoundTripsThroughTheCodec) {
  auto rig = rel_rig();
  rig->channel.send(bytes_of({7}), {});
  ASSERT_EQ(rig->emitted.size(), 1u);
  // With an empty window the post-send floor is seq+1, which chunk_rel
  // cannot encode (it writes seq - floor as a uvarint): the emission
  // must carry a floor at or below its own seq, or every receiver
  // throws "REL floor above its own seq" and drops the whole BATCH the
  // chunk rode in — HELLO/DATA/ACK neighbours included.
  EXPECT_LE(rig->emitted[0].floor, rig->emitted[0].seq);
  const net::EncodedChunk chunk = net::Datagram::chunk_rel(
      rig->emitted[0].seq, rig->emitted[0].floor, rig->emitted[0].frame);
  const net::Datagram decoded =
      net::Datagram::decode(net::Datagram::batch(NodeId{1}, {&chunk, 1}));
  ASSERT_EQ(decoded.chunks.size(), 1u);
  EXPECT_EQ(decoded.chunks[0].seq, 1u);
  EXPECT_EQ(decoded.chunks[0].floor, 1u);
}

TEST(ReliableChannel, RetiredQueueEntryEmitsACodecSafeFloor) {
  net::ReliableOptions options;
  options.window = 1;
  auto rig = rel_rig(options);
  rig->channel.send(bytes_of({1}), {NodeId{2}});
  rig->channel.send(bytes_of({2}), {NodeId{3}});  // queued behind the window
  rig->channel.on_peer_down(NodeId{3});  // prunes the queued entry in place
  rig->channel.on_ack(NodeId{2}, 1);     // retires seq 1 → the queue drains
  ASSERT_EQ(rig->emitted.size(), 2u);
  EXPECT_EQ(rig->emitted[1].seq, 2u);
  EXPECT_EQ(rig->emitted[1].floor, 2u);  // not 3: same encode limit as above
  EXPECT_EQ(rig->channel.in_flight(), 0u);
}

TEST(ReliableChannel, WindowBackpressureQueuesAndDrainsInOrder) {
  net::ReliableOptions options;
  options.window = 2;
  auto rig = rel_rig(options);
  rig->channel.send(bytes_of({1}), {NodeId{2}});
  rig->channel.send(bytes_of({2}), {NodeId{2}});
  rig->channel.send(bytes_of({3}), {NodeId{2}});
  EXPECT_EQ(rig->channel.in_flight(), 2u);
  EXPECT_EQ(rig->channel.queued(), 1u);
  EXPECT_EQ(rig->emitted.size(), 2u);  // the third never hit the wire

  rig->channel.on_ack(NodeId{2}, 1);  // frees a slot → the queue drains
  EXPECT_EQ(rig->channel.queued(), 0u);
  EXPECT_EQ(rig->channel.in_flight(), 2u);
  ASSERT_EQ(rig->emitted.size(), 3u);
  EXPECT_EQ(rig->emitted[2].seq, 3u);
  EXPECT_EQ(rig->emitted[2].floor, 2u);  // seq 1 is retired, 2 is not
}

TEST(ReliableChannel, RetransmitsWithBackoffThenExpires) {
  net::ReliableOptions options;
  options.max_attempts = 3;
  options.rtx_jitter = 0.0;  // deterministic spacing for the assertions
  auto rig = rel_rig(options);
  rig->channel.send(bytes_of({1}), {NodeId{2}});
  const SimTime t0 = rig->platform.scheduled.back().when;

  rig->platform.run_scheduled();  // attempt 2
  EXPECT_EQ(rig->metrics.get("net.rel.rtx"), 1);
  const SimTime t1 = rig->platform.scheduled.back().when;
  EXPECT_GT(t1 - t0, SimTime::zero());  // backoff doubled the spacing

  rig->platform.run_scheduled();  // attempt 3 (the last allowed)
  EXPECT_EQ(rig->metrics.get("net.rel.rtx"), 2);
  rig->platform.run_scheduled();  // due again → attempts exhausted
  EXPECT_EQ(rig->metrics.get("net.rel.expired"), 1);
  EXPECT_EQ(rig->channel.in_flight(), 0u);
  EXPECT_EQ(rig->channel.floor(), 2u);  // the gap is public: floor moved on
  EXPECT_EQ(rig->metrics.get("net.rel.rtx"), 2);  // expiry transmits nothing
}

TEST(ReliableChannel, PeerDepartureRetiresItsDebts) {
  auto rig = rel_rig();
  rig->channel.send(bytes_of({1}), {NodeId{2}, NodeId{3}});
  rig->channel.send(bytes_of({2}), {NodeId{3}});
  rig->channel.on_ack(NodeId{2}, 1);
  EXPECT_EQ(rig->channel.in_flight(), 2u);  // 3 owes both
  rig->channel.on_peer_down(NodeId{3});
  EXPECT_EQ(rig->channel.in_flight(), 0u);  // nobody left to wait for
  EXPECT_EQ(rig->platform.pending_scheduled(), 0u);  // rtx timer gone
}

TEST(ReliableChannel, InOrderDeliveryDupDropAndReack) {
  auto rig = rel_rig();
  const NodeId sender{9};
  rig->channel.on_rel(sender, 1, 1, bytes_of({1}));
  rig->channel.on_rel(sender, 2, 1, bytes_of({2}));
  ASSERT_EQ(rig->delivered.size(), 2u);
  EXPECT_EQ(rig->channel.expected(sender), 3u);

  // A retransmission of seq 1: dropped, but re-acked so the sender can
  // finally retire it (our earlier ack may have been lost).
  rig->channel.on_rel(sender, 1, 1, bytes_of({1}));
  EXPECT_EQ(rig->delivered.size(), 2u);
  EXPECT_EQ(rig->metrics.get("net.rel.dup"), 1);
  ASSERT_EQ(rig->acked.size(), 3u);
  EXPECT_EQ(rig->acked.back(), (std::pair<NodeId, std::uint64_t>{sender, 2}));
}

TEST(ReliableChannel, BuffersOutOfOrderAndDrainsOnTheGapFill) {
  auto rig = rel_rig();
  const NodeId sender{9};
  rig->channel.on_rel(sender, 1, 1, bytes_of({1}));
  rig->channel.on_rel(sender, 3, 1, bytes_of({3}));
  rig->channel.on_rel(sender, 4, 1, bytes_of({4}));
  EXPECT_EQ(rig->delivered.size(), 1u);  // 3 and 4 wait for 2
  EXPECT_EQ(rig->metrics.get("net.rel.ooo"), 2);
  rig->channel.on_rel(sender, 2, 1, bytes_of({2}));
  ASSERT_EQ(rig->delivered.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(rig->delivered[i].second[0], i + 1);  // strict order
  }
  EXPECT_EQ(rig->acked.back().second, 4u);
}

TEST(ReliableChannel, LateJoinerSyncsFromTheFloorNotFromSeqOne) {
  auto rig = rel_rig();
  const NodeId sender{9};
  // First thing we ever hear is seq 6 with floor 5: the sender retired
  // 1..4 before we arrived; waiting for them would deadlock the stream.
  rig->channel.on_rel(sender, 6, 5, bytes_of({6}));
  EXPECT_EQ(rig->channel.expected(sender), 5u);
  EXPECT_TRUE(rig->delivered.empty());  // 6 buffers behind 5
  rig->channel.on_rel(sender, 5, 5, bytes_of({5}));
  ASSERT_EQ(rig->delivered.size(), 2u);
  EXPECT_EQ(rig->delivered[0].second[0], 5);
  EXPECT_EQ(rig->delivered[1].second[0], 6);
}

TEST(ReliableChannel, FloorAdvanceSkipsAbandonedFramesAndFlushesBuffered) {
  auto rig = rel_rig();
  const NodeId sender{9};
  rig->channel.on_rel(sender, 1, 1, bytes_of({1}));
  rig->channel.on_rel(sender, 4, 1, bytes_of({4}));  // buffered (2,3 missing)
  // The sender gave up on 2 and 3 (expiry): its next emission carries
  // floor 4.  We must stop waiting, deliver the buffered 4, take 5.
  rig->channel.on_rel(sender, 5, 4, bytes_of({5}));
  ASSERT_EQ(rig->delivered.size(), 3u);
  EXPECT_EQ(rig->delivered[1].second[0], 4);
  EXPECT_EQ(rig->delivered[2].second[0], 5);
  EXPECT_EQ(rig->metrics.get("net.rel.skipped"), 2);  // 2 and 3, never 4
  EXPECT_EQ(rig->channel.expected(sender), 6u);
}

TEST(ReliableChannel, RxBufferOverflowDropsEarlyFrames) {
  net::ReliableOptions options;
  options.rx_buffer = 2;
  auto rig = rel_rig(options);
  const NodeId sender{9};
  rig->channel.on_rel(sender, 3, 1, bytes_of({3}));
  rig->channel.on_rel(sender, 4, 1, bytes_of({4}));
  rig->channel.on_rel(sender, 5, 1, bytes_of({5}));  // buffer full
  EXPECT_EQ(rig->metrics.get("net.rel.rx_overflow"), 1);
  // The retransmit covers the loss: 5 arrives again after the gap fills.
  rig->channel.on_rel(sender, 1, 1, bytes_of({1}));
  rig->channel.on_rel(sender, 2, 1, bytes_of({2}));
  rig->channel.on_rel(sender, 5, 1, bytes_of({5}));
  ASSERT_EQ(rig->delivered.size(), 5u);
  EXPECT_EQ(rig->delivered.back().second[0], 5);
}

TEST(ReliableChannel, ReackAllRefreshesEveryKnownStream) {
  auto rig = rel_rig();
  rig->channel.on_rel(NodeId{4}, 1, 1, bytes_of({1}));
  rig->channel.on_rel(NodeId{5}, 1, 1, bytes_of({2}));
  rig->acked.clear();
  rig->channel.reack_all();
  ASSERT_EQ(rig->acked.size(), 2u);  // one standing ack per sender
  for (const auto& [peer, cum] : rig->acked) EXPECT_EQ(cum, 1u);
}

TEST(ReliableChannel, PeerDownForgetsTheRxStream) {
  auto rig = rel_rig();
  rig->channel.on_rel(NodeId{4}, 1, 1, bytes_of({1}));
  EXPECT_EQ(rig->channel.expected(NodeId{4}), 2u);
  rig->channel.on_peer_down(NodeId{4});
  EXPECT_EQ(rig->channel.expected(NodeId{4}), 0u);
  // The peer returns after a restart, its stream reset: the fresh
  // floor-1 frame must be accepted, not dropped as an ancient dup.
  rig->channel.on_rel(NodeId{4}, 1, 1, bytes_of({9}));
  ASSERT_EQ(rig->delivered.size(), 2u);
  EXPECT_EQ(rig->delivered.back().second[0], 9);
}

// --- 2d. StoreDigest -------------------------------------------------------

std::vector<TupleUid> sample_uids(int n, std::uint64_t origin = 1) {
  std::vector<TupleUid> uids;
  for (int i = 0; i < n; ++i) {
    uids.push_back(TupleUid{NodeId{origin}, static_cast<std::uint64_t>(i + 1)});
  }
  return uids;
}

TEST(StoreDigest, EncodeDecodeRoundtrip) {
  const StoreDigest d = StoreDigest::build(sample_uids(17), 8);
  EXPECT_EQ(d.count, 17u);
  EXPECT_EQ(d.buckets.size(), 8u);
  EXPECT_EQ(StoreDigest::decode(d.encode()), d);
}

TEST(StoreDigest, OrderIndependentAndSelfInverse) {
  auto uids = sample_uids(9);
  const StoreDigest forward = StoreDigest::build(uids, 4);
  std::reverse(uids.begin(), uids.end());
  EXPECT_EQ(StoreDigest::build(uids, 4), forward);  // XOR fold commutes

  // Adding a uid twice removes it: identical stores always agree even
  // if one built its digest incrementally through add/remove churn.
  StoreDigest churned = forward;
  const TupleUid extra{NodeId{5}, 99};
  churned.add(extra);
  EXPECT_NE(churned.buckets, forward.buckets);
  churned.add(extra);
  EXPECT_EQ(churned.buckets, forward.buckets);
}

TEST(StoreDigest, MismatchIsConfinedToTheDifferingBucket) {
  const auto uids = sample_uids(32);
  const StoreDigest full = StoreDigest::build(uids, 16);
  auto missing_one = uids;
  const TupleUid dropped = missing_one.back();
  missing_one.pop_back();
  const StoreDigest partial = StoreDigest::build(missing_one, 16);
  const std::size_t hot = StoreDigest::bucket_of(dropped, 16);
  for (std::size_t b = 0; b < 16; ++b) {
    if (b == hot) {
      EXPECT_NE(full.buckets[b], partial.buckets[b]);
    } else {
      // Every other bucket still matches unless a same-bucket uid also
      // changed — here nothing else did, so the diff is exactly one.
      EXPECT_EQ(full.buckets[b], partial.buckets[b]);
    }
  }
}

TEST(StoreDigest, BucketCountIsClampedAndValidated) {
  EXPECT_EQ(StoreDigest::build(sample_uids(3), 0).buckets.size(), 1u);
  EXPECT_EQ(StoreDigest::build(sample_uids(3), kMaxDigestBuckets + 7)
                .buckets.size(),
            kMaxDigestBuckets);

  // decode is stricter than build: a zero or oversized count on the
  // wire is corruption, not a clamping opportunity.
  wire::Writer zero;
  zero.uvarint(0);
  zero.uvarint(0);
  EXPECT_THROW(StoreDigest::decode(zero.take()), wire::DecodeError);
  wire::Writer huge;
  huge.uvarint(kMaxDigestBuckets + 1);
  huge.uvarint(0);
  EXPECT_THROW(StoreDigest::decode(huge.take()), wire::DecodeError);

  wire::Bytes truncated = StoreDigest::build(sample_uids(4), 4).encode();
  truncated.pop_back();
  EXPECT_THROW(StoreDigest::decode(truncated), wire::DecodeError);
  wire::Bytes padded = StoreDigest::build(sample_uids(4), 4).encode();
  padded.push_back(0);
  EXPECT_THROW(StoreDigest::decode(padded), wire::DecodeError);
}

// --- 2e. duplicate-retraction primitives -----------------------------------

TEST(HoldDownTable, ReArmPushesTheExpiryOut) {
  HoldDownTable table;
  const TupleUid uid{NodeId{1}, 7};
  table.arm(uid, SimTime::from_seconds(1), 2);
  EXPECT_TRUE(table.blocks(uid, 2, SimTime::from_millis(500)));
  EXPECT_TRUE(table.blocks(uid, 5, SimTime::from_millis(500)));
  EXPECT_FALSE(table.blocks(uid, 1, SimTime::from_millis(500)));  // better

  // A duplicate retraction re-arms further out: the old deadline is no
  // longer an expiry (expire() says "not due"), the new one is.
  table.arm(uid, SimTime::from_seconds(2), 2);
  EXPECT_FALSE(table.expire(uid, SimTime::from_seconds(1)));
  EXPECT_TRUE(table.blocks(uid, 2, SimTime::from_millis(1500)));
  EXPECT_TRUE(table.expire(uid, SimTime::from_seconds(2)));
  EXPECT_FALSE(table.blocks(uid, 2, SimTime::from_seconds(2)));
  EXPECT_FALSE(table.expire(uid, SimTime::from_seconds(3)));  // already gone
  EXPECT_EQ(table.size(), 0u);
}

TEST(HoldDownTable, DisarmEndsTheHoldEarly) {
  HoldDownTable table;
  const TupleUid uid{NodeId{1}, 7};
  table.arm(uid, SimTime::from_seconds(1), 2);
  table.disarm(uid);
  EXPECT_FALSE(table.blocks(uid, 2, SimTime::zero()));
  EXPECT_FALSE(table.expire(uid, SimTime::from_seconds(1)));
}

TEST(BoundedUidFifo, DuplicateInsertIsRefusedAndEvictionSkipsStaleSlots) {
  BoundedUidFifo<int> fifo(4);
  const auto uid = [](std::uint64_t n) { return TupleUid{NodeId{1}, n}; };
  EXPECT_TRUE(fifo.insert(uid(1), 10));
  EXPECT_FALSE(fifo.insert(uid(1), 99));  // a duplicate RETRACT's uid
  ASSERT_NE(fifo.find(uid(1)), nullptr);
  EXPECT_EQ(*fifo.find(uid(1)), 10);  // the original value survives

  // External erase leaves a stale order slot; eviction must not let it
  // spend quota or evict a re-inserted successor.
  EXPECT_TRUE(fifo.erase(uid(1)));
  EXPECT_TRUE(fifo.insert(uid(1), 11));
  for (std::uint64_t n = 2; n <= 5; ++n) fifo.insert(uid(n));
  EXPECT_LE(fifo.size(), 4u);  // eviction ran
  EXPECT_TRUE(fifo.contains(uid(5)));  // newest survives
}

// --- 3. engine integration -------------------------------------------------

struct EnginePair {
  EnginePair()
      : a(id_of(0), pa, {}, &hub_a), b(id_of(1), pb, {}, &hub_b) {
    tuples::register_standard_tuples();
    a.on_neighbor_up(id_of(1));
    b.on_neighbor_up(id_of(0));
  }

  /// Ships every frame A has broadcast so far into B (A's outbox is
  /// consumed), except the ones `skip` selects — the harness's packet
  /// loss.
  int ship_a_to_b(const std::function<bool(std::size_t)>& skip = nullptr) {
    int shipped = 0;
    for (std::size_t i = 0; i < pa.broadcasts.size(); ++i) {
      if (skip && skip(i)) continue;
      b.on_datagram(id_of(0), pa.broadcasts[i]);
      ++shipped;
    }
    pa.broadcasts.clear();
    return shipped;
  }

  FakePlatform pa, pb;
  obs::Hub hub_a, hub_b;
  Middleware a, b;
};

TEST(EngineSync, DigestResyncRepairsASilentHoleInODiffFrames) {
  EnginePair pair;
  std::vector<TupleUid> uids;
  for (int i = 0; i < 12; ++i) {
    uids.push_back(pair.a.inject(std::make_unique<tuples::GradientTuple>(
        "t" + std::to_string(i))));
  }
  // B misses exactly one of the twelve floods — a silent hole: no link
  // event fired, so nothing in the event-driven path will ever repair it.
  const std::size_t lost = 7;
  pair.ship_a_to_b([&](std::size_t i) { return i == lost; });
  ASSERT_EQ(pair.b.read(Pattern::of_type(tuples::GradientTuple::kTag)).size(),
            11u);

  // B ships its digest to A (the session does this on the beacon
  // cadence); A re-broadcasts only the differing buckets' tuples.
  const int resent = pair.a.on_digest(id_of(1), pair.b.digest(64));
  EXPECT_GE(resent, 1);
  EXPECT_LE(resent, 3);  // O(diff): nowhere near the 12-tuple store
  EXPECT_EQ(pair.hub_a.metrics.get("net.sync.resend"), resent);
  pair.ship_a_to_b();
  EXPECT_EQ(pair.b.read(Pattern::of_type(tuples::GradientTuple::kTag)).size(),
            12u);

  // Converged stores exchange digests for free: no resend either way.
  EXPECT_EQ(pair.a.on_digest(id_of(1), pair.b.digest(64)), 0);
  EXPECT_EQ(pair.b.on_digest(id_of(0), pair.a.digest(64)), 0);
}

TEST(EngineSync, DigestOfPropagatedSetSurvivesEncodeRoundtrip) {
  EnginePair pair;
  pair.a.inject(std::make_unique<tuples::GradientTuple>("x"));
  const StoreDigest d = pair.a.digest(32);
  EXPECT_EQ(d.count, 1u);
  EXPECT_EQ(StoreDigest::decode(d.encode()), d);
}

TEST(EngineRetract, DuplicateRetractIsIdempotent) {
  EnginePair pair;
  const TupleUid uid =
      pair.a.inject(std::make_unique<tuples::GradientTuple>("g"));
  pair.ship_a_to_b();
  const Pattern p = Pattern::of_type(tuples::GradientTuple::kTag);
  ASSERT_FALSE(pair.b.read(p).empty());

  // A retracts (its replica at hop 0 went away); the RETRACT reaches B
  // twice — the second copy is exactly what a reliable-channel
  // retransmission racing its own ack looks like.
  const wire::Bytes retract = wire::Frame::retract(uid, 0);
  pair.b.on_datagram(id_of(0), retract);
  EXPECT_TRUE(pair.b.read(p).empty());
  const auto started = pair.hub_b.metrics.get("maint.retract_started");
  const auto cascaded = pair.hub_b.metrics.get("maint.retract_cascaded");
  const auto broadcasts = pair.pb.broadcasts.size();

  pair.b.on_datagram(id_of(0), retract);
  EXPECT_TRUE(pair.b.read(p).empty());
  // No second cascade, no extra traffic: the duplicate was absorbed.
  EXPECT_EQ(pair.hub_b.metrics.get("maint.retract_started"), started);
  EXPECT_EQ(pair.hub_b.metrics.get("maint.retract_cascaded"), cascaded);
  EXPECT_EQ(pair.pb.broadcasts.size(), broadcasts);
}

// --- 4. TransportWorld -----------------------------------------------------

/// tota::Platform over a shared sim::EventQueue whose broadcast seam
/// routes through the node's NetSession — the session is what turns
/// engine frames into v1/v2 datagrams.  The pointer is set right after
/// the session is constructed (the session itself never broadcasts
/// through the Platform, so the window is safe).
class SessionPlatform final : public Platform {
 public:
  SessionPlatform(sim::EventQueue& events, Rng rng)
      : events_(events), rng_(rng) {}

  void broadcast(wire::Bytes payload) override {
    if (session != nullptr) session->broadcast(std::move(payload));
  }
  void broadcast_reliable(wire::Bytes payload) override {
    if (session != nullptr) session->broadcast_reliable(std::move(payload));
  }
  [[nodiscard]] SimTime now() const override { return events_.now(); }
  TimerId schedule(SimTime delay, std::function<void()> action) override {
    return events_.schedule_after(delay, std::move(action));
  }
  void cancel(TimerId id) override { events_.cancel(id); }
  [[nodiscard]] Vec2 position() const override { return {}; }
  [[nodiscard]] Rng& rng() override { return rng_; }

  net::NetSession* session = nullptr;

 private:
  sim::EventQueue& events_;
  Rng rng_;
};

constexpr SimTime kLinkDelay = SimTime::from_millis(2);

struct TransportConfig {
  net::SessionOptions session;
  net::FaultPlan fault;  // applied per directed link while faults are on
};

net::DiscoveryOptions fast_discovery() {
  net::DiscoveryOptions o;
  o.beacon_period = SimTime::from_millis(100);
  o.beacon_jitter = 0.2;
  // Deep enough that drop 0.3 essentially never fakes a death
  // (0.3^12 per beacon): the soaks probe the transport under loss, not
  // discovery's churn response — tests/test_soak.cc owns that.  A real
  // death still expires in ~1.2s.
  o.expiry_missed_beacons = 12;
  return o;
}

/// N full v2 stacks (Middleware + NetSession) on a line topology over an
/// in-memory broadcast channel with per-directed-link fault injection —
/// the soak harness of the transport layer.  Unlike tests/test_soak.cc
/// (which speaks the v1 wire by hand), every datagram here is produced
/// and consumed by NetSession, so batching, the reliable channel, and
/// the digest exchange run exactly as they would under LivePlatform.
class TransportWorld {
 public:
  /// Drops a datagram on the directed link `from → to` when it returns
  /// true (the harness's surgical loss, independent of the injectors).
  using DropFilter = std::function<bool(int from, int to,
                                        const wire::Bytes& datagram)>;

  TransportWorld(std::uint64_t seed, int count, TransportConfig config)
      : count_(count),
        config_(std::move(config)),
        master_(seed),
        channel_platform_(events_, master_.fork()) {
    tuples::register_standard_tuples();
    for (int i = 0; i < count_; ++i) {
      nodes_.push_back(std::make_unique<Node>(*this, i));
    }
    for (int i = 0; i < count_; ++i) {
      for (const int j : neighbors_of(i)) {
        links_.emplace(key(i, j),
                       std::make_unique<net::FaultInjector>(
                           config_.fault, channel_platform_, hub_.metrics));
      }
    }
  }

  void start() {
    for (auto& n : nodes_) n->session.start();
  }

  void at(SimTime when, std::function<void()> action) {
    events_.schedule_at(when, std::move(action));
  }
  void run_until(SimTime deadline) { events_.run_until(deadline); }

  void set_faulty(bool on) { faulty_ = on; }
  void set_drop_filter(DropFilter filter) { drop_filter_ = std::move(filter); }
  void flush_links() {
    for (auto& [k, inj] : links_) inj->flush();
  }

  void inject(int i, const std::string& name) {
    nodes_[i]->mw.inject(std::make_unique<tuples::GradientTuple>(name));
  }
  void kill(int i) {
    nodes_[i]->alive = false;
    nodes_[i]->session.stop();
  }

  [[nodiscard]] bool alive(int i) const { return nodes_[i]->alive; }
  [[nodiscard]] Middleware& mw(int i) { return nodes_[i]->mw; }
  [[nodiscard]] obs::Hub& hub() { return hub_; }
  [[nodiscard]] std::int64_t datagrams_tx() const { return datagrams_tx_; }
  void reset_datagram_count() { datagrams_tx_ = 0; }

  [[nodiscard]] std::vector<int> neighbors_of(int i) const {
    std::vector<int> out;
    if (i > 0) out.push_back(i - 1);
    if (i + 1 < count_) out.push_back(i + 1);
    return out;
  }

 private:
  struct Node {
    Node(TransportWorld& w, int i)
        : platform(w.events_, w.master_.fork()),
          session(
              id_of(i), platform, w.config_.session,
              [&w, i](wire::Bytes d) { w.send(i, std::move(d)); },
              w.hub_.metrics),
          mw(id_of(i), platform, {}, &w.hub_) {
      platform.session = &session;
      session.attach(&mw);
    }

    SessionPlatform platform;
    net::NetSession session;
    Middleware mw;
    bool alive = true;
  };

  [[nodiscard]] int key(int i, int j) const { return i * count_ + j; }

  void send(int i, wire::Bytes bytes) {
    if (!nodes_[i]->alive) return;
    ++datagrams_tx_;  // one transmission, any receiver count (broadcast)
    for (const int j : neighbors_of(i)) {
      if (drop_filter_ && drop_filter_(i, j, bytes)) continue;
      const auto deliver = [this, j](const wire::Bytes& damaged) {
        const auto copy = std::make_shared<const wire::Bytes>(damaged);
        events_.schedule_after(kLinkDelay,
                               [this, j, copy] { receive(j, *copy); });
      };
      if (faulty_) {
        links_.at(key(i, j))->process(bytes, deliver, id_of(i), id_of(j));
      } else {
        deliver(bytes);
      }
    }
  }

  void receive(int j, const wire::Bytes& bytes) {
    if (!nodes_[j]->alive) return;
    nodes_[j]->session.on_raw(bytes);
  }

  int count_;
  TransportConfig config_;
  sim::EventQueue events_;
  Rng master_;
  obs::Hub hub_;
  SessionPlatform channel_platform_;  // clock + rng source for the injectors
  std::vector<std::unique_ptr<Node>> nodes_;
  std::map<int, std::unique_ptr<net::FaultInjector>> links_;
  bool faulty_ = false;
  DropFilter drop_filter_;
  std::int64_t datagrams_tx_ = 0;
};

/// True when the (well-formed — the harness produced it) datagram
/// carries any engine frame: a v1 DATA, or a BATCH with a DATA chunk.
bool carries_data(const wire::Bytes& datagram) {
  const net::Datagram d = net::Datagram::decode(datagram);
  if (d.kind == net::DatagramKind::kData) return true;
  if (d.kind != net::DatagramKind::kBatch) return false;
  return std::any_of(d.chunks.begin(), d.chunks.end(), [](const auto& c) {
    return c.kind == net::ChunkKind::kData;
  });
}

// --- 4a. the drop-0.3 retraction soak --------------------------------------

constexpr int kSoakNodes = 6;

struct RetractionResult {
  int leaked = 0;  // alive nodes still holding the doomed tuple
  std::vector<std::int64_t> main_hops;
  std::int64_t rel_tx = 0;
  std::int64_t rel_rtx = 0;
  std::int64_t rel_acked = 0;
  std::int64_t fault_processed = 0;
  std::int64_t datagrams = 0;

  bool operator==(const RetractionResult&) const = default;
};

/// The retraction-under-loss scenario: a 6-node line, drop 0.3 on every
/// directed link, and — unlike tests/test_soak.cc, which kills its
/// doomed source only after the faults quiesce — the source dies *while
/// the channel is lossy*.  Each hop of the retraction cascade then rides
/// a 0.3-loss link exactly once in the best-effort baseline: one lost
/// RETRACT strands every node upstream of it with a stale replica
/// forever (nothing re-offers a retraction).  The reliable channel
/// retransmits until acked, so the cascade completes anyway.
RetractionResult run_retraction_soak(std::uint64_t seed, bool reliable) {
  TransportConfig config;
  config.session.discovery = fast_discovery();
  config.session.batch.enabled = reliable;  // the full v2 path
  config.session.reliable = reliable;
  config.fault.drop = 0.3;

  TransportWorld world(seed, kSoakNodes, config);
  world.start();
  world.at(SimTime::from_seconds(1), [&] { world.inject(0, "main"); });
  world.at(SimTime::from_millis(1200),
           [&] { world.inject(kSoakNodes - 1, "doomed"); });
  world.at(SimTime::from_seconds(2), [&] { world.set_faulty(true); });
  // The doomed source dies mid-chaos: its neighbour detects the silence
  // and starts the retraction cascade over the still-lossy channel.
  world.at(SimTime::from_seconds(3), [&] { world.kill(kSoakNodes - 1); });
  world.at(SimTime::from_seconds(10), [&] {
    world.set_faulty(false);
    world.flush_links();
  });
  world.run_until(SimTime::from_seconds(14));

  RetractionResult r;
  const Pattern doomed =
      Pattern::of_type(tuples::GradientTuple::kTag).eq("name", "doomed");
  const Pattern main_p =
      Pattern::of_type(tuples::GradientTuple::kTag).eq("name", "main");
  for (int i = 0; i < kSoakNodes; ++i) {
    if (!world.alive(i)) continue;
    if (!world.mw(i).read(doomed).empty()) ++r.leaked;
    const auto replica = world.mw(i).read_one(main_p);
    r.main_hops.push_back(replica == nullptr
                              ? -1
                              : replica->content().at("hopcount").as_int());
  }
  auto& m = world.hub().metrics;
  r.rel_tx = m.get("net.rel.tx");
  r.rel_rtx = m.get("net.rel.rtx");
  r.rel_acked = m.get("net.rel.acked");
  r.fault_processed = m.get("net.fault.processed");
  r.datagrams = world.datagrams_tx();
  return r;
}

TEST(TransportSoak, BestEffortBaselineLeaksTheRetraction) {
  // Retraction delivery ratio < 1.0 at drop 0.3: at least one of the
  // seeds strands a stale replica.  (Each cascade hop survives with
  // p = 0.7, so a leak-free triple of seeds would be rare luck — and
  // the seeds are fixed, so this is a pinned fact, not a flake.)
  int leaked = 0;
  for (const std::uint64_t seed : {1, 2, 3}) {
    const RetractionResult r = run_retraction_soak(seed, /*reliable=*/false);
    leaked += r.leaked;
    EXPECT_EQ(r.rel_tx, 0) << "v1 must not touch the reliable channel";
  }
  EXPECT_GT(leaked, 0);
}

TEST(TransportSoak, ReliableChannelDrainsEveryRetraction) {
  for (const std::uint64_t seed : {1, 2, 3}) {
    const RetractionResult r = run_retraction_soak(seed, /*reliable=*/true);
    // Delivery ratio 1.0: every alive node drained the doomed tuple
    // within the soak horizon.
    EXPECT_EQ(r.leaked, 0) << "seed " << seed;
    // The channel did real work: control frames flowed, the 0.3-loss
    // links forced retransmissions, and the acks retired them.
    EXPECT_GT(r.rel_tx, 0) << "seed " << seed;
    EXPECT_GT(r.rel_rtx, 0) << "seed " << seed;
    EXPECT_GT(r.rel_acked, 0) << "seed " << seed;
    // The main gradient stayed intact end to end.
    ASSERT_EQ(r.main_hops.size(), static_cast<std::size_t>(kSoakNodes - 1))
        << "seed " << seed;
    for (int i = 0; i < kSoakNodes - 1; ++i) {
      EXPECT_EQ(r.main_hops[i], i) << "seed " << seed << " node " << i;
    }
  }
}

TEST(TransportSoak, IdenticalSeedsProduceIdenticalRuns) {
  const RetractionResult once = run_retraction_soak(2, /*reliable=*/true);
  const RetractionResult twice = run_retraction_soak(2, /*reliable=*/true);
  EXPECT_EQ(once, twice);
}

// --- 4b. batching halves (at least) the datagram bill ----------------------

TEST(TransportBatch, BatchingCutsDatagramsPerDeliveredTupleTwofold) {
  constexpr int kTuples = 20;
  const Pattern all = Pattern::of_type(tuples::GradientTuple::kTag);
  std::int64_t cost[2] = {0, 0};
  for (const bool batching : {false, true}) {
    TransportConfig config;
    config.session.discovery = fast_discovery();
    // A quiet beacon cadence so the measured window is dominated by
    // data traffic, as in the committed BENCH_transport scenario.
    config.session.discovery.beacon_period = SimTime::from_millis(500);
    config.session.batch.enabled = batching;

    TransportWorld world(7, kSoakNodes, config);
    world.start();
    world.run_until(SimTime::from_seconds(1));
    world.reset_datagram_count();
    // One burst, all in the same event instant — a node reacting to a
    // 20-frame batch re-broadcasts 20 reactions as one datagram.
    world.at(SimTime::from_millis(1001), [&] {
      for (int t = 0; t < kTuples; ++t) {
        world.inject(0, "t" + std::to_string(t));
      }
    });
    world.run_until(SimTime::from_seconds(3));
    for (int i = 0; i < kSoakNodes; ++i) {
      ASSERT_EQ(world.mw(i).read(all).size(),
                static_cast<std::size_t>(kTuples))
          << "batching=" << batching << " node " << i;
    }
    cost[batching ? 1 : 0] = world.datagrams_tx();
    if (batching) {
      auto& m = world.hub().metrics;
      EXPECT_GT(m.get("net.batch.tx"), 0);
      EXPECT_GT(m.get("net.batch.chunks"), m.get("net.batch.tx"));
    }
  }
  // Same tuples delivered everywhere, at least 2x fewer datagrams —
  // the ISSUE's acceptance ratio, here as a regression floor.
  EXPECT_GE(cost[0], 2 * cost[1]) << "v1=" << cost[0] << " v2=" << cost[1];
}

// --- 4c. the partition-heal digest soak ------------------------------------

TEST(TransportSync, DigestsHealASilentHoleInODiffFrames) {
  constexpr int kNodes4 = 4;
  constexpr int kSeeded = 30;  // the store: all nodes hold these
  constexpr int kHoles = 2;    // injected while one link eats DATA

  TransportConfig config;
  config.session.discovery = fast_discovery();
  config.session.batch.enabled = true;
  config.session.digest_period = SimTime::from_millis(500);
  config.session.digest_buckets = 64;

  TransportWorld world(11, kNodes4, config);
  world.start();
  world.run_until(SimTime::from_millis(500));
  for (int t = 0; t < kSeeded; ++t) world.inject(0, "s" + std::to_string(t));
  world.run_until(SimTime::from_seconds(2));
  const Pattern all = Pattern::of_type(tuples::GradientTuple::kTag);
  for (int i = 0; i < kNodes4; ++i) {
    ASSERT_EQ(world.mw(i).read(all).size(),
              static_cast<std::size_t>(kSeeded));
  }

  // The silent hole: link 1→2 eats every DATA-carrying datagram while
  // two fresh tuples flood.  HELLOs keep flowing, so no link event
  // fires, no restart resync runs — in the pre-digest protocol nodes 2
  // and 3 would simply never learn these tuples existed.
  world.at(SimTime::from_seconds(2), [&] {
    world.set_drop_filter([](int from, int to, const wire::Bytes& d) {
      return from == 1 && to == 2 && carries_data(d);
    });
  });
  world.at(SimTime::from_millis(2100), [&] {
    for (int t = 0; t < kHoles; ++t) world.inject(0, "h" + std::to_string(t));
  });
  world.at(SimTime::from_seconds(3),
           [&] { world.set_drop_filter(nullptr); });
  world.run_until(SimTime::from_seconds(6));

  // Healed: the digest mismatch on the 1↔2 edge re-offered the missing
  // tuples, and node 2's normal flood carried them on to node 3.
  for (int i = 0; i < kNodes4; ++i) {
    EXPECT_EQ(world.mw(i).read(all).size(),
              static_cast<std::size_t>(kSeeded + kHoles))
        << "node " << i;
  }
  auto& m = world.hub().metrics;
  EXPECT_GT(m.get("net.sync.digest_tx"), 0);
  EXPECT_GT(m.get("net.sync.digest_rx"), 0);
  // The repair was O(diff), not O(store): across every digest round of
  // the run, fewer frames were re-sent than ONE full-store resync
  // round would ship (the hole itself, re-offered over a few rounds,
  // plus the odd same-bucket neighbour).
  EXPECT_GE(m.get("net.sync.resend"), kHoles);
  EXPECT_LT(m.get("net.sync.resend"), kSeeded);
}

// --- session-level frame accounting ----------------------------------------

TEST(NetSession, CorruptAndForeignDatagramsCountFrameBad) {
  FakePlatform platform;
  obs::MetricsRegistry metrics;
  net::SessionOptions options;
  options.discovery = fast_discovery();
  std::vector<wire::Bytes> sent;
  net::NetSession session(
      NodeId{1}, platform, options,
      [&](wire::Bytes d) { sent.push_back(std::move(d)); }, metrics);

  session.on_raw(bytes_of({0xDE, 0xAD, 0xBE, 0xEF}));  // foreign traffic
  wire::Bytes padded =
      net::Datagram::hello(NodeId{2}, 1, SimTime::from_millis(100));
  padded.push_back(0x00);  // trailing garbage
  session.on_raw(padded);
  wire::Bytes truncated = sample_batch(NodeId{2});
  truncated.resize(truncated.size() / 2);
  session.on_raw(truncated);
  EXPECT_EQ(metrics.get("net.frame.bad"), 3);

  // A BATCH with an unknown future chunk kind is *skipped*, not bad.
  session.on_raw(raw_batch(NodeId{2}, {{0x77, bytes_of({1, 2})}}));
  EXPECT_EQ(metrics.get("net.frame.bad"), 3);
  EXPECT_EQ(metrics.get("net.frame.skip"), 1);

  // Our own echoes are counted once per datagram and never routed.
  session.on_raw(sample_batch(NodeId{1}));
  EXPECT_EQ(metrics.get("net.data.echo"), 1);
  EXPECT_EQ(metrics.get("net.data.rx"), 0);
}

TEST(NetSession, StopQuiescesEveryTimerAndDropsPendingTraffic) {
  FakePlatform platform;
  obs::MetricsRegistry metrics;
  net::SessionOptions options;
  options.discovery = fast_discovery();
  options.batch.enabled = true;
  options.reliable = true;
  std::vector<wire::Bytes> sent;
  net::NetSession session(
      NodeId{1}, platform, options,
      [&](wire::Bytes d) { sent.push_back(std::move(d)); }, metrics);

  session.start();
  platform.run_scheduled();  // the first beacon's flush goes out
  // A neighbour, so broadcast_reliable has a target to wait on and the
  // retransmit timer arms.
  session.on_raw(
      net::Datagram::hello(NodeId{2}, 1, SimTime::from_millis(100)));
  session.broadcast(bytes_of({1, 2, 3}));
  session.broadcast_reliable(bytes_of({4, 5, 6}));
  EXPECT_GT(session.batcher().pending(), 0u);
  EXPECT_EQ(session.reliable().in_flight(), 1u);

  const std::size_t sent_before = sent.size();
  session.stop();
  EXPECT_EQ(session.batcher().pending(), 0u);  // pending traffic dropped
  // Every armed timer — beacon, batcher flush, retransmit, neighbour
  // expiry — is cancelled: draining the schedule transmits nothing
  // (LivePlatform::stop has closed the socket by now).
  for (int i = 0; i < 8 && platform.pending_scheduled() > 0; ++i) {
    platform.run_scheduled();
  }
  EXPECT_EQ(platform.pending_scheduled(), 0u);
  EXPECT_EQ(sent.size(), sent_before);

  // A restart resumes where stop() paused: the reliable frame is still
  // unacked, so its retransmit re-arms and the next flush ships it.
  session.start();
  platform.run_scheduled();
  EXPECT_GT(session.reliable().in_flight(), 0u);
  EXPECT_GT(sent.size(), sent_before);
}

}  // namespace
}  // namespace tota
