// Unit tests for the TOTA engine: injection pipeline, dedup, wire frames,
// retraction, decode robustness.  Uses a FakePlatform so each test drives
// one engine in isolation and inspects exactly what it transmits.
#include <gtest/gtest.h>

#include "fake_platform.h"
#include "tota/engine.h"
#include "tuples/all.h"

namespace tota {
namespace {

using testing::FakePlatform;
using tuples::GradientTuple;
using tuples::ModifierTuple;

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override { tuples::register_standard_tuples(); }

  FakePlatform platform_;
  TupleSpace space_;
  EventBus bus_;
  Engine engine_{NodeId{1}, platform_, space_, bus_};
};

TEST_F(EngineTest, InjectAssignsUidAndStores) {
  const TupleUid uid =
      engine_.inject(std::make_unique<GradientTuple>("field"));
  EXPECT_EQ(uid.origin(), NodeId{1});
  const auto* entry = space_.find(uid);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->tuple->hop(), 0);
  EXPECT_EQ(entry->tuple->content().at("hopcount").as_int(), 0);
  EXPECT_EQ(entry->tuple->content().at("source").as_node(), NodeId{1});
  EXPECT_FALSE(entry->parent.valid());
}

TEST_F(EngineTest, InjectBroadcastsTupleFrame) {
  engine_.inject(std::make_unique<GradientTuple>("field"));
  ASSERT_EQ(platform_.broadcasts.size(), 1u);
  // Frame parses back into the same tuple at hop 0.
  wire::Reader r(platform_.broadcasts[0]);
  EXPECT_EQ(r.u8(), 1);  // kTuple
  const auto decoded = Tuple::decode(r);
  EXPECT_EQ(decoded->type_tag(), GradientTuple::kTag);
  EXPECT_EQ(decoded->hop(), 0);
}

TEST_F(EngineTest, SequencesIncrease) {
  const auto a = engine_.inject(std::make_unique<GradientTuple>("f1"));
  const auto b = engine_.inject(std::make_unique<GradientTuple>("f2"));
  EXPECT_LT(a.sequence(), b.sequence());
}

// Round-trips a tuple through the wire the way a neighbour would receive
// it: encoded at the sender's hop, then hop+1 applied on receipt.
wire::Bytes tuple_frame(const Tuple& tuple) {
  wire::Writer w;
  w.u8(1);
  tuple.encode(w);
  return w.take();
}

TEST_F(EngineTest, ReceivedTupleStoredWithIncrementedHop) {
  GradientTuple remote("field");
  remote.set_uid(TupleUid{NodeId{9}, 1});
  remote.set_hop(2);
  remote.content().set("source", NodeId{9}).set("hopcount", 2);

  engine_.on_datagram(NodeId{5}, tuple_frame(remote));
  const auto* entry = space_.find(remote.uid());
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->tuple->hop(), 3);
  EXPECT_EQ(entry->tuple->content().at("hopcount").as_int(), 3);
  EXPECT_EQ(entry->parent, NodeId{5});
  // And re-propagated.
  EXPECT_EQ(platform_.broadcasts.size(), 1u);
}

TEST_F(EngineTest, WorseDuplicateDropped) {
  GradientTuple remote("field");
  remote.set_uid(TupleUid{NodeId{9}, 1});
  remote.set_hop(2);
  engine_.on_datagram(NodeId{5}, tuple_frame(remote));
  platform_.broadcasts.clear();

  remote.set_hop(6);  // longer path: must not supersede hop 3
  engine_.on_datagram(NodeId{6}, tuple_frame(remote));
  EXPECT_EQ(space_.find(remote.uid())->tuple->hop(), 3);
  EXPECT_TRUE(platform_.broadcasts.empty());
}

TEST_F(EngineTest, BetterCopySupersedesAndRepropagates) {
  GradientTuple remote("field");
  remote.set_uid(TupleUid{NodeId{9}, 1});
  remote.set_hop(5);
  engine_.on_datagram(NodeId{5}, tuple_frame(remote));
  platform_.broadcasts.clear();

  remote.set_hop(1);
  engine_.on_datagram(NodeId{6}, tuple_frame(remote));
  const auto* entry = space_.find(remote.uid());
  EXPECT_EQ(entry->tuple->hop(), 2);
  EXPECT_EQ(entry->parent, NodeId{6});
  EXPECT_EQ(platform_.broadcasts.size(), 1u);
}

TEST_F(EngineTest, IdenticalParentReannounceIsQuiet) {
  GradientTuple remote("field");
  remote.set_uid(TupleUid{NodeId{9}, 1});
  remote.set_hop(2);
  engine_.on_datagram(NodeId{5}, tuple_frame(remote));
  platform_.broadcasts.clear();

  // The parent re-broadcasts the same value (e.g. a new neighbour
  // appeared near it): no update, no re-propagation storm.
  engine_.on_datagram(NodeId{5}, tuple_frame(remote));
  EXPECT_TRUE(platform_.broadcasts.empty());
}

TEST_F(EngineTest, StretchedSupportIsRetractedThenReinstalled) {
  GradientTuple remote("field");
  remote.set_uid(TupleUid{NodeId{9}, 1});
  remote.set_hop(2);
  engine_.on_datagram(NodeId{5}, tuple_frame(remote));
  platform_.broadcasts.clear();

  // Our only supporter now announces a *worse* value (the topology
  // stretched upstream).  Justification fails (RETRACT announced) and the
  // worse copy is held down — reinstalling it immediately is what fuels
  // count-to-infinity between orphaned replicas.
  remote.set_hop(7);
  engine_.on_datagram(NodeId{5}, tuple_frame(remote));
  EXPECT_EQ(space_.find(remote.uid()), nullptr);
  ASSERT_EQ(platform_.broadcasts.size(), 1u);
  {
    wire::Reader r(platform_.broadcasts[0]);
    EXPECT_EQ(r.u8(), 2);  // the retraction announcement
  }
  EXPECT_EQ(engine_.maintenance_stats().retractions_cascaded, 1u);
  platform_.broadcasts.clear();

  // Hold-down expires: the engine probes for surviving holders…
  platform_.run_scheduled();
  ASSERT_EQ(platform_.broadcasts.size(), 1u);
  {
    wire::Reader r(platform_.broadcasts[0]);
    EXPECT_EQ(r.u8(), 3);  // PROBE
  }
  EXPECT_EQ(engine_.maintenance_stats().probes_sent, 1u);
  platform_.broadcasts.clear();

  // …and the supporter's re-announcement now installs the stretched
  // value fresh.
  remote.set_hop(7);
  engine_.on_datagram(NodeId{5}, tuple_frame(remote));
  ASSERT_NE(space_.find(remote.uid()), nullptr);
  EXPECT_EQ(space_.find(remote.uid())->tuple->hop(), 8);
  ASSERT_EQ(platform_.broadcasts.size(), 1u);
}

TEST_F(EngineTest, NeighborUpTriggersRepropagation) {
  engine_.inject(std::make_unique<GradientTuple>("field"));
  platform_.broadcasts.clear();

  engine_.on_neighbor_up(NodeId{4});
  platform_.run_scheduled();
  EXPECT_EQ(platform_.broadcasts.size(), 1u);
  EXPECT_EQ(engine_.maintenance_stats().link_up_repropagations, 1u);
  EXPECT_EQ(engine_.neighbors(), std::vector<NodeId>{NodeId{4}});
}

TEST_F(EngineTest, SimultaneousLinkUpsAreDebounced) {
  engine_.inject(std::make_unique<GradientTuple>("field"));
  platform_.broadcasts.clear();

  engine_.on_neighbor_up(NodeId{4});
  engine_.on_neighbor_up(NodeId{5});
  engine_.on_neighbor_up(NodeId{6});
  platform_.run_scheduled();
  // One re-propagation round, not three.
  EXPECT_EQ(platform_.broadcasts.size(), 1u);
}

TEST_F(EngineTest, NeighborDownRetractsDependents) {
  GradientTuple remote("field");
  remote.set_uid(TupleUid{NodeId{9}, 1});
  remote.set_hop(2);
  engine_.on_datagram(NodeId{5}, tuple_frame(remote));
  platform_.broadcasts.clear();

  engine_.on_neighbor_down(NodeId{5});
  EXPECT_EQ(space_.find(remote.uid()), nullptr);
  EXPECT_EQ(engine_.maintenance_stats().retractions_started, 1u);
  // A RETRACT frame went out.
  ASSERT_EQ(platform_.broadcasts.size(), 1u);
  wire::Reader r(platform_.broadcasts[0]);
  EXPECT_EQ(r.u8(), 2);  // kRetract
  EXPECT_EQ(NodeId{r.uvarint()}, NodeId{9});
  EXPECT_EQ(r.uvarint(), 1u);
}

TEST_F(EngineTest, LocallyInjectedSurvivesNeighborLoss) {
  const auto uid = engine_.inject(std::make_unique<GradientTuple>("field"));
  engine_.on_neighbor_up(NodeId{5});
  engine_.on_neighbor_down(NodeId{5});
  EXPECT_NE(space_.find(uid), nullptr);
}

TEST_F(EngineTest, RetractFromParentCascades) {
  GradientTuple remote("field");
  remote.set_uid(TupleUid{NodeId{9}, 1});
  remote.set_hop(2);
  engine_.on_datagram(NodeId{5}, tuple_frame(remote));
  platform_.broadcasts.clear();

  wire::Writer w;
  w.u8(2);
  w.uvarint(9);
  w.uvarint(1);
  w.svarint(2);
  engine_.on_datagram(NodeId{5}, w.take());
  EXPECT_EQ(space_.find(remote.uid()), nullptr);
  EXPECT_EQ(engine_.maintenance_stats().retractions_cascaded, 1u);
}

TEST_F(EngineTest, RetractFromNonParentTriggersHeal) {
  GradientTuple remote("field");
  remote.set_uid(TupleUid{NodeId{9}, 1});
  remote.set_hop(2);
  engine_.on_datagram(NodeId{5}, tuple_frame(remote));
  platform_.broadcasts.clear();

  wire::Writer w;
  w.u8(2);
  w.uvarint(9);
  w.uvarint(1);
  w.svarint(4);
  engine_.on_datagram(NodeId{6}, w.take());  // not our parent
  EXPECT_NE(space_.find(remote.uid()), nullptr);
  EXPECT_EQ(engine_.maintenance_stats().heal_repropagations, 1u);
  EXPECT_EQ(platform_.broadcasts.size(), 1u);  // replica re-announced
}

TEST_F(EngineTest, HoldDownAdmitsStrictlyBetterValues) {
  GradientTuple remote("field");
  remote.set_uid(TupleUid{NodeId{9}, 1});
  remote.set_hop(4);
  engine_.on_datagram(NodeId{5}, tuple_frame(remote));
  engine_.on_neighbor_down(NodeId{5});  // retract: hold-down at hop 5
  platform_.broadcasts.clear();

  // A copy over a *shorter* path is never a zombie ratchet: it installs
  // immediately despite the hold-down.
  remote.set_hop(2);
  engine_.on_datagram(NodeId{6}, tuple_frame(remote));
  ASSERT_NE(space_.find(remote.uid()), nullptr);
  EXPECT_EQ(space_.find(remote.uid())->tuple->hop(), 3);
}

TEST_F(EngineTest, HoldDownBlocksEqualOrWorseUntilExpiry) {
  GradientTuple remote("field");
  remote.set_uid(TupleUid{NodeId{9}, 1});
  remote.set_hop(4);
  engine_.on_datagram(NodeId{5}, tuple_frame(remote));
  engine_.on_neighbor_down(NodeId{5});  // hold-down armed at hop 5

  remote.set_hop(4);  // re-arrives at the same value
  engine_.on_datagram(NodeId{6}, tuple_frame(remote));
  EXPECT_EQ(space_.find(remote.uid()), nullptr);  // blocked

  platform_.run_scheduled();  // hold-down expires; probe goes out
  engine_.on_datagram(NodeId{6}, tuple_frame(remote));
  EXPECT_NE(space_.find(remote.uid()), nullptr);  // admitted now
}

TEST_F(EngineTest, ProbeAnsweredOnlyByJustifiedHolders) {
  // A replica whose support is gone must not answer probes (it is about
  // to drain itself); a justified one answers.
  GradientTuple remote("field");
  remote.set_uid(TupleUid{NodeId{9}, 1});
  remote.set_hop(2);
  engine_.on_datagram(NodeId{5}, tuple_frame(remote));
  platform_.broadcasts.clear();

  wire::Writer probe;
  probe.u8(3);
  probe.uvarint(9);
  probe.uvarint(1);
  engine_.on_datagram(NodeId{6}, probe.bytes());
  EXPECT_EQ(engine_.maintenance_stats().probe_answers, 1u);
  EXPECT_EQ(platform_.broadcasts.size(), 1u);
}

TEST_F(EngineTest, ProbeForUnknownTupleIgnored) {
  wire::Writer probe;
  probe.u8(3);
  probe.uvarint(9);
  probe.uvarint(1);
  engine_.on_datagram(NodeId{6}, probe.take());
  EXPECT_TRUE(platform_.broadcasts.empty());
  EXPECT_EQ(engine_.maintenance_stats().probe_answers, 0u);
}

TEST_F(EngineTest, SourceAnswersProbesForItsOwnTuple) {
  engine_.inject(std::make_unique<GradientTuple>("field"));
  const TupleUid uid = space_.propagated_uids()[0];
  platform_.broadcasts.clear();

  wire::Writer probe;
  probe.u8(3);
  probe.uvarint(uid.origin().value());
  probe.uvarint(uid.sequence());
  engine_.on_datagram(NodeId{6}, probe.take());
  EXPECT_EQ(platform_.broadcasts.size(), 1u);
}

TEST_F(EngineTest, RetractForUnknownTupleIgnored) {
  wire::Writer w;
  w.u8(2);
  w.uvarint(9);
  w.uvarint(1);
  w.svarint(4);
  engine_.on_datagram(NodeId{6}, w.take());
  EXPECT_TRUE(platform_.broadcasts.empty());
}

TEST_F(EngineTest, GarbageFramesCountedNotFatal) {
  engine_.on_datagram(NodeId{5}, wire::Bytes{});
  engine_.on_datagram(NodeId{5}, wire::Bytes{99, 1, 2});
  engine_.on_datagram(NodeId{5}, wire::Bytes{1, 0xFF, 0xFF});
  EXPECT_EQ(engine_.decode_failures(), 3u);
  EXPECT_TRUE(space_.empty());
}

TEST_F(EngineTest, UnknownTupleTypeCounted) {
  wire::Writer w;
  w.u8(1);
  w.string("never.registered");
  engine_.on_datagram(NodeId{5}, w.take());
  EXPECT_EQ(engine_.decode_failures(), 1u);
}

TEST_F(EngineTest, TrailingBytesRejected) {
  GradientTuple remote("field");
  remote.set_uid(TupleUid{NodeId{9}, 1});
  auto frame = tuple_frame(remote);
  frame.push_back(0xAB);
  engine_.on_datagram(NodeId{5}, frame);
  EXPECT_EQ(engine_.decode_failures(), 1u);
}

TEST_F(EngineTest, ArrivalEventsPublished) {
  int arrivals = 0;
  bus_.subscribe(
      Pattern{}, [&](const Event&) { ++arrivals; },
      static_cast<int>(EventKind::kTupleArrived));
  engine_.inject(std::make_unique<GradientTuple>("field"));
  EXPECT_EQ(arrivals, 1);
}

TEST_F(EngineTest, RemovalEventOnRetraction) {
  int removals = 0;
  bus_.subscribe(
      Pattern{}, [&](const Event&) { ++removals; },
      static_cast<int>(EventKind::kTupleRemoved));
  GradientTuple remote("field");
  remote.set_uid(TupleUid{NodeId{9}, 1});
  engine_.on_datagram(NodeId{5}, tuple_frame(remote));
  engine_.on_neighbor_down(NodeId{5});
  EXPECT_EQ(removals, 1);
}

TEST_F(EngineTest, ModifierTupleDeletesMatchesViaOps) {
  engine_.inject(std::make_unique<GradientTuple>("doomed"));
  engine_.inject(std::make_unique<GradientTuple>("kept"));

  ModifierTuple eraser(GradientTuple::kTag, {{"name", wire::Value{"doomed"}}});
  eraser.set_uid(TupleUid{NodeId{9}, 1});
  wire::Writer w;
  w.u8(1);
  eraser.encode(w);
  engine_.on_datagram(NodeId{5}, w.take());

  Pattern doomed;
  doomed.eq("name", "doomed");
  EXPECT_TRUE(space_.peek(doomed).empty());
  Pattern kept;
  kept.eq("name", "kept");
  EXPECT_EQ(space_.peek(kept).size(), 1u);
}

TEST_F(EngineTest, PassthroughMemoryIsBounded) {
  MaintenanceOptions opts;
  opts.passthrough_memory = 4;
  Engine engine(NodeId{2}, platform_, space_, bus_, opts);

  auto frame_for = [](std::uint64_t seq) {
    ModifierTuple m("no.such.type", {});
    m.set_uid(TupleUid{NodeId{9}, seq});
    wire::Writer w;
    w.u8(1);
    m.encode(w);
    return w.take();
  };

  // Flood 6 distinct pass-through tuples through a 4-entry filter…
  for (std::uint64_t seq = 1; seq <= 6; ++seq) {
    engine.on_datagram(NodeId{5}, frame_for(seq));
  }
  const auto relayed = platform_.broadcasts.size();
  EXPECT_EQ(relayed, 6u);

  // …the newest is still remembered (its duplicate is absorbed)…
  engine.on_datagram(NodeId{6}, frame_for(6));
  EXPECT_EQ(platform_.broadcasts.size(), relayed);

  // …while the oldest was evicted, so its late duplicate is re-relayed
  // once — the documented bounded-memory trade-off.
  engine.on_datagram(NodeId{6}, frame_for(1));
  EXPECT_EQ(platform_.broadcasts.size(), relayed + 1);
}

TEST_F(EngineTest, TruncatedControlFramesCountedAndHarmless) {
  // A stored tuple whose neighbour state must survive garbage frames.
  GradientTuple remote("field");
  remote.set_uid(TupleUid{NodeId{9}, 1});
  engine_.on_datagram(NodeId{5}, tuple_frame(remote));
  ASSERT_NE(space_.find(remote.uid()), nullptr);
  platform_.broadcasts.clear();

  // Every strict prefix of RETRACT and PROBE frames (truncated varints
  // included) must count a decode failure and change nothing.
  for (const wire::Bytes& whole :
       {wire::Frame::retract(remote.uid(), 7), wire::Frame::probe(remote.uid())}) {
    for (std::size_t len = 1; len < whole.size(); ++len) {
      const auto before = engine_.decode_failures();
      engine_.on_datagram(NodeId{5},
                          std::span(whole.data(), len));
      EXPECT_EQ(engine_.decode_failures(), before + 1) << "len=" << len;
    }
  }
  // The replica is still stored, still justified by neighbour 5 (a real
  // RETRACT would have cascaded), and nothing was transmitted.
  EXPECT_NE(space_.find(remote.uid()), nullptr);
  EXPECT_EQ(engine_.maintenance_stats().retractions_cascaded, 0u);
  EXPECT_TRUE(platform_.broadcasts.empty());
}

TEST_F(EngineTest, DecodeFailureMetricRecorded) {
  obs::Hub hub;
  Engine engine(NodeId{3}, platform_, space_, bus_, {}, &hub);
  engine.on_datagram(NodeId{5}, wire::Bytes{99});
  EXPECT_EQ(hub.metrics.get("engine.decode_fail"), 1);
}

// --- BoundedUidFifo --------------------------------------------------------

TEST(BoundedUidFifoTest, EvictsOldestHalfBeyondCapacity) {
  BoundedUidFifo<std::monostate> fifo(4);
  for (std::uint64_t seq = 1; seq <= 5; ++seq) {
    EXPECT_TRUE(fifo.insert(TupleUid{NodeId{1}, seq}));
  }
  // 5 entries > 4 ⇒ evict 5/2 = 2 oldest.
  EXPECT_EQ(fifo.size(), 3u);
  EXPECT_FALSE(fifo.contains(TupleUid{NodeId{1}, 1}));
  EXPECT_FALSE(fifo.contains(TupleUid{NodeId{1}, 2}));
  EXPECT_TRUE(fifo.contains(TupleUid{NodeId{1}, 3}));
  EXPECT_TRUE(fifo.contains(TupleUid{NodeId{1}, 5}));
}

TEST(BoundedUidFifoTest, StaleSlotsDoNotSpendEvictionQuota) {
  // Regression: erased uids leave stale slots in the insertion-order
  // deque.  The old eviction loop counted those slots against the
  // quota, evicting live entries well before capacity.
  BoundedUidFifo<std::monostate> fifo(4);
  for (std::uint64_t seq = 1; seq <= 3; ++seq) {
    fifo.insert(TupleUid{NodeId{1}, seq});
  }
  fifo.erase(TupleUid{NodeId{1}, 1});
  fifo.erase(TupleUid{NodeId{1}, 2});
  fifo.insert(TupleUid{NodeId{1}, 4});
  fifo.insert(TupleUid{NodeId{1}, 5});
  ASSERT_EQ(fifo.size(), 3u);

  // Overflow: quota is 5/2 = 2 *live* evictions — the two stale front
  // slots must be skipped, leaving {5, 6, 7}.
  fifo.insert(TupleUid{NodeId{1}, 6});
  fifo.insert(TupleUid{NodeId{1}, 7});
  EXPECT_EQ(fifo.size(), 3u);
  EXPECT_FALSE(fifo.contains(TupleUid{NodeId{1}, 3}));
  EXPECT_FALSE(fifo.contains(TupleUid{NodeId{1}, 4}));
  EXPECT_TRUE(fifo.contains(TupleUid{NodeId{1}, 5}));
  EXPECT_TRUE(fifo.contains(TupleUid{NodeId{1}, 6}));
  EXPECT_TRUE(fifo.contains(TupleUid{NodeId{1}, 7}));
}

TEST(BoundedUidFifoTest, ReinsertedUidNotEvictedByItsStaleSlot) {
  // An erased-then-reinserted uid reuses the key; its *old* deque slot
  // must not evict the new entry.
  BoundedUidFifo<int> fifo(4);
  const TupleUid victim{NodeId{1}, 1};
  fifo.insert(victim, 10);
  fifo.erase(victim);
  for (std::uint64_t seq = 2; seq <= 4; ++seq) {
    fifo.insert(TupleUid{NodeId{1}, seq}, 0);
  }
  fifo.insert(victim, 20);  // re-insert: newest entry, stale slot at front
  ASSERT_EQ(fifo.size(), 4u);

  fifo.insert(TupleUid{NodeId{1}, 5}, 0);  // overflow, quota 2
  // Evicted: 2 and 3 (the oldest live); the re-inserted victim survives
  // with its new value.
  EXPECT_FALSE(fifo.contains(TupleUid{NodeId{1}, 2}));
  EXPECT_FALSE(fifo.contains(TupleUid{NodeId{1}, 3}));
  ASSERT_TRUE(fifo.contains(victim));
  EXPECT_EQ(*fifo.find(victim), 20);
}

TEST(BoundedUidFifoTest, InsertOnExistingUidKeepsStoredValue) {
  BoundedUidFifo<int> fifo(8);
  EXPECT_TRUE(fifo.insert(TupleUid{NodeId{1}, 1}, 10));
  EXPECT_FALSE(fifo.insert(TupleUid{NodeId{1}, 1}, 20));
  EXPECT_EQ(*fifo.find(TupleUid{NodeId{1}, 1}), 10);
}

TEST_F(EngineTest, PassThroughProcessedOncePerNode) {
  // A modifier tuple is pass-through; a second copy via another neighbour
  // must not re-run effects or re-propagate.
  ModifierTuple eraser(GradientTuple::kTag, {{"name", wire::Value{"x"}}});
  eraser.set_uid(TupleUid{NodeId{9}, 1});
  wire::Writer w;
  w.u8(1);
  eraser.encode(w);
  const auto frame = w.take();

  engine_.on_datagram(NodeId{5}, frame);
  const auto first_count = platform_.broadcasts.size();
  engine_.on_datagram(NodeId{6}, frame);
  EXPECT_EQ(platform_.broadcasts.size(), first_count);
}

TEST(EngineLifetimeTest, DestructorCancelsPendingTimers) {
  // A destroyed engine must leave no timers behind on a platform that
  // outlives it (a live event loop does; the simulator's aliveness token
  // only guards the SimPlatform binding).  Provoke both timer kinds — a
  // coalesced link-up re-propagation and a hold-down expiry — then tear
  // the engine down with them pending.
  tuples::register_standard_tuples();
  FakePlatform platform;
  {
    TupleSpace space;
    EventBus bus;
    Engine engine{NodeId{1}, platform, space, bus};

    GradientTuple remote("field");
    remote.set_uid(TupleUid{NodeId{9}, 1});
    remote.set_hop(2);
    wire::Writer w;
    w.u8(1);
    remote.encode(w);
    engine.on_datagram(NodeId{5}, w.take());
    engine.on_neighbor_up(NodeId{5});
    platform.run_scheduled();
    engine.on_neighbor_down(NodeId{5});  // retraction arms the hold-down
    engine.on_neighbor_up(NodeId{6});    // pending re-propagation round
    ASSERT_GE(platform.pending_scheduled(), 2u);
  }
  EXPECT_EQ(platform.pending_scheduled(), 0u);
  platform.run_scheduled();  // nothing fires into the destroyed engine
}

}  // namespace
}  // namespace tota
