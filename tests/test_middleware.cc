// Tests for the Middleware facade: the paper's API surface semantics.
#include <gtest/gtest.h>

#include "fake_platform.h"
#include "tota/middleware.h"
#include "tuples/all.h"

namespace tota {
namespace {

using testing::FakePlatform;
using namespace tota::tuples;

class MiddlewareTest : public ::testing::Test {
 protected:
  void SetUp() override { register_standard_tuples(); }

  FakePlatform platform_;
  Middleware mw_{NodeId{1}, platform_};
};

TEST_F(MiddlewareTest, InjectReturnsUidAndStores) {
  const TupleUid uid = mw_.inject(std::make_unique<GradientTuple>("f"));
  EXPECT_TRUE(uid.valid());
  EXPECT_EQ(uid.origin(), mw_.self());
  EXPECT_EQ(mw_.space().size(), 1u);
}

TEST_F(MiddlewareTest, ReadReturnsCopiesNotViews) {
  mw_.inject(std::make_unique<GradientTuple>("f"));
  auto copies = mw_.read(Pattern{});
  ASSERT_EQ(copies.size(), 1u);
  copies[0]->content().set("name", "tampered");
  EXPECT_EQ(mw_.read_one(Pattern{})->content().at("name").as_string(), "f");
}

TEST_F(MiddlewareTest, ReadOneNullWhenNoMatch) {
  EXPECT_EQ(mw_.read_one(Pattern::of_type(FlockTuple::kTag)), nullptr);
}

TEST_F(MiddlewareTest, TakeRemovesLocally) {
  mw_.inject(std::make_unique<GradientTuple>("a"));
  mw_.inject(std::make_unique<GradientTuple>("b"));
  Pattern p;
  p.eq("name", "a");
  const auto taken = mw_.take(p);
  ASSERT_EQ(taken.size(), 1u);
  EXPECT_EQ(taken[0]->content().at("name").as_string(), "a");
  EXPECT_EQ(mw_.space().size(), 1u);
}

TEST_F(MiddlewareTest, TakeDoesNotAnnounceRemoval) {
  // The paper's delete is local: no RETRACT goes on the air, other
  // replicas are untouched (use ModifierTuple for distributed deletes).
  mw_.inject(std::make_unique<GradientTuple>("a"));
  platform_.broadcasts.clear();
  mw_.take(Pattern{});
  EXPECT_TRUE(platform_.broadcasts.empty());
}

TEST_F(MiddlewareTest, SubscribeFiresOnInject) {
  std::vector<std::string> seen;
  mw_.subscribe(Pattern::of_type(GradientTuple::kTag),
                [&](const Event& e) {
                  seen.push_back(e.tuple->content().at("name").as_string());
                },
                static_cast<int>(EventKind::kTupleArrived));
  mw_.inject(std::make_unique<GradientTuple>("x"));
  EXPECT_EQ(seen, std::vector<std::string>{"x"});
}

TEST_F(MiddlewareTest, UnsubscribeByTemplateStopsReactions) {
  int fired = 0;
  Pattern p = Pattern::of_type(GradientTuple::kTag);
  p.eq("name", "x");
  mw_.subscribe(p, [&](const Event&) { ++fired; });

  Pattern same = Pattern::of_type(GradientTuple::kTag);
  same.eq("name", "x");
  mw_.unsubscribe(same);
  mw_.inject(std::make_unique<GradientTuple>("x"));
  EXPECT_EQ(fired, 0);
}

TEST_F(MiddlewareTest, UnsubscribeByIdIsPrecise) {
  int a = 0;
  int b = 0;
  const auto ida =
      mw_.subscribe(Pattern{}, [&](const Event&) { ++a; });
  mw_.subscribe(Pattern{}, [&](const Event&) { ++b; });
  mw_.unsubscribe(ida);
  mw_.inject(std::make_unique<GradientTuple>("x"));
  EXPECT_EQ(a, 0);
  EXPECT_GE(b, 1);
}

TEST_F(MiddlewareTest, NeighborUpDownPublishPresenceEvents) {
  std::vector<std::pair<bool, NodeId>> events;
  mw_.subscribe(Pattern::of_type(PresenceTuple::kTag),
                [&](const Event& e) {
                  const auto& p = static_cast<const PresenceTuple&>(*e.tuple);
                  events.emplace_back(p.up(), p.neighbor());
                });
  mw_.on_neighbor_up(NodeId{9});
  mw_.on_neighbor_down(NodeId{9});
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], (std::pair<bool, NodeId>{true, NodeId{9}}));
  EXPECT_EQ(events[1], (std::pair<bool, NodeId>{false, NodeId{9}}));
  EXPECT_TRUE(mw_.neighbors().empty());
}

TEST_F(MiddlewareTest, DatagramsFlowToTheEngine) {
  GradientTuple remote("f");
  remote.set_uid(TupleUid{NodeId{7}, 3});
  remote.set_hop(1);
  wire::Writer w;
  w.u8(1);
  remote.encode(w);
  mw_.on_datagram(NodeId{7}, w.bytes());
  EXPECT_EQ(mw_.space().size(), 1u);
  EXPECT_EQ(mw_.engine().decode_failures(), 0u);
}

TEST_F(MiddlewareTest, EventSubscriptionSeesRemovals) {
  int removed = 0;
  mw_.subscribe(
      Pattern{}, [&](const Event&) { ++removed; },
      static_cast<int>(EventKind::kTupleRemoved));
  mw_.inject(std::make_unique<GradientTuple>("f"));
  mw_.take(Pattern{});
  // take() itself bypasses the bus (paper semantics: a pull, not an
  // event)… removals via the engine's ops DO fire; assert current
  // contract explicitly:
  EXPECT_EQ(removed, 0);
}

TEST_F(MiddlewareTest, SelfAndPlatformAccessors) {
  EXPECT_EQ(mw_.self(), NodeId{1});
  EXPECT_EQ(&mw_.platform(), &platform_);
}

}  // namespace
}  // namespace tota
