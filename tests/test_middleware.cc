// Tests for the Middleware facade: the paper's API surface semantics.
#include <gtest/gtest.h>

#include "fake_platform.h"
#include "tota/middleware.h"
#include "tuples/all.h"

namespace tota {
namespace {

using testing::FakePlatform;
using namespace tota::tuples;

class MiddlewareTest : public ::testing::Test {
 protected:
  void SetUp() override { register_standard_tuples(); }

  FakePlatform platform_;
  Middleware mw_{NodeId{1}, platform_};
};

TEST_F(MiddlewareTest, InjectReturnsUidAndStores) {
  const TupleUid uid = mw_.inject(std::make_unique<GradientTuple>("f"));
  EXPECT_TRUE(uid.valid());
  EXPECT_EQ(uid.origin(), mw_.self());
  EXPECT_EQ(mw_.space().size(), 1u);
}

TEST_F(MiddlewareTest, ReadReturnsCopiesNotViews) {
  mw_.inject(std::make_unique<GradientTuple>("f"));
  auto copies = mw_.read(Pattern{});
  ASSERT_EQ(copies.size(), 1u);
  copies[0]->content().set("name", "tampered");
  EXPECT_EQ(mw_.read_one(Pattern{})->content().at("name").as_string(), "f");
}

TEST_F(MiddlewareTest, ReadOneNullWhenNoMatch) {
  EXPECT_EQ(mw_.read_one(Pattern::of_type(FlockTuple::kTag)), nullptr);
}

TEST_F(MiddlewareTest, TakeRemovesLocally) {
  mw_.inject(std::make_unique<GradientTuple>("a"));
  mw_.inject(std::make_unique<GradientTuple>("b"));
  Pattern p;
  p.eq("name", "a");
  const auto taken = mw_.take(p);
  ASSERT_EQ(taken.size(), 1u);
  EXPECT_EQ(taken[0]->content().at("name").as_string(), "a");
  EXPECT_EQ(mw_.space().size(), 1u);
}

TEST_F(MiddlewareTest, TakeDoesNotAnnounceRemoval) {
  // The paper's delete is local: no RETRACT goes on the air, other
  // replicas are untouched (use ModifierTuple for distributed deletes).
  mw_.inject(std::make_unique<GradientTuple>("a"));
  platform_.broadcasts.clear();
  mw_.take(Pattern{});
  EXPECT_TRUE(platform_.broadcasts.empty());
}

TEST_F(MiddlewareTest, SubscribeFiresOnInject) {
  std::vector<std::string> seen;
  mw_.subscribe(Pattern::of_type(GradientTuple::kTag),
                [&](const Event& e) {
                  seen.push_back(e.tuple->content().at("name").as_string());
                },
                static_cast<int>(EventKind::kTupleArrived));
  mw_.inject(std::make_unique<GradientTuple>("x"));
  EXPECT_EQ(seen, std::vector<std::string>{"x"});
}

TEST_F(MiddlewareTest, UnsubscribeByTemplateStopsReactions) {
  int fired = 0;
  Pattern p = Pattern::of_type(GradientTuple::kTag);
  p.eq("name", "x");
  mw_.subscribe(p, [&](const Event&) { ++fired; });

  Pattern same = Pattern::of_type(GradientTuple::kTag);
  same.eq("name", "x");
  mw_.unsubscribe(same);
  mw_.inject(std::make_unique<GradientTuple>("x"));
  EXPECT_EQ(fired, 0);
}

TEST_F(MiddlewareTest, UnsubscribeByIdIsPrecise) {
  int a = 0;
  int b = 0;
  const auto ida =
      mw_.subscribe(Pattern{}, [&](const Event&) { ++a; });
  mw_.subscribe(Pattern{}, [&](const Event&) { ++b; });
  mw_.unsubscribe(ida);
  mw_.inject(std::make_unique<GradientTuple>("x"));
  EXPECT_EQ(a, 0);
  EXPECT_GE(b, 1);
}

TEST_F(MiddlewareTest, NeighborUpDownPublishPresenceEvents) {
  std::vector<std::pair<bool, NodeId>> events;
  mw_.subscribe(Pattern::of_type(PresenceTuple::kTag),
                [&](const Event& e) {
                  const auto& p = static_cast<const PresenceTuple&>(*e.tuple);
                  events.emplace_back(p.up(), p.neighbor());
                });
  mw_.on_neighbor_up(NodeId{9});
  mw_.on_neighbor_down(NodeId{9});
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], (std::pair<bool, NodeId>{true, NodeId{9}}));
  EXPECT_EQ(events[1], (std::pair<bool, NodeId>{false, NodeId{9}}));
  EXPECT_TRUE(mw_.neighbors().empty());
}

TEST_F(MiddlewareTest, DatagramsFlowToTheEngine) {
  GradientTuple remote("f");
  remote.set_uid(TupleUid{NodeId{7}, 3});
  remote.set_hop(1);
  wire::Writer w;
  w.u8(1);
  remote.encode(w);
  mw_.on_datagram(NodeId{7}, w.bytes());
  EXPECT_EQ(mw_.space().size(), 1u);
  EXPECT_EQ(mw_.engine().decode_failures(), 0u);
}

TEST_F(MiddlewareTest, EventSubscriptionSeesRemovals) {
  int removed = 0;
  mw_.subscribe(
      Pattern{}, [&](const Event&) { ++removed; },
      static_cast<int>(EventKind::kTupleRemoved));
  mw_.inject(std::make_unique<GradientTuple>("f"));
  mw_.take(Pattern{});
  // take() itself bypasses the bus (paper semantics: a pull, not an
  // event)… removals via the engine's ops DO fire; assert current
  // contract explicitly:
  EXPECT_EQ(removed, 0);
}

// --- continuous queries (docs/QUERY.md) --------------------------------------

TEST_F(MiddlewareTest, SubscribeQueryReplaysExistingMatchesThenTracks) {
  mw_.inject(std::make_unique<GradientTuple>("a"));
  mw_.inject(std::make_unique<GradientTuple>("b"));
  std::vector<std::pair<QueryDelta::Kind, std::string>> log;
  Pattern p = Pattern::of_type(GradientTuple::kTag);
  mw_.subscribe_query(p, [&](const QueryDelta& d) {
    log.emplace_back(d.kind, d.tuple->content().at("name").as_string());
  });
  // Registration replayed the stored matches, in uid order.
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], (std::pair{QueryDelta::Kind::kAdded, std::string{"a"}}));
  EXPECT_EQ(log[1], (std::pair{QueryDelta::Kind::kAdded, std::string{"b"}}));

  // From then on, every store change maintains the set incrementally.
  mw_.inject(std::make_unique<GradientTuple>("c"));
  Pattern take_a;
  take_a.eq("name", "a");
  mw_.take(take_a);
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[2], (std::pair{QueryDelta::Kind::kAdded, std::string{"c"}}));
  EXPECT_EQ(log[3],
            (std::pair{QueryDelta::Kind::kRemoved, std::string{"a"}}));
}

TEST_F(MiddlewareTest, UnsubscribeQueryStopsDeltas) {
  int fired = 0;
  const auto id =
      mw_.subscribe_query(Pattern{}, [&](const QueryDelta&) { ++fired; });
  mw_.unsubscribe_query(id);
  mw_.inject(std::make_unique<GradientTuple>("x"));
  EXPECT_EQ(fired, 0);
}

TEST_F(MiddlewareTest, PredicateQueriesTrackFieldChanges) {
  std::vector<QueryDelta::Kind> kinds;
  Pattern near = Pattern::of_type(GradientTuple::kTag);
  near.where("hopcount", Pred::le(2));
  mw_.subscribe_query(near,
                      [&](const QueryDelta& d) { kinds.push_back(d.kind); });

  // A far copy arrives first (outside the predicate, silent); the shorter
  // path supersedes it, and the replacement enters the result set.
  GradientTuple remote("f");
  remote.set_uid(TupleUid{NodeId{7}, 3});
  remote.set_hop(4);
  remote.content().set("source", NodeId{7}).set("hopcount", 4);
  wire::Writer w1;
  w1.u8(1);
  remote.encode(w1);
  mw_.on_datagram(NodeId{7}, w1.bytes());
  EXPECT_TRUE(kinds.empty());

  remote.set_hop(0);
  remote.content().set("hopcount", 0);
  wire::Writer w2;
  w2.u8(1);
  remote.encode(w2);
  mw_.on_datagram(NodeId{8}, w2.bytes());

  mw_.take(Pattern::of_type(GradientTuple::kTag));
  ASSERT_EQ(kinds.size(), 2u);
  EXPECT_EQ(kinds[0], QueryDelta::Kind::kAdded);
  EXPECT_EQ(kinds[1], QueryDelta::Kind::kRemoved);
}

// --- access filtering (read + continuous queries) ----------------------------

TEST_F(MiddlewareTest, ReadFiltersTuplesThisNodeMayNotObserve) {
  // A private marker from node 7: hosted here, invisible to read().
  GradientTuple secret("s");
  secret.set_uid(TupleUid{NodeId{7}, 1});
  secret.set_hop(1);
  secret.set_access(AccessPolicy::private_to_owner());
  wire::Writer w;
  w.u8(1);
  secret.encode(w);
  mw_.on_datagram(NodeId{7}, w.bytes());
  ASSERT_EQ(mw_.space().size(), 1u);  // hosted…
  EXPECT_TRUE(mw_.read(Pattern{}).empty());  // …but not observable
  EXPECT_EQ(mw_.read_one(Pattern{}), nullptr);
}

TEST_F(MiddlewareTest, ContinuousQueriesNeverAdmitUnobservableTuples) {
  int fired = 0;
  mw_.subscribe_query(Pattern{}, [&](const QueryDelta&) { ++fired; });

  GradientTuple secret("s");
  secret.set_uid(TupleUid{NodeId{7}, 1});
  secret.set_hop(1);
  secret.set_access(AccessPolicy::private_to_owner());
  wire::Writer w;
  w.u8(1);
  secret.encode(w);
  mw_.on_datagram(NodeId{7}, w.bytes());
  EXPECT_EQ(mw_.space().size(), 1u);
  EXPECT_EQ(fired, 0);

  // An open tuple from the same node flows through normally.
  GradientTuple open("o");
  open.set_uid(TupleUid{NodeId{7}, 2});
  open.set_hop(1);
  wire::Writer w2;
  w2.u8(1);
  open.encode(w2);
  mw_.on_datagram(NodeId{7}, w2.bytes());
  EXPECT_EQ(fired, 1);
}

TEST_F(MiddlewareTest, SelfAndPlatformAccessors) {
  EXPECT_EQ(mw_.self(), NodeId{1});
  EXPECT_EQ(&mw_.platform(), &platform_);
}

}  // namespace
}  // namespace tota
