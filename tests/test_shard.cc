// Tests for the sharded parallel simulator (sim::ShardedSim +
// emu::ShardedWorld, docs/SIM.md).
//
// The two properties the sharding refactor must not break:
//
//   1. Radio correctness — a sharded run converges to exactly the state
//      a sequential run converges to: gradient hop counts equal the BFS
//      oracle, and the full per-node tuple-space contents are identical
//      across shard counts (1 vs 2 vs 4 shards, same world seed).
//
//   2. Determinism per (seed, shard_count) — running the same world
//      twice at the same shard count yields bit-identical merged
//      metrics JSON, even though epochs run on real threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <vector>

#include "emu/sharded_world.h"
#include "obs/export.h"
#include "tuples/all.h"

namespace tota {
namespace {

using namespace tota::tuples;

// --- sim::ShardedSim ------------------------------------------------------

sim::ShardedParams params(std::uint32_t shards, std::uint64_t seed = 7) {
  sim::ShardedParams p;
  p.radio.range_m = 100.0;
  p.seed = seed;
  p.shards = shards;
  return p;
}

/// Records every upcall it receives, with the receiving shard clock.
class RecordingHost final : public sim::Host {
 public:
  RecordingHost(sim::ShardedSim& sim, NodeId self) : sim_(sim), self_(self) {}

  void on_datagram(NodeId from,
                   std::span<const std::uint8_t> payload) override {
    datagrams.push_back({from, sim_.node_now(self_), payload.size()});
  }
  void on_neighbor_up(NodeId neighbor) override { ups.push_back(neighbor); }
  void on_neighbor_down(NodeId neighbor) override {
    downs.push_back(neighbor);
  }

  struct Rx {
    NodeId from;
    SimTime at;
    std::size_t bytes;
  };
  std::vector<Rx> datagrams;
  std::vector<NodeId> ups;
  std::vector<NodeId> downs;

 private:
  sim::ShardedSim& sim_;
  NodeId self_;
};

TEST(ShardedSimTest, PartitionIsContiguousInX) {
  sim::ShardedSim sim(params(4));
  std::vector<NodeId> ids;
  for (int i = 0; i < 40; ++i) {
    ids.push_back(sim.add_node({static_cast<double>(i) * 10.0, 0.0}));
  }
  sim.seal();
  std::uint32_t last = 0;
  std::vector<bool> used(4, false);
  for (const NodeId id : ids) {
    const std::uint32_t owner = sim.shard_of(id);
    ASSERT_LT(owner, 4u);
    EXPECT_GE(owner, last) << "ownership must be monotone in x";
    last = owner;
    used[owner] = true;
  }
  for (int s = 0; s < 4; ++s) EXPECT_TRUE(used[s]) << "empty shard " << s;
}

TEST(ShardedSimTest, PopulationIsFrozenAtSeal) {
  sim::ShardedSim sim(params(2));
  sim.add_node({0, 0});
  sim.add_node({1000, 0});
  sim.seal();
  EXPECT_THROW(sim.add_node({50, 0}), std::logic_error);
}

TEST(ShardedSimTest, ParallelModeRequiresLookahead) {
  auto p = params(2);
  p.radio.base_delay = SimTime::zero();
  EXPECT_THROW(sim::ShardedSim{p}, std::invalid_argument);
  p.shards = 1;  // sequential mode has no lookahead constraint
  EXPECT_NO_THROW(sim::ShardedSim{p});
}

TEST(ShardedSimTest, CrossShardBroadcastArrivesOnce) {
  // Two nodes in radio range, forced into different shards by position.
  sim::ShardedSim sim(params(2));
  const NodeId a = sim.add_node({0, 0});
  const NodeId b = sim.add_node({90, 0});
  sim.seal();
  ASSERT_NE(sim.shard_of(a), sim.shard_of(b));
  RecordingHost ha(sim, a);
  RecordingHost hb(sim, b);
  sim.attach(a, &ha);
  sim.attach(b, &hb);

  sim.broadcast(a, wire::Bytes{1, 2, 3});
  sim.run_for(SimTime::from_seconds(1));

  ASSERT_EQ(hb.datagrams.size(), 1u);
  EXPECT_EQ(hb.datagrams[0].from, a);
  EXPECT_EQ(hb.datagrams[0].bytes, 3u);
  // Delay within [base, base + jitter].
  const auto& radio = sim.params().radio;
  EXPECT_GE(hb.datagrams[0].at, radio.base_delay);
  EXPECT_LE(hb.datagrams[0].at, radio.base_delay + radio.jitter);
  EXPECT_TRUE(ha.datagrams.empty()) << "no self-delivery";

  obs::MetricsRegistry merged;
  sim.export_metrics(merged);
  EXPECT_EQ(merged.get("sim.shard.cross_deliveries"), 1);
  EXPECT_EQ(merged.get("radio.tx"), 1);
  EXPECT_EQ(merged.get("radio.rx"), 1);
  EXPECT_GT(merged.get("sim.shard.epochs"), 0);
}

TEST(ShardedSimTest, MoveNodeMaintainsLinksIncrementally) {
  sim::ShardedSim sim(params(2));
  const NodeId a = sim.add_node({0, 0});
  const NodeId b = sim.add_node({90, 0});
  sim.seal();
  RecordingHost ha(sim, a);
  RecordingHost hb(sim, b);
  sim.attach(a, &ha);
  sim.attach(b, &hb);
  sim.run_for(SimTime::from_millis(10));
  ASSERT_EQ(ha.ups, std::vector<NodeId>{b});
  ASSERT_EQ(hb.ups, std::vector<NodeId>{a});

  sim.move_node(b, {5000, 5000});
  EXPECT_TRUE(sim.neighbors(a).empty());
  sim.run_for(SimTime::from_millis(10));
  EXPECT_EQ(ha.downs, std::vector<NodeId>{b});
  EXPECT_EQ(hb.downs, std::vector<NodeId>{a});

  sim.move_node(b, {50, 0});
  EXPECT_EQ(sim.neighbors(a), std::vector<NodeId>{b});
  EXPECT_EQ(sim.neighbors(a), sim.topology().neighbors(a));
  sim.run_for(SimTime::from_millis(10));
  EXPECT_EQ(ha.ups, (std::vector<NodeId>{b, b}));
}

// --- emu::ShardedWorld ----------------------------------------------------

emu::ShardedWorld::Options world_options(std::uint32_t shards,
                                         std::uint64_t seed = 7) {
  emu::ShardedWorld::Options o;
  o.net = params(shards, seed);
  return o;
}

/// Per-node tuple-space snapshot: sorted "tag|content" lines, one per
/// local tuple — the strictest portable notion of "same contents".
std::vector<std::string> space_snapshot(const emu::ShardedWorld& world,
                                        NodeId node) {
  std::vector<std::string> out;
  for (const auto& t : world.mw(node).read(Pattern())) {
    out.push_back(t->type_tag() + "|" + t->content().str());
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Builds a 12×12 grid world, injects two gradients and a flood, runs to
/// convergence, and returns it.
struct ConvergedWorld {
  explicit ConvergedWorld(std::uint32_t shards, std::uint64_t seed = 7)
      : world(world_options(shards, seed)) {
    nodes = world.spawn_grid(12, 12, 80.0);
    world.run_for(SimTime::from_millis(500));
    world.mw(nodes[0]).inject(std::make_unique<GradientTuple>("alpha"));
    world.mw(nodes[77]).inject(std::make_unique<GradientTuple>("beta"));
    world.mw(nodes[140]).inject(
        std::make_unique<FloodTuple>("notice", wire::Value{42}));
    world.run_for(SimTime::from_seconds(8));
  }
  emu::ShardedWorld world;
  std::vector<NodeId> nodes;
};

TEST(ShardedWorldTest, GradientIsBfsExactPerShardCount) {
  for (const std::uint32_t shards : {1u, 2u, 4u}) {
    ConvergedWorld cw(shards);
    const auto oracle = cw.world.net().topology().hop_distances(cw.nodes[0]);
    for (const NodeId n : cw.nodes) {
      const auto replica = cw.world.mw(n).read_one(
          Pattern::of_type(GradientTuple::kTag).eq("name", "alpha"));
      ASSERT_NE(replica, nullptr)
          << "node " << to_string(n) << " missed the field at " << shards
          << " shards";
      EXPECT_EQ(replica->content().at("hopcount").as_int(),
                oracle.at(n))
          << "node " << to_string(n) << " at " << shards << " shards";
    }
  }
}

TEST(ShardedWorldTest, FinalContentsIdenticalAcrossShardCounts) {
  ConvergedWorld one(1);
  ConvergedWorld two(2);
  ConvergedWorld four(4);
  for (std::size_t i = 0; i < one.nodes.size(); ++i) {
    const auto expect = space_snapshot(one.world, one.nodes[i]);
    EXPECT_FALSE(expect.empty());
    EXPECT_EQ(space_snapshot(two.world, two.nodes[i]), expect)
        << "node index " << i << ", 2 shards vs 1";
    EXPECT_EQ(space_snapshot(four.world, four.nodes[i]), expect)
        << "node index " << i << ", 4 shards vs 1";
  }
}

TEST(ShardedWorldTest, ChurnHealsBfsExactAcrossShards) {
  ConvergedWorld cw(4);
  // Teleport a mid-grid node (likely near a shard boundary) far away,
  // let the field self-heal, then bring it home and re-converge.
  const NodeId flapper = cw.nodes[66];
  const Vec2 home = cw.world.net().position(flapper);
  cw.world.move_node(flapper, {50000, 50000});
  cw.world.run_for(SimTime::from_seconds(5));
  cw.world.move_node(flapper, home);
  cw.world.run_for(SimTime::from_seconds(5));

  const auto oracle = cw.world.net().topology().hop_distances(cw.nodes[0]);
  const Pattern alpha =
      Pattern::of_type(GradientTuple::kTag).eq("name", "alpha");
  for (const NodeId n : cw.nodes) {
    const auto replica = cw.world.mw(n).read_one(alpha);
    ASSERT_NE(replica, nullptr);
    EXPECT_EQ(replica->content().at("hopcount").as_int(), oracle.at(n));
  }
}

TEST(ShardedWorldTest, SubscriptionsFireOnWorkerThreads) {
  emu::ShardedWorld world(world_options(4));
  const auto nodes = world.spawn_grid(8, 8, 80.0);
  std::atomic<std::uint64_t> reactions{0};
  world.seal();
  for (const NodeId n : nodes) {
    world.mw(n).subscribe(
        Pattern::of_type(GradientTuple::kTag),
        [&reactions](const Event&) {
          reactions.fetch_add(1, std::memory_order_relaxed);
        },
        static_cast<int>(EventKind::kTupleArrived));
  }
  world.mw(nodes[0]).inject(std::make_unique<GradientTuple>("field"));
  world.run_for(SimTime::from_seconds(5));
  // Every node but the source sees at least one arrival.
  EXPECT_GE(reactions.load(), nodes.size() - 1);
}

std::string metrics_fingerprint(std::uint32_t shards, std::uint64_t seed) {
  ConvergedWorld cw(shards, seed);
  obs::MetricsRegistry merged;
  cw.world.export_metrics(merged);
  return obs::metrics_to_json(merged).dump();
}

TEST(ShardedWorldTest, MetricsAreDeterministicPerShardCount) {
  // The determinism contract: same seed + same shard count ⇒ the whole
  // merged metrics document is bit-identical, threads and all.
  EXPECT_EQ(metrics_fingerprint(4, 7), metrics_fingerprint(4, 7));
  EXPECT_EQ(metrics_fingerprint(2, 7), metrics_fingerprint(2, 7));
  // And the seed matters: a different world is a different document.
  EXPECT_NE(metrics_fingerprint(4, 7), metrics_fingerprint(4, 8));
}

}  // namespace
}  // namespace tota
