// Unit tests for tuple pattern matching.
#include <gtest/gtest.h>

#include "tota/pattern.h"
#include "tuples/gradient_tuple.h"

namespace tota {
namespace {

using tuples::GradientTuple;

GradientTuple make_gradient(const std::string& name, NodeId source, int hop) {
  GradientTuple g(name);
  g.content().set("source", source).set("hopcount", hop);
  return g;
}

TEST(PatternTest, EmptyPatternMatchesEverything) {
  const Pattern p;
  EXPECT_TRUE(p.matches(make_gradient("a", NodeId{1}, 0)));
  EXPECT_TRUE(p.matches(make_gradient("b", NodeId{2}, 9)));
}

TEST(PatternTest, TypeConstraint) {
  const Pattern p = Pattern::of_type(GradientTuple::kTag);
  EXPECT_TRUE(p.matches(make_gradient("a", NodeId{1}, 0)));
  const Pattern q = Pattern::of_type("tota.flock");
  EXPECT_FALSE(q.matches(make_gradient("a", NodeId{1}, 0)));
}

TEST(PatternTest, ExactFieldMatch) {
  Pattern p;
  p.eq("name", "route");
  EXPECT_TRUE(p.matches(make_gradient("route", NodeId{1}, 2)));
  EXPECT_FALSE(p.matches(make_gradient("other", NodeId{1}, 2)));
}

TEST(PatternTest, ExactMatchIsTypeSensitive) {
  Pattern p;
  p.eq("hopcount", 2);
  EXPECT_TRUE(p.matches(make_gradient("x", NodeId{1}, 2)));
  Pattern q;
  q.eq("hopcount", 2.0);  // double != int field
  EXPECT_FALSE(q.matches(make_gradient("x", NodeId{1}, 2)));
}

TEST(PatternTest, ExistsRequiresPresenceOnly) {
  Pattern p;
  p.exists("hopcount");
  EXPECT_TRUE(p.matches(make_gradient("x", NodeId{1}, 0)));
  Pattern q;
  q.exists("no_such_field");
  EXPECT_FALSE(q.matches(make_gradient("x", NodeId{1}, 0)));
}

TEST(PatternTest, PredicateConstraint) {
  Pattern p;
  p.where("hopcount", Pred::ge(3));
  EXPECT_TRUE(p.matches(make_gradient("x", NodeId{1}, 3)));
  EXPECT_FALSE(p.matches(make_gradient("x", NodeId{1}, 2)));
}

TEST(PredTest, OrderedComparisons) {
  EXPECT_TRUE(Pred::lt(3).eval(wire::Value{2}));
  EXPECT_FALSE(Pred::lt(3).eval(wire::Value{3}));
  EXPECT_TRUE(Pred::le(3).eval(wire::Value{3}));
  EXPECT_TRUE(Pred::gt(3).eval(wire::Value{4}));
  EXPECT_FALSE(Pred::ge(3).eval(wire::Value{2}));
  // Mixed int/double compare numerically …
  EXPECT_TRUE(Pred::lt(3.5).eval(wire::Value{3}));
  // … strings lexicographically …
  EXPECT_TRUE(Pred::lt("m").eval(wire::Value{"a"}));
  // … and unordered pairings never match.
  EXPECT_FALSE(Pred::lt("m").eval(wire::Value{3}));
  EXPECT_FALSE(Pred::ge(0).eval(wire::Value{NodeId{1}}));
}

TEST(PredTest, BetweenAnyOfAllOfNe) {
  EXPECT_TRUE(Pred::between(2, 5).eval(wire::Value{2}));
  EXPECT_TRUE(Pred::between(2, 5).eval(wire::Value{5}));
  EXPECT_FALSE(Pred::between(2, 5).eval(wire::Value{6}));
  EXPECT_TRUE(Pred::any_of({wire::Value{"put"}, wire::Value{"get"}})
                  .eval(wire::Value{"get"}));
  EXPECT_FALSE(Pred::any_of({wire::Value{"put"}, wire::Value{"get"}})
                   .eval(wire::Value{"del"}));
  EXPECT_TRUE(Pred::all_of({Pred::ge(2), Pred::lt(5)}).eval(wire::Value{4}));
  EXPECT_FALSE(Pred::all_of({Pred::ge(2), Pred::lt(5)}).eval(wire::Value{5}));
  EXPECT_TRUE(Pred::ne(NodeId{3}).eval(wire::Value{NodeId{4}}));
  EXPECT_FALSE(Pred::ne(NodeId{3}).eval(wire::Value{NodeId{3}}));
}

TEST(PredTest, EqualityIsTypeSensitiveLikeValue) {
  // eq/ne/any_of use exact Value equality: int 2 and double 2.0 differ.
  EXPECT_FALSE(Pred::eq(2.0).eval(wire::Value{2}));
  EXPECT_TRUE(Pred::ne(2.0).eval(wire::Value{2}));
  // Ordered comparisons are the numeric view: 2 <= 2.0 holds.
  EXPECT_TRUE(Pred::le(2.0).eval(wire::Value{2}));
}

TEST(PredTest, CodecRoundTrip) {
  const Pred original = Pred::all_of(
      {Pred::between(1, 7), Pred::any_of({wire::Value{3}, wire::Value{5}}),
       Pred::ne(4)});
  wire::Writer w;
  original.encode(w);
  wire::Reader r(w.bytes());
  const Pred decoded = Pred::decode(r);
  r.expect_done();
  EXPECT_EQ(decoded, original);
  EXPECT_TRUE(decoded.eval(wire::Value{5}));
  EXPECT_FALSE(decoded.eval(wire::Value{4}));
}

TEST(PredTest, DecodeRejectsGarbage) {
  {
    wire::Writer w;
    w.u8(0xEE);  // unknown op
    wire::Reader r(w.bytes());
    EXPECT_THROW((void)Pred::decode(r), wire::DecodeError);
  }
  {
    // all_of nested beyond the depth limit.
    wire::Writer w;
    for (int i = 0; i < 12; ++i) {
      w.u8(9);  // kAllOf
      w.uvarint(1);
    }
    w.u8(0);  // kExists leaf
    wire::Reader r(w.bytes());
    EXPECT_THROW((void)Pred::decode(r), wire::DecodeError);
  }
  {
    // any_of claiming more options than the width limit.
    wire::Writer w;
    w.u8(8);  // kAnyOf
    w.uvarint(1u << 20);
    wire::Reader r(w.bytes());
    EXPECT_THROW((void)Pred::decode(r), wire::DecodeError);
  }
}

TEST(PatternTest, AllConstraintsMustHold) {
  Pattern p = Pattern::of_type(GradientTuple::kTag);
  p.eq("name", "route").eq("source", NodeId{5});
  EXPECT_TRUE(p.matches(make_gradient("route", NodeId{5}, 1)));
  EXPECT_FALSE(p.matches(make_gradient("route", NodeId{6}, 1)));
  EXPECT_FALSE(p.matches(make_gradient("x", NodeId{5}, 1)));
}

TEST(PatternTest, MissingFieldFailsEvenForPredicate) {
  Pattern p;
  p.where("absent", Pred::exists());
  EXPECT_FALSE(p.matches(make_gradient("x", NodeId{1}, 0)));
  Pattern q;
  q.where("absent", Pred::ne(1));  // "not 1" still requires presence
  EXPECT_FALSE(q.matches(make_gradient("x", NodeId{1}, 0)));
}

TEST(PatternTest, EquivalenceComparesStructure) {
  Pattern a = Pattern::of_type("t");
  a.eq("f", 1).exists("g");
  Pattern b = Pattern::of_type("t");
  b.eq("f", 1).exists("g");
  EXPECT_TRUE(a.equivalent(b));

  Pattern c = Pattern::of_type("t");
  c.eq("f", 2).exists("g");
  EXPECT_FALSE(a.equivalent(c));

  Pattern d = Pattern::of_type("u");
  d.eq("f", 1).exists("g");
  EXPECT_FALSE(a.equivalent(d));
}

TEST(PatternTest, PredicatePatternsCompareStructurally) {
  // Regression: where() clauses used to be opaque std::functions that
  // never compared equal, breaking unsubscribe(template) for predicate
  // patterns.  As ASTs they compare by structure.
  Pattern a;
  a.where("f", Pred::between(1, 5));
  Pattern b;
  b.where("f", Pred::between(1, 5));
  EXPECT_TRUE(a.equivalent(b));

  Pattern c;
  c.where("f", Pred::between(1, 6));
  EXPECT_FALSE(a.equivalent(c));
  Pattern d;
  d.where("f", Pred::le(5));
  EXPECT_FALSE(a.equivalent(d));
}

TEST(PatternTest, MetaConstraintsMatchEntryMetadata) {
  Pattern p;
  p.from_parent(NodeId{7}).propagated_only();
  EXPECT_TRUE(p.matches_meta(NodeId{7}, true));
  EXPECT_FALSE(p.matches_meta(NodeId{7}, false));
  EXPECT_FALSE(p.matches_meta(NodeId{8}, true));
  // matches() ignores metadata — a bare tuple has none.
  EXPECT_TRUE(p.matches(make_gradient("x", NodeId{1}, 0)));
  // Metadata participates in equivalence.
  Pattern q;
  q.from_parent(NodeId{7});
  EXPECT_FALSE(p.equivalent(q));
  q.propagated_only();
  EXPECT_TRUE(p.equivalent(q));
}

TEST(PatternTest, CodecRoundTrip) {
  Pattern p = Pattern::of_type(GradientTuple::kTag);
  p.eq("name", "route")
      .where("hopcount", Pred::le(3))
      .from_parent(NodeId{9})
      .propagated_only(false);
  wire::Writer w;
  p.encode(w);
  wire::Reader r(w.bytes());
  const Pattern decoded = Pattern::decode(r);
  r.expect_done();
  EXPECT_TRUE(decoded.equivalent(p));
  EXPECT_TRUE(decoded.matches(make_gradient("route", NodeId{1}, 2)));
  EXPECT_FALSE(decoded.matches(make_gradient("route", NodeId{1}, 4)));
}

TEST(PatternTest, RecordRoundTrip) {
  Pattern p = Pattern::of_type(GradientTuple::kTag);
  p.where("hopcount", Pred::between(0, 4));
  const wire::Record rec = p.to_record();
  // The type tag rides alongside the blob so remote nodes can route on
  // it without decoding the predicate body.
  EXPECT_EQ(rec.at("type").as_string(), GradientTuple::kTag);
  const Pattern back = Pattern::from_record(rec);
  EXPECT_TRUE(back.equivalent(p));
}

TEST(PatternTest, DecodeRejectsUnknownFlags) {
  wire::Writer w;
  w.u8(0x80);
  wire::Reader r(w.bytes());
  EXPECT_THROW((void)Pattern::decode(r), wire::DecodeError);
}

TEST(PatternTest, StrIsReadable) {
  Pattern p = Pattern::of_type("t");
  p.eq("f", 1).exists("g").where("h", Pred::le(3));
  EXPECT_EQ(p.str(), "t{f=1, g?, h<=3}");
}

}  // namespace
}  // namespace tota
