// Unit tests for tuple pattern matching.
#include <gtest/gtest.h>

#include "tota/pattern.h"
#include "tuples/gradient_tuple.h"

namespace tota {
namespace {

using tuples::GradientTuple;

GradientTuple make_gradient(const std::string& name, NodeId source, int hop) {
  GradientTuple g(name);
  g.content().set("source", source).set("hopcount", hop);
  return g;
}

TEST(PatternTest, EmptyPatternMatchesEverything) {
  const Pattern p;
  EXPECT_TRUE(p.matches(make_gradient("a", NodeId{1}, 0)));
  EXPECT_TRUE(p.matches(make_gradient("b", NodeId{2}, 9)));
}

TEST(PatternTest, TypeConstraint) {
  const Pattern p = Pattern::of_type(GradientTuple::kTag);
  EXPECT_TRUE(p.matches(make_gradient("a", NodeId{1}, 0)));
  const Pattern q = Pattern::of_type("tota.flock");
  EXPECT_FALSE(q.matches(make_gradient("a", NodeId{1}, 0)));
}

TEST(PatternTest, ExactFieldMatch) {
  Pattern p;
  p.eq("name", "route");
  EXPECT_TRUE(p.matches(make_gradient("route", NodeId{1}, 2)));
  EXPECT_FALSE(p.matches(make_gradient("other", NodeId{1}, 2)));
}

TEST(PatternTest, ExactMatchIsTypeSensitive) {
  Pattern p;
  p.eq("hopcount", 2);
  EXPECT_TRUE(p.matches(make_gradient("x", NodeId{1}, 2)));
  Pattern q;
  q.eq("hopcount", 2.0);  // double != int field
  EXPECT_FALSE(q.matches(make_gradient("x", NodeId{1}, 2)));
}

TEST(PatternTest, ExistsRequiresPresenceOnly) {
  Pattern p;
  p.exists("hopcount");
  EXPECT_TRUE(p.matches(make_gradient("x", NodeId{1}, 0)));
  Pattern q;
  q.exists("no_such_field");
  EXPECT_FALSE(q.matches(make_gradient("x", NodeId{1}, 0)));
}

TEST(PatternTest, PredicateConstraint) {
  Pattern p;
  p.where("hopcount",
          [](const wire::Value& v) { return v.as_int() >= 3; });
  EXPECT_TRUE(p.matches(make_gradient("x", NodeId{1}, 3)));
  EXPECT_FALSE(p.matches(make_gradient("x", NodeId{1}, 2)));
}

TEST(PatternTest, AllConstraintsMustHold) {
  Pattern p = Pattern::of_type(GradientTuple::kTag);
  p.eq("name", "route").eq("source", NodeId{5});
  EXPECT_TRUE(p.matches(make_gradient("route", NodeId{5}, 1)));
  EXPECT_FALSE(p.matches(make_gradient("route", NodeId{6}, 1)));
  EXPECT_FALSE(p.matches(make_gradient("x", NodeId{5}, 1)));
}

TEST(PatternTest, MissingFieldFailsEvenForPredicate) {
  Pattern p;
  p.where("absent", [](const wire::Value&) { return true; });
  EXPECT_FALSE(p.matches(make_gradient("x", NodeId{1}, 0)));
}

TEST(PatternTest, EquivalenceComparesStructure) {
  Pattern a = Pattern::of_type("t");
  a.eq("f", 1).exists("g");
  Pattern b = Pattern::of_type("t");
  b.eq("f", 1).exists("g");
  EXPECT_TRUE(a.equivalent(b));

  Pattern c = Pattern::of_type("t");
  c.eq("f", 2).exists("g");
  EXPECT_FALSE(a.equivalent(c));

  Pattern d = Pattern::of_type("u");
  d.eq("f", 1).exists("g");
  EXPECT_FALSE(a.equivalent(d));
}

TEST(PatternTest, PredicatesNeverEquivalent) {
  Pattern a;
  a.where("f", [](const wire::Value&) { return true; });
  Pattern b;
  b.where("f", [](const wire::Value&) { return true; });
  EXPECT_FALSE(a.equivalent(b));
}

TEST(PatternTest, StrIsReadable) {
  Pattern p = Pattern::of_type("t");
  p.eq("f", 1).exists("g");
  EXPECT_EQ(p.str(), "t{f=1, g=?}");
}

}  // namespace
}  // namespace tota
