// Tests for the emulator harness: World lifecycle, SimPlatform binding,
// renderers.
#include <gtest/gtest.h>

#include <fstream>

#include "emu/render.h"
#include "emu/world.h"
#include "tuples/all.h"

namespace tota {
namespace {

using namespace tota::tuples;

emu::World::Options options() {
  emu::World::Options o;
  o.net.radio.range_m = 100.0;
  o.net.seed = 77;
  return o;
}

TEST(WorldTest, SpawnGridPlacesAndConnects) {
  emu::World world(options());
  const auto nodes = world.spawn_grid(3, 4, 80.0, {100, 200});
  EXPECT_EQ(nodes.size(), 12u);
  EXPECT_EQ(world.net().position(nodes[0]), (Vec2{100, 200}));
  EXPECT_EQ(world.net().position(nodes[5]), (Vec2{180, 280}));
  EXPECT_TRUE(world.net().topology().connected());
}

TEST(WorldTest, SpawnRandomStaysInArena) {
  emu::World world(options());
  const Rect arena{{50, 50}, {150, 150}};
  const auto nodes = world.spawn_random(30, arena);
  for (const NodeId n : nodes) {
    EXPECT_TRUE(arena.contains(world.net().position(n)));
  }
}

TEST(WorldTest, SpawnRandomUsesMobilityFactory) {
  emu::World world(options());
  int built = 0;
  world.spawn_random(5, Rect{{0, 0}, {100, 100}},
                     [&](Rng&) -> std::unique_ptr<sim::MobilityModel> {
                       ++built;
                       return std::make_unique<sim::StaticMobility>();
                     });
  EXPECT_EQ(built, 5);
}

TEST(WorldTest, MwThrowsForUnknownNode) {
  emu::World world(options());
  EXPECT_THROW(static_cast<void>(world.mw(NodeId{999})), std::invalid_argument);
}

TEST(WorldTest, DespawnedNodeStopsParticipating) {
  emu::World world(options());
  const NodeId a = world.spawn({0, 0});
  const NodeId b = world.spawn({50, 0});
  world.run_for(SimTime::from_seconds(1));
  world.despawn(b);
  // Injecting at a must not crash on the departed neighbour, and a's
  // neighbourhood must be empty.
  world.mw(a).inject(std::make_unique<GradientTuple>("f"));
  world.run_for(SimTime::from_seconds(2));
  EXPECT_TRUE(world.mw(a).neighbors().empty());
  EXPECT_THROW(static_cast<void>(world.mw(b)), std::invalid_argument);
}

TEST(WorldTest, DespawnDisarmsPendingTimers) {
  // A node with periodic middleware timers (here: injected via platform
  // schedule) is torn down; its pending actions must not fire afterwards.
  emu::World world(options());
  const NodeId a = world.spawn({0, 0});
  int fired = 0;
  world.mw(a).platform().schedule(SimTime::from_seconds(1),
                                  [&] { ++fired; });
  world.despawn(a);
  world.run_for(SimTime::from_seconds(3));
  EXPECT_EQ(fired, 0);
}

TEST(WorldTest, ReusesNothingAcrossSpawns) {
  emu::World world(options());
  const NodeId a = world.spawn({0, 0});
  world.despawn(a);
  const NodeId b = world.spawn({0, 0});
  EXPECT_NE(a, b);  // ids are never recycled
}

TEST(SimPlatformTest, PositionFollowsNode) {
  emu::World world(options());
  const NodeId a = world.spawn({10, 20});
  EXPECT_EQ(world.mw(a).platform().position(), (Vec2{10, 20}));
  world.net().move_node(a, {30, 40});
  EXPECT_EQ(world.mw(a).platform().position(), (Vec2{30, 40}));
}

TEST(RenderTest, AsciiMapGlyphsAndBounds) {
  emu::World world(options());
  const NodeId a = world.spawn({0, 0});
  world.spawn({90, 90});
  const std::string map =
      emu::ascii_map(world.net(), Rect{{0, 0}, {100, 100}}, 10, 5,
                     [&](NodeId id) { return id == a ? 'A' : '\0'; });
  EXPECT_NE(map.find('A'), std::string::npos);
  EXPECT_NE(map.find('*'), std::string::npos);
  // 5 rows of 10 chars + newlines.
  EXPECT_EQ(map.size(), 5u * 11u);
}

TEST(RenderTest, AsciiMapClampsOutOfArenaNodes) {
  emu::World world(options());
  world.spawn({-500, -500});
  const std::string map =
      emu::ascii_map(world.net(), Rect{{0, 0}, {100, 100}}, 10, 5);
  EXPECT_NE(map.find('*'), std::string::npos);  // clamped to the edge
}

TEST(RenderTest, PpmFileIsWellFormed) {
  emu::World world(options());
  world.spawn_grid(2, 2, 50.0);
  const std::string path = ::testing::TempDir() + "/tota_render_test.ppm";
  ASSERT_TRUE(emu::write_ppm(path, world.net(), Rect{{0, 0}, {100, 100}},
                             40, 30));
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string magic;
  int w = 0;
  int h = 0;
  int maxval = 0;
  in >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(w, 40);
  EXPECT_EQ(h, 30);
  EXPECT_EQ(maxval, 255);
  in.get();  // the single whitespace after the header
  std::vector<char> pixels(static_cast<std::size_t>(w) * h * 3);
  in.read(pixels.data(), static_cast<std::streamsize>(pixels.size()));
  EXPECT_EQ(in.gcount(), static_cast<std::streamsize>(pixels.size()));
}

TEST(RenderTest, PpmFailsGracefullyOnBadPath) {
  emu::World world(options());
  EXPECT_FALSE(emu::write_ppm("/nonexistent-dir/x.ppm", world.net(),
                              Rect{{0, 0}, {1, 1}}, 4, 4));
}

}  // namespace
}  // namespace tota
