// Unit tests for src/common: ids, rng, clock, geometry, stats.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/clock.h"
#include "common/geometry.h"
#include "common/ids.h"
#include "common/rng.h"
#include "common/stats.h"

namespace tota {
namespace {

TEST(NodeIdTest, DefaultIsInvalid) {
  NodeId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id.value(), 0u);
}

TEST(NodeIdTest, ComparesByValue) {
  EXPECT_EQ(NodeId{7}, NodeId{7});
  EXPECT_NE(NodeId{7}, NodeId{8});
  EXPECT_LT(NodeId{7}, NodeId{8});
}

TEST(NodeIdTest, ToString) {
  EXPECT_EQ(to_string(NodeId{42}), "node:42");
}

TEST(TupleUidTest, DefaultIsInvalid) {
  TupleUid uid;
  EXPECT_FALSE(uid.valid());
}

TEST(TupleUidTest, OrderedByOriginThenSequence) {
  const TupleUid a{NodeId{1}, 5};
  const TupleUid b{NodeId{1}, 6};
  const TupleUid c{NodeId{2}, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (TupleUid{NodeId{1}, 5}));
}

TEST(TupleUidTest, HashSpreadsAcrossBuckets) {
  std::unordered_set<TupleUid> uids;
  for (std::uint64_t node = 1; node <= 50; ++node) {
    for (std::uint64_t seq = 0; seq < 20; ++seq) {
      uids.insert(TupleUid{NodeId{node}, seq});
    }
  }
  EXPECT_EQ(uids.size(), 1000u);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BelowStaysInBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, StreamIsDeterministic) {
  Rng a = Rng::stream(42, 3);
  Rng b = Rng::stream(42, 3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, StreamsAreIndependent) {
  // Distinct streams of the same family never collide early, and a
  // stream differs from the root generator it was derived from.
  Rng root(42);
  Rng s0 = Rng::stream(42, 0);
  Rng s1 = Rng::stream(42, 1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    const auto x = root();
    const auto y = s0();
    const auto z = s1();
    if (x == y || x == z || y == z) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, StreamDerivationIsPure) {
  // stream() must not consume generator state: deriving stream k is the
  // same whether or not other streams were derived first.  This is what
  // makes per-shard streams independent of shard construction order.
  Rng before = Rng::stream(7, 2);
  (void)Rng::stream(7, 0);
  (void)Rng::stream(7, 1);
  Rng after = Rng::stream(7, 2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(before(), after());
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, NormalMeanAndSpread) {
  Rng rng(13);
  double sum = 0;
  double sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.1);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(15);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.15);
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(17);
  Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(SimTimeTest, Arithmetic) {
  const SimTime a = SimTime::from_millis(500);
  const SimTime b = SimTime::from_seconds(1.5);
  EXPECT_EQ((a + b).micros(), 2'000'000);
  EXPECT_EQ((b - a).millis(), 1000.0);
  EXPECT_LT(a, b);
}

TEST(SimTimeTest, Scaling) {
  EXPECT_EQ((SimTime::from_seconds(2) * 0.5).seconds(), 1.0);
}

TEST(Vec2Test, NormAndDistance) {
  EXPECT_DOUBLE_EQ((Vec2{3, 4}).norm(), 5.0);
  EXPECT_DOUBLE_EQ(distance(Vec2{0, 0}, Vec2{3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance_sq(Vec2{1, 1}, Vec2{2, 2}), 2.0);
}

TEST(Vec2Test, NormalizedZeroIsZero) {
  EXPECT_EQ((Vec2{}).normalized(), (Vec2{}));
  const Vec2 u = Vec2{0, 2}.normalized();
  EXPECT_DOUBLE_EQ(u.norm(), 1.0);
}

TEST(RectTest, ContainsAndClamp) {
  const Rect r{{0, 0}, {10, 5}};
  EXPECT_TRUE(r.contains({5, 2}));
  EXPECT_FALSE(r.contains({11, 2}));
  EXPECT_EQ(r.clamp({12, -3}), (Vec2{10, 0}));
  EXPECT_DOUBLE_EQ(r.width(), 10.0);
  EXPECT_DOUBLE_EQ(r.height(), 5.0);
}

TEST(SummaryTest, BasicStatistics) {
  Summary s;
  for (const double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_NEAR(s.stddev(), 1.5811, 1e-3);
}

TEST(SummaryTest, QuantileNearestRank) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.quantile(0.95), 95.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
}

TEST(SummaryTest, EmptyIsNaN) {
  Summary s;
  EXPECT_TRUE(std::isnan(s.mean()));
  EXPECT_EQ(s.str(), "n=0");
}

TEST(CountersTest, AddAndGet) {
  Counters c;
  c.add("x");
  c.add("x", 4);
  EXPECT_EQ(c.get("x"), 5);
  EXPECT_EQ(c.get("missing"), 0);
  c.reset();
  EXPECT_EQ(c.get("x"), 0);
}

TEST(SeriesTest, CollectsPoints) {
  Series s("line");
  s.add(1, 10);
  s.add(2, 20);
  ASSERT_EQ(s.points().size(), 2u);
  EXPECT_EQ(s.points()[1].y, 20);
  EXPECT_NE(s.str().find("x=2"), std::string::npos);
}

}  // namespace
}  // namespace tota
