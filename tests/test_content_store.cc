// Tests for content-based routing over TOTA (NavTuple + ContentStore).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "apps/content_store.h"
#include "emu/world.h"
#include "tuples/all.h"

namespace tota {
namespace {

using namespace tota::tuples;

constexpr Rect kKeyspace{{0, 0}, {480, 480}};

emu::World::Options options(std::uint64_t seed = 91) {
  emu::World::Options o;
  o.net.radio.range_m = 100.0;
  o.net.seed = seed;
  return o;
}

struct Overlay {
  explicit Overlay(emu::World& world) {
    for (const NodeId n : world.nodes()) {
      stores.emplace(n,
                     std::make_unique<apps::ContentStore>(world.mw(n),
                                                          kKeyspace));
      stores.at(n)->start();
    }
  }
  std::unordered_map<NodeId, std::unique_ptr<apps::ContentStore>> stores;
};

TEST(KeyPointTest, DeterministicAndInKeyspace) {
  const Vec2 a = apps::ContentStore::key_point("alpha", kKeyspace);
  const Vec2 b = apps::ContentStore::key_point("alpha", kKeyspace);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(kKeyspace.contains(a));
  const Vec2 c = apps::ContentStore::key_point("beta", kKeyspace);
  EXPECT_NE(a, c);
}

TEST(KeyPointTest, SpreadsAcrossTheSpace) {
  // 100 keys must not collapse into one quadrant.
  int quadrant[4] = {0, 0, 0, 0};
  for (int i = 0; i < 100; ++i) {
    const Vec2 p = apps::ContentStore::key_point("key" + std::to_string(i),
                                                 kKeyspace);
    const int q = (p.x > 240 ? 1 : 0) + (p.y > 240 ? 2 : 0);
    ++quadrant[q];
  }
  for (const int count : quadrant) EXPECT_GT(count, 5);
}

TEST(NavTupleTest, GreedyEntryOnlyWhenCloser) {
  tuples::register_standard_tuples();
  TupleSpace space;
  Rng rng(1);
  auto ctx = [&](int hop, Vec2 pos) {
    return Context{NodeId{1}, NodeId{2}, hop, SimTime::zero(),
                   pos,       space,     rng, nullptr};
  };
  NavTuple nav("k", Vec2{100, 0}, "get");
  nav.change_content(ctx(0, Vec2{0, 0}));  // best = 100
  EXPECT_TRUE(nav.decide_enter(ctx(1, Vec2{40, 0})));   // 60 < 100
  EXPECT_FALSE(nav.decide_enter(ctx(1, Vec2{-20, 0}))); // 120 > 100
  EXPECT_FALSE(nav.decide_enter(ctx(1, Vec2{0, 0})));   // equal: no
}

TEST(NavTupleTest, WireRoundTripKeepsBest) {
  tuples::register_standard_tuples();
  NavTuple nav("k", Vec2{10, 20}, "put");
  nav.set_uid(TupleUid{NodeId{3}, 9});
  nav.content().set("value", "v").set("source", NodeId{3}).set("hopcount", 0);
  wire::Writer w;
  nav.encode(w);
  wire::Reader r(w.bytes());
  const auto decoded = Tuple::decode(r);
  const auto& n2 = static_cast<const NavTuple&>(*decoded);
  EXPECT_EQ(n2.key(), "k");
  EXPECT_EQ(n2.target(), (Vec2{10, 20}));
  EXPECT_EQ(n2.purpose(), "put");
  EXPECT_FALSE(n2.maintained());
}

TEST(ContentStoreTest, PutStoresAtTheClosestNode) {
  emu::World world(options());
  const auto grid = world.spawn_grid(7, 7, 80.0);
  world.run_for(SimTime::from_seconds(1));
  Overlay overlay(world);
  world.run_for(SimTime::from_seconds(1));  // beacons spread

  overlay.stores.at(grid[0])->put("alpha", "value-A");
  world.run_for(SimTime::from_seconds(2));

  // Exactly the node nearest to the key's point holds the record.
  const Vec2 target = apps::ContentStore::key_point("alpha", kKeyspace);
  NodeId closest = grid[0];
  for (const NodeId n : grid) {
    if (distance(world.net().position(n), target) <
        distance(world.net().position(closest), target)) {
      closest = n;
    }
  }
  EXPECT_EQ(overlay.stores.at(closest)->stored_keys(), 1u);
  std::size_t total = 0;
  for (const auto& [n, store] : overlay.stores) total += store->stored_keys();
  EXPECT_EQ(total, 1u);
}

TEST(ContentStoreTest, GetFindsValueFromAnywhere) {
  emu::World world(options());
  const auto grid = world.spawn_grid(7, 7, 80.0);
  world.run_for(SimTime::from_seconds(1));
  Overlay overlay(world);
  world.run_for(SimTime::from_seconds(1));

  overlay.stores.at(grid[3])->put("alpha", "value-A");
  world.run_for(SimTime::from_seconds(2));

  std::optional<std::string> got;
  bool answered = false;
  overlay.stores.at(grid[45])->get("alpha", [&](auto v) {
    answered = true;
    got = std::move(v);
  });
  world.run_for(SimTime::from_seconds(3));
  ASSERT_TRUE(answered);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "value-A");
}

TEST(ContentStoreTest, MissingKeyAnswersNullopt) {
  emu::World world(options());
  const auto grid = world.spawn_grid(5, 5, 80.0);
  world.run_for(SimTime::from_seconds(1));
  Overlay overlay(world);
  world.run_for(SimTime::from_seconds(1));

  bool answered = false;
  std::optional<std::string> got = std::string("sentinel");
  overlay.stores.at(grid[0])->get("never-stored", [&](auto v) {
    answered = true;
    got = std::move(v);
  });
  world.run_for(SimTime::from_seconds(3));
  EXPECT_TRUE(answered);
  EXPECT_FALSE(got.has_value());
}

TEST(ContentStoreTest, PutOverwritesValue) {
  emu::World world(options());
  const auto grid = world.spawn_grid(5, 5, 80.0);
  world.run_for(SimTime::from_seconds(1));
  Overlay overlay(world);
  world.run_for(SimTime::from_seconds(1));

  overlay.stores.at(grid[0])->put("k", "v1");
  world.run_for(SimTime::from_seconds(2));
  overlay.stores.at(grid[24])->put("k", "v2");
  world.run_for(SimTime::from_seconds(2));

  std::optional<std::string> got;
  overlay.stores.at(grid[12])->get("k", [&](auto v) { got = std::move(v); });
  world.run_for(SimTime::from_seconds(3));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "v2");

  std::size_t total = 0;
  for (const auto& [n, store] : overlay.stores) total += store->stored_keys();
  EXPECT_EQ(total, 1u);  // replaced, not duplicated
}

TEST(ContentStoreTest, ManyKeysSpreadOverManyHomes) {
  emu::World world(options());
  const auto grid = world.spawn_grid(6, 6, 80.0);
  world.run_for(SimTime::from_seconds(1));
  Overlay overlay(world);
  world.run_for(SimTime::from_seconds(1));

  for (int i = 0; i < 24; ++i) {
    overlay.stores.at(grid[static_cast<std::size_t>(i) % grid.size()])
        ->put("key" + std::to_string(i), "v" + std::to_string(i));
    world.run_for(SimTime::from_millis(300));
  }
  world.run_for(SimTime::from_seconds(2));

  int homes_used = 0;
  std::size_t total = 0;
  for (const auto& [n, store] : overlay.stores) {
    if (store->stored_keys() > 0) ++homes_used;
    total += store->stored_keys();
  }
  EXPECT_EQ(total, 24u);
  EXPECT_GT(homes_used, 8);  // load spread, not one super-peer
}

TEST(ContentStoreTest, AnswersNeverFlood) {
  // The strict reply must cost O(path), not O(N).
  emu::World world(options());
  const auto grid = world.spawn_grid(6, 6, 80.0);
  world.run_for(SimTime::from_seconds(1));
  Overlay overlay(world);
  world.run_for(SimTime::from_seconds(1));
  overlay.stores.at(grid[0])->put("k", "v");
  world.run_for(SimTime::from_seconds(2));

  const auto before = world.net().counters().get("radio.tx");
  std::optional<std::string> got;
  overlay.stores.at(grid[35])->get("k", [&](auto v) { got = std::move(v); });
  world.run_for(SimTime::from_seconds(3));
  const auto cost = world.net().counters().get("radio.tx") - before;
  ASSERT_TRUE(got.has_value());
  // Nav + strict answer both confined near the greedy path; far below a
  // double network flood (2 x 36).
  EXPECT_LT(cost, 40);
}

}  // namespace
}  // namespace tota
