// Property-based tests: invariants checked across parameterized sweeps of
// random topologies, seeds and dynamics.
//
//  P1  Gradient correctness: after quiescence, every node's replica
//      hopcount equals the BFS distance oracle, on arbitrary topologies.
//  P2  Maintenance convergence: the same invariant holds again after
//      arbitrary topology edits (moves, deaths, births).
//  P3  Serialization totality: decode(encode(t)) == t for randomized
//      tuples, and random byte garbage never crashes the engine.
//  P4  Broadcast economy: a single flood costs exactly one transmission
//      per reached node (the multicast-socket property the paper relies
//      on for "really simple devices").
#include <gtest/gtest.h>

#include "emu/world.h"
#include "tuples/all.h"

namespace tota {
namespace {

using namespace tota::tuples;

emu::World::Options options(std::uint64_t seed) {
  emu::World::Options o;
  o.net.radio.range_m = 100.0;
  o.net.seed = seed;
  return o;
}

::testing::AssertionResult gradient_matches_oracle(const emu::World& world,
                                                   NodeId source) {
  const auto oracle = world.net().topology().hop_distances(source);
  const Pattern p = Pattern::of_type(GradientTuple::kTag);
  for (const NodeId n : world.nodes()) {
    const auto replica = world.mw(n).read_one(p);
    const auto it = oracle.find(n);
    if (it == oracle.end()) {
      if (replica) {
        return ::testing::AssertionFailure()
               << to_string(n) << " unreachable but holds a replica";
      }
      continue;
    }
    if (!replica) {
      return ::testing::AssertionFailure()
             << to_string(n) << " missing replica (oracle d=" << it->second
             << ")";
    }
    if (replica->content().at("hopcount").as_int() != it->second) {
      return ::testing::AssertionFailure()
             << to_string(n) << " hopcount="
             << replica->content().at("hopcount").as_int() << " oracle="
             << it->second;
    }
  }
  return ::testing::AssertionSuccess();
}

// --- P1: gradient == BFS on random topologies -------------------------------

class GradientProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GradientProperty, MatchesBfsOnRandomTopology) {
  emu::World world(options(GetParam()));
  world.spawn_random(40, Rect{{0, 0}, {500, 500}});
  world.run_for(SimTime::from_seconds(1));
  const auto nodes = world.nodes();
  const NodeId source = nodes[GetParam() % nodes.size()];
  world.mw(source).inject(std::make_unique<GradientTuple>("f"));
  world.run_for(SimTime::from_seconds(5));
  EXPECT_TRUE(gradient_matches_oracle(world, source));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GradientProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// --- P2: maintenance re-converges after random edits -------------------------

class MaintenanceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaintenanceProperty, ReconvergesAfterRandomChurn) {
  const std::uint64_t seed = GetParam();
  emu::World world(options(seed));
  world.spawn_random(30, Rect{{0, 0}, {400, 400}});
  world.run_for(SimTime::from_seconds(1));
  auto nodes = world.nodes();
  const NodeId source = nodes[0];
  world.mw(source).inject(std::make_unique<GradientTuple>("f"));
  world.run_for(SimTime::from_seconds(5));
  ASSERT_TRUE(gradient_matches_oracle(world, source));

  // Random edit script driven by the seed: moves, deaths, births.
  Rng script(seed * 1000 + 17);
  for (int round = 0; round < 6; ++round) {
    nodes = world.nodes();
    const auto op = script.below(3);
    if (op == 0 && nodes.size() > 5) {
      NodeId victim = nodes[script.below(nodes.size())];
      if (victim == source) victim = nodes.back() == source ? nodes.front()
                                                            : nodes.back();
      if (victim != source) world.despawn(victim);
    } else if (op == 1) {
      const NodeId mover = nodes[script.below(nodes.size())];
      if (world.net().alive(mover)) {
        world.net().move_node(
            mover, {script.uniform(0, 400), script.uniform(0, 400)});
      }
    } else {
      world.spawn({script.uniform(0, 400), script.uniform(0, 400)});
    }
    world.run_for(SimTime::from_millis(500));
  }
  world.run_for(SimTime::from_seconds(10));
  EXPECT_TRUE(gradient_matches_oracle(world, source));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaintenanceProperty,
                         ::testing::Values(11, 12, 13, 14, 15, 16, 17, 18));

// --- P3: serialization totality ------------------------------------------------

class SerializationProperty : public ::testing::TestWithParam<std::uint64_t> {
};

std::unique_ptr<Tuple> random_tuple(Rng& rng) {
  const auto pick = rng.below(6);
  std::unique_ptr<Tuple> t;
  const std::string name = "n" + std::to_string(rng.below(1000));
  switch (pick) {
    case 0:
      t = std::make_unique<GradientTuple>(
          name, static_cast<int>(rng.below(20)) - 1);
      break;
    case 1:
      t = std::make_unique<FlockTuple>(static_cast<int>(rng.below(9)),
                                       static_cast<int>(rng.below(20)) - 1);
      break;
    case 2:
      t = std::make_unique<AdvertTuple>(name);
      break;
    case 3:
      t = std::make_unique<QueryTuple>(name);
      break;
    case 4:
      t = std::make_unique<MessageTuple>(NodeId{1 + rng.below(100)}, name,
                                         rng.chance(0.5) ? "s" : "");
      break;
    default:
      t = std::make_unique<SpaceTuple>(name, rng.uniform(0, 500));
      break;
  }
  t->set_uid(TupleUid{NodeId{1 + rng.below(100)}, rng.below(1000)});
  t->set_hop(static_cast<int>(rng.below(30)));
  if (rng.chance(0.5)) t->content().set("extra", rng.uniform());
  if (rng.chance(0.3)) t->content().set("flag", rng.chance(0.5));
  if (rng.chance(0.3)) {
    t->content().set("pos", Vec2{rng.uniform(-9, 9), rng.uniform(-9, 9)});
  }
  return t;
}

TEST_P(SerializationProperty, RoundTripIsIdentity) {
  tuples::register_standard_tuples();
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const auto original = random_tuple(rng);
    wire::Writer w;
    original->encode(w);
    wire::Reader r(w.bytes());
    const auto decoded = Tuple::decode(r);
    r.expect_done();
    EXPECT_EQ(decoded->type_tag(), original->type_tag());
    EXPECT_EQ(decoded->uid(), original->uid());
    EXPECT_EQ(decoded->hop(), original->hop());
    EXPECT_EQ(decoded->content(), original->content());
    // And the copy re-encodes to identical bytes (canonical encoding).
    wire::Writer w2;
    decoded->encode(w2);
    EXPECT_EQ(w2.bytes(), w.bytes());
  }
}

TEST_P(SerializationProperty, GarbageNeverCrashesTheDecoder) {
  tuples::register_standard_tuples();
  Rng rng(GetParam() + 999);
  for (int i = 0; i < 500; ++i) {
    wire::Bytes junk(rng.below(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
    wire::Reader r(junk);
    try {
      const auto t = Tuple::decode(r);
      (void)t;  // rare but legitimate: junk can parse as a valid tuple
    } catch (const wire::DecodeError&) {
    } catch (const wire::UnknownTypeError&) {
    }
  }
  SUCCEED();
}

TEST_P(SerializationProperty, TruncationAlwaysThrows) {
  tuples::register_standard_tuples();
  Rng rng(GetParam() + 555);
  const auto tuple = random_tuple(rng);
  wire::Writer w;
  tuple->encode(w);
  const auto full = w.take();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    wire::Bytes prefix(full.begin(),
                       full.begin() + static_cast<std::ptrdiff_t>(cut));
    wire::Reader r(prefix);
    bool threw_or_leftover = false;
    try {
      const auto t = Tuple::decode(r);
      (void)t;
    } catch (const wire::DecodeError&) {
      threw_or_leftover = true;
    } catch (const wire::UnknownTypeError&) {
      threw_or_leftover = true;
    }
    // Prefixes that happen to parse are acceptable only if they consumed
    // the whole prefix (self-delimiting encoding has no trailing check
    // here); all others must throw.
    EXPECT_TRUE(threw_or_leftover || r.remaining() == 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializationProperty,
                         ::testing::Values(101, 102, 103));

// --- P4: broadcast economy ----------------------------------------------------

class BroadcastProperty : public ::testing::TestWithParam<int> {};

TEST_P(BroadcastProperty, OneTransmissionPerNodePerFlood) {
  const int side = GetParam();
  auto o = options(static_cast<std::uint64_t>(side));
  // Zero jitter: with identical per-hop delays the first copy a node
  // hears is always a shortest-path copy, so no supersede re-broadcasts.
  // (With jitter, an occasional longer-path copy arrives first and is
  // later superseded — allowed, but not what this property pins down.)
  o.net.radio.jitter = SimTime::zero();
  emu::World world(o);
  const auto nodes = world.spawn_grid(side, side, 80.0);
  world.run_for(SimTime::from_seconds(1));
  const auto before = world.net().counters().get("radio.tx");
  world.mw(nodes[0]).inject(std::make_unique<GradientTuple>("f"));
  world.run_for(SimTime::from_seconds(5));
  const auto cost = world.net().counters().get("radio.tx") - before;
  // Breadth-first flooding over a broadcast medium: each node announces
  // the tuple exactly once (supersede storms would show up here).
  EXPECT_EQ(cost, static_cast<std::int64_t>(nodes.size()));
}

INSTANTIATE_TEST_SUITE_P(GridSides, BroadcastProperty,
                         ::testing::Values(2, 3, 4, 5, 6));

// --- P5: scope cuts the ring at exactly `scope` hops --------------------------

class ScopeProperty : public ::testing::TestWithParam<int> {};

TEST_P(ScopeProperty, ExactlyScopePlusOneHoldersOnALine) {
  const int scope = GetParam();
  emu::World world(options(50));
  const auto line = world.spawn_grid(1, 10, 80.0);
  world.run_for(SimTime::from_seconds(1));
  world.mw(line[0]).inject(std::make_unique<GradientTuple>("ring", scope));
  world.run_for(SimTime::from_seconds(3));
  int holders = 0;
  for (const NodeId n : line) {
    if (!world.mw(n).read(Pattern{}).empty()) ++holders;
  }
  EXPECT_EQ(holders, std::min(scope + 1, 10));
}

INSTANTIATE_TEST_SUITE_P(Scopes, ScopeProperty,
                         ::testing::Values(0, 1, 2, 3, 5, 8, 20));

// --- P6: metric radius cuts space at exactly radius metres --------------------

class RadiusProperty : public ::testing::TestWithParam<int> {};

TEST_P(RadiusProperty, HoldersMatchMetricRadiusOnALine) {
  const double radius = GetParam();
  emu::World world(options(51));
  const auto line = world.spawn_grid(1, 10, 80.0);  // nodes at 0,80,…,720
  world.run_for(SimTime::from_seconds(1));
  world.mw(line[0]).inject(std::make_unique<SpaceTuple>("zone", radius));
  world.run_for(SimTime::from_seconds(3));
  for (std::size_t i = 0; i < line.size(); ++i) {
    const bool expect_inside = 80.0 * static_cast<double>(i) <= radius;
    EXPECT_EQ(!world.mw(line[i]).read(Pattern{}).empty(), expect_inside)
        << "node " << i << " radius " << radius;
  }
}

INSTANTIATE_TEST_SUITE_P(RadiiMetres, RadiusProperty,
                         ::testing::Values(0, 79, 80, 200, 400, 1000));

// --- P7: bit-for-bit determinism of full dynamic scenarios --------------------

class DeterminismProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeterminismProperty, IdenticalSeedsGiveIdenticalRuns) {
  auto fingerprint = [&](std::uint64_t seed) {
    auto o = options(seed);
    o.net.radio.loss_probability = 0.1;
    emu::World world(o);
    const Rect arena{{0, 0}, {400, 400}};
    world.spawn_random(25, arena, [&](Rng&) {
      return std::make_unique<sim::RandomWaypoint>(arena, 1.0, 6.0);
    });
    world.run_for(SimTime::from_seconds(1));
    const auto nodes = world.nodes();
    world.mw(nodes[0]).inject(std::make_unique<GradientTuple>("f"));
    world.mw(nodes[5]).inject(std::make_unique<FlockTuple>(2, 6));
    world.run_for(SimTime::from_seconds(10));
    // Fingerprint: counters plus the full replica census.
    std::uint64_t fp = 1469598103934665603ull;
    auto mix = [&fp](std::uint64_t v) {
      fp = (fp ^ v) * 1099511628211ull;
    };
    mix(static_cast<std::uint64_t>(world.net().counters().get("radio.tx")));
    mix(static_cast<std::uint64_t>(world.net().counters().get("radio.rx")));
    for (const NodeId n : world.nodes()) {
      mix(n.value());
      for (const auto& t : world.mw(n).read(Pattern{})) {
        mix(t->content().hash());
      }
    }
    return fp;
  };
  const std::uint64_t seed = GetParam();
  EXPECT_EQ(fingerprint(seed), fingerprint(seed));
  // And different seeds genuinely differ (sanity that the fingerprint
  // sees the dynamics).
  EXPECT_NE(fingerprint(seed), fingerprint(seed + 1));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismProperty,
                         ::testing::Values(201, 202, 203));

// --- P8: decode_failures stays zero across healthy dynamic runs ---------------

class HealthProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HealthProperty, NoDecodeFailuresUnderChurnAndMobility) {
  auto o = options(GetParam());
  emu::World world(o);
  const Rect arena{{0, 0}, {400, 400}};
  world.spawn_random(20, arena, [&](Rng&) {
    return std::make_unique<sim::RandomWaypoint>(arena, 2.0, 8.0);
  });
  world.run_for(SimTime::from_seconds(1));
  auto nodes = world.nodes();
  world.mw(nodes[0]).inject(std::make_unique<GradientTuple>("f"));
  world.mw(nodes[1]).inject(std::make_unique<AdvertTuple>("sensor"));
  world.mw(nodes[2]).inject(std::make_unique<QueryTuple>("sensor", 6));
  world.run_for(SimTime::from_seconds(5));
  world.despawn(nodes[3]);
  world.spawn({200, 200});
  world.run_for(SimTime::from_seconds(5));
  for (const NodeId n : world.nodes()) {
    EXPECT_EQ(world.mw(n).engine().decode_failures(), 0u) << to_string(n);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HealthProperty,
                         ::testing::Values(301, 302, 303, 304));

}  // namespace
}  // namespace tota
